// The restructured ("modernized") application of §5: the sequential
// sparse-grid program re-expressed as a master/worker concurrent application
// over the generic ProtocolMW coordinator.
//
// The master performs everything the sequential main() did except the
// subsolve calls, which it delegates — one grid per worker — to a pool of
// workers created by the coordinator.  §6 requires the output to be
// "exactly the same as in the sequential version"; tests assert bit-equality
// with transport::solve_sequential.
#pragma once

#include <cstddef>
#include <vector>

#include "core/protocol.hpp"
#include "manifold/task.hpp"
#include "transport/seq_solver.hpp"
#include "trace/trace_log.hpp"

namespace mg::net {
class RemoteEndpoint;
}

namespace mg::mw {

/// Work unit the master writes to its output port: which grid to subsolve.
struct WorkItem {
  std::size_t index;  ///< position in the combination-term visit order
  int root;
  int lx;
  int ly;
  transport::SubsolveConfig config;
};

/// Result unit the worker writes back through the KK stream.
struct ResultItem {
  std::size_t index;
  std::vector<double> node_data;
  ros::Ros2Stats stats;
  double elapsed_seconds;
};

/// Executes one work unit — the §3 subsolve on the item's grid.  The single
/// compute kernel behind every substrate: the threaded pool workers, the TCP
/// worker processes (run_subsolve_worker), and the solve service's fleet
/// lanes all call this, which is what makes their outputs interchangeable
/// bit for bit.
ResultItem execute_work_item(const WorkItem& item);

/// How computed data travels (§4.1): in the paper's protocol "the master
/// process passes all data to and from the workers"; the alternative it
/// mentions (but never tried) lets workers access the global data structure
/// directly — implemented here for the ablation bench.
enum class DataPath {
  ThroughMaster,  ///< paper's protocol: data via master's ports
  SharedGlobal,   ///< §4.1 alternative: workers write the global structure
};

const char* to_string(DataPath p);

/// Longest-processing-time dispatch order for terms [first, first+count):
/// indices sorted by descending subsolve work weight — the paper's MLINK
/// `weight`/`load` notion, derived from subsolve_payload_bytes — with the
/// original index as a deterministic tie-break.  Sending heavy grids first
/// shrinks the pool's makespan tail when task slots are scarcer than grids.
std::vector<std::size_t> lpt_order(const std::vector<grid::CombinationTerm>& terms,
                                   std::size_t first, std::size_t count);

struct ConcurrentOptions {
  bool pool_per_family = false;  ///< one pool per lm family instead of one pool total
  /// Dispatch grids in lpt_order (heaviest first) instead of term order.
  /// Results are keyed by term index, so the combined output is unchanged;
  /// only the pool's completion profile moves.
  bool lpt_schedule = true;
  DataPath data_path = DataPath::ThroughMaster;
  /// Round-trip every work/result unit through the wire codec (core/marshal)
  /// to emulate the cross-machine transport of a distributed run; results
  /// must still be bit-identical to the sequential program.
  bool marshal_through_bytes = false;
  iwim::TaskCompositionSpec tasks = iwim::TaskCompositionSpec::paper_distributed();
  iwim::HostMap hosts = iwim::HostMap::generated(32);
  trace::TraceLog* trace = nullptr;  ///< optional §6-style trace, not owned
  /// Seeded fault injection into the worker incarnations (crash / hang /
  /// corrupt probabilities; see FaultPlan).  Only meaningful together with
  /// `retry` — injected faults without a retry policy would strand grids.
  fault::FaultPlanConfig faults;
  /// Engages the fault-tolerant protocol when set: crashed/hung workers are
  /// respawned with backoff and their grids re-dispatched; once the attempt
  /// cap or respawn budget is exhausted the master recomputes the abandoned
  /// grid locally (ThroughMaster), so the result stays bit-identical to the
  /// sequential program even in a degraded pool.
  std::optional<fault::RetryPolicy> retry;
  /// Overall wall-clock deadline for the whole run; 0 = none.  On expiry the
  /// run unwinds with ProtocolStats.timed_out instead of hanging.
  std::chrono::milliseconds overall_deadline{0};
  /// Seeded spot-instance churn (join/leave/crash events) replayed against
  /// the pool; engages the fault-tolerant protocol (a default RetryPolicy is
  /// supplied when `retry` is unset).  Results stay bit-identical.
  std::optional<fleet::ChurnPlanConfig> churn;
  /// Third substrate: when set, pool workers are remote proxies that marshal
  /// each work unit over this TCP endpoint to a worker process instead of
  /// computing in-thread (ThroughMaster only).  Failed round trips surface
  /// as worker crashes, so `retry` supervises remote workers exactly like
  /// local ones.  Not owned; must outlive the run.
  net::RemoteEndpoint* remote = nullptr;
  /// Within-grid parallelism override for dispatch: when > 0, every work
  /// unit's kernel config is stamped with this inner team size before it
  /// leaves the master, taking precedence over the program's
  /// SystemOptions::inner_threads.  Lets a deployment scale one machine as
  /// fewer outer workers x bigger inner teams without editing the program
  /// config.  Bit-identical results at any value (DESIGN.md §14).
  std::uint32_t inner_threads = 0;
  /// Kernel-policy override for dispatch, same precedence rule as
  /// `inner_threads` (unset = inherit the program's kernel config).
  std::optional<linalg::KernelPolicy> kernel_policy;
  /// Transport pipeline window override: when > 0 and `remote` is set, the
  /// endpoint is told to keep up to this many seq-tagged work units in
  /// flight per channel (RemoteEndpoint::set_pipeline_depth).  0 leaves the
  /// endpoint's configured depth alone.  Any value is bit-identical — the
  /// window only reorders wire traffic, never results (DESIGN.md §15).
  std::uint32_t pipeline_depth = 0;
};

struct ConcurrentResult {
  transport::SolveResult solve;
  /// protocol.faults carries the full fault ledger: injections performed by
  /// the workers plus the coordinator's recovery actions.
  ProtocolStats protocol;
  iwim::TaskStats tasks;
};

/// Runs the concurrent version.  Deterministic result (identical to
/// solve_sequential) for a fixed program config.
ConcurrentResult solve_concurrent(const transport::ProgramConfig& program,
                                  const ConcurrentOptions& options = {});

}  // namespace mg::mw
