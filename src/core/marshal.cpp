#include "core/marshal.hpp"

#include "grid/grid2d.hpp"
#include "support/bytes.hpp"
#include "support/check.hpp"

namespace mg::mw {

using support::ByteReader;
using support::ByteWriter;

namespace {

void write_kernel(ByteWriter& w, const transport::SubsolveConfig& k) {
  w.write_f64(k.problem.ax);
  w.write_f64(k.problem.ay);
  w.write_f64(k.problem.eps);
  w.write_f64(k.problem.x0);
  w.write_f64(k.problem.y0);
  w.write_f64(k.problem.sigma);
  w.write_f64(k.problem.amplitude);
  w.write_i32(static_cast<std::int32_t>(k.system.scheme));
  w.write_i32(static_cast<std::int32_t>(k.system.solver));
  w.write_f64(k.system.krylov.rel_tol);
  w.write_f64(k.system.krylov.abs_tol);
  w.write_u64(k.system.krylov.max_iter);
  w.write_i32(k.system.cache_stage ? 1 : 0);
  w.write_i32(k.system.warm_start ? 1 : 0);
  w.write_i32(static_cast<std::int32_t>(k.system.kernel_policy));
  w.write_i32(static_cast<std::int32_t>(k.system.inner_threads));
  w.write_f64(k.le_tol);
  w.write_f64(k.t0);
  w.write_f64(k.t1);
}

transport::SubsolveConfig read_kernel(ByteReader& r) {
  transport::SubsolveConfig k;
  k.problem.ax = r.read_f64();
  k.problem.ay = r.read_f64();
  k.problem.eps = r.read_f64();
  k.problem.x0 = r.read_f64();
  k.problem.y0 = r.read_f64();
  k.problem.sigma = r.read_f64();
  k.problem.amplitude = r.read_f64();
  // Enums come off the wire as raw i32s; a corrupt byte must be rejected
  // here, not turned into an out-of-range switch downstream.
  const std::int32_t scheme = r.read_i32();
  if (scheme < 0 || scheme > static_cast<std::int32_t>(transport::AdvectionScheme::ThirdOrderKoren)) {
    throw support::DecodeError("read_kernel: advection scheme out of range");
  }
  const std::int32_t solver = r.read_i32();
  if (solver < 0 || solver > static_cast<std::int32_t>(transport::StageSolverKind::BiCgStabJacobi)) {
    throw support::DecodeError("read_kernel: stage solver out of range");
  }
  k.system.scheme = static_cast<transport::AdvectionScheme>(scheme);
  k.system.solver = static_cast<transport::StageSolverKind>(solver);
  k.system.krylov.rel_tol = r.read_f64();
  k.system.krylov.abs_tol = r.read_f64();
  k.system.krylov.max_iter = r.read_u64();
  k.system.cache_stage = r.read_i32() != 0;
  k.system.warm_start = r.read_i32() != 0;
  const std::int32_t policy = r.read_i32();
  if (policy < 0 || policy > static_cast<std::int32_t>(linalg::KernelPolicy::Tiled)) {
    throw support::DecodeError("read_kernel: kernel policy out of range");
  }
  k.system.kernel_policy = static_cast<linalg::KernelPolicy>(policy);
  const std::int32_t inner = r.read_i32();
  // A corrupt count must not spawn an absurd helper fleet on the worker.
  if (inner < 1 || inner > 1024) {
    throw support::DecodeError("read_kernel: inner_threads out of range");
  }
  k.system.inner_threads = static_cast<std::uint32_t>(inner);
  k.le_tol = r.read_f64();
  k.t0 = r.read_f64();
  k.t1 = r.read_f64();
  return k;
}

void write_stats(ByteWriter& w, const ros::Ros2Stats& s) {
  w.write_u64(s.accepted);
  w.write_u64(s.rejected);
  w.write_u64(s.rhs_evaluations);
  w.write_u64(s.stage_preparations);
  w.write_u64(s.stage_solves);
  w.write_f64(s.final_h);
}

ros::Ros2Stats read_stats(ByteReader& r) {
  ros::Ros2Stats s;
  s.accepted = r.read_u64();
  s.rejected = r.read_u64();
  s.rhs_evaluations = r.read_u64();
  s.stage_preparations = r.read_u64();
  s.stage_solves = r.read_u64();
  s.final_h = r.read_f64();
  return s;
}

}  // namespace

std::vector<std::uint8_t> encode_work_item(const WorkItem& item) {
  ByteWriter w;
  w.write_u64(item.index);
  w.write_i32(item.root);
  w.write_i32(item.lx);
  w.write_i32(item.ly);
  write_kernel(w, item.config);
  return w.take();
}

WorkItem decode_work_item(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  WorkItem item{};
  item.index = r.read_u64();
  item.root = r.read_i32();
  item.lx = r.read_i32();
  item.ly = r.read_i32();
  item.config = read_kernel(r);
  MG_REQUIRE_MSG(r.exhausted(), "decode_work_item: trailing bytes");
  return item;
}

std::vector<std::uint8_t> encode_result_item(const ResultItem& item) {
  ByteWriter w;
  w.write_u64(item.index);
  w.write_doubles(item.node_data);
  write_stats(w, item.stats);
  w.write_f64(item.elapsed_seconds);
  return w.take();
}

ResultItem decode_result_item(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  ResultItem item{};
  item.index = r.read_u64();
  item.node_data = r.read_doubles();
  item.stats = read_stats(r);
  item.elapsed_seconds = r.read_f64();
  MG_REQUIRE_MSG(r.exhausted(), "decode_result_item: trailing bytes");
  return item;
}

std::size_t result_wire_bytes(int root, int lx, int ly) {
  const grid::Grid2D g(root, lx, ly);
  // index + array length prefix + nodes + five u64 stats + final_h + elapsed.
  return 8 + 8 + g.node_count() * 8 + 5 * 8 + 8 + 8;
}

}  // namespace mg::mw
