// The generic master/worker coordination protocol — the paper's primary
// contribution (§4, protocolMW.m).
//
// "In MANIFOLD, we can easily realize this master/worker protocol in a
// generic way, where the master and the worker are parameters of the
// protocol. ... For the protocol, it is irrelevant to know what kind of
// computation is performed in the master or the worker."
//
// protocol_mw() renders the manner ProtocolMW (lines 54-64) and
// create_worker_pool() the manner Create_Worker_Pool (lines 12-51).  They
// run inside a coordinator process's body; the master and the worker factory
// are parameters, exactly as in the MANIFOLD source.  Comments cite the
// corresponding protocolMW.m lines.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

#include "manifold/process.hpp"
#include "manifold/runtime.hpp"

namespace mg::mw {

/// The extern events of the behaviour interface (§4.3 step 1).
struct ProtocolEvents {
  static constexpr const char* create_pool = "create_pool";
  static constexpr const char* create_worker = "create_worker";
  static constexpr const char* rendezvous = "rendezvous";
  static constexpr const char* a_rendezvous = "a_rendezvous";
  static constexpr const char* finished = "finished";
  static constexpr const char* death_worker = "death_worker";
};

/// Creates one (not yet activated) worker process.  The paper passes the
/// Worker manifold as a parameter; we pass its factory.
using WorkerFactory =
    std::function<std::shared_ptr<iwim::Process>(iwim::Runtime&, std::size_t index)>;

struct ProtocolStats {
  std::size_t pools_created = 0;
  std::size_t workers_created = 0;
  /// Total wall time the coordinator spent at rendezvous counting
  /// death_worker events — pure coordination-layer overhead (§7's third
  /// category).
  double rendezvous_wait_seconds = 0.0;
};

/// What one Create_Worker_Pool invocation did.
struct PoolStats {
  std::size_t workers_created = 0;
  double rendezvous_wait_seconds = 0.0;
};

/// The manner ProtocolMW (protocolMW.m lines 54-64).  Call from a
/// coordinator process body; returns when the master raises `finished` (the
/// `halt` on line 63) or terminates.
ProtocolStats protocol_mw(iwim::ProcessContext& coordinator,
                          const std::shared_ptr<iwim::Process>& master, WorkerFactory factory);

/// The manner Create_Worker_Pool (protocolMW.m lines 12-51).  Creates
/// workers on demand, wires their streams, counts death_worker events at the
/// rendezvous and raises a_rendezvous.  Returns the number of workers the
/// pool created and the time spent waiting at the rendezvous.
PoolStats create_worker_pool(iwim::ProcessContext& coordinator, iwim::Process& master,
                             const WorkerFactory& factory, std::size_t& worker_counter);

/// Builds and runs the whole §5 main program:
///
///   manifold Main(process argv) {
///     begin: ProtocolMW(Master(argv), Worker).
///   }
///
/// Activates the master, runs a "Main" coordinator executing protocol_mw,
/// and blocks until both have terminated.  Returns the protocol statistics.
ProtocolStats run_main_program(iwim::Runtime& runtime,
                               const std::shared_ptr<iwim::Process>& master,
                               WorkerFactory factory);

}  // namespace mg::mw
