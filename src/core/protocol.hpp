// The generic master/worker coordination protocol — the paper's primary
// contribution (§4, protocolMW.m).
//
// "In MANIFOLD, we can easily realize this master/worker protocol in a
// generic way, where the master and the worker are parameters of the
// protocol. ... For the protocol, it is irrelevant to know what kind of
// computation is performed in the master or the worker."
//
// protocol_mw() renders the manner ProtocolMW (lines 54-64) and
// create_worker_pool() the manner Create_Worker_Pool (lines 12-51).  They
// run inside a coordinator process's body; the master and the worker factory
// are parameters, exactly as in the MANIFOLD source.  Comments cite the
// corresponding protocolMW.m lines.
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "fault/fault_plan.hpp"
#include "fleet/churn.hpp"
#include "manifold/process.hpp"
#include "manifold/runtime.hpp"

namespace mg::mw {

/// The extern events of the behaviour interface (§4.3 step 1), plus the
/// fault-tolerance extension: `crash_worker` is raised by a worker that dies
/// *without* producing its result (an exception, an injected crash, or a
/// result discarded at the transport boundary), so the coordinator can
/// distinguish lost work from a normal `death_worker` completion.
struct ProtocolEvents {
  static constexpr const char* create_pool = "create_pool";
  static constexpr const char* create_worker = "create_worker";
  static constexpr const char* rendezvous = "rendezvous";
  static constexpr const char* a_rendezvous = "a_rendezvous";
  static constexpr const char* finished = "finished";
  static constexpr const char* death_worker = "death_worker";
  static constexpr const char* crash_worker = "crash_worker";
};

/// Unit the fault-tolerant coordinator deposits into the master's dataport
/// in place of a result it gave up on (attempt cap or respawn budget
/// exhausted): the master's collect loop keeps its count, sees which slot
/// degraded, and can fall back to computing the work itself.
struct WorkAbandoned {
  std::size_t pool_slot = 0;  ///< creation order within the pool (0-based)
  std::size_t attempts = 0;   ///< dispatches consumed before giving up
};

/// Creates one (not yet activated) worker process.  The paper passes the
/// Worker manifold as a parameter; we pass its factory.
using WorkerFactory =
    std::function<std::shared_ptr<iwim::Process>(iwim::Runtime&, std::size_t index)>;

struct ProtocolStats {
  std::size_t pools_created = 0;
  std::size_t workers_created = 0;  ///< master-requested workers (respawns excluded)
  /// Total wall time the coordinator spent at rendezvous counting
  /// death_worker events — pure coordination-layer overhead (§7's third
  /// category).
  double rendezvous_wait_seconds = 0.0;
  /// Fault-tolerance ledger (crashes handled, retries, respawns, slots
  /// abandoned); all-zero when the retry policy is off and nothing failed.
  fault::FaultCounters faults;
  /// Elastic-fleet ledger (churn events applied, units re-leased); all-zero
  /// without a churn plan.
  fleet::FleetCounters fleet;
  /// run_main_program's overall deadline expired before the protocol ended.
  bool timed_out = false;
};

/// What one Create_Worker_Pool invocation did.
struct PoolStats {
  std::size_t workers_created = 0;
  double rendezvous_wait_seconds = 0.0;
  fault::FaultCounters faults;
  fleet::FleetCounters fleet;
  /// The master terminated mid-pool; the pool aborted instead of waiting for
  /// deaths that can no longer be acknowledged.
  bool master_terminated = false;
};

/// The manner ProtocolMW (protocolMW.m lines 54-64).  Call from a
/// coordinator process body; returns when the master raises `finished` (the
/// `halt` on line 63) or terminates.
///
/// With a non-null `retry`, pools run the fault-tolerant variant: workers
/// must use the fault-aware factory (they raise `crash_worker` on failure —
/// see make_fault_aware_worker_factory), lost work units are re-dispatched
/// to respawned workers with capped exponential backoff, hung workers are
/// killed at the per-task deadline, and once the attempt cap or respawn
/// budget is exhausted the slot is abandoned: the master receives a
/// WorkAbandoned unit instead of the result and the pool finishes degraded
/// rather than hanging.
/// With a non-null `churn` (requires `retry`), the pool additionally replays
/// a seeded spot-instance schedule against itself: Leave kills a running
/// worker and re-leases its unit immediately (no backoff), Crash kills one
/// and routes it through the normal crash/retry path, Join is recorded (the
/// threads pool cannot grow beyond the master's create_worker requests;
/// respawned incarnations are its joins).  Results stay bit-identical — the
/// re-leased unit is replayed from the coordinator's tap exactly once.
ProtocolStats protocol_mw(iwim::ProcessContext& coordinator,
                          const std::shared_ptr<iwim::Process>& master, WorkerFactory factory,
                          const fault::RetryPolicy* retry = nullptr,
                          const fleet::ChurnPlan* churn = nullptr);

/// The manner Create_Worker_Pool (protocolMW.m lines 12-51).  Creates
/// workers on demand, wires their streams, counts death_worker events at the
/// rendezvous and raises a_rendezvous.  Returns the number of workers the
/// pool created and the time spent waiting at the rendezvous.  With a
/// non-null `retry`, runs the fault-tolerant pool described at protocol_mw.
/// `worker_counter` numbers worker *incarnations*: respawned replacements
/// consume fresh values, which is what makes seeded fault injection a pure
/// function of the counter.
PoolStats create_worker_pool(iwim::ProcessContext& coordinator, iwim::Process& master,
                             const WorkerFactory& factory, std::size_t& worker_counter,
                             const fault::RetryPolicy* retry = nullptr,
                             const fleet::ChurnPlan* churn = nullptr);

struct RunOptions {
  /// Engages the fault-tolerant pool when set.  The fault-tolerant pool
  /// assumes the master sends exactly one work unit per create_worker (the
  /// §4.3 behaviour) so lost units can be replayed from the coordinator's
  /// tap of the master's output stream.
  std::optional<fault::RetryPolicy> retry;
  /// Overall wall-clock deadline for the whole main program; 0 = none.  On
  /// expiry every blocked coordinator/master wait is woken with
  /// ShutdownSignal and the returned stats carry timed_out=true — an error
  /// status instead of a hang when the master dies without raising finished.
  std::chrono::milliseconds overall_deadline{0};
  /// Seeded spot-instance churn applied to every pool (requires `retry`; the
  /// crash/respawn machinery doubles as the churn driver).  Event offsets are
  /// wall seconds from each pool's start.
  std::optional<fleet::ChurnPlanConfig> churn;
};

/// Builds and runs the whole §5 main program:
///
///   manifold Main(process argv) {
///     begin: ProtocolMW(Master(argv), Worker).
///   }
///
/// Activates the master, runs a "Main" coordinator executing protocol_mw,
/// and blocks until both have terminated.  Returns the protocol statistics.
ProtocolStats run_main_program(iwim::Runtime& runtime,
                               const std::shared_ptr<iwim::Process>& master,
                               WorkerFactory factory, RunOptions options = {});

}  // namespace mg::mw
