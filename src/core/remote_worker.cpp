#include "core/remote_worker.hpp"

#include <utility>

#include "core/marshal.hpp"
#include "net/remote.hpp"
#include "transport/subsolve.hpp"

namespace mg::mw {

WorkerFactory make_remote_worker_factory(net::RemoteEndpoint& endpoint, bool fault_tolerant,
                                         std::string kind) {
  net::RemoteEndpoint* ep = &endpoint;
  return [ep, fault_tolerant, kind = std::move(kind)](
             iwim::Runtime& runtime, std::size_t index) -> std::shared_ptr<iwim::Process> {
    return runtime.create_process(
        kind, kind + std::to_string(index), [ep, fault_tolerant](iwim::ProcessContext& ctx) {
          const iwim::Unit job = ctx.read("input");  // worker step 1
          const auto& item = job.as<WorkItem>();

          // Worker step 2, delegated across the wire.  The cancellation hook
          // lets a deadline kill() release the proxy mid-trip; the endpoint
          // then drops the channel so the stale result cannot come back.
          iwim::Process& self = ctx.self();
          net::RemoteEndpoint::RoundTrip trip =
              ep->round_trip(encode_work_item(item), [&self] { return self.killed(); });

          if (self.killed()) return;  // killed workers unwind silently

          if (!trip.ok) {
            ctx.trace("remote round trip failed: " + trip.error, "remote_worker.cpp", __LINE__);
            if (fault_tolerant) {
              // Peer disconnect / timeout / corrupt stream == worker crash.
              ctx.raise(ProtocolEvents::crash_worker);
            } else {
              ctx.write(iwim::Unit{}, "error");
              ctx.write(iwim::Unit{}, "output");
              ctx.raise(ProtocolEvents::death_worker);
            }
            return;
          }

          try {
            ResultItem result = decode_result_item(trip.payload);
            ctx.write(iwim::Unit::of(std::move(result)), "output");  // worker step 3
          } catch (const std::exception& e) {
            // A reply that decodes wrong is transport corruption: same
            // observable as a crash, never a fake result.
            ctx.trace(std::string("remote result rejected: ") + e.what(), "remote_worker.cpp",
                      __LINE__);
            if (fault_tolerant) {
              ctx.raise(ProtocolEvents::crash_worker);
            } else {
              ctx.write(iwim::Unit{}, "error");
              ctx.write(iwim::Unit{}, "output");
              ctx.raise(ProtocolEvents::death_worker);
            }
            return;
          }
          ctx.raise(ProtocolEvents::death_worker);  // worker step 4
        });
  };
}

int run_subsolve_worker(const std::string& host, std::uint16_t port) {
  return net::run_worker_loop(host, port, [](const std::vector<std::uint8_t>& work) {
    return encode_result_item(execute_work_item(decode_work_item(work)));
  });
}

}  // namespace mg::mw
