// Wire marshalling for the master/worker units.
//
// In the distributed run the work and result units cross machine boundaries
// (§6); this codec fixes their byte layout, which (a) makes the network
// model's payload sizes exact and (b) lets tests prove the concurrent result
// is bit-identical to the sequential one *even through serialization*.
#pragma once

#include <cstdint>
#include <vector>

#include "core/concurrent_solver.hpp"

namespace mg::mw {

std::vector<std::uint8_t> encode_work_item(const WorkItem& item);
WorkItem decode_work_item(const std::vector<std::uint8_t>& bytes);

std::vector<std::uint8_t> encode_result_item(const ResultItem& item);
ResultItem decode_result_item(const std::vector<std::uint8_t>& bytes);

/// Exact wire size of a result for grid (root, lx, ly) — used to cross-check
/// transport::subsolve_payload_bytes.
std::size_t result_wire_bytes(int root, int lx, int ly);

}  // namespace mg::mw
