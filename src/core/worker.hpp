// The worker's behaviour interface (§4.3) as a factory.
//
//   1. Read the information you need to do your job from your own input port.
//   2. Do the computational job.
//   3. Write the computed results to your own output port.
//   4. Raise death_worker: you are done and going to die.
//
// make_worker_factory wraps any Unit -> Unit computation in a
// protocol-compliant worker process ("the master and worker manifolds are
// easy to write as C wrappers around the original C subroutines", §5).
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>

#include "core/protocol.hpp"
#include "fault/fault_plan.hpp"

namespace mg::mw {

/// The worker's computational job: consumes the work unit, returns the
/// result unit.  Must not touch shared state (the IWIM black-box rule).
using WorkFn = std::function<iwim::Unit(const iwim::Unit&)>;

/// Produces a WorkerFactory for protocol_mw / run_main_program.  Each
/// created worker has kind `kind` (task weights key off it) and name
/// "<kind><index>".
WorkerFactory make_worker_factory(WorkFn work, std::string kind = "Worker");

/// What the fault-aware workers actually injected (atomics: workers run on
/// their own threads).  Shared by every incarnation a factory creates.
struct InjectionStats {
  std::atomic<std::size_t> crashes{0};
  std::atomic<std::size_t> hangs{0};
  std::atomic<std::size_t> corruptions{0};

  void merge_into(fault::FaultCounters& c) const {
    c.crashes_injected += crashes.load(std::memory_order_relaxed);
    c.hangs_injected += hangs.load(std::memory_order_relaxed);
    c.corruptions_injected += corruptions.load(std::memory_order_relaxed);
  }
};

/// Fault-aware variant of make_worker_factory, for pools run with a
/// RetryPolicy.  The plan decides per *incarnation index* (deterministic in
/// the seed, regardless of thread interleaving):
///
///  - Crash:   the worker reads its work unit, then dies raising
///             `crash_worker` — no result, no death_worker.
///  - Hang:    the worker reads its work unit and blocks forever; only the
///             coordinator's deadline kill releases it.
///  - Corrupt: the worker computes but its result is "corrupted in
///             transport": discarded, and crash_worker raised instead.
///  - None:    the normal §4.3 behaviour; a genuine exception from the work
///             function also raises crash_worker (so the coordinator retries
///             it) instead of faking an empty result.
///
/// Pair exclusively with a fault-tolerant pool: a crash_worker raised under
/// the legacy coordinator would leave the rendezvous counting forever.
/// `plan` may be null (no injection, but exceptions still crash visibly);
/// `stats`, when non-null, accumulates the injections actually performed.
WorkerFactory make_fault_aware_worker_factory(WorkFn work,
                                              std::shared_ptr<const fault::FaultPlan> plan,
                                              std::shared_ptr<InjectionStats> stats = nullptr,
                                              std::string kind = "Worker");

}  // namespace mg::mw
