// The worker's behaviour interface (§4.3) as a factory.
//
//   1. Read the information you need to do your job from your own input port.
//   2. Do the computational job.
//   3. Write the computed results to your own output port.
//   4. Raise death_worker: you are done and going to die.
//
// make_worker_factory wraps any Unit -> Unit computation in a
// protocol-compliant worker process ("the master and worker manifolds are
// easy to write as C wrappers around the original C subroutines", §5).
#pragma once

#include <functional>
#include <string>

#include "core/protocol.hpp"

namespace mg::mw {

/// The worker's computational job: consumes the work unit, returns the
/// result unit.  Must not touch shared state (the IWIM black-box rule).
using WorkFn = std::function<iwim::Unit(const iwim::Unit&)>;

/// Produces a WorkerFactory for protocol_mw / run_main_program.  Each
/// created worker has kind `kind` (task weights key off it) and name
/// "<kind><index>".
WorkerFactory make_worker_factory(WorkFn work, std::string kind = "Worker");

}  // namespace mg::mw
