// The TCP substrate's entry points into the unchanged protocol.
//
// make_remote_worker_factory produces §4.3-shaped proxy workers: each one
// reads its WorkItem from its own input port like any other worker, but the
// computation happens in a remote process — the proxy marshals the item over
// a RemoteEndpoint round trip and reports the decoded ResultItem.  From the
// coordinator's point of view nothing changed; a failed round trip surfaces
// as crash_worker (fault-tolerant pools) or as the legacy empty-result death,
// so peer disconnects, timeouts, and corrupt streams flow into the same
// retry/respawn/abandon machinery that supervises in-process workers.
//
// run_subsolve_worker is the matching worker-process main: a blocking serve
// loop that decodes WorkItems, subsolves, and returns encoded ResultItems.
#pragma once

#include <cstdint>
#include <string>

#include "core/protocol.hpp"

namespace mg::net {
class RemoteEndpoint;
}

namespace mg::mw {

/// Worker factory whose compute step is a RemoteEndpoint::round_trip.  With
/// `fault_tolerant`, failures raise crash_worker (pair with a RetryPolicy
/// pool); otherwise they mimic the legacy visible death (empty result +
/// error + death_worker).  The endpoint must outlive the run.
WorkerFactory make_remote_worker_factory(net::RemoteEndpoint& endpoint, bool fault_tolerant,
                                         std::string kind = "Worker");

/// Worker-process main loop: serves subsolve work from the master at
/// host:port until the master goes away.  Returns the process exit status.
int run_subsolve_worker(const std::string& host, std::uint16_t port);

}  // namespace mg::mw
