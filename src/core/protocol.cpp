#include "core/protocol.hpp"

#include <algorithm>
#include <map>
#include <optional>

#include "manifold/state_scope.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace mg::mw {

namespace {
struct ProtocolMetrics {
  obs::Counter& pools_created = obs::registry().counter("mw.pools_created");
  obs::Counter& workers_created = obs::registry().counter("mw.workers_created");
  /// Workers created per pool (distribution over pools).
  obs::Histogram& pool_workers = obs::registry().histogram(
      "mw.pool_worker_count", {1, 2, 4, 8, 16, 32, 64, 128, 256});
  /// Total time a pool's coordinator spent waiting at the rendezvous.
  obs::Histogram& rendezvous_wait =
      obs::registry().histogram("mw.rendezvous_wait_seconds");
  /// Latency of counting one death_worker event at the rendezvous.
  obs::Histogram& death_count_latency =
      obs::registry().histogram("mw.death_worker_count_latency_seconds");
};

ProtocolMetrics& protocol_metrics() {
  static ProtocolMetrics m;
  return m;
}

struct FaultMetrics {
  obs::Counter& crash_events = obs::registry().counter("mw.fault.crash_events");
  obs::Counter& timeouts = obs::registry().counter("mw.fault.timeouts");
  obs::Counter& retries = obs::registry().counter("mw.fault.retries");
  obs::Counter& respawns = obs::registry().counter("mw.fault.respawns");
  obs::Counter& abandoned = obs::registry().counter("mw.fault.slots_abandoned");
  /// Dispatches one slot consumed before resolving (1 = no faults).
  obs::Histogram& attempts_per_slot =
      obs::registry().histogram("mw.fault.attempts_per_slot", {1, 2, 3, 4, 6, 8, 12});
  obs::Histogram& backoff_seconds = obs::registry().histogram("mw.fault.backoff_seconds");
};

FaultMetrics& fault_metrics() {
  static FaultMetrics m;
  return m;
}

/// Records a `fault`-category span on the global tracer (fault events show
/// up as their own lane in the Chrome trace).
void fault_span(const std::string& name, double start, double end) {
  obs::SpanTracer& t = obs::tracer();
  if (t.enabled()) t.record({name, "fault", "mw.fault", start, end});
}
}  // namespace

using iwim::EventMatcher;
using iwim::EventOccurrence;
using iwim::ProcessRef;
using iwim::StateScope;
using iwim::StreamType;
using iwim::Unit;

namespace {

using Clock = std::chrono::steady_clock;

/// One worker "slot" of the fault-tolerant pool: a position created by one
/// master create_worker request, surviving crashes of the worker
/// incarnations that serve it.
struct Slot {
  enum class State { Running, AwaitingRespawn, Done, Abandoned };

  std::shared_ptr<iwim::Process> worker;
  iwim::Stream* result_stream = nullptr;  ///< worker.output -> master.dataport (KK)
  Unit work;                              ///< replayable copy from the tap
  bool work_captured = false;
  std::size_t attempts = 1;               ///< dispatches so far (first spawn = 1)
  State state = State::Running;
  bool has_deadline = false;
  Clock::time_point deadline{};
  Clock::time_point respawn_due{};
  double backoff_started = 0.0;           ///< tracer clock, for the fault span
};

bool resolved(const Slot& s) {
  return s.state == Slot::State::Done || s.state == Slot::State::Abandoned;
}

/// The fault-tolerant Create_Worker_Pool.  Same external contract as the
/// paper's manner — create workers on demand, acknowledge the rendezvous
/// when the pool has drained — but every worker slot is supervised: a
/// crash_worker event or an expired per-task deadline re-enqueues the lost
/// work unit onto a respawned replacement (capped exponential backoff,
/// bounded respawn budget), and an exhausted slot degrades gracefully by
/// handing the master a WorkAbandoned unit instead of deadlocking the
/// rendezvous.
///
/// Work replay relies on the §4.3 master behaviour (one send_work per
/// create_worker): the coordinator taps the master's output port with an
/// extra BK stream, so it holds a copy of every work unit in creation order.
PoolStats create_worker_pool_ft(iwim::ProcessContext& coordinator, iwim::Process& master,
                                const WorkerFactory& factory, std::size_t& worker_counter,
                                const fault::RetryPolicy& retry,
                                const fleet::ChurnPlan* churn) {
  iwim::Runtime& runtime = coordinator.runtime();
  PoolStats stats;
  FaultMetrics& fm = fault_metrics();

  std::vector<Slot> slots;
  std::map<std::uint64_t, std::size_t> slot_by_worker;  // live incarnation id -> slot
  std::size_t respawns_used = 0;
  std::size_t tap_assigned = 0;  // tap units handed to slots so far

  // The replay tap: master.output additionally feeds the coordinator's own
  // input port.  Attached before any worker stream, so the copy is pushed
  // before the worker can even read the original (Port::write replicates in
  // attachment order) — a faulted worker's unit is always replayable.
  iwim::Port& tap = coordinator.self().port("input");
  iwim::Stream& tap_stream = runtime.connect(master.port("output"), tap, StreamType::BK);

  auto drain_tap = [&] {
    while (tap_assigned < slots.size()) {
      std::optional<Unit> u = tap.try_read();
      if (!u) break;
      slots[tap_assigned].work = std::move(*u);
      slots[tap_assigned].work_captured = true;
      ++tap_assigned;
    }
  };

  auto abandon = [&](std::size_t idx) {
    Slot& s = slots[idx];
    s.state = Slot::State::Abandoned;
    stats.faults.abandoned += 1;
    stats.faults.degraded = true;
    fm.abandoned.add();
    fm.attempts_per_slot.observe(static_cast<double>(s.attempts));
    coordinator.trace("slot " + std::to_string(idx) + " abandoned after " +
                          std::to_string(s.attempts) + " attempt(s)",
                      "protocol.cpp", __LINE__);
    // Keep the master's collect count intact: it receives an abandonment
    // marker in place of the result and may fall back to local compute.
    runtime.send(master.port("dataport"), Unit::of(WorkAbandoned{idx, s.attempts}));
  };

  // A slot's incarnation failed (crashed, or was killed at its deadline):
  // retry with backoff if the policy still allows it, else degrade.
  auto fail_slot = [&](std::size_t idx, bool timed_out) {
    Slot& s = slots[idx];
    const double now_t = obs::tracer().clock_now();
    if (timed_out) {
      stats.faults.timeouts += 1;
      fm.timeouts.add();
      // Cancellable kill: wake the hung incarnation out of any blocked
      // read/await; break its result stream so a late straggler result
      // cannot double-deliver into the dataport.
      s.worker->kill();
      fault_span("timeout:slot" + std::to_string(idx), now_t, now_t);
    } else {
      stats.faults.crash_events += 1;
      fm.crash_events.add();
      fault_span("crash:slot" + std::to_string(idx), now_t, now_t);
    }
    if (s.result_stream != nullptr) runtime.disconnect_source(*s.result_stream);
    slot_by_worker.erase(s.worker->id());
    drain_tap();
    const bool can_retry = s.work_captured && s.attempts < retry.max_attempts &&
                           respawns_used < retry.respawn_budget;
    if (!can_retry) {
      abandon(idx);
      return;
    }
    s.state = Slot::State::AwaitingRespawn;
    const auto backoff = retry.backoff_for(s.attempts);
    s.respawn_due = Clock::now() + backoff;
    s.backoff_started = now_t;
    stats.faults.retries += 1;
    fm.retries.add();
    fm.backoff_seconds.observe(static_cast<double>(backoff.count()) / 1e3);
    coordinator.trace("slot " + std::to_string(idx) + " lost its worker (" +
                          (timed_out ? "timeout" : "crash") + "); retry in " +
                          std::to_string(backoff.count()) + " ms",
                      "protocol.cpp", __LINE__);
  };

  auto respawn = [&](std::size_t idx) {
    Slot& s = slots[idx];
    const std::size_t incarnation = worker_counter++;
    std::shared_ptr<iwim::Process> worker = factory(runtime, incarnation);
    MG_REQUIRE_MSG(worker != nullptr, "WorkerFactory returned null");
    s.worker = worker;
    s.attempts += 1;
    s.state = Slot::State::Running;
    if (retry.task_deadline.count() > 0) {
      s.has_deadline = true;
      s.deadline = Clock::now() + retry.task_deadline;
    }
    respawns_used += 1;
    stats.faults.respawns += 1;
    fm.respawns.add();
    // The replacement gets the saved work unit straight from the
    // coordinator; only the KK result stream needs wiring.
    s.result_stream = &runtime.connect(worker->port("output"), master.port("dataport"),
                                       StreamType::KK);
    runtime.send(worker->port("input"), s.work);
    worker->activate();
    slot_by_worker[worker->id()] = idx;
    fault_span("respawn:slot" + std::to_string(idx), s.backoff_started,
               obs::tracer().clock_now());
    coordinator.trace("slot " + std::to_string(idx) + " respawned (attempt " +
                          std::to_string(s.attempts) + ")",
                      "protocol.cpp", __LINE__);
  };

  // Spot-instance churn: the seeded plan's Leave/Crash events pick a running
  // slot, kill its incarnation, and route the lost unit through the normal
  // retry machinery — a graceful Leave re-leases immediately (no backoff),
  // a Crash pays the crash-detection backoff.  Joins are recorded: the
  // threads pool cannot grow past the master's create_worker requests, so
  // respawned incarnations are this substrate's joiners.
  const Clock::time_point churn_epoch = Clock::now();
  std::size_t churn_next = 0;

  auto churn_due_at = [&](std::size_t i) {
    return churn_epoch + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(churn->events()[i].at_seconds));
  };

  auto apply_churn = [&](const fleet::ChurnEvent& event) {
    if (event.kind == fleet::ChurnEventKind::Join) {
      stats.fleet.joins += 1;
      coordinator.trace("churn: join recorded", "protocol.cpp", __LINE__);
      return;
    }
    // Deterministic victim: the lowest-index running slot (each slot holds
    // exactly one unit, so "most-loaded" is a tie broken by creation order).
    std::size_t idx = slots.size();
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].state == Slot::State::Running) {
        idx = i;
        break;
      }
    }
    if (idx == slots.size()) return;  // nobody left to take away
    const bool graceful = event.kind == fleet::ChurnEventKind::Leave;
    if (graceful) {
      stats.fleet.leaves += 1;
    } else {
      stats.fleet.crashes += 1;
    }
    coordinator.trace("churn: slot " + std::to_string(idx) +
                          (graceful ? " worker left" : " worker crashed"),
                      "protocol.cpp", __LINE__);
    slots[idx].worker->kill();
    fail_slot(idx, /*timed_out=*/false);
    if (slots[idx].state == Slot::State::AwaitingRespawn) {
      stats.fleet.releases += 1;
      if (graceful) slots[idx].respawn_due = Clock::now();  // re-lease at once
    }
  };

  // Next timer to service: the earliest live deadline, due respawn, or
  // scheduled churn event.
  auto next_wake = [&]() -> std::optional<Clock::time_point> {
    std::optional<Clock::time_point> wake;
    for (const Slot& s : slots) {
      if (s.state == Slot::State::Running && s.has_deadline) {
        if (!wake || s.deadline < *wake) wake = s.deadline;
      } else if (s.state == Slot::State::AwaitingRespawn) {
        if (!wake || s.respawn_due < *wake) wake = s.respawn_due;
      }
    }
    if (churn != nullptr && churn_next < churn->events().size()) {
      const auto due = churn_due_at(churn_next);
      if (!wake || due < *wake) wake = due;
    }
    return wake;
  };

  auto service_timers = [&] {
    const auto now = Clock::now();
    if (churn != nullptr) {
      while (churn_next < churn->events().size() && churn_due_at(churn_next) <= now) {
        apply_churn(churn->events()[churn_next]);
        ++churn_next;
      }
    }
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].state == Slot::State::Running && slots[i].has_deadline &&
          slots[i].deadline <= now) {
        fail_slot(i, /*timed_out=*/true);
      }
    }
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].state == Slot::State::AwaitingRespawn && slots[i].respawn_due <= now) {
        respawn(i);
      }
    }
  };

  // The streams of the current create_worker state; replaced (dismantled) on
  // the next pre-empting event.  Only the BK work stream is state-scoped;
  // the KK result stream is slot-owned (it must survive, and may need to be
  // broken individually when its worker is killed).
  std::optional<StateScope> state_streams;

  bool rendezvous_requested = false;
  support::Stopwatch rendezvous_clock;
  double rendezvous_started = -1.0;

  const std::vector<EventMatcher> begin_labels = {
      {ProtocolEvents::create_worker, master.id()},
      {ProtocolEvents::rendezvous, master.id()},
      {ProtocolEvents::crash_worker, std::nullopt},
      {ProtocolEvents::death_worker, std::nullopt},
      {iwim::kTerminatedEvent, master.id()},
  };
  const std::vector<EventMatcher> drain_labels = {
      {ProtocolEvents::crash_worker, std::nullopt},
      {ProtocolEvents::death_worker, std::nullopt},
      {iwim::kTerminatedEvent, master.id()},
  };

  coordinator.trace("begin (fault-tolerant)", "protocol.cpp", __LINE__);
  for (;;) {
    service_timers();
    if (rendezvous_requested &&
        std::all_of(slots.begin(), slots.end(), [](const Slot& s) { return resolved(s); })) {
      break;
    }

    const auto& labels = rendezvous_requested ? drain_labels : begin_labels;
    std::optional<EventOccurrence> occurrence;
    if (const auto wake = next_wake()) {
      const auto now = Clock::now();
      // Ceil, not truncate: rounding the wait down wakes the coordinator a
      // fraction of a millisecond before the timer is due, and the re-check
      // finds nothing to service — a busy-spin until the timer really fires.
      const auto until = *wake > now
                             ? std::chrono::ceil<std::chrono::milliseconds>(*wake - now)
                             : std::chrono::milliseconds(0);
      occurrence = coordinator.await_for(labels, std::max(until, std::chrono::milliseconds(1)));
      if (!occurrence) continue;  // timer tick: loop services deadlines/respawns
    } else {
      occurrence = coordinator.await(labels);
    }
    // NOTE: only the protocol states (create_worker / rendezvous /
    // termination) dismantle the previous state's streams.  A crash or death
    // arriving between the worker-reference send and the master's send_work
    // must NOT break the freshly wired work stream — with the tap attached,
    // the master's output port always has a stream, so a dismantled work
    // stream would swallow the unit instead of letting it pend.

    if (occurrence->event == ProtocolEvents::create_worker) {
      // Lines 27-37: the create_worker state, plus slot supervision.
      state_streams.reset();  // pre-emption dismantles the previous state's streams
      coordinator.trace("create_worker: begin", "protocol.cpp", __LINE__);
      const std::size_t incarnation = worker_counter++;
      std::shared_ptr<iwim::Process> worker = factory(runtime, incarnation);
      MG_REQUIRE_MSG(worker != nullptr, "WorkerFactory returned null");

      Slot slot;
      slot.worker = worker;
      if (retry.task_deadline.count() > 0) {
        slot.has_deadline = true;
        slot.deadline = Clock::now() + retry.task_deadline;
      }
      // Line 32: worker.output -> master.dataport, type KK (slot-owned).
      slot.result_stream =
          &runtime.connect(worker->port("output"), master.port("dataport"), StreamType::KK);
      state_streams.emplace(runtime);
      // Line 36 second `->`: master.output -> worker.input (default BK).
      state_streams->connect(master.port("output"), worker->port("input"), StreamType::BK);
      // Line 36 first `->`: the worker reference `&worker` flows to master.
      runtime.send(master.port("input"), Unit::of(ProcessRef{worker}));
      slot_by_worker[worker->id()] = slots.size();
      slots.push_back(std::move(slot));
      protocol_metrics().workers_created.add();
    } else if (occurrence->event == ProtocolEvents::rendezvous) {
      state_streams.reset();
      rendezvous_requested = true;
      rendezvous_clock.reset();
      rendezvous_started = obs::tracer().clock_now();
    } else if (occurrence->event == ProtocolEvents::crash_worker) {
      const auto it = slot_by_worker.find(occurrence->source);
      // Unknown sources are stale: a crash from a worker this pool already
      // resolved (or another pool's) must not corrupt the accounting.
      if (it != slot_by_worker.end() && slots[it->second].state == Slot::State::Running) {
        fail_slot(it->second, /*timed_out=*/false);
      }
    } else if (occurrence->event == ProtocolEvents::death_worker) {
      const auto it = slot_by_worker.find(occurrence->source);
      if (it != slot_by_worker.end() && slots[it->second].state == Slot::State::Running) {
        Slot& s = slots[it->second];
        s.state = Slot::State::Done;
        fm.attempts_per_slot.observe(static_cast<double>(s.attempts));
        slot_by_worker.erase(it);
      }
    } else {
      // The master terminated mid-pool: nobody is left to acknowledge the
      // rendezvous.  Kill what still runs and abort instead of waiting for
      // deaths forever.
      state_streams.reset();
      for (Slot& s : slots) {
        if (s.state == Slot::State::Running) s.worker->kill();
      }
      stats.faults.degraded = true;
      stats.master_terminated = true;
      stats.workers_created = slots.size();
      coordinator.trace("master terminated mid-pool; aborting", "protocol.cpp", __LINE__);
      runtime.disconnect_source(tap_stream);
      return stats;
    }
  }

  const double waited = rendezvous_started >= 0 ? rendezvous_clock.elapsed_seconds() : 0.0;
  protocol_metrics().rendezvous_wait.observe(waited);
  protocol_metrics().pool_workers.observe(static_cast<double>(slots.size()));

  // The pool is over: break the tap and consume the copies of work units
  // that resolved without a replay, so the next pool starts a clean tap.
  runtime.disconnect_source(tap_stream);
  drain_tap();

  stats.workers_created = slots.size();
  stats.rendezvous_wait_seconds = waited;
  // Line 50: MES + raise(a_rendezvous); the manner returns.
  coordinator.trace("rendezvous acknowledged", "protocol.cpp", __LINE__);
  coordinator.raise(ProtocolEvents::a_rendezvous);
  return stats;
}

}  // namespace

PoolStats create_worker_pool(iwim::ProcessContext& coordinator, iwim::Process& master,
                             const WorkerFactory& factory, std::size_t& worker_counter,
                             const fault::RetryPolicy* retry, const fleet::ChurnPlan* churn) {
  if (retry != nullptr) {
    return create_worker_pool_ft(coordinator, master, factory, worker_counter, *retry,
                                 churn != nullptr && churn->empty() ? nullptr : churn);
  }
  MG_REQUIRE_MSG(churn == nullptr || churn->empty(),
                 "churn requires the fault-tolerant pool (set a retry policy)");
  iwim::Runtime& runtime = coordinator.runtime();

  // Lines 18-19: `auto process now is variable(0). auto process t is
  // variable(0).`  Counters for created workers and observed deaths.
  std::int64_t now = 0;
  std::int64_t t = 0;

  // The streams of the current create_worker state; replaced (dismantled) on
  // the next pre-empting event.  BK streams break at the source; the KK
  // result stream (line 32) survives.
  std::optional<StateScope> state_streams;

  // Line 23: `priority create_worker > rendezvous.` — matcher order below.
  const std::vector<EventMatcher> labels = {
      {ProtocolEvents::create_worker, master.id()},
      {ProtocolEvents::rendezvous, master.id()},
  };

  coordinator.trace("begin", "protocol.cpp", __LINE__);  // line 25: MES("begin")
  for (;;) {
    // Line 25: the begin state IDLEs until a labelled event pre-empts it.
    const EventOccurrence occurrence = coordinator.await(labels);
    state_streams.reset();  // pre-emption dismantles the previous state's streams

    if (occurrence.event == ProtocolEvents::create_worker) {
      // Lines 27-37: the create_worker state.
      coordinator.trace("create_worker: begin", "protocol.cpp", __LINE__);  // line 35
      const std::size_t index = worker_counter++;
      std::shared_ptr<iwim::Process> worker = factory(runtime, index);  // line 30
      MG_REQUIRE_MSG(worker != nullptr, "WorkerFactory returned null");

      state_streams.emplace(runtime);
      // Line 32 + 36 third `->`: worker.output -> master.dataport, type KK.
      state_streams->connect(worker->port("output"), master.port("dataport"), StreamType::KK);
      // Line 36 second `->`: master.output -> worker.input (default BK).
      state_streams->connect(master.port("output"), worker->port("input"), StreamType::BK);
      // Line 36 first `->`: the worker reference `&worker` flows to master.
      runtime.send(master.port("input"), Unit::of(ProcessRef{worker}));
      ++now;  // line 34: `now = now + 1`
      protocol_metrics().workers_created.add();
    } else {
      // Lines 39-47: the rendezvous state — count death_worker events until
      // every created worker has died.
      const obs::ScopedSpan span(&obs::tracer(), "rendezvous", "mw",
                                 coordinator.self().kind().c_str());
      support::Stopwatch rendezvous_clock;
      while (t < now) {
        support::Stopwatch death_clock;
        coordinator.await({{ProtocolEvents::death_worker, std::nullopt}});
        protocol_metrics().death_count_latency.observe(death_clock.elapsed_seconds());
        ++t;  // line 42
      }
      const double waited = rendezvous_clock.elapsed_seconds();
      protocol_metrics().rendezvous_wait.observe(waited);
      protocol_metrics().pool_workers.observe(static_cast<double>(now));
      // Line 50: MES + raise(a_rendezvous); the manner returns.
      coordinator.trace("rendezvous acknowledged", "protocol.cpp", __LINE__);
      coordinator.raise(ProtocolEvents::a_rendezvous);
      return {static_cast<std::size_t>(now), waited, {}, false};
    }
  }
}

ProtocolStats protocol_mw(iwim::ProcessContext& coordinator,
                          const std::shared_ptr<iwim::Process>& master, WorkerFactory factory,
                          const fault::RetryPolicy* retry, const fleet::ChurnPlan* churn) {
  MG_REQUIRE(master != nullptr);
  ProtocolStats stats;
  std::size_t worker_counter = 0;

  const std::vector<EventMatcher> labels = {
      {ProtocolEvents::create_pool, master->id()},
      {ProtocolEvents::finished, master->id()},
      {iwim::kTerminatedEvent, master->id()},
  };

  for (;;) {
    // Line 59: `begin: terminated(master).` — wait for events raised by the
    // master (or its termination).
    const EventOccurrence occurrence = coordinator.await(labels);
    if (occurrence.event == ProtocolEvents::create_pool) {
      // Line 61: the create_pool state calls Create_Worker_Pool, then posts
      // begin (the loop continues).
      const PoolStats pool =
          create_worker_pool(coordinator, *master, factory, worker_counter, retry, churn);
      stats.workers_created += pool.workers_created;
      stats.rendezvous_wait_seconds += pool.rendezvous_wait_seconds;
      stats.pools_created += 1;
      stats.faults += pool.faults;
      stats.fleet += pool.fleet;
      protocol_metrics().pools_created.add();
      // The pool saw the master terminate: it consumed the occurrence, so
      // returning here (not re-awaiting) is what ends the protocol.
      if (pool.master_terminated) return stats;
    } else {
      // Line 63 (`finished: halt.`) or the master terminated first.
      return stats;
    }
  }
}

ProtocolStats run_main_program(iwim::Runtime& runtime,
                               const std::shared_ptr<iwim::Process>& master,
                               WorkerFactory factory, RunOptions options) {
  MG_REQUIRE(master != nullptr);
  ProtocolStats stats;
  const fault::RetryPolicy* retry = options.retry ? &*options.retry : nullptr;
  const fleet::ChurnPlan plan =
      options.churn ? fleet::ChurnPlan(*options.churn) : fleet::ChurnPlan();
  const fleet::ChurnPlan* churn = options.churn ? &plan : nullptr;
  // §5 mainprog.m: Main's begin state is ProtocolMW(Master(argv), Worker).
  auto main = runtime.create_process(
      "Main", "main",
      [&stats, master, retry, churn, factory = std::move(factory)](iwim::ProcessContext& ctx) {
        stats = protocol_mw(ctx, master, factory, retry, churn);
      });
  // The master passed to ProtocolMW is "the already active process instance".
  master->activate();
  main->activate();
  bool timed_out = false;
  if (options.overall_deadline.count() > 0 &&
      !main->wait_terminated_for(options.overall_deadline)) {
    // The protocol outlived its deadline (e.g. the master died mid-pool
    // without fault tolerance engaged).  Wake every blocked wait with
    // ShutdownSignal so the coordinator and master unwind, and report an
    // error status instead of hanging.
    timed_out = true;
    main->stop_blocking();
    master->stop_blocking();
  }
  main->wait_terminated();
  master->wait_terminated();
  if (timed_out) stats.timed_out = true;
  fleet::add_fleet_metrics(stats.fleet);
  return stats;
}

}  // namespace mg::mw
