#include "core/protocol.hpp"

#include <optional>

#include "manifold/state_scope.hpp"
#include "support/check.hpp"

namespace mg::mw {

using iwim::EventMatcher;
using iwim::EventOccurrence;
using iwim::ProcessRef;
using iwim::StateScope;
using iwim::StreamType;
using iwim::Unit;

std::size_t create_worker_pool(iwim::ProcessContext& coordinator, iwim::Process& master,
                               const WorkerFactory& factory, std::size_t& worker_counter) {
  iwim::Runtime& runtime = coordinator.runtime();

  // Lines 18-19: `auto process now is variable(0). auto process t is
  // variable(0).`  Counters for created workers and observed deaths.
  std::int64_t now = 0;
  std::int64_t t = 0;

  // The streams of the current create_worker state; replaced (dismantled) on
  // the next pre-empting event.  BK streams break at the source; the KK
  // result stream (line 32) survives.
  std::optional<StateScope> state_streams;

  // Line 23: `priority create_worker > rendezvous.` — matcher order below.
  const std::vector<EventMatcher> labels = {
      {ProtocolEvents::create_worker, master.id()},
      {ProtocolEvents::rendezvous, master.id()},
  };

  coordinator.trace("begin", "protocol.cpp", __LINE__);  // line 25: MES("begin")
  for (;;) {
    // Line 25: the begin state IDLEs until a labelled event pre-empts it.
    const EventOccurrence occurrence = coordinator.await(labels);
    state_streams.reset();  // pre-emption dismantles the previous state's streams

    if (occurrence.event == ProtocolEvents::create_worker) {
      // Lines 27-37: the create_worker state.
      coordinator.trace("create_worker: begin", "protocol.cpp", __LINE__);  // line 35
      const std::size_t index = worker_counter++;
      std::shared_ptr<iwim::Process> worker = factory(runtime, index);  // line 30
      MG_REQUIRE_MSG(worker != nullptr, "WorkerFactory returned null");

      state_streams.emplace(runtime);
      // Line 32 + 36 third `->`: worker.output -> master.dataport, type KK.
      state_streams->connect(worker->port("output"), master.port("dataport"), StreamType::KK);
      // Line 36 second `->`: master.output -> worker.input (default BK).
      state_streams->connect(master.port("output"), worker->port("input"), StreamType::BK);
      // Line 36 first `->`: the worker reference `&worker` flows to master.
      runtime.send(master.port("input"), Unit::of(ProcessRef{worker}));
      ++now;  // line 34: `now = now + 1`
    } else {
      // Lines 39-47: the rendezvous state — count death_worker events until
      // every created worker has died.
      while (t < now) {
        coordinator.await({{ProtocolEvents::death_worker, std::nullopt}});
        ++t;  // line 42
      }
      // Line 50: MES + raise(a_rendezvous); the manner returns.
      coordinator.trace("rendezvous acknowledged", "protocol.cpp", __LINE__);
      coordinator.raise(ProtocolEvents::a_rendezvous);
      return static_cast<std::size_t>(now);
    }
  }
}

ProtocolStats protocol_mw(iwim::ProcessContext& coordinator,
                          const std::shared_ptr<iwim::Process>& master, WorkerFactory factory) {
  MG_REQUIRE(master != nullptr);
  ProtocolStats stats;
  std::size_t worker_counter = 0;

  const std::vector<EventMatcher> labels = {
      {ProtocolEvents::create_pool, master->id()},
      {ProtocolEvents::finished, master->id()},
      {iwim::kTerminatedEvent, master->id()},
  };

  for (;;) {
    // Line 59: `begin: terminated(master).` — wait for events raised by the
    // master (or its termination).
    const EventOccurrence occurrence = coordinator.await(labels);
    if (occurrence.event == ProtocolEvents::create_pool) {
      // Line 61: the create_pool state calls Create_Worker_Pool, then posts
      // begin (the loop continues).
      stats.workers_created +=
          create_worker_pool(coordinator, *master, factory, worker_counter);
      stats.pools_created += 1;
    } else {
      // Line 63 (`finished: halt.`) or the master terminated first.
      return stats;
    }
  }
}

ProtocolStats run_main_program(iwim::Runtime& runtime,
                               const std::shared_ptr<iwim::Process>& master,
                               WorkerFactory factory) {
  MG_REQUIRE(master != nullptr);
  ProtocolStats stats;
  // §5 mainprog.m: Main's begin state is ProtocolMW(Master(argv), Worker).
  auto main = runtime.create_process(
      "Main", "main", [&stats, master, factory = std::move(factory)](iwim::ProcessContext& ctx) {
        stats = protocol_mw(ctx, master, factory);
      });
  // The master passed to ProtocolMW is "the already active process instance".
  master->activate();
  main->activate();
  main->wait_terminated();
  master->wait_terminated();
  return stats;
}

}  // namespace mg::mw
