#include "core/protocol.hpp"

#include <optional>

#include "manifold/state_scope.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace mg::mw {

namespace {
struct ProtocolMetrics {
  obs::Counter& pools_created = obs::registry().counter("mw.pools_created");
  obs::Counter& workers_created = obs::registry().counter("mw.workers_created");
  /// Workers created per pool (distribution over pools).
  obs::Histogram& pool_workers = obs::registry().histogram(
      "mw.pool_worker_count", {1, 2, 4, 8, 16, 32, 64, 128, 256});
  /// Total time a pool's coordinator spent waiting at the rendezvous.
  obs::Histogram& rendezvous_wait =
      obs::registry().histogram("mw.rendezvous_wait_seconds");
  /// Latency of counting one death_worker event at the rendezvous.
  obs::Histogram& death_count_latency =
      obs::registry().histogram("mw.death_worker_count_latency_seconds");
};

ProtocolMetrics& protocol_metrics() {
  static ProtocolMetrics m;
  return m;
}
}  // namespace

using iwim::EventMatcher;
using iwim::EventOccurrence;
using iwim::ProcessRef;
using iwim::StateScope;
using iwim::StreamType;
using iwim::Unit;

PoolStats create_worker_pool(iwim::ProcessContext& coordinator, iwim::Process& master,
                             const WorkerFactory& factory, std::size_t& worker_counter) {
  iwim::Runtime& runtime = coordinator.runtime();

  // Lines 18-19: `auto process now is variable(0). auto process t is
  // variable(0).`  Counters for created workers and observed deaths.
  std::int64_t now = 0;
  std::int64_t t = 0;

  // The streams of the current create_worker state; replaced (dismantled) on
  // the next pre-empting event.  BK streams break at the source; the KK
  // result stream (line 32) survives.
  std::optional<StateScope> state_streams;

  // Line 23: `priority create_worker > rendezvous.` — matcher order below.
  const std::vector<EventMatcher> labels = {
      {ProtocolEvents::create_worker, master.id()},
      {ProtocolEvents::rendezvous, master.id()},
  };

  coordinator.trace("begin", "protocol.cpp", __LINE__);  // line 25: MES("begin")
  for (;;) {
    // Line 25: the begin state IDLEs until a labelled event pre-empts it.
    const EventOccurrence occurrence = coordinator.await(labels);
    state_streams.reset();  // pre-emption dismantles the previous state's streams

    if (occurrence.event == ProtocolEvents::create_worker) {
      // Lines 27-37: the create_worker state.
      coordinator.trace("create_worker: begin", "protocol.cpp", __LINE__);  // line 35
      const std::size_t index = worker_counter++;
      std::shared_ptr<iwim::Process> worker = factory(runtime, index);  // line 30
      MG_REQUIRE_MSG(worker != nullptr, "WorkerFactory returned null");

      state_streams.emplace(runtime);
      // Line 32 + 36 third `->`: worker.output -> master.dataport, type KK.
      state_streams->connect(worker->port("output"), master.port("dataport"), StreamType::KK);
      // Line 36 second `->`: master.output -> worker.input (default BK).
      state_streams->connect(master.port("output"), worker->port("input"), StreamType::BK);
      // Line 36 first `->`: the worker reference `&worker` flows to master.
      runtime.send(master.port("input"), Unit::of(ProcessRef{worker}));
      ++now;  // line 34: `now = now + 1`
      protocol_metrics().workers_created.add();
    } else {
      // Lines 39-47: the rendezvous state — count death_worker events until
      // every created worker has died.
      const obs::ScopedSpan span(&obs::tracer(), "rendezvous", "mw",
                                 coordinator.self().kind().c_str());
      support::Stopwatch rendezvous_clock;
      while (t < now) {
        support::Stopwatch death_clock;
        coordinator.await({{ProtocolEvents::death_worker, std::nullopt}});
        protocol_metrics().death_count_latency.observe(death_clock.elapsed_seconds());
        ++t;  // line 42
      }
      const double waited = rendezvous_clock.elapsed_seconds();
      protocol_metrics().rendezvous_wait.observe(waited);
      protocol_metrics().pool_workers.observe(static_cast<double>(now));
      // Line 50: MES + raise(a_rendezvous); the manner returns.
      coordinator.trace("rendezvous acknowledged", "protocol.cpp", __LINE__);
      coordinator.raise(ProtocolEvents::a_rendezvous);
      return {static_cast<std::size_t>(now), waited};
    }
  }
}

ProtocolStats protocol_mw(iwim::ProcessContext& coordinator,
                          const std::shared_ptr<iwim::Process>& master, WorkerFactory factory) {
  MG_REQUIRE(master != nullptr);
  ProtocolStats stats;
  std::size_t worker_counter = 0;

  const std::vector<EventMatcher> labels = {
      {ProtocolEvents::create_pool, master->id()},
      {ProtocolEvents::finished, master->id()},
      {iwim::kTerminatedEvent, master->id()},
  };

  for (;;) {
    // Line 59: `begin: terminated(master).` — wait for events raised by the
    // master (or its termination).
    const EventOccurrence occurrence = coordinator.await(labels);
    if (occurrence.event == ProtocolEvents::create_pool) {
      // Line 61: the create_pool state calls Create_Worker_Pool, then posts
      // begin (the loop continues).
      const PoolStats pool = create_worker_pool(coordinator, *master, factory, worker_counter);
      stats.workers_created += pool.workers_created;
      stats.rendezvous_wait_seconds += pool.rendezvous_wait_seconds;
      stats.pools_created += 1;
      protocol_metrics().pools_created.add();
    } else {
      // Line 63 (`finished: halt.`) or the master terminated first.
      return stats;
    }
  }
}

ProtocolStats run_main_program(iwim::Runtime& runtime,
                               const std::shared_ptr<iwim::Process>& master,
                               WorkerFactory factory) {
  MG_REQUIRE(master != nullptr);
  ProtocolStats stats;
  // §5 mainprog.m: Main's begin state is ProtocolMW(Master(argv), Worker).
  auto main = runtime.create_process(
      "Main", "main", [&stats, master, factory = std::move(factory)](iwim::ProcessContext& ctx) {
        stats = protocol_mw(ctx, master, factory);
      });
  // The master passed to ProtocolMW is "the already active process instance".
  master->activate();
  main->activate();
  main->wait_terminated();
  master->wait_terminated();
  return stats;
}

}  // namespace mg::mw
