// The master's behaviour interface (§4.3) as a typed API.
//
// A master is an atomic process (a wrapper around the sequential code minus
// subsolve) whose interaction with the protocol follows the numbered steps
// of §4.3.  MasterApi exposes exactly those steps; a master body that only
// calls them is protocol-compliant by construction.
#pragma once

#include <memory>

#include "core/protocol.hpp"
#include "manifold/process.hpp"

namespace mg::mw {

class MasterApi {
 public:
  explicit MasterApi(iwim::ProcessContext& context) : context_(context) {}

  /// Step 3(a): request an empty workers-pool (raise create_pool).
  void create_pool();

  /// Steps 3(b)+(c): request a worker (raise create_worker), read its
  /// reference from the master's own input port, and activate it.
  std::shared_ptr<iwim::Process> create_worker();

  /// Step 3(d): write the worker's job description to the master's own
  /// output port (the coordinator has wired it to the worker's input).
  void send_work(iwim::Unit work);

  /// Step 3(f): read one computational result from the dataport.
  iwim::Unit collect_result();

  /// Steps 3(g)+(h): raise rendezvous and wait for a_rendezvous.
  void rendezvous();

  /// Step 4 (end): raise finished — no more pools needed.
  void finished();

  iwim::ProcessContext& context() { return context_; }

 private:
  iwim::ProcessContext& context_;
};

/// Port set every master must declare (§4.2 line 54: `process master
/// <input, dataport / output, error>`): the standard ports plus `dataport`.
std::vector<iwim::PortSpec> master_ports();

/// Creates a master process (kind "Master") with the required ports, whose
/// body receives a MasterApi.
std::shared_ptr<iwim::AtomicProcess> make_master(
    iwim::Runtime& runtime, std::string name,
    std::function<void(MasterApi&, iwim::ProcessContext&)> body);

}  // namespace mg::mw
