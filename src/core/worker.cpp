#include "core/worker.hpp"

namespace mg::mw {

WorkerFactory make_worker_factory(WorkFn work, std::string kind) {
  return [work = std::move(work), kind = std::move(kind)](
             iwim::Runtime& runtime, std::size_t index) -> std::shared_ptr<iwim::Process> {
    return runtime.create_process(
        kind, kind + std::to_string(index), [work](iwim::ProcessContext& ctx) {
          const iwim::Unit job = ctx.read("input");  // worker step 1
          try {
            iwim::Unit result = work(job);           // worker step 2
            ctx.write(std::move(result), "output");  // worker step 3
          } catch (const std::exception& e) {
            // A crashed worker must still die visibly: write an empty unit
            // so the master is not left waiting for a result, report the
            // error on the error port, and fall through to death_worker —
            // otherwise the rendezvous would count forever.
            ctx.trace(std::string("worker failed: ") + e.what(), "worker.cpp", __LINE__);
            ctx.write(iwim::Unit{}, "error");
            ctx.write(iwim::Unit{}, "output");
          }
          ctx.raise(ProtocolEvents::death_worker);   // worker step 4
        });
  };
}

}  // namespace mg::mw
