#include "core/worker.hpp"

namespace mg::mw {

WorkerFactory make_worker_factory(WorkFn work, std::string kind) {
  return [work = std::move(work), kind = std::move(kind)](
             iwim::Runtime& runtime, std::size_t index) -> std::shared_ptr<iwim::Process> {
    return runtime.create_process(
        kind, kind + std::to_string(index), [work](iwim::ProcessContext& ctx) {
          const iwim::Unit job = ctx.read("input");  // worker step 1
          try {
            iwim::Unit result = work(job);           // worker step 2
            ctx.write(std::move(result), "output");  // worker step 3
          } catch (const std::exception& e) {
            // A crashed worker must still die visibly: write an empty unit
            // so the master is not left waiting for a result, report the
            // error on the error port, and fall through to death_worker —
            // otherwise the rendezvous would count forever.
            ctx.trace(std::string("worker failed: ") + e.what(), "worker.cpp", __LINE__);
            ctx.write(iwim::Unit{}, "error");
            ctx.write(iwim::Unit{}, "output");
          }
          ctx.raise(ProtocolEvents::death_worker);   // worker step 4
        });
  };
}

WorkerFactory make_fault_aware_worker_factory(WorkFn work,
                                              std::shared_ptr<const fault::FaultPlan> plan,
                                              std::shared_ptr<InjectionStats> stats,
                                              std::string kind) {
  return [work = std::move(work), plan = std::move(plan), stats = std::move(stats),
          kind = std::move(kind)](iwim::Runtime& runtime,
                                  std::size_t index) -> std::shared_ptr<iwim::Process> {
    const fault::WorkerFault fate =
        plan != nullptr ? plan->worker_fault(index) : fault::WorkerFault::None;
    return runtime.create_process(
        kind, kind + std::to_string(index), [work, stats, fate](iwim::ProcessContext& ctx) {
          const iwim::Unit job = ctx.read("input");  // worker step 1
          switch (fate) {
            case fault::WorkerFault::Crash:
              if (stats) stats->crashes.fetch_add(1, std::memory_order_relaxed);
              ctx.trace("injected crash", "worker.cpp", __LINE__);
              ctx.raise(ProtocolEvents::crash_worker);
              return;
            case fault::WorkerFault::Hang:
              if (stats) stats->hangs.fetch_add(1, std::memory_order_relaxed);
              ctx.trace("injected hang", "worker.cpp", __LINE__);
              // Await an event nobody raises: blocked until the coordinator's
              // deadline kill throws ShutdownSignal through this wait.
              ctx.await({{".never", std::nullopt}});
              return;
            case fault::WorkerFault::Corrupt: {
              // Compute for real, then lose the result at the transport
              // boundary — the coordinator sees the same thing as a crash.
              (void)work(job);
              if (stats) stats->corruptions.fetch_add(1, std::memory_order_relaxed);
              ctx.trace("injected result corruption", "worker.cpp", __LINE__);
              ctx.raise(ProtocolEvents::crash_worker);
              return;
            }
            case fault::WorkerFault::None:
              break;
          }
          try {
            iwim::Unit result = work(job);           // worker step 2
            ctx.write(std::move(result), "output");  // worker step 3
          } catch (const std::exception& e) {
            // Under a fault-tolerant pool a failure is reported honestly:
            // crash_worker, no fake result — the coordinator retries it.
            ctx.trace(std::string("worker failed: ") + e.what(), "worker.cpp", __LINE__);
            ctx.write(iwim::Unit{}, "error");
            ctx.raise(ProtocolEvents::crash_worker);
            return;
          }
          ctx.raise(ProtocolEvents::death_worker);   // worker step 4
        });
  };
}

}  // namespace mg::mw
