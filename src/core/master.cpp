#include "core/master.hpp"

#include "support/check.hpp"

namespace mg::mw {

void MasterApi::create_pool() { context_.raise(ProtocolEvents::create_pool); }

std::shared_ptr<iwim::Process> MasterApi::create_worker() {
  context_.raise(ProtocolEvents::create_worker);
  // "Read a unit containing the process reference of a created worker from
  // your own input port and activate it" (§4.3 step 3(c)).
  const iwim::Unit unit = context_.read("input");
  MG_REQUIRE_MSG(unit.is<iwim::ProcessRef>(), "master input: expected a worker reference");
  std::shared_ptr<iwim::Process> worker = unit.as<iwim::ProcessRef>().process;
  worker->activate();
  return worker;
}

void MasterApi::send_work(iwim::Unit work) { context_.write(std::move(work), "output"); }

iwim::Unit MasterApi::collect_result() { return context_.read("dataport"); }

void MasterApi::rendezvous() {
  context_.raise(ProtocolEvents::rendezvous);
  // "Take a nap" until the coordinator acknowledges (§4.1).
  context_.await({{ProtocolEvents::a_rendezvous, std::nullopt}});
}

void MasterApi::finished() { context_.raise(ProtocolEvents::finished); }

std::vector<iwim::PortSpec> master_ports() {
  return {{"dataport", iwim::Port::Direction::In}};
}

std::shared_ptr<iwim::AtomicProcess> make_master(
    iwim::Runtime& runtime, std::string name,
    std::function<void(MasterApi&, iwim::ProcessContext&)> body) {
  return runtime.create_process(
      "Master", std::move(name),
      [body = std::move(body)](iwim::ProcessContext& ctx) {
        MasterApi api(ctx);
        body(api, ctx);
      },
      master_ports());
}

}  // namespace mg::mw
