#include "core/concurrent_solver.hpp"

#include <algorithm>
#include <future>
#include <mutex>
#include <numeric>

#include "core/marshal.hpp"
#include "core/master.hpp"
#include "net/remote.hpp"
#include "obs/metrics.hpp"
#include "core/remote_worker.hpp"
#include "core/worker.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"
#include "transport/subsolve.hpp"

namespace mg::mw {

const char* to_string(DataPath p) {
  switch (p) {
    case DataPath::ThroughMaster: return "through-master";
    case DataPath::SharedGlobal: return "shared-global";
  }
  return "?";
}

std::vector<std::size_t> lpt_order(const std::vector<grid::CombinationTerm>& terms,
                                   std::size_t first, std::size_t count) {
  MG_REQUIRE(first + count <= terms.size());
  std::vector<std::size_t> order(count);
  std::iota(order.begin(), order.end(), first);
  std::stable_sort(order.begin(), order.end(), [&terms](std::size_t a, std::size_t b) {
    return transport::subsolve_payload_bytes(terms[a].grid) >
           transport::subsolve_payload_bytes(terms[b].grid);
  });
  return order;
}

ResultItem execute_work_item(const WorkItem& item) {
  const grid::Grid2D g(item.root, item.lx, item.ly);
  transport::SubsolveResult r = transport::subsolve(g, item.config);
  return ResultItem{item.index, std::move(r.solution.data()), r.stats, r.elapsed_seconds};
}

namespace {

/// Shared state for the DataPath::SharedGlobal ablation: workers store their
/// solutions straight into the global structure.  Slots are disjoint per
/// worker, but a mutex keeps the structure internally consistent anyway.
struct SharedGlobalState {
  std::mutex mutex;
  transport::GlobalData data;
  std::vector<transport::GridRunRecord> records;

  explicit SharedGlobalState(int root, int level) : data(root, level) {}
};

/// Runs one pool: creates `count` workers starting at term index `first`,
/// charges each with its grid, collects results (ThroughMaster only), and
/// holds the rendezvous.  With `lpt`, grids go out heaviest-first.
void run_pool(MasterApi& api, const transport::SubsolveConfig& kernel,
              const std::vector<grid::CombinationTerm>& terms, std::size_t first,
              std::size_t count, bool lpt, DataPath path, transport::GlobalData& data,
              std::vector<transport::GridRunRecord>& records) {
  api.create_pool();  // master step 3(a)
  std::vector<std::size_t> order;
  if (lpt) {
    order = lpt_order(terms, first, count);
  } else {
    order.resize(count);
    std::iota(order.begin(), order.end(), first);
  }
  for (std::size_t k : order) {
    api.create_worker();  // steps 3(b)+(c)
    const grid::Grid2D& g = terms[k].grid;
    api.send_work(iwim::Unit::of(WorkItem{k, g.root(), g.lx(), g.ly(), kernel}));  // step 3(d)
  }
  if (path == DataPath::ThroughMaster) {
    // Step 3(f): collect the results from the master's own input (dataport).
    // On a worker failure (empty unit), the rendezvous must still be held —
    // the coordinator is inside Create_Worker_Pool and every worker raises
    // death_worker even when it crashes — before the error propagates.
    try {
      // Collect until every term of this pool has landed — counted by
      // *distinct* index, not by unit.  Under churn a worker can be
      // victimised between sending its result and its death event being
      // processed; the respawned incarnation then re-delivers the same
      // index, and a unit-counted loop would stop one real result short.
      // First result wins; stragglers are discarded and never double-count.
      for (std::size_t collected = 0; collected < count;) {
        const iwim::Unit unit = api.collect_result();
        if (unit.is<WorkAbandoned>()) {
          // The fault-tolerant pool gave up on this slot (attempt cap or
          // respawn budget).  Degraded-pool fallback: the master subsolves
          // the grid itself, so the combined result is still bit-identical
          // to the sequential program.
          const auto& ab = unit.as<WorkAbandoned>();
          // pool_slot is the worker's creation order, i.e. a position in the
          // dispatch order — not a term offset (they differ under LPT).
          MG_ASSERT(ab.pool_slot < order.size());
          const std::size_t idx = order[ab.pool_slot];
          MG_ASSERT(idx < terms.size());
          if (data.solutions[idx].has_value()) continue;  // delivered, then churned
          support::Stopwatch local;
          transport::SubsolveResult r = transport::subsolve(terms[idx].grid, kernel);
          data.store(idx, std::move(r.solution));
          records[idx] = {terms[idx].grid, terms[idx].coefficient, r.stats,
                          local.elapsed_seconds()};
          ++collected;
          api.context().trace("abandoned slot " + std::to_string(ab.pool_slot) +
                                  " recomputed locally",
                              "concurrent_solver.cpp", __LINE__);
          continue;
        }
        if (!unit.is<ResultItem>()) {
          throw std::runtime_error("solve_concurrent: a worker failed to produce a result");
        }
        const auto& r = unit.as<ResultItem>();
        MG_ASSERT(r.index < terms.size());
        if (data.solutions[r.index].has_value()) {
          obs::registry().counter("fleet.duplicates").add();
          api.context().trace("duplicate result for term " + std::to_string(r.index) +
                                  " discarded (first result wins)",
                              "concurrent_solver.cpp", __LINE__);
          continue;
        }
        grid::Field field(terms[r.index].grid);
        field.data() = r.node_data;
        data.store(r.index, std::move(field));
        records[r.index] = {terms[r.index].grid, terms[r.index].coefficient, r.stats,
                            r.elapsed_seconds};
        ++collected;
      }
    } catch (...) {
      api.rendezvous();
      throw;
    }
  }
  api.rendezvous();  // steps 3(g)+(h)
}

}  // namespace

ConcurrentResult solve_concurrent(const transport::ProgramConfig& program,
                                  const ConcurrentOptions& options) {
  MG_REQUIRE(program.level >= 0);

  iwim::RuntimeConfig rt_config;
  rt_config.tasks = options.tasks;
  rt_config.hosts = options.hosts;
  rt_config.trace = options.trace;
  iwim::Runtime runtime(rt_config);

  const auto terms = grid::combination_terms(program.root, program.level);
  auto shared = options.data_path == DataPath::SharedGlobal
                    ? std::make_shared<SharedGlobalState>(program.root, program.level)
                    : nullptr;

  std::promise<transport::SolveResult> result_promise;
  std::future<transport::SolveResult> result_future = result_promise.get_future();

  // The master: the sequential program minus subsolve (§4: "the master
  // performs all the computation in the sequential source code except the
  // work embodied in subsolve, which is done by the workers").
  auto master = make_master(
      runtime, "master",
      [&program, &terms, &options, shared, &result_promise](MasterApi& api,
                                                            iwim::ProcessContext& ctx) {
        try {
        support::Stopwatch total;
        support::Stopwatch phase;
        // Dispatch-level kernel overrides (within-grid parallelism): stamp
        // the effective policy/team size into every outgoing work unit and
        // into the degraded-pool local recompute path alike.
        transport::SubsolveConfig kernel = program.kernel_config();
        if (options.inner_threads > 0) kernel.system.inner_threads = options.inner_threads;
        if (options.kernel_policy) kernel.system.kernel_policy = *options.kernel_policy;
        transport::GlobalData local_data(program.root, program.level);
        transport::GlobalData& data = shared ? shared->data : local_data;
        std::vector<transport::GridRunRecord> records(
            terms.size(),
            transport::GridRunRecord{grid::Grid2D(program.root, 0, 0), 0.0, {}, 0.0});
        const double init_seconds = phase.elapsed_seconds();

        // The concurrent region: one pool over all grids, or one per family.
        phase.reset();
        if (options.pool_per_family && program.level >= 1) {
          // Family lm = level-1 occupies terms [0, level); lm = level the rest.
          const std::size_t lower = static_cast<std::size_t>(program.level);
          run_pool(api, kernel, terms, 0, lower, options.lpt_schedule, options.data_path, data,
                   records);
          run_pool(api, kernel, terms, lower, terms.size() - lower, options.lpt_schedule,
                   options.data_path, data, records);
        } else {
          run_pool(api, kernel, terms, 0, terms.size(), options.lpt_schedule, options.data_path,
                   data, records);
        }
        api.finished();  // master step 4
        const double subsolve_seconds = phase.elapsed_seconds();

        if (shared) {
          std::lock_guard<std::mutex> lock(shared->mutex);
          records = shared->records;
        }

        // Step 5: the final sequential computation — prolongation & combine.
        phase.reset();
        MG_ASSERT(data.complete());
        std::vector<grid::Field> components;
        components.reserve(data.solutions.size());
        for (auto& s : data.solutions) components.push_back(std::move(*s));
        grid::Field combined = grid::combine(data.terms, components,
                                             grid::finest_grid(program.root, program.level));
        const double prolongation_seconds = phase.elapsed_seconds();

        ctx.trace("prolongation done", "concurrent_solver.cpp", __LINE__);
        result_promise.set_value(transport::SolveResult{
            std::move(combined), std::move(records), init_seconds, subsolve_seconds,
            prolongation_seconds, total.elapsed_seconds()});
        } catch (...) {
          // Propagate the failure to the caller blocked on the future; the
          // master still terminates so the protocol can unwind.
          result_promise.set_exception(std::current_exception());
          api.finished();
        }
      });

  // The worker: a wrapper around subsolve (§5).
  WorkFn work;
  if (options.data_path == DataPath::ThroughMaster) {
    const bool marshal = options.marshal_through_bytes;
    work = [marshal](const iwim::Unit& unit) {
      WorkItem item = unit.as<WorkItem>();
      if (marshal) item = decode_work_item(encode_work_item(item));  // wire round-trip
      ResultItem result = execute_work_item(item);
      if (marshal) result = decode_result_item(encode_result_item(result));
      return iwim::Unit::of(std::move(result));
    };
  } else {
    work = [shared, &terms](const iwim::Unit& unit) {
      const auto& item = unit.as<WorkItem>();
      const grid::Grid2D g(item.root, item.lx, item.ly);
      transport::SubsolveResult r = transport::subsolve(g, item.config);
      {
        std::lock_guard<std::mutex> lock(shared->mutex);
        if (shared->records.size() != terms.size()) {
          shared->records.assign(terms.size(), transport::GridRunRecord{g, 0.0, {}, 0.0});
        }
        shared->records[item.index] = {terms[item.index].grid, terms[item.index].coefficient,
                                       r.stats, r.elapsed_seconds};
        shared->data.store(item.index, std::move(r.solution));
      }
      return iwim::Unit::of(ResultItem{item.index, {}, r.stats, r.elapsed_seconds});
    };
  }

  ConcurrentResult result{transport::SolveResult{grid::Field(grid::Grid2D(program.root, 0, 0)),
                                                 {}, 0, 0, 0, 0},
                          {}, {}};
  RunOptions run_options;
  run_options.retry = options.retry;
  run_options.overall_deadline = options.overall_deadline;
  run_options.churn = options.churn;
  if (options.churn && options.churn->any() && !run_options.retry) {
    // Churn rides on the fault-tolerant pool's crash/respawn machinery: a
    // worker taken away mid-unit must be re-leased, so default to a generous
    // retry policy rather than stranding its grid.
    fault::RetryPolicy policy;
    policy.max_attempts = 1 + options.churn->leaves + options.churn->crashes;
    policy.backoff_initial = std::chrono::milliseconds(5);
    run_options.retry = policy;
  }
  WorkerFactory factory;
  std::shared_ptr<InjectionStats> injections;
  if (options.remote != nullptr) {
    MG_REQUIRE(options.data_path == DataPath::ThroughMaster);
    if (options.pipeline_depth > 0) options.remote->set_pipeline_depth(options.pipeline_depth);
    factory = make_remote_worker_factory(*options.remote, run_options.retry.has_value());
  } else if (run_options.retry) {
    auto plan = options.faults.any()
                    ? std::make_shared<const fault::FaultPlan>(options.faults)
                    : nullptr;
    injections = std::make_shared<InjectionStats>();
    factory = make_fault_aware_worker_factory(std::move(work), std::move(plan), injections);
  } else {
    factory = make_worker_factory(std::move(work));
  }
  result.protocol = run_main_program(runtime, master, std::move(factory), run_options);
  if (injections) injections->merge_into(result.protocol.faults);
  try {
    // After a deadline abort the master may have unwound without ever
    // setting the promise — surface an error instead of blocking on it.
    if (result.protocol.timed_out &&
        result_future.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      runtime.shutdown();
      throw std::runtime_error("solve_concurrent: overall deadline expired");
    }
    result.solve = result_future.get();
  } catch (const iwim::ShutdownSignal&) {
    runtime.shutdown();
    throw std::runtime_error("solve_concurrent: run aborted at the overall deadline");
  }
  result.tasks = runtime.tasks().stats();
  runtime.shutdown();
  return result;
}

}  // namespace mg::mw
