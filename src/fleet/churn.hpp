// Elastic-fleet churn plans and the shared fleet accounting.
//
// The paper's headline demo is the "ebb & flow" of machines joining and
// leaving a perpetual solve (MLINK `perpetual`/`load`, CONFIG host mapping).
// ChurnPlan is the seeded spot-instance adversary all three substrates
// share: a deterministic schedule of Join / Leave / Crash events over the
// run, generated as a pure function of the seed so a churned run is
// reproducible bit-for-bit.  The substrates interpret the events with their
// own clocks — wall time for the threaded pool and the TCP endpoint,
// virtual time for the cluster simulator — but the *sequence* of events is
// identical for one seed.
//
// FleetCounters is the one accounting contract: joins/leaves/crashes record
// fleet membership changes, steals count work units rebalanced away from a
// loaded lane, releases count speculative re-issues of a unit past its soft
// deadline, and duplicates count speculative-loser results that arrived
// after a winner and were discarded.  The invariant carried over from the
// fault layer: however many releases and duplicates occur, every work unit
// is *combined* exactly once, so results stay bit-identical to the
// sequential fault-free solve and telemetry never double-counts a unit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mg::obs {
class JsonWriter;
}

namespace mg::fleet {

/// One fleet membership change, scheduled relative to the start of the run.
enum class ChurnEventKind {
  Join,   ///< a new worker/host enters the lease set
  Leave,  ///< a worker departs gracefully (its lease is re-queued at once)
  Crash,  ///< a worker dies abruptly (detected, then re-leased with backoff)
};

const char* to_string(ChurnEventKind k);

struct ChurnEvent {
  double at_seconds = 0.0;  ///< offset from run start (wall or virtual time)
  ChurnEventKind kind = ChurnEventKind::Join;
};

/// Shape of the churn schedule; all defaults mean "no churn".
struct ChurnPlanConfig {
  std::uint64_t seed = 2004;
  std::size_t joins = 0;
  std::size_t leaves = 0;
  std::size_t crashes = 0;
  /// Events land in [start_seconds, start_seconds + spread_seconds); the
  /// exact offsets are seeded so one seed always yields one schedule.
  double start_seconds = 0.0;
  double spread_seconds = 1.0;

  bool any() const { return joins + leaves + crashes > 0; }
};

/// Parses a `--churn=` spec: comma-separated key=value pairs, e.g.
/// "seed=7,joins=2,leaves=1,crashes=1,start=0.05,spread=0.4".
/// Unknown keys throw std::invalid_argument.
ChurnPlanConfig parse_churn_spec(const std::string& spec);

/// The seeded churn schedule.  Event times are a pure function of
/// (seed, event ordinal) — domain-separated from FaultPlan's salts — and the
/// event list is sorted by time with a deterministic tie-break, so every
/// consumer sees the same sequence.
class ChurnPlan {
 public:
  ChurnPlan() = default;
  explicit ChurnPlan(ChurnPlanConfig config);

  const ChurnPlanConfig& config() const { return config_; }
  /// Sorted ascending by at_seconds (ties broken by generation order).
  const std::vector<ChurnEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

 private:
  ChurnPlanConfig config_;
  std::vector<ChurnEvent> events_;
};

/// What the elastic fleet did during one run — filled by the threaded pool,
/// the simulator, and the TCP endpoint, surfaced as `fleet.*` obs counters
/// and the `fleet` section of service stats.
struct FleetCounters {
  std::size_t joins = 0;       ///< workers accepted into the lease set
  std::size_t leaves = 0;      ///< graceful departures
  std::size_t crashes = 0;     ///< abrupt deaths handled
  std::size_t steals = 0;      ///< units rebalanced off a loaded lane
  std::size_t releases = 0;    ///< speculative re-leases past soft deadline
  std::size_t duplicates = 0;  ///< speculative-loser results discarded

  FleetCounters& operator+=(const FleetCounters& other);
  bool any() const;
};

/// Serialises the counters as one JSON object value (append after a key()).
void fleet_counters_to_json(obs::JsonWriter& w, const FleetCounters& c);

/// Mirrors the counters into the process-global obs registry as
/// fleet.joins / fleet.leaves / fleet.crashes / fleet.steals /
/// fleet.releases / fleet.duplicates (monotonic adds).
void add_fleet_metrics(const FleetCounters& c);

}  // namespace mg::fleet
