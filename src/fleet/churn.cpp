#include "fleet/churn.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/json_writer.hpp"
#include "obs/metrics.hpp"
#include "support/rng.hpp"

namespace mg::fleet {

const char* to_string(ChurnEventKind k) {
  switch (k) {
    case ChurnEventKind::Join: return "join";
    case ChurnEventKind::Leave: return "leave";
    case ChurnEventKind::Crash: return "crash";
  }
  return "?";
}

ChurnPlanConfig parse_churn_spec(const std::string& spec) {
  ChurnPlanConfig config;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string pair = spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? spec.size() : comma + 1;
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("churn spec: expected key=value, got '" + pair + "'");
    }
    const std::string key = pair.substr(0, eq);
    const double value = std::stod(pair.substr(eq + 1));
    if (key == "seed") {
      config.seed = static_cast<std::uint64_t>(value);
    } else if (key == "joins") {
      config.joins = static_cast<std::size_t>(value);
    } else if (key == "leaves") {
      config.leaves = static_cast<std::size_t>(value);
    } else if (key == "crashes") {
      config.crashes = static_cast<std::size_t>(value);
    } else if (key == "start") {
      config.start_seconds = value;
    } else if (key == "spread") {
      config.spread_seconds = value;
    } else {
      throw std::invalid_argument("churn spec: unknown key '" + key + "'");
    }
  }
  if (config.start_seconds < 0.0 || config.spread_seconds < 0.0) {
    throw std::invalid_argument("churn spec: start/spread must be non-negative");
  }
  return config;
}

namespace {

// Domain-separated SplitMix64 hash -> uniform double in [0, 1).  Same shape
// as FaultPlan::roll, but on a distinct salt domain (kSaltBase is far away
// from the fault salts 1..6) so a shared seed never correlates churn timing
// with fault injection.
constexpr std::uint64_t kSaltBase = 0x666c6565;  // "flee"

double roll(std::uint64_t seed, std::uint64_t ordinal, std::uint64_t salt) {
  support::SplitMix64 mix(seed ^ (salt * 0x9e3779b97f4a7c15ULL) ^ (ordinal + 1));
  mix.next();
  return static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
}

}  // namespace

ChurnPlan::ChurnPlan(ChurnPlanConfig config) : config_(config) {
  events_.reserve(config_.joins + config_.leaves + config_.crashes);
  std::uint64_t ordinal = 0;
  const auto schedule = [&](std::size_t count, ChurnEventKind kind) {
    for (std::size_t i = 0; i < count; ++i) {
      ChurnEvent e;
      e.kind = kind;
      e.at_seconds = config_.start_seconds +
                     config_.spread_seconds * roll(config_.seed, ordinal++, kSaltBase);
      events_.push_back(e);
    }
  };
  schedule(config_.joins, ChurnEventKind::Join);
  schedule(config_.leaves, ChurnEventKind::Leave);
  schedule(config_.crashes, ChurnEventKind::Crash);
  std::stable_sort(events_.begin(), events_.end(),
                   [](const ChurnEvent& a, const ChurnEvent& b) {
                     return a.at_seconds < b.at_seconds;
                   });
}

FleetCounters& FleetCounters::operator+=(const FleetCounters& other) {
  joins += other.joins;
  leaves += other.leaves;
  crashes += other.crashes;
  steals += other.steals;
  releases += other.releases;
  duplicates += other.duplicates;
  return *this;
}

bool FleetCounters::any() const {
  return joins || leaves || crashes || steals || releases || duplicates;
}

void fleet_counters_to_json(obs::JsonWriter& w, const FleetCounters& c) {
  w.begin_object();
  w.kv("joins", static_cast<std::uint64_t>(c.joins));
  w.kv("leaves", static_cast<std::uint64_t>(c.leaves));
  w.kv("crashes", static_cast<std::uint64_t>(c.crashes));
  w.kv("steals", static_cast<std::uint64_t>(c.steals));
  w.kv("releases", static_cast<std::uint64_t>(c.releases));
  w.kv("duplicates", static_cast<std::uint64_t>(c.duplicates));
  w.end_object();
}

void add_fleet_metrics(const FleetCounters& c) {
  struct FleetMetrics {
    obs::Counter& joins;
    obs::Counter& leaves;
    obs::Counter& crashes;
    obs::Counter& steals;
    obs::Counter& releases;
    obs::Counter& duplicates;
  };
  static FleetMetrics m{
      obs::registry().counter("fleet.joins"),      obs::registry().counter("fleet.leaves"),
      obs::registry().counter("fleet.crashes"),    obs::registry().counter("fleet.steals"),
      obs::registry().counter("fleet.releases"),   obs::registry().counter("fleet.duplicates"),
  };
  if (c.joins) m.joins.add(c.joins);
  if (c.leaves) m.leaves.add(c.leaves);
  if (c.crashes) m.crashes.add(c.crashes);
  if (c.steals) m.steals.add(c.steals);
  if (c.releases) m.releases.add(c.releases);
  if (c.duplicates) m.duplicates.add(c.duplicates);
}

}  // namespace mg::fleet
