#include "net/poller.hpp"

#include <poll.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <map>
#include <stdexcept>

#include "support/check.hpp"

#if defined(__linux__)
#define MG_NET_HAVE_EPOLL 1
#include <sys/epoll.h>
#include <unistd.h>
#else
#define MG_NET_HAVE_EPOLL 0
#endif

namespace mg::net {

namespace {

// ---------------------------------------------------------------------------
// Portable poll() backend — also the reference semantics for parity tests.
// ---------------------------------------------------------------------------

class PollPoller final : public Poller {
 public:
  const char* name() const override { return "poll"; }

  void add(int fd, short events) override { interest_[fd] = events; }

  void modify(int fd, short events) override {
    const auto it = interest_.find(fd);
    if (it != interest_.end()) it->second = events;
  }

  void remove(int fd) override { interest_.erase(fd); }

  int wait(std::vector<PollerEvent>& out, int timeout_ms) override {
    out.clear();
    pfds_.clear();
    for (const auto& [fd, events] : interest_) pfds_.push_back(pollfd{fd, events, 0});
    const int rc = ::poll(pfds_.data(), pfds_.size(), timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) return 0;
      throw std::runtime_error(std::string("poll: ") + std::strerror(errno));
    }
    for (const pollfd& p : pfds_) {
      if (p.revents != 0) out.push_back(PollerEvent{p.fd, p.revents});
    }
    return static_cast<int>(out.size());
  }

 private:
  std::map<int, short> interest_;   ///< fd -> POLLIN|POLLOUT mask
  std::vector<pollfd> pfds_;        ///< rebuilt per wait (O(n): the fallback)
};

#if MG_NET_HAVE_EPOLL

// ---------------------------------------------------------------------------
// Linux epoll backend — O(ready) wakeups.
// ---------------------------------------------------------------------------

std::uint32_t to_epoll_mask(short events) {
  std::uint32_t mask = 0;
  if (events & POLLIN) mask |= EPOLLIN;
  if (events & POLLOUT) mask |= EPOLLOUT;
  return mask;
}

short from_epoll_mask(std::uint32_t mask) {
  short revents = 0;
  if (mask & EPOLLIN) revents |= POLLIN;
  if (mask & EPOLLOUT) revents |= POLLOUT;
  if (mask & EPOLLERR) revents |= POLLERR;
  if (mask & EPOLLHUP) revents |= POLLHUP;
  return revents;
}

class EpollPoller final : public Poller {
 public:
  EpollPoller() : epfd_(::epoll_create1(EPOLL_CLOEXEC)) {
    MG_REQUIRE(epfd_ >= 0);
    events_.resize(64);
  }

  ~EpollPoller() override { ::close(epfd_); }

  const char* name() const override { return "epoll"; }

  void add(int fd, short events) override {
    epoll_event ev{};
    ev.events = to_epoll_mask(events);
    ev.data.fd = fd;
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) == 0) return;
    // Re-arming an existing registration is an add() in the seam's contract.
    MG_REQUIRE(errno == EEXIST && ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) == 0);
  }

  void modify(int fd, short events) override {
    epoll_event ev{};
    ev.events = to_epoll_mask(events);
    ev.data.fd = fd;
    if (::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
      MG_REQUIRE(errno == ENOENT);  // unknown fd: no-op, like PollPoller
    }
  }

  void remove(int fd) override {
    // ENOENT/EBADF are fine: a close() beat us to it and the kernel already
    // dropped the registration.
    if (::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr) != 0) {
      MG_REQUIRE(errno == ENOENT || errno == EBADF);
    }
  }

  int wait(std::vector<PollerEvent>& out, int timeout_ms) override {
    out.clear();
    const int rc =
        ::epoll_wait(epfd_, events_.data(), static_cast<int>(events_.size()), timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) return 0;
      throw std::runtime_error(std::string("epoll_wait: ") + std::strerror(errno));
    }
    for (int i = 0; i < rc; ++i) {
      out.push_back(PollerEvent{events_[i].data.fd, from_epoll_mask(events_[i].events)});
    }
    if (rc == static_cast<int>(events_.size())) events_.resize(events_.size() * 2);
    return rc;
  }

 private:
  int epfd_ = -1;
  std::vector<epoll_event> events_;
};

#endif  // MG_NET_HAVE_EPOLL

PollerBackend resolve_auto() {
  if (const char* env = std::getenv("MG_NET_POLLER")) {
    PollerBackend forced;
    if (parse_poller_backend(env, forced) && forced != PollerBackend::Auto) return forced;
  }
  return epoll_supported() ? PollerBackend::Epoll : PollerBackend::Poll;
}

}  // namespace

const char* to_string(PollerBackend b) {
  switch (b) {
    case PollerBackend::Auto: return "auto";
    case PollerBackend::Poll: return "poll";
    case PollerBackend::Epoll: return "epoll";
  }
  return "?";
}

bool parse_poller_backend(const std::string& text, PollerBackend& out) {
  if (text == "auto") out = PollerBackend::Auto;
  else if (text == "poll") out = PollerBackend::Poll;
  else if (text == "epoll") out = PollerBackend::Epoll;
  else return false;
  return true;
}

bool epoll_supported() { return MG_NET_HAVE_EPOLL != 0; }

std::unique_ptr<Poller> make_poller(PollerBackend backend) {
  if (backend == PollerBackend::Auto) backend = resolve_auto();
  switch (backend) {
    case PollerBackend::Poll:
      return std::make_unique<PollPoller>();
    case PollerBackend::Epoll:
#if MG_NET_HAVE_EPOLL
      return std::make_unique<EpollPoller>();
#else
      throw std::runtime_error("epoll poller requested on a platform without epoll");
#endif
    case PollerBackend::Auto:
      break;
  }
  return std::make_unique<PollPoller>();
}

}  // namespace mg::net
