// A poll()-based non-blocking event loop — the single thread that owns all
// master-side socket state.
//
// Concurrency discipline (the libp2p/tinymux pattern): every fd watch, every
// connection buffer, and every in-flight round trip is mutated only on the
// loop thread.  Other threads interact exclusively through post() (run a
// closure on the loop) and post_after() (run it later); a self-pipe wakes
// poll() when work arrives.  This keeps the socket layer lock-free where it
// matters — the only locks are around the posted-closure queue.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

namespace mg::net {

class EventLoop {
 public:
  /// revents from poll(): POLLIN/POLLOUT/POLLERR/POLLHUP bits.
  using IoCallback = std::function<void(short revents)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Spawns the loop thread.  Idempotent.
  void start();

  /// Requests stop, wakes poll(), joins the thread.  Pending posted closures
  /// run before the thread exits; watches are dropped.  Idempotent.
  void stop();

  /// Runs `fn` on the loop thread (immediately if already on it).
  void post(std::function<void()> fn);

  /// Runs `fn` on the loop thread after `delay`.  Returns a timer id that
  /// cancel_timer() accepts; fired/cancelled timers free their slot.
  std::uint64_t post_after(std::chrono::milliseconds delay, std::function<void()> fn);
  void cancel_timer(std::uint64_t id);

  // ---- loop-thread-only fd registry ----

  /// Watches fd for `events` (POLLIN|POLLOUT).  One watch per fd.
  void watch(int fd, short events, IoCallback cb);
  /// Adjusts the interest set of an existing watch.
  void modify(int fd, short events);
  /// Drops the watch (does not close the fd).
  void unwatch(int fd);

  bool on_loop_thread() const { return std::this_thread::get_id() == loop_thread_id_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  struct Timer {
    std::chrono::steady_clock::time_point due;
    std::uint64_t id;
    std::function<void()> fn;
  };
  struct Watch {
    short events;
    IoCallback cb;
  };

  void run();
  void wake();
  void drain_posted();
  int next_poll_timeout_ms();

  int wake_fds_[2] = {-1, -1};  // self-pipe: [0] read end (polled), [1] write end
  std::thread thread_;
  std::atomic<std::thread::id> loop_thread_id_{};
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  std::mutex mutex_;  // guards posted_ and timers_ (posted from any thread)
  std::vector<std::function<void()>> posted_;
  std::vector<Timer> timers_;
  std::uint64_t next_timer_id_ = 1;

  std::map<int, Watch> watches_;  // loop thread only
};

}  // namespace mg::net
