// A non-blocking event loop over the Poller readiness seam — the single
// thread that owns all master-side socket state.
//
// Concurrency discipline (the libp2p/tinymux pattern): every fd watch, every
// connection buffer, and every in-flight round trip is mutated only on the
// loop thread.  Other threads interact exclusively through post() (run a
// closure on the loop) and post_after() (run it later); a self-pipe wakes
// the poller when work arrives.  This keeps the socket layer lock-free where
// it matters — the only locks are around the posted-closure queue.
//
// Readiness comes from a Poller backend (net/poller.hpp): epoll on Linux so
// a wakeup costs O(ready), the portable poll() fallback elsewhere — chosen
// at runtime, invisible above this line.  Deferred timers live in a min-heap
// keyed by deadline, so arming the poll timeout reads the top in O(1)
// instead of rescanning every pending timer per wakeup.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_set>
#include <vector>

#include "net/poller.hpp"

namespace mg::net {

class EventLoop {
 public:
  /// revents in poll() vocabulary: POLLIN/POLLOUT/POLLERR/POLLHUP bits.
  using IoCallback = std::function<void(short revents)>;

  explicit EventLoop(PollerBackend backend = PollerBackend::Auto);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Spawns the loop thread.  Idempotent.
  void start();

  /// Requests stop, wakes the poller, joins the thread.  Pending posted
  /// closures run before the thread exits; watches are dropped.  Idempotent.
  void stop();

  /// Runs `fn` on the loop thread (immediately if already on it).
  void post(std::function<void()> fn);

  /// Runs `fn` on the loop thread after `delay`.  Returns a timer id that
  /// cancel_timer() accepts; fired/cancelled timers free their slot.  Timers
  /// with equal deadlines fire in creation order.
  std::uint64_t post_after(std::chrono::milliseconds delay, std::function<void()> fn);
  void cancel_timer(std::uint64_t id);

  // ---- loop-thread-only fd registry ----

  /// Watches fd for `events` (POLLIN|POLLOUT).  One watch per fd.
  void watch(int fd, short events, IoCallback cb);
  /// Adjusts the interest set of an existing watch.
  void modify(int fd, short events);
  /// Drops the watch (does not close the fd).
  void unwatch(int fd);

  bool on_loop_thread() const { return std::this_thread::get_id() == loop_thread_id_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Which readiness backend this loop resolved to ("epoll" / "poll").
  const char* poller_name() const;

 private:
  struct Timer {
    std::chrono::steady_clock::time_point due;
    std::uint64_t id;
    std::function<void()> fn;
  };
  /// Min-heap order: earliest deadline first, creation id as the tie-break
  /// so simultaneous timers fire in the order they were armed.
  struct TimerLater {
    bool operator()(const Timer& a, const Timer& b) const {
      if (a.due != b.due) return a.due > b.due;
      return a.id > b.id;
    }
  };
  struct Watch {
    short events;
    IoCallback cb;
  };

  void run();
  void wake();
  void drain_posted();
  int next_poll_timeout_ms();

  int wake_fds_[2] = {-1, -1};  // self-pipe: [0] read end (polled), [1] write end
  PollerBackend backend_;
  std::unique_ptr<Poller> poller_;  ///< created at start(), used on the loop thread
  std::thread thread_;
  std::atomic<std::thread::id> loop_thread_id_{};
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  std::mutex mutex_;  // guards posted_, timers_, cancelled_ (posted from any thread)
  std::vector<std::function<void()>> posted_;
  /// Sorted deadline heap.  Cancellation is lazy: ids land in cancelled_ and
  /// their heap entries are dropped when they surface at the top, so
  /// cancel_timer never pays a heap rebuild.
  std::priority_queue<Timer, std::vector<Timer>, TimerLater> timers_;
  std::unordered_set<std::uint64_t> live_timers_;  ///< ids still in the heap
  std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t next_timer_id_ = 1;
  std::atomic<const char*> resolved_poller_name_{"unstarted"};

  std::map<int, Watch> watches_;  // loop thread only
};

}  // namespace mg::net
