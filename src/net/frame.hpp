// Length-prefixed frames with CRC-checked headers — the wire unit of the
// network substrate.
//
// Everything that crosses a socket is a frame:
//
//   offset  size  field
//        0     4  magic "MGNF"
//        4     2  protocol version
//        6     2  frame type
//        8     8  sequence number (request/response correlation)
//       16     4  payload size
//       20     4  payload CRC-32
//       24     4  header CRC-32 (over bytes [0, 24))
//       28     —  payload bytes
//
// The header CRC makes desync and truncation detectable before a byte of
// payload is trusted: a receiver that sees a bad magic or header CRC knows
// the stream is broken (not merely one message) and drops the connection.
// The payload CRC catches corruption of the body.  All integers are
// little-endian, matching support/bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

namespace mg::net {

enum class FrameType : std::uint16_t {
  Hello = 1,   ///< worker -> master: u64 pid, u64 connect attempt, f64 clock sample
  Work = 2,    ///< master -> worker: marshalled work unit
  Result = 3,  ///< worker -> master: marshalled result, same seq as the Work
  Error = 4,   ///< worker -> master: compute failed; payload = message text
  Bye = 5,     ///< orderly shutdown request

  // ---- solve-service job API (client <-> JobServer; see src/svc/) ----
  SubmitJob = 6,    ///< client -> server: marshalled JobSpec
  JobAccepted = 7,  ///< server -> client: JobTicket (accepted or Rejected), same seq
  JobStatus = 8,    ///< client -> server: u64 job id; server -> client: JobStatusInfo
  JobResult = 9,    ///< client -> server: u64 job id; server -> client: JobResultData
  CancelJob = 10,   ///< client -> server: u64 job id; server replies JobStatus

  // ---- keepalive (either direction) ----
  Ping = 11,  ///< payload echoed back verbatim in the Pong, same seq
  Pong = 12,  ///< reply to a Ping; also refreshes the server's idle clock

  // ---- live observability (client <-> JobServer) ----
  GetStats = 13,     ///< client -> server: empty payload
  StatsReport = 14,  ///< server -> client: marshalled ServiceStats, same seq
};

const char* to_string(FrameType t);

struct FrameHeader {
  static constexpr std::uint32_t kMagic = 0x4D474E46u;  // "MGNF" little-endian
  // v2: Hello grew a wall-clock sample, Work may carry a trace-context
  // prefix, Result may be a telemetry envelope, GetStats/StatsReport added.
  static constexpr std::uint16_t kVersion = 2;
  static constexpr std::size_t kWireSize = 28;

  std::uint16_t version = kVersion;
  FrameType type = FrameType::Hello;
  std::uint64_t seq = 0;
  std::uint32_t payload_size = 0;
  std::uint32_t payload_crc = 0;
};

struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

/// Thrown by the decoder on a broken stream (bad magic, failed CRC,
/// oversized payload).  Connection-fatal: framing cannot resynchronise.
class FrameError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Serialises one complete frame (header CRCs computed here).
std::vector<std::uint8_t> encode_frame(FrameType type, std::uint64_t seq,
                                       const std::uint8_t* payload, std::size_t payload_size);
std::vector<std::uint8_t> encode_frame(FrameType type, std::uint64_t seq,
                                       const std::vector<std::uint8_t>& payload);

/// Serialises only the 28-byte header for a payload that will travel as its
/// own buffer (scatter-gather send: header iovec + payload iovec, no
/// concatenation copy).  The payload bytes are still read here — both CRCs
/// cover them — but never copied.
std::vector<std::uint8_t> encode_frame_header(FrameType type, std::uint64_t seq,
                                              const std::uint8_t* payload,
                                              std::size_t payload_size);

/// Incremental frame reassembly over a byte stream.  feed() appends raw
/// received bytes; next() yields complete frames in order, or nullopt when
/// more bytes are needed.  Throws FrameError on a corrupt stream — the
/// connection must then be dropped.
class FrameDecoder {
 public:
  static constexpr std::size_t kDefaultMaxPayload = 256u << 20;  // 256 MiB

  explicit FrameDecoder(std::size_t max_payload = kDefaultMaxPayload)
      : max_payload_(max_payload) {}

  void feed(const std::uint8_t* data, std::size_t n);
  std::optional<Frame> next();

  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::size_t max_payload_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  ///< prefix already handed out as frames
};

}  // namespace mg::net
