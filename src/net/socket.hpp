// Thin RAII layer over POSIX TCP sockets.
//
// Everything above this file speaks frames; everything below it is the
// kernel.  Two usage modes coexist: the master's event loop drives
// non-blocking sockets (send_some / recv_some report would-block), while the
// worker processes use the simple blocking helpers (send_all / recv_exact) —
// a worker serves one request at a time, so blocking I/O is the honest
// expression of its state machine.  All sends use MSG_NOSIGNAL: a peer that
// vanished must surface as an error code, never as SIGPIPE.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

struct iovec;  // <sys/uio.h>; only named here so headers stay lean

namespace mg::net {

class SocketError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Owns one file descriptor.  Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void close();

  void set_nonblocking(bool on);
  void set_nodelay(bool on);  ///< TCP_NODELAY: frames are latency-sensitive

  /// Sends up to n bytes.  Returns bytes written (may be 0 under pressure),
  /// -1 on would-block; throws SocketError on a hard error (incl. EPIPE).
  std::ptrdiff_t send_some(const void* data, std::size_t n);

  /// Scatter-gather send (sendmsg, so MSG_NOSIGNAL still applies — writev
  /// takes no flags).  Same contract as send_some: bytes written, -1 on
  /// would-block, throws on hard errors.
  std::ptrdiff_t send_vec(const ::iovec* iov, int iovcnt);

  /// Receives up to n bytes.  Returns bytes read, 0 on orderly EOF, -1 on
  /// would-block; throws SocketError on a hard error.
  std::ptrdiff_t recv_some(void* data, std::size_t n);

 private:
  int fd_ = -1;
};

/// Blocking send of exactly n bytes; false when the peer is gone.
bool send_all(Socket& s, const void* data, std::size_t n);
/// Blocking receive of exactly n bytes; false on EOF or error.
bool recv_exact(Socket& s, void* data, std::size_t n);

/// Blocking connect to host:port with a timeout.  Returns an invalid Socket
/// on failure (refused, timeout, unresolvable) — connection setup failures
/// are expected events for a reconnecting worker, not exceptions.
Socket connect_tcp(const std::string& host, std::uint16_t port,
                   std::chrono::milliseconds timeout);

/// A bound, listening TCP socket.  Constructed early (before any thread is
/// spawned) so worker processes can be forked with the port already known —
/// the kernel queues their connects in the backlog until the event loop
/// starts accepting.
class TcpListener {
 public:
  TcpListener() = default;
  /// Binds host:port (port 0 = ephemeral) and listens.  Throws SocketError.
  TcpListener(const std::string& host, std::uint16_t port);
  ~TcpListener() { close(); }

  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  std::uint16_t port() const { return port_; }
  const std::string& host() const { return host_; }

  /// Non-blocking accept; invalid Socket when no connection is pending.
  Socket accept();

  /// The listener starts blocking (fork-friendly); the event loop flips it
  /// non-blocking before polling so a raced-away connection cannot park the
  /// loop inside accept().
  void set_nonblocking(bool on);

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::string host_;
};

}  // namespace mg::net
