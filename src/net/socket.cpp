#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mg::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw SocketError(what + ": " + std::strerror(errno));
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw SocketError("inet_pton: cannot parse address '" + host + "'");
  }
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::set_nonblocking(bool on) {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int next = on ? flags | O_NONBLOCK : flags & ~O_NONBLOCK;
  if (::fcntl(fd_, F_SETFL, next) < 0) throw_errno("fcntl(F_SETFL)");
}

void Socket::set_nodelay(bool on) {
  const int v = on ? 1 : 0;
  if (::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &v, sizeof v) < 0) {
    throw_errno("setsockopt(TCP_NODELAY)");
  }
}

std::ptrdiff_t Socket::send_some(const void* data, std::size_t n) {
  for (;;) {
    const ssize_t r = ::send(fd_, data, n, MSG_NOSIGNAL);
    if (r >= 0) return r;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    throw_errno("send");
  }
}

std::ptrdiff_t Socket::send_vec(const ::iovec* iov, int iovcnt) {
  msghdr msg{};
  msg.msg_iov = const_cast<::iovec*>(iov);
  msg.msg_iovlen = static_cast<decltype(msg.msg_iovlen)>(iovcnt);
  for (;;) {
    const ssize_t r = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (r >= 0) return r;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    throw_errno("sendmsg");
  }
}

std::ptrdiff_t Socket::recv_some(void* data, std::size_t n) {
  for (;;) {
    const ssize_t r = ::recv(fd_, data, n, 0);
    if (r >= 0) return r;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    throw_errno("recv");
  }
}

bool send_all(Socket& s, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < n) {
    try {
      const std::ptrdiff_t r = s.send_some(p + sent, n - sent);
      if (r < 0) {  // blocking socket: would-block should not happen; back off
        pollfd pfd{s.fd(), POLLOUT, 0};
        ::poll(&pfd, 1, 100);
        continue;
      }
      sent += static_cast<std::size_t>(r);
    } catch (const SocketError&) {
      return false;
    }
  }
  return true;
}

bool recv_exact(Socket& s, void* data, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < n) {
    try {
      const std::ptrdiff_t r = s.recv_some(p + got, n - got);
      if (r == 0) return false;  // EOF mid-message
      if (r < 0) {
        pollfd pfd{s.fd(), POLLIN, 0};
        ::poll(&pfd, 1, 100);
        continue;
      }
      got += static_cast<std::size_t>(r);
    } catch (const SocketError&) {
      return false;
    }
  }
  return true;
}

Socket connect_tcp(const std::string& host, std::uint16_t port,
                   std::chrono::milliseconds timeout) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket s(fd);
  sockaddr_in addr;
  try {
    addr = make_addr(host, port);
  } catch (const SocketError&) {
    return Socket{};
  }
  // Non-blocking connect + poll gives a bounded connect even when the
  // destination blackholes SYNs.
  s.set_nonblocking(true);
  const int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  if (rc < 0) {
    if (errno != EINPROGRESS) return Socket{};
    pollfd pfd{fd, POLLOUT, 0};
    const int pr = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
    if (pr <= 0) return Socket{};
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) return Socket{};
  }
  s.set_nonblocking(false);
  s.set_nodelay(true);
  return s;
}

TcpListener::TcpListener(const std::string& host, std::uint16_t port) : host_(host) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = make_addr(host, port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd_, 64) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) throw_errno("getsockname");
  port_ = ntohs(bound.sin_port);
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_), host_(std::move(other.host_)) {
  other.fd_ = -1;
  other.port_ = 0;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    host_ = std::move(other.host_);
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

Socket TcpListener::accept() {
  for (;;) {
    const int fd = ::accept4(fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd >= 0) {
      Socket s(fd);
      s.set_nodelay(true);
      return s;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) return Socket{};
    throw_errno("accept");
  }
}

void TcpListener::set_nonblocking(bool on) {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int next = on ? flags | O_NONBLOCK : flags & ~O_NONBLOCK;
  if (::fcntl(fd_, F_SETFL, next) < 0) throw_errno("fcntl(F_SETFL)");
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace mg::net
