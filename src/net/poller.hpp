// Poller — the level-abstracted readiness seam under the event loop.
//
// The PR-5 loop called ::poll() directly, which couples two things that
// should be separate: *what the loop means* (dispatch ready fds, run due
// timers, wake on post) and *how the kernel reports readiness*.  This file
// owns the second half behind a minimal interface so the loop is O(ready)
// per wakeup where the OS allows it:
//
//   * EpollPoller (Linux): one epoll instance mirrors the interest set, so
//     a wakeup touches only the fds that are actually ready — the O(n)
//     rebuild-and-scan of the poll() loop is gone.
//   * PollPoller (portable fallback, and the reference semantics the parity
//     tests pin the epoll backend against): rebuilds a pollfd array per
//     wait.  Still correct everywhere POSIX poll() exists (the kqueue seam
//     would slot in beside EpollPoller the same way).
//
// Event bits are poll()'s own (POLLIN/POLLOUT/POLLERR/POLLHUP): they are the
// lingua franca both kernels speak, so backends translate *to* them and the
// loop above never knows which backend ran.  Backend selection is runtime —
// make_poller(Auto) picks epoll on Linux unless MG_NET_POLLER=poll vetoes it
// — so one binary serves both and tests can script the same fd scenario
// through both implementations.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace mg::net {

/// One ready fd, in poll() vocabulary (POLLIN|POLLOUT|POLLERR|POLLHUP).
struct PollerEvent {
  int fd = -1;
  short revents = 0;
};

class Poller {
 public:
  virtual ~Poller() = default;

  virtual const char* name() const = 0;

  /// Adds fd to the interest set with `events` (POLLIN|POLLOUT).  Adding an
  /// fd that is already present re-arms it with the new mask.
  virtual void add(int fd, short events) = 0;

  /// Adjusts the interest mask of a registered fd; no-op when unknown.
  virtual void modify(int fd, short events) = 0;

  /// Drops fd from the interest set.  Tolerates fds the kernel already
  /// forgot (closed before removal) — teardown order must not matter.
  virtual void remove(int fd) = 0;

  /// Blocks up to timeout_ms (-1 = forever, 0 = poll) and appends every
  /// ready fd to `out` (cleared first).  Returns the number of ready fds;
  /// 0 on timeout.  EINTR is absorbed and reported as 0 — callers loop.
  virtual int wait(std::vector<PollerEvent>& out, int timeout_ms) = 0;
};

enum class PollerBackend {
  Auto,   ///< epoll where available, else poll; MG_NET_POLLER overrides
  Poll,   ///< portable poll() backend
  Epoll,  ///< Linux epoll backend (make_poller throws where unsupported)
};

const char* to_string(PollerBackend b);

/// Parses "auto" / "poll" / "epoll"; false on anything else.
bool parse_poller_backend(const std::string& text, PollerBackend& out);

/// True when the Epoll backend exists in this build.
bool epoll_supported();

/// Builds the requested backend.  Auto resolves to epoll on Linux, poll
/// elsewhere; the MG_NET_POLLER environment variable ("poll" / "epoll"),
/// when set, overrides Auto — a deployment knob and the parity-test lever.
std::unique_ptr<Poller> make_poller(PollerBackend backend = PollerBackend::Auto);

}  // namespace mg::net
