#include "net/event_loop.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "support/check.hpp"

namespace mg::net {

EventLoop::EventLoop() {
  MG_REQUIRE(::pipe(wake_fds_) == 0);
  for (int fd : wake_fds_) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
}

EventLoop::~EventLoop() {
  stop();
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
}

void EventLoop::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  stop_requested_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
}

void EventLoop::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_requested_.store(true, std::memory_order_release);
  wake();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
  watches_.clear();
}

void EventLoop::post(std::function<void()> fn) {
  if (on_loop_thread()) {
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    posted_.push_back(std::move(fn));
  }
  wake();
}

std::uint64_t EventLoop::post_after(std::chrono::milliseconds delay, std::function<void()> fn) {
  std::uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    id = next_timer_id_++;
    timers_.push_back({std::chrono::steady_clock::now() + delay, id, std::move(fn)});
  }
  wake();
  return id;
}

void EventLoop::cancel_timer(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::erase_if(timers_, [id](const Timer& t) { return t.id == id; });
}

void EventLoop::watch(int fd, short events, IoCallback cb) {
  MG_REQUIRE(on_loop_thread());
  watches_[fd] = Watch{events, std::move(cb)};
}

void EventLoop::modify(int fd, short events) {
  MG_REQUIRE(on_loop_thread());
  const auto it = watches_.find(fd);
  if (it != watches_.end()) it->second.events = events;
}

void EventLoop::unwatch(int fd) {
  MG_REQUIRE(on_loop_thread());
  watches_.erase(fd);
}

void EventLoop::wake() {
  const char byte = 'w';
  [[maybe_unused]] const ssize_t r = ::write(wake_fds_[1], &byte, 1);  // full pipe is fine
}

void EventLoop::drain_posted() {
  std::vector<std::function<void()>> run_now;
  std::vector<std::function<void()>> due_timers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    run_now.swap(posted_);
    const auto now = std::chrono::steady_clock::now();
    for (auto it = timers_.begin(); it != timers_.end();) {
      if (it->due <= now) {
        due_timers.push_back(std::move(it->fn));
        it = timers_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& fn : run_now) fn();
  for (auto& fn : due_timers) fn();
}

int EventLoop::next_poll_timeout_ms() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!posted_.empty()) return 0;
  if (timers_.empty()) return -1;
  auto earliest = timers_.front().due;
  for (const Timer& t : timers_) earliest = std::min(earliest, t.due);
  const auto now = std::chrono::steady_clock::now();
  if (earliest <= now) return 0;
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(earliest - now);
  // Ceil so a timer is never polled awake a fraction early only to re-poll.
  return static_cast<int>(ms.count()) + 1;
}

void EventLoop::run() {
  loop_thread_id_.store(std::this_thread::get_id(), std::memory_order_release);
  std::vector<pollfd> pfds;
  std::vector<int> fds;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    drain_posted();
    if (stop_requested_.load(std::memory_order_acquire)) break;

    pfds.clear();
    fds.clear();
    pfds.push_back(pollfd{wake_fds_[0], POLLIN, 0});
    for (const auto& [fd, w] : watches_) {
      pfds.push_back(pollfd{fd, w.events, 0});
      fds.push_back(fd);
    }

    const int rc = ::poll(pfds.data(), pfds.size(), next_poll_timeout_ms());
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable poll failure: shut the loop down
    }

    if (pfds[0].revents & POLLIN) {
      char buf[64];
      while (::read(wake_fds_[0], buf, sizeof buf) > 0) {
      }
    }

    // Callbacks may watch/unwatch freely: we snapshotted the fd list, and
    // re-check membership before each dispatch.
    for (std::size_t i = 0; i < fds.size(); ++i) {
      const short revents = pfds[i + 1].revents;
      if (revents == 0) continue;
      const auto it = watches_.find(fds[i]);
      if (it == watches_.end()) continue;
      IoCallback cb = it->second.cb;  // copy: the callback may unwatch itself
      cb(revents);
    }
  }
  drain_posted();  // run final posted closures (shutdown cleanup)
  loop_thread_id_.store(std::thread::id{}, std::memory_order_release);
}

}  // namespace mg::net
