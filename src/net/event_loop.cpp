#include "net/event_loop.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>

#include "support/check.hpp"

namespace mg::net {

EventLoop::EventLoop(PollerBackend backend) : backend_(backend) {
  MG_REQUIRE(::pipe(wake_fds_) == 0);
  for (int fd : wake_fds_) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
}

EventLoop::~EventLoop() {
  stop();
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
}

void EventLoop::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  stop_requested_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
}

void EventLoop::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_requested_.store(true, std::memory_order_release);
  wake();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
  watches_.clear();
}

void EventLoop::post(std::function<void()> fn) {
  if (on_loop_thread()) {
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    posted_.push_back(std::move(fn));
  }
  wake();
}

std::uint64_t EventLoop::post_after(std::chrono::milliseconds delay, std::function<void()> fn) {
  std::uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    id = next_timer_id_++;
    timers_.push(Timer{std::chrono::steady_clock::now() + delay, id, std::move(fn)});
    live_timers_.insert(id);
  }
  wake();
  return id;
}

void EventLoop::cancel_timer(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Lazy cancellation: the heap entry stays where it is and is discarded
  // when it surfaces at the top.  Only live ids enter cancelled_, so a
  // stale cancel (timer already fired) can't grow the set.
  if (live_timers_.count(id) != 0) cancelled_.insert(id);
}

void EventLoop::watch(int fd, short events, IoCallback cb) {
  MG_REQUIRE(on_loop_thread());
  watches_[fd] = Watch{events, std::move(cb)};
  poller_->add(fd, events);
}

void EventLoop::modify(int fd, short events) {
  MG_REQUIRE(on_loop_thread());
  const auto it = watches_.find(fd);
  if (it == watches_.end()) return;
  it->second.events = events;
  poller_->modify(fd, events);
}

void EventLoop::unwatch(int fd) {
  MG_REQUIRE(on_loop_thread());
  if (watches_.erase(fd) != 0) poller_->remove(fd);
}

const char* EventLoop::poller_name() const {
  return resolved_poller_name_.load(std::memory_order_acquire);
}

void EventLoop::wake() {
  const char byte = 'w';
  [[maybe_unused]] const ssize_t r = ::write(wake_fds_[1], &byte, 1);  // full pipe is fine
}

void EventLoop::drain_posted() {
  std::vector<std::function<void()>> run_now;
  std::vector<std::function<void()>> due_timers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    run_now.swap(posted_);
    const auto now = std::chrono::steady_clock::now();
    while (!timers_.empty() && timers_.top().due <= now) {
      Timer t = std::move(const_cast<Timer&>(timers_.top()));
      timers_.pop();
      live_timers_.erase(t.id);
      if (cancelled_.erase(t.id) != 0) continue;
      due_timers.push_back(std::move(t.fn));
    }
  }
  for (auto& fn : run_now) fn();
  for (auto& fn : due_timers) fn();
}

int EventLoop::next_poll_timeout_ms() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!posted_.empty()) return 0;
  // Shed cancelled entries off the top so they can't shorten the sleep.
  while (!timers_.empty() && cancelled_.count(timers_.top().id) != 0) {
    cancelled_.erase(timers_.top().id);
    live_timers_.erase(timers_.top().id);
    timers_.pop();
  }
  if (timers_.empty()) return -1;
  const auto earliest = timers_.top().due;
  const auto now = std::chrono::steady_clock::now();
  if (earliest <= now) return 0;
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(earliest - now);
  // Ceil so a timer is never polled awake a fraction early only to re-poll.
  return static_cast<int>(ms.count()) + 1;
}

void EventLoop::run() {
  loop_thread_id_.store(std::this_thread::get_id(), std::memory_order_release);
  // Fresh poller per start() so a stop/start cycle resets the interest set.
  poller_ = make_poller(backend_);
  resolved_poller_name_.store(poller_->name(), std::memory_order_release);
  poller_->add(wake_fds_[0], POLLIN);

  std::vector<PollerEvent> events;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    drain_posted();
    if (stop_requested_.load(std::memory_order_acquire)) break;

    int rc = 0;
    try {
      rc = poller_->wait(events, next_poll_timeout_ms());
    } catch (const std::exception&) {
      break;  // unrecoverable poller failure: shut the loop down
    }

    for (int i = 0; i < rc; ++i) {
      const PollerEvent& ev = events[static_cast<std::size_t>(i)];
      if (ev.fd == wake_fds_[0]) {
        char buf[64];
        while (::read(wake_fds_[0], buf, sizeof buf) > 0) {
        }
        continue;
      }
      // Callbacks may watch/unwatch freely: membership is re-checked per
      // dispatch, and the callback is copied in case it unwatches itself.
      const auto it = watches_.find(ev.fd);
      if (it == watches_.end()) continue;
      IoCallback cb = it->second.cb;
      cb(ev.revents);
    }
  }
  drain_posted();  // run final posted closures (shutdown cleanup)
  poller_.reset();
  resolved_poller_name_.store("unstarted", std::memory_order_release);
  loop_thread_id_.store(std::thread::id{}, std::memory_order_release);
}

}  // namespace mg::net
