// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the frame
// integrity check of the network substrate.
//
// The framed transport puts a CRC over the header and another over the
// payload, so truncation, bit rot, and mid-stream desync are detected at the
// frame boundary instead of surfacing as garbage work units.  Table-driven,
// no dependencies; callers can chain calls via the `seed` parameter.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mg::net {

/// CRC-32 of `n` bytes.  `seed` is the running CRC of preceding data (0 to
/// start); the result of one call feeds the next, so a message can be
/// checksummed in pieces.
std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed = 0);

}  // namespace mg::net
