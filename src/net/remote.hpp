// RemoteEndpoint — the master-side network substrate that carries marshalled
// work units to worker processes over TCP and brings their results back.
//
// The paper's point is that the coordination protocol does not change when
// the transport does: ProtocolMW ran shared-memory and distributed by
// swapping the MLINK/CONFIG mapping.  This file is that swap for the
// reproduction.  The endpoint accepts connections from worker processes
// (local forks or remote joins), hands each leased channel one frame-encoded
// work unit at a time, and exposes a blocking round_trip() that the
// remote-proxy workers of core/remote_worker.cpp call from inside the
// unchanged protocol.  Failures are normalised to one observable — the round
// trip fails and the channel dies — which the proxy maps onto crash_worker,
// so the PR-3 retry/respawn/abandon machinery supervises real sockets
// exactly as it supervised threads.
//
// Frame-level fault injection (drop / delay / truncate on the master's TX
// path) reuses the seeded fault::FaultPlan: every work-frame send consumes a
// transfer ordinal, so the set of injected faults is a pure function of the
// seed, independent of scheduling.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "fleet/churn.hpp"
#include "net/event_loop.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"

namespace mg::net {

/// Elastic-fleet behaviour of the endpoint.  Off by default: the wire
/// protocol and failure semantics are then byte-identical to the fixed-fleet
/// endpoint (one lease per channel, unexpected seq closes the connection).
struct ElasticConfig {
  bool enabled = false;
  /// Work units leased to one channel: on-the-wire slots + locally queued
  /// backlog.  Depth >= 2 gives idle joiners a backlog to steal from.
  std::size_t lease_depth = 2;
  /// A lease in flight longer than this is speculatively re-issued to an
  /// idle channel (first Result wins, the loser is discarded and counted as
  /// fleet.duplicates).  0 disables speculation.
  std::chrono::milliseconds soft_deadline{0};
  /// Idle channels steal leased-but-unsent work from the most-loaded one.
  bool steal = true;
  /// Seq-tagged work units a channel may have on the wire at once, completed
  /// out of order — the pipelining that overlaps wire latency with worker
  /// compute.  Honoured with or without `enabled` (it is transport depth,
  /// not fleet elasticity).  Depth 1 restores the strict one-in-flight
  /// protocol of PR 5, where an unexpected Result seq closes the channel;
  /// any depth > 1 turns on the retired-seq dedup window instead.
  std::size_t pipeline_depth = 4;
};

struct RemoteEndpointConfig {
  /// Hard cap on one lease-dispatch-collect cycle; 0 = wait forever.  This
  /// bounds a dropped frame even when no RetryPolicy deadline is armed.
  std::chrono::milliseconds round_trip_deadline{10'000};
  /// Frame-level fault injection on the work path (drop / delay / truncate,
  /// probabilities from the plan's net_* knobs).  Not owned; may be null.
  const fault::FaultPlan* faults = nullptr;
  std::size_t max_payload = FrameDecoder::kDefaultMaxPayload;
  /// Cross-process telemetry: prepend a trace context to every Work payload
  /// and merge the worker's piggybacked counter/span batch from the Result.
  /// A pure observer either way — result bytes are delivered verbatim.
  bool telemetry = true;
  /// Elastic fleet: join/leave churn tolerance, work stealing, and
  /// deadline-aware speculative re-leasing.
  ElasticConfig elastic;
  /// Readiness backend for the endpoint's event loop (Auto = epoll on
  /// Linux, poll elsewhere; MG_NET_POLLER overrides Auto).
  PollerBackend poller = PollerBackend::Auto;
};

/// Point-in-time copy of the endpoint's counters (also mirrored into the
/// global obs registry under net.*).
struct RemoteCounters {
  std::uint64_t accepts = 0;          ///< handshakes completed
  std::uint64_t reconnects = 0;       ///< handshakes with connect attempt > 0
  std::uint64_t disconnects = 0;      ///< channels closed for any reason
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t crc_errors = 0;       ///< decoder-fatal streams (CRC, magic)
  std::uint64_t round_trips_ok = 0;
  std::uint64_t round_trips_failed = 0;
  std::uint64_t faults_dropped = 0;
  std::uint64_t faults_delayed = 0;
  std::uint64_t faults_truncated = 0;
  std::uint64_t telemetry_batches = 0;   ///< worker batches merged
  std::uint64_t telemetry_spans = 0;     ///< worker spans re-timed + merged
  std::uint64_t telemetry_rejected = 0;  ///< malformed batches dropped (job unaffected)
  /// Microseconds trips spent queued before their first dispatch — the
  /// dispatch-stall time pipelining exists to shrink (net_bench reads this).
  std::uint64_t dispatch_stall_micros = 0;
  // Elastic fleet (all zero unless config.elastic.enabled).
  std::uint64_t fleet_joins = 0;       ///< handshakes accepted into the lease set
  std::uint64_t fleet_leaves = 0;      ///< graceful departures (disrupt/Bye)
  std::uint64_t fleet_crashes = 0;     ///< abrupt channel deaths handled
  std::uint64_t fleet_steals = 0;      ///< leased-but-unsent units rebalanced
  std::uint64_t fleet_releases = 0;    ///< units re-leased (lost lease or soft deadline)
  std::uint64_t fleet_duplicates = 0;  ///< speculative-loser results discarded
};

class RemoteEndpoint {
 public:
  struct RoundTrip {
    bool ok = false;
    std::vector<std::uint8_t> payload;  ///< result payload when ok
    std::string error;                  ///< failure reason otherwise
  };

  /// Adopts a bound listener (created before any worker fork; see
  /// TcpListener) and starts the event loop.
  explicit RemoteEndpoint(TcpListener listener, RemoteEndpointConfig config = {});
  ~RemoteEndpoint();

  RemoteEndpoint(const RemoteEndpoint&) = delete;
  RemoteEndpoint& operator=(const RemoteEndpoint&) = delete;

  std::uint16_t port() const { return port_; }

  /// Channels that have completed the Hello handshake and are usable.
  std::size_t connected() const { return connected_.load(std::memory_order_acquire); }

  /// Blocks until at least n workers are connected; false on timeout.
  bool wait_for_workers(std::size_t n, std::chrono::milliseconds timeout);

  /// Leases an idle channel, sends `work` as one frame, and blocks until the
  /// matching Result/Error frame arrives or the channel dies.  `cancelled`
  /// (optional) is polled while waiting so a killed proxy process can
  /// abandon the wait; a cancelled or timed-out in-flight trip closes its
  /// channel (the worker will reconnect fresh).  Thread-safe.  `job_id`
  /// (optional) tags the dispatch's trace context so worker spans can be
  /// attributed to a service job.
  RoundTrip round_trip(std::vector<std::uint8_t> work,
                       const std::function<bool()>& cancelled = {},
                       std::uint64_t job_id = 0);

  /// Elastic-fleet churn hook: closes the most-loaded connected channel, as
  /// a spot instance leaving (`graceful`) or crashing.  The channel's leases
  /// are re-queued (elastic mode) and the worker reconnects fresh; a no-op
  /// when no channel is connected.  Thread-safe.
  void disrupt(bool graceful);

  /// Stops accepting, closes every channel (workers see EOF and eventually
  /// give up reconnecting), fails pending trips, and joins the loop thread.
  /// Idempotent; also run by the destructor.
  void shutdown();

  RemoteCounters counters() const;

  /// Runtime pipeline-window adjustment (clamped to [1, 64]).  Thread-safe:
  /// the loop reads the atomic before every placement, so a shrink stops new
  /// dispatches immediately while already-in-flight leases drain naturally.
  void set_pipeline_depth(std::size_t depth);
  std::size_t pipeline_depth() const { return pipeline_depth_.load(std::memory_order_acquire); }

  /// Readiness backend the endpoint's loop resolved to ("epoll" / "poll").
  const char* poller_name() const;

 private:
  struct Channel;
  struct Trip;

  void setup_on_loop();
  void on_acceptable();
  void on_channel_io(std::uint64_t id, short revents);
  void handle_frame(Channel& ch, Frame frame);
  void close_channel(std::uint64_t id, const std::string& reason);
  void try_dispatch();
  void dispatch(Channel& ch, std::shared_ptr<Trip> trip);
  void enqueue_frame(Channel& ch, std::vector<std::uint8_t> header,
                     std::vector<std::uint8_t> payload);
  void enqueue_bytes(Channel& ch, std::vector<std::uint8_t> bytes);
  void flush_channel(Channel& ch);
  /// True when unexpected-but-retired Result seqs are dropped as duplicates
  /// instead of treated as protocol violations (elastic fleet, or any
  /// pipeline window wider than one).
  bool dedup_enabled() const;
  void fail_trip(const std::shared_ptr<Trip>& trip, const std::string& error);
  void complete_trip(const std::shared_ptr<Trip>& trip, std::vector<std::uint8_t> payload);
  bool trip_done(const std::shared_ptr<Trip>& trip) const;
  void retire_seq(std::uint64_t seq);
  bool seq_retired(std::uint64_t seq) const;
  void speculate();
  void arm_speculation();

  RemoteEndpointConfig config_;
  TcpListener listener_;
  std::uint16_t port_ = 0;
  EventLoop loop_;

  // ---- loop-thread state ----
  std::map<std::uint64_t, std::unique_ptr<Channel>> channels_;
  std::deque<std::shared_ptr<Trip>> pending_trips_;
  std::uint64_t next_channel_id_ = 1;
  std::uint64_t next_seq_ = 1;
  std::uint64_t transfer_ordinal_ = 0;  ///< work-frame sends, for the fault plan
  std::uint64_t trace_id_ = 0;          ///< one per endpoint (pid + ordinal)
  std::uint64_t next_span_id_ = 1;      ///< dispatch span ids within the trace
  /// Ring of recently completed lease seqs (elastic or pipelined): a Result
  /// bearing one of these is a speculative loser's or a cancelled lease's
  /// late echo, dropped without closing the channel.  Any other unexpected
  /// seq is still a protocol violation.
  std::vector<std::uint64_t> retired_seqs_;
  std::size_t retired_next_ = 0;

  // ---- shared state ----
  std::atomic<std::size_t> connected_{0};
  std::atomic<bool> down_{false};
  std::atomic<std::size_t> pipeline_depth_{1};  ///< seeded from config in the ctor
  mutable std::mutex workers_mutex_;
  std::condition_variable workers_cv_;

  struct CounterCells;  // endpoint-local atomics + obs registry mirrors
  std::unique_ptr<CounterCells> counters_;
};

/// Computes a worker's reply to one work payload.  Runs on the worker
/// process; a thrown exception becomes an Error frame (the master retries).
using WorkHandler =
    std::function<std::vector<std::uint8_t>(const std::vector<std::uint8_t>& work)>;

struct WorkerLoopOptions {
  std::chrono::milliseconds connect_timeout{2'000};
  std::chrono::milliseconds reconnect_backoff{20};
  /// Consecutive failed connects before concluding the master is gone.
  int max_connect_failures = 15;
  std::size_t max_payload = FrameDecoder::kDefaultMaxPayload;
};

/// Blocking worker-process main loop: connect to the master, announce with
/// Hello, serve Work frames until the stream breaks, reconnect (counting
/// attempts in the Hello so the master can tally reconnects), and exit 0
/// once the master stops answering.  Returns a process exit status.
int run_worker_loop(const std::string& host, std::uint16_t port, const WorkHandler& handler,
                    WorkerLoopOptions options = {});

/// Forks n worker processes running child_main; each child _exits with its
/// return value and never returns here.  Must be called while the calling
/// process is still single-threaded (i.e. before any Runtime or
/// RemoteEndpoint exists) — the canonical order is: bind the TcpListener,
/// fork the workers, then construct the RemoteEndpoint.  child_main must
/// close the inherited listener first: a child that keeps the master's
/// listening fd open holds the port alive after the master closes it, so
/// worker reconnects would connect to a socket nobody accepts on.
std::vector<int> fork_worker_processes(std::size_t n, const std::function<int()>& child_main);

/// Reaps the forked workers; returns the maximum exit status observed.
int wait_worker_processes(const std::vector<int>& pids);

/// Spot-instance churn driver: replays a ChurnPlan's Leave/Crash events
/// against a live endpoint in wall time (event offsets are seconds from the
/// call).  Join events are not the master's to make — late workers connect on
/// their own schedule — so they are skipped here.  Blocks until the last
/// event fired or `stop` became true; poll-sleeps so a finished run returns
/// promptly.
void drive_churn(RemoteEndpoint& endpoint, const fleet::ChurnPlan& plan,
                 const std::atomic<bool>& stop);

}  // namespace mg::net
