#include "net/remote.hpp"

#include <poll.h>
#include <sys/uio.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <exception>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "support/bytes.hpp"
#include "support/check.hpp"

namespace mg::net {

namespace {

void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

// Global obs mirrors; endpoint-local atomics (CounterCells) keep per-endpoint
// views for tests that run several endpoints in one process.
struct NetMetrics {
  obs::Counter& accepts;
  obs::Counter& reconnects;
  obs::Counter& disconnects;
  obs::Counter& frames_sent;
  obs::Counter& frames_received;
  obs::Counter& bytes_sent;
  obs::Counter& bytes_received;
  obs::Counter& crc_errors;
  obs::Counter& round_trips_ok;
  obs::Counter& round_trips_failed;
  obs::Counter& faults_dropped;
  obs::Counter& faults_delayed;
  obs::Counter& faults_truncated;
  obs::Counter& telemetry_batches;
  obs::Counter& telemetry_spans;
  obs::Counter& telemetry_rejected;
  obs::Counter& dispatch_stall_micros;
  obs::Gauge& clock_offset_seconds;
  obs::Histogram& round_trip_seconds;
  obs::Histogram& dispatch_stall_seconds;
};

NetMetrics& net_metrics() {
  static NetMetrics m{
      obs::registry().counter("net.accepts"),
      obs::registry().counter("net.reconnects"),
      obs::registry().counter("net.disconnects"),
      obs::registry().counter("net.frames_sent"),
      obs::registry().counter("net.frames_received"),
      obs::registry().counter("net.bytes_sent"),
      obs::registry().counter("net.bytes_received"),
      obs::registry().counter("net.crc_errors"),
      obs::registry().counter("net.round_trips_ok"),
      obs::registry().counter("net.round_trips_failed"),
      obs::registry().counter("net.faults_dropped"),
      obs::registry().counter("net.faults_delayed"),
      obs::registry().counter("net.faults_truncated"),
      obs::registry().counter("net.telemetry_batches"),
      obs::registry().counter("net.telemetry_spans"),
      obs::registry().counter("net.telemetry_rejected"),
      obs::registry().counter("net.dispatch_stall_micros"),
      obs::registry().gauge("net.clock_offset_seconds"),
      obs::registry().histogram("net.round_trip_seconds", obs::default_latency_buckets()),
      obs::registry().histogram("net.dispatch_stall_seconds", obs::default_latency_buckets()),
  };
  return m;
}

// Elastic-fleet obs mirrors — same fleet.* names every substrate writes, so
// the merged view of a run sums threads, sim, and TCP contributions.
struct FleetNetMetrics {
  obs::Counter& joins;
  obs::Counter& leaves;
  obs::Counter& crashes;
  obs::Counter& steals;
  obs::Counter& releases;
  obs::Counter& duplicates;
};

FleetNetMetrics& fleet_net_metrics() {
  static FleetNetMetrics m{
      obs::registry().counter("fleet.joins"),    obs::registry().counter("fleet.leaves"),
      obs::registry().counter("fleet.crashes"),  obs::registry().counter("fleet.steals"),
      obs::registry().counter("fleet.releases"), obs::registry().counter("fleet.duplicates"),
  };
  return m;
}

}  // namespace

struct RemoteEndpoint::CounterCells {
  std::atomic<std::uint64_t> accepts{0};
  std::atomic<std::uint64_t> reconnects{0};
  std::atomic<std::uint64_t> disconnects{0};
  std::atomic<std::uint64_t> frames_sent{0};
  std::atomic<std::uint64_t> frames_received{0};
  std::atomic<std::uint64_t> bytes_sent{0};
  std::atomic<std::uint64_t> bytes_received{0};
  std::atomic<std::uint64_t> crc_errors{0};
  std::atomic<std::uint64_t> round_trips_ok{0};
  std::atomic<std::uint64_t> round_trips_failed{0};
  std::atomic<std::uint64_t> faults_dropped{0};
  std::atomic<std::uint64_t> faults_delayed{0};
  std::atomic<std::uint64_t> faults_truncated{0};
  std::atomic<std::uint64_t> telemetry_batches{0};
  std::atomic<std::uint64_t> telemetry_spans{0};
  std::atomic<std::uint64_t> telemetry_rejected{0};
  std::atomic<std::uint64_t> dispatch_stall_micros{0};
  std::atomic<std::uint64_t> fleet_joins{0};
  std::atomic<std::uint64_t> fleet_leaves{0};
  std::atomic<std::uint64_t> fleet_crashes{0};
  std::atomic<std::uint64_t> fleet_steals{0};
  std::atomic<std::uint64_t> fleet_releases{0};
  std::atomic<std::uint64_t> fleet_duplicates{0};

  void bump(std::atomic<std::uint64_t>& cell, obs::Counter& mirror, std::uint64_t n = 1) {
    cell.fetch_add(n, std::memory_order_relaxed);
    mirror.add(n);
  }
};

struct RemoteEndpoint::Trip {
  std::vector<std::uint8_t> work;
  std::uint64_t seq = 0;     ///< loop thread: seq of the latest dispatch
  std::uint64_t job_id = 0;  ///< caller-supplied trace attribution
  /// Loop thread: channels currently carrying this trip.  At most one unless
  /// a speculative re-lease put a second copy in flight; empty = queued.
  std::vector<std::uint64_t> carriers;
  bool speculated = false;  ///< one speculative re-lease per trip
  std::chrono::steady_clock::time_point queued_at{};  ///< round_trip submission time
  bool dispatched = false;  ///< loop thread: first dispatch happened (stall accounted)

  // Telemetry (loop thread): set when a trace context was prepended to the
  // Work payload — the Result is then a telemetry envelope.
  bool context_sent = false;
  obs::TraceContext context;

  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  RoundTrip result;
};

struct RemoteEndpoint::Channel {
  /// One seq-tagged work unit on the wire.  Each dispatch keeps the seq of
  /// its own send, so a speculative copy racing on another channel has a
  /// different seq than the original — completion is matched per lease, in
  /// any order, never per channel.
  struct Lease {
    std::shared_ptr<Trip> trip;
    std::chrono::steady_clock::time_point sent_at{};
  };

  std::uint64_t id = 0;
  Socket sock;
  FrameDecoder decoder;
  bool hello_seen = false;
  std::uint64_t worker_pid = 0;
  /// Per-connection write queue: one buffer per frame header and one per
  /// payload (never concatenated), flushed with a scatter-gather sendmsg so
  /// back-to-back small frames coalesce into one syscall.
  std::deque<std::vector<std::uint8_t>> outbox;
  std::size_t out_off = 0;  ///< bytes of outbox.front() already sent
  /// Work units on the wire, keyed by seq (ascending = dispatch order).  Up
  /// to pipeline_depth entries; Results may land in any order.
  std::map<std::uint64_t, Lease> in_flight;
  /// Elastic: work leased to this channel but not yet on the wire; what
  /// idle joiners steal from.
  std::deque<std::shared_ptr<Trip>> backlog;

  // Telemetry: per-connection clock alignment + the trace track all of this
  // channel's dispatch and worker spans land on.
  obs::ClockOffsetEstimator offset;
  std::string track;

  Channel(std::uint64_t id_, Socket sock_, std::size_t max_payload)
      : id(id_), sock(std::move(sock_)), decoder(max_payload),
        track("tcp.ch" + std::to_string(id_)) {}
};

RemoteEndpoint::RemoteEndpoint(TcpListener listener, RemoteEndpointConfig config)
    : config_(config),
      listener_(std::move(listener)),
      loop_(config.poller),
      counters_(std::make_unique<CounterCells>()) {
  MG_REQUIRE(listener_.valid());
  port_ = listener_.port();
  set_pipeline_depth(config_.elastic.pipeline_depth);
  static std::atomic<std::uint64_t> endpoint_ordinal{0};
  trace_id_ = (static_cast<std::uint64_t>(::getpid()) << 16) ^
              endpoint_ordinal.fetch_add(1, std::memory_order_relaxed);
  loop_.start();
  loop_.post([this] { setup_on_loop(); });
}

RemoteEndpoint::~RemoteEndpoint() { shutdown(); }

void RemoteEndpoint::set_pipeline_depth(std::size_t depth) {
  pipeline_depth_.store(std::clamp<std::size_t>(depth, 1, 64), std::memory_order_release);
}

const char* RemoteEndpoint::poller_name() const { return loop_.poller_name(); }

bool RemoteEndpoint::dedup_enabled() const {
  return config_.elastic.enabled || pipeline_depth_.load(std::memory_order_acquire) > 1;
}

void RemoteEndpoint::setup_on_loop() {
  // Blocking while single-threaded (fork-friendly), non-blocking once polled:
  // a connection that aborts between poll() and accept() must not park the
  // loop inside accept().
  listener_.set_nonblocking(true);
  loop_.watch(listener_.fd(), POLLIN, [this](short) { on_acceptable(); });
  if (config_.elastic.enabled && config_.elastic.soft_deadline.count() > 0) arm_speculation();
}

void RemoteEndpoint::arm_speculation() {
  const auto tick = std::max(config_.elastic.soft_deadline / 2, std::chrono::milliseconds(5));
  loop_.post_after(tick, [this] {
    if (down_.load(std::memory_order_acquire)) return;
    speculate();
    arm_speculation();
  });
}

void RemoteEndpoint::speculate() {
  // A lease in flight past the soft deadline gets a second copy on an idle
  // channel — first Result wins; the loser is recognised by its seq and
  // dropped (never combined, never double-counted).
  const auto now = std::chrono::steady_clock::now();
  for (;;) {
    Channel* idle = nullptr;
    std::shared_ptr<Trip> overdue;  // copy: the original carrier keeps racing
    std::chrono::steady_clock::time_point overdue_at{};
    for (auto& [id, ch] : channels_) {
      if (!ch->hello_seen) continue;
      if (ch->in_flight.empty() && ch->backlog.empty()) {
        if (idle == nullptr) idle = ch.get();
        continue;
      }
      for (const auto& [seq, lease] : ch->in_flight) {
        if (lease.trip->speculated || now - lease.sent_at < config_.elastic.soft_deadline ||
            trip_done(lease.trip)) {
          continue;
        }
        if (overdue == nullptr || lease.sent_at < overdue_at) {
          overdue = lease.trip;
          overdue_at = lease.sent_at;
        }
      }
    }
    if (idle == nullptr || overdue == nullptr) return;
    overdue->speculated = true;
    counters_->bump(counters_->fleet_releases, fleet_net_metrics().releases);
    dispatch(*idle, std::move(overdue));
  }
}

void RemoteEndpoint::on_acceptable() {
  for (;;) {
    Socket s = listener_.accept();
    if (!s.valid()) return;
    const std::uint64_t id = next_channel_id_++;
    const int fd = s.fd();
    channels_.emplace(id, std::make_unique<Channel>(id, std::move(s), config_.max_payload));
    loop_.watch(fd, POLLIN, [this, id](short revents) { on_channel_io(id, revents); });
  }
}

void RemoteEndpoint::on_channel_io(std::uint64_t id, short revents) {
  const auto it = channels_.find(id);
  if (it == channels_.end()) return;
  Channel& ch = *it->second;

  if (revents & (POLLERR | POLLNVAL)) {
    close_channel(id, "socket error");
    return;
  }

  if (revents & POLLOUT) {
    try {
      flush_channel(ch);
    } catch (const SocketError& e) {
      close_channel(id, e.what());
      return;
    }
  }

  if (revents & (POLLIN | POLLHUP)) {
    std::uint8_t buf[64 * 1024];
    for (;;) {
      std::ptrdiff_t r;
      try {
        r = ch.sock.recv_some(buf, sizeof buf);
      } catch (const SocketError& e) {
        close_channel(id, e.what());
        return;
      }
      if (r < 0) break;  // drained
      if (r == 0) {      // peer closed
        close_channel(id, "peer disconnected");
        return;
      }
      counters_->bump(counters_->bytes_received, net_metrics().bytes_received,
                      static_cast<std::uint64_t>(r));
      ch.decoder.feed(buf, static_cast<std::size_t>(r));
      try {
        while (auto frame = ch.decoder.next()) {
          counters_->bump(counters_->frames_received, net_metrics().frames_received);
          handle_frame(ch, std::move(*frame));
          if (channels_.find(id) == channels_.end()) return;  // handler closed us
        }
      } catch (const FrameError& e) {
        counters_->bump(counters_->crc_errors, net_metrics().crc_errors);
        close_channel(id, std::string("corrupt stream: ") + e.what());
        return;
      }
    }
  }
}

void RemoteEndpoint::handle_frame(Channel& ch, Frame frame) {
  switch (frame.header.type) {
    case FrameType::Hello: {
      // 24 bytes since protocol v2 (pid, attempt, f64 clock sample); the
      // 16-byte form is still accepted so a bare handshake keeps working.
      if (ch.hello_seen || (frame.payload.size() != 16 && frame.payload.size() != 24)) {
        close_channel(ch.id, "protocol violation: bad Hello");
        return;
      }
      ch.hello_seen = true;
      ch.worker_pid = get_u64(frame.payload.data());
      const std::uint64_t attempt = get_u64(frame.payload.data() + 8);
      if (frame.payload.size() == 24) {
        // Coarse one-way seed: refined by the first round trip's NTP-style
        // two-sided sample, but good enough to align spans immediately.
        const std::uint64_t bits = get_u64(frame.payload.data() + 16);
        double sample = 0.0;
        std::memcpy(&sample, &bits, sizeof sample);
        ch.offset.seed(obs::wall_clock_seconds(), sample);
      }
      counters_->bump(counters_->accepts, net_metrics().accepts);
      if (attempt > 0) counters_->bump(counters_->reconnects, net_metrics().reconnects);
      if (config_.elastic.enabled) {
        counters_->bump(counters_->fleet_joins, fleet_net_metrics().joins);
      }
      connected_.fetch_add(1, std::memory_order_acq_rel);
      {
        std::lock_guard<std::mutex> lk(workers_mutex_);
      }
      workers_cv_.notify_all();
      try_dispatch();
      return;
    }
    case FrameType::Result: {
      const auto lease = ch.in_flight.find(frame.header.seq);
      if (lease == ch.in_flight.end()) {
        if (dedup_enabled() && seq_retired(frame.header.seq)) {
          // Late echo of a lease that already completed elsewhere — a
          // speculative loser or a cancelled lease within the pipeline
          // window, not a protocol violation.
          counters_->bump(counters_->fleet_duplicates, fleet_net_metrics().duplicates);
          return;
        }
        close_channel(ch.id, "protocol violation: unexpected Result seq");
        return;
      }
      auto trip = std::move(lease->second.trip);
      ch.in_flight.erase(lease);
      retire_seq(frame.header.seq);
      trip->carriers.erase(std::remove(trip->carriers.begin(), trip->carriers.end(), ch.id),
                           trip->carriers.end());
      if (dedup_enabled() && trip_done(trip)) {
        // This carrier lost the speculation race: the unit was already
        // combined once, so this copy is dropped, not delivered.
        counters_->bump(counters_->fleet_duplicates, fleet_net_metrics().duplicates);
        try_dispatch();
        return;
      }
      if (!trip->context_sent) {
        complete_trip(trip, std::move(frame.payload));
        try_dispatch();
        return;
      }
      // Context was sent, so the Result is a telemetry envelope.  The
      // envelope framing itself must be sound (else the stream is suspect),
      // but a malformed telemetry *blob* inside it only costs us the
      // telemetry: the result bytes are delivered and the job proceeds on
      // local-only metrics.
      obs::ResultEnvelope env;
      try {
        env = obs::unwrap_result(frame.payload);
      } catch (const support::DecodeError& e) {
        close_channel(ch.id, std::string("protocol violation: ") + e.what());
        return;
      }
      const double t3 = obs::wall_clock_seconds();
      if (!env.telemetry.empty()) {
        try {
          const obs::TelemetryBatch batch = obs::decode_telemetry_batch(env.telemetry);
          ch.offset.update(trip->context.master_send_seconds, batch.worker_recv_seconds,
                           batch.worker_send_seconds, t3);
          net_metrics().clock_offset_seconds.set(ch.offset.offset_seconds());
          // The master-side dispatch span and the worker's re-timed spans
          // share this channel's track, so the worker spans nest under the
          // dispatch on the merged timeline.
          obs::tracer().record({"dispatch", "net", ch.track,
                                trip->context.master_send_seconds, t3});
          obs::merge_telemetry_batch(batch, ch.offset, ch.track,
                                     trip->context.master_send_seconds, t3,
                                     obs::registry(), obs::tracer());
          counters_->bump(counters_->telemetry_batches, net_metrics().telemetry_batches);
          counters_->bump(counters_->telemetry_spans, net_metrics().telemetry_spans,
                          batch.spans.size());
        } catch (const support::DecodeError&) {
          counters_->bump(counters_->telemetry_rejected, net_metrics().telemetry_rejected);
        }
      }
      complete_trip(trip, std::move(env.result));
      try_dispatch();
      return;
    }
    case FrameType::Error: {
      const auto lease = ch.in_flight.find(frame.header.seq);
      if (lease == ch.in_flight.end()) {
        if (dedup_enabled() && seq_retired(frame.header.seq)) {
          counters_->bump(counters_->fleet_duplicates, fleet_net_metrics().duplicates);
          return;
        }
        close_channel(ch.id, "protocol violation: unexpected Error seq");
        return;
      }
      // The worker is healthy — its computation failed.  Fail the trip but
      // keep the channel; the supervisor decides whether to retry.
      auto trip = std::move(lease->second.trip);
      ch.in_flight.erase(lease);
      retire_seq(frame.header.seq);
      trip->carriers.erase(std::remove(trip->carriers.begin(), trip->carriers.end(), ch.id),
                           trip->carriers.end());
      if (dedup_enabled() && trip_done(trip)) {
        counters_->bump(counters_->fleet_duplicates, fleet_net_metrics().duplicates);
        try_dispatch();
        return;
      }
      fail_trip(trip, "worker error: " +
                          std::string(frame.payload.begin(), frame.payload.end()));
      try_dispatch();
      return;
    }
    case FrameType::Bye:
      close_channel(ch.id, "worker said Bye");
      return;
    case FrameType::Work:
      close_channel(ch.id, "protocol violation: Work frame from worker");
      return;
    default:
      break;  // job-API / stats frames have no business on a worker channel
  }
  close_channel(ch.id, "protocol violation: unknown frame type");
}

void RemoteEndpoint::close_channel(std::uint64_t id, const std::string& reason) {
  const auto it = channels_.find(id);
  if (it == channels_.end()) return;
  Channel& ch = *it->second;
  loop_.unwatch(ch.sock.fd());
  if (ch.hello_seen) {
    connected_.fetch_sub(1, std::memory_order_acq_rel);
    {
      std::lock_guard<std::mutex> lk(workers_mutex_);
    }
    workers_cv_.notify_all();
  }
  counters_->bump(counters_->disconnects, net_metrics().disconnects);
  // Elastic mode survives a channel death: its leases go back to the queue
  // front (a re-lease) unless a speculative copy is still racing elsewhere.
  // During shutdown nobody will dispatch again, so trips must fail instead.
  const bool elastic = config_.elastic.enabled && !down_.load(std::memory_order_acquire);
  bool requeued = false;
  // Requeue in dispatch order: backlog first (pushed front in reverse), then
  // the in-flight leases (map is seq-ascending = dispatch order, also pushed
  // front in reverse), so the oldest lease re-dispatches first.
  for (auto bit = ch.backlog.rbegin(); bit != ch.backlog.rend(); ++bit) {
    if (elastic && !trip_done(*bit)) {
      pending_trips_.push_front(std::move(*bit));
      requeued = true;
    } else if (!elastic && !trip_done(*bit)) {
      fail_trip(*bit, "channel closed: " + reason);
    }
  }
  ch.backlog.clear();
  for (auto lit = ch.in_flight.rbegin(); lit != ch.in_flight.rend(); ++lit) {
    auto trip = std::move(lit->second.trip);
    retire_seq(lit->first);
    trip->carriers.erase(std::remove(trip->carriers.begin(), trip->carriers.end(), id),
                         trip->carriers.end());
    if (elastic) {
      if (!trip_done(trip) && trip->carriers.empty()) {
        counters_->bump(counters_->fleet_releases, fleet_net_metrics().releases);
        pending_trips_.push_front(std::move(trip));
        requeued = true;
      }
    } else {
      fail_trip(trip, "channel closed: " + reason);
    }
  }
  ch.in_flight.clear();
  channels_.erase(it);
  if (requeued) {
    // Deferred: close_channel may be running inside try_dispatch already.
    loop_.post([this] { try_dispatch(); });
  }
}

void RemoteEndpoint::try_dispatch() {
  const std::size_t depth = pipeline_depth_.load(std::memory_order_acquire);
  if (!config_.elastic.enabled) {
    // Fixed fleet, pipelined wire: place each queued trip on the channel
    // with the most spare window, so trips spread before they stack.
    while (!pending_trips_.empty()) {
      Channel* target = nullptr;
      for (auto& [id, ch] : channels_) {
        if (!ch->hello_seen || ch->in_flight.size() >= depth) continue;
        if (target == nullptr || ch->in_flight.size() < target->in_flight.size()) {
          target = ch.get();
        }
      }
      if (target == nullptr) return;
      auto trip = std::move(pending_trips_.front());
      pending_trips_.pop_front();
      {
        std::lock_guard<std::mutex> lk(trip->m);
        if (trip->done) continue;  // aborted while queued
      }
      dispatch(*target, std::move(trip));
    }
    return;
  }

  // Elastic scheduler.  One placement per pass — a send can tear down its
  // channel, so every pass rescans the (possibly mutated) channel map:
  //   1. a free wire slot drains its own backlog;
  //   2. queued work goes on the wire of the least-loaded channel with
  //      window to spare, else the shallowest backlog with lease capacity;
  //   3. with nothing queued, an idle channel steals the oldest
  //      leased-but-unsent unit from the most-loaded lane.
  const std::size_t lease_cap = std::max(config_.elastic.lease_depth, depth);
  for (;;) {
    Channel* wire = nullptr;   // free wire slot with its own backlog
    Channel* spare = nullptr;  // free wire slot, empty backlog (least loaded)
    Channel* roomy = nullptr;  // wire full, but under the lease cap
    Channel* donor = nullptr;  // deepest backlog (steal victim)
    for (auto& [id, ch] : channels_) {
      if (!ch->hello_seen) continue;
      if (ch->in_flight.size() < depth) {
        if (!ch->backlog.empty()) {
          if (wire == nullptr) wire = ch.get();
        } else if (spare == nullptr || ch->in_flight.size() < spare->in_flight.size()) {
          spare = ch.get();
        }
        continue;
      }
      if (ch->in_flight.size() + ch->backlog.size() < lease_cap &&
          (roomy == nullptr || ch->backlog.size() < roomy->backlog.size())) {
        roomy = ch.get();
      }
      if (!ch->backlog.empty() &&
          (donor == nullptr || ch->backlog.size() > donor->backlog.size())) {
        donor = ch.get();
      }
    }
    const auto aborted_while_queued = [](const std::shared_ptr<Trip>& t) {
      std::lock_guard<std::mutex> lk(t->m);
      return t->done;
    };
    if (wire != nullptr) {
      auto trip = std::move(wire->backlog.front());
      wire->backlog.pop_front();
      if (aborted_while_queued(trip)) continue;
      dispatch(*wire, std::move(trip));
      continue;
    }
    if (!pending_trips_.empty() && (spare != nullptr || roomy != nullptr)) {
      auto trip = std::move(pending_trips_.front());
      pending_trips_.pop_front();
      if (aborted_while_queued(trip)) continue;
      if (spare != nullptr) {
        dispatch(*spare, std::move(trip));
      } else {
        roomy->backlog.push_back(std::move(trip));
      }
      continue;
    }
    // Steal only into a fully idle channel (a fresh joiner), as before.
    if (spare != nullptr && spare->in_flight.empty() && donor != nullptr &&
        config_.elastic.steal) {
      auto trip = std::move(donor->backlog.front());
      donor->backlog.pop_front();
      if (aborted_while_queued(trip)) continue;
      counters_->bump(counters_->fleet_steals, fleet_net_metrics().steals);
      dispatch(*spare, std::move(trip));
      continue;
    }
    return;
  }
}

void RemoteEndpoint::dispatch(Channel& ch, std::shared_ptr<Trip> trip) {
  const std::uint64_t seq = next_seq_++;
  const auto now = std::chrono::steady_clock::now();
  trip->seq = seq;
  trip->carriers.push_back(ch.id);
  ch.in_flight[seq] = Channel::Lease{trip, now};
  if (!trip->dispatched) {
    // Dispatch stall: queue-entry to first placement.  This is the wait
    // pipelining exists to shrink — with a wide enough window it is the
    // post() hop, with a saturated one it is a full round trip.
    trip->dispatched = true;
    const auto stall = std::chrono::duration_cast<std::chrono::microseconds>(now - trip->queued_at);
    const std::uint64_t micros = stall.count() > 0 ? static_cast<std::uint64_t>(stall.count()) : 0;
    counters_->bump(counters_->dispatch_stall_micros, net_metrics().dispatch_stall_micros,
                    micros);
    net_metrics().dispatch_stall_seconds.observe(static_cast<double>(micros) * 1e-6);
  }
  const std::uint64_t ordinal = transfer_ordinal_++;
  std::vector<std::uint8_t> payload;
  if (config_.telemetry) {
    trip->context.trace_id = trace_id_;
    trip->context.span_id = next_span_id_++;
    trip->context.job_id = trip->job_id;
    trip->context.master_send_seconds = obs::wall_clock_seconds();
    trip->context_sent = true;
    payload = obs::prepend_context(trip->context, trip->work);
  } else {
    payload = trip->work;  // copy: the trip may be re-leased elsewhere later
  }
  std::vector<std::uint8_t> header =
      encode_frame_header(FrameType::Work, seq, payload.data(), payload.size());

  const fault::FaultPlan* plan = config_.faults;
  if (plan != nullptr) {
    if (plan->drops_transfer(ordinal)) {
      // Vanish the frame: the trip rides to its deadline, which closes the
      // channel — exactly what a blackholed packet looks like from above.
      counters_->bump(counters_->faults_dropped, net_metrics().faults_dropped);
      return;
    }
    if (plan->truncates_transfer(ordinal)) {
      // Send a prefix and cut the connection: the worker's decoder sees a
      // short stream, the trip fails fast, the worker reconnects.  Rare
      // path, so materialising the contiguous frame to halve it is fine.
      counters_->bump(counters_->faults_truncated, net_metrics().faults_truncated);
      std::vector<std::uint8_t> bytes = std::move(header);
      bytes.insert(bytes.end(), payload.begin(), payload.end());
      std::vector<std::uint8_t> prefix(bytes.begin(),
                                       bytes.begin() + static_cast<std::ptrdiff_t>(bytes.size() / 2));
      try {
        enqueue_bytes(ch, std::move(prefix));
      } catch (const SocketError&) {
      }
      close_channel(ch.id, "injected truncation");
      return;
    }
    if (plan->transfer_slowdown(ordinal) > 1.0) {
      counters_->bump(counters_->faults_delayed, net_metrics().faults_delayed);
      const std::uint64_t channel_id = ch.id;
      loop_.post_after(plan->config().net_delay,
                       [this, channel_id, seq, trip, header = std::move(header),
                        payload = std::move(payload)]() mutable {
                         const auto it = channels_.find(channel_id);
                         if (it == channels_.end()) return;
                         const auto lease = it->second->in_flight.find(seq);
                         if (lease == it->second->in_flight.end() ||
                             lease->second.trip != trip) {
                           return;  // lease completed/cancelled while delayed
                         }
                         try {
                           enqueue_frame(*it->second, std::move(header), std::move(payload));
                         } catch (const SocketError& e) {
                           close_channel(channel_id, e.what());
                         }
                       });
      return;
    }
  }

  try {
    enqueue_frame(ch, std::move(header), std::move(payload));
  } catch (const SocketError& e) {
    close_channel(ch.id, e.what());
  }
}

void RemoteEndpoint::enqueue_frame(Channel& ch, std::vector<std::uint8_t> header,
                                   std::vector<std::uint8_t> payload) {
  counters_->bump(counters_->frames_sent, net_metrics().frames_sent);
  counters_->bump(counters_->bytes_sent, net_metrics().bytes_sent,
                  header.size() + payload.size());
  ch.outbox.push_back(std::move(header));
  if (!payload.empty()) ch.outbox.push_back(std::move(payload));
  flush_channel(ch);
}

void RemoteEndpoint::enqueue_bytes(Channel& ch, std::vector<std::uint8_t> bytes) {
  counters_->bump(counters_->frames_sent, net_metrics().frames_sent);
  counters_->bump(counters_->bytes_sent, net_metrics().bytes_sent, bytes.size());
  if (!bytes.empty()) ch.outbox.push_back(std::move(bytes));
  flush_channel(ch);
}

void RemoteEndpoint::flush_channel(Channel& ch) {
  // Scatter-gather flush: every queued buffer (frame headers and payloads
  // alike) rides one sendmsg, so consecutive small frames coalesce into a
  // single syscall and payload bytes are never copied into a joined buffer.
  constexpr int kMaxIov = 16;
  while (!ch.outbox.empty()) {
    ::iovec iov[kMaxIov];
    int iovcnt = 0;
    std::size_t skip = ch.out_off;
    for (const auto& buf : ch.outbox) {
      if (iovcnt == kMaxIov) break;
      iov[iovcnt].iov_base = const_cast<std::uint8_t*>(buf.data()) + skip;
      iov[iovcnt].iov_len = buf.size() - skip;
      skip = 0;
      ++iovcnt;
    }
    const std::ptrdiff_t r = ch.sock.send_vec(iov, iovcnt);
    if (r < 0) break;  // kernel buffer full: wait for POLLOUT
    std::size_t left = static_cast<std::size_t>(r);
    while (left > 0) {
      const std::size_t avail = ch.outbox.front().size() - ch.out_off;
      if (left >= avail) {
        left -= avail;
        ch.outbox.pop_front();
        ch.out_off = 0;
      } else {
        ch.out_off += left;
        left = 0;
      }
    }
    if (r == 0) break;  // defensive: never spin on a zero-byte send
  }
  loop_.modify(ch.sock.fd(), ch.outbox.empty() ? POLLIN : (POLLIN | POLLOUT));
}

void RemoteEndpoint::fail_trip(const std::shared_ptr<Trip>& trip, const std::string& error) {
  {
    std::lock_guard<std::mutex> lk(trip->m);
    if (trip->done) return;
    trip->done = true;
    trip->result.ok = false;
    trip->result.error = error;
  }
  trip->cv.notify_all();
}

void RemoteEndpoint::complete_trip(const std::shared_ptr<Trip>& trip,
                                   std::vector<std::uint8_t> payload) {
  {
    std::lock_guard<std::mutex> lk(trip->m);
    if (trip->done) return;
    trip->done = true;
    trip->result.ok = true;
    trip->result.payload = std::move(payload);
  }
  trip->cv.notify_all();
}

bool RemoteEndpoint::trip_done(const std::shared_ptr<Trip>& trip) const {
  std::lock_guard<std::mutex> lk(trip->m);
  return trip->done;
}

void RemoteEndpoint::retire_seq(std::uint64_t seq) {
  if (!dedup_enabled() || seq == 0) return;
  constexpr std::size_t kRetiredRing = 256;
  if (retired_seqs_.size() < kRetiredRing) {
    retired_seqs_.push_back(seq);
  } else {
    retired_seqs_[retired_next_] = seq;
    retired_next_ = (retired_next_ + 1) % kRetiredRing;
  }
}

bool RemoteEndpoint::seq_retired(std::uint64_t seq) const {
  return std::find(retired_seqs_.begin(), retired_seqs_.end(), seq) != retired_seqs_.end();
}

bool RemoteEndpoint::wait_for_workers(std::size_t n, std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lk(workers_mutex_);
  workers_cv_.wait_for(lk, timeout, [&] {
    return connected_.load(std::memory_order_acquire) >= n ||
           down_.load(std::memory_order_acquire);
  });
  return connected_.load(std::memory_order_acquire) >= n;
}

RemoteEndpoint::RoundTrip RemoteEndpoint::round_trip(std::vector<std::uint8_t> work,
                                                     const std::function<bool()>& cancelled,
                                                     std::uint64_t job_id) {
  using clock = std::chrono::steady_clock;
  if (down_.load(std::memory_order_acquire)) {
    return RoundTrip{false, {}, "endpoint is shut down"};
  }

  auto trip = std::make_shared<Trip>();
  trip->work = std::move(work);
  trip->job_id = job_id;
  const auto start = clock::now();
  trip->queued_at = start;
  const bool has_deadline = config_.round_trip_deadline.count() > 0;
  const auto deadline = start + config_.round_trip_deadline;

  loop_.post([this, trip] {
    if (down_.load(std::memory_order_acquire)) {
      fail_trip(trip, "endpoint is shut down");
      return;
    }
    pending_trips_.push_back(trip);
    try_dispatch();
  });

  // Wait in short slices so a killed proxy process (cancelled()) or the trip
  // deadline can break in; both abort paths run on the loop thread so every
  // completion is serialised there.
  std::unique_lock<std::mutex> lk(trip->m);
  while (!trip->done) {
    trip->cv.wait_for(lk, std::chrono::milliseconds(50), [&] { return trip->done; });
    if (trip->done) break;
    const bool want_cancel = cancelled && cancelled();
    const bool timed_out = has_deadline && clock::now() >= deadline;
    const bool went_down = down_.load(std::memory_order_acquire) && !loop_.running();
    if (!want_cancel && !timed_out && !went_down) continue;
    lk.unlock();
    if (went_down) {
      // Loop thread is gone; nobody else can touch this trip.
      fail_trip(trip, "endpoint is shut down");
    } else {
      const std::string reason = timed_out ? "round trip deadline exceeded" : "cancelled";
      // A timeout means the frame (or its Result) is lost or the worker is
      // stuck — the channel must die so the worker reconnects with a fresh
      // stream.  A cancellation is the master's own choice: when the dedup
      // window is on, the leases are simply retired and the channel lives;
      // the late Result is recognised by its retired seq and dropped.
      // Without dedup (strict depth-1, non-elastic) a live channel could
      // alias the stale Result onto a future lease, so keep the legacy kill.
      const bool gentle = !timed_out && dedup_enabled();
      loop_.post([this, trip, reason, gentle] {
        {
          std::lock_guard<std::mutex> inner(trip->m);
          if (trip->done) return;
        }
        if (!trip->carriers.empty()) {
          // Fail first so close_channel cannot re-lease it.
          fail_trip(trip, reason);
          const std::vector<std::uint64_t> carriers = trip->carriers;
          trip->carriers.clear();
          if (gentle) {
            for (const std::uint64_t id : carriers) {
              const auto it = channels_.find(id);
              if (it == channels_.end()) continue;
              auto& in_flight = it->second->in_flight;
              for (auto lease = in_flight.begin(); lease != in_flight.end();) {
                if (lease->second.trip == trip) {
                  retire_seq(lease->first);
                  lease = in_flight.erase(lease);
                } else {
                  ++lease;
                }
              }
            }
            try_dispatch();  // the freed wire slots can take queued work
          } else {
            for (const std::uint64_t id : carriers) close_channel(id, reason);
          }
        } else {
          const auto it = std::find(pending_trips_.begin(), pending_trips_.end(), trip);
          if (it != pending_trips_.end()) pending_trips_.erase(it);
          fail_trip(trip, reason);
        }
      });
    }
    lk.lock();
    trip->cv.wait(lk, [&] { return trip->done; });
    break;
  }

  RoundTrip result = std::move(trip->result);
  lk.unlock();
  if (result.ok) {
    counters_->bump(counters_->round_trips_ok, net_metrics().round_trips_ok);
    net_metrics().round_trip_seconds.observe(
        std::chrono::duration<double>(clock::now() - start).count());
  } else {
    counters_->bump(counters_->round_trips_failed, net_metrics().round_trips_failed);
  }
  return result;
}

void RemoteEndpoint::shutdown() {
  const bool first = !down_.exchange(true, std::memory_order_acq_rel);
  if (first && loop_.running()) {
    loop_.post([this] {
      for (auto& trip : pending_trips_) fail_trip(trip, "endpoint shut down");
      pending_trips_.clear();
      while (!channels_.empty()) close_channel(channels_.begin()->first, "endpoint shut down");
      if (listener_.valid()) {
        loop_.unwatch(listener_.fd());
        listener_.close();
      }
    });
  }
  loop_.stop();
  {
    std::lock_guard<std::mutex> lk(workers_mutex_);
  }
  workers_cv_.notify_all();
}

RemoteCounters RemoteEndpoint::counters() const {
  RemoteCounters c;
  c.accepts = counters_->accepts.load(std::memory_order_relaxed);
  c.reconnects = counters_->reconnects.load(std::memory_order_relaxed);
  c.disconnects = counters_->disconnects.load(std::memory_order_relaxed);
  c.frames_sent = counters_->frames_sent.load(std::memory_order_relaxed);
  c.frames_received = counters_->frames_received.load(std::memory_order_relaxed);
  c.bytes_sent = counters_->bytes_sent.load(std::memory_order_relaxed);
  c.bytes_received = counters_->bytes_received.load(std::memory_order_relaxed);
  c.crc_errors = counters_->crc_errors.load(std::memory_order_relaxed);
  c.round_trips_ok = counters_->round_trips_ok.load(std::memory_order_relaxed);
  c.round_trips_failed = counters_->round_trips_failed.load(std::memory_order_relaxed);
  c.faults_dropped = counters_->faults_dropped.load(std::memory_order_relaxed);
  c.faults_delayed = counters_->faults_delayed.load(std::memory_order_relaxed);
  c.faults_truncated = counters_->faults_truncated.load(std::memory_order_relaxed);
  c.telemetry_batches = counters_->telemetry_batches.load(std::memory_order_relaxed);
  c.telemetry_spans = counters_->telemetry_spans.load(std::memory_order_relaxed);
  c.telemetry_rejected = counters_->telemetry_rejected.load(std::memory_order_relaxed);
  c.dispatch_stall_micros = counters_->dispatch_stall_micros.load(std::memory_order_relaxed);
  c.fleet_joins = counters_->fleet_joins.load(std::memory_order_relaxed);
  c.fleet_leaves = counters_->fleet_leaves.load(std::memory_order_relaxed);
  c.fleet_crashes = counters_->fleet_crashes.load(std::memory_order_relaxed);
  c.fleet_steals = counters_->fleet_steals.load(std::memory_order_relaxed);
  c.fleet_releases = counters_->fleet_releases.load(std::memory_order_relaxed);
  c.fleet_duplicates = counters_->fleet_duplicates.load(std::memory_order_relaxed);
  return c;
}

void RemoteEndpoint::disrupt(bool graceful) {
  loop_.post([this, graceful] {
    if (down_.load(std::memory_order_acquire)) return;
    const auto load_of = [](const Channel& c) { return c.in_flight.size() + c.backlog.size(); };
    Channel* busiest = nullptr;
    for (auto& [id, ch] : channels_) {
      if (!ch->hello_seen) continue;
      if (busiest == nullptr || load_of(*ch) > load_of(*busiest)) busiest = ch.get();
    }
    if (busiest == nullptr) return;
    if (graceful) {
      counters_->bump(counters_->fleet_leaves, fleet_net_metrics().leaves);
    } else {
      counters_->bump(counters_->fleet_crashes, fleet_net_metrics().crashes);
    }
    close_channel(busiest->id, graceful ? "churn: worker left" : "churn: worker crashed");
  });
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

namespace {

// Worker-process metrics.  Bumped inside the telemetry capture window so
// they ship to the master as worker-tagged deltas (worker.pid<N>.net.*).
struct WorkerMetrics {
  obs::Counter& works_handled;
  obs::Counter& work_bytes;
  obs::Counter& result_bytes;
};

WorkerMetrics& worker_metrics() {
  static WorkerMetrics m{
      obs::registry().counter("net.worker.works_handled"),
      obs::registry().counter("net.worker.work_bytes"),
      obs::registry().counter("net.worker.result_bytes"),
  };
  return m;
}

/// Serves frames on one established connection.  Returns true for an orderly
/// Bye (exit the worker), false to reconnect.  `engaged` is set once the
/// master sends any well-formed frame — the only proof that the handshake
/// reached a live master rather than a bare TCP accept.
bool serve_connection(Socket& sock, const WorkHandler& handler, std::size_t max_payload,
                      bool& engaged) {
  FrameDecoder decoder(max_payload);
  std::uint8_t buf[64 * 1024];
  for (;;) {
    std::ptrdiff_t r;
    try {
      r = sock.recv_some(buf, sizeof buf);
    } catch (const SocketError&) {
      return false;
    }
    if (r <= 0) return false;  // EOF (blocking socket never yields -1 here)
    decoder.feed(buf, static_cast<std::size_t>(r));
    try {
      while (auto frame = decoder.next()) {
        engaged = true;
        switch (frame->header.type) {
          case FrameType::Work: {
            std::vector<std::uint8_t> out;
            try {
              // A trace-context prefix turns this trip into a telemetry
              // capture: everything the handler adds to the process-global
              // registry or tracer between begin() and end() ships back
              // piggybacked on the Result.
              const obs::SplitWork split = obs::split_context(frame->payload);
              if (split.context) {
                // The master asked for telemetry: make sure handler spans are
                // recorded.  Each session drains the tracer, so a serving
                // worker never accumulates spans across trips.
                if (!obs::tracer().enabled()) obs::enable_wall_clock(obs::tracer());
                obs::WorkerTelemetrySession session;
                session.begin();
                worker_metrics().works_handled.add();
                worker_metrics().work_bytes.add(split.work.size());
                std::vector<std::uint8_t> reply = handler(split.work);
                worker_metrics().result_bytes.add(reply.size());
                obs::TelemetryBatch batch = session.end(*split.context);
                batch.worker_pid = static_cast<std::uint64_t>(::getpid());
                out = encode_frame(FrameType::Result, frame->header.seq,
                                   obs::wrap_result(encode_telemetry_batch(batch), reply));
              } else {
                std::vector<std::uint8_t> reply = handler(split.work);
                out = encode_frame(FrameType::Result, frame->header.seq, reply);
              }
            } catch (const std::exception& e) {
              const std::string what = e.what();
              out = encode_frame(FrameType::Error, frame->header.seq,
                                 reinterpret_cast<const std::uint8_t*>(what.data()),
                                 what.size());
            }
            if (!send_all(sock, out.data(), out.size())) return false;
            break;
          }
          case FrameType::Bye:
            return true;
          default:
            return false;  // protocol violation: drop and reconnect
        }
      }
    } catch (const FrameError&) {
      return false;  // corrupt / truncated stream
    }
  }
}

}  // namespace

int run_worker_loop(const std::string& host, std::uint16_t port, const WorkHandler& handler,
                    WorkerLoopOptions options) {
  std::uint64_t attempt = 0;
  int consecutive_failures = 0;
  for (;;) {
    Socket sock = connect_tcp(host, port, options.connect_timeout);
    if (!sock.valid()) {
      if (++consecutive_failures >= options.max_connect_failures) return 0;  // master gone
      std::this_thread::sleep_for(options.reconnect_backoff);
      continue;
    }

    std::uint8_t hello[24];
    put_u64(hello, static_cast<std::uint64_t>(::getpid()));
    put_u64(hello + 8, attempt);
    // Wall-clock sample for the master's coarse clock-offset seed (v2).
    const double sample = obs::wall_clock_seconds();
    std::uint64_t sample_bits = 0;
    std::memcpy(&sample_bits, &sample, sizeof sample_bits);
    put_u64(hello + 16, sample_bits);
    ++attempt;
    const std::vector<std::uint8_t> frame = encode_frame(FrameType::Hello, 0, hello, sizeof hello);
    if (!send_all(sock, frame.data(), frame.size())) {
      if (++consecutive_failures >= options.max_connect_failures) return 0;
      std::this_thread::sleep_for(options.reconnect_backoff);
      continue;
    }

    // A bare TCP accept — even one that swallows the Hello bytes — proves
    // nothing about the master: a listener that accepts and then drops the
    // connection must burn the failure budget and back off, not hot-loop.
    // The budget resets only once the master *answers* the handshake with a
    // well-formed frame.
    bool engaged = false;
    const bool orderly = serve_connection(sock, handler, options.max_payload, engaged);
    if (orderly) return 0;
    if (engaged) {
      consecutive_failures = 0;
    } else if (++consecutive_failures >= options.max_connect_failures) {
      return 0;  // master gone (or never really there)
    }
    std::this_thread::sleep_for(options.reconnect_backoff);
  }
}

std::vector<int> fork_worker_processes(std::size_t n, const std::function<int()>& child_main) {
  std::vector<int> pids;
  pids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const pid_t pid = ::fork();
    MG_REQUIRE(pid >= 0);
    if (pid == 0) {
      int rc = 1;
      try {
        rc = child_main();
      } catch (...) {
        rc = 1;
      }
      // _exit, not exit: the child shares the parent's atexit handlers, gtest
      // state, and (under ASan) leak-check hooks — none of which should run
      // in a forked worker.
      ::_exit(rc);
    }
    pids.push_back(static_cast<int>(pid));
  }
  return pids;
}

void drive_churn(RemoteEndpoint& endpoint, const fleet::ChurnPlan& plan,
                 const std::atomic<bool>& stop) {
  using clock = std::chrono::steady_clock;
  const auto start = clock::now();
  for (const auto& event : plan.events()) {
    // Joins are the workers' business (late connects); the master only
    // takes machines away.
    if (event.kind == fleet::ChurnEventKind::Join) continue;
    const auto due = start + std::chrono::duration_cast<clock::duration>(
                                 std::chrono::duration<double>(event.at_seconds));
    while (clock::now() < due) {
      if (stop.load(std::memory_order_acquire)) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (stop.load(std::memory_order_acquire)) return;
    endpoint.disrupt(event.kind == fleet::ChurnEventKind::Leave);
  }
}

int wait_worker_processes(const std::vector<int>& pids) {
  int worst = 0;
  for (const int pid : pids) {
    int status = 0;
    if (::waitpid(pid, &status, 0) < 0) {
      worst = std::max(worst, 1);
      continue;
    }
    if (WIFEXITED(status)) {
      worst = std::max(worst, WEXITSTATUS(status));
    } else if (WIFSIGNALED(status)) {
      worst = std::max(worst, 128 + WTERMSIG(status));
    }
  }
  return worst;
}

}  // namespace mg::net
