#include "net/frame.hpp"

#include <cstring>

#include "net/crc32.hpp"

namespace mg::net {

namespace {

void put_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

void put_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::Hello: return "hello";
    case FrameType::Work: return "work";
    case FrameType::Result: return "result";
    case FrameType::Error: return "error";
    case FrameType::Bye: return "bye";
    case FrameType::SubmitJob: return "submit-job";
    case FrameType::JobAccepted: return "job-accepted";
    case FrameType::JobStatus: return "job-status";
    case FrameType::JobResult: return "job-result";
    case FrameType::CancelJob: return "cancel-job";
    case FrameType::Ping: return "ping";
    case FrameType::Pong: return "pong";
    case FrameType::GetStats: return "get-stats";
    case FrameType::StatsReport: return "stats-report";
  }
  return "?";
}

std::vector<std::uint8_t> encode_frame_header(FrameType type, std::uint64_t seq,
                                              const std::uint8_t* payload,
                                              std::size_t payload_size) {
  std::vector<std::uint8_t> out(FrameHeader::kWireSize);
  std::uint8_t* h = out.data();
  put_u32(h + 0, FrameHeader::kMagic);
  put_u16(h + 4, FrameHeader::kVersion);
  put_u16(h + 6, static_cast<std::uint16_t>(type));
  put_u64(h + 8, seq);
  put_u32(h + 16, static_cast<std::uint32_t>(payload_size));
  put_u32(h + 20, crc32(payload, payload_size));
  put_u32(h + 24, crc32(h, 24));
  return out;
}

std::vector<std::uint8_t> encode_frame(FrameType type, std::uint64_t seq,
                                       const std::uint8_t* payload, std::size_t payload_size) {
  std::vector<std::uint8_t> out = encode_frame_header(type, seq, payload, payload_size);
  out.resize(FrameHeader::kWireSize + payload_size);
  if (payload_size > 0) std::memcpy(out.data() + FrameHeader::kWireSize, payload, payload_size);
  return out;
}

std::vector<std::uint8_t> encode_frame(FrameType type, std::uint64_t seq,
                                       const std::vector<std::uint8_t>& payload) {
  return encode_frame(type, seq, payload.data(), payload.size());
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t n) {
  // Compact lazily: drop the consumed prefix once it dominates the buffer,
  // so steady-state reassembly is amortised O(bytes).
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + n);
}

std::optional<Frame> FrameDecoder::next() {
  const std::size_t avail = buffer_.size() - consumed_;
  if (avail < FrameHeader::kWireSize) return std::nullopt;
  const std::uint8_t* h = buffer_.data() + consumed_;

  if (get_u32(h + 0) != FrameHeader::kMagic) throw FrameError("frame: bad magic");
  if (get_u32(h + 24) != crc32(h, 24)) throw FrameError("frame: header CRC mismatch");
  const std::uint16_t version = get_u16(h + 4);
  if (version != FrameHeader::kVersion) {
    throw FrameError("frame: unsupported protocol version " + std::to_string(version));
  }
  const std::uint16_t raw_type = get_u16(h + 6);
  if (raw_type < static_cast<std::uint16_t>(FrameType::Hello) ||
      raw_type > static_cast<std::uint16_t>(FrameType::StatsReport)) {
    throw FrameError("frame: unknown type " + std::to_string(raw_type));
  }
  const std::uint32_t payload_size = get_u32(h + 16);
  if (payload_size > max_payload_) {
    throw FrameError("frame: payload of " + std::to_string(payload_size) +
                     " bytes exceeds the cap");
  }
  if (avail < FrameHeader::kWireSize + payload_size) return std::nullopt;

  Frame frame;
  frame.header.version = version;
  frame.header.type = static_cast<FrameType>(raw_type);
  frame.header.seq = get_u64(h + 8);
  frame.header.payload_size = payload_size;
  frame.header.payload_crc = get_u32(h + 20);
  const std::uint8_t* body = h + FrameHeader::kWireSize;
  if (crc32(body, payload_size) != frame.header.payload_crc) {
    throw FrameError("frame: payload CRC mismatch");
  }
  frame.payload.assign(body, body + payload_size);
  consumed_ += FrameHeader::kWireSize + payload_size;
  return frame;
}

}  // namespace mg::net
