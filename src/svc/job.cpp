#include "svc/job.hpp"

#include "support/bytes.hpp"

namespace mg::svc {

using support::ByteReader;
using support::ByteWriter;
using support::DecodeError;

const char* to_string(JobState s) {
  switch (s) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Failed: return "failed";
    case JobState::Cancelled: return "cancelled";
  }
  return "?";
}

bool is_terminal(JobState s) {
  return s == JobState::Done || s == JobState::Failed || s == JobState::Cancelled;
}

namespace {

JobState read_state(ByteReader& r) {
  const std::int32_t v = r.read_i32();
  if (v < 0 || v > static_cast<std::int32_t>(JobState::Cancelled)) {
    throw DecodeError("svc: job state out of range");
  }
  return static_cast<JobState>(v);
}

void check_exhausted(const ByteReader& r, const char* what) {
  if (!r.exhausted()) throw DecodeError(std::string(what) + ": trailing bytes");
}

}  // namespace

std::vector<std::uint8_t> encode_job_spec(const JobSpec& spec) {
  ByteWriter w;
  w.write_i32(spec.root);
  w.write_i32(spec.level);
  w.write_f64(spec.le_tol);
  w.write_i32(spec.priority);
  w.write_f64(spec.weight);
  w.write_string(spec.fault_spec);
  w.write_string(spec.tag);
  w.write_i32(spec.kernel_policy);
  w.write_i32(static_cast<std::int32_t>(spec.inner_threads));
  w.write_i32(static_cast<std::int32_t>(spec.pipeline_depth));
  return w.take();
}

JobSpec decode_job_spec(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  JobSpec spec;
  spec.root = r.read_i32();
  spec.level = r.read_i32();
  spec.le_tol = r.read_f64();
  spec.priority = r.read_i32();
  spec.weight = r.read_f64();
  spec.fault_spec = r.read_string();
  spec.tag = r.read_string();
  spec.kernel_policy = r.read_i32();
  if (spec.kernel_policy < 0 || spec.kernel_policy > 1) {
    throw DecodeError("decode_job_spec: kernel policy out of range");
  }
  const std::int32_t inner = r.read_i32();
  if (inner < 1 || inner > 1024) {
    throw DecodeError("decode_job_spec: inner_threads out of range");
  }
  spec.inner_threads = static_cast<std::uint32_t>(inner);
  const std::int32_t pipeline = r.read_i32();
  if (pipeline < 0 || pipeline > 64) {
    throw DecodeError("decode_job_spec: pipeline_depth out of range");
  }
  spec.pipeline_depth = static_cast<std::uint32_t>(pipeline);
  check_exhausted(r, "decode_job_spec");
  return spec;
}

std::vector<std::uint8_t> encode_job_ticket(const JobTicket& ticket) {
  ByteWriter w;
  w.write_i32(ticket.accepted ? 1 : 0);
  w.write_u64(ticket.job_id);
  w.write_string(ticket.reason);
  return w.take();
}

JobTicket decode_job_ticket(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  JobTicket ticket;
  ticket.accepted = r.read_i32() != 0;
  ticket.job_id = r.read_u64();
  ticket.reason = r.read_string();
  check_exhausted(r, "decode_job_ticket");
  return ticket;
}

std::vector<std::uint8_t> encode_job_status(const JobStatusInfo& info) {
  ByteWriter w;
  w.write_u64(info.job_id);
  w.write_i32(info.known ? 1 : 0);
  w.write_i32(static_cast<std::int32_t>(info.state));
  w.write_i32(info.priority);
  w.write_f64(info.weight);
  w.write_u64(info.terms_total);
  w.write_u64(info.terms_done);
  w.write_u64(info.retries);
  w.write_f64(info.queue_wait_seconds);
  w.write_f64(info.run_seconds);
  w.write_string(info.tag);
  w.write_string(info.error);
  return w.take();
}

JobStatusInfo decode_job_status(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  JobStatusInfo info;
  info.job_id = r.read_u64();
  info.known = r.read_i32() != 0;
  info.state = read_state(r);
  info.priority = r.read_i32();
  info.weight = r.read_f64();
  info.terms_total = r.read_u64();
  info.terms_done = r.read_u64();
  info.retries = r.read_u64();
  info.queue_wait_seconds = r.read_f64();
  info.run_seconds = r.read_f64();
  info.tag = r.read_string();
  info.error = r.read_string();
  check_exhausted(r, "decode_job_status");
  return info;
}

std::vector<std::uint8_t> encode_job_result(const JobResultData& result) {
  ByteWriter w;
  w.write_u64(result.job_id);
  w.write_i32(result.known ? 1 : 0);
  w.write_i32(result.ready ? 1 : 0);
  w.write_i32(static_cast<std::int32_t>(result.state));
  w.write_i32(result.root);
  w.write_i32(result.level);
  w.write_doubles(result.combined_nodes);
  w.write_string(result.report_json);
  w.write_string(result.error);
  return w.take();
}

JobResultData decode_job_result(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  JobResultData result;
  result.job_id = r.read_u64();
  result.known = r.read_i32() != 0;
  result.ready = r.read_i32() != 0;
  result.state = read_state(r);
  result.root = r.read_i32();
  result.level = r.read_i32();
  result.combined_nodes = r.read_doubles();
  result.report_json = r.read_string();
  result.error = r.read_string();
  check_exhausted(r, "decode_job_result");
  return result;
}

std::vector<std::uint8_t> encode_job_ref(std::uint64_t job_id) {
  ByteWriter w;
  w.write_u64(job_id);
  return w.take();
}

std::uint64_t decode_job_ref(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  const std::uint64_t id = r.read_u64();
  check_exhausted(r, "decode_job_ref");
  return id;
}

}  // namespace mg::svc
