// JobServer — the network face of the solve service.
//
// Accepts client connections on the same CRC-framed codec the worker
// transport uses (net/frame.hpp) and serves the job API frames: SubmitJob /
// JobStatus / JobResult / CancelJob, plus Ping keepalives.  One session
// thread per connection — clients are few and their requests are small, so
// blocking I/O per session is the honest state machine (the compute heavy
// lifting happens on the engine's lanes, never on a session thread).
//
// Protocol rules a session enforces:
//  * every request frame gets exactly one reply frame with the same seq;
//  * a FrameError (bad magic/CRC) or an undecodable payload is connection-
//    fatal — framing cannot resynchronise, so the session closes;
//  * a connection idle longer than `idle_timeout` is closed by the server
//    (any frame, Ping included, refreshes the clock);
//  * Bye closes the session after an acknowledging Bye reply.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "svc/engine.hpp"

namespace mg::svc {

struct JobServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read back via port()
  EngineConfig engine;
  /// Close connections with no inbound frame for this long; 0 disables.
  std::chrono::milliseconds idle_timeout{0};
  std::size_t max_payload = net::FrameDecoder::kDefaultMaxPayload;
};

struct JobServerCounters {
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_closed = 0;
  std::uint64_t idle_closed = 0;      ///< closed by the idle timeout
  std::uint64_t protocol_errors = 0;  ///< connection-fatal frames/payloads
  std::uint64_t frames_received = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t pings = 0;
};

struct ServiceStats;

class JobServer {
 public:
  /// Binds and starts serving immediately.  Throws net::SocketError when the
  /// address cannot be bound.
  explicit JobServer(JobServerConfig config = {});
  ~JobServer();

  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  std::uint16_t port() const { return port_; }

  /// The multi-tenant engine behind the wire API (for in-process tests and
  /// for embedding the service without a socket in front).
  SolveEngine& engine() { return engine_; }

  JobServerCounters counters() const;

  /// Point-in-time service view (also served over the wire as GetStats ->
  /// StatsReport).  Safe to call concurrently with everything else.
  ServiceStats stats() const;

  /// Stops accepting, closes every session, shuts the engine down.
  /// Idempotent; also run by the destructor.
  void shutdown();

 private:
  struct Session;

  void accept_main();
  void session_main(std::shared_ptr<Session> session);
  /// Serves one request frame; false = close the session (Bye or error).
  bool serve_frame(Session& session, const net::Frame& frame);
  bool send_frame(Session& session, net::FrameType type, std::uint64_t seq,
                  const std::vector<std::uint8_t>& payload);

  JobServerConfig config_;
  const std::chrono::steady_clock::time_point started_at_ =
      std::chrono::steady_clock::now();
  SolveEngine engine_;
  net::TcpListener listener_;
  std::uint16_t port_ = 0;

  std::atomic<bool> down_{false};
  std::thread accept_thread_;

  mutable std::mutex sessions_mutex_;
  std::map<std::uint64_t, std::shared_ptr<Session>> sessions_;
  std::uint64_t next_session_id_ = 1;

  mutable std::mutex counters_mutex_;
  JobServerCounters counters_;
};

}  // namespace mg::svc
