#include "svc/client.hpp"

#include <poll.h>

#include <algorithm>
#include <thread>
#include <utility>
#include <vector>

#include "svc/stats.hpp"

namespace mg::svc {

using steady = std::chrono::steady_clock;

JobClient::JobClient(const std::string& host, std::uint16_t port, JobClientConfig config)
    : config_(config), decoder_(config.max_payload) {
  socket_ = net::connect_tcp(host, port, config_.connect_timeout);
  if (!socket_.valid()) {
    throw ClientError("svc client: cannot connect to " + host + ":" + std::to_string(port));
  }
  socket_.set_nodelay(true);
}

JobClient::~JobClient() {
  try {
    close();
  } catch (...) {
    // Destructor close is best-effort; the server handles an abrupt EOF.
  }
}

void JobClient::close() {
  if (!socket_.valid()) return;
  const std::vector<std::uint8_t> bye = net::encode_frame(net::FrameType::Bye, next_seq_++, {});
  (void)net::send_all(socket_, bye.data(), bye.size());
  socket_.close();
}

net::Frame JobClient::request(net::FrameType type, const std::vector<std::uint8_t>& payload,
                              net::FrameType expect_type) {
  if (!socket_.valid()) throw ClientError("svc client: connection closed");
  const std::uint64_t seq = next_seq_++;
  const std::vector<std::uint8_t> bytes = net::encode_frame(type, seq, payload);
  if (!net::send_all(socket_, bytes.data(), bytes.size())) {
    socket_.close();
    throw ClientError("svc client: server went away on send");
  }

  const bool bounded = config_.request_timeout.count() > 0;
  const auto deadline = steady::now() + config_.request_timeout;
  std::vector<std::uint8_t> buf(64 * 1024);
  for (;;) {
    if (auto frame = decoder_.next()) {
      if (frame->header.seq != seq || frame->header.type != expect_type) {
        socket_.close();
        throw ClientError(std::string("svc client: unexpected reply frame ") +
                          net::to_string(frame->header.type));
      }
      return std::move(*frame);
    }
    int wait_ms = 200;
    if (bounded) {
      const auto left =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - steady::now());
      if (left.count() <= 0) {
        socket_.close();
        throw ClientError("svc client: request timed out");
      }
      wait_ms = static_cast<int>(std::min<std::int64_t>(left.count(), 200));
    }
    pollfd pfd{socket_.fd(), POLLIN, 0};
    const int rc = ::poll(&pfd, 1, wait_ms);
    if (rc < 0) {
      socket_.close();
      throw ClientError("svc client: poll failed");
    }
    if (rc == 0) continue;
    const std::ptrdiff_t n = socket_.recv_some(buf.data(), buf.size());
    if (n == 0) {
      socket_.close();
      throw ClientError("svc client: server closed the connection");
    }
    if (n < 0) continue;
    try {
      decoder_.feed(buf.data(), static_cast<std::size_t>(n));
    } catch (const net::FrameError& e) {
      socket_.close();
      throw ClientError(std::string("svc client: corrupt stream: ") + e.what());
    }
  }
}

JobTicket JobClient::submit(const JobSpec& spec) {
  return decode_job_ticket(
      request(net::FrameType::SubmitJob, encode_job_spec(spec), net::FrameType::JobAccepted)
          .payload);
}

JobStatusInfo JobClient::status(std::uint64_t job_id) {
  return decode_job_status(
      request(net::FrameType::JobStatus, encode_job_ref(job_id), net::FrameType::JobStatus)
          .payload);
}

JobResultData JobClient::result(std::uint64_t job_id) {
  return decode_job_result(
      request(net::FrameType::JobResult, encode_job_ref(job_id), net::FrameType::JobResult)
          .payload);
}

JobStatusInfo JobClient::cancel(std::uint64_t job_id) {
  return decode_job_status(
      request(net::FrameType::CancelJob, encode_job_ref(job_id), net::FrameType::JobStatus)
          .payload);
}

std::chrono::microseconds JobClient::ping() {
  const std::vector<std::uint8_t> echo = {0x6d, 0x67, 0x70, 0x69};  // "mgpi"
  const auto start = steady::now();
  const net::Frame pong = request(net::FrameType::Ping, echo, net::FrameType::Pong);
  if (pong.payload != echo) {
    socket_.close();
    throw ClientError("svc client: Pong payload mismatch");
  }
  return std::chrono::duration_cast<std::chrono::microseconds>(steady::now() - start);
}

ServiceStats JobClient::stats() {
  return decode_service_stats(
      request(net::FrameType::GetStats, {}, net::FrameType::StatsReport).payload);
}

JobStatusInfo JobClient::wait_terminal(std::uint64_t job_id, std::chrono::milliseconds timeout,
                                       std::chrono::milliseconds poll_interval) {
  const auto deadline = steady::now() + timeout;
  for (;;) {
    const JobStatusInfo info = status(job_id);
    if (!info.known) throw ClientError("svc client: job vanished while waiting");
    if (is_terminal(info.state)) return info;
    if (steady::now() >= deadline) {
      throw ClientError("svc client: job did not finish before the deadline");
    }
    std::this_thread::sleep_for(poll_interval);
  }
}

}  // namespace mg::svc
