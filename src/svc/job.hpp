// Solve-service job model and its wire codec.
//
// A job is one complete sparse-grid solve (the paper's argv triple plus
// multi-tenant knobs: priority, fair-share weight, an optional job-scoped
// fault spec).  These structs are the payloads of the SubmitJob /
// JobAccepted / JobStatus / JobResult / CancelJob frames (net/frame.hpp);
// the codec uses the same ByteWriter/ByteReader layout as core/marshal so a
// corrupt payload is rejected with DecodeError, never half-trusted.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mg::svc {

/// Lifecycle: Queued -> Running -> one of the three terminal states.  A
/// cancel of a queued job skips Running entirely.
enum class JobState : std::uint8_t {
  Queued = 0,     ///< admitted, waiting for a running slot
  Running = 1,    ///< tasks being dispatched over the shared fleet
  Done = 2,       ///< combined result available
  Failed = 3,     ///< a task failed irrecoverably; see error
  Cancelled = 4,  ///< cancelled before completion; partial work discarded
};

const char* to_string(JobState s);
bool is_terminal(JobState s);

/// What a client submits: the solve parameters plus tenancy knobs.
struct JobSpec {
  int root = 2;
  int level = 3;
  double le_tol = 1e-3;
  /// Strict priority class: higher runs first.  Within one class the
  /// scheduler is weighted-fair.
  std::int32_t priority = 0;
  /// Fair-share weight within a priority class (> 0).
  double weight = 1.0;
  /// Optional job-scoped fault spec (fault::parse_fault_spec syntax): task
  /// crash/hang/corrupt injection seeded per job, invisible to other jobs.
  std::string fault_spec;
  /// Free-form client label, echoed in status and the per-job report.
  std::string tag;
  /// Kernel policy for the job's subsolves (0 = scalar seed path, 1 = SIMD
  /// tiled; linalg::KernelPolicy values).  Bit-identical either way.
  std::int32_t kernel_policy = 0;
  /// Inner worker-team size per subsolve (within-grid parallelism); 1 = no
  /// team.  Bit-identical at any size (DESIGN.md §14).
  std::uint32_t inner_threads = 1;
  /// Per-job pipeline window: how many of this job's tasks may be dispatched
  /// to the shared fleet concurrently (0 = unlimited, the default).  Caps a
  /// tenant's instantaneous fleet footprint independently of its fair-share
  /// weight; distinct from the transport's per-channel window, which the
  /// server operator sets with --pipeline.  Bit-identical at any value.
  std::uint32_t pipeline_depth = 0;
};

/// The server's reply to SubmitJob: admission verdict.  A rejection carries
/// the reason (queue full, bad spec) — explicit backpressure, not a hang.
struct JobTicket {
  bool accepted = false;
  std::uint64_t job_id = 0;
  std::string reason;  ///< set when rejected
};

/// Point-in-time view of one job, the JobStatus reply.
struct JobStatusInfo {
  std::uint64_t job_id = 0;
  bool known = false;  ///< false: the server has no such job id
  JobState state = JobState::Queued;
  std::int32_t priority = 0;
  double weight = 1.0;
  std::uint64_t terms_total = 0;
  std::uint64_t terms_done = 0;
  std::uint64_t retries = 0;         ///< task re-dispatches (faults, transport)
  double queue_wait_seconds = 0.0;   ///< admission -> first dispatch
  double run_seconds = 0.0;          ///< first dispatch -> now / terminal
  std::string tag;
  std::string error;  ///< set for Failed
};

/// The JobResult reply.  `ready` is false until the job is terminal; for a
/// Done job the combined field travels as raw nodes (bit-exact — the client
/// can diff against a standalone run) plus the self-contained per-job report
/// JSON (config echo, per-job metrics, fault ledger).
struct JobResultData {
  std::uint64_t job_id = 0;
  bool known = false;
  bool ready = false;
  JobState state = JobState::Queued;
  int root = 0;
  int level = 0;
  std::vector<double> combined_nodes;  ///< finest-grid nodal data (Done only)
  std::string report_json;             ///< per-job run report (terminal states)
  std::string error;
};

// ---- wire codec (payloads of the svc frames) ----

std::vector<std::uint8_t> encode_job_spec(const JobSpec& spec);
JobSpec decode_job_spec(const std::vector<std::uint8_t>& bytes);

std::vector<std::uint8_t> encode_job_ticket(const JobTicket& ticket);
JobTicket decode_job_ticket(const std::vector<std::uint8_t>& bytes);

std::vector<std::uint8_t> encode_job_status(const JobStatusInfo& info);
JobStatusInfo decode_job_status(const std::vector<std::uint8_t>& bytes);

std::vector<std::uint8_t> encode_job_result(const JobResultData& result);
JobResultData decode_job_result(const std::vector<std::uint8_t>& bytes);

/// JobStatus / JobResult / CancelJob requests carry just the job id.
std::vector<std::uint8_t> encode_job_ref(std::uint64_t job_id);
std::uint64_t decode_job_ref(const std::vector<std::uint8_t>& bytes);

}  // namespace mg::svc
