// Admission control and the per-job priority + weighted-fair task scheduler
// that multiplexes one shared worker fleet across concurrent jobs.
//
// Admission is two bounded stages: at most `max_running` jobs actively
// dispatch tasks, at most `max_queued` more wait for a running slot, and
// anything beyond that is rejected at submit time (explicit backpressure —
// the client gets a Rejected ticket, never an unbounded queue).
//
// Among running jobs the scheduler is strict-priority first, weighted-fair
// within a priority class: each job accumulates virtual service
// (task cost / weight, cost = subsolve_payload_bytes, the same weight notion
// as LPT dispatch), and next_task() picks the runnable job with the highest
// priority, then the smallest virtual service, then the smallest id — a
// deterministic start-time-fair queue, not a lottery.  Fairness reorders
// *scheduling* only; results are keyed by term index downstream, so numerics
// never see it.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

namespace mg::svc {

struct AdmissionConfig {
  std::size_t max_running = 4;  ///< jobs dispatching tasks concurrently
  std::size_t max_queued = 16;  ///< jobs waiting for a running slot
};

/// One schedulable work unit: term `term_index` of job `job`.
struct TaskRef {
  std::uint64_t job = 0;
  std::size_t term_index = 0;
  double cost = 1.0;  ///< service charged against the job's fair share
};

struct SchedulerCounters {
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t activated = 0;   ///< queued -> running promotions
  std::uint64_t tasks_picked = 0;
  std::uint64_t tasks_dropped = 0;  ///< pending tasks discarded by cancel
};

class FairScheduler {
 public:
  explicit FairScheduler(AdmissionConfig config = {});

  /// Admits job `id` with its pending task list, or rejects it (returns
  /// false, sets `reason`) when both admission stages are full.  Admitted
  /// jobs start dispatching immediately if a running slot is free.
  /// `pipeline_limit` caps how many of the job's tasks may be in flight at
  /// once (0 = unlimited): pick_job skips a capped job until a lane calls
  /// task_finished for it.
  bool admit(std::uint64_t id, std::int32_t priority, double weight, std::vector<TaskRef> tasks,
             std::string& reason, std::uint32_t pipeline_limit = 0);

  /// True while the job holds a running slot (dispatching or in flight).
  bool is_active(std::uint64_t id) const;

  /// Blocks until a task is runnable, then charges it to its job's fair
  /// share and returns it.  Returns nullopt only after stop().
  std::optional<TaskRef> next_task();

  /// A lane finished executing a task of `id` (success or not).  Pairs 1:1
  /// with next_task(); release_slot must still follow when the job ends.
  void task_finished(std::uint64_t id);

  /// Drops every not-yet-picked task of `id`; returns how many were pending.
  /// The job keeps its slot until release_slot (in-flight tasks drain first).
  std::size_t drop_pending(std::uint64_t id);

  /// The job is terminal: frees its running slot (promoting the next queued
  /// job) or removes it from the wait queue.  Idempotent.
  void release_slot(std::uint64_t id);

  /// Asks `n` lanes to retire: the next `n` next_task() calls — parked
  /// waiters included — return nullopt instead of a task, ending their lane
  /// loop.  The engine's elastic resize uses this to shrink the fleet;
  /// pending tasks are untouched (the surviving lanes pick them up).
  void retire_lanes(std::size_t n);

  /// Wakes every next_task() waiter with nullopt; further admits fail.
  void stop();

  std::size_t running_jobs() const;
  std::size_t queued_jobs() const;
  SchedulerCounters counters() const;

 private:
  struct Job {
    std::int32_t priority = 0;
    double weight = 1.0;
    double virtual_service = 0.0;
    std::deque<TaskRef> pending;
    std::size_t in_flight = 0;
    std::uint32_t pipeline_limit = 0;  ///< max in_flight; 0 = unlimited
    bool running = false;  ///< holds a running slot (vs waiting)
  };

  // All private methods assume mutex_ held.
  void promote_waiters();
  Job* pick_job();

  AdmissionConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable task_ready_;
  std::map<std::uint64_t, Job> jobs_;
  std::deque<std::uint64_t> wait_queue_;  ///< admitted, no running slot yet
  std::size_t running_ = 0;
  std::size_t retire_tokens_ = 0;  ///< next_task() calls that must return nullopt
  bool stopped_ = false;
  SchedulerCounters counters_;
};

}  // namespace mg::svc
