#include "svc/stats.hpp"

#include <cinttypes>
#include <cstdio>

#include "obs/json_writer.hpp"
#include "support/bytes.hpp"

namespace mg::svc {

using support::ByteReader;
using support::ByteWriter;
using support::DecodeError;

namespace {

void write_histogram(ByteWriter& w, const obs::HistogramSnapshot& h) {
  w.write_doubles(h.upper_bounds);
  w.write_u64(h.buckets.size());
  for (const std::uint64_t b : h.buckets) w.write_u64(b);
  w.write_u64(h.count);
  w.write_f64(h.sum);
}

obs::HistogramSnapshot read_histogram(ByteReader& r, std::size_t wire_size) {
  obs::HistogramSnapshot h;
  h.upper_bounds = r.read_doubles();
  const std::uint64_t n = r.read_u64();
  if (n > wire_size) throw DecodeError("svc stats: histogram bucket count");
  h.buckets.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) h.buckets.push_back(r.read_u64());
  h.count = r.read_u64();
  h.sum = r.read_f64();
  return h;
}

JobState read_state(ByteReader& r) {
  const std::int32_t v = r.read_i32();
  if (v < 0 || v > static_cast<std::int32_t>(JobState::Cancelled)) {
    throw DecodeError("svc stats: job state out of range");
  }
  return static_cast<JobState>(v);
}

// Prometheus exposition helpers: metric names use underscores, label values
// need quote/backslash escaping, and floats must never localise.
std::string prom_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string prom_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

void prom_counter(std::string& out, const char* name, const char* help, std::uint64_t v) {
  char buf[256];
  std::snprintf(buf, sizeof buf, "# HELP %s %s\n# TYPE %s counter\n%s %" PRIu64 "\n",
                name, help, name, name, v);
  out += buf;
}

void prom_gauge(std::string& out, const char* name, const char* help, double v) {
  out += "# HELP ";
  out += name;
  out += " ";
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += " gauge\n";
  out += name;
  out += " ";
  out += prom_number(v);
  out += "\n";
}

void prom_histogram(std::string& out, const char* name, const char* help,
                    const obs::HistogramSnapshot& h) {
  out += "# HELP ";
  out += name;
  out += " ";
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += " histogram\n";
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    cumulative += h.buckets[i];
    const std::string le =
        i < h.upper_bounds.size() ? prom_number(h.upper_bounds[i]) : std::string("+Inf");
    out += name;
    out += "_bucket{le=\"";
    out += le;
    out += "\"} ";
    out += std::to_string(cumulative);
    out += "\n";
  }
  out += name;
  out += "_sum ";
  out += prom_number(h.sum);
  out += "\n";
  out += name;
  out += "_count ";
  out += std::to_string(h.count);
  out += "\n";
}

void histogram_json(obs::JsonWriter& w, const obs::HistogramSnapshot& h) {
  w.begin_object();
  w.kv("count", h.count).kv("sum", h.sum);
  w.key("buckets").begin_array();
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    w.begin_object();
    if (i < h.upper_bounds.size()) {
      w.kv("le", h.upper_bounds[i]);
    } else {
      w.kv("le", "+Inf");
    }
    w.kv("n", h.buckets[i]);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

std::vector<std::uint8_t> encode_service_stats(const ServiceStats& s) {
  ByteWriter w;
  w.write_f64(s.uptime_seconds);
  w.write_u64(s.lanes);
  w.write_u64(s.busy_lanes);
  w.write_u64(s.running_jobs);
  w.write_u64(s.queued_jobs);
  w.write_u64(s.terminal_jobs);

  w.write_u64(s.scheduler.admitted);
  w.write_u64(s.scheduler.rejected);
  w.write_u64(s.scheduler.activated);
  w.write_u64(s.scheduler.tasks_picked);
  w.write_u64(s.scheduler.tasks_dropped);

  w.write_u64(s.engine.submitted);
  w.write_u64(s.engine.accepted);
  w.write_u64(s.engine.rejected);
  w.write_u64(s.engine.completed);
  w.write_u64(s.engine.failed);
  w.write_u64(s.engine.cancelled);
  w.write_u64(s.engine.tasks_executed);
  w.write_u64(s.engine.task_retries);
  w.write_u64(s.engine.faults_injected);
  w.write_u64(s.engine.remote_fallbacks);

  w.write_u64(s.server.sessions_opened);
  w.write_u64(s.server.sessions_closed);
  w.write_u64(s.server.idle_closed);
  w.write_u64(s.server.protocol_errors);
  w.write_u64(s.server.frames_received);
  w.write_u64(s.server.frames_sent);
  w.write_u64(s.server.pings);

  w.write_u64(s.fleet.joins);
  w.write_u64(s.fleet.leaves);
  w.write_u64(s.fleet.crashes);
  w.write_u64(s.fleet.steals);
  w.write_u64(s.fleet.releases);
  w.write_u64(s.fleet.duplicates);

  w.write_u64(s.tenants.size());
  for (const JobStatusInfo& t : s.tenants) {
    w.write_u64(t.job_id);
    w.write_i32(static_cast<std::int32_t>(t.state));
    w.write_i32(t.priority);
    w.write_f64(t.weight);
    w.write_u64(t.terms_total);
    w.write_u64(t.terms_done);
    w.write_u64(t.retries);
    w.write_f64(t.queue_wait_seconds);
    w.write_f64(t.run_seconds);
    w.write_string(t.tag);
  }

  write_histogram(w, s.task_seconds);
  write_histogram(w, s.job_seconds);
  return w.take();
}

ServiceStats decode_service_stats(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  ServiceStats s;
  s.uptime_seconds = r.read_f64();
  s.lanes = r.read_u64();
  s.busy_lanes = r.read_u64();
  s.running_jobs = r.read_u64();
  s.queued_jobs = r.read_u64();
  s.terminal_jobs = r.read_u64();

  s.scheduler.admitted = r.read_u64();
  s.scheduler.rejected = r.read_u64();
  s.scheduler.activated = r.read_u64();
  s.scheduler.tasks_picked = r.read_u64();
  s.scheduler.tasks_dropped = r.read_u64();

  s.engine.submitted = r.read_u64();
  s.engine.accepted = r.read_u64();
  s.engine.rejected = r.read_u64();
  s.engine.completed = r.read_u64();
  s.engine.failed = r.read_u64();
  s.engine.cancelled = r.read_u64();
  s.engine.tasks_executed = r.read_u64();
  s.engine.task_retries = r.read_u64();
  s.engine.faults_injected = r.read_u64();
  s.engine.remote_fallbacks = r.read_u64();

  s.server.sessions_opened = r.read_u64();
  s.server.sessions_closed = r.read_u64();
  s.server.idle_closed = r.read_u64();
  s.server.protocol_errors = r.read_u64();
  s.server.frames_received = r.read_u64();
  s.server.frames_sent = r.read_u64();
  s.server.pings = r.read_u64();

  s.fleet.joins = r.read_u64();
  s.fleet.leaves = r.read_u64();
  s.fleet.crashes = r.read_u64();
  s.fleet.steals = r.read_u64();
  s.fleet.releases = r.read_u64();
  s.fleet.duplicates = r.read_u64();

  const std::uint64_t n_tenants = r.read_u64();
  if (n_tenants > bytes.size()) throw DecodeError("svc stats: tenant count");
  s.tenants.reserve(n_tenants);
  for (std::uint64_t i = 0; i < n_tenants; ++i) {
    JobStatusInfo t;
    t.known = true;
    t.job_id = r.read_u64();
    t.state = read_state(r);
    t.priority = r.read_i32();
    t.weight = r.read_f64();
    t.terms_total = r.read_u64();
    t.terms_done = r.read_u64();
    t.retries = r.read_u64();
    t.queue_wait_seconds = r.read_f64();
    t.run_seconds = r.read_f64();
    t.tag = r.read_string();
    s.tenants.push_back(std::move(t));
  }

  s.task_seconds = read_histogram(r, bytes.size());
  s.job_seconds = read_histogram(r, bytes.size());
  if (!r.exhausted()) throw DecodeError("svc stats: trailing bytes");
  return s;
}

std::string service_stats_json(const ServiceStats& s) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("schema", "svc_stats").kv("schema_version", std::uint64_t{1});
  w.kv("uptime_s", s.uptime_seconds);

  w.key("fleet").begin_object();
  w.kv("lanes", s.lanes).kv("busy_lanes", s.busy_lanes);
  w.kv("joins", static_cast<std::uint64_t>(s.fleet.joins));
  w.kv("leaves", static_cast<std::uint64_t>(s.fleet.leaves));
  w.kv("crashes", static_cast<std::uint64_t>(s.fleet.crashes));
  w.kv("steals", static_cast<std::uint64_t>(s.fleet.steals));
  w.kv("releases", static_cast<std::uint64_t>(s.fleet.releases));
  w.kv("duplicates", static_cast<std::uint64_t>(s.fleet.duplicates));
  w.end_object();

  w.key("jobs").begin_object();
  w.kv("running", s.running_jobs).kv("queued", s.queued_jobs);
  w.kv("terminal", s.terminal_jobs);
  w.end_object();

  w.key("scheduler").begin_object();
  w.kv("admitted", s.scheduler.admitted).kv("rejected", s.scheduler.rejected);
  w.kv("activated", s.scheduler.activated);
  w.kv("tasks_picked", s.scheduler.tasks_picked);
  w.kv("tasks_dropped", s.scheduler.tasks_dropped);
  w.end_object();

  w.key("engine").begin_object();
  w.kv("submitted", s.engine.submitted).kv("accepted", s.engine.accepted);
  w.kv("rejected", s.engine.rejected).kv("completed", s.engine.completed);
  w.kv("failed", s.engine.failed).kv("cancelled", s.engine.cancelled);
  w.kv("tasks_executed", s.engine.tasks_executed);
  w.kv("task_retries", s.engine.task_retries);
  w.kv("faults_injected", s.engine.faults_injected);
  w.kv("remote_fallbacks", s.engine.remote_fallbacks);
  w.end_object();

  w.key("sessions").begin_object();
  w.kv("opened", s.server.sessions_opened).kv("closed", s.server.sessions_closed);
  w.kv("idle_closed", s.server.idle_closed);
  w.kv("protocol_errors", s.server.protocol_errors);
  w.kv("frames_received", s.server.frames_received);
  w.kv("frames_sent", s.server.frames_sent);
  w.kv("pings", s.server.pings);
  w.end_object();

  w.key("tenants").begin_array();
  for (const JobStatusInfo& t : s.tenants) {
    w.begin_object();
    w.kv("job_id", t.job_id).kv("state", to_string(t.state));
    w.kv("priority", static_cast<std::int64_t>(t.priority)).kv("weight", t.weight);
    w.kv("terms_done", t.terms_done).kv("terms_total", t.terms_total);
    w.kv("retries", t.retries);
    w.kv("queue_wait_s", t.queue_wait_seconds).kv("run_s", t.run_seconds);
    if (!t.tag.empty()) w.kv("tag", t.tag);
    w.end_object();
  }
  w.end_array();

  w.key("latency").begin_object();
  w.key("task_seconds");
  histogram_json(w, s.task_seconds);
  w.key("job_seconds");
  histogram_json(w, s.job_seconds);
  w.end_object();

  w.end_object();
  return w.str();
}

std::string service_stats_prometheus(const ServiceStats& s) {
  std::string out;
  out.reserve(4096);
  prom_gauge(out, "svc_uptime_seconds", "Server process uptime.", s.uptime_seconds);
  prom_gauge(out, "svc_lanes", "Worker-fleet lane count.", static_cast<double>(s.lanes));
  prom_gauge(out, "svc_busy_lanes", "Lanes currently executing a task.",
             static_cast<double>(s.busy_lanes));
  prom_gauge(out, "svc_running_jobs", "Jobs holding a running slot.",
             static_cast<double>(s.running_jobs));
  prom_gauge(out, "svc_queued_jobs", "Admitted jobs waiting for a slot.",
             static_cast<double>(s.queued_jobs));
  prom_counter(out, "svc_terminal_jobs", "Jobs finished since server start.", s.terminal_jobs);

  prom_counter(out, "svc_scheduler_admitted", "Jobs admitted by the scheduler.",
               s.scheduler.admitted);
  prom_counter(out, "svc_scheduler_rejected", "Jobs rejected at admission.",
               s.scheduler.rejected);
  prom_counter(out, "svc_scheduler_activated", "Queued-to-running promotions.",
               s.scheduler.activated);
  prom_counter(out, "svc_scheduler_tasks_picked", "Tasks dispatched to lanes.",
               s.scheduler.tasks_picked);
  prom_counter(out, "svc_scheduler_tasks_dropped", "Pending tasks dropped by cancel.",
               s.scheduler.tasks_dropped);

  prom_counter(out, "svc_jobs_submitted", "SubmitJob requests seen.", s.engine.submitted);
  prom_counter(out, "svc_jobs_accepted", "Jobs accepted.", s.engine.accepted);
  prom_counter(out, "svc_jobs_rejected", "Jobs rejected (spec or admission).",
               s.engine.rejected);
  prom_counter(out, "svc_jobs_completed", "Jobs finished Done.", s.engine.completed);
  prom_counter(out, "svc_jobs_failed", "Jobs finished Failed.", s.engine.failed);
  prom_counter(out, "svc_jobs_cancelled", "Jobs finished Cancelled.", s.engine.cancelled);
  prom_counter(out, "svc_tasks_executed", "Tasks executed on the fleet.",
               s.engine.tasks_executed);
  prom_counter(out, "svc_task_retries", "Task re-dispatches.", s.engine.task_retries);
  prom_counter(out, "svc_faults_injected", "Job-scoped injected faults.",
               s.engine.faults_injected);
  prom_counter(out, "svc_remote_fallbacks", "Terms computed locally after lease failures.",
               s.engine.remote_fallbacks);

  prom_counter(out, "svc_sessions_opened", "Client sessions opened.",
               s.server.sessions_opened);
  prom_counter(out, "svc_sessions_closed", "Client sessions closed.",
               s.server.sessions_closed);
  prom_counter(out, "svc_sessions_idle_closed", "Sessions closed by the idle timeout.",
               s.server.idle_closed);
  prom_counter(out, "svc_protocol_errors", "Connection-fatal protocol errors.",
               s.server.protocol_errors);
  prom_counter(out, "svc_frames_received", "Frames received on client sessions.",
               s.server.frames_received);
  prom_counter(out, "svc_frames_sent", "Frames sent on client sessions.",
               s.server.frames_sent);
  prom_counter(out, "svc_pings", "Ping keepalives served.", s.server.pings);

  prom_counter(out, "svc_fleet_joins", "Workers/lanes that joined the fleet.",
               s.fleet.joins);
  prom_counter(out, "svc_fleet_leaves", "Graceful fleet departures.", s.fleet.leaves);
  prom_counter(out, "svc_fleet_crashes", "Abrupt fleet deaths handled.", s.fleet.crashes);
  prom_counter(out, "svc_fleet_steals", "Work units stolen off a loaded lane.",
               s.fleet.steals);
  prom_counter(out, "svc_fleet_releases", "Work units re-leased (churn or past deadline).",
               s.fleet.releases);
  prom_counter(out, "svc_fleet_duplicates", "Speculative-loser results discarded.",
               s.fleet.duplicates);

  // Per-tenant gauges, labelled by job id (+ tag when the client set one).
  out += "# HELP svc_tenant_terms_done Terms delivered for a live job.\n";
  out += "# TYPE svc_tenant_terms_done gauge\n";
  for (const JobStatusInfo& t : s.tenants) {
    out += "svc_tenant_terms_done{job=\"" + std::to_string(t.job_id) + "\"";
    if (!t.tag.empty()) out += ",tag=\"" + prom_escape(t.tag) + "\"";
    out += ",state=\"" + std::string(to_string(t.state)) + "\"} ";
    out += std::to_string(t.terms_done) + "\n";
  }

  prom_histogram(out, "svc_task_seconds", "Per-task latency.", s.task_seconds);
  prom_histogram(out, "svc_job_seconds", "Per-job latency.", s.job_seconds);
  return out;
}

}  // namespace mg::svc
