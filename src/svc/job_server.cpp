#include "svc/job_server.hpp"

#include <poll.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "support/log.hpp"
#include "svc/job.hpp"
#include "svc/stats.hpp"

namespace mg::svc {

namespace {

struct ServerMetrics {
  obs::Counter& sessions_opened;
  obs::Counter& sessions_closed;
  obs::Counter& idle_closed;
  obs::Counter& protocol_errors;
  obs::Counter& frames_received;
  obs::Counter& frames_sent;
  obs::Counter& pings;
};

ServerMetrics& server_metrics() {
  static ServerMetrics m{
      obs::registry().counter("svc.server.sessions_opened"),
      obs::registry().counter("svc.server.sessions_closed"),
      obs::registry().counter("svc.server.idle_closed"),
      obs::registry().counter("svc.server.protocol_errors"),
      obs::registry().counter("svc.server.frames_received"),
      obs::registry().counter("svc.server.frames_sent"),
      obs::registry().counter("svc.server.pings"),
  };
  return m;
}

}  // namespace

struct JobServer::Session {
  std::uint64_t id = 0;
  net::Socket socket;
  net::FrameDecoder decoder;
  std::thread thread;
  /// Jobs this session submitted.  While any of them is still non-terminal
  /// the session counts as active — a client that submits a long job and
  /// only polls at the end must not be cut off by the idle timer.  Written
  /// and read only by the session's own thread.
  std::vector<std::uint64_t> jobs;

  Session(std::uint64_t id_, net::Socket socket_, std::size_t max_payload)
      : id(id_), socket(std::move(socket_)), decoder(max_payload) {}
};

JobServer::JobServer(JobServerConfig config)
    : config_(config),
      engine_(config.engine),
      listener_(config.host, config.port),
      port_(listener_.port()) {
  listener_.set_nonblocking(true);
  accept_thread_ = std::thread([this] { accept_main(); });
}

JobServer::~JobServer() { shutdown(); }

void JobServer::accept_main() {
  while (!down_.load(std::memory_order_acquire)) {
    pollfd pfd{listener_.fd(), POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 100);
    if (rc <= 0) continue;
    net::Socket s = listener_.accept();
    if (!s.valid()) continue;
    s.set_nodelay(true);
    auto session = [&] {
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      auto sess = std::make_shared<Session>(next_session_id_++, std::move(s),
                                            config_.max_payload);
      sessions_.emplace(sess->id, sess);
      return sess;
    }();
    server_metrics().sessions_opened.add();
    {
      std::lock_guard<std::mutex> lock(counters_mutex_);
      ++counters_.sessions_opened;
    }
    session->thread = std::thread([this, session] { session_main(session); });
  }
}

void JobServer::session_main(std::shared_ptr<Session> session) {
  const bool idle_enabled = config_.idle_timeout.count() > 0;
  auto last_frame_at = std::chrono::steady_clock::now();
  bool idle_kill = false;

  try {
    std::vector<std::uint8_t> buf(64 * 1024);
    bool open = true;
    while (open && !down_.load(std::memory_order_acquire)) {
      // Wait for bytes, but never longer than the remaining idle budget —
      // the poll timeout *is* the idle-timeout mechanism.
      int wait_ms = 200;
      if (idle_enabled) {
        const auto idle_for = std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - last_frame_at);
        const auto left = config_.idle_timeout - idle_for;
        if (left.count() <= 0) {
          // An in-flight job counts as session activity: refresh the idle
          // clock instead of closing under the client's feet.
          bool job_running = false;
          for (const std::uint64_t job_id : session->jobs) {
            const JobStatusInfo info = engine_.status(job_id);
            if (info.known && !is_terminal(info.state)) {
              job_running = true;
              break;
            }
          }
          if (job_running) {
            last_frame_at = std::chrono::steady_clock::now();
            continue;
          }
          idle_kill = true;
          break;
        }
        wait_ms = static_cast<int>(std::min<std::int64_t>(left.count(), 200));
      }
      pollfd pfd{session->socket.fd(), POLLIN, 0};
      const int rc = ::poll(&pfd, 1, wait_ms);
      if (rc < 0) break;
      if (rc == 0) continue;  // timeout tick; loop re-checks idle budget

      const std::ptrdiff_t n = session->socket.recv_some(buf.data(), buf.size());
      if (n == 0) break;   // orderly EOF
      if (n < 0) continue; // spurious wakeup
      session->decoder.feed(buf.data(), static_cast<std::size_t>(n));
      while (auto frame = session->decoder.next()) {
        last_frame_at = std::chrono::steady_clock::now();
        server_metrics().frames_received.add();
        {
          std::lock_guard<std::mutex> lock(counters_mutex_);
          ++counters_.frames_received;
        }
        if (!serve_frame(*session, *frame)) {
          open = false;
          break;
        }
      }
    }
  } catch (const net::FrameError& e) {
    support::log_warn("svc: session ", session->id, " framing error: ", e.what());
    server_metrics().protocol_errors.add();
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.protocol_errors;
  } catch (const std::exception& e) {
    support::log_warn("svc: session ", session->id, " error: ", e.what());
    server_metrics().protocol_errors.add();
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.protocol_errors;
  }

  if (idle_kill) {
    server_metrics().idle_closed.add();
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.idle_closed;
  }
  server_metrics().sessions_closed.add();
  {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.sessions_closed;
  }
  // Cleanup ownership handshake: if the server is not shutting down, this
  // thread removes its own record (detaching itself) and closes the socket.
  // Under shutdown it touches neither — shutdown() owns the close and the
  // join, so the fd is never closed from two threads.
  bool self_cleanup = false;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    if (!down_.load(std::memory_order_acquire)) {
      const auto it = sessions_.find(session->id);
      if (it != sessions_.end()) {
        it->second->thread.detach();
        sessions_.erase(it);
        self_cleanup = true;
      }
    }
  }
  if (self_cleanup) session->socket.close();
}

bool JobServer::serve_frame(Session& session, const net::Frame& frame) {
  using net::FrameType;
  const std::uint64_t seq = frame.header.seq;
  switch (frame.header.type) {
    case FrameType::SubmitJob: {
      const JobSpec spec = decode_job_spec(frame.payload);  // throws -> fatal
      const JobTicket ticket = engine_.submit(spec);
      if (ticket.accepted) session.jobs.push_back(ticket.job_id);
      return send_frame(session, FrameType::JobAccepted, seq, encode_job_ticket(ticket));
    }
    case FrameType::JobStatus: {
      const std::uint64_t id = decode_job_ref(frame.payload);
      return send_frame(session, FrameType::JobStatus, seq,
                        encode_job_status(engine_.status(id)));
    }
    case FrameType::JobResult: {
      const std::uint64_t id = decode_job_ref(frame.payload);
      return send_frame(session, FrameType::JobResult, seq,
                        encode_job_result(engine_.result(id)));
    }
    case FrameType::CancelJob: {
      const std::uint64_t id = decode_job_ref(frame.payload);
      return send_frame(session, FrameType::JobStatus, seq,
                        encode_job_status(engine_.cancel(id)));
    }
    case FrameType::GetStats:
      return send_frame(session, FrameType::StatsReport, seq,
                        encode_service_stats(stats()));
    case FrameType::Ping: {
      server_metrics().pings.add();
      {
        std::lock_guard<std::mutex> lock(counters_mutex_);
        ++counters_.pings;
      }
      return send_frame(session, FrameType::Pong, seq, frame.payload);
    }
    case FrameType::Bye:
      send_frame(session, FrameType::Bye, seq, {});
      return false;
    default:
      // A frame type this endpoint does not serve (worker-transport types,
      // or a stray Pong) is a protocol violation: close.
      server_metrics().protocol_errors.add();
      {
        std::lock_guard<std::mutex> lock(counters_mutex_);
        ++counters_.protocol_errors;
      }
      return false;
  }
}

bool JobServer::send_frame(Session& session, net::FrameType type, std::uint64_t seq,
                           const std::vector<std::uint8_t>& payload) {
  const std::vector<std::uint8_t> bytes = net::encode_frame(type, seq, payload);
  if (!net::send_all(session.socket, bytes.data(), bytes.size())) return false;
  server_metrics().frames_sent.add();
  std::lock_guard<std::mutex> lock(counters_mutex_);
  ++counters_.frames_sent;
  return true;
}

JobServerCounters JobServer::counters() const {
  std::lock_guard<std::mutex> lock(counters_mutex_);
  return counters_;
}

ServiceStats JobServer::stats() const {
  ServiceStats stats;
  stats.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started_at_)
          .count();
  stats.lanes = engine_.lanes();
  stats.busy_lanes = engine_.busy_lanes();
  stats.running_jobs = engine_.running_jobs();
  stats.queued_jobs = engine_.queued_jobs();
  stats.terminal_jobs = engine_.terminal_jobs();
  stats.scheduler = engine_.scheduler_counters();
  stats.engine = engine_.counters();
  stats.server = counters();
  stats.fleet = engine_.fleet_counters();
  stats.tenants = engine_.active_statuses();
  const obs::MetricsSnapshot snap = obs::registry().snapshot();
  const auto task_it = snap.histograms.find("svc.task_seconds");
  if (task_it != snap.histograms.end()) stats.task_seconds = task_it->second;
  const auto job_it = snap.histograms.find("svc.job_seconds");
  if (job_it != snap.histograms.end()) stats.job_seconds = job_it->second;
  return stats;
}

void JobServer::shutdown() {
  bool was_down = down_.exchange(true, std::memory_order_acq_rel);
  if (!was_down) {
    if (accept_thread_.joinable()) accept_thread_.join();
    listener_.close();
  }
  // Closing the sockets kicks session threads out of poll/recv; then join.
  std::map<std::uint64_t, std::shared_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions.swap(sessions_);
  }
  for (auto& [id, session] : sessions) session->socket.close();
  for (auto& [id, session] : sessions) {
    if (session->thread.joinable()) session->thread.join();
  }
  engine_.shutdown();
}

}  // namespace mg::svc
