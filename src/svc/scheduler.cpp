#include "svc/scheduler.hpp"

#include <algorithm>
#include <string>

#include "obs/metrics.hpp"

namespace mg::svc {

namespace {

struct SchedMetrics {
  obs::Counter& admitted;
  obs::Counter& rejected;
  obs::Counter& activated;
  obs::Counter& tasks_picked;
  obs::Counter& tasks_dropped;
};

SchedMetrics& sched_metrics() {
  static SchedMetrics m{
      obs::registry().counter("svc.sched.admitted"),
      obs::registry().counter("svc.sched.rejected"),
      obs::registry().counter("svc.sched.activated"),
      obs::registry().counter("svc.sched.tasks_picked"),
      obs::registry().counter("svc.sched.tasks_dropped"),
  };
  return m;
}

}  // namespace

FairScheduler::FairScheduler(AdmissionConfig config) : config_(config) {}

bool FairScheduler::admit(std::uint64_t id, std::int32_t priority, double weight,
                          std::vector<TaskRef> tasks, std::string& reason,
                          std::uint32_t pipeline_limit) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopped_) {
    reason = "scheduler is stopped";
    ++counters_.rejected;
    sched_metrics().rejected.add();
    return false;
  }
  if (running_ >= config_.max_running && wait_queue_.size() >= config_.max_queued) {
    reason = "admission queue full (" + std::to_string(running_) + " running, " +
             std::to_string(wait_queue_.size()) + " queued)";
    ++counters_.rejected;
    sched_metrics().rejected.add();
    return false;
  }
  Job job;
  job.priority = priority;
  job.weight = weight > 0.0 ? weight : 1.0;
  job.pipeline_limit = pipeline_limit;
  job.pending.assign(tasks.begin(), tasks.end());
  jobs_.emplace(id, std::move(job));
  wait_queue_.push_back(id);
  ++counters_.admitted;
  sched_metrics().admitted.add();
  promote_waiters();
  return true;
}

bool FairScheduler::is_active(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  return it != jobs_.end() && it->second.running;
}

void FairScheduler::promote_waiters() {
  while (running_ < config_.max_running && !wait_queue_.empty()) {
    // Highest priority first; FIFO within a class (stable scan).
    auto best = wait_queue_.begin();
    for (auto it = std::next(wait_queue_.begin()); it != wait_queue_.end(); ++it) {
      if (jobs_.at(*it).priority > jobs_.at(*best).priority) best = it;
    }
    const std::uint64_t id = *best;
    wait_queue_.erase(best);
    Job& job = jobs_.at(id);
    // A start-time-fair queue: a newly running job starts at the minimum
    // virtual service of its peers, so it shares from now on instead of
    // monopolising the fleet to "catch up" on time it never waited.
    double floor = 0.0;
    bool first = true;
    for (const auto& [jid, j] : jobs_) {
      if (!j.running || jid == id) continue;
      floor = first ? j.virtual_service : std::min(floor, j.virtual_service);
      first = false;
    }
    job.virtual_service = first ? 0.0 : floor;
    job.running = true;
    ++running_;
    ++counters_.activated;
    sched_metrics().activated.add();
  }
  task_ready_.notify_all();
}

FairScheduler::Job* FairScheduler::pick_job() {
  Job* best = nullptr;
  std::uint64_t best_id = 0;
  for (auto& [id, job] : jobs_) {
    if (!job.running || job.pending.empty()) continue;
    if (job.pipeline_limit > 0 && job.in_flight >= job.pipeline_limit) continue;
    if (best == nullptr || job.priority > best->priority ||
        (job.priority == best->priority && job.virtual_service < best->virtual_service) ||
        (job.priority == best->priority && job.virtual_service == best->virtual_service &&
         id < best_id)) {
      best = &job;
      best_id = id;
    }
  }
  return best;
}

std::optional<TaskRef> FairScheduler::next_task() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (stopped_) return std::nullopt;
    if (retire_tokens_ > 0) {
      --retire_tokens_;
      return std::nullopt;  // this lane retires (elastic shrink)
    }
    Job* job = pick_job();
    if (job != nullptr) {
      TaskRef task = job->pending.front();
      job->pending.pop_front();
      job->virtual_service += task.cost / job->weight;
      ++job->in_flight;
      ++counters_.tasks_picked;
      sched_metrics().tasks_picked.add();
      return task;
    }
    task_ready_.wait(lock);
  }
}

void FairScheduler::task_finished(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it != jobs_.end() && it->second.in_flight > 0) {
    --it->second.in_flight;
    // A finished task can unblock a job parked at its pipeline limit.
    if (it->second.pipeline_limit > 0 && !it->second.pending.empty()) task_ready_.notify_all();
  }
}

std::size_t FairScheduler::drop_pending(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return 0;
  const std::size_t dropped = it->second.pending.size();
  it->second.pending.clear();
  counters_.tasks_dropped += dropped;
  sched_metrics().tasks_dropped.add(dropped);
  return dropped;
}

void FairScheduler::release_slot(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return;
  if (it->second.running) {
    --running_;
  } else {
    const auto w = std::find(wait_queue_.begin(), wait_queue_.end(), id);
    if (w != wait_queue_.end()) wait_queue_.erase(w);
  }
  jobs_.erase(it);
  promote_waiters();
}

void FairScheduler::retire_lanes(std::size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  retire_tokens_ += n;
  task_ready_.notify_all();
}

void FairScheduler::stop() {
  std::lock_guard<std::mutex> lock(mutex_);
  stopped_ = true;
  task_ready_.notify_all();
}

std::size_t FairScheduler::running_jobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

std::size_t FairScheduler::queued_jobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return wait_queue_.size();
}

SchedulerCounters FairScheduler::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

}  // namespace mg::svc
