// SolveEngine — the multi-tenant execution core of the solve service.
//
// One engine owns one shared worker fleet (a fixed set of lane threads; each
// lane either subsolves in-process or leases a remote TCP worker through a
// RemoteEndpoint round trip) and multiplexes it across every admitted job
// via the FairScheduler.  The numerics are untouched: a lane executes the
// same WorkItem -> ResultItem kernel the batch solver uses, results are
// keyed by term index, and the final combination runs in term order — so
// each job's output is bit-identical to a standalone solve_sequential run
// of the same spec, no matter how tenancy interleaved its tasks.
//
// Per-job isolation:
//  * metrics: every job gets its own obs::Registry; its report JSON is
//    assembled from that registry alone, so concurrent tenants never bleed
//    into each other's numbers (global svc.* counters keep the fleet view).
//  * faults: a job-scoped fault spec seeds a private FaultPlan whose
//    ordinals are the job's own attempt counter — injections are a pure
//    function of the job, invisible to its neighbours.
//  * cancellation: drops the job's pending tasks immediately, aborts its
//    in-flight remote round trips via the lease's cancel hook, and never
//    touches another job's work.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault_plan.hpp"
#include "fleet/churn.hpp"
#include "svc/job.hpp"
#include "svc/scheduler.hpp"

namespace mg::net {
class RemoteEndpoint;
}

namespace mg::svc {

struct EngineConfig {
  AdmissionConfig admission;
  /// Lane threads sharing the fleet.  With `remote` set this is the number
  /// of concurrently leased worker channels, not local compute threads.
  std::size_t lanes = 4;
  /// TCP fleet: lanes round-trip marshalled work units over this endpoint
  /// (not owned; must outlive the engine).  Null = subsolve in the lane.
  net::RemoteEndpoint* remote = nullptr;
  /// Re-dispatch policy for failed attempts (remote transport failures and
  /// job-scoped injected faults).  Once attempts are exhausted the lane
  /// computes the term locally — graceful degradation, still bit-identical.
  fault::RetryPolicy retry;
  /// Spec validation caps (a hostile SubmitJob must not allocate the moon).
  int max_root = 6;
  int max_level = 12;
};

/// Fleet-wide ledger (sum over jobs; per-job views live in the job reports).
struct EngineCounters {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t tasks_executed = 0;
  std::uint64_t task_retries = 0;
  std::uint64_t faults_injected = 0;   ///< job-scoped crash/hang/corrupt
  std::uint64_t remote_fallbacks = 0;  ///< terms computed locally after lease failures
};

class SolveEngine {
 public:
  explicit SolveEngine(EngineConfig config = {});
  ~SolveEngine();

  SolveEngine(const SolveEngine&) = delete;
  SolveEngine& operator=(const SolveEngine&) = delete;

  /// Validates + admits the job.  Rejections (bad spec, admission queue
  /// full) come back as a non-accepted ticket with the reason; nothing
  /// blocks.  Thread-safe.
  JobTicket submit(const JobSpec& spec);

  JobStatusInfo status(std::uint64_t id) const;
  JobResultData result(std::uint64_t id) const;

  /// Requests cancellation: pending tasks are dropped now, in-flight ones
  /// drain (remote trips abort at the lease).  Returns the post-request
  /// status; terminal jobs are left untouched.
  JobStatusInfo cancel(std::uint64_t id);

  /// Blocks until the job reaches a terminal state; false on timeout or
  /// unknown id.
  bool wait_terminal(std::uint64_t id, std::chrono::milliseconds timeout);

  /// Jobs that have reached any terminal state since construction.
  std::size_t terminal_jobs() const;

  /// Elastic resize of the lane fleet: growing spawns new lane threads that
  /// start pulling tasks immediately (fleet joins); shrinking retires lanes
  /// as they next ask the scheduler for work — an executing task always
  /// finishes first (fleet leaves).  Returns the new target; a no-op after
  /// shutdown.  Thread-safe.
  std::size_t resize(std::size_t lanes);

  EngineCounters counters() const;
  SchedulerCounters scheduler_counters() const;
  /// Elastic-fleet ledger: lane joins/leaves from resize() (the service's
  /// substrate-level steal/release counters live on the RemoteEndpoint).
  fleet::FleetCounters fleet_counters() const;

  // ---- live-stats probes (GetStats; see svc/stats.hpp) ----
  std::size_t lanes() const { return lane_target_.load(std::memory_order_relaxed); }
  /// Lanes currently executing a task (vs parked in next_task()).
  std::size_t busy_lanes() const { return busy_lanes_.load(std::memory_order_relaxed); }
  std::size_t running_jobs() const { return scheduler_.running_jobs(); }
  std::size_t queued_jobs() const { return scheduler_.queued_jobs(); }
  /// Status of every non-terminal job, in id order (the live tenant view).
  std::vector<JobStatusInfo> active_statuses() const;

  /// Stops the scheduler and joins the lanes; queued/running jobs finish as
  /// Failed("engine shut down").  Idempotent; also run by the destructor.
  void shutdown();

 private:
  struct Job;
  struct TermResult;

  void lane_main(std::size_t lane_index);
  /// Fills a status view; the job's mutex must be held.
  static JobStatusInfo status_locked(const Job& job);
  void execute_task(Job& job, const TaskRef& task);
  void deliver(Job& job, std::size_t term_index, TermResult&& delivery);
  void account_skipped(Job& job, std::size_t n);
  void finalize(Job& job);

  EngineConfig config_;
  FairScheduler scheduler_;

  mutable std::mutex jobs_mutex_;
  std::map<std::uint64_t, std::shared_ptr<Job>> jobs_;
  std::uint64_t next_job_id_ = 1;
  std::uint64_t terminal_jobs_ = 0;

  mutable std::mutex counters_mutex_;
  EngineCounters counters_;
  fleet::FleetCounters fleet_;

  std::atomic<std::size_t> lane_target_{0};  ///< current fleet-size target

  mutable std::mutex wait_mutex_;
  std::condition_variable terminal_cv_;

  std::vector<std::thread> lanes_;
  std::atomic<std::size_t> busy_lanes_{0};
  bool down_ = false;  ///< guarded by jobs_mutex_
};

}  // namespace mg::svc
