// JobClient — a blocking client for the solve-service wire API.
//
// One connection, one request in flight: every call sends a frame with a
// fresh sequence number and blocks until the reply with the same seq comes
// back (or the deadline passes).  Any framing violation — corrupt stream,
// reply with an unexpected seq or type — is connection-fatal and surfaces as
// ClientError, mirroring the server's drop-the-connection discipline.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "svc/job.hpp"

namespace mg::svc {

struct ServiceStats;

class ClientError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct JobClientConfig {
  std::chrono::milliseconds connect_timeout{2'000};
  /// Per-request reply deadline; 0 = wait forever.
  std::chrono::milliseconds request_timeout{30'000};
  std::size_t max_payload = net::FrameDecoder::kDefaultMaxPayload;
};

class JobClient {
 public:
  /// Connects immediately; throws ClientError when the server is
  /// unreachable.
  JobClient(const std::string& host, std::uint16_t port, JobClientConfig config = {});
  ~JobClient();

  JobClient(const JobClient&) = delete;
  JobClient& operator=(const JobClient&) = delete;

  JobTicket submit(const JobSpec& spec);
  JobStatusInfo status(std::uint64_t job_id);
  JobResultData result(std::uint64_t job_id);
  JobStatusInfo cancel(std::uint64_t job_id);

  /// Round-trips a Ping (payload echoed in the Pong); refreshes the server's
  /// idle clock.  Returns the measured round-trip time.
  std::chrono::microseconds ping();

  /// Fetches the server's live ServiceStats (GetStats -> StatsReport).
  ServiceStats stats();

  /// Polls status until the job is terminal; throws ClientError on timeout
  /// or when the job vanishes.
  JobStatusInfo wait_terminal(std::uint64_t job_id, std::chrono::milliseconds timeout,
                              std::chrono::milliseconds poll_interval =
                                  std::chrono::milliseconds(20));

  /// Sends Bye and closes.  Implied by the destructor.
  void close();

 private:
  net::Frame request(net::FrameType type, const std::vector<std::uint8_t>& payload,
                     net::FrameType expect_type);

  JobClientConfig config_;
  net::Socket socket_;
  net::FrameDecoder decoder_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace mg::svc
