#include "svc/engine.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/concurrent_solver.hpp"
#include "core/marshal.hpp"
#include "grid/combination.hpp"
#include "net/remote.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "support/check.hpp"
#include "support/log.hpp"
#include "support/stopwatch.hpp"
#include "transport/seq_solver.hpp"
#include "transport/subsolve.hpp"

namespace mg::svc {

namespace {

using steady = std::chrono::steady_clock;

double seconds_between(steady::time_point a, steady::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// Fleet-wide obs mirrors (svc.*).  Per-job numbers live in each job's own
// registry, so one tenant's view never contains another tenant's traffic.
struct SvcMetrics {
  obs::Counter& jobs_submitted;
  obs::Counter& jobs_accepted;
  obs::Counter& jobs_rejected;
  obs::Counter& jobs_completed;
  obs::Counter& jobs_failed;
  obs::Counter& jobs_cancelled;
  obs::Counter& tasks_executed;
  obs::Counter& task_retries;
  obs::Counter& faults_injected;
  obs::Counter& remote_fallbacks;
  obs::Histogram& task_seconds;
  obs::Histogram& job_seconds;
};

SvcMetrics& svc_metrics() {
  static SvcMetrics m{
      obs::registry().counter("svc.jobs_submitted"),
      obs::registry().counter("svc.jobs_accepted"),
      obs::registry().counter("svc.jobs_rejected"),
      obs::registry().counter("svc.jobs_completed"),
      obs::registry().counter("svc.jobs_failed"),
      obs::registry().counter("svc.jobs_cancelled"),
      obs::registry().counter("svc.tasks_executed"),
      obs::registry().counter("svc.task_retries"),
      obs::registry().counter("svc.faults_injected"),
      obs::registry().counter("svc.remote_fallbacks"),
      obs::registry().histogram("svc.task_seconds", obs::default_latency_buckets()),
      obs::registry().histogram("svc.job_seconds", obs::default_latency_buckets()),
  };
  return m;
}

}  // namespace

/// One term's computed payload travelling from a lane into the job record.
struct SolveEngine::TermResult {
  grid::Field field;
  transport::GridRunRecord record;
};

struct SolveEngine::Job {
  std::uint64_t id = 0;
  JobSpec spec;
  transport::ProgramConfig program;
  std::vector<grid::CombinationTerm> terms;

  /// Job-scoped adversary (null without a fault_spec); ordinals are the
  /// job's own attempt counter, so injections are per-tenant deterministic.
  std::unique_ptr<const fault::FaultPlan> fault_plan;
  std::atomic<std::uint64_t> attempt_ordinal{0};
  std::atomic<bool> cancel{false};

  /// The job's private metrics namespace; snapshotted into its report.
  obs::Registry metrics;

  mutable std::mutex m;
  JobState state = JobState::Queued;
  std::vector<std::optional<grid::Field>> solutions;
  std::vector<transport::GridRunRecord> records;
  std::size_t outstanding = 0;  ///< terms not yet delivered/dropped/skipped
  std::size_t terms_done = 0;
  fault::FaultCounters faults;
  std::string error;
  std::optional<grid::Field> combined;
  std::string report_json;
  steady::time_point submitted_at{};
  steady::time_point started_at{};
  bool started = false;
  double queue_wait_seconds = 0.0;
  double run_seconds = 0.0;

  Job(std::uint64_t id_, const JobSpec& spec_) : id(id_), spec(spec_) {
    program.root = spec_.root;
    program.level = spec_.level;
    program.le_tol = spec_.le_tol;
    program.kernel.system.kernel_policy = static_cast<linalg::KernelPolicy>(spec_.kernel_policy);
    program.kernel.system.inner_threads = spec_.inner_threads;
  }
};

SolveEngine::SolveEngine(EngineConfig config)
    : config_(config), scheduler_(config.admission) {
  MG_REQUIRE(config_.lanes > 0);
  lane_target_.store(config_.lanes, std::memory_order_relaxed);
  lanes_.reserve(config_.lanes);
  for (std::size_t i = 0; i < config_.lanes; ++i) {
    lanes_.emplace_back([this, i] { lane_main(i); });
  }
}

SolveEngine::~SolveEngine() { shutdown(); }

JobTicket SolveEngine::submit(const JobSpec& spec) {
  svc_metrics().jobs_submitted.add();
  {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.submitted;
  }

  JobTicket ticket;
  // Validation first: a malformed spec is a rejection, never an exception
  // escaping into the session layer.
  std::string why;
  if (spec.root < 1 || spec.root > config_.max_root) {
    why = "root out of range [1, " + std::to_string(config_.max_root) + "]";
  } else if (spec.level < 0 || spec.level > config_.max_level) {
    why = "level out of range [0, " + std::to_string(config_.max_level) + "]";
  } else if (!(spec.le_tol > 0.0)) {
    why = "le_tol must be > 0";
  } else if (!(spec.weight > 0.0)) {
    why = "weight must be > 0";
  } else if (spec.kernel_policy < 0 ||
             spec.kernel_policy > static_cast<std::int32_t>(linalg::KernelPolicy::Tiled)) {
    why = "kernel_policy out of range";
  } else if (spec.inner_threads < 1 || spec.inner_threads > 1024) {
    why = "inner_threads out of range [1, 1024]";
  } else if (spec.pipeline_depth > 64) {
    why = "pipeline_depth out of range [0, 64]";
  } else if (!spec.fault_spec.empty()) {
    try {
      (void)fault::parse_fault_spec(spec.fault_spec);
    } catch (const std::exception& e) {
      why = std::string("bad fault spec: ") + e.what();
    }
  }
  if (!why.empty()) {
    ticket.reason = "invalid spec: " + why;
    svc_metrics().jobs_rejected.add();
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.rejected;
    return ticket;
  }

  auto job = std::make_shared<Job>(0, spec);
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    if (down_) {
      ticket.reason = "server is shutting down";
      svc_metrics().jobs_rejected.add();
      std::lock_guard<std::mutex> clock(counters_mutex_);
      ++counters_.rejected;
      return ticket;
    }
    job->id = next_job_id_++;
  }
  job->terms = grid::combination_terms(spec.root, spec.level);
  job->solutions.resize(job->terms.size());
  job->records.assign(job->terms.size(),
                      transport::GridRunRecord{grid::Grid2D(spec.root, 0, 0), 0.0, {}, 0.0});
  job->outstanding = job->terms.size();
  job->submitted_at = steady::now();
  if (!spec.fault_spec.empty()) {
    job->fault_plan =
        std::make_unique<const fault::FaultPlan>(fault::parse_fault_spec(spec.fault_spec));
  }
  job->metrics.gauge("job.priority").set(spec.priority);
  job->metrics.gauge("job.weight").set(spec.weight);
  job->metrics.counter("job.terms_total").add(job->terms.size());

  // Dispatch order is LPT (heaviest grid first) — the same completion-tail
  // argument as the batch path; the cost doubles as the fair-share charge.
  std::vector<TaskRef> tasks;
  tasks.reserve(job->terms.size());
  for (std::size_t k : mw::lpt_order(job->terms, 0, job->terms.size())) {
    tasks.push_back(TaskRef{job->id, k,
                            static_cast<double>(transport::subsolve_payload_bytes(job->terms[k].grid))});
  }

  std::string reason;
  {
    // Publish the record before admitting: a lane may pick a task the
    // instant admit() returns.
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    jobs_.emplace(job->id, job);
  }
  if (!scheduler_.admit(job->id, spec.priority, spec.weight, std::move(tasks), reason,
                        spec.pipeline_depth)) {
    {
      std::lock_guard<std::mutex> lock(jobs_mutex_);
      jobs_.erase(job->id);
    }
    ticket.reason = reason;
    svc_metrics().jobs_rejected.add();
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.rejected;
    return ticket;
  }

  ticket.accepted = true;
  ticket.job_id = job->id;
  svc_metrics().jobs_accepted.add();
  {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.accepted;
  }
  return ticket;
}

void SolveEngine::lane_main(std::size_t lane_index) {
  (void)lane_index;
  while (auto task = scheduler_.next_task()) {
    std::shared_ptr<Job> job;
    {
      std::lock_guard<std::mutex> lock(jobs_mutex_);
      const auto it = jobs_.find(task->job);
      if (it != jobs_.end()) job = it->second;
    }
    if (!job) {
      scheduler_.task_finished(task->job);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(job->m);
      if (!job->started) {
        job->started = true;
        job->started_at = steady::now();
        job->queue_wait_seconds = seconds_between(job->submitted_at, job->started_at);
        job->metrics.gauge("job.queue_wait_seconds").set(job->queue_wait_seconds);
        if (job->state == JobState::Queued) job->state = JobState::Running;
      }
    }
    busy_lanes_.fetch_add(1, std::memory_order_relaxed);
    if (job->cancel.load(std::memory_order_acquire)) {
      account_skipped(*job, 1);
    } else {
      try {
        execute_task(*job, *task);
      } catch (const std::exception& e) {
        // A task that fails for real (subsolve threw, decode rejected every
        // attempt) takes the whole job down: record the error, drop the
        // rest, let in-flight siblings drain.
        {
          std::lock_guard<std::mutex> lock(job->m);
          if (job->error.empty()) job->error = e.what();
        }
        job->cancel.store(true, std::memory_order_release);
        account_skipped(*job, scheduler_.drop_pending(job->id) + 1);
      }
    }
    busy_lanes_.fetch_sub(1, std::memory_order_relaxed);
    scheduler_.task_finished(task->job);
  }
}

void SolveEngine::execute_task(Job& job, const TaskRef& task) {
  MG_ASSERT(task.term_index < job.terms.size());
  const grid::Grid2D& g = job.terms[task.term_index].grid;
  const mw::WorkItem item{task.term_index, g.root(), g.lx(), g.ly(), job.program.kernel_config()};

  obs::Histogram& job_task_seconds =
      job.metrics.histogram("job.task_seconds", obs::default_latency_buckets());
  support::Stopwatch task_watch;

  const std::size_t max_attempts = std::max<std::size_t>(1, config_.retry.max_attempts);
  std::optional<mw::ResultItem> result;
  bool fell_back = false;

  for (std::size_t attempt = 0; attempt < max_attempts && !result; ++attempt) {
    if (job.cancel.load(std::memory_order_acquire)) {
      account_skipped(job, 1);
      return;
    }
    if (attempt > 0) {
      std::this_thread::sleep_for(config_.retry.backoff_for(attempt));
      {
        std::lock_guard<std::mutex> lock(job.m);
        ++job.faults.retries;
      }
      job.metrics.counter("job.retries").add();
      svc_metrics().task_retries.add();
      std::lock_guard<std::mutex> lock(counters_mutex_);
      ++counters_.task_retries;
    }

    // Job-scoped injected fault for this attempt ordinal?
    if (job.fault_plan) {
      const std::uint64_t ordinal = job.attempt_ordinal.fetch_add(1, std::memory_order_relaxed);
      const fault::WorkerFault f = job.fault_plan->worker_fault(ordinal);
      if (f != fault::WorkerFault::None) {
        {
          std::lock_guard<std::mutex> lock(job.m);
          switch (f) {
            case fault::WorkerFault::Crash: ++job.faults.crashes_injected; break;
            case fault::WorkerFault::Hang: ++job.faults.hangs_injected; break;
            case fault::WorkerFault::Corrupt: ++job.faults.corruptions_injected; break;
            case fault::WorkerFault::None: break;
          }
          ++job.faults.crash_events;
        }
        job.metrics.counter("job.faults_injected").add();
        svc_metrics().faults_injected.add();
        {
          std::lock_guard<std::mutex> lock(counters_mutex_);
          ++counters_.faults_injected;
        }
        if (f == fault::WorkerFault::Hang) {
          // A hung attempt parks its lane until the task deadline would
          // fire; bounded so a hostile spec cannot wedge the fleet.
          const auto deadline = config_.retry.task_deadline.count() > 0
                                    ? config_.retry.task_deadline
                                    : std::chrono::milliseconds(50);
          std::this_thread::sleep_for(std::min(deadline, std::chrono::milliseconds(200)));
          std::lock_guard<std::mutex> lock(job.m);
          ++job.faults.timeouts;
        }
        continue;  // attempt consumed by the injection; retry
      }
    }

    if (config_.remote != nullptr) {
      std::atomic<bool>* cancel_flag = &job.cancel;
      net::RemoteEndpoint::RoundTrip trip = config_.remote->round_trip(
          mw::encode_work_item(item),
          [cancel_flag] { return cancel_flag->load(std::memory_order_acquire); }, job.id);
      if (job.cancel.load(std::memory_order_acquire)) {
        account_skipped(job, 1);
        return;
      }
      if (!trip.ok) {
        job.metrics.counter("job.remote_failures").add();
        continue;  // lease failed: retry (fresh channel) or fall through
      }
      try {
        result = mw::decode_result_item(trip.payload);
      } catch (const std::exception&) {
        job.metrics.counter("job.remote_rejects").add();
        continue;  // corrupt reply == transport fault, never a fake result
      }
    } else {
      result = mw::execute_work_item(item);
    }
  }

  if (!result) {
    // Attempts exhausted (remote transport down, or a fault spec hostile
    // enough to consume every try): compute locally.  Same kernel, same
    // bits — the tenant degrades to in-process compute, never to a wrong
    // answer or a hang.
    result = mw::execute_work_item(item);
    fell_back = true;
    job.metrics.counter("job.local_fallbacks").add();
    svc_metrics().remote_fallbacks.add();
    {
      std::lock_guard<std::mutex> lock(counters_mutex_);
      ++counters_.remote_fallbacks;
    }
  }
  (void)fell_back;

  const double task_seconds = task_watch.elapsed_seconds();
  job_task_seconds.observe(task_seconds);
  svc_metrics().task_seconds.observe(task_seconds);
  svc_metrics().tasks_executed.add();
  job.metrics.counter("job.tasks_executed").add();
  {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.tasks_executed;
  }

  MG_ASSERT(result->index == task.term_index);
  grid::Field field(job.terms[task.term_index].grid);
  field.data() = std::move(result->node_data);
  TermResult delivery{std::move(field),
                      transport::GridRunRecord{job.terms[task.term_index].grid,
                                               job.terms[task.term_index].coefficient,
                                               result->stats, result->elapsed_seconds}};
  deliver(job, task.term_index, std::move(delivery));
}

void SolveEngine::deliver(Job& job, std::size_t term_index, TermResult&& delivery) {
  bool fin = false;
  {
    std::lock_guard<std::mutex> lock(job.m);
    if (!job.solutions[term_index].has_value()) {
      job.solutions[term_index] = std::move(delivery.field);
      job.records[term_index] = delivery.record;
      ++job.terms_done;
      job.metrics.counter("job.terms_done").add();
      MG_ASSERT(job.outstanding > 0);
      --job.outstanding;
      fin = job.outstanding == 0;
    }
  }
  if (fin) finalize(job);
}

void SolveEngine::account_skipped(Job& job, std::size_t n) {
  if (n == 0) return;
  bool fin = false;
  {
    std::lock_guard<std::mutex> lock(job.m);
    const std::size_t k = std::min(n, job.outstanding);
    job.outstanding -= k;
    fin = job.outstanding == 0 && k > 0;
  }
  if (fin) finalize(job);
}

void SolveEngine::finalize(Job& job) {
  // Decide the terminal state and (for Done) combine.  By the time
  // outstanding hits zero no lane touches this job's solutions again, so
  // the combination runs unlocked.
  JobState final_state;
  {
    std::lock_guard<std::mutex> lock(job.m);
    if (is_terminal(job.state)) return;
    if (!job.error.empty()) {
      final_state = JobState::Failed;
    } else if (job.cancel.load(std::memory_order_acquire)) {
      final_state = JobState::Cancelled;
    } else {
      final_state = JobState::Done;
    }
  }

  if (final_state == JobState::Done) {
    // Exactly the batch master's step 5: components in term order, combined
    // onto the finest grid — the bit-identity anchor.
    std::vector<grid::Field> components;
    components.reserve(job.terms.size());
    for (auto& s : job.solutions) {
      MG_ASSERT(s.has_value());
      components.push_back(std::move(*s));
    }
    grid::Field combined = grid::combine(
        job.terms, components, grid::finest_grid(job.program.root, job.program.level));
    std::lock_guard<std::mutex> lock(job.m);
    job.combined = std::move(combined);
  }

  {
    std::lock_guard<std::mutex> lock(job.m);
    job.state = final_state;
    job.run_seconds =
        job.started ? seconds_between(job.started_at, steady::now()) : 0.0;
    job.metrics.gauge("job.run_seconds").set(job.run_seconds);

    // The self-contained per-job report: spec echo, derived lifecycle, the
    // job's own fault ledger, and *its* registry snapshot — nothing from
    // other tenants.
    obs::RunReport report("solve_job");
    report.config().begin_object();
    report.config().kv("job_id", job.id);
    report.config().kv("root", job.program.root).kv("level", job.program.level);
    report.config().kv("le_tol", job.program.le_tol);
    report.config().kv("priority", static_cast<std::int64_t>(job.spec.priority));
    report.config().kv("weight", job.spec.weight);
    if (!job.spec.tag.empty()) report.config().kv("tag", job.spec.tag);
    if (!job.spec.fault_spec.empty()) report.config().kv("fault_spec", job.spec.fault_spec);
    report.config().end_object();
    report.derived().begin_object();
    report.derived().kv("state", to_string(job.state));
    report.derived().kv("terms_total", static_cast<std::uint64_t>(job.terms.size()));
    report.derived().kv("terms_done", static_cast<std::uint64_t>(job.terms_done));
    report.derived().kv("retries", static_cast<std::uint64_t>(job.faults.retries));
    report.derived().kv("queue_wait_s", job.queue_wait_seconds);
    report.derived().kv("run_s", job.run_seconds);
    if (!job.error.empty()) report.derived().kv("error", job.error);
    report.derived().key("grids").begin_array();
    for (std::size_t i = 0; i < job.records.size(); ++i) {
      // Solutions are moved out only on the Done path (where every term was
      // delivered); otherwise an empty slot marks a never-delivered term.
      if (job.state != JobState::Done && !job.solutions[i].has_value()) continue;
      const auto& r = job.records[i];
      report.derived().begin_object();
      report.derived().kv("grid", r.grid.name()).kv("coefficient", r.coefficient);
      report.derived().kv("steps_accepted", static_cast<std::uint64_t>(r.stats.accepted));
      report.derived().kv("stage_solves", static_cast<std::uint64_t>(r.stats.stage_solves));
      report.derived().kv("wall_s", r.elapsed_seconds);
      report.derived().end_object();
    }
    report.derived().end_array();
    report.derived().end_object();
    if (job.faults.any()) fault::fault_counters_to_json(report.faults(), job.faults);
    job.report_json = report.json(job.metrics.snapshot());
  }

  scheduler_.release_slot(job.id);
  svc_metrics().job_seconds.observe(job.run_seconds);
  switch (final_state) {
    case JobState::Done: svc_metrics().jobs_completed.add(); break;
    case JobState::Failed: svc_metrics().jobs_failed.add(); break;
    case JobState::Cancelled: svc_metrics().jobs_cancelled.add(); break;
    default: break;
  }
  {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    if (final_state == JobState::Done) ++counters_.completed;
    if (final_state == JobState::Failed) ++counters_.failed;
    if (final_state == JobState::Cancelled) ++counters_.cancelled;
  }
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    ++terminal_jobs_;
  }
  {
    std::lock_guard<std::mutex> lock(wait_mutex_);
  }
  terminal_cv_.notify_all();
  support::log_info("svc: job ", job.id, " -> ", to_string(final_state));
}

JobStatusInfo SolveEngine::status_locked(const Job& job) {
  JobStatusInfo info;
  info.job_id = job.id;
  info.known = true;
  info.state = job.state;
  info.priority = job.spec.priority;
  info.weight = job.spec.weight;
  info.terms_total = job.terms.size();
  info.terms_done = job.terms_done;
  info.retries = job.faults.retries;
  info.queue_wait_seconds = job.queue_wait_seconds;
  info.run_seconds = is_terminal(job.state) || !job.started
                         ? job.run_seconds
                         : seconds_between(job.started_at, steady::now());
  info.tag = job.spec.tag;
  info.error = job.error;
  return info;
}

JobStatusInfo SolveEngine::status(std::uint64_t id) const {
  JobStatusInfo info;
  info.job_id = id;
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    const auto it = jobs_.find(id);
    if (it != jobs_.end()) job = it->second;
  }
  if (!job) return info;
  std::lock_guard<std::mutex> lock(job->m);
  return status_locked(*job);
}

std::vector<JobStatusInfo> SolveEngine::active_statuses() const {
  std::vector<std::shared_ptr<Job>> jobs;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    jobs.reserve(jobs_.size());
    for (const auto& [id, job] : jobs_) jobs.push_back(job);  // id order (map)
  }
  std::vector<JobStatusInfo> out;
  for (const auto& job : jobs) {
    std::lock_guard<std::mutex> lock(job->m);
    if (is_terminal(job->state)) continue;
    out.push_back(status_locked(*job));
  }
  return out;
}

JobResultData SolveEngine::result(std::uint64_t id) const {
  JobResultData data;
  data.job_id = id;
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    const auto it = jobs_.find(id);
    if (it != jobs_.end()) job = it->second;
  }
  if (!job) return data;
  std::lock_guard<std::mutex> lock(job->m);
  data.known = true;
  data.state = job->state;
  data.root = job->program.root;
  data.level = job->program.level;
  data.error = job->error;
  if (!is_terminal(job->state)) return data;
  data.ready = true;
  data.report_json = job->report_json;
  if (job->state == JobState::Done && job->combined.has_value()) {
    data.combined_nodes = job->combined->data();
  }
  return data;
}

JobStatusInfo SolveEngine::cancel(std::uint64_t id) {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    const auto it = jobs_.find(id);
    if (it != jobs_.end()) job = it->second;
  }
  if (job) {
    bool request = false;
    {
      std::lock_guard<std::mutex> lock(job->m);
      request = !is_terminal(job->state);
    }
    if (request) {
      job->cancel.store(true, std::memory_order_release);
      account_skipped(*job, scheduler_.drop_pending(id));
    }
  }
  return status(id);
}

bool SolveEngine::wait_terminal(std::uint64_t id, std::chrono::milliseconds timeout) {
  const auto deadline = steady::now() + timeout;
  std::unique_lock<std::mutex> lock(wait_mutex_);
  for (;;) {
    const JobStatusInfo info = status(id);
    if (!info.known) return false;
    if (is_terminal(info.state)) return true;
    if (terminal_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      const JobStatusInfo last = status(id);
      return last.known && is_terminal(last.state);
    }
  }
}

std::size_t SolveEngine::terminal_jobs() const {
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  return terminal_jobs_;
}

EngineCounters SolveEngine::counters() const {
  std::lock_guard<std::mutex> lock(counters_mutex_);
  return counters_;
}

SchedulerCounters SolveEngine::scheduler_counters() const { return scheduler_.counters(); }

fleet::FleetCounters SolveEngine::fleet_counters() const {
  fleet::FleetCounters out;
  {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    out = fleet_;
  }
  // Fold in the TCP substrate's elastic ledger so one probe answers for the
  // whole fleet, lanes and channels alike.
  if (config_.remote != nullptr) {
    const net::RemoteCounters rc = config_.remote->counters();
    out.joins += rc.fleet_joins;
    out.leaves += rc.fleet_leaves;
    out.crashes += rc.fleet_crashes;
    out.steals += rc.fleet_steals;
    out.releases += rc.fleet_releases;
    out.duplicates += rc.fleet_duplicates;
  }
  return out;
}

std::size_t SolveEngine::resize(std::size_t lanes) {
  MG_REQUIRE(lanes > 0);
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  const std::size_t cur = lane_target_.load(std::memory_order_relaxed);
  if (down_ || lanes == cur) return cur;
  fleet::FleetCounters delta;
  if (lanes > cur) {
    const std::size_t added = lanes - cur;
    for (std::size_t i = 0; i < added; ++i) {
      const std::size_t index = lanes_.size();
      lanes_.emplace_back([this, index] { lane_main(index); });
    }
    delta.joins = added;
    support::log_info("svc: fleet grew ", cur, " -> ", lanes, " lanes");
  } else {
    const std::size_t removed = cur - lanes;
    scheduler_.retire_lanes(removed);
    delta.leaves = removed;
    support::log_info("svc: fleet shrinking ", cur, " -> ", lanes, " lanes");
  }
  lane_target_.store(lanes, std::memory_order_relaxed);
  fleet::add_fleet_metrics(delta);
  {
    std::lock_guard<std::mutex> clock(counters_mutex_);
    fleet_ += delta;
  }
  return lanes;
}

void SolveEngine::shutdown() {
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    if (down_) {
      // Already shut down; lanes joined below on the first call only.
    }
    down_ = true;
  }
  scheduler_.stop();
  for (auto& lane : lanes_) {
    if (lane.joinable()) lane.join();
  }
  lanes_.clear();
  // Jobs stranded mid-flight by the stop fail visibly instead of reading as
  // forever-Running to a later status() poll.
  std::vector<std::shared_ptr<Job>> open;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    for (auto& [id, job] : jobs_) open.push_back(job);
  }
  for (auto& job : open) {
    bool strand = false;
    {
      std::lock_guard<std::mutex> lock(job->m);
      if (!is_terminal(job->state)) {
        if (job->error.empty()) job->error = "engine shut down";
        strand = true;
      }
    }
    if (strand) {
      job->cancel.store(true, std::memory_order_release);
      account_skipped(*job, scheduler_.drop_pending(job->id));
      std::lock_guard<std::mutex> lock(job->m);
      if (!is_terminal(job->state)) {
        job->state = JobState::Failed;
      }
    }
  }
}

}  // namespace mg::svc
