// Live service stats — the GetStats/StatsReport payload and its renderings.
//
// One ServiceStats is a point-in-time view of the whole service: scheduler
// depth, lane utilization, admission/engine/session ledgers, per-tenant
// queue/running detail (every non-terminal job's status), and the task/job
// latency histograms.  It travels the wire as the usual ByteWriter layout
// (StatsReport frames), and renders either as JSON (machine consumers, the
// CLI default) or as a Prometheus-style text exposition (scrapers).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/churn.hpp"
#include "obs/metrics.hpp"
#include "svc/job.hpp"
#include "svc/job_server.hpp"

namespace mg::svc {

struct ServiceStats {
  double uptime_seconds = 0.0;      ///< server process uptime (wall clock)
  std::uint64_t lanes = 0;          ///< fleet size
  std::uint64_t busy_lanes = 0;     ///< lanes currently executing a task
  std::uint64_t running_jobs = 0;   ///< jobs holding a running slot
  std::uint64_t queued_jobs = 0;    ///< admitted jobs waiting for a slot
  std::uint64_t terminal_jobs = 0;  ///< jobs finished since server start

  SchedulerCounters scheduler;
  EngineCounters engine;
  JobServerCounters server;
  /// Elastic-fleet ledger (lane joins/leaves from SolveEngine::resize plus
  /// any substrate churn accounting merged in by the embedder).
  fleet::FleetCounters fleet;

  /// Every non-terminal job, in id order (the live tenant view).
  std::vector<JobStatusInfo> tenants;

  /// Per-task and per-job latency distributions (svc.task_seconds /
  /// svc.job_seconds from the fleet registry).
  obs::HistogramSnapshot task_seconds;
  obs::HistogramSnapshot job_seconds;
};

// ---- wire codec (StatsReport payload) ----

std::vector<std::uint8_t> encode_service_stats(const ServiceStats& stats);
/// Throws support::DecodeError on truncation / trailing bytes.
ServiceStats decode_service_stats(const std::vector<std::uint8_t>& bytes);

// ---- renderings ----

/// Compact JSON object (scheduler/tenant/latency sections).
std::string service_stats_json(const ServiceStats& stats);

/// Prometheus text exposition (counters as `svc_*` with HELP/TYPE lines,
/// histograms with cumulative `_bucket{le=...}` series).
std::string service_stats_prometheus(const ServiceStats& stats);

}  // namespace mg::svc
