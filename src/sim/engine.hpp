// A minimal discrete-event simulation engine: a virtual clock and an ordered
// queue of timed callbacks.  Used for event-driven models; the cluster
// simulator's master/worker schedule is computed on the companion
// max-plus timelines (timeline.hpp), which share this virtual-time notion.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace mg::sim {

class SimEngine {
 public:
  using Action = std::function<void()>;

  /// Current virtual time (seconds).
  double now() const { return now_; }

  /// Schedules `action` at absolute virtual time `time` (>= now).
  void schedule_at(double time, Action action);

  /// Schedules `action` `delay` seconds from now.
  void schedule_in(double delay, Action action);

  /// Runs until the event queue is empty.  Returns events executed.
  std::size_t run();

  /// Runs until the queue is empty or virtual time would exceed `t_end`.
  std::size_t run_until(double t_end);

  std::size_t pending() const { return queue_.size(); }
  std::size_t executed() const { return executed_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;  ///< FIFO tie-break for simultaneous events
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
};

}  // namespace mg::sim
