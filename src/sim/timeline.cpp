#include "sim/timeline.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace mg::sim {

Interval Timeline::reserve(double earliest, double duration) {
  MG_REQUIRE(duration >= 0.0);
  const double start = std::max(earliest, free_from_);
  const Interval interval{start, start + duration};
  free_from_ = interval.end;
  busy_ += duration;
  history_.push_back(interval);
  return interval;
}

}  // namespace mg::sim
