#include "sim/engine.hpp"

#include "support/check.hpp"

namespace mg::sim {

void SimEngine::schedule_at(double time, Action action) {
  MG_REQUIRE_MSG(time >= now_, "cannot schedule in the past");
  queue_.push({time, next_seq_++, std::move(action)});
}

void SimEngine::schedule_in(double delay, Action action) {
  MG_REQUIRE(delay >= 0.0);
  schedule_at(now_ + delay, std::move(action));
}

std::size_t SimEngine::run() {
  std::size_t n = 0;
  while (!queue_.empty()) {
    // priority_queue::top returns const&; the action must be moved out before pop.
    Event e = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = e.time;
    e.action();
    ++n;
    ++executed_;
  }
  return n;
}

std::size_t SimEngine::run_until(double t_end) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().time <= t_end) {
    Event e = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = e.time;
    e.action();
    ++n;
    ++executed_;
  }
  if (now_ < t_end) now_ = t_end;
  return n;
}

}  // namespace mg::sim
