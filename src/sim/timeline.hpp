// Max-plus timelines: serial resources in virtual time.
//
// A Timeline models a resource that can serve one activity at a time (the
// master's thread, the task spawner, the master's network link, one
// workstation's CPU).  reserve(earliest, duration) books the next available
// slot at or after `earliest` and returns the interval.  Composing
// reservations across timelines yields the deterministic schedule of the
// master/worker protocol — a static-dataflow discrete-event simulation.
#pragma once

#include <vector>

namespace mg::sim {

struct Interval {
  double start = 0.0;
  double end = 0.0;
  double duration() const { return end - start; }
};

class Timeline {
 public:
  explicit Timeline(double free_from = 0.0) : free_from_(free_from) {}

  /// Books `duration` seconds starting no earlier than `earliest`.
  Interval reserve(double earliest, double duration);

  /// Time at which the resource is next free.
  double free_from() const { return free_from_; }

  /// Total booked busy time.
  double busy_time() const { return busy_; }

  /// Booked intervals in reservation order.
  const std::vector<Interval>& history() const { return history_; }

 private:
  double free_from_;
  double busy_ = 0.0;
  std::vector<Interval> history_;
};

}  // namespace mg::sim
