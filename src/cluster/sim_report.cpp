#include "cluster/sim_report.hpp"

namespace mg::cluster {

void append_run_json(obs::JsonWriter& w, const SimRunResult& run, bool include_ebb_flow) {
  w.begin_object();
  w.kv("st", run.sequential_seconds);
  w.kv("ct", run.concurrent_seconds);
  w.kv("m", run.weighted_machines);
  w.kv("su", run.concurrent_seconds > 0 ? run.sequential_seconds / run.concurrent_seconds : 0.0);
  w.kv("peak_machines", static_cast<std::int64_t>(run.peak_machines));
  w.kv("tasks_spawned", static_cast<std::uint64_t>(run.tasks_spawned));
  w.kv("workers", static_cast<std::uint64_t>(run.workers.size()));
  w.kv("network_bytes", static_cast<std::uint64_t>(run.network_bytes));
  w.key("hosts").begin_array();
  for (const auto& h : run.host_usage) {
    w.begin_object();
    w.kv("host", h.host).kv("busy_s", h.busy_seconds).kv("idle_s", h.idle_seconds);
    w.end_object();
  }
  w.end_array();
  if (include_ebb_flow) {
    w.key("ebb_flow").begin_object();
    w.key("times").begin_array();
    for (const double t : run.ebb_flow.times) w.value(t);
    w.end_array();
    w.key("counts").begin_array();
    for (const int c : run.ebb_flow.counts) w.value(c);
    w.end_array();
    w.kv("end_time", run.ebb_flow.end_time);
    w.end_object();
  }
  w.end_object();
}

void append_table_row_json(obs::JsonWriter& w, const TableRow& row) {
  w.begin_object();
  w.kv("level", row.level).kv("tol", row.tol);
  w.kv("st", row.st).kv("ct", row.ct).kv("m", row.m).kv("su", row.su);
  w.end_object();
}

void append_table_json(obs::JsonWriter& w, const std::vector<TableRow>& rows) {
  w.begin_array();
  for (const auto& row : rows) append_table_row_json(w, row);
  w.end_array();
}

}  // namespace mg::cluster
