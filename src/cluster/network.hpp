// Network model: 100 Mbps switched Ethernet.
//
// With a switch, each workstation has a dedicated link; the contention point
// for the paper's protocol is the master's own port, through which every
// work unit and every result travels ("the master process passes all data
// to and from the workers", §4.1).  The simulator therefore serialises all
// transfers on one Timeline representing the master's link and charges
// latency + size/bandwidth per message.
#pragma once

#include <cstddef>

namespace mg::cluster {

struct NetworkModel {
  double bandwidth_bps = 100e6;  ///< nominal 100 Mbps
  double efficiency = 0.8;       ///< TCP/IP + marshalling efficiency
  double latency_s = 5e-4;       ///< per-message latency (switch + stack)

  /// Wire time for one message of `bytes` payload.
  double transfer_seconds(std::size_t bytes) const {
    return latency_s + static_cast<double>(bytes) * 8.0 / (bandwidth_bps * efficiency);
  }
};

}  // namespace mg::cluster
