// The simulated workstation cluster (§7).
//
// "All the machines in our cluster have an AMD Athlon Processor and a cache
// size of 256Kb.  However 24 machines have a clock cycle of 1200Hz [MHz],
// 5 machines have a clock cycle of 1400Hz, and 3 machines have a clock
// cycle of 1466Hz. ... connected to each other by a switched Ethernet
// (100 Mbps)."
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mg::cluster {

struct HostSpec {
  std::string name;
  double mhz = 1200.0;
};

struct ClusterSpec {
  std::vector<HostSpec> hosts;       ///< hosts[0] is the start-up machine
  double reference_mhz = 1200.0;     ///< cost models are calibrated at this speed

  std::size_t size() const { return hosts.size(); }
  const HostSpec& startup() const { return hosts.front(); }

  /// The paper's cluster: 32 single-processor Athlons (24 x 1200 MHz,
  /// 5 x 1400 MHz, 3 x 1466 MHz).  The start-up machine is a 1200 MHz box
  /// (bumpa); the others are ordered slow-to-fast, matching the locus list.
  static ClusterSpec paper();

  /// A homogeneous cluster of n machines at `mhz` (ablation baseline).
  static ClusterSpec homogeneous(std::size_t n, double mhz = 1200.0);
};

}  // namespace mg::cluster
