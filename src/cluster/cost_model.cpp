#include "cluster/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "grid/combination.hpp"
#include "support/check.hpp"

namespace mg::cluster {

namespace {
double cells_of(const grid::Grid2D& g) {
  return static_cast<double>(g.cells_x()) * static_cast<double>(g.cells_y());
}

double aspect_weight(const grid::Grid2D& g, double kappa) {
  const int mn = std::min(g.lx(), g.ly());
  return 1.0 + kappa * std::pow(2.0, mn);
}
}  // namespace

double CostModel::sequential_seconds(int root, int level, double tol, double mhz) const {
  double total = init_seconds(mhz);
  for (const auto& term : grid::combination_terms(root, level)) {
    total += subsolve_seconds(term.grid, tol, mhz);
  }
  total += prolongation_seconds(root, level, mhz);
  return total;
}

double CostModel::inner_team_speedup(std::uint32_t inner_threads, double parallel_fraction) {
  if (inner_threads <= 1) return 1.0;
  const double f = std::min(std::max(parallel_fraction, 0.0), 1.0);
  const double n = static_cast<double>(inner_threads);
  return 1.0 / ((1.0 - f) + f / n);
}

double AthlonCostModel::tol_scale(double tol) const {
  // Continuous in tol so sweeps between 1e-3 and 1e-4 behave; anchored at
  // the paper's two tolerances: scale(1e-3) = 1, scale(1e-4) = tol_factor.
  const double exponent = std::log(p_.tol_factor_1e4) / std::log(10.0);
  return std::pow(1e-3 / tol, exponent);
}

double AthlonCostModel::subsolve_seconds(const grid::Grid2D& g, double tol, double mhz) const {
  MG_REQUIRE(mhz > 0.0);
  const double speed = mhz / p_.reference_mhz;
  const double work = p_.cost_per_cell * cells_of(g) * aspect_weight(g, p_.aspect_kappa);
  return (p_.per_grid_overhead + work * tol_scale(tol)) / speed;
}

double AthlonCostModel::prolongation_seconds(int root, int level, double mhz) const {
  // The combination is performed hierarchically: the cost is proportional to
  // the total number of *component* cells, not (components x finest cells).
  const double speed = mhz / p_.reference_mhz;
  double component_cells = 0.0;
  for (const auto& term : grid::combination_terms(root, level)) {
    component_cells += cells_of(term.grid);
  }
  return p_.prolong_per_cell * component_cells / speed;
}

double AthlonCostModel::init_seconds(double mhz) const {
  return p_.init / (mhz / p_.reference_mhz);
}

MeasuredCostModel::MeasuredCostModel(const std::vector<Sample>& samples, double measured_mhz)
    : measured_mhz_(measured_mhz) {
  MG_REQUIRE(!samples.empty());
  MG_REQUIRE(measured_mhz > 0.0);

  // Base tolerance = the one with the most samples.
  std::map<double, std::size_t> by_tol;
  for (const auto& s : samples) ++by_tol[s.tol];
  base_tol_ = std::max_element(by_tol.begin(), by_tol.end(), [](const auto& a, const auto& b) {
                return a.second < b.second;
              })->first;

  // Least squares for sec = A*x + B*y with x = cells, y = cells * 2^min.
  double sxx = 0, sxy = 0, syy = 0, sxs = 0, sys = 0;
  for (const auto& s : samples) {
    if (s.tol != base_tol_) continue;
    const grid::Grid2D g(s.root, s.lx, s.ly);
    const double x = cells_of(g);
    const double y = x * std::pow(2.0, std::min(s.lx, s.ly));
    sxx += x * x;
    sxy += x * y;
    syy += y * y;
    sxs += x * s.seconds;
    sys += y * s.seconds;
  }
  const double det = sxx * syy - sxy * sxy;
  double a, b;
  if (std::abs(det) > 1e-30 && syy > 0.0) {
    a = (sxs * syy - sys * sxy) / det;
    b = (sxx * sys - sxy * sxs) / det;
  } else {
    a = sxx > 0.0 ? sxs / sxx : 1e-7;
    b = 0.0;
  }
  c_ = std::max(a, 1e-12);
  kappa_ = c_ > 0.0 ? std::max(b / c_, 0.0) : 0.0;

  // Tolerance factor from the other-tolerance samples.
  double ratio_sum = 0.0;
  std::size_t ratio_count = 0;
  for (const auto& s : samples) {
    if (s.tol == base_tol_) continue;
    const grid::Grid2D g(s.root, s.lx, s.ly);
    const double predicted = c_ * cells_of(g) * aspect_weight(g, kappa_);
    if (predicted > 0.0) {
      ratio_sum += s.seconds / predicted;
      ++ratio_count;
    }
  }
  tol_factor_ = ratio_count > 0 ? ratio_sum / static_cast<double>(ratio_count) : 2.0;
}

double MeasuredCostModel::subsolve_seconds(const grid::Grid2D& g, double tol, double mhz) const {
  const double speed = mhz / measured_mhz_;
  const double base = c_ * cells_of(g) * aspect_weight(g, kappa_);
  const double factor = tol == base_tol_ ? 1.0 : tol_factor_;
  return base * factor / speed;
}

double MeasuredCostModel::prolongation_seconds(int root, int level, double mhz) const {
  const double speed = mhz / measured_mhz_;
  double component_cells = 0.0;
  for (const auto& term : grid::combination_terms(root, level)) {
    component_cells += cells_of(term.grid);
  }
  return 2e-7 * component_cells / speed;
}

double MeasuredCostModel::init_seconds(double mhz) const { return 0.02 / (mhz / measured_mhz_); }

}  // namespace mg::cluster
