// Virtual-time simulation of the distributed master/worker run (§6-§7).
//
// Executes the exact event sequence of ProtocolMW — create_pool, per-worker
// create_worker / reference / data marshalling, compute, result return,
// death_worker, rendezvous, prolongation — on a simulated cluster (hosts
// with clock speeds, a 100 Mbps network, task-instance spawn costs,
// perpetual-task reuse via the same TaskManager policy the real runtime
// uses), and reports the quantities of Table 1: sequential time st,
// concurrent time ct, time-weighted machine count m, speedup su, plus the
// ebb & flow machine series of Figure 1.
//
// Timing structure (calibrated against Table 1; see DESIGN.md §6):
//  * startup_s           — application boot (MLINK tables, CONFIG, master task)
//  * create_new_task_s   — serial coordinator/CONFIG cost to fork a task
//                          instance on a fresh machine (gates the master)
//  * reuse_task_s        — serial cost to hand a worker to an idle perpetual task
//  * worker_setup_s      — per-worker on-host setup, parallel across hosts
//  * event_latency_s     — one protocol event hop
//  * result_handling_s   — master-side bookkeeping per collected result
//  * death_tail_s        — worker lifetime after its result until "Bye"
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cost_model.hpp"
#include "cluster/host.hpp"
#include "cluster/network.hpp"
#include "fault/fault_plan.hpp"
#include "fleet/churn.hpp"
#include "grid/grid2d.hpp"
#include "obs/span.hpp"
#include "trace/ebb_flow.hpp"

namespace mg::cluster {

struct OverheadModel {
  double startup_s = 5.0;
  double create_new_task_s = 1.5;
  double reuse_task_s = 0.1;
  double worker_setup_s = 2.2;
  double event_latency_s = 0.004;
  double result_handling_s = 0.05;
  double death_tail_s = 0.8;
};

struct SimConfig {
  ClusterSpec cluster = ClusterSpec::paper();
  NetworkModel network;
  OverheadModel overhead;
  bool pool_per_family = false;   ///< one pool per lm family (ablation)
  bool perpetual_tasks = true;    ///< MLINK {perpetual} (ablation when false)
  double noise_amplitude = 0.08;  ///< multi-user slowdown, U[0, amp] extra
  /// §7: "some users ... run their own job(s) at night, run screen savers or
  /// have runaway Netscape jobs."  With this probability a host carries a
  /// background job for the whole run, dividing its effective speed by
  /// `background_slowdown`.  Off by default; the ablation bench turns it on.
  double background_job_probability = 0.0;
  double background_slowdown = 2.0;
  int runs = 5;                   ///< the paper's five-run averaging
  std::uint64_t seed = 2004;
  /// Within-grid parallelism (DESIGN.md §14): each worker's subsolve runs on
  /// an inner team of this many members, dividing its compute cost by the
  /// Amdahl speedup CostModel::inner_team_speedup(inner_threads).  Applies
  /// to worker compute, deadline expectations and the degraded local
  /// recompute alike; the sequential baseline stays single-core, matching
  /// the paper's /bin/time column.  1 = off.
  std::uint32_t inner_threads = 1;
  /// Optional span sink (not owned).  The simulator records its virtual-time
  /// schedule — spawn/marshal/compute/result intervals — as spans, in the
  /// same format the real threaded runtime emits against the wall clock.
  obs::SpanTracer* tracer = nullptr;
  /// Seeded fault injection (simulator-side faults: host_crash, net_drop,
  /// net_slow).  The fault stream is independent of the timing-noise RNG, so
  /// an all-zero config leaves the schedule bit-identical to a fault-free
  /// build.  Host crashes are silent: the master detects them at a per-task
  /// deadline derived from the cost model (`retry.deadline_cost_factor` x
  /// the expected compute time, floored by `retry.task_deadline`), then
  /// re-dispatches with the same capped-backoff / attempt-cap /
  /// respawn-budget policy as the threaded protocol; exhausted slots degrade
  /// to a local recompute on the start-up machine.
  fault::FaultPlanConfig faults;
  /// Recovery contract mirrored from the threaded runtime (one struct, two
  /// execution paths).
  fault::RetryPolicy retry;
};

/// Per-worker schedule detail of one simulated run.
struct WorkerTimeline {
  std::size_t index = 0;
  grid::Grid2D grid{2, 0, 0};
  std::string host;
  std::uint64_t task_id = 0;
  bool new_task = false;
  double requested = 0;      ///< master raises create_worker
  double ready = 0;          ///< reference received by master
  double input_done = 0;     ///< work data fully marshalled to the worker
  double compute_start = 0;
  double compute_end = 0;
  double result_done = 0;    ///< result fully transferred to the master
  double death = 0;          ///< death_worker raised ("Bye")
};

/// Virtual busy/idle split of one simulated workstation over a run.
struct HostUsage {
  std::string host;
  double busy_seconds = 0;  ///< compute booked on this host's CPU timeline
  double idle_seconds = 0;  ///< concurrent_seconds - busy_seconds
};

struct SimRunResult {
  double sequential_seconds = 0;  ///< model st on the start-up machine
  double concurrent_seconds = 0;  ///< model ct of the distributed run
  trace::EbbFlowSeries ebb_flow;  ///< machines in use vs time (Figure 1)
  double weighted_machines = 0;   ///< Table 1's m
  int peak_machines = 0;
  std::size_t tasks_spawned = 0;  ///< task instances forked over the run
  std::size_t network_bytes = 0;  ///< payload bytes over the simulated network
  std::vector<HostUsage> host_usage;  ///< per-host virtual busy/idle
  std::vector<WorkerTimeline> workers;
  /// Injection + recovery ledger of this run (host crashes, dropped/slowed
  /// transfers, retries, respawns, abandoned slots).
  fault::FaultCounters faults;
};

/// One row of Table 1.
struct TableRow {
  int level = 0;
  double tol = 0;
  double st = 0;
  double ct = 0;
  double m = 0;
  double su = 0;
};

/// Simulates one run (deterministic in `seed`).
SimRunResult simulate_run(int root, int level, double tol, const CostModel& cost,
                          const SimConfig& config, std::uint64_t seed);

/// Result of one elastic-fleet run under a churn plan (simulate_churn_run).
struct ChurnSimResult {
  double concurrent_seconds = 0;   ///< virtual time to the last first result
  trace::EbbFlowSeries machines;   ///< fleet size vs time under churn (fig1)
  double weighted_machines = 0;
  int peak_machines = 0;
  std::size_t terms_total = 0;
  /// Term indices in first-completion order.  Every term appears exactly
  /// once no matter how much churn / stealing / speculation occurred — the
  /// simulator's analogue of the bit-identity invariant (the sim carries no
  /// solution payloads, so exactly-once completion *is* the result
  /// contract).
  std::vector<std::size_t> completion_order;
  fleet::FleetCounters fleet;
};

/// Elastic-fleet variant of the simulator: the work units are leased across
/// per-host queues, hosts join / leave / crash in virtual time per the
/// seeded churn plan, an idle host steals from the most-loaded queue, and a
/// unit past its soft deadline (RetryPolicy::deadline_cost_factor x the
/// expected compute, floored by task_deadline) is speculatively re-issued to
/// an idle host with first-completion-wins dedup.  A graceful Leave
/// re-leases the victim's units immediately; a Crash is silent and its units
/// re-lease only once the deadline detects the loss.  Coarser than
/// simulate_run (no master-link or spawner contention — the fleet schedule
/// is the object of study) but driven by the same cost model.  Deterministic
/// in (config.seed, churn): timing noise is hashed per (term, attempt), so
/// event ordering cannot perturb it.
ChurnSimResult simulate_churn_run(int root, int level, double tol, const CostModel& cost,
                                  const SimConfig& config, const fleet::ChurnPlanConfig& churn);

/// Averages `config.runs` runs into one Table-1 row (su = mean st / mean ct).
TableRow simulate_table_row(int root, int level, double tol, const CostModel& cost,
                            const SimConfig& config);

/// Full table for levels [0, max_level] at one tolerance.
std::vector<TableRow> simulate_table(int root, int max_level, double tol, const CostModel& cost,
                                     const SimConfig& config);

}  // namespace mg::cluster
