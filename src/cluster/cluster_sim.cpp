#include "cluster/cluster_sim.hpp"

#include <algorithm>
#include <map>
#include <queue>

#include "grid/combination.hpp"
#include "manifold/task.hpp"
#include "obs/metrics.hpp"
#include "sim/timeline.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "transport/subsolve.hpp"

namespace mg::cluster {

namespace {
struct SimMetrics {
  obs::Counter& runs = obs::registry().counter("cluster.sim_runs");
  obs::Counter& workers = obs::registry().counter("cluster.sim_workers");
  obs::Counter& tasks_spawned = obs::registry().counter("cluster.sim_tasks_spawned");
  obs::Counter& network_bytes = obs::registry().counter("cluster.sim_network_bytes");
};

SimMetrics& sim_metrics() {
  static SimMetrics m;
  return m;
}
}  // namespace

namespace {

iwim::HostMap host_map_from(const ClusterSpec& cluster) {
  iwim::HostMap map;
  map.startup_host = cluster.hosts.front().name;
  for (std::size_t i = 1; i < cluster.hosts.size(); ++i) {
    map.worker_hosts.push_back(cluster.hosts[i].name);
  }
  return map;
}

struct PendingRelease {
  double time;
  std::uint64_t task_id;
  bool operator>(const PendingRelease& other) const { return time > other.time; }
};

}  // namespace

SimRunResult simulate_run(int root, int level, double tol, const CostModel& cost,
                          const SimConfig& config, std::uint64_t seed) {
  MG_REQUIRE(level >= 0);
  support::Xoshiro256 rng(seed);
  const OverheadModel& oh = config.overhead;
  const double startup_mhz = config.cluster.startup().mhz;

  std::map<std::string, double> mhz_by_host;
  for (const auto& h : config.cluster.hosts) {
    double mhz = h.mhz;
    // Run-long background jobs (screen savers, runaway Netscape, §7).
    if (config.background_job_probability > 0.0 &&
        rng.uniform01() < config.background_job_probability) {
      mhz /= config.background_slowdown;
    }
    mhz_by_host[h.name] = mhz;
  }

  auto noise = [&]() { return 1.0 + config.noise_amplitude * rng.uniform01(); };

  // ---- sequential model (the baseline the paper times with /bin/time) ----
  double st = cost.init_seconds(startup_mhz);
  const auto terms = grid::combination_terms(root, level);
  for (const auto& term : terms) {
    st += cost.subsolve_seconds(term.grid, tol, startup_mhz) * noise();
  }
  st += cost.prolongation_seconds(root, level, startup_mhz) * noise();

  // ---- concurrent (distributed) model ----
  iwim::TaskCompositionSpec task_spec = iwim::TaskCompositionSpec::paper_distributed();
  task_spec.perpetual = config.perpetual_tasks;
  iwim::TaskManager tasks(task_spec, host_map_from(config.cluster));

  sim::Timeline spawner;                          // coordinator/CONFIG, serial
  sim::Timeline net;                              // the master's network link
  std::map<std::string, sim::Timeline> host_cpu;  // per-host compute

  std::priority_queue<PendingRelease, std::vector<PendingRelease>, std::greater<>> releases;
  auto apply_releases = [&](double up_to) {
    while (!releases.empty() && releases.top().time <= up_to) {
      tasks.release(releases.top().task_id, "Worker", releases.top().time);
      releases.pop();
    }
  };

  // Master's task instance occupies the start-up machine for the whole run.
  const std::uint64_t master_task = tasks.place("Master", 0.0);

  double master_clock = oh.startup_s + cost.init_seconds(startup_mhz);

  SimRunResult result;
  result.sequential_seconds = st;
  result.workers.reserve(terms.size());

  obs::SpanTracer* tracer = config.tracer;
  auto span = [&](std::string name, std::string track, double start, double end) {
    if (tracer != nullptr) tracer->record({std::move(name), "sim", std::move(track), start, end});
  };

  // Family grouping: single pool by default; one pool per lm when requested.
  std::vector<std::pair<std::size_t, std::size_t>> groups;  // (first, count)
  if (config.pool_per_family && level >= 1) {
    groups.push_back({0, static_cast<std::size_t>(level)});
    groups.push_back({static_cast<std::size_t>(level), terms.size() - static_cast<std::size_t>(level)});
  } else {
    groups.push_back({0, terms.size()});
  }

  for (const auto& [first, count] : groups) {
    master_clock += oh.event_latency_s;  // raise create_pool
    std::vector<double> arrivals;
    std::vector<double> deaths;
    arrivals.reserve(count);
    deaths.reserve(count);

    for (std::size_t k = first; k < first + count; ++k) {
      const grid::Grid2D& g = terms[k].grid;
      WorkerTimeline w;
      w.index = k;
      w.grid = g;

      w.requested = master_clock + oh.event_latency_s;  // raise create_worker
      apply_releases(w.requested);
      const std::size_t created_before = tasks.stats().tasks_created;
      w.task_id = tasks.place("Worker", w.requested);
      w.new_task = tasks.stats().tasks_created > created_before;
      w.host = tasks.task(w.task_id).host;
      const double host_mhz = mhz_by_host.at(w.host);

      // Coordinator creates the worker (serial): forking a fresh task
      // instance on a new machine is expensive; handing the worker to an
      // idle perpetual task is cheap.
      const double create_cost = w.new_task ? oh.create_new_task_s : oh.reuse_task_s;
      const sim::Interval spawn = spawner.reserve(w.requested, create_cost);
      w.ready = spawn.end + oh.event_latency_s;  // &worker reference at master
      span(w.new_task ? "spawn:new" : "spawn:reuse", "spawner", spawn.start, spawn.end);

      // Master marshals the work data through its network link.
      const std::size_t payload = transport::subsolve_payload_bytes(g);
      const sim::Interval marshal = net.reserve(w.ready, config.network.transfer_seconds(payload));
      w.input_done = marshal.end + oh.event_latency_s;
      master_clock = marshal.end;  // master's loop proceeds to the next worker
      result.network_bytes += payload;
      span("marshal:" + g.name(), "network", marshal.start, marshal.end);

      // On-host setup happens in parallel with the marshalling.
      const double setup_done = w.ready + oh.worker_setup_s;
      const double compute_cost =
          cost.subsolve_seconds(g, tol, host_mhz) * noise();
      const sim::Interval comp =
          host_cpu[w.host].reserve(std::max(w.input_done, setup_done), compute_cost);
      w.compute_start = comp.start;
      w.compute_end = comp.end;

      // Result returns through the KK stream.  The switched Ethernet is
      // full duplex: results do not contend with the master's outbound
      // marshalling, and they are small relative to compute, so inbound
      // contention is neglected (reserving them on the shared timeline here
      // would violate causality — they complete far in the future relative
      // to the master's send loop).
      w.result_done = comp.end + config.network.transfer_seconds(payload);
      w.death = w.result_done + oh.death_tail_s;
      result.network_bytes += payload;  // the result returning over the KK stream
      span("compute:" + g.name(), w.host, comp.start, comp.end);
      span("result:" + g.name(), "network", comp.end, w.result_done);

      arrivals.push_back(w.result_done + oh.event_latency_s);
      deaths.push_back(w.death);
      releases.push({w.death, w.task_id});
      result.workers.push_back(w);
    }

    // Master collects the results in arrival order (step 3(f)).
    std::sort(arrivals.begin(), arrivals.end());
    double collect = master_clock;
    for (double a : arrivals) collect = std::max(collect, a) + oh.result_handling_s;

    // Rendezvous: the coordinator has counted every death_worker (3(g)/(h)).
    const double all_dead =
        deaths.empty() ? master_clock : *std::max_element(deaths.begin(), deaths.end());
    master_clock = std::max(collect, all_dead + oh.event_latency_s) + 2.0 * oh.event_latency_s;
    apply_releases(master_clock);
  }

  // finished + final sequential prolongation on the start-up machine.
  master_clock += oh.event_latency_s;
  master_clock += cost.prolongation_seconds(root, level, startup_mhz) * noise();
  apply_releases(master_clock);
  tasks.release(master_task, "Master", master_clock);

  result.concurrent_seconds = master_clock;
  result.ebb_flow = trace::build_ebb_flow(tasks.stats().machine_events, master_clock);
  result.weighted_machines = result.ebb_flow.weighted_average();
  result.peak_machines = result.ebb_flow.peak();
  result.tasks_spawned = tasks.stats().tasks_created;

  // Virtual busy/idle per workstation (busy = booked compute; the start-up
  // machine additionally hosts the master for the whole run).
  result.host_usage.reserve(config.cluster.hosts.size());
  for (const auto& h : config.cluster.hosts) {
    HostUsage usage;
    usage.host = h.name;
    const auto it = host_cpu.find(h.name);
    usage.busy_seconds = it != host_cpu.end() ? it->second.busy_time() : 0.0;
    usage.idle_seconds = std::max(0.0, master_clock - usage.busy_seconds);
    result.host_usage.push_back(std::move(usage));
  }
  span("master", config.cluster.startup().name, 0.0, master_clock);

  SimMetrics& metrics = sim_metrics();
  metrics.runs.add();
  metrics.workers.add(result.workers.size());
  metrics.tasks_spawned.add(result.tasks_spawned);
  metrics.network_bytes.add(result.network_bytes);
  return result;
}

TableRow simulate_table_row(int root, int level, double tol, const CostModel& cost,
                            const SimConfig& config) {
  MG_REQUIRE(config.runs >= 1);
  TableRow row;
  row.level = level;
  row.tol = tol;
  double st_sum = 0, ct_sum = 0, m_sum = 0;
  for (int r = 0; r < config.runs; ++r) {
    const SimRunResult run =
        simulate_run(root, level, tol, cost, config, config.seed + static_cast<std::uint64_t>(r));
    st_sum += run.sequential_seconds;
    ct_sum += run.concurrent_seconds;
    m_sum += run.weighted_machines;
  }
  row.st = st_sum / config.runs;
  row.ct = ct_sum / config.runs;
  row.m = m_sum / config.runs;
  row.su = row.ct > 0 ? row.st / row.ct : 0.0;
  return row;
}

std::vector<TableRow> simulate_table(int root, int max_level, double tol, const CostModel& cost,
                                     const SimConfig& config) {
  std::vector<TableRow> rows;
  rows.reserve(static_cast<std::size_t>(max_level) + 1);
  for (int level = 0; level <= max_level; ++level) {
    rows.push_back(simulate_table_row(root, level, tol, cost, config));
  }
  return rows;
}

}  // namespace mg::cluster
