#include "cluster/cluster_sim.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <map>
#include <numeric>
#include <queue>

#include "grid/combination.hpp"
#include "manifold/task.hpp"
#include "obs/metrics.hpp"
#include "sim/timeline.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "transport/subsolve.hpp"

namespace mg::cluster {

namespace {
struct SimMetrics {
  obs::Counter& runs = obs::registry().counter("cluster.sim_runs");
  obs::Counter& workers = obs::registry().counter("cluster.sim_workers");
  obs::Counter& tasks_spawned = obs::registry().counter("cluster.sim_tasks_spawned");
  obs::Counter& network_bytes = obs::registry().counter("cluster.sim_network_bytes");
};

SimMetrics& sim_metrics() {
  static SimMetrics m;
  return m;
}
}  // namespace

namespace {

iwim::HostMap host_map_from(const ClusterSpec& cluster) {
  iwim::HostMap map;
  map.startup_host = cluster.hosts.front().name;
  for (std::size_t i = 1; i < cluster.hosts.size(); ++i) {
    map.worker_hosts.push_back(cluster.hosts[i].name);
  }
  return map;
}

struct PendingRelease {
  double time;
  std::uint64_t task_id;
  bool operator>(const PendingRelease& other) const { return time > other.time; }
};

}  // namespace

SimRunResult simulate_run(int root, int level, double tol, const CostModel& cost,
                          const SimConfig& config, std::uint64_t seed) {
  MG_REQUIRE(level >= 0);
  support::Xoshiro256 rng(seed);
  const OverheadModel& oh = config.overhead;
  const double startup_mhz = config.cluster.startup().mhz;

  std::map<std::string, double> mhz_by_host;
  for (const auto& h : config.cluster.hosts) {
    double mhz = h.mhz;
    // Run-long background jobs (screen savers, runaway Netscape, §7).
    if (config.background_job_probability > 0.0 &&
        rng.uniform01() < config.background_job_probability) {
      mhz /= config.background_slowdown;
    }
    mhz_by_host[h.name] = mhz;
  }

  auto noise = [&]() { return 1.0 + config.noise_amplitude * rng.uniform01(); };
  // Within-grid parallelism: worker compute shrinks by the Amdahl factor for
  // the configured inner team.  The sequential baseline below deliberately
  // does not — it models the paper's single-core /bin/time column.
  const double inner = CostModel::inner_team_speedup(config.inner_threads);

  // ---- sequential model (the baseline the paper times with /bin/time) ----
  double st = cost.init_seconds(startup_mhz);
  const auto terms = grid::combination_terms(root, level);
  for (const auto& term : terms) {
    st += cost.subsolve_seconds(term.grid, tol, startup_mhz) * noise();
  }
  st += cost.prolongation_seconds(root, level, startup_mhz) * noise();

  // ---- concurrent (distributed) model ----
  iwim::TaskCompositionSpec task_spec = iwim::TaskCompositionSpec::paper_distributed();
  task_spec.perpetual = config.perpetual_tasks;
  iwim::TaskManager tasks(task_spec, host_map_from(config.cluster));

  sim::Timeline spawner;                          // coordinator/CONFIG, serial
  sim::Timeline net;                              // the master's network link
  std::map<std::string, sim::Timeline> host_cpu;  // per-host compute

  std::priority_queue<PendingRelease, std::vector<PendingRelease>, std::greater<>> releases;
  auto apply_releases = [&](double up_to) {
    while (!releases.empty() && releases.top().time <= up_to) {
      tasks.release(releases.top().task_id, "Worker", releases.top().time);
      releases.pop();
    }
  };

  // Master's task instance occupies the start-up machine for the whole run.
  const std::uint64_t master_task = tasks.place("Master", 0.0);

  double master_clock = oh.startup_s + cost.init_seconds(startup_mhz);

  SimRunResult result;
  result.sequential_seconds = st;
  result.workers.reserve(terms.size());

  obs::SpanTracer* tracer = config.tracer;
  auto span = [&](std::string name, std::string track, double start, double end) {
    if (tracer != nullptr) tracer->record({std::move(name), "sim", std::move(track), start, end});
  };
  auto fault_span = [&](std::string name, std::string track, double start, double end) {
    if (tracer != nullptr) tracer->record({std::move(name), "fault", std::move(track), start, end});
  };

  // Fault injection: decisions come from their own hashed stream (never the
  // timing-noise RNG), so an all-zero fault config cannot perturb the
  // schedule.  Incarnation/transfer ordinals advance deterministically with
  // the dispatch order.
  const bool injecting = config.faults.any();
  const fault::FaultPlan plan(config.faults);
  const fault::RetryPolicy& retry = config.retry;
  const double policy_deadline_s =
      std::chrono::duration<double>(retry.task_deadline).count();
  std::uint64_t incarnation = 0;
  std::uint64_t transfer_ordinal = 0;
  std::size_t respawns_used = 0;

  // Family grouping: single pool by default; one pool per lm when requested.
  std::vector<std::pair<std::size_t, std::size_t>> groups;  // (first, count)
  if (config.pool_per_family && level >= 1) {
    groups.push_back({0, static_cast<std::size_t>(level)});
    groups.push_back({static_cast<std::size_t>(level), terms.size() - static_cast<std::size_t>(level)});
  } else {
    groups.push_back({0, terms.size()});
  }

  for (const auto& [first, count] : groups) {
    master_clock += oh.event_latency_s;  // raise create_pool
    std::vector<double> arrivals;
    std::vector<double> deaths;
    arrivals.reserve(count);
    deaths.reserve(count);
    double fallback_s = 0;  // degraded slots recomputed on the start-up machine

    // One dispatch = one worker incarnation: spawn, marshal (with drop /
    // slowdown injection), compute (with host-crash injection).  Returns the
    // arrival time of the result, or — on a crash — the time the master's
    // per-task deadline detects the silent loss.
    struct DispatchOutcome {
      bool success = false;
      double marshal_end = 0;
      double arrival = 0;  ///< result at master (success only)
      double detect = 0;   ///< loss detected at the deadline (failure only)
    };
    auto dispatch = [&](std::size_t k, WorkerTimeline& w, double gate) -> DispatchOutcome {
      DispatchOutcome out;
      const grid::Grid2D& g = terms[k].grid;
      const std::uint64_t inc = incarnation++;

      w.requested = gate + oh.event_latency_s;  // raise create_worker / respawn
      apply_releases(w.requested);
      const std::size_t created_before = tasks.stats().tasks_created;
      w.task_id = tasks.place("Worker", w.requested);
      w.new_task = tasks.stats().tasks_created > created_before;
      w.host = tasks.task(w.task_id).host;
      const double host_mhz = mhz_by_host.at(w.host);

      // Coordinator creates the worker (serial): forking a fresh task
      // instance on a new machine is expensive; handing the worker to an
      // idle perpetual task is cheap.
      const double create_cost = w.new_task ? oh.create_new_task_s : oh.reuse_task_s;
      const sim::Interval spawn = spawner.reserve(w.requested, create_cost);
      w.ready = spawn.end + oh.event_latency_s;  // &worker reference at master
      span(w.new_task ? "spawn:new" : "spawn:reuse", "spawner", spawn.start, spawn.end);

      // Master marshals the work data through its network link.  A dropped
      // transfer costs its full duration plus an ack-timeout hop before the
      // retransmission; a slowed transfer stretches by net_slow_factor.
      const std::size_t payload = transport::subsolve_payload_bytes(g);
      const double xfer = config.network.transfer_seconds(payload);
      double send_at = w.ready;
      int resends = 0;
      for (;;) {
        const std::uint64_t t = transfer_ordinal++;
        const double slow = injecting ? plan.transfer_slowdown(t) : 1.0;
        if (slow > 1.0) result.faults.net_slowdowns_injected += 1;
        const sim::Interval marshal = net.reserve(send_at, xfer * slow);
        result.network_bytes += payload;
        span("marshal:" + g.name(), "network", marshal.start, marshal.end);
        if (injecting && resends < 16 && plan.drops_transfer(t)) {
          result.faults.net_drops_injected += 1;
          ++resends;
          fault_span("net_drop:" + g.name(), "network", marshal.start, marshal.end);
          send_at = marshal.end + oh.event_latency_s;
          continue;
        }
        w.input_done = marshal.end + oh.event_latency_s;
        out.marshal_end = marshal.end;
        break;
      }

      // On-host setup happens in parallel with the marshalling.
      const double setup_done = w.ready + oh.worker_setup_s;
      const double compute_cost = cost.subsolve_seconds(g, tol, host_mhz) / inner * noise();
      if (injecting && plan.host_crashes(inc)) {
        // The host dies partway through the compute.  The loss is silent —
        // no death_worker will ever arrive — so the master only learns of it
        // when the per-task deadline (cost-model floor, so slow-but-alive
        // hosts are never killed) expires.
        const double frac = plan.host_crash_fraction(inc);
        const sim::Interval part =
            host_cpu[w.host].reserve(std::max(w.input_done, setup_done), compute_cost * frac);
        w.compute_start = part.start;
        w.compute_end = part.end;
        w.result_done = 0;
        w.death = part.end;
        result.faults.host_crashes_injected += 1;
        fault_span("host_crash:" + g.name(), w.host, part.start, part.end);
        const double expected = cost.subsolve_seconds(g, tol, host_mhz) / inner;
        const double deadline_s =
            std::max(policy_deadline_s, retry.deadline_cost_factor * expected);
        out.detect = w.input_done + deadline_s;
        result.faults.timeouts += 1;
        releases.push({out.detect, w.task_id});
        return out;
      }
      const sim::Interval comp =
          host_cpu[w.host].reserve(std::max(w.input_done, setup_done), compute_cost);
      w.compute_start = comp.start;
      w.compute_end = comp.end;

      // Result returns through the KK stream.  The switched Ethernet is
      // full duplex: results do not contend with the master's outbound
      // marshalling, and they are small relative to compute, so inbound
      // contention is neglected (reserving them on the shared timeline here
      // would violate causality — they complete far in the future relative
      // to the master's send loop).
      w.result_done = comp.end + config.network.transfer_seconds(payload);
      w.death = w.result_done + oh.death_tail_s;
      result.network_bytes += payload;  // the result returning over the KK stream
      span("compute:" + g.name(), w.host, comp.start, comp.end);
      span("result:" + g.name(), "network", comp.end, w.result_done);

      releases.push({w.death, w.task_id});
      out.success = true;
      out.arrival = w.result_done + oh.event_latency_s;
      return out;
    };

    // Failed attempt `attempt` of slot widx: retry under the shared policy,
    // or degrade — the master receives the abandonment at detection time and
    // recomputes the grid itself on the start-up machine.
    struct PendingRetry {
      std::size_t k = 0;
      std::size_t widx = 0;
      std::size_t attempt = 0;  ///< the attempt about to run
      double earliest = 0;
    };
    std::vector<PendingRetry> retry_queue;
    auto handle_failure = [&](std::size_t k, std::size_t widx, std::size_t attempt,
                              double detect) {
      if (attempt < retry.max_attempts && respawns_used < retry.respawn_budget) {
        respawns_used += 1;
        result.faults.retries += 1;
        result.faults.respawns += 1;
        const double backoff = retry.backoff_seconds_for(attempt);
        fault_span("backoff:" + terms[k].grid.name(), "spawner", detect, detect + backoff);
        retry_queue.push_back({k, widx, attempt + 1, detect + backoff});
      } else {
        result.faults.abandoned += 1;
        result.faults.degraded = true;
        arrivals.push_back(detect + oh.event_latency_s);  // the WorkAbandoned unit
        deaths.push_back(detect);
        fallback_s += cost.subsolve_seconds(terms[k].grid, tol, startup_mhz) / inner * noise();
      }
    };

    for (std::size_t k = first; k < first + count; ++k) {
      WorkerTimeline w;
      w.index = k;
      w.grid = terms[k].grid;
      const std::size_t widx = result.workers.size();
      result.workers.push_back(w);

      const DispatchOutcome out = dispatch(k, result.workers[widx], master_clock);
      master_clock = out.marshal_end;  // master's loop proceeds to the next worker
      if (out.success) {
        arrivals.push_back(out.arrival);
        deaths.push_back(result.workers[widx].death);
      } else {
        handle_failure(k, widx, 1, out.detect);
      }
    }

    // Retry rounds: respawned incarnations run while the master sits in its
    // collect loop, so they gate only the rendezvous, not further sends.
    // The queue grows as retried attempts fail again; index iteration keeps
    // the order (and therefore the ordinals) deterministic.
    for (std::size_t i = 0; i < retry_queue.size(); ++i) {
      const PendingRetry p = retry_queue[i];
      const DispatchOutcome out = dispatch(p.k, result.workers[p.widx], p.earliest);
      if (out.success) {
        arrivals.push_back(out.arrival);
        deaths.push_back(result.workers[p.widx].death);
      } else {
        handle_failure(p.k, p.widx, p.attempt, out.detect);
      }
    }

    // Master collects the results in arrival order (step 3(f)), then
    // recomputes whatever the pool abandoned.
    std::sort(arrivals.begin(), arrivals.end());
    double collect = master_clock;
    for (double a : arrivals) collect = std::max(collect, a) + oh.result_handling_s;
    if (fallback_s > 0) {
      fault_span("local_fallback", config.cluster.startup().name, collect,
                 collect + fallback_s);
      collect += fallback_s;
    }

    // Rendezvous: the coordinator has counted every death_worker (3(g)/(h)).
    const double all_dead =
        deaths.empty() ? master_clock : *std::max_element(deaths.begin(), deaths.end());
    master_clock = std::max(collect, all_dead + oh.event_latency_s) + 2.0 * oh.event_latency_s;
    apply_releases(master_clock);
  }

  // finished + final sequential prolongation on the start-up machine.
  master_clock += oh.event_latency_s;
  master_clock += cost.prolongation_seconds(root, level, startup_mhz) * noise();
  apply_releases(master_clock);
  tasks.release(master_task, "Master", master_clock);

  result.concurrent_seconds = master_clock;
  result.ebb_flow = trace::build_ebb_flow(tasks.stats().machine_events, master_clock);
  result.weighted_machines = result.ebb_flow.weighted_average();
  result.peak_machines = result.ebb_flow.peak();
  result.tasks_spawned = tasks.stats().tasks_created;

  // Virtual busy/idle per workstation (busy = booked compute; the start-up
  // machine additionally hosts the master for the whole run).
  result.host_usage.reserve(config.cluster.hosts.size());
  for (const auto& h : config.cluster.hosts) {
    HostUsage usage;
    usage.host = h.name;
    const auto it = host_cpu.find(h.name);
    usage.busy_seconds = it != host_cpu.end() ? it->second.busy_time() : 0.0;
    usage.idle_seconds = std::max(0.0, master_clock - usage.busy_seconds);
    result.host_usage.push_back(std::move(usage));
  }
  span("master", config.cluster.startup().name, 0.0, master_clock);

  SimMetrics& metrics = sim_metrics();
  metrics.runs.add();
  metrics.workers.add(result.workers.size());
  metrics.tasks_spawned.add(result.tasks_spawned);
  metrics.network_bytes.add(result.network_bytes);
  return result;
}

// ---------------------------------------------------------------------------
// Elastic fleet under churn
// ---------------------------------------------------------------------------

namespace {

/// Hashed per-(term, attempt) timing noise — a pure function of the seed, so
/// churn-induced reordering of dispatches cannot perturb any unit's duration.
double churn_noise(std::uint64_t seed, std::size_t term, std::size_t attempt, double amp) {
  support::SplitMix64 sm(seed ^ (static_cast<std::uint64_t>(term) + 1) * 0x9e3779b97f4a7c15ULL ^
                         (static_cast<std::uint64_t>(attempt) + 1) * 0xbf58476d1ce4e5b9ULL);
  const double u = static_cast<double>(sm.next() >> 11) * (1.0 / 9007199254740992.0);
  return 1.0 + amp * u;
}

struct ElasticHost {
  std::string name;
  double mhz = 0;
  bool active = false;
  bool busy = false;
  std::size_t current = 0;  ///< term in flight (valid while busy)
  double started = 0;
  std::uint64_t gen = 0;  ///< bumped when a lease is cancelled; voids its completion
  std::deque<std::size_t> queue;  ///< leased to this host, not yet started

  std::size_t load() const { return (busy ? 1u : 0u) + queue.size(); }
};

enum class ChurnEvKind { Complete, Churn, Release };

struct ChurnEv {
  double time = 0;
  std::uint64_t seq = 0;  ///< insertion order — the deterministic tie-break
  ChurnEvKind kind = ChurnEvKind::Complete;
  std::size_t host = 0;       ///< Complete: the computing host
  std::uint64_t gen = 0;      ///< Complete: host generation at dispatch
  std::size_t churn_idx = 0;  ///< Churn: index into the plan's event list
  std::size_t term = 0;       ///< Complete / Release
  bool dispatched = false;    ///< Release: the unit was in flight (a true re-lease)
};

struct ChurnEvLater {
  bool operator()(const ChurnEv& a, const ChurnEv& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

}  // namespace

ChurnSimResult simulate_churn_run(int root, int level, double tol, const CostModel& cost,
                                  const SimConfig& config, const fleet::ChurnPlanConfig& churn) {
  MG_REQUIRE(level >= 0);
  MG_REQUIRE(config.cluster.hosts.size() >= 2);
  const OverheadModel& oh = config.overhead;
  const fleet::ChurnPlan plan(churn);
  const fault::RetryPolicy& retry = config.retry;
  const double policy_deadline_s = std::chrono::duration<double>(retry.task_deadline).count();

  const auto terms = grid::combination_terms(root, level);
  ChurnSimResult result;
  result.terms_total = terms.size();

  // Initial fleet: the cluster's worker hosts.  The start-up machine hosts
  // the master and stays out of the lease set.
  std::vector<ElasticHost> hosts;
  hosts.reserve(config.cluster.hosts.size() - 1 + churn.joins);
  for (std::size_t i = 1; i < config.cluster.hosts.size(); ++i) {
    ElasticHost h;
    h.name = config.cluster.hosts[i].name;
    h.mhz = config.cluster.hosts[i].mhz;
    h.active = true;
    hosts.push_back(std::move(h));
  }
  std::vector<trace::MachineEvent> machine_events;
  machine_events.reserve(hosts.size() + plan.events().size());
  for (std::size_t i = 0; i < hosts.size(); ++i) machine_events.push_back({0.0, +1});

  // Lease the terms heaviest-first, round-robin across the initial fleet.
  std::vector<std::size_t> order(terms.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&terms](std::size_t a, std::size_t b) {
    return transport::subsolve_payload_bytes(terms[a].grid) >
           transport::subsolve_payload_bytes(terms[b].grid);
  });
  for (std::size_t j = 0; j < order.size(); ++j) hosts[j % hosts.size()].queue.push_back(order[j]);

  std::vector<bool> done(terms.size(), false);
  std::vector<bool> speculated(terms.size(), false);
  std::vector<std::size_t> attempts(terms.size(), 0);
  std::size_t remaining = terms.size();

  std::priority_queue<ChurnEv, std::vector<ChurnEv>, ChurnEvLater> events;
  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < plan.events().size(); ++i) {
    ChurnEv ev;
    ev.time = plan.events()[i].at_seconds;
    ev.seq = seq++;
    ev.kind = ChurnEvKind::Churn;
    ev.churn_idx = i;
    events.push(ev);
  }

  const double inner = CostModel::inner_team_speedup(config.inner_threads);
  auto expected_compute = [&](std::size_t term, double mhz) {
    return cost.subsolve_seconds(terms[term].grid, tol, mhz) / inner;
  };
  auto soft_deadline = [&](std::size_t term, double mhz) {
    return std::max(policy_deadline_s, retry.deadline_cost_factor * expected_compute(term, mhz));
  };

  auto start_unit = [&](std::size_t hi, std::size_t term, double now) {
    ElasticHost& h = hosts[hi];
    h.busy = true;
    h.current = term;
    h.started = now;
    const std::size_t attempt = ++attempts[term];
    const std::size_t payload = transport::subsolve_payload_bytes(terms[term].grid);
    const double xfer = config.network.transfer_seconds(payload);
    const double dur = oh.reuse_task_s + 2.0 * xfer +
                       expected_compute(term, h.mhz) *
                           churn_noise(config.seed, term, attempt, config.noise_amplitude);
    ChurnEv ev;
    ev.time = now + dur;
    ev.seq = seq++;
    ev.kind = ChurnEvKind::Complete;
    ev.host = hi;
    ev.gen = h.gen;
    ev.term = term;
    events.push(ev);
  };

  auto least_loaded = [&]() -> std::size_t {
    std::size_t best = hosts.size();
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      if (!hosts[i].active) continue;
      if (best == hosts.size() || hosts[i].load() < hosts[best].load()) best = i;
    }
    return best;
  };

  // One scheduling sweep: starts queued units on idle hosts, lets an idle
  // empty-queue host steal from the deepest queue, and — when nothing is
  // left to steal — speculatively re-issues the most overdue in-flight unit.
  // One placement per pass, repeated until quiescent; all selections scan in
  // index order, so the schedule is deterministic.
  auto kick = [&](double now) {
    if (remaining == 0) return;
    for (;;) {
      std::size_t idle = hosts.size();
      for (std::size_t i = 0; i < hosts.size(); ++i) {
        if (hosts[i].active && !hosts[i].busy) {
          idle = i;
          break;
        }
      }
      if (idle == hosts.size()) return;
      if (!hosts[idle].queue.empty()) {
        const std::size_t term = hosts[idle].queue.front();
        hosts[idle].queue.pop_front();
        if (done[term]) continue;  // finished elsewhere while queued
        start_unit(idle, term, now);
        continue;
      }
      std::size_t donor = hosts.size();
      for (std::size_t i = 0; i < hosts.size(); ++i) {
        if (!hosts[i].active || hosts[i].queue.empty()) continue;
        if (donor == hosts.size() || hosts[i].queue.size() > hosts[donor].queue.size()) donor = i;
      }
      if (donor != hosts.size()) {
        const std::size_t term = hosts[donor].queue.front();
        hosts[donor].queue.pop_front();
        if (done[term]) continue;
        result.fleet.steals += 1;
        start_unit(idle, term, now);
        continue;
      }
      std::size_t overdue = hosts.size();
      double overdue_by = 0;
      for (std::size_t i = 0; i < hosts.size(); ++i) {
        const ElasticHost& h = hosts[i];
        if (!h.active || !h.busy || speculated[h.current] || done[h.current]) continue;
        const double by = (now - h.started) - soft_deadline(h.current, h.mhz);
        if (by >= 0 && (overdue == hosts.size() || by > overdue_by)) {
          overdue = i;
          overdue_by = by;
        }
      }
      if (overdue == hosts.size()) return;
      const std::size_t term = hosts[overdue].current;
      speculated[term] = true;
      result.fleet.releases += 1;
      start_unit(idle, term, now);
    }
  };
  kick(0.0);

  double last_result = 0.0;
  std::size_t joined = 0;
  while (remaining > 0 && !events.empty()) {
    const ChurnEv ev = events.top();
    events.pop();
    const double now = ev.time;
    switch (ev.kind) {
      case ChurnEvKind::Complete: {
        ElasticHost& h = hosts[ev.host];
        if (!h.active || h.gen != ev.gen || !h.busy) break;  // lease was cancelled
        h.busy = false;
        if (done[ev.term]) {
          result.fleet.duplicates += 1;  // speculative loser: discarded
        } else {
          done[ev.term] = true;
          result.completion_order.push_back(ev.term);
          remaining -= 1;
          last_result = now;
        }
        kick(now);
        break;
      }
      case ChurnEvKind::Churn: {
        const fleet::ChurnEvent& ce = plan.events()[ev.churn_idx];
        if (ce.kind == fleet::ChurnEventKind::Join) {
          ElasticHost h;
          h.name = "elastic-" + std::to_string(++joined);
          // Joiners clone the worker speeds round-robin, so the elastic
          // fleet stays as heterogeneous as the cluster it extends.
          const std::size_t base = 1 + (joined - 1) % (config.cluster.hosts.size() - 1);
          h.mhz = config.cluster.hosts[base].mhz;
          h.active = true;
          hosts.push_back(std::move(h));
          machine_events.push_back({now, +1});
          result.fleet.joins += 1;
          kick(now);  // the joiner steals (or speculates) immediately
          break;
        }
        // Leave / Crash: take down the most-loaded host — but never the
        // last one, or the remaining leases would strand.
        std::size_t active_count = 0;
        for (const auto& h : hosts) active_count += h.active ? 1 : 0;
        if (active_count <= 1) break;
        std::size_t victim = hosts.size();
        for (std::size_t i = 0; i < hosts.size(); ++i) {
          if (!hosts[i].active) continue;
          if (victim == hosts.size() || hosts[i].load() > hosts[victim].load()) victim = i;
        }
        ElasticHost& v = hosts[victim];
        const bool graceful = ce.kind == fleet::ChurnEventKind::Leave;
        // A graceful leaver hands its leases back at once; a crash is
        // silent, so the master only learns of the loss when the in-flight
        // unit's deadline expires.
        double relief = now;
        if (!graceful && v.busy) {
          relief = std::max(now, v.started + soft_deadline(v.current, v.mhz));
        }
        v.active = false;
        v.gen += 1;  // void the in-flight completion
        machine_events.push_back({now, -1});
        result.fleet.leaves += graceful ? 1 : 0;
        result.fleet.crashes += graceful ? 0 : 1;
        if (v.busy) {
          v.busy = false;
          ChurnEv rel;
          rel.time = relief;
          rel.seq = seq++;
          rel.kind = ChurnEvKind::Release;
          rel.term = v.current;
          rel.dispatched = true;
          events.push(rel);
        }
        while (!v.queue.empty()) {
          ChurnEv rel;
          rel.time = relief;
          rel.seq = seq++;
          rel.kind = ChurnEvKind::Release;
          rel.term = v.queue.front();
          events.push(rel);
          v.queue.pop_front();
        }
        kick(now);
        break;
      }
      case ChurnEvKind::Release: {
        if (done[ev.term]) break;
        if (ev.dispatched) result.fleet.releases += 1;
        const std::size_t target = least_loaded();
        MG_ASSERT(target != hosts.size());  // the last host is never taken down
        hosts[target].queue.push_front(ev.term);
        kick(now);
        break;
      }
    }
  }
  MG_ASSERT(remaining == 0);

  // Drain still-in-flight speculative copies: their results would arrive
  // after the winner and be discarded, which is exactly what the duplicate
  // counter records.
  while (!events.empty()) {
    const ChurnEv ev = events.top();
    events.pop();
    if (ev.kind != ChurnEvKind::Complete) continue;
    const ElasticHost& h = hosts[ev.host];
    if (!h.active || h.gen != ev.gen || !h.busy) continue;
    if (done[ev.term]) result.fleet.duplicates += 1;
  }

  const double startup_mhz = config.cluster.startup().mhz;
  const double collect =
      last_result + oh.result_handling_s * static_cast<double>(terms.size());
  result.concurrent_seconds = oh.startup_s + cost.init_seconds(startup_mhz) + collect +
                              cost.prolongation_seconds(root, level, startup_mhz);
  result.machines = trace::build_ebb_flow(std::move(machine_events), collect);
  result.weighted_machines = result.machines.weighted_average();
  result.peak_machines = result.machines.peak();

  SimMetrics& metrics = sim_metrics();
  metrics.runs.add();
  metrics.workers.add(result.completion_order.size());
  fleet::add_fleet_metrics(result.fleet);
  return result;
}

TableRow simulate_table_row(int root, int level, double tol, const CostModel& cost,
                            const SimConfig& config) {
  MG_REQUIRE(config.runs >= 1);
  TableRow row;
  row.level = level;
  row.tol = tol;
  double st_sum = 0, ct_sum = 0, m_sum = 0;
  for (int r = 0; r < config.runs; ++r) {
    const SimRunResult run =
        simulate_run(root, level, tol, cost, config, config.seed + static_cast<std::uint64_t>(r));
    st_sum += run.sequential_seconds;
    ct_sum += run.concurrent_seconds;
    m_sum += run.weighted_machines;
  }
  row.st = st_sum / config.runs;
  row.ct = ct_sum / config.runs;
  row.m = m_sum / config.runs;
  row.su = row.ct > 0 ? row.st / row.ct : 0.0;
  return row;
}

std::vector<TableRow> simulate_table(int root, int max_level, double tol, const CostModel& cost,
                                     const SimConfig& config) {
  std::vector<TableRow> rows;
  rows.reserve(static_cast<std::size_t>(max_level) + 1);
  for (int level = 0; level <= max_level; ++level) {
    rows.push_back(simulate_table_row(root, level, tol, cost, config));
  }
  return rows;
}

}  // namespace mg::cluster
