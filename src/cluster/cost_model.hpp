// Cost models for the simulated runs.
//
// The paper ran on hardware we do not have (a 32-node Athlon cluster), so
// Table 1 is regenerated in virtual time: per-grid subsolve cost comes from
// a cost model, either
//
//  * AthlonCostModel — an analytic model calibrated against the paper's own
//    sequential-time column (st(15, 1e-3) ~ 2019 s on a 1200 MHz Athlon,
//    growth ~x2.3 per level, 1e-4 runs ~2x the 1e-3 runs), or
//  * MeasuredCostModel — fitted to real subsolve wall times measured with
//    this library's own kernel on the present machine and rescaled to
//    Athlon speed.
//
// The per-grid shape matters: within one grid family all grids have the
// same cell count but different aspect ratios, and the near-square grids
// cost more (larger stencil bandwidth in the per-step solve).  This mild
// imbalance is what keeps the paper's weighted machine count (m ~ 12 at
// level 15) far below the worker count (31) — cheap thin-grid workers die
// early — and caps the speedup near m/2.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "grid/grid2d.hpp"

namespace mg::cluster {

class CostModel {
 public:
  virtual ~CostModel() = default;

  /// Wall seconds for subsolve on grid g at tolerance tol on a machine of
  /// clock `mhz`.
  virtual double subsolve_seconds(const grid::Grid2D& g, double tol, double mhz) const = 0;

  /// Wall seconds for the final prolongation/combination at `level`.
  virtual double prolongation_seconds(int root, int level, double mhz) const = 0;

  /// Fixed per-run initialisation cost (the sequential prelude).
  virtual double init_seconds(double mhz) const = 0;

  /// Sequential-program model time: init + all subsolves + prolongation.
  double sequential_seconds(int root, int level, double tol, double mhz) const;

  /// Amdahl-law speedup of one subsolve running on an inner worker team of
  /// `inner_threads` members (within-grid parallelism, DESIGN.md §14):
  /// `parallel_fraction` of the work — SpMV row partitions, fused triads,
  /// the banded-LU trailing update — scales with team size, the rest
  /// (scalar-chain reductions, control flow) stays serial.  The default
  /// fraction comes from profiling the level-6 banded-LU subsolve, where
  /// the factorisation's trailing update is ~88% of elapsed.  Returns 1.0
  /// for inner_threads <= 1.
  static double inner_team_speedup(std::uint32_t inner_threads,
                                   double parallel_fraction = 0.88);
};

/// Analytic model calibrated to the paper's Table 1 sequential column.
class AthlonCostModel final : public CostModel {
 public:
  struct Params {
    double cost_per_cell = 8.6e-5;  ///< s/cell at 1200 MHz, tol 1e-3
    double aspect_kappa = 0.03;     ///< extra weight ~ kappa * 2^min(lx,ly)
    double tol_factor_1e4 = 2.04;   ///< st(1e-4)/st(1e-3) at high level
    double init = 0.02;             ///< fixed prelude seconds
    double per_grid_overhead = 2e-3;
    double prolong_per_cell = 2e-7; ///< per *component* cell prolongated
    double reference_mhz = 1200.0;
  };

  AthlonCostModel() : AthlonCostModel(Params{}) {}
  explicit AthlonCostModel(Params params) : p_(params) {}

  double subsolve_seconds(const grid::Grid2D& g, double tol, double mhz) const override;
  double prolongation_seconds(int root, int level, double mhz) const override;
  double init_seconds(double mhz) const override;

  const Params& params() const { return p_; }

 private:
  double tol_scale(double tol) const;
  Params p_;
};

/// Model fitted to real measurements of this library's subsolve kernel.
/// Fit form: seconds = c * cells * (1 + kappa * 2^min(lx,ly)) * s(tol),
/// least-squares over the provided samples (one per grid).
class MeasuredCostModel final : public CostModel {
 public:
  struct Sample {
    int root;
    int lx;
    int ly;
    double tol;
    double seconds;
  };

  /// Fits from samples gathered on a machine of `measured_mhz` equivalent
  /// speed.  Requires samples at two tolerances to fit the tol factor
  /// (falls back to 2.0 if only one is present).
  MeasuredCostModel(const std::vector<Sample>& samples, double measured_mhz);

  double subsolve_seconds(const grid::Grid2D& g, double tol, double mhz) const override;
  double prolongation_seconds(int root, int level, double mhz) const override;
  double init_seconds(double mhz) const override;

  double cost_per_cell() const { return c_; }
  double aspect_kappa() const { return kappa_; }
  double tol_factor() const { return tol_factor_; }

 private:
  double c_ = 1e-7;
  double kappa_ = 0.0;
  double tol_factor_ = 2.0;
  double base_tol_ = 1e-3;
  double measured_mhz_;
};

}  // namespace mg::cluster
