#include "cluster/host.hpp"

#include "support/check.hpp"

namespace mg::cluster {

ClusterSpec ClusterSpec::paper() {
  ClusterSpec spec;
  spec.reference_mhz = 1200.0;
  spec.hosts.reserve(32);
  spec.hosts.push_back({"bumpa.sen.cwi.nl", 1200.0});
  const char* named[] = {"diplice", "alboka", "altfluit", "arghul", "basfluit"};
  for (int i = 0; i < 5; ++i) spec.hosts.push_back({std::string(named[i]) + ".sen.cwi.nl", 1200.0});
  for (int i = 0; i < 18; ++i) {
    spec.hosts.push_back({"athlon12-" + std::to_string(i + 1) + ".sen.cwi.nl", 1200.0});
  }
  for (int i = 0; i < 5; ++i) {
    spec.hosts.push_back({"athlon14-" + std::to_string(i + 1) + ".sen.cwi.nl", 1400.0});
  }
  for (int i = 0; i < 3; ++i) {
    spec.hosts.push_back({"athlon1466-" + std::to_string(i + 1) + ".sen.cwi.nl", 1466.0});
  }
  MG_ASSERT(spec.hosts.size() == 32);
  return spec;
}

ClusterSpec ClusterSpec::homogeneous(std::size_t n, double mhz) {
  MG_REQUIRE(n >= 1);
  ClusterSpec spec;
  spec.reference_mhz = mhz;
  spec.hosts.reserve(n);
  spec.hosts.push_back({"startup.sim", mhz});
  for (std::size_t i = 1; i < n; ++i) spec.hosts.push_back({"node" + std::to_string(i) + ".sim", mhz});
  return spec;
}

}  // namespace mg::cluster
