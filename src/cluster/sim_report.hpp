// JSON serialisation of simulation results for machine-readable run reports
// (obs::RunReport "derived" sections).  One place defines the schema so the
// bench binaries and the report tests cannot drift apart.
#pragma once

#include "cluster/cluster_sim.hpp"
#include "obs/json_writer.hpp"

namespace mg::cluster {

/// One simulated run as a JSON object:
///   {"st": ..., "ct": ..., "m": ..., "su": ..., "peak_machines": ...,
///    "tasks_spawned": ..., "network_bytes": ...,
///    "hosts": [{"host": ..., "busy_s": ..., "idle_s": ...}, ...],
///    "ebb_flow": {"times": [...], "counts": [...], "end_time": ...}}
/// su is derived as st/ct (0 when ct == 0); worker timelines are summarised,
/// not dumped, to keep reports small.
void append_run_json(obs::JsonWriter& w, const SimRunResult& run, bool include_ebb_flow = true);

/// One Table-1 row: {"level": ..., "tol": ..., "st": ..., "ct": ..., "m": ..., "su": ...}.
void append_table_row_json(obs::JsonWriter& w, const TableRow& row);

/// An array of Table-1 rows.
void append_table_json(obs::JsonWriter& w, const std::vector<TableRow>& rows);

}  // namespace mg::cluster
