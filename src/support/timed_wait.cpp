#include "support/timed_wait.hpp"

#include <atomic>

namespace mg::support {

namespace {

class RealWaitClock final : public WaitClock {
 public:
  std::chrono::steady_clock::time_point now() override {
    return std::chrono::steady_clock::now();
  }

  std::cv_status wait_until(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
                            std::chrono::steady_clock::time_point deadline) override {
    return cv.wait_until(lock, deadline);
  }
};

std::atomic<WaitClock*>& installed() {
  static std::atomic<WaitClock*> clock{nullptr};
  return clock;
}

}  // namespace

WaitClock& wait_clock() {
  static RealWaitClock real;
  WaitClock* override_clock = installed().load(std::memory_order_acquire);
  return override_clock != nullptr ? *override_clock : real;
}

WaitClock* exchange_wait_clock(WaitClock* clock) {
  return installed().exchange(clock, std::memory_order_acq_rel);
}

}  // namespace mg::support
