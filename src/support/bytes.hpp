// Little binary writer/reader pair used for unit marshalling.
//
// MANIFOLD task instances exchange units across machines ("an inter-process
// communication facility roughly equivalent to a small subset of PVM", §2);
// the wire format here is a fixed little-endian layout so payload sizes are
// well-defined for the network model and round-trips are exact.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace mg::support {

class ByteWriter {
 public:
  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v) { write_u64(static_cast<std::uint64_t>(v)); }
  void write_i32(std::int32_t v);
  void write_f64(double v);
  void write_string(const std::string& s);
  void write_doubles(const std::vector<double>& v);

  const std::vector<std::uint8_t>& bytes() const { return buffer_; }
  std::vector<std::uint8_t> take() { return std::move(buffer_); }
  std::size_t size() const { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Thrown when a reader runs past the end or sees a bad length.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  std::uint64_t read_u64();
  std::int64_t read_i64() { return static_cast<std::int64_t>(read_u64()); }
  std::int32_t read_i32();
  double read_f64();
  std::string read_string();
  std::vector<double> read_doubles();

  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool exhausted() const { return remaining() == 0; }

 private:
  void need(std::size_t n) const;

  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace mg::support
