#include "support/stopwatch.hpp"

namespace mg::support {

double Stopwatch::elapsed_seconds() const {
  return std::chrono::duration<double>(clock::now() - start_).count();
}

}  // namespace mg::support
