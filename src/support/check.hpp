// Lightweight precondition / invariant checking.
//
// MG_REQUIRE is for public API preconditions (always on); MG_ASSERT is for
// internal invariants (compiled out in NDEBUG builds except where noted).
// Violations throw mg::support::ContractViolation so tests can assert on them
// and long-running simulations fail loudly instead of corrupting state.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace mg::support {

/// Thrown when a contract (precondition or invariant) is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const std::string& msg,
                                          std::source_location loc = std::source_location::current()) {
  std::string full = std::string(kind) + " failed: (" + expr + ") at " + loc.file_name() + ":" +
                     std::to_string(loc.line());
  if (!msg.empty()) full += " — " + msg;
  throw ContractViolation(full);
}

}  // namespace mg::support

#define MG_REQUIRE(cond)                                                 \
  do {                                                                   \
    if (!(cond)) ::mg::support::contract_failure("precondition", #cond, ""); \
  } while (0)

#define MG_REQUIRE_MSG(cond, msg)                                           \
  do {                                                                      \
    if (!(cond)) ::mg::support::contract_failure("precondition", #cond, (msg)); \
  } while (0)

#define MG_ASSERT(cond)                                                \
  do {                                                                 \
    if (!(cond)) ::mg::support::contract_failure("invariant", #cond, ""); \
  } while (0)

#define MG_ASSERT_MSG(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) ::mg::support::contract_failure("invariant", #cond, (msg)); \
  } while (0)
