#include "support/bytes.hpp"

namespace mg::support {

void ByteWriter::write_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::write_i32(std::int32_t v) {
  const auto u = static_cast<std::uint32_t>(v);
  for (int i = 0; i < 4; ++i) buffer_.push_back(static_cast<std::uint8_t>(u >> (8 * i)));
}

void ByteWriter::write_f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  write_u64(bits);
}

void ByteWriter::write_string(const std::string& s) {
  write_u64(s.size());
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void ByteWriter::write_doubles(const std::vector<double>& v) {
  write_u64(v.size());
  for (double x : v) write_f64(x);
}

void ByteReader::need(std::size_t n) const {
  if (remaining() < n) throw DecodeError("ByteReader: truncated input");
}

std::uint64_t ByteReader::read_u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes_[pos_++]) << (8 * i);
  return v;
}

std::int32_t ByteReader::read_i32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes_[pos_++]) << (8 * i);
  return static_cast<std::int32_t>(v);
}

double ByteReader::read_f64() {
  const std::uint64_t bits = read_u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string ByteReader::read_string() {
  const std::uint64_t n = read_u64();
  if (n > remaining()) throw DecodeError("ByteReader: bad string length");
  std::string s(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return s;
}

std::vector<double> ByteReader::read_doubles() {
  const std::uint64_t n = read_u64();
  // Divide rather than multiply: a hostile length prefix near 2^61 would
  // wrap n * 8 around to a small number and pass the check, sending a
  // multi-exabyte reservation into std::vector.
  if (n > remaining() / 8) throw DecodeError("ByteReader: bad array length");
  std::vector<double> v(n);
  for (auto& x : v) x = read_f64();
  return v;
}

}  // namespace mg::support
