// Wall-clock timing, the library's analogue of the paper's `/bin/time`
// elapsed measurements (§7: "wall clock times ... as it would be measured by
// a user sitting at the terminal with a stopwatch").
#pragma once

#include <chrono>

namespace mg::support {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double elapsed_seconds() const;

  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Runs fn() `runs` times and returns the mean elapsed seconds — the paper's
/// five-run averaging protocol (§7).
template <typename Fn>
double mean_elapsed_seconds(int runs, Fn&& fn) {
  double total = 0.0;
  for (int i = 0; i < runs; ++i) {
    Stopwatch sw;
    fn();
    total += sw.elapsed_seconds();
  }
  return runs > 0 ? total / runs : 0.0;
}

}  // namespace mg::support
