// Clock seam for condition-variable timed waits.
//
// Port::read_for and EventMemory::await_for implement the same discipline —
// compute the deadline once, re-check state after every wake, and only give
// up when the *deadline* has passed, so spurious wakeups neither shorten nor
// extend the wait.  That discipline is untestable against the real clock
// (a test cannot schedule a spurious wake at a chosen instant), so both
// paths take their notion of "now" and their cv wait through this seam; a
// test installs a virtual clock and steps time explicitly.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

namespace mg::support {

class WaitClock {
 public:
  virtual ~WaitClock() = default;

  virtual std::chrono::steady_clock::time_point now() = 0;

  /// Blocks on `cv` until notified or `deadline` (by this clock's reckoning).
  /// The real clock forwards to cv.wait_until; a virtual clock typically
  /// waits for an explicit test-side step.  Returns std::cv_status::timeout
  /// when the deadline caused the return.
  virtual std::cv_status wait_until(std::condition_variable& cv,
                                    std::unique_lock<std::mutex>& lock,
                                    std::chrono::steady_clock::time_point deadline) = 0;
};

/// The clock timed waits consult: the real steady clock unless a test has
/// installed a replacement.
WaitClock& wait_clock();

/// Test hook: installs `clock` as the process-wide wait clock (nullptr
/// restores the real one) and returns the previously installed replacement
/// (nullptr if none).  Not for concurrent use with active waiters of the
/// *old* clock — swap while quiescent.
WaitClock* exchange_wait_clock(WaitClock* clock);

}  // namespace mg::support
