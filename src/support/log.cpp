#include "support/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <string>

namespace mg::support {

LogLevel parse_log_level(const std::string& value, LogLevel fallback) {
  std::string v(value);
  for (char& c : v) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (v == "trace" || v == "0") return LogLevel::Trace;
  if (v == "debug" || v == "1") return LogLevel::Debug;
  if (v == "info" || v == "2") return LogLevel::Info;
  if (v == "warn" || v == "warning" || v == "3") return LogLevel::Warn;
  if (v == "error" || v == "4") return LogLevel::Error;
  if (v == "off" || v == "none" || v == "5") return LogLevel::Off;
  return fallback;
}

namespace {

/// Initial threshold: MG_LOG_LEVEL when set and parseable; Warn otherwise,
/// so tests and benches stay quiet by default.
LogLevel initial_level() {
  const char* env = std::getenv("MG_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return LogLevel::Warn;
  return parse_log_level(env, LogLevel::Warn);
}

std::atomic<LogLevel> g_level{initial_level()};
std::mutex g_io_mutex;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(g_io_mutex);
  std::clog << "[" << level_name(level) << "] " << message << '\n';
}

}  // namespace mg::support
