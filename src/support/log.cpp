#include "support/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace mg::support {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_io_mutex;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(g_io_mutex);
  std::clog << "[" << level_name(level) << "] " << message << '\n';
}

}  // namespace mg::support
