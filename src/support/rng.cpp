#include "support/rng.hpp"

#include <cmath>
#include <numbers>

#include "support/check.hpp"

namespace mg::support {

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Xoshiro256 Xoshiro256::split() {
  // Mix a distinct counter into fresh state so children are independent of
  // both the parent's future output and each other.
  SplitMix64 sm(next() ^ (0xA0761D6478BD642FULL + ++split_counter_));
  return Xoshiro256(sm.next());
}

double Xoshiro256::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) {
  MG_REQUIRE(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Xoshiro256::below(std::uint64_t n) {
  MG_REQUIRE(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // = 2^64 mod n
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

double Xoshiro256::normal() {
  // Box–Muller; u1 in (0,1] so log is finite.
  double u1 = 1.0 - uniform01();
  double u2 = uniform01();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

std::vector<std::uint64_t> derive_seeds(std::uint64_t master, std::size_t n) {
  SplitMix64 sm(master);
  std::vector<std::uint64_t> out(n);
  for (auto& s : out) s = sm.next();
  return out;
}

}  // namespace mg::support
