// Deterministic, splittable random number generation.
//
// All stochastic behaviour in the library (multi-user noise injection in the
// cluster simulator, randomised property tests, workload generators) draws
// from these generators so that every experiment is reproducible from a seed.
#pragma once

#include <cstdint>
#include <vector>

namespace mg::support {

/// SplitMix64 — tiny, fast, passes BigCrush when used as a seeder.
/// Used to expand a single user seed into independent stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — the library's workhorse generator.
/// Satisfies UniformRandomBitGenerator so it plugs into <random> distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Returns a generator seeded independently of this one (stream splitting);
  /// children of distinct calls never share state.
  Xoshiro256 split();

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).  Requires n > 0.
  std::uint64_t below(std::uint64_t n);

  /// Standard normal via Box–Muller (no cached spare; stateless per call pair).
  double normal();

 private:
  std::uint64_t s_[4];
  std::uint64_t split_counter_ = 0;
};

/// Convenience: n independent seeds derived from one master seed.
std::vector<std::uint64_t> derive_seeds(std::uint64_t master, std::size_t n);

}  // namespace mg::support
