// Closable multi-producer / multi-consumer FIFO channel.
//
// This is the byte-level transport beneath IWIM streams (src/manifold): an
// unbounded queue with blocking pop, non-blocking try_pop, and a close()
// that wakes all waiters.  CP.mess style: ownership of the payload moves
// through the channel; producer and consumer never share mutable state.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace mg::support {

template <typename T>
class Channel {
 public:
  /// Pushes a value.  Returns false (and drops the value) if the channel is
  /// already closed.
  bool push(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(value));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until a value is available or the channel is closed and drained.
  /// Returns nullopt only on closed-and-empty.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  /// Closes the channel; queued items remain poppable, pushes are rejected,
  /// blocked poppers wake up.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace mg::support
