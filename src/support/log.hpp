// Minimal thread-safe leveled logger.
//
// The coordination runtime is heavily multi-threaded; interleaved iostream
// writes would tear.  All diagnostic output funnels through here under one
// mutex.  Default level is Warn so tests and benches stay quiet.
#pragma once

#include <sstream>
#include <string>

namespace mg::support {

enum class LogLevel { Trace = 0, Debug, Info, Warn, Error, Off };

/// Parses a level name (trace/debug/info/warn/error/off, any case) or a
/// digit 0-5; `fallback` for anything else.  The MG_LOG_LEVEL environment
/// variable goes through this to pick the initial threshold.
LogLevel parse_log_level(const std::string& value, LogLevel fallback);

/// Sets the process-global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Writes one line (thread-safe, single flush) if `level` passes the threshold.
void log_line(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::Info) log_line(LogLevel::Info, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::Debug) log_line(LogLevel::Debug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::Warn) log_line(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::Error) log_line(LogLevel::Error, detail::concat(std::forward<Args>(args)...));
}

}  // namespace mg::support
