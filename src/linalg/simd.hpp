// Element-wise SIMD primitives behind runtime ISA dispatch.
//
// Every routine here is element-wise: output slot i depends only on input
// slot i, through exactly the scalar code's operation sequence (multiply then
// add/subtract as separate roundings — never a fused multiply-add, which
// would change the result by one rounding).  Vectorising such loops permutes
// *which lanes compute in the same instruction*, not the per-element
// arithmetic, so these kernels are bitwise identical to their scalar
// counterparts on any ISA.  That property is what lets KernelPolicy::Tiled
// promise bit-equality with Scalar (see kernels.hpp and DESIGN.md §14).
//
// Dispatch: on x86-64 the implementation compiles AVX2 and AVX-512F variants
// via GCC/clang target attributes and selects once at first use with
// __builtin_cpu_supports; elsewhere (or on old CPUs) a portable unrolled C++
// fallback runs.  The mg_linalg target builds with -ffp-contract=off so the
// fallback cannot be contracted to FMA under -march=native builds either.
#pragma once

#include <cstddef>

namespace mg::linalg::simd {

/// Name of the ISA variant selected at runtime ("portable", "avx2",
/// "avx512").  For logs and bench labels.
const char* isa_name();

/// y[j] -= l * x[j].  The banded-LU trailing update, one target row against
/// one pivot row.
void mulsub_row(double* __restrict y, const double* __restrict x, double l, std::size_t n);

/// Four target rows against one shared pivot row: y_r[j] -= l_r * x[j].
/// Amortises the x loads 4x; the rows must be pairwise disjoint.
void mulsub_rows4(double* __restrict y0, double* __restrict y1, double* __restrict y2,
                  double* __restrict y3, const double* __restrict x, double l0, double l1,
                  double l2, double l3, std::size_t n);

/// p[i] = r[i] + beta * (p[i] - omega * v[i]).  BiCGSTAB direction update.
void triad_p_update(double* __restrict p, const double* __restrict r, const double* __restrict v,
                    double beta, double omega, std::size_t n);

/// x[i] += alpha * a[i] + omega * b[i].  BiCGSTAB solution update.
void triad_x_update(double* __restrict x, const double* __restrict a, const double* __restrict b,
                    double alpha, double omega, std::size_t n);

/// y[i] += alpha * x[i].
void axpy(double* __restrict y, const double* __restrict x, double alpha, std::size_t n);

/// z[i] = r[i] * d[i].  Jacobi preconditioner apply.
void hadamard(double* __restrict z, const double* __restrict r, const double* __restrict d,
              std::size_t n);

}  // namespace mg::linalg::simd
