#include "linalg/vector_ops.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/parallel.hpp"
#include "linalg/simd.hpp"
#include "support/check.hpp"

namespace mg::linalg {

namespace {

/// Runs body(begin, end) over [0, n): partitioned across the team when one
/// is attached, inline otherwise.  Safe only for element-wise bodies.
template <typename F>
void for_ranges(const KernelContext& ctx, std::size_t n, F&& body) {
  if (ctx.team) {
    ctx.team->parallel_for(n, body);
  } else {
    body(std::size_t{0}, n);
  }
}

}  // namespace

void axpy(double alpha, const Vec& x, Vec& y) {
  MG_REQUIRE(x.size() == y.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void axpy(double alpha, const Vec& x, Vec& y, const KernelContext& ctx) {
  MG_REQUIRE(x.size() == y.size());
  const double* __restrict xp = x.data();
  double* __restrict yp = y.data();
  for_ranges(ctx, x.size(), [&](std::size_t b, std::size_t e) {
    if (ctx.tiled()) {
      simd::axpy(yp + b, xp + b, alpha, e - b);
    } else {
      for (std::size_t i = b; i < e; ++i) yp[i] += alpha * xp[i];
    }
  });
}

void axpby(double alpha, const Vec& x, double beta, Vec& y) {
  MG_REQUIRE(x.size() == y.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) y[i] = alpha * x[i] + beta * y[i];
}

double axpy_dot(double alpha, const Vec& x, const Vec& y, Vec& out) {
  MG_REQUIRE(x.size() == y.size());
  out.resize(x.size());
  const std::size_t n = x.size();
  const double* __restrict xp = x.data();
  const double* __restrict yp = y.data();
  double* __restrict op = out.data();
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = yp[i] + alpha * xp[i];
    op[i] = v;
    s += v * v;
  }
  return s;
}

void dot2(const Vec& a, const Vec& b, const Vec& c, double& ab, double& ac) {
  MG_REQUIRE(a.size() == b.size() && a.size() == c.size());
  const std::size_t n = a.size();
  const double* __restrict ap = a.data();
  const double* __restrict bp = b.data();
  const double* __restrict cp = c.data();
  double sab = 0.0, sac = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sab += ap[i] * bp[i];
    sac += ap[i] * cp[i];
  }
  ab = sab;
  ac = sac;
}

double dot(const Vec& a, const Vec& b) {
  MG_REQUIRE(a.size() == b.size());
  double s = 0.0;
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

double norm2(const Vec& v) { return std::sqrt(dot(v, v)); }

double norm_inf(const Vec& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

double wrms_norm(const Vec& v, const Vec& ref, double atol, double rtol) {
  MG_REQUIRE(v.size() == ref.size());
  MG_REQUIRE(atol > 0.0 || rtol > 0.0);
  if (v.empty()) return 0.0;
  double s = 0.0;
  const std::size_t n = v.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double w = atol + rtol * std::abs(ref[i]);
    const double r = v[i] / w;
    s += r * r;
  }
  return std::sqrt(s / static_cast<double>(n));
}

void scale(Vec& v, double alpha) {
  for (double& x : v) x *= alpha;
}

void subtract(const Vec& a, const Vec& b, Vec& out) {
  MG_REQUIRE(a.size() == b.size());
  out.resize(a.size());
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

void fill(Vec& v, double value) { std::fill(v.begin(), v.end(), value); }

void fused_p_update(double beta, double omega, const Vec& r, const Vec& v, Vec& p,
                    const KernelContext& ctx) {
  MG_REQUIRE(r.size() == p.size() && v.size() == p.size());
  const double* __restrict rp = r.data();
  const double* __restrict vp = v.data();
  double* __restrict pp = p.data();
  for_ranges(ctx, p.size(), [&](std::size_t b, std::size_t e) {
    if (ctx.tiled()) {
      simd::triad_p_update(pp + b, rp + b, vp + b, beta, omega, e - b);
    } else {
      for (std::size_t i = b; i < e; ++i) pp[i] = rp[i] + beta * (pp[i] - omega * vp[i]);
    }
  });
}

void fused_x_update(double alpha, double omega, const Vec& a, const Vec& b, Vec& x,
                    const KernelContext& ctx) {
  MG_REQUIRE(a.size() == x.size() && b.size() == x.size());
  const double* __restrict ap = a.data();
  const double* __restrict bp = b.data();
  double* __restrict xp = x.data();
  for_ranges(ctx, x.size(), [&](std::size_t lo, std::size_t hi) {
    if (ctx.tiled()) {
      simd::triad_x_update(xp + lo, ap + lo, bp + lo, alpha, omega, hi - lo);
    } else {
      for (std::size_t i = lo; i < hi; ++i) xp[i] += alpha * ap[i] + omega * bp[i];
    }
  });
}

}  // namespace mg::linalg
