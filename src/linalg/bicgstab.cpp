#include "linalg/bicgstab.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace mg::linalg {

namespace {
struct BicgstabMetrics {
  obs::Counter& solves = obs::registry().counter("linalg.bicgstab_solves");
  obs::Counter& iterations = obs::registry().counter("linalg.bicgstab_iterations");
  obs::Counter& non_converged = obs::registry().counter("linalg.bicgstab_non_converged");
  obs::Histogram& solve_seconds = obs::registry().histogram("linalg.bicgstab_solve_seconds");
};

BicgstabMetrics& bicgstab_metrics() {
  static BicgstabMetrics m;
  return m;
}

struct SolveScope {
  explicit SolveScope(const SolveReport& report) : report_(report) {}
  ~SolveScope() {
    BicgstabMetrics& metrics = bicgstab_metrics();
    metrics.solves.add();
    metrics.iterations.add(report_.iterations);
    if (!report_.converged) metrics.non_converged.add();
    metrics.solve_seconds.observe(clock_.elapsed_seconds());
  }
  const SolveReport& report_;
  support::Stopwatch clock_;
};
}  // namespace

SolveReport bicgstab(const CsrMatrix& a, const Vec& b, Vec& x, const Preconditioner& m,
                     const SolveOptions& opts, KrylovWorkspace* ws, const KernelContext& kctx) {
  MG_REQUIRE(a.rows() == a.cols());
  MG_REQUIRE(b.size() == a.rows());
  const std::size_t n = a.rows();
  if (x.size() != n) x.assign(n, 0.0);

  SolveReport report;
  // Records solves/iterations/timing on every return path.
  const SolveScope metrics_scope(report);
  const double bnorm = norm2(b);
  const double target = std::max(opts.abs_tol, opts.rel_tol * bnorm);

  KrylovWorkspace local;
  KrylovWorkspace& w = ws ? *ws : local;
  Vec &r = w.r, &r0 = w.r0, &p = w.p, &v = w.v, &s = w.s, &t = w.t;
  Vec &phat = w.phat, &shat = w.shat, &tmp = w.tmp;
  p.resize(n);
  v.resize(n);
  multiply_sub(a, b, x, r, kctx);
  r0 = r;
  double rnorm = norm2(r);
  if (rnorm <= target) {
    report.converged = true;
    report.residual_norm = rnorm;
    return report;
  }

  double rho_prev = 1.0, alpha = 1.0, omega = 1.0;
  for (std::size_t it = 1; it <= opts.max_iter; ++it) {
    const double rho = dot(r0, r);
    if (std::abs(rho) < 1e-300) break;  // breakdown
    if (it == 1) {
      p = r;
    } else {
      const double beta = (rho / rho_prev) * (alpha / omega);
      // p = r + beta * (p - omega * v)
      fused_p_update(beta, omega, r, v, p, kctx);
    }
    m.apply(p, phat, kctx);
    a.multiply(phat, v, kctx);
    const double r0v = dot(r0, v);
    if (std::abs(r0v) < 1e-300) break;  // breakdown
    alpha = rho / r0v;
    // s = r - alpha * v, with ||s||^2 folded into the same sweep.
    const double snorm2 = axpy_dot(-alpha, v, r, s);
    if (std::sqrt(snorm2) <= target) {
      axpy(alpha, phat, x, kctx);
      multiply_sub(a, b, x, tmp, kctx);
      report.converged = true;
      report.iterations = it;
      report.residual_norm = norm2(tmp);
      return report;
    }
    m.apply(s, shat, kctx);
    a.multiply(shat, t, kctx);
    double tt, ts;
    dot2(t, t, s, tt, ts);
    if (tt < 1e-300) break;  // breakdown
    omega = ts / tt;
    fused_x_update(alpha, omega, phat, shat, x, kctx);
    // r = s - omega * t, again with the norm folded in.
    rnorm = std::sqrt(axpy_dot(-omega, t, s, r));
    report.iterations = it;
    if (rnorm <= target) {
      multiply_sub(a, b, x, tmp, kctx);
      report.converged = true;
      report.residual_norm = norm2(tmp);
      return report;
    }
    if (std::abs(omega) < 1e-300) break;  // breakdown
    rho_prev = rho;
  }
  multiply_sub(a, b, x, tmp, kctx);
  report.residual_norm = norm2(tmp);
  report.converged = report.residual_norm <= target;
  return report;
}

}  // namespace mg::linalg
