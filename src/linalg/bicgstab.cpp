#include "linalg/bicgstab.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace mg::linalg {

namespace {
struct BicgstabMetrics {
  obs::Counter& solves = obs::registry().counter("linalg.bicgstab_solves");
  obs::Counter& iterations = obs::registry().counter("linalg.bicgstab_iterations");
  obs::Counter& non_converged = obs::registry().counter("linalg.bicgstab_non_converged");
  obs::Histogram& solve_seconds = obs::registry().histogram("linalg.bicgstab_solve_seconds");
};

BicgstabMetrics& bicgstab_metrics() {
  static BicgstabMetrics m;
  return m;
}

struct SolveScope {
  explicit SolveScope(const SolveReport& report) : report_(report) {}
  ~SolveScope() {
    BicgstabMetrics& metrics = bicgstab_metrics();
    metrics.solves.add();
    metrics.iterations.add(report_.iterations);
    if (!report_.converged) metrics.non_converged.add();
    metrics.solve_seconds.observe(clock_.elapsed_seconds());
  }
  const SolveReport& report_;
  support::Stopwatch clock_;
};
}  // namespace

SolveReport bicgstab(const CsrMatrix& a, const Vec& b, Vec& x, const Preconditioner& m,
                     const SolveOptions& opts) {
  MG_REQUIRE(a.rows() == a.cols());
  MG_REQUIRE(b.size() == a.rows());
  const std::size_t n = a.rows();
  if (x.size() != n) x.assign(n, 0.0);

  SolveReport report;
  // Records solves/iterations/timing on every return path.
  const SolveScope metrics_scope(report);
  const double bnorm = norm2(b);
  const double target = std::max(opts.abs_tol, opts.rel_tol * bnorm);

  Vec r(n), r0(n), p(n, 0.0), v(n, 0.0), s(n), t(n), phat(n), shat(n), tmp(n);
  a.residual(b, x, r);
  r0 = r;
  double rnorm = norm2(r);
  if (rnorm <= target) {
    report.converged = true;
    report.residual_norm = rnorm;
    return report;
  }

  double rho_prev = 1.0, alpha = 1.0, omega = 1.0;
  for (std::size_t it = 1; it <= opts.max_iter; ++it) {
    const double rho = dot(r0, r);
    if (std::abs(rho) < 1e-300) break;  // breakdown
    if (it == 1) {
      p = r;
    } else {
      const double beta = (rho / rho_prev) * (alpha / omega);
      // p = r + beta * (p - omega * v)
      for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * (p[i] - omega * v[i]);
    }
    m.apply(p, phat);
    a.multiply(phat, v);
    const double r0v = dot(r0, v);
    if (std::abs(r0v) < 1e-300) break;  // breakdown
    alpha = rho / r0v;
    for (std::size_t i = 0; i < n; ++i) s[i] = r[i] - alpha * v[i];
    if (norm2(s) <= target) {
      axpy(alpha, phat, x);
      a.residual(b, x, tmp);
      report.converged = true;
      report.iterations = it;
      report.residual_norm = norm2(tmp);
      return report;
    }
    m.apply(s, shat);
    a.multiply(shat, t);
    const double tt = dot(t, t);
    if (tt < 1e-300) break;  // breakdown
    omega = dot(t, s) / tt;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * phat[i] + omega * shat[i];
      r[i] = s[i] - omega * t[i];
    }
    rnorm = norm2(r);
    report.iterations = it;
    if (rnorm <= target) {
      a.residual(b, x, tmp);
      report.converged = true;
      report.residual_norm = norm2(tmp);
      return report;
    }
    if (std::abs(omega) < 1e-300) break;  // breakdown
    rho_prev = rho;
  }
  a.residual(b, x, tmp);
  report.residual_norm = norm2(tmp);
  report.converged = report.residual_norm <= target;
  return report;
}

}  // namespace mg::linalg
