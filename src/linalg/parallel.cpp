#include "linalg/parallel.hpp"

#include <algorithm>

namespace mg::linalg {

namespace {

/// Contiguous chunk c of [0, n) split into `chunks` near-equal pieces; the
/// boundaries are a pure function of (n, chunks, c).
struct ChunkRange {
  std::size_t begin, end;
};

ChunkRange chunk_range(std::size_t n, std::size_t chunks, std::size_t c) {
  const std::size_t q = n / chunks;
  const std::size_t r = n % chunks;
  const std::size_t begin = c * q + std::min(c, r);
  return {begin, begin + q + (c < r ? 1 : 0)};
}

}  // namespace

ParallelContext::ParallelContext(std::size_t team_size, Options opts)
    : opts_(opts), leader_(std::this_thread::get_id()) {
  if (team_size == 0) team_size = 1;
  std::size_t helpers = team_size - 1;
  if (!opts_.oversubscribe) {
    const unsigned hw = std::thread::hardware_concurrency();
    const std::size_t usable = hw > 1 ? static_cast<std::size_t>(hw) - 1 : 0;
    helpers = std::min(helpers, usable);
  }
  helpers_.reserve(helpers);
  for (std::size_t m = 1; m <= helpers; ++m) {
    helpers_.emplace_back([this, m] { helper_loop(m); });
  }
}

ParallelContext::~ParallelContext() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : helpers_) t.join();
}

void ParallelContext::helper_loop(std::size_t member) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation_;
    }
    run_chunks(member, job_chunks_);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

void ParallelContext::run_chunks(std::size_t member, std::size_t n_chunks) {
  const std::size_t team = team_size();
  for (std::size_t c = member; c < n_chunks; c += team) {
    const ChunkRange r = chunk_range(job_n_, n_chunks, c);
    if (r.begin == r.end) {
      if (reduce_fn_) partials_[c] = 0.0;
      continue;
    }
    if (reduce_fn_) {
      partials_[c] = reduce_fn_(job_ctx_, r.begin, r.end);
    } else {
      range_fn_(job_ctx_, r.begin, r.end);
    }
  }
}

void ParallelContext::dispatch_and_wait(std::size_t n_chunks) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_chunks_ = n_chunks;
    pending_ = helpers_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  run_chunks(0, n_chunks);
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return pending_ == 0; });
}

void ParallelContext::run_range(std::size_t n, void* ctx, RangeFn fn) {
  if (n == 0) return;
  const bool inline_only = helpers_.empty() || std::this_thread::get_id() != leader_ ||
                           n < opts_.min_items_per_worker * team_size();
  if (inline_only) {
    fn(ctx, 0, n);
    return;
  }
  range_fn_ = fn;
  reduce_fn_ = nullptr;
  job_ctx_ = ctx;
  job_n_ = n;
  dispatch_and_wait(team_size());
}

double ParallelContext::run_reduce(std::size_t n, void* ctx, ReduceFn fn) {
  if (n == 0) return 0.0;
  range_fn_ = nullptr;
  reduce_fn_ = fn;
  job_ctx_ = ctx;
  job_n_ = n;
  const bool inline_only = helpers_.empty() || std::this_thread::get_id() != leader_ ||
                           n < opts_.min_items_per_worker * team_size();
  if (inline_only) {
    // Same fixed chunking as the threaded path: the combination tree is a
    // function of kReduceChunks alone, so team size (including 1) is
    // invisible in the result.
    for (std::size_t c = 0; c < kReduceChunks; ++c) {
      const ChunkRange r = chunk_range(n, kReduceChunks, c);
      partials_[c] = r.begin == r.end ? 0.0 : fn(ctx, r.begin, r.end);
    }
  } else {
    dispatch_and_wait(kReduceChunks);
  }
  double s = 0.0;
  for (std::size_t c = 0; c < kReduceChunks; ++c) s += partials_[c];
  reduce_fn_ = nullptr;
  return s;
}

}  // namespace mg::linalg
