#include "linalg/banded.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/simd.hpp"
#include "support/check.hpp"

namespace mg::linalg {

BandedMatrix::BandedMatrix(std::size_t n, std::size_t half_bandwidth)
    : n_(n), hb_(half_bandwidth), data_(n * (2 * half_bandwidth + 1), 0.0) {
  MG_REQUIRE(n > 0);
}

BandedMatrix BandedMatrix::from_csr(const CsrMatrix& a, std::size_t half_bandwidth) {
  MG_REQUIRE(a.rows() == a.cols());
  BandedMatrix band(a.rows(), half_bandwidth);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = a.row_ptr()[i]; k < a.row_ptr()[i + 1]; ++k) {
      const std::size_t j = a.col_idx()[k];
      MG_REQUIRE_MSG(band.in_band(i, j), "CSR entry outside declared bandwidth");
      band.set(i, j, a.values()[k]);
    }
  }
  return band;
}

void BandedMatrix::assign_shifted_csr(const CsrMatrix& a, double scale_diag, double scale_a) {
  MG_REQUIRE(a.rows() == n_ && a.cols() == n_);
  std::fill(data_.begin(), data_.end(), 0.0);
  factorized_ = false;
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t k = a.row_ptr()[i]; k < a.row_ptr()[i + 1]; ++k) {
      const std::size_t j = a.col_idx()[k];
      MG_REQUIRE_MSG(in_band(i, j), "CSR entry outside declared bandwidth");
      data_[idx(i, j)] = scale_a * a.values()[k];
    }
    data_[idx(i, i)] += scale_diag;
  }
}

std::size_t BandedMatrix::idx(std::size_t i, std::size_t j) const {
  return i * (2 * hb_ + 1) + (j + hb_ - i);
}

bool BandedMatrix::in_band(std::size_t i, std::size_t j) const {
  return (j + hb_ >= i) && (j <= i + hb_) && i < n_ && j < n_;
}

double BandedMatrix::at(std::size_t i, std::size_t j) const {
  MG_REQUIRE(i < n_ && j < n_);
  if (!in_band(i, j)) return 0.0;
  return data_[idx(i, j)];
}

void BandedMatrix::set(std::size_t i, std::size_t j, double value) {
  MG_REQUIRE(in_band(i, j));
  data_[idx(i, j)] = value;
}

void BandedMatrix::add(std::size_t i, std::size_t j, double value) {
  MG_REQUIRE(in_band(i, j));
  data_[idx(i, j)] += value;
}

void BandedMatrix::multiply(const Vec& x, Vec& y) const {
  MG_REQUIRE(x.size() == n_);
  MG_REQUIRE_MSG(!factorized_, "multiply() after factorize() would use LU factors");
  y.assign(n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j_lo = i >= hb_ ? i - hb_ : 0;
    const std::size_t j_hi = std::min(n_ - 1, i + hb_);
    double s = 0.0;
    for (std::size_t j = j_lo; j <= j_hi; ++j) s += data_[idx(i, j)] * x[j];
    y[i] = s;
  }
}

void BandedMatrix::factorize() { factorize(KernelContext{}); }

void BandedMatrix::factorize(const KernelContext& ctx) {
  MG_REQUIRE(!factorized_);
  if (!ctx.tiled()) {
    for (std::size_t k = 0; k < n_; ++k) {
      const double pivot = data_[idx(k, k)];
      if (std::abs(pivot) < 1e-300) {
        throw std::runtime_error("BandedMatrix::factorize: zero pivot at row " + std::to_string(k));
      }
      const std::size_t i_hi = std::min(n_ - 1, k + hb_);
      for (std::size_t i = k + 1; i <= i_hi; ++i) {
        const double l = data_[idx(i, k)] / pivot;
        data_[idx(i, k)] = l;
        const std::size_t j_hi = std::min(n_ - 1, k + hb_);
        for (std::size_t j = k + 1; j <= j_hi; ++j) {
          data_[idx(i, j)] -= l * data_[idx(k, j)];
        }
      }
    }
    factorized_ = true;
    return;
  }
  // Tiled: k-panel cache-blocked elimination.  The unblocked loop re-streams
  // the whole ~hb x hb trailing window from memory once per pivot step, which
  // leaves the kernel bandwidth-bound.  Here pivot steps are grouped into
  // panels of kPanel; each target row is brought into cache once per panel
  // and receives all of the panel's updates while hot.  Bitwise identity with
  // the scalar path holds because every element d(i,j) still receives its
  // updates  d(i,j) -= l(i,k) * u(k,j)  for k strictly ascending (the k loop
  // is innermost-serial per row), each as a separate multiply and subtract —
  // only the (i,k) iteration order changes, never any element's own
  // operation sequence.  Row segments d[idx(i, k+1 .. k+m)] are contiguous
  // in the band layout, so the SIMD mul-sub kernels apply directly.
  double* __restrict d = data_.data();
  constexpr std::size_t kPanel = 64;
  for (std::size_t k0 = 0; k0 < n_; k0 += kPanel) {
    const std::size_t k1 = std::min(n_, k0 + kPanel);
    // Panel phase: finalize rows k0..k1-1 against the in-panel pivots below
    // them (their updates from earlier panels were applied by those panels'
    // trailing phases).  Pivot checks run in the same ascending-k order as
    // the scalar loop and see identical values.
    for (std::size_t i = k0; i < k1; ++i) {
      const std::size_t klo = (i > hb_) ? std::max(k0, i - hb_) : k0;
      for (std::size_t k = klo; k < i; ++k) {
        const double l = d[idx(i, k)] / d[idx(k, k)];
        d[idx(i, k)] = l;
        const std::size_t m = std::min(n_ - 1, k + hb_) - k;
        simd::mulsub_row(d + idx(i, k + 1), d + idx(k, k + 1), l, m);
      }
      if (std::abs(d[idx(i, i)]) < 1e-300) {
        throw std::runtime_error("BandedMatrix::factorize: zero pivot at row " + std::to_string(i));
      }
    }
    if (k1 == n_) break;
    // Trailing phase: rows below the panel, four at a time so the pivot-row
    // loads amortise across rows.  Row i participates in step k iff
    // k >= i - hb, so a quad's shared k range starts at the *last* row's
    // lower bound; the earlier rows' few extra leading steps run per-row
    // first (still ascending k per row).
    const std::size_t i_hi = std::min(n_ - 1, k1 - 1 + hb_);
    std::size_t i = k1;
    for (; i + 3 <= i_hi; i += 4) {
      const std::size_t joint_lo = (i + 3 > hb_) ? std::max(k0, i + 3 - hb_) : k0;
      for (std::size_t r = 0; r < 3; ++r) {
        const std::size_t row = i + r;
        const std::size_t klo = (row > hb_) ? std::max(k0, row - hb_) : k0;
        for (std::size_t k = klo; k < joint_lo; ++k) {
          const double l = d[idx(row, k)] / d[idx(k, k)];
          d[idx(row, k)] = l;
          const std::size_t m = std::min(n_ - 1, k + hb_) - k;
          simd::mulsub_row(d + idx(row, k + 1), d + idx(k, k + 1), l, m);
        }
      }
      for (std::size_t k = joint_lo; k < k1; ++k) {
        const double pivot = d[idx(k, k)];
        const double l0 = d[idx(i, k)] / pivot;
        const double l1 = d[idx(i + 1, k)] / pivot;
        const double l2 = d[idx(i + 2, k)] / pivot;
        const double l3 = d[idx(i + 3, k)] / pivot;
        d[idx(i, k)] = l0;
        d[idx(i + 1, k)] = l1;
        d[idx(i + 2, k)] = l2;
        d[idx(i + 3, k)] = l3;
        const std::size_t m = std::min(n_ - 1, k + hb_) - k;
        simd::mulsub_rows4(d + idx(i, k + 1), d + idx(i + 1, k + 1), d + idx(i + 2, k + 1),
                           d + idx(i + 3, k + 1), d + idx(k, k + 1), l0, l1, l2, l3, m);
      }
    }
    for (; i <= i_hi; ++i) {
      const std::size_t klo = (i > hb_) ? std::max(k0, i - hb_) : k0;
      for (std::size_t k = klo; k < k1; ++k) {
        const double l = d[idx(i, k)] / d[idx(k, k)];
        d[idx(i, k)] = l;
        const std::size_t m = std::min(n_ - 1, k + hb_) - k;
        simd::mulsub_row(d + idx(i, k + 1), d + idx(k, k + 1), l, m);
      }
    }
  }
  factorized_ = true;
}

void BandedMatrix::solve(const Vec& b, Vec& x) const {
  MG_REQUIRE(factorized_);
  MG_REQUIRE(b.size() == n_);
  x = b;
  // Forward substitution with unit lower factor.
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j_lo = i >= hb_ ? i - hb_ : 0;
    double s = x[i];
    for (std::size_t j = j_lo; j < i; ++j) s -= data_[idx(i, j)] * x[j];
    x[i] = s;
  }
  // Back substitution with upper factor.
  for (std::size_t ii = n_; ii-- > 0;) {
    const std::size_t j_hi = std::min(n_ - 1, ii + hb_);
    double s = x[ii];
    for (std::size_t j = ii + 1; j <= j_hi; ++j) s -= data_[idx(ii, j)] * x[j];
    x[ii] = s / data_[idx(ii, ii)];
  }
}

}  // namespace mg::linalg
