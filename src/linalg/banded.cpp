#include "linalg/banded.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/check.hpp"

namespace mg::linalg {

BandedMatrix::BandedMatrix(std::size_t n, std::size_t half_bandwidth)
    : n_(n), hb_(half_bandwidth), data_(n * (2 * half_bandwidth + 1), 0.0) {
  MG_REQUIRE(n > 0);
}

BandedMatrix BandedMatrix::from_csr(const CsrMatrix& a, std::size_t half_bandwidth) {
  MG_REQUIRE(a.rows() == a.cols());
  BandedMatrix band(a.rows(), half_bandwidth);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = a.row_ptr()[i]; k < a.row_ptr()[i + 1]; ++k) {
      const std::size_t j = a.col_idx()[k];
      MG_REQUIRE_MSG(band.in_band(i, j), "CSR entry outside declared bandwidth");
      band.set(i, j, a.values()[k]);
    }
  }
  return band;
}

void BandedMatrix::assign_shifted_csr(const CsrMatrix& a, double scale_diag, double scale_a) {
  MG_REQUIRE(a.rows() == n_ && a.cols() == n_);
  std::fill(data_.begin(), data_.end(), 0.0);
  factorized_ = false;
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t k = a.row_ptr()[i]; k < a.row_ptr()[i + 1]; ++k) {
      const std::size_t j = a.col_idx()[k];
      MG_REQUIRE_MSG(in_band(i, j), "CSR entry outside declared bandwidth");
      data_[idx(i, j)] = scale_a * a.values()[k];
    }
    data_[idx(i, i)] += scale_diag;
  }
}

std::size_t BandedMatrix::idx(std::size_t i, std::size_t j) const {
  return i * (2 * hb_ + 1) + (j + hb_ - i);
}

bool BandedMatrix::in_band(std::size_t i, std::size_t j) const {
  return (j + hb_ >= i) && (j <= i + hb_) && i < n_ && j < n_;
}

double BandedMatrix::at(std::size_t i, std::size_t j) const {
  MG_REQUIRE(i < n_ && j < n_);
  if (!in_band(i, j)) return 0.0;
  return data_[idx(i, j)];
}

void BandedMatrix::set(std::size_t i, std::size_t j, double value) {
  MG_REQUIRE(in_band(i, j));
  data_[idx(i, j)] = value;
}

void BandedMatrix::add(std::size_t i, std::size_t j, double value) {
  MG_REQUIRE(in_band(i, j));
  data_[idx(i, j)] += value;
}

void BandedMatrix::multiply(const Vec& x, Vec& y) const {
  MG_REQUIRE(x.size() == n_);
  MG_REQUIRE_MSG(!factorized_, "multiply() after factorize() would use LU factors");
  y.assign(n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j_lo = i >= hb_ ? i - hb_ : 0;
    const std::size_t j_hi = std::min(n_ - 1, i + hb_);
    double s = 0.0;
    for (std::size_t j = j_lo; j <= j_hi; ++j) s += data_[idx(i, j)] * x[j];
    y[i] = s;
  }
}

void BandedMatrix::factorize() {
  MG_REQUIRE(!factorized_);
  for (std::size_t k = 0; k < n_; ++k) {
    const double pivot = data_[idx(k, k)];
    if (std::abs(pivot) < 1e-300) {
      throw std::runtime_error("BandedMatrix::factorize: zero pivot at row " + std::to_string(k));
    }
    const std::size_t i_hi = std::min(n_ - 1, k + hb_);
    for (std::size_t i = k + 1; i <= i_hi; ++i) {
      const double l = data_[idx(i, k)] / pivot;
      data_[idx(i, k)] = l;
      const std::size_t j_hi = std::min(n_ - 1, k + hb_);
      for (std::size_t j = k + 1; j <= j_hi; ++j) {
        data_[idx(i, j)] -= l * data_[idx(k, j)];
      }
    }
  }
  factorized_ = true;
}

void BandedMatrix::solve(const Vec& b, Vec& x) const {
  MG_REQUIRE(factorized_);
  MG_REQUIRE(b.size() == n_);
  x = b;
  // Forward substitution with unit lower factor.
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j_lo = i >= hb_ ? i - hb_ : 0;
    double s = x[i];
    for (std::size_t j = j_lo; j < i; ++j) s -= data_[idx(i, j)] * x[j];
    x[i] = s;
  }
  // Back substitution with upper factor.
  for (std::size_t ii = n_; ii-- > 0;) {
    const std::size_t j_hi = std::min(n_ - 1, ii + hb_);
    double s = x[ii];
    for (std::size_t j = ii + 1; j <= j_hi; ++j) s -= data_[idx(ii, j)] * x[j];
    x[ii] = s / data_[idx(ii, ii)];
  }
}

}  // namespace mg::linalg
