#include "linalg/kernels.hpp"

namespace mg::linalg {

const char* to_string(KernelPolicy p) {
  switch (p) {
    case KernelPolicy::Scalar: return "scalar";
    case KernelPolicy::Tiled: return "tiled";
  }
  return "unknown";
}

bool parse_kernel_policy(std::string_view text, KernelPolicy& out) {
  if (text == "scalar") {
    out = KernelPolicy::Scalar;
    return true;
  }
  if (text == "tiled") {
    out = KernelPolicy::Tiled;
    return true;
  }
  return false;
}

}  // namespace mg::linalg
