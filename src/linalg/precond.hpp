// Preconditioners for the Krylov solver.
//
// Identity (no preconditioning), Jacobi (diagonal), and ILU(0) on the CSR
// pattern.  ILU(0) is the default for the transport Jacobian: the stage
// matrix is an M-matrix-like 5-point operator where ILU(0) is both cheap and
// effective.
#pragma once

#include <memory>

#include "linalg/csr.hpp"
#include "linalg/vector_ops.hpp"

namespace mg::linalg {

/// Applies z = M^{-1} r for some approximation M of A.
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  virtual void apply(const Vec& r, Vec& z) const = 0;
  virtual const char* name() const = 0;
};

class IdentityPreconditioner final : public Preconditioner {
 public:
  void apply(const Vec& r, Vec& z) const override { z = r; }
  const char* name() const override { return "identity"; }
};

class JacobiPreconditioner final : public Preconditioner {
 public:
  explicit JacobiPreconditioner(const CsrMatrix& a);
  void apply(const Vec& r, Vec& z) const override;
  const char* name() const override { return "jacobi"; }

 private:
  Vec inv_diag_;
};

/// Incomplete LU with zero fill-in on the pattern of A.
class Ilu0Preconditioner final : public Preconditioner {
 public:
  explicit Ilu0Preconditioner(const CsrMatrix& a);
  void apply(const Vec& r, Vec& z) const override;
  const char* name() const override { return "ilu0"; }

 private:
  CsrMatrix lu_;                   // combined L (unit diag, not stored) and U factors
  std::vector<std::size_t> diag_;  // index of the diagonal entry in each row
};

/// Factory helper used by solver configuration.
enum class PrecondKind { Identity, Jacobi, Ilu0 };

std::unique_ptr<Preconditioner> make_preconditioner(PrecondKind kind, const CsrMatrix& a);

}  // namespace mg::linalg
