// Preconditioners for the Krylov solver.
//
// Identity (no preconditioning), Jacobi (diagonal), and ILU(0) on the CSR
// pattern.  ILU(0) is the default for the transport Jacobian: the stage
// matrix is an M-matrix-like 5-point operator where ILU(0) is both cheap and
// effective.
#pragma once

#include <memory>

#include "linalg/csr.hpp"
#include "linalg/vector_ops.hpp"

namespace mg::linalg {

/// Applies z = M^{-1} r for some approximation M of A.
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  virtual void apply(const Vec& r, Vec& z) const = 0;
  /// Policy-aware apply.  Defaults to the plain path; implementations that
  /// have a tiled/teamed variant (Jacobi, ILU0) override.  Results must be
  /// bitwise identical to the 2-argument apply under every context.
  virtual void apply(const Vec& r, Vec& z, const KernelContext& ctx) const {
    (void)ctx;
    apply(r, z);
  }
  virtual const char* name() const = 0;
};

class IdentityPreconditioner final : public Preconditioner {
 public:
  void apply(const Vec& r, Vec& z) const override { z = r; }
  const char* name() const override { return "identity"; }
};

class JacobiPreconditioner final : public Preconditioner {
 public:
  explicit JacobiPreconditioner(const CsrMatrix& a);
  void apply(const Vec& r, Vec& z) const override;
  void apply(const Vec& r, Vec& z, const KernelContext& ctx) const override;
  const char* name() const override { return "jacobi"; }

 private:
  Vec inv_diag_;
};

/// Incomplete LU with zero fill-in on the pattern of A.
///
/// The triangular sweeps in apply() are level-scheduled (wavefront): rows are
/// bucketed by dependency depth from the CSR structure, rows within a level
/// are mutually independent, and a row's accumulation still walks its CSR
/// entries in order — so the tiled apply (independent rows interleaved and/or
/// split across a team within each level) is bitwise identical to the seed
/// sequential sweep.  This replaces a red-black *reordering* variant, which
/// would change the factor itself and break bit-identity with the seed.
class Ilu0Preconditioner final : public Preconditioner {
 public:
  explicit Ilu0Preconditioner(const CsrMatrix& a);
  void apply(const Vec& r, Vec& z) const override;
  void apply(const Vec& r, Vec& z, const KernelContext& ctx) const override;
  const char* name() const override { return "ilu0"; }

  /// Number of wavefront levels in the L (resp. U) sweep; for diagnostics
  /// and tests.
  std::size_t lower_levels() const { return l_level_ptr_.size() - 1; }
  std::size_t upper_levels() const { return u_level_ptr_.size() - 1; }

 private:
  void build_level_schedule();

  CsrMatrix lu_;                   // combined L (unit diag, not stored) and U factors
  std::vector<std::size_t> diag_;  // index of the diagonal entry in each row
  // Wavefront schedule: rows of level v are l_level_rows_[l_level_ptr_[v] ..
  // l_level_ptr_[v+1]), ascending row index within a level.
  std::vector<std::size_t> l_level_rows_, l_level_ptr_;
  std::vector<std::size_t> u_level_rows_, u_level_ptr_;
};

/// Factory helper used by solver configuration.
enum class PrecondKind { Identity, Jacobi, Ilu0 };

std::unique_ptr<Preconditioner> make_preconditioner(PrecondKind kind, const CsrMatrix& a);

}  // namespace mg::linalg
