// Banded matrix with in-place LU factorisation (no pivoting).
//
// The 5-point stencil on an nx-by-ny grid (lexicographic ordering) yields a
// band of half-width nx; the Rosenbrock stage matrix (I - gamma*h*J) is
// strongly diagonally dominant for the step sizes the controller accepts, so
// unpivoted LU is stable here.  This is the direct baseline the iterative
// solver (BiCGSTAB) is compared against in bench/ablation.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/csr.hpp"
#include "linalg/vector_ops.hpp"

namespace mg::linalg {

class BandedMatrix {
 public:
  /// n-by-n matrix with entries only where |i - j| <= half_bandwidth.
  BandedMatrix(std::size_t n, std::size_t half_bandwidth);

  /// Builds from a CSR matrix; requires every stored entry to lie in band.
  static BandedMatrix from_csr(const CsrMatrix& a, std::size_t half_bandwidth);

  /// Refills the band in place with I*scale_diag + A*scale_a (the Rosenbrock
  /// stage matrix when called with (J, 1, -gamma*h)) and clears the
  /// factorised flag so factorize() can run again — the allocation-free
  /// equivalent of from_csr(shifted_identity(a, ...), hb).  Requires
  /// a.rows() == size() and every entry of `a` in band.
  void assign_shifted_csr(const CsrMatrix& a, double scale_diag, double scale_a);

  std::size_t size() const { return n_; }
  std::size_t half_bandwidth() const { return hb_; }

  double at(std::size_t i, std::size_t j) const;
  void set(std::size_t i, std::size_t j, double value);
  void add(std::size_t i, std::size_t j, double value);

  /// y = A * x (only meaningful before factorize()).
  void multiply(const Vec& x, Vec& y) const;

  /// In-place LU (Doolittle, no pivoting).  Throws on a (near-)zero pivot.
  void factorize();

  /// Policy-aware factorisation.  Scalar is the seed loop; Tiled runs the
  /// trailing update through the SIMD mul-sub kernels with four target rows
  /// blocked against each pivot row.  The update of entry (i, j) at
  /// elimination step k is the same single multiply-subtract in either
  /// policy (steps stay outermost, elements are disjoint within a step), so
  /// the factors are bitwise identical.  The substitution sweeps in solve()
  /// are chain-serial by row and stay scalar under every policy.
  void factorize(const KernelContext& ctx);

  /// Solves A x = b using the factors; requires factorize() first.
  void solve(const Vec& b, Vec& x) const;

  bool factorized() const { return factorized_; }

 private:
  std::size_t idx(std::size_t i, std::size_t j) const;
  bool in_band(std::size_t i, std::size_t j) const;

  std::size_t n_;
  std::size_t hb_;
  std::vector<double> data_;  // row-major band storage, width 2*hb_+1
  bool factorized_ = false;
};

}  // namespace mg::linalg
