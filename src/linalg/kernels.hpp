// Kernel execution policy for the linalg hot paths.
//
// Every compute kernel (CSR SpMV, fused triads, banded LU, preconditioner
// applies) runs under a KernelContext that selects one of two policies:
//
//  * Scalar — the seed code paths, byte-for-byte.  This is the reference
//    every other configuration is asserted bitwise-identical against.
//  * Tiled — hand-tiled kernels: multi-row interleaved SpMV and triangular
//    sweeps (independent accumulator chains in flight instead of one),
//    register-blocked banded-LU trailing updates, and runtime-dispatched
//    AVX2/AVX-512 elementwise vector ops.
//
// The determinism contract (DESIGN.md §14): a tiled kernel never reassociates
// a floating-point reduction.  Element-wise work (SpMV row partitioning,
// triad updates, the LU trailing update) carries no cross-element
// accumulation, so it can be vectorised and split across an inner worker
// team freely; every cross-element sum (dots, norms) keeps the scalar
// policy's left-to-right chain.  Consequently Tiled output is bitwise
// identical to Scalar at every team size — the switch is a pure performance
// knob, and tests/test_kernels.cpp holds it to that.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace mg::linalg {

class ParallelContext;

enum class KernelPolicy : std::uint8_t {
  Scalar = 0,  ///< seed code paths, byte-for-byte
  Tiled = 1,   ///< interleaved/SIMD kernels; bitwise-identical results
};

const char* to_string(KernelPolicy p);

/// Parses "scalar" / "tiled"; returns false (out unchanged) otherwise.
bool parse_kernel_policy(std::string_view text, KernelPolicy& out);

/// Per-call kernel configuration threaded through the solvers.  The team is
/// borrowed, never owned; nullptr means the calling thread does all work.
struct KernelContext {
  KernelPolicy policy = KernelPolicy::Scalar;
  ParallelContext* team = nullptr;

  bool tiled() const { return policy == KernelPolicy::Tiled; }
};

}  // namespace mg::linalg
