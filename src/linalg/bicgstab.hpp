// Preconditioned BiCGSTAB (van der Vorst 1992) for the nonsymmetric stage
// systems (I - gamma*h*J) x = b arising in the Rosenbrock integrator.
#pragma once

#include <cstddef>

#include "linalg/csr.hpp"
#include "linalg/precond.hpp"
#include "linalg/vector_ops.hpp"

namespace mg::linalg {

struct SolveOptions {
  double rel_tol = 1e-10;   ///< stop when ||r|| <= rel_tol * ||b||
  double abs_tol = 1e-14;   ///< ... or ||r|| <= abs_tol
  std::size_t max_iter = 500;
};

struct SolveReport {
  bool converged = false;
  std::size_t iterations = 0;
  double residual_norm = 0.0;  ///< final true-residual norm
};

/// Scratch vectors for bicgstab().  Hoisted out of the solve so a caller
/// that solves many same-sized systems (two stage solves per Rosenbrock
/// step) pays for the nine allocations once, not per call.  Buffers are
/// resized on entry and fully overwritten before use; contents between
/// calls never influence the result.
struct KrylovWorkspace {
  Vec r, r0, p, v, s, t, phat, shat, tmp;
};

/// Solves A x = b starting from the supplied x (used as initial guess; a
/// wrongly-sized x is reset to zero).  The preconditioner must correspond
/// to (an approximation of) A.  Pass a KrylovWorkspace to reuse scratch
/// storage across calls; with ws == nullptr a local workspace is allocated.
///
/// The kernel context routes the element-wise work (SpMV, triad updates,
/// preconditioner applies) through the policy/team selected by the caller;
/// every inner product and norm keeps the scalar left-to-right chain on the
/// calling thread, so the iterate sequence — and the solution — is bitwise
/// identical across policies and team sizes.
SolveReport bicgstab(const CsrMatrix& a, const Vec& b, Vec& x, const Preconditioner& m,
                     const SolveOptions& opts = {}, KrylovWorkspace* ws = nullptr,
                     const KernelContext& kctx = {});

}  // namespace mg::linalg
