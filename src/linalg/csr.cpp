#include "linalg/csr.hpp"

#include <algorithm>

#include "linalg/parallel.hpp"
#include "support/check.hpp"

namespace mg::linalg {

namespace {

// Row-range SpMV kernels shared by multiply / multiply_sub.  Subtract=false
// computes y = A x, Subtract=true computes y = b - A x.  Per row the
// accumulation walks the CSR entries left-to-right — exactly the seed loop —
// in both variants, so tiled and scalar agree bitwise.

template <bool Subtract>
void spmv_range_scalar(const std::size_t* __restrict rp, const std::size_t* __restrict ci,
                       const double* __restrict va, const double* __restrict xp,
                       const double* __restrict bp, double* __restrict yp, std::size_t ib,
                       std::size_t ie) {
  for (std::size_t i = ib; i < ie; ++i) {
    double s = Subtract ? bp[i] : 0.0;
    if constexpr (Subtract) {
      for (std::size_t k = rp[i]; k < rp[i + 1]; ++k) s -= va[k] * xp[ci[k]];
    } else {
      for (std::size_t k = rp[i]; k < rp[i + 1]; ++k) s += va[k] * xp[ci[k]];
    }
    yp[i] = s;
  }
}

// Four rows in flight: four independent accumulator chains hide the
// load-multiply-add latency of the gathered x accesses.  Each chain still
// consumes its own row's entries in CSR order.
template <bool Subtract>
void spmv_range_tiled(const std::size_t* __restrict rp, const std::size_t* __restrict ci,
                      const double* __restrict va, const double* __restrict xp,
                      const double* __restrict bp, double* __restrict yp, std::size_t ib,
                      std::size_t ie) {
  std::size_t i = ib;
  for (; i + 4 <= ie; i += 4) {
    std::size_t k0 = rp[i], k1 = rp[i + 1], k2 = rp[i + 2], k3 = rp[i + 3];
    const std::size_t e0 = rp[i + 1], e1 = rp[i + 2], e2 = rp[i + 3], e3 = rp[i + 4];
    double s0 = Subtract ? bp[i] : 0.0;
    double s1 = Subtract ? bp[i + 1] : 0.0;
    double s2 = Subtract ? bp[i + 2] : 0.0;
    double s3 = Subtract ? bp[i + 3] : 0.0;
    const std::size_t m =
        std::min(std::min(e0 - k0, e1 - k1), std::min(e2 - k2, e3 - k3));
    for (std::size_t t = 0; t < m; ++t) {
      if constexpr (Subtract) {
        s0 -= va[k0 + t] * xp[ci[k0 + t]];
        s1 -= va[k1 + t] * xp[ci[k1 + t]];
        s2 -= va[k2 + t] * xp[ci[k2 + t]];
        s3 -= va[k3 + t] * xp[ci[k3 + t]];
      } else {
        s0 += va[k0 + t] * xp[ci[k0 + t]];
        s1 += va[k1 + t] * xp[ci[k1 + t]];
        s2 += va[k2 + t] * xp[ci[k2 + t]];
        s3 += va[k3 + t] * xp[ci[k3 + t]];
      }
    }
    k0 += m;
    k1 += m;
    k2 += m;
    k3 += m;
    if constexpr (Subtract) {
      for (; k0 < e0; ++k0) s0 -= va[k0] * xp[ci[k0]];
      for (; k1 < e1; ++k1) s1 -= va[k1] * xp[ci[k1]];
      for (; k2 < e2; ++k2) s2 -= va[k2] * xp[ci[k2]];
      for (; k3 < e3; ++k3) s3 -= va[k3] * xp[ci[k3]];
    } else {
      for (; k0 < e0; ++k0) s0 += va[k0] * xp[ci[k0]];
      for (; k1 < e1; ++k1) s1 += va[k1] * xp[ci[k1]];
      for (; k2 < e2; ++k2) s2 += va[k2] * xp[ci[k2]];
      for (; k3 < e3; ++k3) s3 += va[k3] * xp[ci[k3]];
    }
    yp[i] = s0;
    yp[i + 1] = s1;
    yp[i + 2] = s2;
    yp[i + 3] = s3;
  }
  spmv_range_scalar<Subtract>(rp, ci, va, xp, bp, yp, i, ie);
}

template <bool Subtract>
void spmv_dispatch(const CsrMatrix& a, const double* bp, const Vec& x, Vec& y,
                   const KernelContext& ctx) {
  y.resize(a.rows());
  const std::size_t* __restrict rp = a.row_ptr().data();
  const std::size_t* __restrict ci = a.col_idx().data();
  const double* __restrict va = a.values().data();
  const double* __restrict xp = x.data();
  double* __restrict yp = y.data();
  auto body = [&](std::size_t b, std::size_t e) {
    if (ctx.tiled()) {
      spmv_range_tiled<Subtract>(rp, ci, va, xp, bp, yp, b, e);
    } else {
      spmv_range_scalar<Subtract>(rp, ci, va, xp, bp, yp, b, e);
    }
  };
  if (ctx.team) {
    ctx.team->parallel_for(a.rows(), body);
  } else {
    body(0, a.rows());
  }
}

}  // namespace

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols, std::vector<std::size_t> row_ptr,
                     std::vector<std::size_t> col_idx, std::vector<double> values)
    : rows_(rows), cols_(cols), row_ptr_(std::move(row_ptr)), col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  MG_REQUIRE(row_ptr_.size() == rows_ + 1);
  MG_REQUIRE(col_idx_.size() == values_.size());
  MG_REQUIRE(row_ptr_.front() == 0 && row_ptr_.back() == values_.size());
  for (std::size_t i = 0; i < rows_; ++i) {
    MG_REQUIRE(row_ptr_[i] <= row_ptr_[i + 1]);
    for (std::size_t k = row_ptr_[i]; k + 1 < row_ptr_[i + 1]; ++k) {
      MG_REQUIRE_MSG(col_idx_[k] < col_idx_[k + 1], "columns must be sorted and unique");
    }
    if (row_ptr_[i] < row_ptr_[i + 1]) MG_REQUIRE(col_idx_[row_ptr_[i + 1] - 1] < cols_);
  }
}

void CsrMatrix::multiply(const Vec& x, Vec& y) const {
  MG_REQUIRE(x.size() == cols_);
  y.resize(rows_);
  const std::size_t* __restrict rp = row_ptr_.data();
  const std::size_t* __restrict ci = col_idx_.data();
  const double* __restrict va = values_.data();
  const double* __restrict xp = x.data();
  double* __restrict yp = y.data();
  for (std::size_t i = 0; i < rows_; ++i) {
    double s = 0.0;
    for (std::size_t k = rp[i]; k < rp[i + 1]; ++k) s += va[k] * xp[ci[k]];
    yp[i] = s;
  }
}

void CsrMatrix::multiply(const Vec& x, Vec& y, const KernelContext& ctx) const {
  MG_REQUIRE(x.size() == cols_);
  spmv_dispatch<false>(*this, nullptr, x, y, ctx);
}

void CsrMatrix::residual(const Vec& b, const Vec& x, Vec& y) const {
  multiply_sub(*this, b, x, y);
}

Vec CsrMatrix::diagonal() const {
  Vec d(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      const std::size_t j = col_idx_[k];
      if (j >= i) {
        if (j == i) d[i] = values_[k];
        break;  // columns are sorted: nothing at or before the diagonal left
      }
    }
  }
  return d;
}

std::vector<std::size_t> CsrMatrix::diagonal_offsets() const {
  std::vector<std::size_t> offsets(rows_, kNoDiagonal);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      const std::size_t j = col_idx_[k];
      if (j >= i) {
        if (j == i) offsets[i] = k;
        break;
      }
    }
  }
  return offsets;
}

double CsrMatrix::at(std::size_t i, std::size_t j) const {
  MG_REQUIRE(i < rows_ && j < cols_);
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[i]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[i + 1]);
  const auto it = std::lower_bound(begin, end, j);
  if (it != end && *it == j) return values_[static_cast<std::size_t>(it - col_idx_.begin())];
  return 0.0;
}

bool CsrMatrix::same_pattern(const CsrMatrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ && row_ptr_ == other.row_ptr_ &&
         col_idx_ == other.col_idx_;
}

CsrBuilder::CsrBuilder(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), row_entries_(rows) {}

void CsrBuilder::add(std::size_t row, std::size_t col, double value) {
  MG_REQUIRE(row < rows_ && col < cols_);
  row_entries_[row].push_back({col, value});
}

CsrMatrix CsrBuilder::build() const {
  std::vector<std::size_t> row_ptr(rows_ + 1, 0);
  std::vector<std::size_t> col_idx;
  std::vector<double> values;
  std::vector<Entry> row;
  for (std::size_t i = 0; i < rows_; ++i) {
    row = row_entries_[i];
    std::sort(row.begin(), row.end(), [](const Entry& a, const Entry& b) { return a.col < b.col; });
    std::size_t count = 0;
    for (std::size_t k = 0; k < row.size();) {
      std::size_t j = k + 1;
      double s = row[k].value;
      while (j < row.size() && row[j].col == row[k].col) s += row[j++].value;
      col_idx.push_back(row[k].col);
      values.push_back(s);
      ++count;
      k = j;
    }
    row_ptr[i + 1] = row_ptr[i] + count;
  }
  return CsrMatrix(rows_, cols_, std::move(row_ptr), std::move(col_idx), std::move(values));
}

void CsrBuilder::clear() {
  for (auto& r : row_entries_) r.clear();
}

CsrMatrix shifted_identity(const CsrMatrix& a, double scale_diag, double scale_a) {
  MG_REQUIRE(a.rows() == a.cols());
  const std::size_t n = a.rows();
  std::vector<std::size_t> row_ptr(n + 1, 0);
  std::vector<std::size_t> col_idx;
  std::vector<double> values;
  col_idx.reserve(a.nnz() + n);
  values.reserve(a.nnz() + n);
  for (std::size_t i = 0; i < n; ++i) {
    bool diag_seen = false;
    for (std::size_t k = a.row_ptr()[i]; k < a.row_ptr()[i + 1]; ++k) {
      const std::size_t j = a.col_idx()[k];
      if (j == i) {
        col_idx.push_back(j);
        values.push_back(scale_diag + scale_a * a.values()[k]);
        diag_seen = true;
      } else if (j > i && !diag_seen) {
        // Insert the missing diagonal before the first super-diagonal entry.
        col_idx.push_back(i);
        values.push_back(scale_diag);
        diag_seen = true;
        col_idx.push_back(j);
        values.push_back(scale_a * a.values()[k]);
      } else {
        col_idx.push_back(j);
        values.push_back(scale_a * a.values()[k]);
      }
    }
    if (!diag_seen) {
      col_idx.push_back(i);
      values.push_back(scale_diag);
    }
    row_ptr[i + 1] = col_idx.size();
  }
  return CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx), std::move(values));
}

void multiply_sub(const CsrMatrix& a, const Vec& b, const Vec& x, Vec& y) {
  MG_REQUIRE(b.size() == a.rows() && x.size() == a.cols());
  y.resize(a.rows());
  const std::size_t rows = a.rows();
  const std::size_t* __restrict rp = a.row_ptr().data();
  const std::size_t* __restrict ci = a.col_idx().data();
  const double* __restrict va = a.values().data();
  const double* __restrict bp = b.data();
  const double* __restrict xp = x.data();
  double* __restrict yp = y.data();
  for (std::size_t i = 0; i < rows; ++i) {
    double s = bp[i];
    for (std::size_t k = rp[i]; k < rp[i + 1]; ++k) s -= va[k] * xp[ci[k]];
    yp[i] = s;
  }
}

void multiply_sub(const CsrMatrix& a, const Vec& b, const Vec& x, Vec& y,
                  const KernelContext& ctx) {
  MG_REQUIRE(b.size() == a.rows() && x.size() == a.cols());
  spmv_dispatch<true>(a, b.data(), x, y, ctx);
}

}  // namespace mg::linalg
