#include "linalg/simd.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define MG_SIMD_X86 1
#include <immintrin.h>
#endif

namespace mg::linalg::simd {
namespace {

// ---------------------------------------------------------------------------
// Portable fallback: 4-way unrolled plain C++.  Element-wise, so unrolling
// only reorders independent iterations; -ffp-contract=off (set on mg_linalg)
// keeps the mul and add/sub as two roundings, matching the scalar kernels.
// ---------------------------------------------------------------------------

void mulsub_row_portable(double* __restrict y, const double* __restrict x, double l,
                         std::size_t n) {
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    y[j] -= l * x[j];
    y[j + 1] -= l * x[j + 1];
    y[j + 2] -= l * x[j + 2];
    y[j + 3] -= l * x[j + 3];
  }
  for (; j < n; ++j) y[j] -= l * x[j];
}

void mulsub_rows4_portable(double* __restrict y0, double* __restrict y1, double* __restrict y2,
                           double* __restrict y3, const double* __restrict x, double l0, double l1,
                           double l2, double l3, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    const double xv = x[j];
    y0[j] -= l0 * xv;
    y1[j] -= l1 * xv;
    y2[j] -= l2 * xv;
    y3[j] -= l3 * xv;
  }
}

void triad_p_update_portable(double* __restrict p, const double* __restrict r,
                             const double* __restrict v, double beta, double omega,
                             std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * (p[i] - omega * v[i]);
}

void triad_x_update_portable(double* __restrict x, const double* __restrict a,
                             const double* __restrict b, double alpha, double omega,
                             std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] += alpha * a[i] + omega * b[i];
}

void axpy_portable(double* __restrict y, const double* __restrict x, double alpha,
                   std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void hadamard_portable(double* __restrict z, const double* __restrict r,
                       const double* __restrict d, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) z[i] = r[i] * d[i];
}

#if defined(MG_SIMD_X86)

// ---------------------------------------------------------------------------
// AVX2 (4 doubles/op).  Explicit _mm256_sub_pd(_mm256_mul_pd(...)) — two
// roundings, never vfmadd — so every lane reproduces the scalar arithmetic.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) void mulsub_row_avx2(double* __restrict y,
                                                     const double* __restrict x, double l,
                                                     std::size_t n) {
  const __m256d vl = _mm256_set1_pd(l);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d vy = _mm256_loadu_pd(y + j);
    const __m256d vx = _mm256_loadu_pd(x + j);
    _mm256_storeu_pd(y + j, _mm256_sub_pd(vy, _mm256_mul_pd(vl, vx)));
  }
  for (; j < n; ++j) y[j] -= l * x[j];
}

__attribute__((target("avx2"))) void mulsub_rows4_avx2(double* __restrict y0, double* __restrict y1,
                                                       double* __restrict y2, double* __restrict y3,
                                                       const double* __restrict x, double l0,
                                                       double l1, double l2, double l3,
                                                       std::size_t n) {
  const __m256d vl0 = _mm256_set1_pd(l0);
  const __m256d vl1 = _mm256_set1_pd(l1);
  const __m256d vl2 = _mm256_set1_pd(l2);
  const __m256d vl3 = _mm256_set1_pd(l3);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d vx = _mm256_loadu_pd(x + j);
    _mm256_storeu_pd(y0 + j, _mm256_sub_pd(_mm256_loadu_pd(y0 + j), _mm256_mul_pd(vl0, vx)));
    _mm256_storeu_pd(y1 + j, _mm256_sub_pd(_mm256_loadu_pd(y1 + j), _mm256_mul_pd(vl1, vx)));
    _mm256_storeu_pd(y2 + j, _mm256_sub_pd(_mm256_loadu_pd(y2 + j), _mm256_mul_pd(vl2, vx)));
    _mm256_storeu_pd(y3 + j, _mm256_sub_pd(_mm256_loadu_pd(y3 + j), _mm256_mul_pd(vl3, vx)));
  }
  for (; j < n; ++j) {
    const double xv = x[j];
    y0[j] -= l0 * xv;
    y1[j] -= l1 * xv;
    y2[j] -= l2 * xv;
    y3[j] -= l3 * xv;
  }
}

__attribute__((target("avx2"))) void triad_p_update_avx2(double* __restrict p,
                                                         const double* __restrict r,
                                                         const double* __restrict v, double beta,
                                                         double omega, std::size_t n) {
  const __m256d vb = _mm256_set1_pd(beta);
  const __m256d vo = _mm256_set1_pd(omega);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d t =
        _mm256_sub_pd(_mm256_loadu_pd(p + i), _mm256_mul_pd(vo, _mm256_loadu_pd(v + i)));
    _mm256_storeu_pd(p + i, _mm256_add_pd(_mm256_loadu_pd(r + i), _mm256_mul_pd(vb, t)));
  }
  for (; i < n; ++i) p[i] = r[i] + beta * (p[i] - omega * v[i]);
}

__attribute__((target("avx2"))) void triad_x_update_avx2(double* __restrict x,
                                                         const double* __restrict a,
                                                         const double* __restrict b, double alpha,
                                                         double omega, std::size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  const __m256d vo = _mm256_set1_pd(omega);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d t = _mm256_add_pd(_mm256_mul_pd(va, _mm256_loadu_pd(a + i)),
                                    _mm256_mul_pd(vo, _mm256_loadu_pd(b + i)));
    _mm256_storeu_pd(x + i, _mm256_add_pd(_mm256_loadu_pd(x + i), t));
  }
  for (; i < n; ++i) x[i] += alpha * a[i] + omega * b[i];
}

__attribute__((target("avx2"))) void axpy_avx2(double* __restrict y, const double* __restrict x,
                                               double alpha, std::size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), _mm256_mul_pd(va, _mm256_loadu_pd(x + i))));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

__attribute__((target("avx2"))) void hadamard_avx2(double* __restrict z,
                                                   const double* __restrict r,
                                                   const double* __restrict d, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(z + i, _mm256_mul_pd(_mm256_loadu_pd(r + i), _mm256_loadu_pd(d + i)));
  }
  for (; i < n; ++i) z[i] = r[i] * d[i];
}

// ---------------------------------------------------------------------------
// AVX-512F (8 doubles/op), same two-rounding discipline.
// ---------------------------------------------------------------------------

__attribute__((target("avx512f"))) void mulsub_row_avx512(double* __restrict y,
                                                          const double* __restrict x, double l,
                                                          std::size_t n) {
  const __m512d vl = _mm512_set1_pd(l);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m512d vy = _mm512_loadu_pd(y + j);
    const __m512d vx = _mm512_loadu_pd(x + j);
    _mm512_storeu_pd(y + j, _mm512_sub_pd(vy, _mm512_mul_pd(vl, vx)));
  }
  for (; j < n; ++j) y[j] -= l * x[j];
}

__attribute__((target("avx512f"))) void mulsub_rows4_avx512(
    double* __restrict y0, double* __restrict y1, double* __restrict y2, double* __restrict y3,
    const double* __restrict x, double l0, double l1, double l2, double l3, std::size_t n) {
  const __m512d vl0 = _mm512_set1_pd(l0);
  const __m512d vl1 = _mm512_set1_pd(l1);
  const __m512d vl2 = _mm512_set1_pd(l2);
  const __m512d vl3 = _mm512_set1_pd(l3);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m512d vx = _mm512_loadu_pd(x + j);
    _mm512_storeu_pd(y0 + j, _mm512_sub_pd(_mm512_loadu_pd(y0 + j), _mm512_mul_pd(vl0, vx)));
    _mm512_storeu_pd(y1 + j, _mm512_sub_pd(_mm512_loadu_pd(y1 + j), _mm512_mul_pd(vl1, vx)));
    _mm512_storeu_pd(y2 + j, _mm512_sub_pd(_mm512_loadu_pd(y2 + j), _mm512_mul_pd(vl2, vx)));
    _mm512_storeu_pd(y3 + j, _mm512_sub_pd(_mm512_loadu_pd(y3 + j), _mm512_mul_pd(vl3, vx)));
  }
  for (; j < n; ++j) {
    const double xv = x[j];
    y0[j] -= l0 * xv;
    y1[j] -= l1 * xv;
    y2[j] -= l2 * xv;
    y3[j] -= l3 * xv;
  }
}

__attribute__((target("avx512f"))) void triad_p_update_avx512(double* __restrict p,
                                                              const double* __restrict r,
                                                              const double* __restrict v,
                                                              double beta, double omega,
                                                              std::size_t n) {
  const __m512d vb = _mm512_set1_pd(beta);
  const __m512d vo = _mm512_set1_pd(omega);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d t =
        _mm512_sub_pd(_mm512_loadu_pd(p + i), _mm512_mul_pd(vo, _mm512_loadu_pd(v + i)));
    _mm512_storeu_pd(p + i, _mm512_add_pd(_mm512_loadu_pd(r + i), _mm512_mul_pd(vb, t)));
  }
  for (; i < n; ++i) p[i] = r[i] + beta * (p[i] - omega * v[i]);
}

__attribute__((target("avx512f"))) void triad_x_update_avx512(double* __restrict x,
                                                              const double* __restrict a,
                                                              const double* __restrict b,
                                                              double alpha, double omega,
                                                              std::size_t n) {
  const __m512d va = _mm512_set1_pd(alpha);
  const __m512d vo = _mm512_set1_pd(omega);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d t = _mm512_add_pd(_mm512_mul_pd(va, _mm512_loadu_pd(a + i)),
                                    _mm512_mul_pd(vo, _mm512_loadu_pd(b + i)));
    _mm512_storeu_pd(x + i, _mm512_add_pd(_mm512_loadu_pd(x + i), t));
  }
  for (; i < n; ++i) x[i] += alpha * a[i] + omega * b[i];
}

__attribute__((target("avx512f"))) void axpy_avx512(double* __restrict y,
                                                    const double* __restrict x, double alpha,
                                                    std::size_t n) {
  const __m512d va = _mm512_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(
        y + i, _mm512_add_pd(_mm512_loadu_pd(y + i), _mm512_mul_pd(va, _mm512_loadu_pd(x + i))));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

__attribute__((target("avx512f"))) void hadamard_avx512(double* __restrict z,
                                                        const double* __restrict r,
                                                        const double* __restrict d, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(z + i, _mm512_mul_pd(_mm512_loadu_pd(r + i), _mm512_loadu_pd(d + i)));
  }
  for (; i < n; ++i) z[i] = r[i] * d[i];
}

#endif  // MG_SIMD_X86

struct Dispatch {
  const char* name;
  void (*mulsub_row)(double* __restrict, const double* __restrict, double, std::size_t);
  void (*mulsub_rows4)(double* __restrict, double* __restrict, double* __restrict,
                       double* __restrict, const double* __restrict, double, double, double,
                       double, std::size_t);
  void (*triad_p_update)(double* __restrict, const double* __restrict, const double* __restrict,
                         double, double, std::size_t);
  void (*triad_x_update)(double* __restrict, const double* __restrict, const double* __restrict,
                         double, double, std::size_t);
  void (*axpy)(double* __restrict, const double* __restrict, double, std::size_t);
  void (*hadamard)(double* __restrict, const double* __restrict, const double* __restrict,
                   std::size_t);
};

const Dispatch& dispatch() {
  static const Dispatch d = [] {
    Dispatch t{"portable",         mulsub_row_portable,     mulsub_rows4_portable,
               triad_p_update_portable, triad_x_update_portable, axpy_portable,
               hadamard_portable};
#if defined(MG_SIMD_X86)
    if (__builtin_cpu_supports("avx2")) {
      t = {"avx2",           mulsub_row_avx2,     mulsub_rows4_avx2, triad_p_update_avx2,
           triad_x_update_avx2, axpy_avx2,           hadamard_avx2};
    }
    if (__builtin_cpu_supports("avx512f")) {
      t = {"avx512",           mulsub_row_avx512,     mulsub_rows4_avx512, triad_p_update_avx512,
           triad_x_update_avx512, axpy_avx512,           hadamard_avx512};
    }
#endif
    return t;
  }();
  return d;
}

}  // namespace

const char* isa_name() { return dispatch().name; }

void mulsub_row(double* __restrict y, const double* __restrict x, double l, std::size_t n) {
  dispatch().mulsub_row(y, x, l, n);
}

void mulsub_rows4(double* __restrict y0, double* __restrict y1, double* __restrict y2,
                  double* __restrict y3, const double* __restrict x, double l0, double l1,
                  double l2, double l3, std::size_t n) {
  dispatch().mulsub_rows4(y0, y1, y2, y3, x, l0, l1, l2, l3, n);
}

void triad_p_update(double* __restrict p, const double* __restrict r, const double* __restrict v,
                    double beta, double omega, std::size_t n) {
  dispatch().triad_p_update(p, r, v, beta, omega, n);
}

void triad_x_update(double* __restrict x, const double* __restrict a, const double* __restrict b,
                    double alpha, double omega, std::size_t n) {
  dispatch().triad_x_update(x, a, b, alpha, omega, n);
}

void axpy(double* __restrict y, const double* __restrict x, double alpha, std::size_t n) {
  dispatch().axpy(y, x, alpha, n);
}

void hadamard(double* __restrict z, const double* __restrict r, const double* __restrict d,
              std::size_t n) {
  dispatch().hadamard(z, r, d, n);
}

}  // namespace mg::linalg::simd
