// Dense vector kernels used by the solvers and integrators.
//
// Vectors are plain std::vector<double>; these free functions keep the hot
// loops in one translation unit and give the benches a stable target.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/kernels.hpp"

namespace mg::linalg {

using Vec = std::vector<double>;

/// y += alpha * x.  Sizes must match.
void axpy(double alpha, const Vec& x, Vec& y);

/// Policy-aware axpy: Scalar runs the seed loop, Tiled the SIMD kernel, and a
/// team (either policy) partitions the range.  Element-wise, so bitwise
/// identical to the seed loop in every configuration.
void axpy(double alpha, const Vec& x, Vec& y, const KernelContext& ctx);

/// y = alpha * x + beta * y.  Sizes must match.
void axpby(double alpha, const Vec& x, double beta, Vec& y);

/// Fused axpy + squared norm: out = y + alpha * x, returns dot(out, out).
/// One sweep where an axpy followed by a dot would take two — the BiCGSTAB
/// loop uses it for the s/r updates whose norms feed the convergence test.
/// `out` is resized; it must not alias `x` or `y`.
double axpy_dot(double alpha, const Vec& x, const Vec& y, Vec& out);

/// Two inner products sharing the left operand in one sweep:
/// ab = dot(a, b), ac = dot(a, c).  Sizes must match.
void dot2(const Vec& a, const Vec& b, const Vec& c, double& ab, double& ac);

/// Euclidean inner product.
double dot(const Vec& a, const Vec& b);

/// Euclidean (L2) norm.
double norm2(const Vec& v);

/// Max (L-infinity) norm.
double norm_inf(const Vec& v);

/// Weighted RMS norm used by the Rosenbrock error controller:
/// sqrt( (1/n) * sum_i (v_i / (atol + rtol*|ref_i|))^2 ).
double wrms_norm(const Vec& v, const Vec& ref, double atol, double rtol);

/// v *= alpha.
void scale(Vec& v, double alpha);

/// out = a - b.  Sizes must match; `out` is resized.
void subtract(const Vec& a, const Vec& b, Vec& out);

/// Fills with a constant.
void fill(Vec& v, double value);

/// BiCGSTAB direction update: p = r + beta * (p - omega * v).  Element-wise;
/// per element the operation sequence matches the seed inline loop exactly,
/// so Tiled/teamed runs are bitwise identical to Scalar.  Sizes must match.
void fused_p_update(double beta, double omega, const Vec& r, const Vec& v, Vec& p,
                    const KernelContext& ctx = {});

/// BiCGSTAB solution update: x += alpha * a + omega * b.  Same bit-identity
/// argument as fused_p_update.  Sizes must match.
void fused_x_update(double alpha, double omega, const Vec& a, const Vec& b, Vec& x,
                    const KernelContext& ctx = {});

}  // namespace mg::linalg
