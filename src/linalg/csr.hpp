// Compressed-sparse-row matrix and builder.
//
// The transport discretisation assembles the Jacobian of the semi-discrete
// advection–diffusion operator as a CSR matrix every accepted Rosenbrock step
// (the paper: "this A matrix must be built up in the program which takes a
// lot of time").  Column indices within each row are kept sorted so ILU(0)
// and structural comparisons are cheap.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/vector_ops.hpp"

namespace mg::linalg {

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Assembles from raw CSR arrays.  row_ptr.size() == rows+1; column indices
  /// must be sorted and unique within each row and < cols.
  CsrMatrix(std::size_t rows, std::size_t cols, std::vector<std::size_t> row_ptr,
            std::vector<std::size_t> col_idx, std::vector<double> values);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::size_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>& values() { return values_; }

  /// y = A * x.  `y` is resized and every entry overwritten (no zero-fill
  /// pass); it must not alias `x`.
  void multiply(const Vec& x, Vec& y) const;

  /// Policy-aware SpMV.  Scalar runs the seed row loop; Tiled keeps four
  /// independent rows in flight (each row's accumulation chain stays in CSR
  /// order, so results are bitwise identical); a team partitions the rows.
  void multiply(const Vec& x, Vec& y, const KernelContext& ctx) const;

  /// y = b - A * x.
  void residual(const Vec& b, const Vec& x, Vec& y) const;

  /// Returns the main diagonal; zero where a row has no diagonal entry.
  /// Single ordered pass over the stored entries — no per-row probing.
  Vec diagonal() const;

  /// Sentinel for rows without a structural diagonal in diagonal_offsets().
  static constexpr std::size_t kNoDiagonal = static_cast<std::size_t>(-1);

  /// Value-array index of each row's diagonal entry (kNoDiagonal where the
  /// row has none).  Precompute once to update diagonals in place each step.
  std::vector<std::size_t> diagonal_offsets() const;

  /// Value at (i, j); zero if not stored.  Binary search within the row.
  double at(std::size_t i, std::size_t j) const;

  /// True if the two matrices have identical sparsity patterns.
  bool same_pattern(const CsrMatrix& other) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

/// Row-wise incremental builder.  add() accumulates duplicate coordinates;
/// build() sorts, merges and validates.
class CsrBuilder {
 public:
  CsrBuilder(std::size_t rows, std::size_t cols);

  /// Accumulates `value` at (row, col).
  void add(std::size_t row, std::size_t col, double value);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Produces the matrix.  The builder may be reused afterwards (entries kept).
  CsrMatrix build() const;

  void clear();

 private:
  struct Entry {
    std::size_t col;
    double value;
  };
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::vector<Entry>> row_entries_;
};

/// Returns I*scale_diag + A*scale_a with the pattern of A plus the diagonal.
/// Used to form the Rosenbrock stage matrix (I - gamma*h*J) from J.
CsrMatrix shifted_identity(const CsrMatrix& a, double scale_diag, double scale_a);

/// y = b - A * x, folded into one SpMV sweep.  `y` is resized; it must not
/// alias `b` or `x`.  CsrMatrix::residual delegates here; BiCGSTAB calls it
/// directly for its true-residual checks.
void multiply_sub(const CsrMatrix& a, const Vec& b, const Vec& x, Vec& y);

/// Policy-aware multiply_sub; same row-partition/interleave scheme (and the
/// same bit-identity argument) as CsrMatrix::multiply with a context.
void multiply_sub(const CsrMatrix& a, const Vec& b, const Vec& x, Vec& y,
                  const KernelContext& ctx);

}  // namespace mg::linalg
