#include "linalg/precond.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/parallel.hpp"
#include "linalg/simd.hpp"
#include "support/check.hpp"

namespace mg::linalg {

JacobiPreconditioner::JacobiPreconditioner(const CsrMatrix& a) : inv_diag_(a.diagonal()) {
  for (double& d : inv_diag_) {
    if (std::abs(d) < 1e-300) throw std::runtime_error("JacobiPreconditioner: zero diagonal");
    d = 1.0 / d;
  }
}

void JacobiPreconditioner::apply(const Vec& r, Vec& z) const {
  MG_REQUIRE(r.size() == inv_diag_.size());
  z.resize(r.size());
  for (std::size_t i = 0; i < r.size(); ++i) z[i] = r[i] * inv_diag_[i];
}

void JacobiPreconditioner::apply(const Vec& r, Vec& z, const KernelContext& ctx) const {
  MG_REQUIRE(r.size() == inv_diag_.size());
  z.resize(r.size());
  const double* __restrict rp = r.data();
  const double* __restrict dp = inv_diag_.data();
  double* __restrict zp = z.data();
  auto body = [&](std::size_t b, std::size_t e) {
    if (ctx.tiled()) {
      simd::hadamard(zp + b, rp + b, dp + b, e - b);
    } else {
      for (std::size_t i = b; i < e; ++i) zp[i] = rp[i] * dp[i];
    }
  };
  if (ctx.team) {
    ctx.team->parallel_for(r.size(), body);
  } else {
    body(0, r.size());
  }
}

Ilu0Preconditioner::Ilu0Preconditioner(const CsrMatrix& a) : lu_(a), diag_(a.rows()) {
  MG_REQUIRE(a.rows() == a.cols());
  const std::size_t n = lu_.rows();
  const auto& row_ptr = lu_.row_ptr();
  const auto& col_idx = lu_.col_idx();
  auto& values = lu_.values();

  // Locate diagonal entries (must exist structurally).
  for (std::size_t i = 0; i < n; ++i) {
    bool found = false;
    for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      if (col_idx[k] == i) {
        diag_[i] = k;
        found = true;
        break;
      }
    }
    if (!found) throw std::runtime_error("Ilu0Preconditioner: missing structural diagonal");
  }

  // IKJ variant of ILU(0): for each row i, eliminate with all previous rows k
  // that appear in row i's pattern.
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t kk = row_ptr[i]; kk < row_ptr[i + 1] && col_idx[kk] < i; ++kk) {
      const std::size_t k = col_idx[kk];
      const double pivot = values[diag_[k]];
      if (std::abs(pivot) < 1e-300) throw std::runtime_error("Ilu0Preconditioner: zero pivot");
      const double factor = values[kk] / pivot;
      values[kk] = factor;
      // Subtract factor * (row k, columns > k) restricted to row i's pattern.
      std::size_t pi = kk + 1;
      for (std::size_t pk = diag_[k] + 1; pk < row_ptr[k + 1]; ++pk) {
        const std::size_t col = col_idx[pk];
        while (pi < row_ptr[i + 1] && col_idx[pi] < col) ++pi;
        if (pi < row_ptr[i + 1] && col_idx[pi] == col) values[pi] -= factor * values[pk];
      }
    }
  }
  build_level_schedule();
}

void Ilu0Preconditioner::build_level_schedule() {
  const std::size_t n = lu_.rows();
  const auto& row_ptr = lu_.row_ptr();
  const auto& col_idx = lu_.col_idx();

  // Level of a row = 1 + max level of the rows it reads during the sweep;
  // rows that read nothing are level 0.  Bucketing rows in ascending index
  // within each level keeps the schedule deterministic.
  auto bucket = [n](const std::vector<std::size_t>& level, std::size_t n_levels,
                    std::vector<std::size_t>& rows, std::vector<std::size_t>& ptr) {
    ptr.assign(n_levels + 1, 0);
    for (std::size_t i = 0; i < n; ++i) ++ptr[level[i] + 1];
    for (std::size_t v = 0; v < n_levels; ++v) ptr[v + 1] += ptr[v];
    rows.resize(n);
    std::vector<std::size_t> cursor(ptr.begin(), ptr.end() - 1);
    for (std::size_t i = 0; i < n; ++i) rows[cursor[level[i]]++] = i;
  };

  std::vector<std::size_t> level(n, 0);
  std::size_t n_levels = 1;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t lv = 0;
    for (std::size_t k = row_ptr[i]; k < diag_[i]; ++k) {
      lv = std::max(lv, level[col_idx[k]] + 1);
    }
    level[i] = lv;
    n_levels = std::max(n_levels, lv + 1);
  }
  bucket(level, n_levels, l_level_rows_, l_level_ptr_);

  std::fill(level.begin(), level.end(), std::size_t{0});
  n_levels = 1;
  for (std::size_t ii = n; ii-- > 0;) {
    std::size_t lv = 0;
    for (std::size_t k = diag_[ii] + 1; k < row_ptr[ii + 1]; ++k) {
      lv = std::max(lv, level[col_idx[k]] + 1);
    }
    level[ii] = lv;
    n_levels = std::max(n_levels, lv + 1);
  }
  bucket(level, n_levels, u_level_rows_, u_level_ptr_);
}

void Ilu0Preconditioner::apply(const Vec& r, Vec& z) const {
  const std::size_t n = lu_.rows();
  MG_REQUIRE(r.size() == n);
  const auto& row_ptr = lu_.row_ptr();
  const auto& col_idx = lu_.col_idx();
  const auto& values = lu_.values();
  z.resize(n);
  // Solve L y = r (unit lower triangular).
  for (std::size_t i = 0; i < n; ++i) {
    double s = r[i];
    for (std::size_t k = row_ptr[i]; k < diag_[i]; ++k) s -= values[k] * z[col_idx[k]];
    z[i] = s;
  }
  // Solve U z = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = z[ii];
    for (std::size_t k = diag_[ii] + 1; k < row_ptr[ii + 1]; ++k) s -= values[k] * z[col_idx[k]];
    z[ii] = s / values[diag_[ii]];
  }
}

void Ilu0Preconditioner::apply(const Vec& r, Vec& z, const KernelContext& ctx) const {
  if (!ctx.tiled() && !ctx.team) {
    apply(r, z);
    return;
  }
  const std::size_t n = lu_.rows();
  MG_REQUIRE(r.size() == n);
  const std::size_t* __restrict row_ptr = lu_.row_ptr().data();
  const std::size_t* __restrict col_idx = lu_.col_idx().data();
  const double* __restrict values = lu_.values().data();
  const std::size_t* __restrict diag = diag_.data();
  z.resize(n);
  const double* __restrict rp = r.data();
  double* __restrict zp = z.data();

  // Wavefront sweeps: rows of one level only read z entries finalised by
  // earlier levels, so a level's rows can run in any order — including split
  // across the team — while each row's own accumulation stays in CSR order.
  // That makes this bitwise identical to the sequential apply() above.
  auto sweep = [&](const std::vector<std::size_t>& rows, const std::vector<std::size_t>& ptr,
                   auto&& row_body) {
    const std::size_t* __restrict rows_p = rows.data();
    const std::size_t n_levels = ptr.size() - 1;
    for (std::size_t v = 0; v < n_levels; ++v) {
      const std::size_t lo = ptr[v], hi = ptr[v + 1];
      auto body = [&](std::size_t b, std::size_t e) {
        for (std::size_t t = b; t < e; ++t) row_body(rows_p[lo + t]);
      };
      if (ctx.team) {
        ctx.team->parallel_for(hi - lo, body);
      } else {
        body(0, hi - lo);
      }
    }
  };

  // L y = r (unit lower triangular), y stored in z.
  sweep(l_level_rows_, l_level_ptr_, [&](std::size_t i) {
    double s = rp[i];
    for (std::size_t k = row_ptr[i]; k < diag[i]; ++k) s -= values[k] * zp[col_idx[k]];
    zp[i] = s;
  });
  // U z = y.
  sweep(u_level_rows_, u_level_ptr_, [&](std::size_t i) {
    double s = zp[i];
    for (std::size_t k = diag[i] + 1; k < row_ptr[i + 1]; ++k) s -= values[k] * zp[col_idx[k]];
    zp[i] = s / values[diag[i]];
  });
}

std::unique_ptr<Preconditioner> make_preconditioner(PrecondKind kind, const CsrMatrix& a) {
  switch (kind) {
    case PrecondKind::Identity: return std::make_unique<IdentityPreconditioner>();
    case PrecondKind::Jacobi: return std::make_unique<JacobiPreconditioner>(a);
    case PrecondKind::Ilu0: return std::make_unique<Ilu0Preconditioner>(a);
  }
  throw std::logic_error("make_preconditioner: unknown kind");
}

}  // namespace mg::linalg
