#include "linalg/precond.hpp"

#include <cmath>
#include <stdexcept>

#include "support/check.hpp"

namespace mg::linalg {

JacobiPreconditioner::JacobiPreconditioner(const CsrMatrix& a) : inv_diag_(a.diagonal()) {
  for (double& d : inv_diag_) {
    if (std::abs(d) < 1e-300) throw std::runtime_error("JacobiPreconditioner: zero diagonal");
    d = 1.0 / d;
  }
}

void JacobiPreconditioner::apply(const Vec& r, Vec& z) const {
  MG_REQUIRE(r.size() == inv_diag_.size());
  z.resize(r.size());
  for (std::size_t i = 0; i < r.size(); ++i) z[i] = r[i] * inv_diag_[i];
}

Ilu0Preconditioner::Ilu0Preconditioner(const CsrMatrix& a) : lu_(a), diag_(a.rows()) {
  MG_REQUIRE(a.rows() == a.cols());
  const std::size_t n = lu_.rows();
  const auto& row_ptr = lu_.row_ptr();
  const auto& col_idx = lu_.col_idx();
  auto& values = lu_.values();

  // Locate diagonal entries (must exist structurally).
  for (std::size_t i = 0; i < n; ++i) {
    bool found = false;
    for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      if (col_idx[k] == i) {
        diag_[i] = k;
        found = true;
        break;
      }
    }
    if (!found) throw std::runtime_error("Ilu0Preconditioner: missing structural diagonal");
  }

  // IKJ variant of ILU(0): for each row i, eliminate with all previous rows k
  // that appear in row i's pattern.
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t kk = row_ptr[i]; kk < row_ptr[i + 1] && col_idx[kk] < i; ++kk) {
      const std::size_t k = col_idx[kk];
      const double pivot = values[diag_[k]];
      if (std::abs(pivot) < 1e-300) throw std::runtime_error("Ilu0Preconditioner: zero pivot");
      const double factor = values[kk] / pivot;
      values[kk] = factor;
      // Subtract factor * (row k, columns > k) restricted to row i's pattern.
      std::size_t pi = kk + 1;
      for (std::size_t pk = diag_[k] + 1; pk < row_ptr[k + 1]; ++pk) {
        const std::size_t col = col_idx[pk];
        while (pi < row_ptr[i + 1] && col_idx[pi] < col) ++pi;
        if (pi < row_ptr[i + 1] && col_idx[pi] == col) values[pi] -= factor * values[pk];
      }
    }
  }
}

void Ilu0Preconditioner::apply(const Vec& r, Vec& z) const {
  const std::size_t n = lu_.rows();
  MG_REQUIRE(r.size() == n);
  const auto& row_ptr = lu_.row_ptr();
  const auto& col_idx = lu_.col_idx();
  const auto& values = lu_.values();
  z.resize(n);
  // Solve L y = r (unit lower triangular).
  for (std::size_t i = 0; i < n; ++i) {
    double s = r[i];
    for (std::size_t k = row_ptr[i]; k < diag_[i]; ++k) s -= values[k] * z[col_idx[k]];
    z[i] = s;
  }
  // Solve U z = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = z[ii];
    for (std::size_t k = diag_[ii] + 1; k < row_ptr[ii + 1]; ++k) s -= values[k] * z[col_idx[k]];
    z[ii] = s / values[diag_[ii]];
  }
}

std::unique_ptr<Preconditioner> make_preconditioner(PrecondKind kind, const CsrMatrix& a) {
  switch (kind) {
    case PrecondKind::Identity: return std::make_unique<IdentityPreconditioner>();
    case PrecondKind::Jacobi: return std::make_unique<JacobiPreconditioner>(a);
    case PrecondKind::Ilu0: return std::make_unique<Ilu0Preconditioner>(a);
  }
  throw std::logic_error("make_preconditioner: unknown kind");
}

}  // namespace mg::linalg
