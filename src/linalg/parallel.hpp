// Inner worker team with a chunk-deterministic barrier.
//
// A ParallelContext owns team_size - 1 helper threads parked on a condition
// variable.  parallel_for() splits an index range into contiguous chunks and
// assigns chunk c to team member c — the assignment is a pure function of the
// chunk index, never of thread arrival order, so a run is reproducible at any
// team size for element-wise work (disjoint output slots).  reduce() extends
// the same discipline to accumulations: partial sums land in chunk-indexed
// slots and the *leader* combines them in ascending chunk index over a fixed
// chunk count, so the reduction tree is identical whether the team has 1, 2
// or 8 threads.
//
// The solver hot paths only hand the team reduction-free regions (row
// partitions of SpMV, fused triads) — that is what keeps Tiled bitwise equal
// to Scalar (see kernels.hpp); reduce() exists for callers that want
// team-size-invariant (but not scalar-chain) sums, and for the TSAN barrier
// hammer in tests/test_kernels.cpp.
//
// Work below min_items_per_worker per helper, or any call from a thread other
// than the constructing (leader) thread, runs inline on the caller — by
// construction this cannot change results, only where they are computed.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace mg::linalg {

struct ParallelOptions {
  /// Ranges smaller than this per team member run inline on the leader —
  /// cross-thread dispatch costs ~µs and must not dominate small kernels.
  std::size_t min_items_per_worker = 8192;
  /// Spawn helper threads even when the host reports a single hardware
  /// thread.  Tests use this to exercise real cross-thread execution
  /// anywhere; production paths leave it off so a 1-core box never pays
  /// for oversubscribed helpers.
  bool oversubscribe = false;
};

class ParallelContext {
 public:
  using Options = ParallelOptions;

  /// Fixed number of chunk-indexed partial slots used by reduce(), chosen
  /// once so the combination tree never depends on team size.
  static constexpr std::size_t kReduceChunks = 16;

  /// A team of `team_size` members including the calling thread; helpers are
  /// spawned immediately and parked.  team_size == 0 is treated as 1.
  explicit ParallelContext(std::size_t team_size, Options opts = {});
  ~ParallelContext();

  ParallelContext(const ParallelContext&) = delete;
  ParallelContext& operator=(const ParallelContext&) = delete;

  /// Members actually executing work (1 when helpers were elided).
  std::size_t team_size() const { return helpers_.size() + 1; }

  /// Runs fn(begin, end) over disjoint contiguous chunks covering [0, n).
  /// Chunk c belongs to team member c; the leader runs chunk 0 and then
  /// blocks on the barrier until every helper chunk is done.
  template <typename F>
  void parallel_for(std::size_t n, F&& fn) {
    using Fn = std::remove_reference_t<F>;
    run_range(n, const_cast<Fn*>(&fn),
              [](void* ctx, std::size_t b, std::size_t e) { (*static_cast<Fn*>(ctx))(b, e); });
  }

  /// Chunk-deterministic sum: fn(begin, end) returns the partial for one of
  /// kReduceChunks fixed chunks; partials are combined left-to-right by chunk
  /// index on the leader.  Identical result at any team size.
  template <typename F>
  double reduce(std::size_t n, F&& fn) {
    using Fn = std::remove_reference_t<F>;
    return run_reduce(n, const_cast<Fn*>(&fn), [](void* ctx, std::size_t b, std::size_t e) {
      return (*static_cast<Fn*>(ctx))(b, e);
    });
  }

 private:
  using RangeFn = void (*)(void*, std::size_t, std::size_t);
  using ReduceFn = double (*)(void*, std::size_t, std::size_t);

  void run_range(std::size_t n, void* ctx, RangeFn fn);
  double run_reduce(std::size_t n, void* ctx, ReduceFn fn);
  void helper_loop(std::size_t member);
  void dispatch_and_wait(std::size_t n_chunks);
  void run_chunks(std::size_t member, std::size_t n_chunks);

  Options opts_;
  std::thread::id leader_;
  std::vector<std::thread> helpers_;

  // Job slot, published under mutex_ with a generation bump.
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  bool stopping_ = false;
  std::size_t pending_ = 0;  // helpers still working on the current job

  // Current job description (valid while pending_ > 0 or leader is running).
  RangeFn range_fn_ = nullptr;
  ReduceFn reduce_fn_ = nullptr;
  void* job_ctx_ = nullptr;
  std::size_t job_n_ = 0;
  std::size_t job_chunks_ = 0;
  double partials_[kReduceChunks] = {};
};

}  // namespace mg::linalg
