// Task instances and their composition — the MLINK / CONFIG layer.
//
// MANIFOLD bundles light-weight processes into operating-system level "task
// instances"; the mapping is specified in an MLINK input file
// (mainprog.mlink: {perpetual} {load 1} {weight Master 1} {weight Worker 1})
// and tasks are mapped to hosts by the CONFIG runtime configurator
// ({host host1 diplice.sen.cwi.nl} ... {locus mainprog $host1 ...}).
//
// TaskCompositionSpec and HostMap are the in-memory equivalents of those two
// files; TaskManager implements the placement policy the paper describes in
// §6, including the `perpetual` behaviour: an emptied task instance stays
// alive and welcomes new workers, which is why a run can need fewer machines
// than master+workers ("it can happen that we need less than six machines to
// run an application with five workers, which is more efficient").
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "trace/ebb_flow.hpp"

namespace mg::iwim {

class Process;

/// In-memory equivalent of the MLINK input file.
struct TaskCompositionSpec {
  std::string task_name = "mainprog";
  double load_threshold = 1.0;               ///< {load 1}: "full" above this
  bool perpetual = true;                     ///< {perpetual}
  std::map<std::string, double> weights;     ///< {weight Master 1} — by process kind
  double default_weight = 0.0;               ///< pure coordinators weigh nothing

  double weight_for(const std::string& kind) const;

  /// The paper's mainprog.mlink: load 1, perpetual, Master/Worker weight 1.
  static TaskCompositionSpec paper_distributed();

  /// The §6 "parallel" variant: load raised so all workers share one task.
  static TaskCompositionSpec paper_parallel(std::size_t worker_count);
};

/// In-memory equivalent of the CONFIG input file.
struct HostMap {
  std::string startup_host = "bumpa.sen.cwi.nl";
  std::vector<std::string> worker_hosts;

  /// The five machines named in the paper's CONFIG file.
  static HostMap paper_hosts();

  /// startup host plus n generated workstation names.
  static HostMap generated(std::size_t n);

  /// Host for the k-th forked task (cycles when the locus list is exhausted).
  const std::string& host_for_fork(std::size_t k) const;
};

struct TaskInstance {
  std::uint64_t id = 0;
  std::string name;
  std::string host;
  double load = 0.0;
  bool perpetual = false;
  bool alive = true;
  std::size_t processes_hosted = 0;  ///< total over lifetime
};

/// Placement statistics for the ebb & flow analysis.
struct TaskStats {
  std::size_t tasks_created = 0;
  std::size_t peak_busy = 0;
  std::vector<mg::trace::MachineEvent> machine_events;  ///< busy transitions
};

class TaskManager {
 public:
  TaskManager(TaskCompositionSpec spec, HostMap hosts);

  /// Places a process (by kind weight) into a task instance: reuses an alive
  /// task with spare capacity (perpetual tasks with load 0 first), otherwise
  /// forks a new task instance on the next host.  `now` is elapsed seconds
  /// (for the machine-usage trace).  Returns the task id.
  std::uint64_t place(const std::string& kind, double now);

  /// Removes a process's weight; a non-perpetual task that empties dies.
  void release(std::uint64_t task_id, const std::string& kind, double now);

  TaskInstance task(std::uint64_t id) const;
  std::size_t alive_tasks() const;
  std::size_t busy_tasks() const;  ///< alive tasks with load > 0
  TaskStats stats() const;

  const TaskCompositionSpec& spec() const { return spec_; }
  const HostMap& hosts() const { return hosts_; }

 private:
  mutable std::mutex mutex_;
  TaskCompositionSpec spec_;
  HostMap hosts_;
  std::vector<TaskInstance> tasks_;  // index = id - 1
  TaskStats stats_;
  std::size_t forked_ = 0;           // tasks beyond the startup task
};

}  // namespace mg::iwim
