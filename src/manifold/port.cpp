#include "manifold/port.hpp"

#include "manifold/event.hpp"
#include "obs/metrics.hpp"
#include "support/check.hpp"
#include "support/timed_wait.hpp"

namespace mg::iwim {

namespace {
struct PortMetrics {
  obs::Counter& units_sent = obs::registry().counter("iwim.units_sent");
  obs::Gauge& queue_depth_hwm = obs::registry().gauge("iwim.port_queue_depth_hwm");
};

PortMetrics& port_metrics() {
  static PortMetrics m;
  return m;
}
}  // namespace

const char* to_string(StreamType t) {
  switch (t) {
    case StreamType::BK: return "BK";
    case StreamType::KK: return "KK";
  }
  return "?";
}

std::size_t Stream::pending() const {
  MG_REQUIRE(sink_ != nullptr);
  std::lock_guard<std::mutex> lock(sink_->mutex_);
  return queue_.size();
}

Port::Port(Process* owner, std::string name, Direction direction)
    : owner_(owner), name_(std::move(name)), direction_(direction) {}

std::optional<Unit> Port::take_locked() {
  if (!direct_.empty()) {
    Unit u = std::move(direct_.front());
    direct_.pop_front();
    return u;
  }
  // Round-robin over incoming streams for fairness when several feed us.
  const std::size_t n = incoming_.size();
  for (std::size_t k = 0; k < n; ++k) {
    Stream* s = incoming_[(rr_cursor_ + k) % n];
    if (!s->queue_.empty()) {
      Unit u = std::move(s->queue_.front());
      s->queue_.pop_front();
      rr_cursor_ = (rr_cursor_ + k + 1) % n;
      return u;
    }
  }
  return std::nullopt;
}

Unit Port::read() {
  MG_REQUIRE(direction_ == Direction::In);
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (auto u = take_locked()) return std::move(*u);
    if (stopping_) throw ShutdownSignal{};
    cv_.wait(lock);
  }
}

std::optional<Unit> Port::try_read() {
  MG_REQUIRE(direction_ == Direction::In);
  std::lock_guard<std::mutex> lock(mutex_);
  return take_locked();
}

std::optional<Unit> Port::read_for(std::chrono::milliseconds timeout) {
  MG_REQUIRE(direction_ == Direction::In);
  support::WaitClock& clock = support::wait_clock();
  const auto deadline = clock.now() + timeout;
  std::unique_lock<std::mutex> lock(mutex_);
  // Loop until the deadline itself has passed, not until the first wake the
  // cv reports as timeout-free: a spurious wake must go back to waiting, and
  // a timed-out wait must still re-check the queues — a unit deposited
  // between the wakeup and the lock re-acquisition must not be dropped.
  // The clock seam (support/timed_wait) lets tests drive this loop with
  // virtual time and scheduled spurious wakes.
  for (;;) {
    if (auto u = take_locked()) return u;
    if (stopping_) throw ShutdownSignal{};
    if (clock.now() >= deadline) return std::nullopt;
    clock.wait_until(cv_, lock, deadline);
  }
}

void Port::write(Unit unit) {
  MG_REQUIRE(direction_ == Direction::Out);
  std::vector<Stream*> targets;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (outgoing_.empty()) {
      pending_.push_back(std::move(unit));
      return;
    }
    targets = outgoing_;
  }
  // Replicate to every connected stream (unit copies are O(1): shared payload).
  for (Stream* s : targets) push_to_stream(s, unit);
}

void Port::deposit(Unit unit) {
  MG_REQUIRE(direction_ == Direction::In);
  std::size_t depth;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    direct_.push_back(std::move(unit));
    depth = direct_.size();
  }
  cv_.notify_all();
  port_metrics().units_sent.add();
  port_metrics().queue_depth_hwm.max_of(static_cast<double>(depth));
}

std::size_t Port::queued() const {
  MG_REQUIRE(direction_ == Direction::In);
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = direct_.size();
  for (const Stream* s : incoming_) n += s->queue_.size();
  return n;
}

std::size_t Port::pending_writes() const {
  MG_REQUIRE(direction_ == Direction::Out);
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

void Port::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
}

void Port::attach_outgoing(Stream* stream) {
  MG_REQUIRE(direction_ == Direction::Out);
  std::deque<Unit> flush;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    outgoing_.push_back(stream);
    flush.swap(pending_);
  }
  for (auto& u : flush) push_to_stream(stream, std::move(u));
}

void Port::attach_incoming(Stream* stream) {
  MG_REQUIRE(direction_ == Direction::In);
  std::lock_guard<std::mutex> lock(mutex_);
  incoming_.push_back(stream);
}

void Port::detach_outgoing(Stream* stream) {
  MG_REQUIRE(direction_ == Direction::Out);
  std::lock_guard<std::mutex> lock(mutex_);
  std::erase(outgoing_, stream);
  stream->source_connected_ = false;
}

void Port::push_to_stream(Stream* stream, Unit unit) {
  Port* sink = stream->sink();
  MG_ASSERT(sink != nullptr);
  std::size_t depth;
  {
    std::lock_guard<std::mutex> lock(sink->mutex_);
    stream->queue_.push_back(std::move(unit));
    depth = stream->queue_.size();
  }
  sink->cv_.notify_all();
  port_metrics().units_sent.add();
  port_metrics().queue_depth_hwm.max_of(static_cast<double>(depth));
}

}  // namespace mg::iwim
