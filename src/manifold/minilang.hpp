// A front-end for the MANIFOLD coordination language — the syntax layer of
// the paper's `Mc` compiler, scoped to the constructs its published sources
// (protocolMW.m, mainprog.m) use.
//
// The parser produces a structured AST: manner/manifold definitions with
// parameters and port declarations, blocks with declaratives (save / ignore /
// hold / event / priority / auto process / process / stream) and labelled
// states whose bodies are sequences of tuples, nested blocks, primitive
// actions (raise / post / halt / preemptall / terminated / MES), manner
// calls, variable assignments, if/then/else, and stream-construction chains
// (`&worker -> master -> worker -> master.dataport`).
//
// Execution semantics live in the embedded C++ DSL (src/core/protocol.cpp);
// this front-end exists so the published .m artifacts can be loaded,
// validated, and cross-checked against the implementation structurally
// (tests/test_minilang.cpp) instead of by string matching.
//
// Preprocessing: `#include` lines are recorded and skipped; single-line
// `#define NAME expansion` macros are expanded by whole-word substitution
// (enough for the protocol's `#define IDLE terminated(void)`).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace mg::iwim::minilang {

class SyntaxError : public std::runtime_error {
 public:
  SyntaxError(std::size_t line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message), line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

// ---- AST -------------------------------------------------------------------

/// One end of a stream: an optional reference marker (&x), a process name
/// and an optional port ("master.dataport").
struct StreamEndpoint {
  bool is_reference = false;
  std::string process;
  std::string port;  ///< empty = default port
};

/// A chain `a -> b -> c.d`; `type` is set for `stream KK ...` declaratives
/// and empty (default BK) for chains inside state bodies.
struct StreamChain {
  std::string type;  ///< "", "KK", "BK", ...
  std::vector<StreamEndpoint> endpoints;
};

struct Block;

struct Action {
  enum class Kind {
    Raise,        ///< raise(event)         — argument = event
    Post,         ///< post(event)          — argument = event
    Halt,         ///< halt
    Preemptall,   ///< preemptall
    Terminated,   ///< terminated(x)        — argument = x
    Message,      ///< MES("text")          — argument = text
    Streams,      ///< a stream chain       — chain
    Call,         ///< Manner(arg, ...)     — argument = name, args
    Assignment,   ///< x = <expr>           — argument = x, expression
    If,           ///< if (cond) then A else B
    Block,        ///< nested block as a state body
    Tuple,        ///< (a, b, c)            — children
  };

  Kind kind;
  std::string argument;
  std::string expression;               ///< raw right-hand side / condition text
  std::vector<std::string> args;        ///< call arguments (raw)
  StreamChain chain;
  std::vector<Action> children;         ///< tuple members; if: then at [0], else at [1]
  std::shared_ptr<Block> block;         ///< for Kind::Block
};

struct Declarative {
  enum class Kind {
    SaveAll,      ///< save *.
    Ignore,       ///< ignore x.
    Hold,         ///< hold x.
    Event,        ///< event a, b.           — names
    Priority,     ///< priority a > b.       — names[0] > names[1]
    AutoProcess,  ///< auto process x is Y(args).
    Process,      ///< process x is Y(args).
    Stream,       ///< stream KK a -> b.c.
  };

  Kind kind;
  std::vector<std::string> names;
  std::string manifold;           ///< for (Auto)Process: the manifold instantiated
  std::vector<std::string> args;  ///< for (Auto)Process: constructor args (raw)
  StreamChain chain;              ///< for Stream
};

/// A labelled state: `label: <body>.`  The body is a sequence of actions
/// (the `;` separated steps, e.g. `Create_Worker_Pool(...); post(begin)`).
struct State {
  std::string label;
  std::vector<Action> actions;
};

struct Block {
  std::vector<Declarative> declaratives;
  std::vector<State> states;

  const State* find_state(const std::string& label) const;
  bool has_declarative(Declarative::Kind kind) const;
};

struct PortDecl {
  std::string name;
  bool is_input = true;
};

struct Definition {
  enum class Kind { Manner, Manifold };
  Kind kind;
  bool exported = false;
  bool atomic = false;
  std::string name;
  std::vector<std::string> parameters;  ///< raw parameter texts
  std::vector<PortDecl> ports;          ///< trailing `port in x.` declarations
  std::vector<std::string> events;      ///< events named in an atomic {...} block
  std::shared_ptr<Block> body;          ///< null for atomic declarations
};

struct Program {
  std::vector<std::string> includes;
  std::map<std::string, std::string> macros;
  std::vector<Definition> definitions;

  const Definition* find(const std::string& name) const;
};

/// Parses MANIFOLD source text.  Throws SyntaxError with a line number.
Program parse_program(const std::string& source);

}  // namespace mg::iwim::minilang
