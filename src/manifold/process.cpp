#include "manifold/process.hpp"

#include "manifold/runtime.hpp"
#include "obs/span.hpp"
#include "support/check.hpp"
#include "support/log.hpp"

namespace mg::iwim {

Unit ProcessContext::read(const std::string& port) { return self_.port(port).read(); }

std::optional<Unit> ProcessContext::read_for(const std::string& port,
                                             std::chrono::milliseconds timeout) {
  return self_.port(port).read_for(timeout);
}

void ProcessContext::write(Unit unit, const std::string& port) {
  self_.port(port).write(std::move(unit));
}

void ProcessContext::raise(const std::string& event) { self_.raise(event); }

EventOccurrence ProcessContext::await(const std::vector<EventMatcher>& matchers) {
  return self_.events().await(matchers);
}

std::optional<EventOccurrence> ProcessContext::await_for(const std::vector<EventMatcher>& matchers,
                                                         std::chrono::milliseconds timeout) {
  return self_.events().await_for(matchers, timeout);
}

void ProcessContext::trace(const std::string& text, const char* file, int line) {
  runtime_.trace_message(self_, file, line, text);
}

Process::Process(Runtime& runtime, std::string kind, std::string name)
    : runtime_(runtime), id_(runtime.next_process_id()), kind_(std::move(kind)),
      name_(std::move(name)) {
  // Every IWIM process has the standard ports (paper §2: input / output /
  // error openings in its bounding wall); wrappers add customs (dataport).
  add_port("input", Port::Direction::In);
  add_port("output", Port::Direction::Out);
  add_port("error", Port::Direction::Out);
}

Process::~Process() { join_thread(); }

Port& Process::port(const std::string& name) {
  auto it = ports_.find(name);
  MG_REQUIRE_MSG(it != ports_.end(), "no port named '" + name + "' on process " + name_);
  return *it->second;
}

bool Process::has_port(const std::string& name) const { return ports_.count(name) != 0; }

Port& Process::add_port(const std::string& name, Port::Direction direction) {
  MG_REQUIRE_MSG(phase() == Phase::Created, "ports must be added before activation");
  MG_REQUIRE_MSG(ports_.find(name) == ports_.end(), "duplicate port '" + name + "'");
  auto port = std::make_unique<Port>(this, name, direction);
  Port& ref = *port;
  ports_.emplace(name, std::move(port));
  return ref;
}

void Process::activate() {
  Phase expected = Phase::Created;
  if (!phase_.compare_exchange_strong(expected, Phase::Active, std::memory_order_acq_rel)) {
    MG_REQUIRE_MSG(false, "activate() on a process that is not in Created phase");
  }
  runtime_.on_activate(*this);
  thread_ = std::thread([this] { run(); });
}

void Process::run() {
  // One span per process lifetime (Welcome -> Bye), on a per-kind track so
  // the trace viewer shows the Master/Worker ebb & flow directly.
  obs::ScopedSpan span(&obs::tracer(), name_.c_str(), "iwim", kind_.c_str());
  runtime_.trace_message(*this, "process.cpp", __LINE__, "Welcome");
  try {
    ProcessContext context(runtime_, *this);
    body(context);
  } catch (const ShutdownSignal&) {
    // Normal path during runtime shutdown.
  } catch (const std::exception& e) {
    support::log_error("process ", name_, " (", kind_, ") died with exception: ", e.what());
    runtime_.trace_message(*this, "process.cpp", __LINE__, std::string("Exception: ") + e.what());
  }
  runtime_.trace_message(*this, "process.cpp", __LINE__, "Bye");
  {
    std::lock_guard<std::mutex> lock(phase_mutex_);
    phase_.store(Phase::Terminated, std::memory_order_release);
  }
  phase_cv_.notify_all();
  runtime_.on_terminate(*this);
}

void Process::wait_terminated() {
  MG_REQUIRE_MSG(std::this_thread::get_id() != thread_.get_id(),
                 "wait_terminated() from the process's own thread");
  std::unique_lock<std::mutex> lock(phase_mutex_);
  phase_cv_.wait(lock, [&] { return phase() == Phase::Terminated; });
}

bool Process::wait_terminated_for(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(phase_mutex_);
  return phase_cv_.wait_for(lock, timeout, [&] { return phase() == Phase::Terminated; });
}

void Process::raise(const std::string& event) { runtime_.broadcast_event(*this, event); }

void Process::kill() {
  if (killed_.exchange(true, std::memory_order_acq_rel)) return;
  if (phase() == Phase::Terminated) return;
  runtime_.trace_message(*this, "process.cpp", __LINE__, "Killed");
  stop_blocking();
}

void Process::stop_blocking() {
  events_.stop();
  for (auto& [name, port] : ports_) {
    if (port->direction() == Port::Direction::In) port->stop();
  }
}

void Process::join_thread() {
  if (thread_.joinable()) thread_.join();
}

}  // namespace mg::iwim
