// Units — the data items that flow through IWIM streams.
//
// MANIFOLD processes exchange opaque "units"; the coordination layer never
// inspects them (exogenous coordination: the glue routes data it does not
// understand).  Unit is a cheaply-copyable, immutable, type-erased value.
// A ProcessRef unit carries a process reference — the paper's `&worker`
// that the coordinator sends to the master (protocolMW.m line 36).
#pragma once

#include <any>
#include <memory>
#include <stdexcept>
#include <utility>

namespace mg::iwim {

class Process;

/// Reference to a process instance, sendable through streams.
struct ProcessRef {
  std::shared_ptr<Process> process;
};

/// Thrown by Unit::as<T>() on a type mismatch.
class UnitTypeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Unit {
 public:
  Unit() = default;

  template <typename T>
  static Unit of(T value) {
    Unit u;
    u.payload_ = std::make_shared<const std::any>(std::move(value));
    return u;
  }

  bool empty() const { return payload_ == nullptr; }

  template <typename T>
  bool is() const {
    return payload_ != nullptr && payload_->type() == typeid(T);
  }

  template <typename T>
  const T& as() const {
    if (!is<T>()) {
      throw UnitTypeError(std::string("Unit::as: payload is not ") + typeid(T).name());
    }
    return *std::any_cast<T>(payload_.get());
  }

 private:
  std::shared_ptr<const std::any> payload_;  // shared so stream broadcast copies are O(1)
};

}  // namespace mg::iwim
