// The IWIM runtime — the embedded stand-in for the MANIFOLD run-time system.
//
// Owns all processes and streams of one concurrent application, performs the
// event broadcast, the task-instance placement (via TaskManager), and the
// optional paper-§6-style tracing.  One Runtime == one MANIFOLD application.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "manifold/process.hpp"
#include "manifold/task.hpp"
#include "support/stopwatch.hpp"
#include "trace/trace_log.hpp"

namespace mg::iwim {

struct RuntimeConfig {
  TaskCompositionSpec tasks = TaskCompositionSpec::paper_distributed();
  HostMap hosts = HostMap::generated(32);
  trace::TraceLog* trace = nullptr;  ///< optional, not owned
};

struct PortSpec {
  std::string name;
  Port::Direction direction;
};

class Runtime {
 public:
  explicit Runtime(RuntimeConfig config = {});

  /// Joins every process thread (after waking blocked reads/awaits).
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Creates (but does not activate) an atomic process.  `kind` is the
  /// manifold name ("Master", "Worker", ...) used for task weights and
  /// tracing; extra ports (e.g. the master's `dataport`) are added on top of
  /// the standard input/output/error.
  std::shared_ptr<AtomicProcess> create_process(std::string kind, std::string name,
                                                AtomicProcess::Body body,
                                                std::vector<PortSpec> extra_ports = {});

  /// Connects src (an Out port) to dst (an In port) with a stream.
  Stream& connect(Port& src, Port& dst, StreamType type = StreamType::BK);

  /// Breaks a stream at its source (BK dismantling); queued units drain.
  void disconnect_source(Stream& stream);

  /// Direct deposit into an In port (constant-source streams like `&worker`).
  void send(Port& dst, Unit unit);

  /// Broadcasts an event occurrence to every process in the application.
  void broadcast_event(const Process& source, const std::string& event);

  /// Elapsed wall-clock seconds since the runtime started.
  double now() const { return clock_.elapsed_seconds(); }

  TaskManager& tasks() { return tasks_; }
  trace::TraceLog* trace() { return config_.trace; }

  /// Records a §6-format trace message attributed to `process`.
  void trace_message(const Process& process, const char* file, int line, const std::string& text);

  std::size_t process_count() const;
  std::size_t stream_count() const;

  /// Wakes every blocked read/await with ShutdownSignal and joins all
  /// process threads.  Idempotent; also run by the destructor.
  void shutdown();

 private:
  friend class Process;
  std::uint64_t next_process_id() { return next_id_.fetch_add(1, std::memory_order_relaxed); }
  void on_activate(Process& process);   // task placement
  void on_terminate(Process& process);  // .terminated broadcast + task release

  RuntimeConfig config_;
  TaskManager tasks_;
  support::Stopwatch clock_;
  std::atomic<std::uint64_t> next_id_{1};

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<Process>> processes_;
  std::vector<std::unique_ptr<Stream>> streams_;
  bool shutting_down_ = false;
};

}  // namespace mg::iwim
