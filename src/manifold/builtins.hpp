// Built-in / predefined processes (the MBL library analogues).
//
// MANIFOLD "obviously only knows processes; there are no data structures in
// MANIFOLD, not even the simplest kind, a variable" — counters like the
// protocol's `now` and `t` are instances of the predefined manifold
// `variable`.  The embedded DSL can use plain C++ locals inside manner
// functions, but Variable is provided for fidelity and for coordinator code
// that wants observable, stream-connectable state.
#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "manifold/process.hpp"
#include "manifold/runtime.hpp"

namespace mg::iwim {

/// The predefined `variable` manifold: holds the last unit written to its
/// input port; the current value can be read synchronously.  Runs until
/// runtime shutdown (like `void`, it never terminates on its own).
class Variable {
 public:
  /// Creates and activates a variable process initialised with `initial`.
  Variable(Runtime& runtime, std::string name, Unit initial);

  /// Current value (thread-safe snapshot).
  Unit value() const;

  /// Convenience for integer counters (the protocol's now/t).
  std::int64_t as_int() const;

  /// Assign a new value (writes a unit to the variable's input port).
  void assign(Unit unit);

  Process& process() { return *process_; }

 private:
  struct State;
  std::shared_ptr<State> state_;
  std::shared_ptr<AtomicProcess> process_;
};

/// Creates and activates a printer process: every unit arriving on its input
/// port is traced (paper-style) and counted.  Used by tests and examples.
struct PrinterHandle {
  std::shared_ptr<AtomicProcess> process;
  std::shared_ptr<std::atomic<std::size_t>> printed;
};

PrinterHandle make_printer(Runtime& runtime, std::string name);

}  // namespace mg::iwim
