#include "manifold/state_scope.hpp"

#include "manifold/runtime.hpp"

namespace mg::iwim {

StateScope::~StateScope() {
  for (Stream* s : streams_) {
    if (s->type() == StreamType::BK && s->source_connected()) {
      runtime_.disconnect_source(*s);
    }
  }
}

Stream& StateScope::connect(Port& src, Port& dst, StreamType type) {
  Stream& s = runtime_.connect(src, dst, type);
  streams_.push_back(&s);
  return s;
}

}  // namespace mg::iwim
