// Events and per-process event memory (the IWIM control plane).
//
// A process `raise`s an event; the occurrence is broadcast and lands in the
// event memory of every process in the application.  A state machine (or any
// process) `await`s a set of labels: the first stored occurrence matching
// one of them — matchers earlier in the list take priority, the paper's
// `priority create_worker > rendezvous` declarative — is removed and
// returned.  Unmatched occurrences stay in memory (MANIFOLD's `save *`);
// `purge` implements the `ignore` declarative.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace mg::iwim {

/// Built-in event name broadcast by the runtime when a process terminates;
/// awaiting it renders MANIFOLD's `terminated(p)` primitive.
inline constexpr const char* kTerminatedEvent = ".terminated";

struct EventOccurrence {
  std::string event;
  std::uint64_t source = 0;  ///< id of the raising process (0 = runtime)
  std::string source_name;
};

/// A state label: an event name, optionally restricted to one source.
struct EventMatcher {
  std::string event;
  std::optional<std::uint64_t> source;

  bool matches(const EventOccurrence& o) const {
    return o.event == event && (!source || *source == o.source);
  }
};

/// Thrown out of blocking waits when the runtime shuts down.
struct ShutdownSignal {};

class EventMemory {
 public:
  /// Stores an occurrence and wakes waiters.  No-op after stop().
  void deposit(EventOccurrence occurrence);

  /// Blocks until an occurrence matches one of the matchers; matcher order is
  /// priority order.  Throws ShutdownSignal on runtime shutdown.
  EventOccurrence await(const std::vector<EventMatcher>& matchers);

  /// Like await() with a deadline; nullopt on timeout.
  std::optional<EventOccurrence> await_for(const std::vector<EventMatcher>& matchers,
                                           std::chrono::milliseconds timeout);

  /// Non-blocking take.
  std::optional<EventOccurrence> try_take(const std::vector<EventMatcher>& matchers);

  /// Number of stored occurrences matching the matcher.
  std::size_t count(const EventMatcher& matcher) const;

  std::size_t size() const;

  /// Removes all stored occurrences of the named event (`ignore`).
  void purge(const std::string& event);

  /// Wakes all waiters with ShutdownSignal; further deposits are dropped.
  void stop();

 private:
  std::optional<EventOccurrence> take_locked(const std::vector<EventMatcher>& matchers);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<EventOccurrence> occurrences_;
  bool stopping_ = false;
};

}  // namespace mg::iwim
