// Processes — IWIM's black-box workers and coordinators.
//
// A process owns its ports and its event memory, runs as one thread, and is
// "treated as a black box that can only read or write through the openings
// (ports) in its own bounding walls".  Worker code never performs
// communication setup; coordinators never compute.
//
// Lifecycle: Created -> (activate) -> Active -> (body returns) -> Terminated.
// Termination broadcasts the built-in `.terminated` event, which renders
// MANIFOLD's `terminated(p)` primitive.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "manifold/event.hpp"
#include "manifold/port.hpp"
#include "manifold/unit.hpp"

namespace mg::iwim {

class Runtime;
class Process;

/// The interface handed to a process body: its own ports and events only
/// (plus the runtime for coordinator bodies, which legitimately create
/// processes and streams — they are the "third party").
class ProcessContext {
 public:
  ProcessContext(Runtime& runtime, Process& self) : runtime_(runtime), self_(self) {}

  Process& self() { return self_; }
  Runtime& runtime() { return runtime_; }

  /// Blocking read from one of the process's own In ports.
  Unit read(const std::string& port = "input");
  std::optional<Unit> read_for(const std::string& port, std::chrono::milliseconds timeout);

  /// Write to one of the process's own Out ports.
  void write(Unit unit, const std::string& port = "output");

  /// Raise an event (broadcast to the application).
  void raise(const std::string& event);

  /// Wait for one of the labelled events (matcher order = priority).
  EventOccurrence await(const std::vector<EventMatcher>& matchers);
  std::optional<EventOccurrence> await_for(const std::vector<EventMatcher>& matchers,
                                           std::chrono::milliseconds timeout);

  /// Emit a paper-§6-style trace line attributed to this process.
  void trace(const std::string& text, const char* file = "", int line = 0);

 private:
  Runtime& runtime_;
  Process& self_;
};

class Process : public std::enable_shared_from_this<Process> {
 public:
  enum class Phase { Created, Active, Terminated };

  virtual ~Process();

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  std::uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }
  /// The "manifold" this is an instance of (e.g. "Master", "Worker", "Main").
  const std::string& kind() const { return kind_; }

  Runtime& runtime() { return runtime_; }

  Port& port(const std::string& name);
  bool has_port(const std::string& name) const;
  Port& add_port(const std::string& name, Port::Direction direction);

  EventMemory& events() { return events_; }

  Phase phase() const { return phase_.load(std::memory_order_acquire); }

  /// Starts the process thread (places it into a task instance first).
  /// The paper's master "receives a worker reference [and] activates it".
  void activate();

  /// Blocks until the process has terminated.  Must not be called from the
  /// process's own thread.
  void wait_terminated();
  bool wait_terminated_for(std::chrono::milliseconds timeout);

  /// Raise an event attributed to this process.
  void raise(const std::string& event);

  /// Wakes any blocked read/await on this process with ShutdownSignal.
  void stop_blocking();

  /// Cancellable kill: marks the process killed and wakes any blocked
  /// read/await with ShutdownSignal, so the body unwinds without completing
  /// (a killed worker never raises death_worker).  A body busy in pure
  /// compute is unaffected until its next blocking operation — the caller
  /// must not wait on it.  Idempotent; no-op after termination.
  void kill();
  bool killed() const { return killed_.load(std::memory_order_acquire); }

  /// Task instance this process was placed into (0 before activation).
  std::uint64_t task_id() const { return task_id_.load(std::memory_order_acquire); }

 protected:
  Process(Runtime& runtime, std::string kind, std::string name);

  /// The process body; runs on the process's own thread.
  virtual void body(ProcessContext& context) = 0;

 private:
  friend class Runtime;
  void run();                 // thread entry: body + termination bookkeeping
  void join_thread();

  Runtime& runtime_;
  std::uint64_t id_;
  std::string kind_;
  std::string name_;
  std::map<std::string, std::unique_ptr<Port>> ports_;
  EventMemory events_;
  std::atomic<Phase> phase_{Phase::Created};
  std::atomic<bool> killed_{false};
  std::atomic<std::uint64_t> task_id_{0};

  std::mutex phase_mutex_;
  std::condition_variable phase_cv_;
  std::thread thread_;
};

/// A process whose body is a user-supplied function — the C wrapper
/// equivalent: "the master and worker manifolds are easy to write as C
/// wrappers around the original C subroutines" (§5).
class AtomicProcess final : public Process {
 public:
  using Body = std::function<void(ProcessContext&)>;

 protected:
  void body(ProcessContext& context) override { body_(context); }

 private:
  friend class Runtime;
  AtomicProcess(Runtime& runtime, std::string kind, std::string name, Body body)
      : Process(runtime, std::move(kind), std::move(name)), body_(std::move(body)) {}

  Body body_;
};

}  // namespace mg::iwim
