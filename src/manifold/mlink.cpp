#include "manifold/mlink.hpp"

#include <cctype>
#include <map>
#include <sstream>

namespace mg::iwim {

namespace {

/// Brace-expression tokenizer/parser: the MLINK/CONFIG surface syntax is a
/// tree of {word word ... {..} ...} groups.
struct Node {
  std::vector<std::string> words;
  std::vector<Node> children;
  std::size_t line = 0;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::vector<Node> parse_all() {
    std::vector<Node> nodes;
    skip_ws();
    while (pos_ < text_.size()) {
      nodes.push_back(parse_group());
      skip_ws();
    }
    return nodes;
  }

 private:
  Node parse_group() {
    expect('{');
    Node node;
    node.line = line_;
    skip_ws();
    while (pos_ < text_.size() && text_[pos_] != '}') {
      if (text_[pos_] == '{') {
        node.children.push_back(parse_group());
      } else {
        node.words.push_back(parse_word());
      }
      skip_ws();
    }
    expect('}');
    return node;
  }

  std::string parse_word() {
    std::string word;
    while (pos_ < text_.size() && !std::isspace(static_cast<unsigned char>(text_[pos_])) &&
           text_[pos_] != '{' && text_[pos_] != '}' && text_[pos_] != '#') {
      word.push_back(text_[pos_++]);
    }
    if (word.empty()) throw ParseError(line_, "expected a word");
    return word;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      throw ParseError(line_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

double parse_number(const Node& node, std::size_t index) {
  try {
    std::size_t consumed = 0;
    const double v = std::stod(node.words.at(index), &consumed);
    if (consumed != node.words[index].size()) throw std::invalid_argument("trailing junk");
    return v;
  } catch (const std::exception&) {
    throw ParseError(node.line, "expected a number in '" + node.words[0] + "'");
  }
}

}  // namespace

MlinkFile parse_mlink(const std::string& text) {
  MlinkFile file;
  bool saw_named_task = false;
  for (const Node& top : Parser(text).parse_all()) {
    if (top.words.empty() || top.words[0] != "task") {
      throw ParseError(top.line, "top-level group must be a {task ...}");
    }
    if (top.words.size() < 2) throw ParseError(top.line, "task needs a name or *");
    const bool defaults_block = top.words[1] == "*";
    if (!defaults_block) {
      if (saw_named_task) throw ParseError(top.line, "only one named task block is supported");
      saw_named_task = true;
      file.task_name = top.words[1];
      file.spec.task_name = top.words[1];
    }
    for (const Node& item : top.children) {
      if (item.words.empty()) throw ParseError(item.line, "empty directive");
      const std::string& kind = item.words[0];
      if (kind == "perpetual") {
        file.spec.perpetual = true;
      } else if (kind == "load") {
        if (item.words.size() != 2) throw ParseError(item.line, "{load N}");
        file.spec.load_threshold = parse_number(item, 1);
      } else if (kind == "weight") {
        if (item.words.size() != 3) throw ParseError(item.line, "{weight Kind N}");
        file.spec.weights[item.words[1]] = parse_number(item, 2);
      } else if (kind == "include") {
        if (item.words.size() != 2) throw ParseError(item.line, "{include file.o}");
        file.includes.push_back(item.words[1]);
      } else {
        throw ParseError(item.line, "unknown MLINK directive '" + kind + "'");
      }
    }
  }
  return file;
}

HostMap parse_config(const std::string& text) {
  HostMap map;
  map.worker_hosts.clear();
  std::map<std::string, std::string> host_vars;
  bool saw_locus = false;
  for (const Node& top : Parser(text).parse_all()) {
    if (top.words.empty()) throw ParseError(top.line, "empty directive");
    const std::string& kind = top.words[0];
    if (kind == "host") {
      if (top.words.size() != 3) throw ParseError(top.line, "{host var machine}");
      host_vars[top.words[1]] = top.words[2];
    } else if (kind == "startup") {
      if (top.words.size() != 2) throw ParseError(top.line, "{startup machine}");
      map.startup_host = top.words[1];
    } else if (kind == "locus") {
      if (top.words.size() < 2) throw ParseError(top.line, "{locus task $var...}");
      saw_locus = true;
      for (std::size_t i = 2; i < top.words.size(); ++i) {
        const std::string& w = top.words[i];
        if (!w.empty() && w[0] == '$') {
          const auto it = host_vars.find(w.substr(1));
          if (it == host_vars.end()) {
            throw ParseError(top.line, "undefined host variable '" + w + "'");
          }
          map.worker_hosts.push_back(it->second);
        } else {
          map.worker_hosts.push_back(w);  // literal machine name
        }
      }
    } else {
      throw ParseError(top.line, "unknown CONFIG directive '" + kind + "'");
    }
  }
  if (!saw_locus) throw ParseError(1, "CONFIG needs a {locus ...} line");
  if (map.worker_hosts.empty()) throw ParseError(1, "locus lists no hosts");
  return map;
}

std::string to_mlink(const MlinkFile& file) {
  std::ostringstream os;
  os << "{task *\n";
  if (file.spec.perpetual) os << "  {perpetual}\n";
  os << "  {load " << file.spec.load_threshold << "}\n";
  for (const auto& [kind, weight] : file.spec.weights) {
    os << "  {weight " << kind << " " << weight << "}\n";
  }
  os << "}\n{task " << file.task_name << "\n";
  for (const auto& inc : file.includes) os << "  {include " << inc << "}\n";
  os << "}\n";
  return os.str();
}

std::string to_config(const HostMap& map, const std::string& task_name) {
  std::ostringstream os;
  os << "{startup " << map.startup_host << "}\n";
  for (std::size_t i = 0; i < map.worker_hosts.size(); ++i) {
    os << "{host host" << i + 1 << " " << map.worker_hosts[i] << "}\n";
  }
  os << "{locus " << task_name;
  for (std::size_t i = 0; i < map.worker_hosts.size(); ++i) os << " $host" << i + 1;
  os << "}\n";
  return os.str();
}

}  // namespace mg::iwim
