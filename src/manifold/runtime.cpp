#include "manifold/runtime.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "support/check.hpp"

namespace mg::iwim {

namespace {
// Cached once; updates are single relaxed atomic ops on the hot paths.
struct RuntimeMetrics {
  obs::Counter& processes_created = obs::registry().counter("iwim.processes_created");
  obs::Counter& processes_terminated = obs::registry().counter("iwim.processes_terminated");
  obs::Counter& streams_connected = obs::registry().counter("iwim.streams_connected");
  obs::Counter& events_raised = obs::registry().counter("iwim.events_raised");
  obs::Counter& events_delivered = obs::registry().counter("iwim.events_delivered");
};

RuntimeMetrics& runtime_metrics() {
  static RuntimeMetrics m;
  return m;
}
}  // namespace

Runtime::Runtime(RuntimeConfig config)
    : config_(std::move(config)), tasks_(config_.tasks, config_.hosts) {}

Runtime::~Runtime() { shutdown(); }

std::shared_ptr<AtomicProcess> Runtime::create_process(std::string kind, std::string name,
                                                       AtomicProcess::Body body,
                                                       std::vector<PortSpec> extra_ports) {
  // Not make_shared: the constructor is private to force creation through here.
  std::shared_ptr<AtomicProcess> process(
      new AtomicProcess(*this, std::move(kind), std::move(name), std::move(body)));
  for (const auto& spec : extra_ports) process->add_port(spec.name, spec.direction);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MG_REQUIRE_MSG(!shutting_down_, "create_process during shutdown");
    processes_.push_back(process);
  }
  runtime_metrics().processes_created.add();
  return process;
}

Stream& Runtime::connect(Port& src, Port& dst, StreamType type) {
  MG_REQUIRE(src.direction() == Port::Direction::Out);
  MG_REQUIRE(dst.direction() == Port::Direction::In);
  Stream* stream = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    streams_.push_back(std::make_unique<Stream>(&src, &dst, type));
    stream = streams_.back().get();
  }
  // Register at the sink first so readers can see flushed units immediately.
  dst.attach_incoming(stream);
  src.attach_outgoing(stream);  // flushes the source port's pending writes
  runtime_metrics().streams_connected.add();
  return *stream;
}

void Runtime::disconnect_source(Stream& stream) { stream.source()->detach_outgoing(&stream); }

void Runtime::send(Port& dst, Unit unit) { dst.deposit(std::move(unit)); }

void Runtime::broadcast_event(const Process& source, const std::string& event) {
  std::vector<std::shared_ptr<Process>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot = processes_;
  }
  runtime_metrics().events_raised.add();
  runtime_metrics().events_delivered.add(snapshot.size());
  for (const auto& p : snapshot) {
    p->events().deposit({event, source.id(), source.name()});
  }
}

void Runtime::trace_message(const Process& process, const char* file, int line,
                            const std::string& text) {
  if (config_.trace == nullptr) return;
  const double t = now();
  trace::TraceMessage m;
  const std::uint64_t task_id = process.task_id();
  if (task_id != 0) {
    const TaskInstance task = tasks_.task(task_id);
    m.host = task.host;
    m.task_name = task.name;
  } else {
    m.host = config_.hosts.startup_host;
    m.task_name = config_.tasks.task_name;
  }
  m.task_id = task_id;
  m.process_id = process.id();
  m.seconds = static_cast<std::int64_t>(t);
  m.microseconds = static_cast<std::int64_t>(std::llround((t - std::floor(t)) * 1e6));
  m.manifold_name = process.kind();
  m.source_file = file;
  m.source_line = line;
  m.text = text;
  config_.trace->record(std::move(m));
}

std::size_t Runtime::process_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return processes_.size();
}

std::size_t Runtime::stream_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return streams_.size();
}

void Runtime::on_activate(Process& process) {
  const std::uint64_t task_id = tasks_.place(process.kind(), now());
  process.task_id_.store(task_id, std::memory_order_release);
}

void Runtime::on_terminate(Process& process) {
  runtime_metrics().processes_terminated.add();
  broadcast_event(process, kTerminatedEvent);
  const std::uint64_t task_id = process.task_id();
  if (task_id != 0) tasks_.release(task_id, process.kind(), now());
}

void Runtime::shutdown() {
  std::vector<std::shared_ptr<Process>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) return;
    shutting_down_ = true;
    snapshot = processes_;
  }
  // Wake every blocked await/read, then join.
  for (const auto& p : snapshot) p->stop_blocking();
  for (const auto& p : snapshot) p->join_thread();
}

}  // namespace mg::iwim
