#include "manifold/event.hpp"

#include <algorithm>

#include "support/timed_wait.hpp"

namespace mg::iwim {

void EventMemory::deposit(EventOccurrence occurrence) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    occurrences_.push_back(std::move(occurrence));
  }
  cv_.notify_all();
}

std::optional<EventOccurrence> EventMemory::take_locked(const std::vector<EventMatcher>& matchers) {
  // Matcher order is priority order; within one matcher, FIFO.
  for (const auto& m : matchers) {
    for (auto it = occurrences_.begin(); it != occurrences_.end(); ++it) {
      if (m.matches(*it)) {
        EventOccurrence found = std::move(*it);
        occurrences_.erase(it);
        return found;
      }
    }
  }
  return std::nullopt;
}

EventOccurrence EventMemory::await(const std::vector<EventMatcher>& matchers) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (auto found = take_locked(matchers)) return std::move(*found);
    if (stopping_) throw ShutdownSignal{};
    cv_.wait(lock);
  }
}

std::optional<EventOccurrence> EventMemory::await_for(const std::vector<EventMatcher>& matchers,
                                                      std::chrono::milliseconds timeout) {
  support::WaitClock& clock = support::wait_clock();
  const auto deadline = clock.now() + timeout;
  std::unique_lock<std::mutex> lock(mutex_);
  // Same discipline as Port::read_for: loop until the deadline itself has
  // passed — a spurious wake goes back to waiting, and an occurrence
  // deposited between the cv timeout and the lock re-acquisition is still
  // taken rather than dropped.  Timed through the support/timed_wait seam
  // so tests can drive the loop with virtual time.
  for (;;) {
    if (auto found = take_locked(matchers)) return found;
    if (stopping_) throw ShutdownSignal{};
    if (clock.now() >= deadline) return std::nullopt;
    clock.wait_until(cv_, lock, deadline);
  }
}

std::optional<EventOccurrence> EventMemory::try_take(const std::vector<EventMatcher>& matchers) {
  std::lock_guard<std::mutex> lock(mutex_);
  return take_locked(matchers);
}

std::size_t EventMemory::count(const EventMatcher& matcher) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::size_t>(std::count_if(
      occurrences_.begin(), occurrences_.end(),
      [&](const EventOccurrence& o) { return matcher.matches(o); }));
}

std::size_t EventMemory::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return occurrences_.size();
}

void EventMemory::purge(const std::string& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::erase_if(occurrences_, [&](const EventOccurrence& o) { return o.event == event; });
}

void EventMemory::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
}

}  // namespace mg::iwim
