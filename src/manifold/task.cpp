#include "manifold/task.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace mg::iwim {

double TaskCompositionSpec::weight_for(const std::string& kind) const {
  auto it = weights.find(kind);
  return it != weights.end() ? it->second : default_weight;
}

TaskCompositionSpec TaskCompositionSpec::paper_distributed() {
  TaskCompositionSpec spec;
  spec.task_name = "mainprog";
  spec.load_threshold = 1.0;
  spec.perpetual = true;
  spec.weights = {{"Master", 1.0}, {"Worker", 1.0}};
  spec.default_weight = 0.0;
  return spec;
}

TaskCompositionSpec TaskCompositionSpec::paper_parallel(std::size_t worker_count) {
  // §6: "we simply change the load on line 5 of mainprog.mlink to 6" — a
  // threshold big enough that every worker fits in the startup task.
  TaskCompositionSpec spec = paper_distributed();
  spec.load_threshold = static_cast<double>(worker_count + 1);
  return spec;
}

HostMap HostMap::paper_hosts() {
  HostMap map;
  map.startup_host = "bumpa.sen.cwi.nl";
  map.worker_hosts = {"diplice.sen.cwi.nl", "alboka.sen.cwi.nl", "altfluit.sen.cwi.nl",
                      "arghul.sen.cwi.nl", "basfluit.sen.cwi.nl"};
  return map;
}

HostMap HostMap::generated(std::size_t n) {
  HostMap map;
  map.startup_host = "bumpa.sen.cwi.nl";
  map.worker_hosts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    map.worker_hosts.push_back("node" + std::to_string(i + 1) + ".sim.cwi.nl");
  }
  return map;
}

const std::string& HostMap::host_for_fork(std::size_t k) const {
  MG_REQUIRE_MSG(!worker_hosts.empty(), "HostMap has no worker hosts");
  return worker_hosts[k % worker_hosts.size()];
}

TaskManager::TaskManager(TaskCompositionSpec spec, HostMap hosts)
    : spec_(std::move(spec)), hosts_(std::move(hosts)) {}

std::uint64_t TaskManager::place(const std::string& kind, double now) {
  const double w = spec_.weight_for(kind);
  std::lock_guard<std::mutex> lock(mutex_);

  TaskInstance* chosen = nullptr;
  // Prefer an alive task that can absorb the weight; among candidates prefer
  // an emptied (perpetual) one — the paper's "welcome a new worker" reuse —
  // then lowest id for determinism.
  for (auto& t : tasks_) {
    if (!t.alive || t.load + w > spec_.load_threshold + 1e-12) continue;
    if (chosen == nullptr) {
      chosen = &t;
    } else if (t.load < chosen->load) {
      chosen = &t;
    }
  }
  if (chosen == nullptr) {
    TaskInstance t;
    t.id = tasks_.size() + 1;
    t.name = spec_.task_name;
    t.perpetual = spec_.perpetual;
    if (tasks_.empty()) {
      t.host = hosts_.startup_host;  // the machine "we are sitting behind"
    } else {
      t.host = hosts_.host_for_fork(forked_++);
    }
    tasks_.push_back(t);
    chosen = &tasks_.back();
    ++stats_.tasks_created;
  }
  const bool was_idle = chosen->load == 0.0;
  chosen->load += w;
  chosen->processes_hosted += 1;
  if (was_idle && chosen->load > 0.0) {
    stats_.machine_events.push_back({now, +1});
    std::size_t busy = 0;
    for (const auto& t : tasks_) busy += (t.alive && t.load > 0.0) ? 1 : 0;
    stats_.peak_busy = std::max(stats_.peak_busy, busy);
  }
  return chosen->id;
}

void TaskManager::release(std::uint64_t task_id, const std::string& kind, double now) {
  const double w = spec_.weight_for(kind);
  std::lock_guard<std::mutex> lock(mutex_);
  MG_REQUIRE(task_id >= 1 && task_id <= tasks_.size());
  TaskInstance& t = tasks_[task_id - 1];
  MG_REQUIRE(t.alive);
  t.load = std::max(0.0, t.load - w);
  if (t.load == 0.0) {
    if (w > 0.0) stats_.machine_events.push_back({now, -1});
    if (!t.perpetual) t.alive = false;  // "a task instance dies when there
                                        // are no thread processes running in it"
  }
}

TaskInstance TaskManager::task(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  MG_REQUIRE(id >= 1 && id <= tasks_.size());
  return tasks_[id - 1];
}

std::size_t TaskManager::alive_tasks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::size_t>(
      std::count_if(tasks_.begin(), tasks_.end(), [](const TaskInstance& t) { return t.alive; }));
}

std::size_t TaskManager::busy_tasks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::size_t>(std::count_if(
      tasks_.begin(), tasks_.end(), [](const TaskInstance& t) { return t.alive && t.load > 0.0; }));
}

TaskStats TaskManager::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace mg::iwim
