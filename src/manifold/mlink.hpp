// Parsers for the two application-construction files of §6.
//
// Task composition stage — the MLINK input file (mainprog.mlink):
//
//     {task *
//       {perpetual}
//       {load 1}
//       {weight Master 1}
//       {weight Worker 1}
//     }
//     {task mainprog
//       {include mainprog.o}
//       {include protocolMW.o}
//     }
//
// Runtime configuration stage — the CONFIG input file:
//
//     {host host1 diplice.sen.cwi.nl}
//     ...
//     {locus mainprog $host1 $host2 $host3 $host4 $host5}
//
// parse_mlink() turns the former into a TaskCompositionSpec (plus the
// object-file include list, kept for fidelity); parse_config() turns the
// latter into a HostMap.  Both accept the brace syntax shown in the paper,
// with '#'-to-end-of-line comments.
#pragma once

#include <string>
#include <vector>

#include "manifold/task.hpp"

namespace mg::iwim {

/// Thrown on malformed MLINK/CONFIG input; carries a line number.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message), line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

struct MlinkFile {
  TaskCompositionSpec spec;            ///< from the `{task *}` defaults block
  std::string task_name = "mainprog";  ///< the named task block, if any
  std::vector<std::string> includes;   ///< `{include x.o}` entries (fidelity)
};

/// Parses MLINK text.  The `{task *}` block sets the defaults (perpetual,
/// load threshold, weights); a named `{task name}` block names the task.
MlinkFile parse_mlink(const std::string& text);

/// Parses CONFIG text: `{host var name}` bindings, `{startup name}`
/// (extension; defaults to the paper's bumpa) and `{locus task $var...}`.
HostMap parse_config(const std::string& text);

/// Renders a spec back to MLINK syntax (round-trip support / debugging).
std::string to_mlink(const MlinkFile& file);

/// Renders a host map back to CONFIG syntax.
std::string to_config(const HostMap& map, const std::string& task_name = "mainprog");

}  // namespace mg::iwim
