// Ports and streams (the IWIM data plane).
//
// A process reads from and writes to the ports in its own "bounding wall";
// it never names a peer (the worker "simply reads this information from its
// own input port").  A third party — the coordinator — connects an output
// port to an input port with a stream.
//
// Stream break semantics (paper §4.2): when a coordinator state is
// pre-empted, its streams are dismantled.  A BK (Break-Keep) stream is
// disconnected from its producer but keeps feeding its consumer until
// drained; a KK (Keep-Keep) stream survives pre-emption entirely — the
// protocol declares the worker->master.dataport result stream KK so results
// still reach the master after the state moves on (protocolMW.m line 32).
//
// Units written while no stream is connected pend in the output port and
// flush into the next stream connected to it.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "manifold/unit.hpp"

namespace mg::iwim {

class Process;
class Port;
class Runtime;

enum class StreamType { BK, KK };

const char* to_string(StreamType t);

/// A stream instance.  Owned by the Runtime (never destroyed mid-run); its
/// unit queue is guarded by the sink port's mutex.
class Stream {
 public:
  Stream(Port* source, Port* sink, StreamType type) : source_(source), sink_(sink), type_(type) {}

  StreamType type() const { return type_; }
  Port* source() const { return source_; }
  Port* sink() const { return sink_; }
  bool source_connected() const { return source_connected_; }

  std::size_t pending() const;

 private:
  friend class Port;
  friend class Runtime;

  Port* source_;
  Port* sink_;
  StreamType type_;
  bool source_connected_ = true;    // guarded by source port's mutex
  std::deque<Unit> queue_;          // guarded by sink port's mutex
};

class Port {
 public:
  enum class Direction { In, Out };

  Port(Process* owner, std::string name, Direction direction);

  Process* owner() const { return owner_; }
  const std::string& name() const { return name_; }
  Direction direction() const { return direction_; }

  // ---- owning-process side ----

  /// Blocking read (In ports).  Throws ShutdownSignal on runtime shutdown.
  Unit read();

  /// Non-blocking read.
  std::optional<Unit> try_read();

  /// Read with timeout; nullopt on expiry.
  std::optional<Unit> read_for(std::chrono::milliseconds timeout);

  /// Write a unit (Out ports).  Replicated to every connected stream; pends
  /// in the port if no stream is connected.
  void write(Unit unit);

  // ---- wiring side (used by Runtime / StateScope) ----

  /// Deposits a unit directly into an In port (renders constant-source
  /// streams such as `&worker -> master`).
  void deposit(Unit unit);

  std::size_t queued() const;           ///< units available to read (In)
  std::size_t pending_writes() const;   ///< unflushed writes (Out)

  /// Wakes blocked readers with ShutdownSignal.
  void stop();

 private:
  friend class Runtime;
  friend class Stream;

  /// Takes the next available unit (direct first, then round-robin over the
  /// incoming streams).  Caller holds mutex_.
  std::optional<Unit> take_locked();

  // Runtime wiring helpers; see Runtime::connect / disconnect_source.
  void attach_outgoing(Stream* stream);    // locks this (source) port
  void attach_incoming(Stream* stream);    // locks this (sink) port
  void detach_outgoing(Stream* stream);
  void push_to_stream(Stream* stream, Unit unit);  // locks sink port

  Process* owner_;
  std::string name_;
  Direction direction_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;      // readers wait here (In ports)
  std::vector<Stream*> outgoing_;   // Out: connected streams
  std::deque<Unit> pending_;        // Out: writes made with no stream
  std::vector<Stream*> incoming_;   // In: connected streams (queues herein)
  std::deque<Unit> direct_;         // In: directly deposited units
  std::size_t rr_cursor_ = 0;       // In: round-robin fairness over streams
  bool stopping_ = false;
};

}  // namespace mg::iwim
