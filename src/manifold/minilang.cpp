#include "manifold/minilang.hpp"

#include <cctype>
#include <sstream>

namespace mg::iwim::minilang {

const State* Block::find_state(const std::string& label) const {
  for (const auto& s : states) {
    if (s.label == label) return &s;
  }
  return nullptr;
}

bool Block::has_declarative(Declarative::Kind kind) const {
  for (const auto& d : declaratives) {
    if (d.kind == kind) return true;
  }
  return false;
}

const Definition* Program::find(const std::string& name) const {
  for (const auto& d : definitions) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

namespace {

// ---- preprocessing ---------------------------------------------------------

struct Preprocessed {
  std::string text;  // directives and comments blanked, newlines preserved
  std::vector<std::string> includes;
  std::map<std::string, std::string> macros;
};

Preprocessed preprocess(const std::string& source) {
  Preprocessed out;
  // Strip /* */ and // comments, preserving newlines for line numbers.
  std::string stripped;
  stripped.reserve(source.size());
  for (std::size_t i = 0; i < source.size();) {
    if (source.compare(i, 2, "/*") == 0) {
      i += 2;
      while (i < source.size() && source.compare(i, 2, "*/") != 0) {
        if (source[i] == '\n') stripped.push_back('\n');
        ++i;
      }
      i = std::min(source.size(), i + 2);
    } else if (source.compare(i, 2, "//") == 0) {
      while (i < source.size() && source[i] != '\n') ++i;
    } else if (source[i] == '"') {
      stripped.push_back(source[i++]);
      while (i < source.size() && source[i] != '"') stripped.push_back(source[i++]);
      if (i < source.size()) stripped.push_back(source[i++]);
    } else {
      stripped.push_back(source[i++]);
    }
  }
  // Directive lines.
  std::istringstream lines(stripped);
  std::string line;
  while (std::getline(lines, line)) {
    const auto first = line.find_first_not_of(" \t");
    if (first != std::string::npos && line[first] == '#') {
      std::istringstream ls(line.substr(first + 1));
      std::string directive;
      ls >> directive;
      if (directive == "include") {
        std::string rest;
        std::getline(ls, rest);
        const auto open = rest.find('"');
        const auto close = rest.rfind('"');
        if (open != std::string::npos && close > open) {
          out.includes.push_back(rest.substr(open + 1, close - open - 1));
        }
      } else if (directive == "define") {
        std::string name, expansion;
        ls >> name;
        std::getline(ls, expansion);
        const auto start = expansion.find_first_not_of(" \t");
        out.macros[name] = start == std::string::npos ? "" : expansion.substr(start);
      }
      out.text.append(line.size(), ' ');
    } else {
      out.text += line;
    }
    out.text.push_back('\n');
  }
  // Whole-word macro substitution.
  for (const auto& [name, expansion] : out.macros) {
    std::string result;
    result.reserve(out.text.size());
    for (std::size_t i = 0; i < out.text.size();) {
      const bool boundary_before =
          i == 0 || (!std::isalnum(static_cast<unsigned char>(out.text[i - 1])) &&
                     out.text[i - 1] != '_');
      if (boundary_before && out.text.compare(i, name.size(), name) == 0) {
        const std::size_t after = i + name.size();
        const bool boundary_after =
            after >= out.text.size() ||
            (!std::isalnum(static_cast<unsigned char>(out.text[after])) &&
             out.text[after] != '_');
        if (boundary_after) {
          result += expansion;
          i = after;
          continue;
        }
      }
      result.push_back(out.text[i++]);
    }
    out.text = std::move(result);
  }
  return out;
}

// ---- lexing ------------------------------------------------------------------

struct Token {
  enum class Kind { Ident, Number, String, Symbol, End };
  Kind kind = Kind::End;
  std::string text;
  std::size_t line = 1;

  bool is(const char* symbol) const { return kind == Kind::Symbol && text == symbol; }
  bool is_ident(const char* word) const { return kind == Kind::Ident && text == word; }
};

std::vector<Token> lex(const std::string& text) {
  std::vector<Token> tokens;
  std::size_t line = 1;
  for (std::size_t i = 0; i < text.size();) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[j])) || text[j] == '_')) {
        ++j;
      }
      tokens.push_back({Token::Kind::Ident, text.substr(i, j - i), line});
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < text.size() && (std::isdigit(static_cast<unsigned char>(text[j])))) ++j;
      tokens.push_back({Token::Kind::Number, text.substr(i, j - i), line});
      i = j;
    } else if (c == '"') {
      std::size_t j = i + 1;
      while (j < text.size() && text[j] != '"') ++j;
      if (j >= text.size()) throw SyntaxError(line, "unterminated string");
      tokens.push_back({Token::Kind::String, text.substr(i + 1, j - i - 1), line});
      i = j + 1;
    } else if (text.compare(i, 2, "->") == 0) {
      tokens.push_back({Token::Kind::Symbol, "->", line});
      i += 2;
    } else if (std::string("{}().,;:>=&*<|+-/").find(c) != std::string::npos) {
      tokens.push_back({Token::Kind::Symbol, std::string(1, c), line});
      ++i;
    } else {
      throw SyntaxError(line, std::string("unexpected character '") + c + "'");
    }
  }
  tokens.push_back({Token::Kind::End, "", line});
  return tokens;
}

// ---- parsing -------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Program parse(Preprocessed pre) {
    Program program;
    program.includes = std::move(pre.includes);
    program.macros = std::move(pre.macros);
    while (peek().kind != Token::Kind::End) {
      program.definitions.push_back(parse_definition());
    }
    return program;
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t idx = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[idx];
  }
  const Token& next() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  [[noreturn]] void fail(const std::string& message) const {
    throw SyntaxError(peek().line, message + " (near '" + peek().text + "')");
  }

  void expect_symbol(const char* symbol) {
    if (!peek().is(symbol)) fail(std::string("expected '") + symbol + "'");
    next();
  }

  std::string expect_ident() {
    if (peek().kind != Token::Kind::Ident) fail("expected an identifier");
    return next().text;
  }

  // Raw token capture until a top-level occurrence of one of `stops`.
  std::string capture_raw(std::initializer_list<const char*> stops) {
    std::string out;
    int depth = 0;
    for (;;) {
      const Token& t = peek();
      if (t.kind == Token::Kind::End) fail("unexpected end of input");
      if (depth == 0) {
        for (const char* s : stops) {
          if (t.is(s)) return out;
        }
      }
      if (t.is("(") || t.is("{")) ++depth;
      if (t.is(")") || t.is("}")) {
        if (depth == 0) return out;
        --depth;
      }
      if (!out.empty()) out += ' ';
      out += t.text;
      next();
    }
  }

  std::vector<std::string> split_args(const std::string& raw) {
    std::vector<std::string> args;
    std::string current;
    int depth = 0;
    // raw is space-joined tokens; re-split on top-level commas.  Port-set
    // brackets `<input, dataport | output, error>` also nest.
    for (char c : raw) {
      if (c == '(' || c == '<') ++depth;
      if (c == ')' || c == '>') --depth;
      if (c == ',' && depth == 0) {
        args.push_back(trim(current));
        current.clear();
      } else {
        current.push_back(c);
      }
    }
    if (!trim(current).empty()) args.push_back(trim(current));
    return args;
  }

  static std::string trim(const std::string& s) {
    const auto a = s.find_first_not_of(' ');
    if (a == std::string::npos) return "";
    const auto b = s.find_last_not_of(' ');
    return s.substr(a, b - a + 1);
  }

  // ---- definitions ----

  Definition parse_definition() {
    Definition def;
    if (peek().is_ident("export")) {
      def.exported = true;
      next();
    }
    if (peek().is_ident("manner")) {
      def.kind = Definition::Kind::Manner;
    } else if (peek().is_ident("manifold")) {
      def.kind = Definition::Kind::Manifold;
    } else {
      fail("expected 'manner' or 'manifold'");
    }
    next();
    def.name = expect_ident();
    if (peek().is("(")) {
      next();
      const std::string raw = capture_raw({")"});
      expect_symbol(")");
      def.parameters = split_args(raw);
    }
    // Trailer: port declarations, 'atomic', a body block, or a bare '.'.
    for (;;) {
      if (peek().is_ident("port")) {
        next();
        PortDecl port;
        if (peek().is_ident("in")) {
          port.is_input = true;
        } else if (peek().is_ident("out")) {
          port.is_input = false;
        } else {
          fail("expected 'in' or 'out'");
        }
        next();
        port.name = expect_ident();
        expect_symbol(".");
        def.ports.push_back(port);
      } else if (peek().is_ident("atomic")) {
        next();
        def.atomic = true;
        if (peek().is("{")) parse_atomic_block(def);
        expect_symbol(".");
        return def;
      } else if (peek().is("{")) {
        def.body = std::make_shared<Block>(parse_block());
        return def;
      } else if (peek().is(".")) {
        next();
        return def;
      } else {
        fail("unexpected token in definition trailer");
      }
    }
  }

  void parse_atomic_block(Definition& def) {
    expect_symbol("{");
    while (!peek().is("}")) {
      if (peek().is_ident("event")) {
        next();
        def.events.push_back(expect_ident());
        while (peek().is(",")) {
          next();
          def.events.push_back(expect_ident());
        }
      } else if (peek().kind == Token::Kind::End) {
        fail("unterminated atomic block");
      } else {
        next();  // 'internal.', separators, and other attributes are recorded nowhere
      }
    }
    expect_symbol("}");
  }

  // ---- blocks ----

  Block parse_block() {
    expect_symbol("{");
    Block block;
    while (!peek().is("}")) {
      if (peek().kind == Token::Kind::End) fail("unterminated block");
      if (is_declarative_keyword()) {
        block.declaratives.push_back(parse_declarative());
      } else if (peek().kind == Token::Kind::Ident && peek(1).is(":")) {
        block.states.push_back(parse_state());
      } else {
        fail("expected a declarative or a state label");
      }
    }
    expect_symbol("}");
    return block;
  }

  bool is_declarative_keyword() const {
    if (peek().kind != Token::Kind::Ident) return peek().is("*") || false;
    const std::string& w = peek().text;
    if (w == "save" || w == "ignore" || w == "hold" || w == "event" || w == "priority" ||
        w == "auto" || w == "stream") {
      return true;
    }
    // `process x is Y(...)` vs a state labelled `process:` — look at peek(1).
    if (w == "process") return !peek(1).is(":");
    return false;
  }

  Declarative parse_declarative() {
    Declarative d{};
    const std::string word = expect_ident();
    if (word == "save") {
      d.kind = Declarative::Kind::SaveAll;
      if (peek().is("*")) {
        next();
      } else {
        d.names.push_back(expect_ident());
      }
    } else if (word == "ignore") {
      d.kind = Declarative::Kind::Ignore;
      d.names.push_back(expect_ident());
    } else if (word == "hold") {
      d.kind = Declarative::Kind::Hold;
      d.names.push_back(expect_ident());
    } else if (word == "event") {
      d.kind = Declarative::Kind::Event;
      d.names.push_back(expect_ident());
      while (peek().is(",")) {
        next();
        d.names.push_back(expect_ident());
      }
    } else if (word == "priority") {
      d.kind = Declarative::Kind::Priority;
      d.names.push_back(expect_ident());
      expect_symbol(">");
      d.names.push_back(expect_ident());
    } else if (word == "auto" || word == "process") {
      d.kind = word == "auto" ? Declarative::Kind::AutoProcess : Declarative::Kind::Process;
      if (word == "auto") {
        if (!peek().is_ident("process")) fail("expected 'process' after 'auto'");
        next();
      }
      d.names.push_back(expect_ident());
      if (!peek().is_ident("is")) fail("expected 'is'");
      next();
      d.manifold = expect_ident();
      if (peek().is("(")) {
        next();
        d.args = split_args(capture_raw({")"}));
        expect_symbol(")");
      }
    } else if (word == "stream") {
      d.kind = Declarative::Kind::Stream;
      d.chain.type = expect_ident();  // KK / BK / ...
      d.chain.endpoints.push_back(parse_endpoint());
      while (peek().is("->")) {
        next();
        d.chain.endpoints.push_back(parse_endpoint());
      }
    } else {
      fail("unknown declarative '" + word + "'");
    }
    expect_symbol(".");
    return d;
  }

  StreamEndpoint parse_endpoint() {
    StreamEndpoint endpoint;
    if (peek().is("&")) {
      endpoint.is_reference = true;
      next();
    }
    endpoint.process = expect_ident();
    // `.port` qualifier: only when followed by an identifier that is not a
    // state label (label idents are followed by ':').
    if (peek().is(".") && peek(1).kind == Token::Kind::Ident && !peek(2).is(":")) {
      next();
      endpoint.port = expect_ident();
    }
    return endpoint;
  }

  // ---- states and actions ----

  State parse_state() {
    State state;
    state.label = expect_ident();
    expect_symbol(":");
    state.actions = parse_action_sequence();
    expect_symbol(".");
    return state;
  }

  /// `;`-separated sequence of action items (a state body).
  std::vector<Action> parse_action_sequence() {
    std::vector<Action> actions;
    actions.push_back(parse_action_item());
    while (peek().is(";")) {
      next();
      actions.push_back(parse_action_item());
    }
    return actions;
  }

  Action parse_action_item() {
    if (peek().is("{")) {
      Action a{};
      a.kind = Action::Kind::Block;
      a.block = std::make_shared<Block>(parse_block());
      return a;
    }
    if (peek().is("(")) {
      next();
      Action a{};
      a.kind = Action::Kind::Tuple;
      a.children.push_back(parse_action_item());
      while (peek().is(",")) {
        next();
        a.children.push_back(parse_action_item());
      }
      expect_symbol(")");
      return a;
    }
    return parse_simple_action();
  }

  Action parse_simple_action() {
    Action a{};
    if (peek().is("&") ||
        (peek().kind == Token::Kind::Ident && (peek(1).is("->") ||
                                               (peek(1).is(".") && peek(3).is("->"))))) {
      // A stream-construction chain.
      a.kind = Action::Kind::Streams;
      a.chain.endpoints.push_back(parse_endpoint());
      while (peek().is("->")) {
        next();
        a.chain.endpoints.push_back(parse_endpoint());
      }
      return a;
    }
    const std::string word = expect_ident();
    if (word == "halt") {
      a.kind = Action::Kind::Halt;
    } else if (word == "preemptall") {
      a.kind = Action::Kind::Preemptall;
    } else if (word == "raise" || word == "post" || word == "terminated" || word == "MES") {
      a.kind = word == "raise" ? Action::Kind::Raise
               : word == "post" ? Action::Kind::Post
               : word == "terminated" ? Action::Kind::Terminated
                                      : Action::Kind::Message;
      expect_symbol("(");
      if (peek().kind == Token::Kind::String) {
        a.argument = next().text;
      } else {
        a.argument = capture_raw({")"});
      }
      expect_symbol(")");
    } else if (word == "if") {
      a.kind = Action::Kind::If;
      expect_symbol("(");
      a.expression = capture_raw({")"});
      expect_symbol(")");
      if (!peek().is_ident("then")) fail("expected 'then'");
      next();
      Action then_branch = parse_branch_group();
      a.children.push_back(std::move(then_branch));
      if (peek().is_ident("else")) {
        next();
        a.children.push_back(parse_branch_group());
      }
    } else if (peek().is("=")) {
      next();
      a.kind = Action::Kind::Assignment;
      a.argument = word;
      a.expression = capture_raw({";", ",", ")", "."});
    } else if (peek().is("(")) {
      next();
      a.kind = Action::Kind::Call;
      a.argument = word;
      a.args = split_args(capture_raw({")"}));
      expect_symbol(")");
    } else {
      fail("cannot parse action starting with '" + word + "'");
    }
    return a;
  }

  /// then/else branch: `{ actions }` treated as a tuple group, or one action.
  Action parse_branch_group() {
    if (peek().is("{")) {
      next();
      Action group{};
      group.kind = Action::Kind::Tuple;
      group.children = parse_action_sequence();
      expect_symbol("}");
      return group;
    }
    return parse_action_item();
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Program parse_program(const std::string& source) {
  Preprocessed pre = preprocess(source);
  Parser parser(lex(pre.text));
  return parser.parse(std::move(pre));
}

}  // namespace mg::iwim::minilang
