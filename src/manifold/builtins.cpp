#include "manifold/builtins.hpp"

#include <atomic>
#include <mutex>

#include "support/check.hpp"

namespace mg::iwim {

struct Variable::State {
  mutable std::mutex mutex;
  Unit value;
};

Variable::Variable(Runtime& runtime, std::string name, Unit initial)
    : state_(std::make_shared<State>()) {
  state_->value = std::move(initial);
  auto state = state_;
  process_ = runtime.create_process("variable", std::move(name), [state](ProcessContext& ctx) {
    // Store every unit arriving on the input port until shutdown.
    for (;;) {
      Unit u = ctx.read("input");  // throws ShutdownSignal at runtime teardown
      std::lock_guard<std::mutex> lock(state->mutex);
      state->value = std::move(u);
    }
  });
  process_->activate();
}

Unit Variable::value() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->value;
}

std::int64_t Variable::as_int() const { return value().as<std::int64_t>(); }

void Variable::assign(Unit unit) { process_->port("input").deposit(std::move(unit)); }

PrinterHandle make_printer(Runtime& runtime, std::string name) {
  auto printed = std::make_shared<std::atomic<std::size_t>>(0);
  auto process = runtime.create_process("printer", std::move(name), [printed](ProcessContext& ctx) {
    for (;;) {
      Unit u = ctx.read("input");
      std::string text = "unit";
      if (u.is<std::string>()) {
        text = u.as<std::string>();
      } else if (u.is<std::int64_t>()) {
        text = std::to_string(u.as<std::int64_t>());
      } else if (u.is<double>()) {
        text = std::to_string(u.as<double>());
      }
      ctx.trace(text, "builtins.cpp", __LINE__);
      printed->fetch_add(1, std::memory_order_relaxed);
    }
  });
  process->activate();
  return {std::move(process), std::move(printed)};
}

}  // namespace mg::iwim
