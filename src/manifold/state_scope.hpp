// StateScope — RAII rendering of a MANIFOLD state's stream lifetime.
//
// In MANIFOLD, the streams constructed in a state are dismantled when the
// state is pre-empted by an event: BK streams are broken at their source
// (the producer can no longer feed them, but queued units still drain to the
// consumer); KK streams stay intact (protocolMW.m line 32: the
// worker->master.dataport stream "must stay intact because when the worker
// is a remote worker this stream is used to transport its computed results
// to the master").
//
// In the embedded DSL a coordinator state is a C++ scope: construct a
// StateScope, build the state's streams through it, and leaving the scope
// (the transition) dismantles exactly the BK streams.
#pragma once

#include <vector>

#include "manifold/port.hpp"

namespace mg::iwim {

class Runtime;

class StateScope {
 public:
  explicit StateScope(Runtime& runtime) : runtime_(runtime) {}

  /// Dismantles: breaks the scope's BK streams at their sources.
  ~StateScope();

  StateScope(const StateScope&) = delete;
  StateScope& operator=(const StateScope&) = delete;

  /// Builds a stream belonging to this state.
  Stream& connect(Port& src, Port& dst, StreamType type = StreamType::BK);

  std::size_t stream_count() const { return streams_.size(); }

 private:
  Runtime& runtime_;
  std::vector<Stream*> streams_;
};

}  // namespace mg::iwim
