// Deterministic fault injection and the shared retry policy.
//
// The paper's ProtocolMW counts death_worker events at the rendezvous (§4)
// but treats every death as a normal completion — a crashed or hung worker
// silently loses its grid and deadlocks the run.  FaultPlan is the seeded
// adversary both execution paths share: the threaded IWIM runtime injects
// worker crashes, hangs, and result corruption into real `iwim::Process`
// workers, and the virtual-time ClusterSim injects host crashes and network
// drops/slowdowns — all as pure functions of (seed, incarnation), so every
// faulty run is reproducible from its seed.
//
// RetryPolicy is the one recovery contract mirrored by both paths: a
// per-task deadline (wall-clock for the threaded runtime, cost-model-derived
// for the simulator), capped exponential backoff between re-dispatches, a
// per-slot attempt cap, and a pool-wide respawn budget after which the pool
// degrades gracefully instead of hanging.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace mg::obs {
class JsonWriter;
}

namespace mg::fault {

/// What happens to one worker incarnation (one spawned worker process, or
/// one simulated compute attempt).
enum class WorkerFault {
  None,     ///< completes normally
  Crash,    ///< dies after reading its work, without producing a result
  Hang,     ///< blocks forever after reading its work (until killed)
  Corrupt,  ///< computes, but the result fails its integrity check and is
            ///< discarded at the transport boundary (surfaces as a crash)
};

const char* to_string(WorkerFault f);

/// Recovery contract shared by the threaded protocol and the simulator.
struct RetryPolicy {
  /// Per-task wall-clock deadline after dispatch; 0 disables timeouts.  The
  /// simulator additionally derives a lower bound from the cost model (see
  /// `deadline_cost_factor`), so slow-but-alive workers are not killed.
  std::chrono::milliseconds task_deadline{0};
  /// Simulator: deadline >= factor * expected compute time for the grid.
  double deadline_cost_factor = 4.0;
  /// Dispatch attempts per work unit, including the first.
  std::size_t max_attempts = 3;
  /// Pool-wide cap on respawned workers; once spent, further lost work is
  /// abandoned and the pool degrades instead of hanging.
  std::size_t respawn_budget = static_cast<std::size_t>(-1);
  std::chrono::milliseconds backoff_initial{10};
  double backoff_multiplier = 2.0;
  std::chrono::milliseconds backoff_cap{1000};

  /// Capped exponential backoff before re-dispatch number `attempt` (the
  /// first retry is attempt 1).
  std::chrono::milliseconds backoff_for(std::size_t attempt) const;
  double backoff_seconds_for(std::size_t attempt) const;

  /// True when any fault-tolerance machinery (deadline or retry) is wanted.
  bool enabled() const { return task_deadline.count() > 0 || max_attempts > 1; }
};

/// Injection probabilities; all default to "no faults".
struct FaultPlanConfig {
  std::uint64_t seed = 2004;
  // Threaded-runtime worker faults (per incarnation, mutually exclusive).
  double crash = 0.0;
  double hang = 0.0;
  double corrupt = 0.0;
  // Simulator faults; net_drop/net_slow double as TCP frame faults (the real
  // transport drops or delays the master's Work frame for faulted ordinals).
  double host_crash = 0.0;   ///< host dies mid-compute (per attempt)
  double net_drop = 0.0;     ///< transfer lost, must be retransmitted
  double net_slow = 0.0;     ///< transfer degraded by `net_slow_factor`
  double net_slow_factor = 3.0;
  // TCP-transport-only fault: the frame is cut short mid-send and the
  // connection closed, exercising the receiver's CRC/truncation detection.
  double net_truncate = 0.0;
  /// Real-transport delay applied to a slowed (net_slow) transfer.
  std::chrono::milliseconds net_delay{50};

  bool any() const {
    return crash > 0 || hang > 0 || corrupt > 0 || host_crash > 0 || net_drop > 0 ||
           net_slow > 0 || net_truncate > 0;
  }
};

/// Parses a `--faults=` spec: comma-separated key=value pairs, e.g.
/// "seed=7,crash=0.25,hang=0.1,corrupt=0.05,host_crash=0.2,net_drop=0.1".
/// Unknown keys throw std::invalid_argument.
FaultPlanConfig parse_fault_spec(const std::string& spec);

/// The seeded adversary.  Every decision is a pure function of the seed and
/// an incarnation/transfer ordinal — independent of thread interleaving —
/// so the *set* of injected faults is identical across runs of one seed.
class FaultPlan {
 public:
  explicit FaultPlan(FaultPlanConfig config) : config_(config) {}

  const FaultPlanConfig& config() const { return config_; }

  /// Fault (if any) injected into worker incarnation `incarnation`.
  WorkerFault worker_fault(std::uint64_t incarnation) const;

  /// Simulator: does the host executing attempt `incarnation` crash?
  bool host_crashes(std::uint64_t incarnation) const;
  /// Fraction of the compute interval elapsed when the host dies, in (0, 1).
  double host_crash_fraction(std::uint64_t incarnation) const;

  /// Simulator: is network transfer `ordinal` dropped / slowed?
  bool drops_transfer(std::uint64_t ordinal) const;
  double transfer_slowdown(std::uint64_t ordinal) const;

  /// TCP transport: is frame transfer `ordinal` truncated mid-send?
  bool truncates_transfer(std::uint64_t ordinal) const;

 private:
  double roll(std::uint64_t ordinal, std::uint64_t salt) const;

  FaultPlanConfig config_;
};

/// What the fault-tolerance layer did during one run — filled by the
/// threaded protocol and by the simulator, and emitted as the `faults`
/// section of `--report=` JSON.
struct FaultCounters {
  // Injection side (what the plan did).
  std::size_t crashes_injected = 0;
  std::size_t hangs_injected = 0;
  std::size_t corruptions_injected = 0;
  std::size_t host_crashes_injected = 0;
  std::size_t net_drops_injected = 0;
  std::size_t net_slowdowns_injected = 0;
  // Recovery side (what the protocol did about it).
  std::size_t crash_events = 0;     ///< crash_worker occurrences handled
  std::size_t timeouts = 0;         ///< per-task deadlines expired (kills)
  std::size_t retries = 0;          ///< work units re-enqueued
  std::size_t respawns = 0;         ///< replacement workers spawned
  std::size_t abandoned = 0;        ///< slots given up on (degradation)
  bool degraded = false;            ///< pool finished smaller than requested

  FaultCounters& operator+=(const FaultCounters& other);
  bool any() const;
};

/// Serialises the counters as one JSON object value (append after a key()).
void fault_counters_to_json(obs::JsonWriter& w, const FaultCounters& c);

}  // namespace mg::fault
