#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/json_writer.hpp"
#include "support/rng.hpp"

namespace mg::fault {

const char* to_string(WorkerFault f) {
  switch (f) {
    case WorkerFault::None: return "none";
    case WorkerFault::Crash: return "crash";
    case WorkerFault::Hang: return "hang";
    case WorkerFault::Corrupt: return "corrupt";
  }
  return "?";
}

std::chrono::milliseconds RetryPolicy::backoff_for(std::size_t attempt) const {
  double ms = static_cast<double>(backoff_initial.count());
  for (std::size_t k = 1; k < attempt; ++k) ms *= backoff_multiplier;
  ms = std::min(ms, static_cast<double>(backoff_cap.count()));
  return std::chrono::milliseconds(static_cast<std::int64_t>(std::llround(ms)));
}

double RetryPolicy::backoff_seconds_for(std::size_t attempt) const {
  return static_cast<double>(backoff_for(attempt).count()) / 1e3;
}

FaultPlanConfig parse_fault_spec(const std::string& spec) {
  FaultPlanConfig config;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string pair = spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? spec.size() : comma + 1;
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("fault spec: expected key=value, got '" + pair + "'");
    }
    const std::string key = pair.substr(0, eq);
    const double value = std::stod(pair.substr(eq + 1));
    if (key == "seed") {
      config.seed = static_cast<std::uint64_t>(value);
    } else if (key == "crash") {
      config.crash = value;
    } else if (key == "hang") {
      config.hang = value;
    } else if (key == "corrupt") {
      config.corrupt = value;
    } else if (key == "host_crash") {
      config.host_crash = value;
    } else if (key == "net_drop") {
      config.net_drop = value;
    } else if (key == "net_slow") {
      config.net_slow = value;
    } else if (key == "net_slow_factor") {
      config.net_slow_factor = value;
    } else if (key == "net_truncate") {
      config.net_truncate = value;
    } else if (key == "net_delay_ms") {
      config.net_delay = std::chrono::milliseconds(static_cast<std::int64_t>(value));
    } else {
      throw std::invalid_argument("fault spec: unknown key '" + key + "'");
    }
  }
  return config;
}

double FaultPlan::roll(std::uint64_t ordinal, std::uint64_t salt) const {
  // Domain-separated SplitMix64 hash -> uniform double in [0, 1).  A pure
  // function of (seed, ordinal, salt): thread interleaving cannot change it.
  support::SplitMix64 mix(config_.seed ^ (salt * 0x9e3779b97f4a7c15ULL) ^ (ordinal + 1));
  mix.next();
  return static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
}

WorkerFault FaultPlan::worker_fault(std::uint64_t incarnation) const {
  const double r = roll(incarnation, 1);
  if (r < config_.crash) return WorkerFault::Crash;
  if (r < config_.crash + config_.hang) return WorkerFault::Hang;
  if (r < config_.crash + config_.hang + config_.corrupt) return WorkerFault::Corrupt;
  return WorkerFault::None;
}

bool FaultPlan::host_crashes(std::uint64_t incarnation) const {
  return roll(incarnation, 2) < config_.host_crash;
}

double FaultPlan::host_crash_fraction(std::uint64_t incarnation) const {
  // Strictly inside the compute interval so the attempt always loses work.
  return 0.05 + 0.9 * roll(incarnation, 3);
}

bool FaultPlan::drops_transfer(std::uint64_t ordinal) const {
  return roll(ordinal, 4) < config_.net_drop;
}

double FaultPlan::transfer_slowdown(std::uint64_t ordinal) const {
  return roll(ordinal, 5) < config_.net_slow ? config_.net_slow_factor : 1.0;
}

bool FaultPlan::truncates_transfer(std::uint64_t ordinal) const {
  return roll(ordinal, 6) < config_.net_truncate;
}

FaultCounters& FaultCounters::operator+=(const FaultCounters& other) {
  crashes_injected += other.crashes_injected;
  hangs_injected += other.hangs_injected;
  corruptions_injected += other.corruptions_injected;
  host_crashes_injected += other.host_crashes_injected;
  net_drops_injected += other.net_drops_injected;
  net_slowdowns_injected += other.net_slowdowns_injected;
  crash_events += other.crash_events;
  timeouts += other.timeouts;
  retries += other.retries;
  respawns += other.respawns;
  abandoned += other.abandoned;
  degraded = degraded || other.degraded;
  return *this;
}

bool FaultCounters::any() const {
  return crashes_injected || hangs_injected || corruptions_injected || host_crashes_injected ||
         net_drops_injected || net_slowdowns_injected || crash_events || timeouts || retries ||
         respawns || abandoned || degraded;
}

void fault_counters_to_json(obs::JsonWriter& w, const FaultCounters& c) {
  w.begin_object();
  w.kv("crashes_injected", static_cast<std::uint64_t>(c.crashes_injected));
  w.kv("hangs_injected", static_cast<std::uint64_t>(c.hangs_injected));
  w.kv("corruptions_injected", static_cast<std::uint64_t>(c.corruptions_injected));
  w.kv("host_crashes_injected", static_cast<std::uint64_t>(c.host_crashes_injected));
  w.kv("net_drops_injected", static_cast<std::uint64_t>(c.net_drops_injected));
  w.kv("net_slowdowns_injected", static_cast<std::uint64_t>(c.net_slowdowns_injected));
  w.kv("crash_events", static_cast<std::uint64_t>(c.crash_events));
  w.kv("timeouts", static_cast<std::uint64_t>(c.timeouts));
  w.kv("retries", static_cast<std::uint64_t>(c.retries));
  w.kv("respawns", static_cast<std::uint64_t>(c.respawns));
  w.kv("abandoned", static_cast<std::uint64_t>(c.abandoned));
  w.kv("degraded", c.degraded);
  w.end_object();
}

}  // namespace mg::fault
