// ROS2 — the second-order, L-stable Rosenbrock W-method with adaptive step
// size (Verwer, Spee, Blom & Hundsdorfer's scheme, developed at CWI — the
// same institute and project family as the paper's transport code).
//
//   (I - gamma*h*A) k1 = F(t_n, u_n)
//   (I - gamma*h*A) k2 = F(t_n + h, u_n + h*k1) - 2*k1
//   u_{n+1} = u_n + (3/2) h k1 + (1/2) h k2,      gamma = 1 + 1/sqrt(2)
//
// The embedded first-order solution u_n + h*k1 gives the error estimate
// (h/2)||k1 + k2|| used by the controller; the controller tolerance is the
// paper's command-line `le_tol` (§3 line 18, §7: 1.0e-3 and 1.0e-4 runs).
#pragma once

#include <cstddef>

#include "rosenbrock/ode_system.hpp"

namespace mg::ros {

struct Ros2Options {
  double tol = 1e-3;        ///< the paper's le_tol (used as atol and rtol)
  double t0 = 0.0;
  double t1 = 1.0;
  double h0 = 0.0;          ///< initial step; 0 -> (t1-t0)/100
  double h_min = 1e-12;
  double h_max = 0.0;       ///< 0 -> t1-t0
  double safety = 0.9;
  double grow_limit = 2.0;
  double shrink_limit = 0.3;
  std::size_t max_steps = 1'000'000;
  bool fixed_step = false;  ///< integrate with constant h0 (for order tests)
  /// Warm-start the stage solves: k1/k2 are kept across steps so an
  /// iterative StageSolver that honours its incoming x starts from the
  /// previous step's stage solution, and k2 is seeded from this step's k1
  /// before the stage-2 solve.  Direct stage solvers ignore the seed, so
  /// their results are unchanged; iterative solvers converge to the same
  /// tolerance in (usually) fewer iterations.
  bool warm_start = false;
};

struct Ros2Stats {
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  std::size_t rhs_evaluations = 0;
  std::size_t stage_preparations = 0;  ///< matrix builds/factorisations
  std::size_t stage_solves = 0;        ///< linear-system solves
  double final_h = 0.0;
};

/// Integrates u from t0 to t1 in place.  Throws std::runtime_error if the
/// controller under-flows h_min or exceeds max_steps.
Ros2Stats integrate(OdeSystem& system, Vec& u, const Ros2Options& opts);

/// The L-stability gamma: 1 + 1/sqrt(2).
double ros2_gamma();

}  // namespace mg::ros
