#include "rosenbrock/ros2.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/check.hpp"

namespace mg::ros {

double ros2_gamma() { return 1.0 + 1.0 / std::sqrt(2.0); }

Ros2Stats integrate(OdeSystem& system, Vec& u, const Ros2Options& opts) {
  MG_REQUIRE(opts.t1 > opts.t0);
  MG_REQUIRE(opts.tol > 0.0);
  MG_REQUIRE(u.size() == system.dimension());

  const double gamma = ros2_gamma();
  const double span = opts.t1 - opts.t0;
  const double h_max = opts.h_max > 0.0 ? opts.h_max : span;
  double h = opts.h0 > 0.0 ? opts.h0 : span / 100.0;
  h = std::min(h, h_max);

  Ros2Stats stats;
  const std::size_t n = u.size();
  Vec f0(n), f1(n), k1(n), k2(n), u_stage(n), u_new(n), err_vec(n);

  double t = opts.t0;
  while (t < opts.t1 - 1e-14 * span) {
    if (stats.accepted + stats.rejected >= opts.max_steps) {
      throw std::runtime_error("ros2: max_steps exceeded");
    }
    h = std::min(h, opts.t1 - t);

    auto solver = system.prepare_stage(t, u, gamma * h);
    ++stats.stage_preparations;

    // Stage 1: (I - gamma h A) k1 = F(t, u).
    system.rhs(t, u, f0);
    ++stats.rhs_evaluations;
    solver->solve(f0, k1);
    ++stats.stage_solves;

    // Stage 2: (I - gamma h A) k2 = F(t + h, u + h k1) - 2 k1.
    for (std::size_t i = 0; i < n; ++i) u_stage[i] = u[i] + h * k1[i];
    system.rhs(t + h, u_stage, f1);
    ++stats.rhs_evaluations;
    for (std::size_t i = 0; i < n; ++i) f1[i] -= 2.0 * k1[i];
    if (opts.warm_start) k2 = k1;  // k1 is the best available guess for k2
    solver->solve(f1, k2);
    ++stats.stage_solves;

    for (std::size_t i = 0; i < n; ++i) {
      u_new[i] = u[i] + h * (1.5 * k1[i] + 0.5 * k2[i]);
      err_vec[i] = 0.5 * h * (k1[i] + k2[i]);  // u_new - (u + h k1), the embedded order-1 gap
    }

    if (opts.fixed_step) {
      u = u_new;
      t += h;
      ++stats.accepted;
      continue;
    }

    const double err = linalg::wrms_norm(err_vec, u, opts.tol, opts.tol);
    if (err <= 1.0) {
      u = u_new;
      t += h;
      ++stats.accepted;
    } else {
      ++stats.rejected;
    }

    // Standard order-1-estimate controller: err ~ h^2 for the embedded pair.
    const double factor = err > 0.0 ? opts.safety * std::pow(1.0 / err, 0.5) : opts.grow_limit;
    h *= std::clamp(factor, opts.shrink_limit, opts.grow_limit);
    h = std::min(h, h_max);
    if (h < opts.h_min) throw std::runtime_error("ros2: step size underflow");
  }
  stats.final_h = h;
  return stats;
}

}  // namespace mg::ros
