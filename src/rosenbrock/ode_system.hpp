// Interface between the time integrator and a (semi-discretised) ODE system
// u' = F(t, u).
//
// ROS2 needs, per step, the action of (I - gamma*h*A)^{-1} for some
// approximation A of the Jacobian dF/du.  ROS2 is a W-method: it retains
// order 2 for ANY A, so implementations are free to lag or approximate the
// Jacobian.  prepare_stage() returns a solver object so direct
// factorisations are done once per step and reused for both stages — exactly
// the expensive "A matrix must be built up ... again and again" the paper
// describes in subsolve.
#pragma once

#include <cstddef>
#include <memory>

#include "linalg/vector_ops.hpp"

namespace mg::ros {

using linalg::Vec;

/// Solves (I - gamma_h * A) x = rhs for the (t, u, gamma_h) it was prepared
/// with.  Both ROS2 stages reuse one StageSolver.
class StageSolver {
 public:
  virtual ~StageSolver() = default;
  virtual void solve(const Vec& rhs, Vec& x) = 0;
};

class OdeSystem {
 public:
  virtual ~OdeSystem() = default;

  virtual std::size_t dimension() const = 0;

  /// f = F(t, u).
  virtual void rhs(double t, const Vec& u, Vec& f) = 0;

  /// Builds a solver for (I - gamma_h * A(t, u)).
  virtual std::unique_ptr<StageSolver> prepare_stage(double t, const Vec& u, double gamma_h) = 0;
};

}  // namespace mg::ros
