#include "transport/system.hpp"

#include <stdexcept>

#include "linalg/precond.hpp"
#include "obs/metrics.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"
#include "transport/koren.hpp"

namespace mg::transport {

namespace {
struct StageMetrics {
  obs::Counter& preparations = obs::registry().counter("linalg.stage_preparations");
  obs::Histogram& assemble_seconds = obs::registry().histogram("linalg.stage_assemble_seconds");
  obs::Histogram& factor_seconds = obs::registry().histogram("linalg.stage_factor_seconds");
  obs::Histogram& solve_seconds = obs::registry().histogram("linalg.stage_solve_seconds");
  obs::Counter& cache_hits = obs::registry().counter("linalg.stage_cache.hits");
  obs::Counter& cache_misses = obs::registry().counter("linalg.stage_cache.misses");
  obs::Counter& cache_refreshes = obs::registry().counter("linalg.stage_cache.refreshes");
};

StageMetrics& stage_metrics() {
  static StageMetrics m;
  return m;
}
}  // namespace

const char* to_string(StageSolverKind k) {
  switch (k) {
    case StageSolverKind::BandedLU: return "banded-lu";
    case StageSolverKind::BiCgStabIlu0: return "bicgstab+ilu0";
    case StageSolverKind::BiCgStabJacobi: return "bicgstab+jacobi";
  }
  return "?";
}

TransportSystem::TransportSystem(grid::Grid2D grid, TransportProblem problem, SystemOptions options)
    : grid_(grid), problem_(problem), options_(options) {
  if (options_.inner_threads > 1) {
    inner_team_ = std::make_unique<linalg::ParallelContext>(options_.inner_threads);
  }
  assemble();
}

void TransportSystem::assemble() {
  const std::size_t nx = grid_.interior_x();
  const std::size_t ny = grid_.interior_y();
  const double hx = grid_.hx();
  const double hy = grid_.hy();
  const double eps = problem_.eps;
  const double ax = problem_.ax;
  const double ay = problem_.ay;

  // Stencil weights: contribution of neighbour value to du_ij/dt.
  double wW, wE, wS, wN, wC;  // west, east, south, north, centre
  const double dxx = eps / (hx * hx);
  const double dyy = eps / (hy * hy);
  if (options_.scheme == AdvectionScheme::Central2) {
    wW = dxx + ax / (2.0 * hx);
    wE = dxx - ax / (2.0 * hx);
    wS = dyy + ay / (2.0 * hy);
    wN = dyy - ay / (2.0 * hy);
    wC = -2.0 * dxx - 2.0 * dyy;
  } else {  // Upwind1, and the stage-matrix Jacobian for ThirdOrderKoren
            // (ROS2 is a W-method: the first-order upwind operator is a
            // valid A for the limited third-order right-hand side)
    // -a du/dx with upwinding: for ax > 0 use (u_ij - u_{i-1,j})/hx.
    const double axp = ax > 0.0 ? ax : 0.0;  // positive part
    const double axm = ax < 0.0 ? -ax : 0.0; // magnitude of negative part
    const double ayp = ay > 0.0 ? ay : 0.0;
    const double aym = ay < 0.0 ? -ay : 0.0;
    wW = dxx + axp / hx;
    wE = dxx + axm / hx;
    wS = dyy + ayp / hy;
    wN = dyy + aym / hy;
    wC = -2.0 * dxx - 2.0 * dyy - axp / hx - axm / hx - ayp / hy - aym / hy;
  }

  linalg::CsrBuilder builder(nx * ny, nx * ny);
  boundary_couplings_.clear();
  for (std::size_t j = 1; j <= ny; ++j) {
    for (std::size_t i = 1; i <= nx; ++i) {
      const std::size_t row = grid_.interior_index(i, j);
      builder.add(row, row, wC);
      auto couple = [&](std::size_t in, std::size_t jn, double w) {
        if (grid_.is_boundary(in, jn)) {
          boundary_couplings_.push_back({row, w, grid_.x(in), grid_.y(jn)});
        } else {
          builder.add(row, grid_.interior_index(in, jn), w);
        }
      };
      couple(i - 1, j, wW);
      couple(i + 1, j, wE);
      couple(i, j - 1, wS);
      couple(i, j + 1, wN);
    }
  }
  jacobian_ = builder.build();

  // The stage matrix (I - gamma*h*J) has exactly the Jacobian's pattern (the
  // diagonal is always present: wC is added for every row), so its values
  // can be refreshed in place each step via this offset map.
  diag_offset_ = jacobian_.diagonal_offsets();
  for (std::size_t off : diag_offset_) {
    MG_ASSERT(off != linalg::CsrMatrix::kNoDiagonal);
  }
  cached_solver_.reset();
  cache_valid_ = false;
}

void TransportSystem::rhs(double t, const ros::Vec& u, ros::Vec& f) {
  MG_REQUIRE(u.size() == dimension());
  if (options_.scheme == AdvectionScheme::ThirdOrderKoren) {
    // Nonlinear limited scheme: evaluate flux-form on the full nodal field
    // (boundary nodes carry the Dirichlet data at time t).
    nodal_scratch_.resize(grid_.node_count());
    for (std::size_t j = 0; j < grid_.nodes_y(); ++j) {
      for (std::size_t i = 0; i < grid_.nodes_x(); ++i) {
        nodal_scratch_[grid_.node_index(i, j)] =
            grid_.is_boundary(i, j) ? problem_.exact(grid_.x(i), grid_.y(j), t)
                                    : u[grid_.interior_index(i, j)];
      }
    }
    koren_rhs(grid_, problem_, nodal_scratch_, f);
    return;
  }
  jacobian_.multiply(u, f, kernel_context());
  for (const auto& bc : boundary_couplings_) {
    f[bc.row] += bc.coefficient * problem_.exact(bc.bx, bc.by, t);
  }
}

namespace {

class BandedStageSolver final : public ros::StageSolver {
 public:
  /// Seed path: takes a fully formed band and factorises it.
  BandedStageSolver(linalg::BandedMatrix matrix, linalg::KernelContext kctx)
      : matrix_(std::move(matrix)), kctx_(kctx) {
    factorize();
  }

  /// Cached path: allocates the band storage once; refresh() fills it.
  BandedStageSolver(std::size_t n, std::size_t half_bandwidth, linalg::KernelContext kctx)
      : matrix_(n, half_bandwidth), kctx_(kctx) {}

  /// Rewrites the band as (I - gamma_h * J) and refactorises, all in the
  /// storage allocated at construction.
  void refresh(const linalg::CsrMatrix& jacobian, double gamma_h) {
    support::Stopwatch clock;
    matrix_.assign_shifted_csr(jacobian, 1.0, -gamma_h);
    stage_metrics().assemble_seconds.observe(clock.elapsed_seconds());
    factorize();
  }

  void solve(const ros::Vec& rhs, ros::Vec& x) override {
    support::Stopwatch clock;
    matrix_.solve(rhs, x);
    stage_metrics().solve_seconds.observe(clock.elapsed_seconds());
  }

 private:
  void factorize() {
    support::Stopwatch clock;
    matrix_.factorize(kctx_);
    stage_metrics().factor_seconds.observe(clock.elapsed_seconds());
  }

  linalg::BandedMatrix matrix_;
  linalg::KernelContext kctx_;
};

class KrylovStageSolver final : public ros::StageSolver {
 public:
  KrylovStageSolver(linalg::CsrMatrix matrix, linalg::PrecondKind precond,
                    linalg::SolveOptions opts, bool warm_start, linalg::KernelContext kctx)
      : matrix_(std::move(matrix)), precond_kind_(precond), opts_(opts),
        warm_start_(warm_start), kctx_(kctx) {
    build_preconditioner();
  }

  /// Overwrites the stage values in place as (I - gamma_h * J) — same
  /// pattern, so only the value array is touched — then rebuilds the
  /// preconditioner for the new values.
  void refresh(const linalg::CsrMatrix& jacobian, const std::vector<std::size_t>& diag_offset,
               double gamma_h) {
    support::Stopwatch clock;
    const double scale = -gamma_h;
    const std::size_t nnz = matrix_.nnz();
    const double* __restrict jv = jacobian.values().data();
    double* __restrict sv = matrix_.values().data();
    for (std::size_t k = 0; k < nnz; ++k) sv[k] = scale * jv[k];
    for (std::size_t off : diag_offset) sv[off] += 1.0;
    stage_metrics().assemble_seconds.observe(clock.elapsed_seconds());
    build_preconditioner();
  }

  void solve(const ros::Vec& rhs, ros::Vec& x) override {
    // An unexpectedly-sized x never carries a meaningful guess; otherwise the
    // caller's x IS the warm start (under ROS2: last step's k for stage 1,
    // this step's k1 for stage 2) unless warm starts are disabled.
    if (!warm_start_ || x.size() != matrix_.rows()) x.assign(matrix_.rows(), 0.0);
    support::Stopwatch clock;
    const auto report = linalg::bicgstab(matrix_, rhs, x, *precond_, opts_, &workspace_, kctx_);
    stage_metrics().solve_seconds.observe(clock.elapsed_seconds());
    if (!report.converged) {
      throw std::runtime_error("TransportSystem: BiCGSTAB failed to converge (residual " +
                               std::to_string(report.residual_norm) + ")");
    }
  }

 private:
  void build_preconditioner() {
    support::Stopwatch clock;
    precond_ = linalg::make_preconditioner(precond_kind_, matrix_);
    stage_metrics().factor_seconds.observe(clock.elapsed_seconds());
  }

  linalg::CsrMatrix matrix_;
  linalg::PrecondKind precond_kind_;
  linalg::SolveOptions opts_;
  bool warm_start_;
  linalg::KernelContext kctx_;
  std::unique_ptr<linalg::Preconditioner> precond_;
  linalg::KrylovWorkspace workspace_;
};

/// Thin handle prepare_stage returns on a cache hit/refresh: the solver —
/// matrix storage, factors, Krylov workspace — lives in the TransportSystem
/// and survives across steps.
class SharedStageSolver final : public ros::StageSolver {
 public:
  explicit SharedStageSolver(std::shared_ptr<ros::StageSolver> inner)
      : inner_(std::move(inner)) {}
  void solve(const ros::Vec& rhs, ros::Vec& x) override { inner_->solve(rhs, x); }

 private:
  std::shared_ptr<ros::StageSolver> inner_;
};

linalg::PrecondKind precond_kind_for(StageSolverKind kind) {
  return kind == StageSolverKind::BiCgStabIlu0 ? linalg::PrecondKind::Ilu0
                                               : linalg::PrecondKind::Jacobi;
}

}  // namespace

/// The seed's rebuild-every-step path (cache_stage == false): assemble a
/// fresh stage matrix and a fresh solver, discarded after the step.  Kept
/// verbatim as the reference the cache is asserted bit-identical against
/// and as the baseline the prepare_stage benches compare with.
std::unique_ptr<ros::StageSolver> TransportSystem::rebuild_stage(double gamma_h) {
  support::Stopwatch assemble_clock;
  linalg::CsrMatrix stage = linalg::shifted_identity(jacobian_, 1.0, -gamma_h);
  stage_metrics().assemble_seconds.observe(assemble_clock.elapsed_seconds());
  switch (options_.solver) {
    case StageSolverKind::BandedLU:
      return std::make_unique<BandedStageSolver>(
          linalg::BandedMatrix::from_csr(stage, grid_.interior_x()), kernel_context());
    case StageSolverKind::BiCgStabIlu0:
    case StageSolverKind::BiCgStabJacobi:
      return std::make_unique<KrylovStageSolver>(std::move(stage),
                                                 precond_kind_for(options_.solver),
                                                 options_.krylov, options_.warm_start,
                                                 kernel_context());
  }
  throw std::logic_error("TransportSystem: unknown solver kind");
}

std::unique_ptr<ros::StageSolver> TransportSystem::prepare_stage(double /*t*/, const ros::Vec& u,
                                                                 double gamma_h) {
  MG_REQUIRE(u.size() == dimension());
  StageMetrics& metrics = stage_metrics();
  metrics.preparations.add();
  if (!options_.cache_stage) {
    ++cache_stats_.misses;
    metrics.cache_misses.add();
    return rebuild_stage(gamma_h);
  }

  // Hit: gamma*h is unchanged, reuse matrix, factors and workspace outright.
  if (cache_valid_ && gamma_h == cached_gamma_h_) {
    ++cache_stats_.hits;
    metrics.cache_hits.add();
    return std::make_unique<SharedStageSolver>(cached_solver_);
  }

  // Miss (first build) or refresh (gamma*h changed): update values in place
  // through the cached solver's storage and refactorise.
  if (cache_valid_) {
    ++cache_stats_.refreshes;
    metrics.cache_refreshes.add();
  } else {
    ++cache_stats_.misses;
    metrics.cache_misses.add();
  }
  switch (options_.solver) {
    case StageSolverKind::BandedLU: {
      if (!cached_solver_) {
        cached_solver_ = std::make_shared<BandedStageSolver>(dimension(), grid_.interior_x(),
                                                             kernel_context());
      }
      static_cast<BandedStageSolver&>(*cached_solver_).refresh(jacobian_, gamma_h);
      break;
    }
    case StageSolverKind::BiCgStabIlu0:
    case StageSolverKind::BiCgStabJacobi: {
      if (!cached_solver_) {
        // First build goes through shifted_identity once to stamp out the
        // stage pattern (== Jacobian pattern); refresh() then touches only
        // the value array.  Count the stamp as assembly so cold timings stay
        // comparable with the rebuild path.
        support::Stopwatch assemble_clock;
        linalg::CsrMatrix stage = linalg::shifted_identity(jacobian_, 1.0, -gamma_h);
        stage_metrics().assemble_seconds.observe(assemble_clock.elapsed_seconds());
        cached_solver_ = std::make_shared<KrylovStageSolver>(
            std::move(stage), precond_kind_for(options_.solver), options_.krylov,
            options_.warm_start, kernel_context());
      } else {
        static_cast<KrylovStageSolver&>(*cached_solver_)
            .refresh(jacobian_, diag_offset_, gamma_h);
      }
      break;
    }
  }
  cached_gamma_h_ = gamma_h;
  cache_valid_ = true;
  return std::make_unique<SharedStageSolver>(cached_solver_);
}

ros::Vec TransportSystem::restrict_interior(const grid::Field& field) const {
  MG_REQUIRE(field.grid() == grid_);
  ros::Vec u(dimension());
  for (std::size_t j = 1; j <= grid_.interior_y(); ++j) {
    for (std::size_t i = 1; i <= grid_.interior_x(); ++i) {
      u[grid_.interior_index(i, j)] = field.at(i, j);
    }
  }
  return u;
}

grid::Field TransportSystem::expand(const ros::Vec& u, double t) const {
  MG_REQUIRE(u.size() == dimension());
  grid::Field field(grid_);
  for (std::size_t j = 0; j < grid_.nodes_y(); ++j) {
    for (std::size_t i = 0; i < grid_.nodes_x(); ++i) {
      if (grid_.is_boundary(i, j)) {
        field.at(i, j) = problem_.exact(grid_.x(i), grid_.y(j), t);
      } else {
        field.at(i, j) = u[grid_.interior_index(i, j)];
      }
    }
  }
  return field;
}

}  // namespace mg::transport
