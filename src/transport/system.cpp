#include "transport/system.hpp"

#include <stdexcept>

#include "linalg/precond.hpp"
#include "obs/metrics.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"
#include "transport/koren.hpp"

namespace mg::transport {

namespace {
struct StageMetrics {
  obs::Counter& preparations = obs::registry().counter("linalg.stage_preparations");
  obs::Histogram& assemble_seconds = obs::registry().histogram("linalg.stage_assemble_seconds");
  obs::Histogram& factor_seconds = obs::registry().histogram("linalg.stage_factor_seconds");
};

StageMetrics& stage_metrics() {
  static StageMetrics m;
  return m;
}
}  // namespace

const char* to_string(StageSolverKind k) {
  switch (k) {
    case StageSolverKind::BandedLU: return "banded-lu";
    case StageSolverKind::BiCgStabIlu0: return "bicgstab+ilu0";
    case StageSolverKind::BiCgStabJacobi: return "bicgstab+jacobi";
  }
  return "?";
}

TransportSystem::TransportSystem(grid::Grid2D grid, TransportProblem problem, SystemOptions options)
    : grid_(grid), problem_(problem), options_(options) {
  assemble();
}

void TransportSystem::assemble() {
  const std::size_t nx = grid_.interior_x();
  const std::size_t ny = grid_.interior_y();
  const double hx = grid_.hx();
  const double hy = grid_.hy();
  const double eps = problem_.eps;
  const double ax = problem_.ax;
  const double ay = problem_.ay;

  // Stencil weights: contribution of neighbour value to du_ij/dt.
  double wW, wE, wS, wN, wC;  // west, east, south, north, centre
  const double dxx = eps / (hx * hx);
  const double dyy = eps / (hy * hy);
  if (options_.scheme == AdvectionScheme::Central2) {
    wW = dxx + ax / (2.0 * hx);
    wE = dxx - ax / (2.0 * hx);
    wS = dyy + ay / (2.0 * hy);
    wN = dyy - ay / (2.0 * hy);
    wC = -2.0 * dxx - 2.0 * dyy;
  } else {  // Upwind1, and the stage-matrix Jacobian for ThirdOrderKoren
            // (ROS2 is a W-method: the first-order upwind operator is a
            // valid A for the limited third-order right-hand side)
    // -a du/dx with upwinding: for ax > 0 use (u_ij - u_{i-1,j})/hx.
    const double axp = ax > 0.0 ? ax : 0.0;  // positive part
    const double axm = ax < 0.0 ? -ax : 0.0; // magnitude of negative part
    const double ayp = ay > 0.0 ? ay : 0.0;
    const double aym = ay < 0.0 ? -ay : 0.0;
    wW = dxx + axp / hx;
    wE = dxx + axm / hx;
    wS = dyy + ayp / hy;
    wN = dyy + aym / hy;
    wC = -2.0 * dxx - 2.0 * dyy - axp / hx - axm / hx - ayp / hy - aym / hy;
  }

  linalg::CsrBuilder builder(nx * ny, nx * ny);
  boundary_couplings_.clear();
  for (std::size_t j = 1; j <= ny; ++j) {
    for (std::size_t i = 1; i <= nx; ++i) {
      const std::size_t row = grid_.interior_index(i, j);
      builder.add(row, row, wC);
      auto couple = [&](std::size_t in, std::size_t jn, double w) {
        if (grid_.is_boundary(in, jn)) {
          boundary_couplings_.push_back({row, w, grid_.x(in), grid_.y(jn)});
        } else {
          builder.add(row, grid_.interior_index(in, jn), w);
        }
      };
      couple(i - 1, j, wW);
      couple(i + 1, j, wE);
      couple(i, j - 1, wS);
      couple(i, j + 1, wN);
    }
  }
  jacobian_ = builder.build();
}

void TransportSystem::rhs(double t, const ros::Vec& u, ros::Vec& f) {
  MG_REQUIRE(u.size() == dimension());
  if (options_.scheme == AdvectionScheme::ThirdOrderKoren) {
    // Nonlinear limited scheme: evaluate flux-form on the full nodal field
    // (boundary nodes carry the Dirichlet data at time t).
    nodal_scratch_.resize(grid_.node_count());
    for (std::size_t j = 0; j < grid_.nodes_y(); ++j) {
      for (std::size_t i = 0; i < grid_.nodes_x(); ++i) {
        nodal_scratch_[grid_.node_index(i, j)] =
            grid_.is_boundary(i, j) ? problem_.exact(grid_.x(i), grid_.y(j), t)
                                    : u[grid_.interior_index(i, j)];
      }
    }
    koren_rhs(grid_, problem_, nodal_scratch_, f);
    return;
  }
  jacobian_.multiply(u, f);
  for (const auto& bc : boundary_couplings_) {
    f[bc.row] += bc.coefficient * problem_.exact(bc.bx, bc.by, t);
  }
}

namespace {

class BandedStageSolver final : public ros::StageSolver {
 public:
  explicit BandedStageSolver(linalg::BandedMatrix matrix) : matrix_(std::move(matrix)) {
    support::Stopwatch clock;
    matrix_.factorize();
    stage_metrics().factor_seconds.observe(clock.elapsed_seconds());
  }
  void solve(const ros::Vec& rhs, ros::Vec& x) override { matrix_.solve(rhs, x); }

 private:
  linalg::BandedMatrix matrix_;
};

class KrylovStageSolver final : public ros::StageSolver {
 public:
  KrylovStageSolver(linalg::CsrMatrix matrix, linalg::PrecondKind precond,
                    linalg::SolveOptions opts)
      : matrix_(std::move(matrix)), precond_(linalg::make_preconditioner(precond, matrix_)),
        opts_(opts) {}

  void solve(const ros::Vec& rhs, ros::Vec& x) override {
    x.assign(matrix_.rows(), 0.0);
    const auto report = linalg::bicgstab(matrix_, rhs, x, *precond_, opts_);
    if (!report.converged) {
      throw std::runtime_error("TransportSystem: BiCGSTAB failed to converge (residual " +
                               std::to_string(report.residual_norm) + ")");
    }
  }

 private:
  linalg::CsrMatrix matrix_;
  std::unique_ptr<linalg::Preconditioner> precond_;
  linalg::SolveOptions opts_;
};

}  // namespace

std::unique_ptr<ros::StageSolver> TransportSystem::prepare_stage(double /*t*/, const ros::Vec& u,
                                                                 double gamma_h) {
  MG_REQUIRE(u.size() == dimension());
  stage_metrics().preparations.add();
  // Stage matrix (I - gamma_h * J); rebuilt per step as in the original code.
  support::Stopwatch assemble_clock;
  linalg::CsrMatrix stage = linalg::shifted_identity(jacobian_, 1.0, -gamma_h);
  stage_metrics().assemble_seconds.observe(assemble_clock.elapsed_seconds());
  switch (options_.solver) {
    case StageSolverKind::BandedLU:
      return std::make_unique<BandedStageSolver>(
          linalg::BandedMatrix::from_csr(stage, grid_.interior_x()));
    case StageSolverKind::BiCgStabIlu0:
      return std::make_unique<KrylovStageSolver>(std::move(stage), linalg::PrecondKind::Ilu0,
                                                 options_.krylov);
    case StageSolverKind::BiCgStabJacobi:
      return std::make_unique<KrylovStageSolver>(std::move(stage), linalg::PrecondKind::Jacobi,
                                                 options_.krylov);
  }
  throw std::logic_error("TransportSystem: unknown solver kind");
}

ros::Vec TransportSystem::restrict_interior(const grid::Field& field) const {
  MG_REQUIRE(field.grid() == grid_);
  ros::Vec u(dimension());
  for (std::size_t j = 1; j <= grid_.interior_y(); ++j) {
    for (std::size_t i = 1; i <= grid_.interior_x(); ++i) {
      u[grid_.interior_index(i, j)] = field.at(i, j);
    }
  }
  return u;
}

grid::Field TransportSystem::expand(const ros::Vec& u, double t) const {
  MG_REQUIRE(u.size() == dimension());
  grid::Field field(grid_);
  for (std::size_t j = 0; j < grid_.nodes_y(); ++j) {
    for (std::size_t i = 0; i < grid_.nodes_x(); ++i) {
      if (grid_.is_boundary(i, j)) {
        field.at(i, j) = problem_.exact(grid_.x(i), grid_.y(j), t);
      } else {
        field.at(i, j) = u[grid_.interior_index(i, j)];
      }
    }
  }
  return field;
}

}  // namespace mg::transport
