// Third-order upwind-biased (kappa = 1/3) advection with the Koren limiter.
//
// The original CWI sparse-grid transport solvers used limited third-order
// upwind-biased advection; the limiter is due to B. Koren — the third author
// of the paper.  The limited face value for velocity a > 0 at face i+1/2 is
//
//   u_{i+1/2} = u_i + (1/2) phi(r_i) (u_i - u_{i-1}),
//   r_i = (u_{i+1} - u_i) / (u_i - u_{i-1}),
//   phi(r) = max(0, min(2r, min((1 + 2r)/3, 2)))        (the Koren limiter)
//
// giving the kappa = 1/3 scheme in smooth monotone regions and falling back
// towards first-order upwind near extrema (TVD-like, no new over/under-
// shoots).  Faces whose widened stencil leaves the grid fall back to
// first-order upwind.
//
// The scheme is nonlinear in u, so it is used as the right-hand side only;
// the Rosenbrock stage matrix uses the first-order upwind Jacobian (ROS2 is
// a W-method: order 2 for any A).
#pragma once

#include <vector>

#include "grid/grid2d.hpp"
#include "transport/problem.hpp"

namespace mg::transport {

/// The Koren limiter phi(r).
double koren_phi(double r);

/// Evaluates the full semi-discrete right-hand side (limited advection +
/// central diffusion) at the interior nodes.  `nodal` holds the complete
/// nodal field (boundary values included, already set for the evaluation
/// time); `out` receives interior_count() values in interior ordering.
void koren_rhs(const grid::Grid2D& g, const TransportProblem& problem,
               const std::vector<double>& nodal, std::vector<double>& out);

}  // namespace mg::transport
