// subsolve(l, m) — the paper's compute-intensive kernel (§3 lines 34-41).
//
// "Heavy computational work on grid (l, m)": integrate the transport problem
// on grid (l, m) from t0 to t1 with the adaptive Rosenbrock solver, solving
// a linear system every stage.  The routine reads and writes data only of
// its own grid — the concurrency property that makes it the restructuring
// candidate — so it takes a value parameter pack and returns a value result
// with no global state.
#pragma once

#include "grid/field.hpp"
#include "grid/grid2d.hpp"
#include "rosenbrock/ros2.hpp"
#include "transport/problem.hpp"
#include "transport/system.hpp"

namespace mg::transport {

struct SubsolveConfig {
  TransportProblem problem;
  SystemOptions system;
  double le_tol = 1e-3;  ///< the integrator tolerance (paper's argv[3])
  double t0 = 0.0;
  double t1 = 0.4;
};

struct SubsolveResult {
  grid::Field solution;  ///< full nodal field at t1 (boundary = exact data)
  ros::Ros2Stats stats;
  double elapsed_seconds = 0.0;
};

/// Solves the transport problem on grid (l, m).  Pure function of its
/// arguments; safe to run concurrently for different grids.
SubsolveResult subsolve(const grid::Grid2D& g, const SubsolveConfig& config);

/// Approximate marshalled size of a subsolve work unit / result in bytes
/// (used by the cluster simulator's network model).
std::size_t subsolve_payload_bytes(const grid::Grid2D& g);

}  // namespace mg::transport
