#include "transport/koren.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace mg::transport {

double koren_phi(double r) {
  return std::max(0.0, std::min(2.0 * r, std::min((1.0 + 2.0 * r) / 3.0, 2.0)));
}

namespace {

/// Limited face value between `up` (upstream) and `down` (downstream) with
/// `upup` one more node upstream.  `has_upup` falls back to first order.
double limited_face(double upup, double up, double down, bool has_upup) {
  if (!has_upup) return up;
  const double den = up - upup;
  if (std::abs(den) < 1e-300) return up;
  const double r = (down - up) / den;
  return up + 0.5 * koren_phi(r) * den;
}

}  // namespace

void koren_rhs(const grid::Grid2D& g, const TransportProblem& problem,
               const std::vector<double>& nodal, std::vector<double>& out) {
  MG_REQUIRE(nodal.size() == g.node_count());
  const std::size_t nx = g.nodes_x();
  const std::size_t ny = g.nodes_y();
  const double hx = g.hx();
  const double hy = g.hy();
  const double ax = problem.ax;
  const double ay = problem.ay;
  const double eps = problem.eps;

  auto at = [&](std::size_t i, std::size_t j) { return nodal[j * nx + i]; };

  // Face value in x between nodes (i, j) and (i+1, j); 0 <= i <= nx-2.
  auto face_x = [&](std::size_t i, std::size_t j) {
    if (ax >= 0.0) {
      const bool has = i >= 1;
      return limited_face(has ? at(i - 1, j) : 0.0, at(i, j), at(i + 1, j), has);
    }
    const bool has = i + 2 < nx;
    return limited_face(has ? at(i + 2, j) : 0.0, at(i + 1, j), at(i, j), has);
  };
  auto face_y = [&](std::size_t i, std::size_t j) {
    if (ay >= 0.0) {
      const bool has = j >= 1;
      return limited_face(has ? at(i, j - 1) : 0.0, at(i, j), at(i, j + 1), has);
    }
    const bool has = j + 2 < ny;
    return limited_face(has ? at(i, j + 2) : 0.0, at(i, j + 1), at(i, j), has);
  };

  out.resize(g.interior_count());
  for (std::size_t j = 1; j <= g.interior_y(); ++j) {
    for (std::size_t i = 1; i <= g.interior_x(); ++i) {
      const double adv_x = -ax * (face_x(i, j) - face_x(i - 1, j)) / hx;
      const double adv_y = -ay * (face_y(i, j) - face_y(i, j - 1)) / hy;
      const double diff =
          eps * ((at(i - 1, j) - 2.0 * at(i, j) + at(i + 1, j)) / (hx * hx) +
                 (at(i, j - 1) - 2.0 * at(i, j) + at(i, j + 1)) / (hy * hy));
      out[g.interior_index(i, j)] = adv_x + adv_y + diff;
    }
  }
}

}  // namespace mg::transport
