// The sequential program of the paper's §3 (`SeqSourceCode.c`), restated:
//
//   root  = atoi(argv[1]);   // refinement level of the coarsest grid
//   level = atoi(argv[2]);   // additional refinement above the root level
//   le_tol = atof(argv[3]);  // tolerance of the integrator
//   ... initialise global data structure ...
//   for (lm = level-1; lm <= level; lm++)
//     for (l = 0; l <= lm; l++)
//       subsolve(l, lm - l);          // heavy computational work
//   ... prolongation work ...
//
// SeqSolver is the faithful sequential baseline: one thread, grids visited
// in the paper's order, results stored in a GlobalData structure ("the huge
// global data structure"), then prolongated and combined onto the finest
// grid.  The concurrent version (src/core) must reproduce its output
// exactly (§6: "written to a file and are exactly the same as in the
// sequential version").
#pragma once

#include <optional>
#include <vector>

#include "grid/combination.hpp"
#include "grid/field.hpp"
#include "transport/subsolve.hpp"

namespace mg::transport {

/// Program parameters (the paper's argv[1..3] plus the model problem).
struct ProgramConfig {
  int root = 2;            ///< paper §7: "we have used 2"
  int level = 3;           ///< paper §7: 0 through 15
  double le_tol = 1e-3;    ///< paper §7: 1.0e-3 and 1.0e-4
  SubsolveConfig kernel;   ///< problem, scheme, solver, time interval

  /// Kernel config with le_tol applied (kernel.le_tol mirrors le_tol).
  SubsolveConfig kernel_config() const {
    SubsolveConfig k = kernel;
    k.le_tol = le_tol;
    return k;
  }
};

/// The "huge global data structure": per-grid solutions keyed by the visit
/// order of the nested loop, plus the combination metadata.
struct GlobalData {
  std::vector<grid::CombinationTerm> terms;
  std::vector<std::optional<grid::Field>> solutions;  ///< indexed like terms

  explicit GlobalData(int root, int level);

  /// Stores a subsolve result; index must match the term's position.
  void store(std::size_t index, grid::Field field);

  bool complete() const;
};

/// One row of per-grid bookkeeping.
struct GridRunRecord {
  grid::Grid2D grid;
  double coefficient;
  ros::Ros2Stats stats;
  double elapsed_seconds;
};

struct SolveResult {
  grid::Field combined;                 ///< combination on the finest grid
  std::vector<GridRunRecord> records;   ///< per component grid, visit order
  double init_seconds = 0.0;
  double subsolve_seconds = 0.0;        ///< total time in the nested loop
  double prolongation_seconds = 0.0;
  double total_seconds = 0.0;

  std::size_t total_accepted_steps() const;
  std::size_t total_stage_solves() const;
};

/// Runs the sequential program.  Deterministic for fixed config.
SolveResult solve_sequential(const ProgramConfig& config);

}  // namespace mg::transport
