// The Molenkamp–Crowley rotating-cone test — the classic benchmark for
// advection solvers in the CWI transport literature.
//
// Solid-body rotation around the domain centre,
//
//   a(x, y) = omega * (-(y - 1/2), (x - 1/2)),      u_t + a . grad u = 0,
//
// with a Gaussian cone initial profile.  The exact solution is the initial
// profile rotated by the angle omega*t, which makes long-time accuracy
// directly measurable: after a full revolution the numerical cone should sit
// exactly where it started.  Boundary values are homogeneous (the cone stays
// in the interior).
//
// This system exercises what the paper's constant-coefficient model problem
// cannot: spatially varying velocity (per-node upwinding, an asymmetric
// Jacobian with no constant stencil), while reusing the same grid / ROS2 /
// linear-algebra substrates and the same master/worker restructuring.
#pragma once

#include <memory>

#include "grid/field.hpp"
#include "grid/grid2d.hpp"
#include "linalg/csr.hpp"
#include "rosenbrock/ode_system.hpp"
#include "rosenbrock/ros2.hpp"

namespace mg::transport {

struct RotatingConeProblem {
  double omega = 2.0 * 3.14159265358979323846;  ///< one revolution per unit time
  double cx = 0.5;      ///< rotation centre
  double cy = 0.5;
  double r0 = 0.25;     ///< initial cone centre distance from the rotation centre
  double sigma = 0.10;  ///< cone width (tail < 0.2% at the nearest boundary)
  double amplitude = 1.0;

  double velocity_x(double /*x*/, double y) const { return -omega * (y - cy); }
  double velocity_y(double x, double /*y*/) const { return omega * (x - cx); }

  /// Exact solution: the initial cone rotated by omega * t.
  double exact(double x, double y, double t) const;
  double initial(double x, double y) const { return exact(x, y, 0.0); }
};

/// First-order upwind semi-discretisation with per-node velocities.
class RotatingConeSystem final : public ros::OdeSystem {
 public:
  RotatingConeSystem(grid::Grid2D grid, RotatingConeProblem problem = {});

  std::size_t dimension() const override { return grid_.interior_count(); }
  void rhs(double t, const ros::Vec& u, ros::Vec& f) override;
  std::unique_ptr<ros::StageSolver> prepare_stage(double t, const ros::Vec& u,
                                                  double gamma_h) override;

  const grid::Grid2D& grid() const { return grid_; }
  const linalg::CsrMatrix& jacobian() const { return jacobian_; }

  /// Expands unknowns to a full nodal field (boundary = 0).
  grid::Field expand(const ros::Vec& u) const;
  ros::Vec restrict_interior(const grid::Field& field) const;

 private:
  void assemble();

  grid::Grid2D grid_;
  RotatingConeProblem problem_;
  linalg::CsrMatrix jacobian_;
};

struct RotatingRunResult {
  grid::Field solution;
  ros::Ros2Stats stats;
  double max_error;  ///< against the rotated exact profile at t1
};

/// Integrates the rotating cone from t = 0 to t1 at the given tolerance.
RotatingRunResult solve_rotating_cone(const grid::Grid2D& g, const RotatingConeProblem& problem,
                                      double tol, double t1);

}  // namespace mg::transport
