#include "transport/rotating.hpp"

#include <cmath>

#include "linalg/banded.hpp"
#include "support/check.hpp"

namespace mg::transport {

double RotatingConeProblem::exact(double x, double y, double t) const {
  // Rotate the evaluation point backwards by omega*t, then evaluate the
  // initial cone (centred at (cx + r0, cy)).
  const double c = std::cos(-omega * t);
  const double s = std::sin(-omega * t);
  const double dx = x - cx;
  const double dy = y - cy;
  const double xr = cx + c * dx - s * dy;
  const double yr = cy + s * dx + c * dy;
  const double px = xr - (cx + r0);
  const double py = yr - cy;
  return amplitude * std::exp(-(px * px + py * py) / (sigma * sigma));
}

RotatingConeSystem::RotatingConeSystem(grid::Grid2D grid, RotatingConeProblem problem)
    : grid_(grid), problem_(problem) {
  assemble();
}

void RotatingConeSystem::assemble() {
  const std::size_t nx = grid_.interior_x();
  const std::size_t ny = grid_.interior_y();
  const double hx = grid_.hx();
  const double hy = grid_.hy();

  linalg::CsrBuilder builder(nx * ny, nx * ny);
  for (std::size_t j = 1; j <= ny; ++j) {
    for (std::size_t i = 1; i <= nx; ++i) {
      const std::size_t row = grid_.interior_index(i, j);
      const double ax = problem_.velocity_x(grid_.x(i), grid_.y(j));
      const double ay = problem_.velocity_y(grid_.x(i), grid_.y(j));
      // Per-node upwind weights (the velocity varies over the grid).
      const double axp = ax > 0.0 ? ax : 0.0, axm = ax < 0.0 ? -ax : 0.0;
      const double ayp = ay > 0.0 ? ay : 0.0, aym = ay < 0.0 ? -ay : 0.0;
      const double wW = axp / hx, wE = axm / hx, wS = ayp / hy, wN = aym / hy;
      const double wC = -(axp + axm) / hx - (ayp + aym) / hy;
      builder.add(row, row, wC);
      // Homogeneous Dirichlet boundary: couplings to boundary nodes vanish.
      if (i > 1) builder.add(row, grid_.interior_index(i - 1, j), wW);
      if (i < nx) builder.add(row, grid_.interior_index(i + 1, j), wE);
      if (j > 1) builder.add(row, grid_.interior_index(i, j - 1), wS);
      if (j < ny) builder.add(row, grid_.interior_index(i, j + 1), wN);
    }
  }
  jacobian_ = builder.build();
}

void RotatingConeSystem::rhs(double /*t*/, const ros::Vec& u, ros::Vec& f) {
  MG_REQUIRE(u.size() == dimension());
  jacobian_.multiply(u, f);
}

std::unique_ptr<ros::StageSolver> RotatingConeSystem::prepare_stage(double /*t*/,
                                                                    const ros::Vec& u,
                                                                    double gamma_h) {
  MG_REQUIRE(u.size() == dimension());
  class Solver final : public ros::StageSolver {
   public:
    explicit Solver(linalg::BandedMatrix m) : matrix_(std::move(m)) { matrix_.factorize(); }
    void solve(const ros::Vec& rhs, ros::Vec& x) override { matrix_.solve(rhs, x); }

   private:
    linalg::BandedMatrix matrix_;
  };
  linalg::CsrMatrix stage = linalg::shifted_identity(jacobian_, 1.0, -gamma_h);
  return std::make_unique<Solver>(linalg::BandedMatrix::from_csr(stage, grid_.interior_x()));
}

grid::Field RotatingConeSystem::expand(const ros::Vec& u) const {
  MG_REQUIRE(u.size() == dimension());
  grid::Field field(grid_, 0.0);
  for (std::size_t j = 1; j <= grid_.interior_y(); ++j) {
    for (std::size_t i = 1; i <= grid_.interior_x(); ++i) {
      field.at(i, j) = u[grid_.interior_index(i, j)];
    }
  }
  return field;
}

ros::Vec RotatingConeSystem::restrict_interior(const grid::Field& field) const {
  MG_REQUIRE(field.grid() == grid_);
  ros::Vec u(dimension());
  for (std::size_t j = 1; j <= grid_.interior_y(); ++j) {
    for (std::size_t i = 1; i <= grid_.interior_x(); ++i) {
      u[grid_.interior_index(i, j)] = field.at(i, j);
    }
  }
  return u;
}

RotatingRunResult solve_rotating_cone(const grid::Grid2D& g, const RotatingConeProblem& problem,
                                      double tol, double t1) {
  RotatingConeSystem system(g, problem);
  grid::Field init(g);
  init.sample([&](double x, double y) { return problem.initial(x, y); });
  ros::Vec u = system.restrict_interior(init);

  ros::Ros2Options opts;
  opts.tol = tol;
  opts.t1 = t1;
  const ros::Ros2Stats stats = ros::integrate(system, u, opts);

  grid::Field solution = system.expand(u);
  const double err =
      solution.max_error([&](double x, double y) { return problem.exact(x, y, t1); });
  return {std::move(solution), stats, err};
}

}  // namespace mg::transport
