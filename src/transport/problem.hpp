// The model problem of the paper's application: a time-dependent
// advection–diffusion ("transport") equation on the unit square,
//
//   u_t + a . grad(u) = eps * laplace(u),        (x,y) in (0,1)^2,
//
// with Dirichlet boundary data.  We use a constant velocity field and a
// Gaussian pulse, for which the free-space solution is known in closed form;
// boundary values are taken from that exact solution, so every discrete
// solution can be verified against it (the original CWI code's concrete
// problem is not published — DESIGN.md records this substitution).
#pragma once

#include <string>

namespace mg::transport {

struct TransportProblem {
  double ax = 0.8;        ///< advection velocity, x component
  double ay = 0.4;        ///< advection velocity, y component
  double eps = 0.02;      ///< diffusion coefficient (> 0)
  double x0 = 0.3;        ///< initial pulse centre, x
  double y0 = 0.3;        ///< initial pulse centre, y
  double sigma = 0.12;    ///< initial pulse width
  double amplitude = 1.0;

  /// Exact solution: advected, diffusing Gaussian.
  double exact(double x, double y, double t) const;

  /// Initial condition u(x, y, 0).
  double initial(double x, double y) const { return exact(x, y, 0.0); }

  /// Cell Peclet number a*h/eps for mesh width h (stability diagnostics).
  double cell_peclet(double h) const;

  std::string describe() const;
};

/// Spatial discretisation of the advective term.
enum class AdvectionScheme {
  Upwind1,          ///< first-order upwind: monotone, diffusive
  Central2,         ///< second-order central: accurate, needs modest cell Peclet
  ThirdOrderKoren,  ///< kappa=1/3 upwind-biased with the Koren limiter
                    ///< (nonlinear; stage matrix uses the upwind Jacobian)
};

const char* to_string(AdvectionScheme s);

}  // namespace mg::transport
