#include "transport/problem.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace mg::transport {

double TransportProblem::exact(double x, double y, double t) const {
  // Solution of u_t + a.grad u = eps lap u with u(.,0) = A exp(-r^2/sigma^2):
  // the pulse centre advects with velocity a while the squared width grows as
  // sigma^2 + 4 eps t and the amplitude decays by sigma^2/(sigma^2 + 4 eps t).
  const double s2 = sigma * sigma + 4.0 * eps * t;
  const double dx = x - x0 - ax * t;
  const double dy = y - y0 - ay * t;
  return amplitude * (sigma * sigma / s2) * std::exp(-(dx * dx + dy * dy) / s2);
}

double TransportProblem::cell_peclet(double h) const {
  const double a = std::max(std::abs(ax), std::abs(ay));
  return eps > 0.0 ? a * h / eps : std::numeric_limits<double>::infinity();
}

std::string TransportProblem::describe() const {
  std::ostringstream os;
  os << "advection-diffusion: a=(" << ax << "," << ay << "), eps=" << eps << ", pulse(x0=" << x0
     << ",y0=" << y0 << ",sigma=" << sigma << ",A=" << amplitude << ")";
  return os.str();
}

const char* to_string(AdvectionScheme s) {
  switch (s) {
    case AdvectionScheme::Upwind1: return "upwind1";
    case AdvectionScheme::Central2: return "central2";
    case AdvectionScheme::ThirdOrderKoren: return "koren3";
  }
  return "?";
}

}  // namespace mg::transport
