// Semi-discretisation of the transport problem on one Grid2D, exposed as an
// OdeSystem for ROS2.
//
// Unknowns are the interior nodes in lexicographic order.  The problem is
// linear, F(t, u) = J u + g(t), where J is the (constant) 5-point stencil
// operator and g(t) carries the time-dependent Dirichlet boundary data.  The
// stage matrix (I - gamma*h*J) is assembled and factorised anew for every
// step — deliberately mirroring the cost profile the paper describes ("this
// A matrix must be built up in the program which takes a lot of time").
#pragma once

#include <memory>
#include <vector>

#include "grid/field.hpp"
#include "grid/grid2d.hpp"
#include "linalg/banded.hpp"
#include "linalg/bicgstab.hpp"
#include "linalg/csr.hpp"
#include "rosenbrock/ode_system.hpp"
#include "transport/problem.hpp"

namespace mg::transport {

/// How the Rosenbrock stage systems are solved.
enum class StageSolverKind {
  BandedLU,       ///< direct band factorisation (default; deterministic)
  BiCgStabIlu0,   ///< Krylov with ILU(0)
  BiCgStabJacobi, ///< Krylov with diagonal preconditioning
};

const char* to_string(StageSolverKind k);

struct SystemOptions {
  AdvectionScheme scheme = AdvectionScheme::Central2;
  StageSolverKind solver = StageSolverKind::BandedLU;
  linalg::SolveOptions krylov;  ///< used by the BiCGSTAB variants
};

class TransportSystem final : public ros::OdeSystem {
 public:
  TransportSystem(grid::Grid2D grid, TransportProblem problem, SystemOptions options = {});

  std::size_t dimension() const override { return grid_.interior_count(); }
  void rhs(double t, const ros::Vec& u, ros::Vec& f) override;
  std::unique_ptr<ros::StageSolver> prepare_stage(double t, const ros::Vec& u,
                                                  double gamma_h) override;

  const grid::Grid2D& grid() const { return grid_; }
  const linalg::CsrMatrix& jacobian() const { return jacobian_; }

  /// Packs a nodal field's interior values into an unknown vector.
  ros::Vec restrict_interior(const grid::Field& field) const;

  /// Expands an unknown vector to a full nodal field, filling boundary nodes
  /// with the exact Dirichlet data at time t.
  grid::Field expand(const ros::Vec& u, double t) const;

 private:
  void assemble();

  struct BoundaryCoupling {
    std::size_t row;     ///< interior unknown index
    double coefficient;  ///< stencil weight
    double bx, by;       ///< boundary node coordinates
  };

  grid::Grid2D grid_;
  TransportProblem problem_;
  SystemOptions options_;
  linalg::CsrMatrix jacobian_;
  std::vector<BoundaryCoupling> boundary_couplings_;
  std::vector<double> nodal_scratch_;  ///< work array for the limited scheme
};

}  // namespace mg::transport
