// Semi-discretisation of the transport problem on one Grid2D, exposed as an
// OdeSystem for ROS2.
//
// Unknowns are the interior nodes in lexicographic order.  The problem is
// linear, F(t, u) = J u + g(t), where J is the (constant) 5-point stencil
// operator and g(t) carries the time-dependent Dirichlet boundary data.  The
// stage matrix (I - gamma*h*J) shares the Jacobian's sparsity at every step,
// so by default prepare_stage only refreshes values in place when gamma*h
// changes and reuses the factorisation outright when it does not — the "A
// matrix must be built up in the program which takes a lot of time" cost the
// paper describes survives as the cache_stage=false reference path.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "grid/field.hpp"
#include "grid/grid2d.hpp"
#include "linalg/banded.hpp"
#include "linalg/bicgstab.hpp"
#include "linalg/csr.hpp"
#include "linalg/kernels.hpp"
#include "linalg/parallel.hpp"
#include "rosenbrock/ode_system.hpp"
#include "transport/problem.hpp"

namespace mg::transport {

/// How the Rosenbrock stage systems are solved.
enum class StageSolverKind {
  BandedLU,       ///< direct band factorisation (default; deterministic)
  BiCgStabIlu0,   ///< Krylov with ILU(0)
  BiCgStabJacobi, ///< Krylov with diagonal preconditioning
};

const char* to_string(StageSolverKind k);

struct SystemOptions {
  AdvectionScheme scheme = AdvectionScheme::Central2;
  StageSolverKind solver = StageSolverKind::BandedLU;
  linalg::SolveOptions krylov;  ///< used by the BiCGSTAB variants
  /// Cache the stage matrix and its factorisation/preconditioner across
  /// steps: values are refreshed in place when gamma*h changes and reused
  /// outright when it does not.  Bit-identical to rebuilding every step
  /// (DESIGN.md §9); off = the seed's rebuild-every-step reference path.
  bool cache_stage = true;
  /// Seed Krylov stage solves from the caller's x (the previous stage's
  /// solution under ROS2) instead of zero.  Changes iteration counts, never
  /// the convergence tolerance; no effect on the direct (banded) solver.
  bool warm_start = true;
  /// Kernel policy for the linalg hot paths (DESIGN.md §14): Scalar runs the
  /// seed code byte-for-byte, Tiled the SIMD/interleaved kernels.  Results
  /// are bitwise identical either way — this is a pure performance knob.
  linalg::KernelPolicy kernel_policy = linalg::KernelPolicy::Scalar;
  /// Within-grid parallelism: size of the inner worker team that one solve
  /// spans (row-partitioned SpMV, fused triads, wavefront preconditioner
  /// sweeps).  1 = no team.  Any size yields bit-identical results; helper
  /// threads beyond the host's capacity are elided, not queued.
  std::uint32_t inner_threads = 1;
};

/// Hit/miss/refresh ledger of one TransportSystem's stage cache.  A miss is
/// the first build, a refresh an in-place value update + refactorisation
/// after gamma*h changed, a hit an outright reuse of the factors.
struct StageCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t refreshes = 0;
};

class TransportSystem final : public ros::OdeSystem {
 public:
  TransportSystem(grid::Grid2D grid, TransportProblem problem, SystemOptions options = {});

  std::size_t dimension() const override { return grid_.interior_count(); }
  void rhs(double t, const ros::Vec& u, ros::Vec& f) override;
  std::unique_ptr<ros::StageSolver> prepare_stage(double t, const ros::Vec& u,
                                                  double gamma_h) override;

  const grid::Grid2D& grid() const { return grid_; }
  const linalg::CsrMatrix& jacobian() const { return jacobian_; }
  const StageCacheStats& stage_cache_stats() const { return cache_stats_; }

  /// Kernel context built from kernel_policy/inner_threads; the team pointer
  /// stays valid for this system's lifetime.
  linalg::KernelContext kernel_context() const {
    return {options_.kernel_policy, inner_team_.get()};
  }

  /// Packs a nodal field's interior values into an unknown vector.
  ros::Vec restrict_interior(const grid::Field& field) const;

  /// Expands an unknown vector to a full nodal field, filling boundary nodes
  /// with the exact Dirichlet data at time t.
  grid::Field expand(const ros::Vec& u, double t) const;

 private:
  void assemble();

  struct BoundaryCoupling {
    std::size_t row;     ///< interior unknown index
    double coefficient;  ///< stencil weight
    double bx, by;       ///< boundary node coordinates
  };

  std::unique_ptr<ros::StageSolver> rebuild_stage(double gamma_h);

  grid::Grid2D grid_;
  TransportProblem problem_;
  SystemOptions options_;
  /// Inner worker team (inner_threads > 1); declared before cached_solver_
  /// so any solver still holding the context is destroyed first.
  std::unique_ptr<linalg::ParallelContext> inner_team_;
  linalg::CsrMatrix jacobian_;
  std::vector<BoundaryCoupling> boundary_couplings_;
  std::vector<double> nodal_scratch_;  ///< work array for the limited scheme

  // Stage cache (cache_stage == true): the Jacobian is time-independent, so
  // the stage matrix (I - gamma*h*J) shares its sparsity across all steps;
  // only values depend on gamma*h.  diag_offset_ maps rows to the value
  // index of their diagonal so the shift is applied in place.
  std::vector<std::size_t> diag_offset_;
  std::shared_ptr<ros::StageSolver> cached_solver_;
  double cached_gamma_h_ = 0.0;
  bool cache_valid_ = false;
  StageCacheStats cache_stats_;
};

}  // namespace mg::transport
