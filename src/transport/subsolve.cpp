#include "transport/subsolve.hpp"

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace mg::transport {

namespace {
struct SubsolveMetrics {
  obs::Counter& calls = obs::registry().counter("transport.subsolve_calls");
  obs::Counter& steps_accepted = obs::registry().counter("transport.steps_accepted");
  obs::Counter& steps_rejected = obs::registry().counter("transport.steps_rejected");
  obs::Counter& stage_solves = obs::registry().counter("transport.stage_solves");
  obs::Histogram& seconds = obs::registry().histogram("transport.subsolve_seconds");
};

SubsolveMetrics& subsolve_metrics() {
  static SubsolveMetrics m;
  return m;
}
}  // namespace

SubsolveResult subsolve(const grid::Grid2D& g, const SubsolveConfig& config) {
  MG_REQUIRE(config.t1 > config.t0);
  const std::string grid_name = g.name();
  const obs::ScopedSpan span(&obs::tracer(), grid_name.c_str(), "transport", "subsolve");
  support::Stopwatch sw;

  TransportSystem system(g, config.problem, config.system);

  // Initial condition at t0.
  grid::Field init(g);
  init.sample([&](double x, double y) { return config.problem.exact(x, y, config.t0); });
  ros::Vec u = system.restrict_interior(init);

  ros::Ros2Options opts;
  opts.tol = config.le_tol;
  opts.t0 = config.t0;
  opts.t1 = config.t1;
  opts.warm_start = config.system.warm_start;

  ros::Ros2Stats stats = ros::integrate(system, u, opts);

  SubsolveResult result{system.expand(u, config.t1), stats, sw.elapsed_seconds()};
  SubsolveMetrics& metrics = subsolve_metrics();
  metrics.calls.add();
  metrics.steps_accepted.add(stats.accepted);
  metrics.steps_rejected.add(stats.rejected);
  metrics.stage_solves.add(stats.stage_solves);
  metrics.seconds.observe(result.elapsed_seconds);
  return result;
}

std::size_t subsolve_payload_bytes(const grid::Grid2D& g) {
  // One double per node plus a small fixed header of grid/problem parameters.
  return g.node_count() * sizeof(double) + 128;
}

}  // namespace mg::transport
