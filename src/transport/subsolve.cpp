#include "transport/subsolve.hpp"

#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace mg::transport {

SubsolveResult subsolve(const grid::Grid2D& g, const SubsolveConfig& config) {
  MG_REQUIRE(config.t1 > config.t0);
  support::Stopwatch sw;

  TransportSystem system(g, config.problem, config.system);

  // Initial condition at t0.
  grid::Field init(g);
  init.sample([&](double x, double y) { return config.problem.exact(x, y, config.t0); });
  ros::Vec u = system.restrict_interior(init);

  ros::Ros2Options opts;
  opts.tol = config.le_tol;
  opts.t0 = config.t0;
  opts.t1 = config.t1;

  ros::Ros2Stats stats = ros::integrate(system, u, opts);

  SubsolveResult result{system.expand(u, config.t1), stats, sw.elapsed_seconds()};
  return result;
}

std::size_t subsolve_payload_bytes(const grid::Grid2D& g) {
  // One double per node plus a small fixed header of grid/problem parameters.
  return g.node_count() * sizeof(double) + 128;
}

}  // namespace mg::transport
