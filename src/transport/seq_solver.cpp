#include "transport/seq_solver.hpp"

#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace mg::transport {

GlobalData::GlobalData(int root, int level)
    : terms(grid::combination_terms(root, level)), solutions(terms.size()) {}

void GlobalData::store(std::size_t index, grid::Field field) {
  MG_REQUIRE(index < terms.size());
  MG_REQUIRE(field.grid() == terms[index].grid);
  solutions[index] = std::move(field);
}

bool GlobalData::complete() const {
  for (const auto& s : solutions) {
    if (!s.has_value()) return false;
  }
  return true;
}

std::size_t SolveResult::total_accepted_steps() const {
  std::size_t n = 0;
  for (const auto& r : records) n += r.stats.accepted;
  return n;
}

std::size_t SolveResult::total_stage_solves() const {
  std::size_t n = 0;
  for (const auto& r : records) n += r.stats.stage_solves;
  return n;
}

SolveResult solve_sequential(const ProgramConfig& config) {
  MG_REQUIRE(config.level >= 0);
  support::Stopwatch total;

  // "Initialization data structure and some initial computations" (§3 l.20).
  support::Stopwatch phase;
  GlobalData data(config.root, config.level);
  const SubsolveConfig kernel = config.kernel_config();
  const double init_seconds = phase.elapsed_seconds();

  // "The heavy computational work": the nested loop over lm and l (§3
  // l.22-27).  GlobalData.terms is laid out in exactly this visit order.
  phase.reset();
  std::vector<GridRunRecord> records;
  records.reserve(data.terms.size());
  for (std::size_t k = 0; k < data.terms.size(); ++k) {
    const auto& term = data.terms[k];
    SubsolveResult r = subsolve(term.grid, kernel);
    records.push_back({term.grid, term.coefficient, r.stats, r.elapsed_seconds});
    data.store(k, std::move(r.solution));
  }
  const double subsolve_seconds = phase.elapsed_seconds();

  // "Prolongation work" (§3 l.29): combine onto the finest grid.
  phase.reset();
  MG_ASSERT(data.complete());
  std::vector<grid::Field> components;
  components.reserve(data.solutions.size());
  for (auto& s : data.solutions) components.push_back(std::move(*s));
  grid::Field combined =
      grid::combine(data.terms, components, grid::finest_grid(config.root, config.level));
  const double prolongation_seconds = phase.elapsed_seconds();

  SolveResult result{std::move(combined), std::move(records), init_seconds, subsolve_seconds,
                     prolongation_seconds, total.elapsed_seconds()};
  return result;
}

}  // namespace mg::transport
