// Nodal scalar field on a Grid2D — the per-grid slice of the paper's "huge
// global data structure".
#pragma once

#include <functional>
#include <vector>

#include "grid/grid2d.hpp"

namespace mg::grid {

class Field {
 public:
  explicit Field(Grid2D grid, double value = 0.0);

  const Grid2D& grid() const { return grid_; }

  double& at(std::size_t i, std::size_t j) { return data_[grid_.node_index(i, j)]; }
  double at(std::size_t i, std::size_t j) const { return data_[grid_.node_index(i, j)]; }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }
  std::size_t size() const { return data_.size(); }

  /// Samples f(x, y) at every node.
  void sample(const std::function<double(double, double)>& f);

  /// this += alpha * other; grids must be identical.
  void add_scaled(double alpha, const Field& other);

  /// Max-norm of the difference with another field on the same grid.
  double max_diff(const Field& other) const;

  /// Max-norm of the difference with a continuous function sampled at nodes.
  double max_error(const std::function<double(double, double)>& f) const;

  /// L2 (grid-weighted) norm of the difference with a continuous function.
  double l2_error(const std::function<double(double, double)>& f) const;

 private:
  Grid2D grid_;
  std::vector<double> data_;
};

}  // namespace mg::grid
