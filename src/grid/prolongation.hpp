// Bilinear prolongation between nested anisotropic grids.
//
// The combination technique's "Prolongation work" (paper §3, line 29):
// every component solution is interpolated onto the finest grid before the
// weighted combination.  Coarse vertices are a subset of fine vertices, so
// the interpolation is exact for bilinear functions (tested as a property).
#pragma once

#include "grid/field.hpp"

namespace mg::grid {

/// Interpolates `coarse` onto `fine_grid`.  Requires the same root and
/// fine_grid.lx >= coarse.lx, fine_grid.ly >= coarse.ly.
Field prolongate(const Field& coarse, const Grid2D& fine_grid);

}  // namespace mg::grid
