// The sparse-grid combination technique (Griebel/Schneider/Zenger) as used
// by the paper's application.
//
// The paper's nested loop
//     for (lm = level-1; lm <= level; lm++)
//       for (l = 0; l <= lm; l++)
//         subsolve(l, lm - l);
// visits the two diagonal grid families {(l, lm-l)} for lm = level-1 and
// lm = level.  The combined solution on the finest grid (level, level) is
//     u_hat = sum_{l+m = level} P u_{l,m}  -  sum_{l+m = level-1} P u_{l,m},
// where P is bilinear prolongation.  For level = 0 the lower family is empty
// (the paper's loop body never executes for lm = -1) and u_hat = u_{0,0}.
//
// Total number of component grids = 2*level + 1, which is exactly the
// paper's worker count w = 2l + 1 (§7).
#pragma once

#include <vector>

#include "grid/field.hpp"
#include "grid/prolongation.hpp"

namespace mg::grid {

/// One component grid in the combination with its coefficient (+1 or -1).
struct CombinationTerm {
  Grid2D grid;
  double coefficient;
  int family;  ///< the lm value this grid belongs to (level or level-1)
};

/// Enumerates the grids of family lm: (0, lm), (1, lm-1), ..., (lm, 0).
/// Empty for lm < 0 (matches the paper's loop for level = 0).
std::vector<Grid2D> family_grids(int root, int lm);

/// All 2*level+1 combination terms for the given target level, in the
/// paper's visit order (lm = level-1 family first, then lm = level).
std::vector<CombinationTerm> combination_terms(int root, int level);

/// The target (finest) grid of the combination: (level, level).
Grid2D finest_grid(int root, int level);

/// Prolongates every component field onto the finest grid and accumulates
/// with the matching coefficients.  `components[k]` must live on
/// `terms[k].grid`.
Field combine(const std::vector<CombinationTerm>& terms, const std::vector<Field>& components,
              const Grid2D& fine);

/// Number of component grids for a level (= paper's worker count 2*level+1).
std::size_t component_count(int level);

}  // namespace mg::grid
