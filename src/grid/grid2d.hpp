// Anisotropic structured grids for the sparse-grid combination technique.
//
// A grid is identified by two refinement exponents (lx, ly) above a common
// root level (the paper's `root`, the "refinement level of the coarsest
// grid"; the authors used root = 2).  Grid (lx, ly) covers the unit square
// with 2^(root+lx) cells in x and 2^(root+ly) cells in y; fields live on the
// (nx+1) x (ny+1) vertices.  `subsolve(l, m)` in the paper operates on grid
// (l, m) in exactly this sense.
#pragma once

#include <cstddef>
#include <string>

namespace mg::grid {

class Grid2D {
 public:
  /// root >= 0, lx >= 0, ly >= 0; cells_x = 2^(root+lx), cells_y = 2^(root+ly).
  Grid2D(int root, int lx, int ly);

  int root() const { return root_; }
  int lx() const { return lx_; }
  int ly() const { return ly_; }

  std::size_t cells_x() const { return cells_x_; }
  std::size_t cells_y() const { return cells_y_; }
  std::size_t nodes_x() const { return cells_x_ + 1; }
  std::size_t nodes_y() const { return cells_y_ + 1; }
  std::size_t node_count() const { return nodes_x() * nodes_y(); }
  std::size_t interior_x() const { return cells_x_ - 1; }
  std::size_t interior_y() const { return cells_y_ - 1; }
  std::size_t interior_count() const { return interior_x() * interior_y(); }

  double hx() const { return 1.0 / static_cast<double>(cells_x_); }
  double hy() const { return 1.0 / static_cast<double>(cells_y_); }

  double x(std::size_t i) const { return static_cast<double>(i) * hx(); }
  double y(std::size_t j) const { return static_cast<double>(j) * hy(); }

  /// Lexicographic node index (x fastest).
  std::size_t node_index(std::size_t i, std::size_t j) const;

  /// Lexicographic index of interior node (i, j) with 1 <= i <= cells_x-1.
  std::size_t interior_index(std::size_t i, std::size_t j) const;

  bool is_boundary(std::size_t i, std::size_t j) const;

  bool operator==(const Grid2D& other) const {
    return root_ == other.root_ && lx_ == other.lx_ && ly_ == other.ly_;
  }

  std::string name() const;  ///< e.g. "G(2;3,1)"

 private:
  int root_;
  int lx_;
  int ly_;
  std::size_t cells_x_;
  std::size_t cells_y_;
};

}  // namespace mg::grid
