#include "grid/grid2d.hpp"

#include "support/check.hpp"

namespace mg::grid {

namespace {
std::size_t pow2(int e) {
  MG_REQUIRE(e >= 0 && e < 40);
  return std::size_t{1} << e;
}
}  // namespace

Grid2D::Grid2D(int root, int lx, int ly)
    : root_(root), lx_(lx), ly_(ly), cells_x_(pow2(root + lx)), cells_y_(pow2(root + ly)) {
  MG_REQUIRE(root >= 0);
  MG_REQUIRE(lx >= 0 && ly >= 0);
  MG_REQUIRE_MSG(cells_x_ >= 2 && cells_y_ >= 2, "grid must have interior nodes (root >= 1)");
}

std::size_t Grid2D::node_index(std::size_t i, std::size_t j) const {
  MG_REQUIRE(i < nodes_x() && j < nodes_y());
  return j * nodes_x() + i;
}

std::size_t Grid2D::interior_index(std::size_t i, std::size_t j) const {
  MG_REQUIRE(i >= 1 && i <= interior_x() && j >= 1 && j <= interior_y());
  return (j - 1) * interior_x() + (i - 1);
}

bool Grid2D::is_boundary(std::size_t i, std::size_t j) const {
  MG_REQUIRE(i < nodes_x() && j < nodes_y());
  return i == 0 || j == 0 || i == nodes_x() - 1 || j == nodes_y() - 1;
}

std::string Grid2D::name() const {
  return "G(" + std::to_string(root_) + ";" + std::to_string(lx_) + "," + std::to_string(ly_) + ")";
}

}  // namespace mg::grid
