#include "grid/prolongation.hpp"

#include "support/check.hpp"

namespace mg::grid {

Field prolongate(const Field& coarse, const Grid2D& fine_grid) {
  const Grid2D& cg = coarse.grid();
  MG_REQUIRE(cg.root() == fine_grid.root());
  MG_REQUIRE(fine_grid.lx() >= cg.lx() && fine_grid.ly() >= cg.ly());

  const std::size_t rx = std::size_t{1} << (fine_grid.lx() - cg.lx());
  const std::size_t ry = std::size_t{1} << (fine_grid.ly() - cg.ly());

  Field fine(fine_grid);
  for (std::size_t j = 0; j < fine_grid.nodes_y(); ++j) {
    // Coarse cell containing fine row j and the vertical interpolation weight.
    const std::size_t jc = std::min(j / ry, cg.nodes_y() - 2);
    const double ty = (static_cast<double>(j) - static_cast<double>(jc * ry)) / static_cast<double>(ry);
    for (std::size_t i = 0; i < fine_grid.nodes_x(); ++i) {
      const std::size_t ic = std::min(i / rx, cg.nodes_x() - 2);
      const double tx = (static_cast<double>(i) - static_cast<double>(ic * rx)) / static_cast<double>(rx);
      const double v00 = coarse.at(ic, jc);
      const double v10 = coarse.at(ic + 1, jc);
      const double v01 = coarse.at(ic, jc + 1);
      const double v11 = coarse.at(ic + 1, jc + 1);
      fine.at(i, j) = (1.0 - tx) * (1.0 - ty) * v00 + tx * (1.0 - ty) * v10 +
                      (1.0 - tx) * ty * v01 + tx * ty * v11;
    }
  }
  return fine;
}

}  // namespace mg::grid
