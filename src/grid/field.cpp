#include "grid/field.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace mg::grid {

Field::Field(Grid2D grid, double value) : grid_(grid), data_(grid.node_count(), value) {}

void Field::sample(const std::function<double(double, double)>& f) {
  for (std::size_t j = 0; j < grid_.nodes_y(); ++j) {
    for (std::size_t i = 0; i < grid_.nodes_x(); ++i) {
      data_[grid_.node_index(i, j)] = f(grid_.x(i), grid_.y(j));
    }
  }
}

void Field::add_scaled(double alpha, const Field& other) {
  MG_REQUIRE(grid_ == other.grid_);
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] += alpha * other.data_[k];
}

double Field::max_diff(const Field& other) const {
  MG_REQUIRE(grid_ == other.grid_);
  double m = 0.0;
  for (std::size_t k = 0; k < data_.size(); ++k) m = std::max(m, std::abs(data_[k] - other.data_[k]));
  return m;
}

double Field::max_error(const std::function<double(double, double)>& f) const {
  double m = 0.0;
  for (std::size_t j = 0; j < grid_.nodes_y(); ++j) {
    for (std::size_t i = 0; i < grid_.nodes_x(); ++i) {
      m = std::max(m, std::abs(data_[grid_.node_index(i, j)] - f(grid_.x(i), grid_.y(j))));
    }
  }
  return m;
}

double Field::l2_error(const std::function<double(double, double)>& f) const {
  double s = 0.0;
  for (std::size_t j = 0; j < grid_.nodes_y(); ++j) {
    for (std::size_t i = 0; i < grid_.nodes_x(); ++i) {
      const double d = data_[grid_.node_index(i, j)] - f(grid_.x(i), grid_.y(j));
      s += d * d;
    }
  }
  return std::sqrt(s * grid_.hx() * grid_.hy());
}

}  // namespace mg::grid
