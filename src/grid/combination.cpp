#include "grid/combination.hpp"

#include "support/check.hpp"

namespace mg::grid {

std::vector<Grid2D> family_grids(int root, int lm) {
  std::vector<Grid2D> grids;
  if (lm < 0) return grids;
  grids.reserve(static_cast<std::size_t>(lm) + 1);
  for (int l = 0; l <= lm; ++l) grids.emplace_back(root, l, lm - l);
  return grids;
}

std::vector<CombinationTerm> combination_terms(int root, int level) {
  MG_REQUIRE(level >= 0);
  std::vector<CombinationTerm> terms;
  terms.reserve(component_count(level));
  for (const Grid2D& g : family_grids(root, level - 1)) terms.push_back({g, -1.0, level - 1});
  for (const Grid2D& g : family_grids(root, level)) terms.push_back({g, +1.0, level});
  return terms;
}

Grid2D finest_grid(int root, int level) { return Grid2D(root, level, level); }

Field combine(const std::vector<CombinationTerm>& terms, const std::vector<Field>& components,
              const Grid2D& fine) {
  MG_REQUIRE(terms.size() == components.size());
  Field result(fine, 0.0);
  for (std::size_t k = 0; k < terms.size(); ++k) {
    MG_REQUIRE(components[k].grid() == terms[k].grid);
    Field p = prolongate(components[k], fine);
    result.add_scaled(terms[k].coefficient, p);
  }
  return result;
}

std::size_t component_count(int level) {
  MG_REQUIRE(level >= 0);
  return static_cast<std::size_t>(2 * level + 1);
}

}  // namespace mg::grid
