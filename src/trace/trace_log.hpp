// Chronological trace messages in the paper's §6 format:
//
//   bumpa.sen.cwi.nl 262146 140 1048087412 175834
//     mainprog Master(port in) ResSourceCode.c 136 -> Welcome
//
// "It starts with a long label ... the machine on which the task instance
// runs, the identification of the task instance, the identification of the
// process instance, a time stamp ... (seconds and microseconds past since
// midnight (0 hour), January 1, 1970), the name of the task, the name of the
// manifold, the name of the MANIFOLD source file and the line number where
// the message is produced.  With such a label in front of an actual message,
// we always know who is printing, what, where and when."
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace mg::trace {

struct TraceMessage {
  std::string host;
  std::uint64_t task_id = 0;
  std::uint64_t process_id = 0;
  std::int64_t seconds = 0;       ///< timestamp, seconds since the epoch
  std::int64_t microseconds = 0;  ///< sub-second part
  std::string task_name;
  std::string manifold_name;
  std::string source_file;
  int source_line = 0;
  std::string text;

  /// Renders the two-line paper format.
  std::string format() const;
};

/// Thread-safe collector.  Timestamps are supplied by the caller so both the
/// real-threaded runtime (wall clock) and the cluster simulator (virtual
/// clock) can produce identical-looking traces.
class TraceLog {
 public:
  void record(TraceMessage message);

  std::vector<TraceMessage> snapshot() const;
  std::size_t size() const;
  void clear();

  /// All messages, formatted and newline-joined, in record order.
  std::string render() const;

 private:
  mutable std::mutex mutex_;
  std::vector<TraceMessage> messages_;
};

}  // namespace mg::trace
