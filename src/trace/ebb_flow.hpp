// The "ebb & flow" analysis behind the paper's Figure 1: the number of
// machines in use as a function of elapsed time, derived from machine
// claim/release events, plus the time-weighted average machine count
// (Table 1's `m` column — "weighted average of numbers of machines used").
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mg::trace {

/// A machine coming into use (+1) or falling out of use (-1) at a time.
struct MachineEvent {
  double time = 0.0;
  int delta = 0;  ///< +1 claim, -1 release
};

/// Step function: machine count over [start, end].
struct EbbFlowSeries {
  std::vector<double> times;   ///< breakpoints, ascending; times[0] = start
  std::vector<int> counts;     ///< counts[i] holds on [times[i], times[i+1])
  double end_time = 0.0;

  int peak() const;
  /// Time-weighted average count over [times[0], end_time].
  double weighted_average() const;
  int count_at(double t) const;
};

/// Builds the step series from (unsorted) events; end_time caps the series.
EbbFlowSeries build_ebb_flow(std::vector<MachineEvent> events, double end_time);

/// Renders the series as an ASCII chart (time on x, machines on y) — the
/// textual stand-in for the paper's gnuplot Figure 1.
std::string render_ascii_chart(const EbbFlowSeries& series, int width = 72, int height = 16);

}  // namespace mg::trace
