#include "trace/ebb_flow.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/check.hpp"

namespace mg::trace {

int EbbFlowSeries::peak() const {
  int p = 0;
  for (int c : counts) p = std::max(p, c);
  return p;
}

double EbbFlowSeries::weighted_average() const {
  if (times.empty()) return 0.0;
  const double span = end_time - times.front();
  if (span <= 0.0) return static_cast<double>(counts.empty() ? 0 : counts.front());
  double area = 0.0;
  for (std::size_t i = 0; i < times.size(); ++i) {
    const double t1 = (i + 1 < times.size()) ? times[i + 1] : end_time;
    area += counts[i] * (t1 - times[i]);
  }
  return area / span;
}

int EbbFlowSeries::count_at(double t) const {
  if (times.empty() || t < times.front()) return 0;
  // Last breakpoint <= t.
  auto it = std::upper_bound(times.begin(), times.end(), t);
  const std::size_t idx = static_cast<std::size_t>(it - times.begin());
  return counts[idx - 1];
}

EbbFlowSeries build_ebb_flow(std::vector<MachineEvent> events, double end_time) {
  std::stable_sort(events.begin(), events.end(),
                   [](const MachineEvent& a, const MachineEvent& b) { return a.time < b.time; });
  EbbFlowSeries series;
  series.end_time = end_time;
  int count = 0;
  std::size_t i = 0;
  if (events.empty() || events.front().time > 0.0) {
    series.times.push_back(0.0);
    series.counts.push_back(0);
  }
  while (i < events.size()) {
    const double t = events[i].time;
    while (i < events.size() && events[i].time == t) {
      count += events[i].delta;
      ++i;
    }
    MG_REQUIRE_MSG(count >= 0, "machine release without matching claim");
    if (!series.times.empty() && series.times.back() == t) {
      series.counts.back() = count;
    } else {
      series.times.push_back(t);
      series.counts.push_back(count);
    }
  }
  if (!series.times.empty()) series.end_time = std::max(end_time, series.times.back());
  return series;
}

std::string render_ascii_chart(const EbbFlowSeries& series, int width, int height) {
  MG_REQUIRE(width > 8 && height > 2);
  if (series.times.empty()) return "(empty series)\n";
  const double t0 = series.times.front();
  const double t1 = series.end_time;
  const int peak = std::max(series.peak(), 1);
  std::vector<std::string> rows(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  for (int c = 0; c < width; ++c) {
    const double t = t0 + (t1 - t0) * (c + 0.5) / width;
    const int n = series.count_at(t);
    const int bar = static_cast<int>(std::lround(static_cast<double>(n) / peak * (height - 1)));
    for (int r = 0; r <= bar && n > 0; ++r) {
      rows[static_cast<std::size_t>(height - 1 - r)][static_cast<std::size_t>(c)] = '*';
    }
  }
  std::ostringstream os;
  os << "machines (peak " << peak << ") vs time [" << t0 << ", " << t1 << "] s; weighted avg "
     << series.weighted_average() << "\n";
  for (const auto& row : rows) os << '|' << row << "\n";
  os << '+' << std::string(static_cast<std::size_t>(width), '-') << "\n";
  return os.str();
}

}  // namespace mg::trace
