#include "trace/trace_log.hpp"

#include <sstream>

namespace mg::trace {

std::string TraceMessage::format() const {
  std::ostringstream os;
  os << host << " " << task_id << " " << process_id << " " << seconds << " " << microseconds
     << "\n    " << task_name << " " << manifold_name << " " << source_file << " " << source_line
     << " -> " << text;
  return os.str();
}

void TraceLog::record(TraceMessage message) {
  std::lock_guard<std::mutex> lock(mutex_);
  messages_.push_back(std::move(message));
}

std::vector<TraceMessage> TraceLog::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return messages_;
}

std::size_t TraceLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return messages_.size();
}

void TraceLog::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  messages_.clear();
}

std::string TraceLog::render() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  for (const auto& m : messages_) os << m.format() << '\n';
  return os.str();
}

}  // namespace mg::trace
