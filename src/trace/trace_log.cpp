#include "trace/trace_log.hpp"

#include <sstream>

namespace mg::trace {

std::string TraceMessage::format() const {
  std::ostringstream os;
  os << host << " " << task_id << " " << process_id << " " << seconds << " " << microseconds
     << "\n    " << task_name << " " << manifold_name << " " << source_file << " " << source_line
     << " -> " << text;
  return os.str();
}

void TraceLog::record(TraceMessage message) {
  std::lock_guard<std::mutex> lock(mutex_);
  messages_.push_back(std::move(message));
}

std::vector<TraceMessage> TraceLog::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return messages_;
}

std::size_t TraceLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return messages_.size();
}

void TraceLog::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  messages_.clear();
}

std::string TraceLog::render() const {
  // Formatting is the slow part; do it on a snapshot so recording processes
  // only contend with the copy, not with string building.
  const std::vector<TraceMessage> copy = snapshot();
  std::vector<std::string> lines;
  lines.reserve(copy.size());
  std::size_t total = 0;
  for (const auto& m : copy) {
    lines.push_back(m.format());
    total += lines.back().size() + 1;
  }
  std::string out;
  out.reserve(total);
  for (const auto& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace mg::trace
