#include "obs/json_writer.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "support/log.hpp"

namespace mg::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  // %.17g round-trips every double; prefer the shorter %.15g when it does.
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  if (std::strtod(buf, nullptr) != v) std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  needs_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  needs_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  out_ += json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  before_value();
  out_ += json;
  return *this;
}

bool write_text_file(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    support::log_error("cannot open '", path, "' for writing");
    return false;
  }
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  return static_cast<bool>(out);
}

}  // namespace mg::obs
