// Machine-readable run reports.  Every bench/example accepts --report=<path>
// and dumps one JSON document: which tool ran, its configuration, the
// derived paper quantities (st/ct/m/su, run summaries, ...), and a full
// snapshot of the metrics registry — so every performance claim in the repo
// is a reproducible artifact, not a number in a terminal scrollback.
//
// Schema (stable; tests golden-check pieces of it):
//   {
//     "tool": "<name>",
//     "schema_version": 1,
//     "config": { ... },            // tool-specific echo of its parameters
//     "derived": { ... },           // tool-specific derived quantities
//     "faults": { ... },            // optional: fault-injection/recovery ledger
//     "metrics": {
//       "counters":  { "<name>": <uint>, ... },
//       "gauges":    { "<name>": <double>, ... },
//       "histograms": { "<name>": {"bounds": [...], "buckets": [...],
//                                   "count": <uint>, "sum": <double>}, ... }
//     }
//   }
#pragma once

#include <string>

#include "obs/json_writer.hpp"
#include "obs/metrics.hpp"

namespace mg::obs {

/// Serialises a metrics snapshot as the report's "metrics" value (an object;
/// append with writer.key("metrics") first, or use RunReport below).
void metrics_to_json(JsonWriter& writer, const MetricsSnapshot& snapshot);

/// Assembles the standard report envelope around tool-specific sub-documents
/// built with JsonWriter.
class RunReport {
 public:
  explicit RunReport(std::string tool);

  /// Writers for the tool-specific sections; fill with one JSON object each.
  JsonWriter& config() { return config_; }
  JsonWriter& derived() { return derived_; }
  /// Optional "faults" section (fill with fault::fault_counters_to_json);
  /// omitted from the document when left empty, so fault-free reports are
  /// unchanged.
  JsonWriter& faults() { return faults_; }

  /// The complete report document, with `metrics` captured at call time.
  std::string json(const MetricsSnapshot& snapshot) const;

  /// json() with the process-global registry, written to `path`.
  bool write(const std::string& path) const;

 private:
  std::string tool_;
  JsonWriter config_;
  JsonWriter derived_;
  JsonWriter faults_;
};

}  // namespace mg::obs
