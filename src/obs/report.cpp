#include "obs/report.hpp"

namespace mg::obs {

void metrics_to_json(JsonWriter& w, const MetricsSnapshot& snapshot) {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, v] : snapshot.counters) w.kv(name, v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : snapshot.gauges) w.kv(name, v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : snapshot.histograms) {
    w.key(name).begin_object();
    w.key("bounds").begin_array();
    for (const double b : h.upper_bounds) w.value(b);
    w.end_array();
    w.key("buckets").begin_array();
    for (const std::uint64_t c : h.buckets) w.value(c);
    w.end_array();
    w.kv("count", h.count).kv("sum", h.sum);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

RunReport::RunReport(std::string tool) : tool_(std::move(tool)) {}

std::string RunReport::json(const MetricsSnapshot& snapshot) const {
  JsonWriter w;
  w.begin_object();
  w.kv("tool", tool_).kv("schema_version", std::int64_t{1});
  w.key("config");
  if (config_.str().empty()) {
    w.begin_object().end_object();
  } else {
    w.raw(config_.str());
  }
  w.key("derived");
  if (derived_.str().empty()) {
    w.begin_object().end_object();
  } else {
    w.raw(derived_.str());
  }
  if (!faults_.str().empty()) {
    w.key("faults");
    w.raw(faults_.str());
  }
  w.key("metrics");
  metrics_to_json(w, snapshot);
  w.end_object();
  return w.str();
}

bool RunReport::write(const std::string& path) const {
  return write_text_file(path, json(registry().snapshot()) + "\n");
}

}  // namespace mg::obs
