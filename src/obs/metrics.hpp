// Process-global metrics registry — the measurement layer the paper's whole
// evaluation methodology presumes (§7 decomposes run time into multi-user
// noise, concurrency overhead, and coordination-layer overhead, all of which
// must be *measured*).
//
// Design constraints:
//  * Hot-path writes are single relaxed atomic operations (a counter add, a
//    gauge store, one histogram bucket add).  No locks, no allocation.
//  * Instrumented code caches the metric reference once (function-local
//    static); registration takes the registry mutex, updates never do.
//  * snapshot() reads concurrently with writers — values are atomics, so a
//    snapshot is a consistent-enough point-in-time read without stopping
//    anybody (per-metric atomicity, not cross-metric).
//  * reset() zeroes values but never deregisters: cached references stay
//    valid for the life of the process.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mg::obs {

/// Monotonic event count.  add() is one relaxed fetch_add.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar with an accumulate and a high-water-mark update.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double d) { value_.fetch_add(d, std::memory_order_relaxed); }

  /// Raises the gauge to v if v is larger (high-water mark; CAS loop).
  void max_of(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur && !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket upper bounds are set at registration, an
/// implicit +inf bucket catches the rest.  observe() is a binary search plus
/// three relaxed atomic adds (bucket, count, sum).
class Histogram {
 public:
  /// `upper_bounds` must be strictly ascending; may be empty (count/sum only).
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Per-bucket counts: bucket i holds values v with bounds_[i-1] < v <=
  /// bounds_[i]; the final entry is the +inf bucket.  Sums to count().
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1 (+inf)
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default latency buckets: 1 us .. ~100 s, roughly x4 per bucket.
std::vector<double> default_latency_buckets();

struct HistogramSnapshot {
  std::vector<double> upper_bounds;       ///< finite bounds; +inf implicit
  std::vector<std::uint64_t> buckets;     ///< per-bucket counts, size bounds+1
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Point-in-time view of every registered metric (see Registry::snapshot).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  std::uint64_t counter_or(const std::string& name, std::uint64_t fallback = 0) const;
  double gauge_or(const std::string& name, double fallback = 0.0) const;

  /// numerator / sum(denominators) over counters; 0 when the denominator is
  /// zero.  Derived-rate helper (e.g. stage-cache hit rate = hits over
  /// hits+misses+refreshes) for reports and benches.
  double counter_ratio(const std::string& numerator,
                       std::initializer_list<std::string> denominators) const;
};

/// Name -> metric map.  Registration locks; metric updates never do.
class Registry {
 public:
  /// Returns the named metric, creating it on first use.  The reference is
  /// valid for the life of the registry (metrics are never deregistered).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> upper_bounds = {});

  MetricsSnapshot snapshot() const;

  /// Zeroes every metric's value; registrations (and cached references)
  /// survive.  For test/bench isolation.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The process-global registry all built-in instrumentation writes to.
Registry& registry();

}  // namespace mg::obs
