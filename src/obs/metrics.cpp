#include "obs/metrics.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace mg::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  MG_REQUIRE_MSG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                     std::adjacent_find(bounds_.begin(), bounds_.end()) == bounds_.end(),
                 "histogram bucket bounds must be strictly ascending");
}

void Histogram::observe(double v) {
  // Bucket i holds v <= bounds_[i] (and > bounds_[i-1]); lower_bound finds
  // the first bound >= v, values above every bound land in the +inf bucket.
  const std::size_t index =
      static_cast<std::size_t>(std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> default_latency_buckets() {
  return {1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3, 64e-3, 0.25, 1.0, 4.0, 16.0, 64.0};
}

std::uint64_t MetricsSnapshot::counter_or(const std::string& name, std::uint64_t fallback) const {
  const auto it = counters.find(name);
  return it == counters.end() ? fallback : it->second;
}

double MetricsSnapshot::gauge_or(const std::string& name, double fallback) const {
  const auto it = gauges.find(name);
  return it == gauges.end() ? fallback : it->second;
}

double MetricsSnapshot::counter_ratio(const std::string& numerator,
                                      std::initializer_list<std::string> denominators) const {
  std::uint64_t total = 0;
  for (const auto& name : denominators) total += counter_or(name);
  if (total == 0) return 0.0;
  return static_cast<double>(counter_or(numerator)) / static_cast<double>(total);
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name, std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (upper_bounds.empty()) upper_bounds = default_latency_buckets();
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>(std::move(upper_bounds)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.upper_bounds = h->upper_bounds();
    hs.buckets = h->bucket_counts();
    hs.count = h->count();
    hs.sum = h->sum();
    snap.histograms[name] = std::move(hs);
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace mg::obs
