#include "obs/telemetry.hpp"

#include <algorithm>
#include <cstring>

#include "support/bytes.hpp"

namespace mg::obs {

using support::ByteReader;
using support::ByteWriter;
using support::DecodeError;

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (static_cast<std::uint16_t>(p[1]) << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

double get_f64(const std::uint8_t* p) {
  const std::uint64_t bits = get_u64(p);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

}  // namespace

// ---------------------------------------------------------------------------
// Trace context
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> prepend_context(const TraceContext& ctx,
                                          const std::vector<std::uint8_t>& work) {
  std::vector<std::uint8_t> out;
  out.reserve(TraceContext::kWireSize + work.size());
  put_u32(out, TraceContext::kMagic);
  put_u16(out, TraceContext::kVersion);
  put_u16(out, 0);  // reserved
  put_u64(out, ctx.trace_id);
  put_u64(out, ctx.span_id);
  put_u64(out, ctx.job_id);
  put_f64(out, ctx.master_send_seconds);
  out.insert(out.end(), work.begin(), work.end());
  return out;
}

SplitWork split_context(const std::vector<std::uint8_t>& payload) {
  SplitWork split;
  if (payload.size() < 4 || get_u32(payload.data()) != TraceContext::kMagic) {
    split.work = payload;  // no context prefix: the whole payload is work
    return split;
  }
  if (payload.size() < TraceContext::kWireSize) {
    throw DecodeError("trace context: truncated prefix");
  }
  if (get_u16(payload.data() + 4) != TraceContext::kVersion) {
    throw DecodeError("trace context: unsupported version");
  }
  TraceContext ctx;
  ctx.trace_id = get_u64(payload.data() + 8);
  ctx.span_id = get_u64(payload.data() + 16);
  ctx.job_id = get_u64(payload.data() + 24);
  ctx.master_send_seconds = get_f64(payload.data() + 32);
  split.context = ctx;
  split.work.assign(payload.begin() + TraceContext::kWireSize, payload.end());
  return split;
}

// ---------------------------------------------------------------------------
// Telemetry batch
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encode_telemetry_batch(const TelemetryBatch& batch) {
  ByteWriter w;
  w.write_u64((static_cast<std::uint64_t>(TelemetryBatch::kMagic) << 16) |
              TelemetryBatch::kVersion);
  w.write_u64(batch.context.trace_id);
  w.write_u64(batch.context.span_id);
  w.write_u64(batch.context.job_id);
  w.write_f64(batch.context.master_send_seconds);
  w.write_u64(batch.worker_pid);
  w.write_f64(batch.worker_recv_seconds);
  w.write_f64(batch.worker_send_seconds);
  w.write_u64(batch.counters.size());
  for (const auto& c : batch.counters) {
    w.write_string(c.name);
    w.write_u64(c.delta);
  }
  w.write_u64(batch.histograms.size());
  for (const auto& h : batch.histograms) {
    w.write_string(h.name);
    w.write_u64(h.count);
    w.write_f64(h.sum);
  }
  w.write_u64(batch.spans.size());
  for (const auto& s : batch.spans) {
    w.write_string(s.name);
    w.write_string(s.category);
    w.write_string(s.track);
    w.write_f64(s.start);
    w.write_f64(s.end);
  }
  return w.take();
}

TelemetryBatch decode_telemetry_batch(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  const std::uint64_t tag = r.read_u64();
  if ((tag >> 16) != TelemetryBatch::kMagic) {
    throw DecodeError("telemetry batch: bad magic");
  }
  if ((tag & 0xFFFFu) != TelemetryBatch::kVersion) {
    throw DecodeError("telemetry batch: unsupported version");
  }
  TelemetryBatch batch;
  batch.context.trace_id = r.read_u64();
  batch.context.span_id = r.read_u64();
  batch.context.job_id = r.read_u64();
  batch.context.master_send_seconds = r.read_f64();
  batch.worker_pid = r.read_u64();
  batch.worker_recv_seconds = r.read_f64();
  batch.worker_send_seconds = r.read_f64();
  const std::uint64_t n_counters = r.read_u64();
  if (n_counters > bytes.size()) throw DecodeError("telemetry batch: counter count");
  batch.counters.reserve(n_counters);
  for (std::uint64_t i = 0; i < n_counters; ++i) {
    CounterDelta c;
    c.name = r.read_string();
    c.delta = r.read_u64();
    batch.counters.push_back(std::move(c));
  }
  const std::uint64_t n_hists = r.read_u64();
  if (n_hists > bytes.size()) throw DecodeError("telemetry batch: histogram count");
  batch.histograms.reserve(n_hists);
  for (std::uint64_t i = 0; i < n_hists; ++i) {
    HistogramDelta h;
    h.name = r.read_string();
    h.count = r.read_u64();
    h.sum = r.read_f64();
    batch.histograms.push_back(std::move(h));
  }
  const std::uint64_t n_spans = r.read_u64();
  if (n_spans > bytes.size()) throw DecodeError("telemetry batch: span count");
  batch.spans.reserve(n_spans);
  for (std::uint64_t i = 0; i < n_spans; ++i) {
    SpanRecord s;
    s.name = r.read_string();
    s.category = r.read_string();
    s.track = r.read_string();
    s.start = r.read_f64();
    s.end = r.read_f64();
    batch.spans.push_back(std::move(s));
  }
  if (!r.exhausted()) throw DecodeError("telemetry batch: trailing bytes");
  return batch;
}

// ---------------------------------------------------------------------------
// Result envelope
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> wrap_result(const std::vector<std::uint8_t>& telemetry,
                                      const std::vector<std::uint8_t>& result) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + telemetry.size() + result.size());
  put_u32(out, static_cast<std::uint32_t>(telemetry.size()));
  out.insert(out.end(), telemetry.begin(), telemetry.end());
  out.insert(out.end(), result.begin(), result.end());
  return out;
}

ResultEnvelope unwrap_result(const std::vector<std::uint8_t>& payload) {
  if (payload.size() < 4) throw DecodeError("result envelope: missing size prefix");
  const std::uint32_t telem_size = get_u32(payload.data());
  if (telem_size > payload.size() - 4) {
    throw DecodeError("result envelope: telemetry size exceeds payload");
  }
  ResultEnvelope env;
  env.telemetry.assign(payload.begin() + 4, payload.begin() + 4 + telem_size);
  env.result.assign(payload.begin() + 4 + telem_size, payload.end());
  return env;
}

// ---------------------------------------------------------------------------
// Clock alignment
// ---------------------------------------------------------------------------

void ClockOffsetEstimator::update(double t0, double t1, double t2, double t3) {
  const double rtt = (t3 - t0) - (t2 - t1);
  if (valid_ && !seeded_ && rtt >= rtt_) return;  // keep the tighter sample
  offset_ = ((t0 - t1) + (t3 - t2)) / 2.0;
  rtt_ = rtt;
  valid_ = true;
  seeded_ = false;
}

void ClockOffsetEstimator::seed(double tm, double tw) {
  if (valid_) return;  // never displace a two-sided sample
  offset_ = tm - tw;
  rtt_ = 0.0;
  valid_ = true;
  seeded_ = true;
}

// ---------------------------------------------------------------------------
// Worker-side capture
// ---------------------------------------------------------------------------

Registry& WorkerTelemetrySession::registry_ref() { return registry(); }
SpanTracer& WorkerTelemetrySession::tracer_ref() { return tracer(); }

void WorkerTelemetrySession::begin(Registry& registry, SpanTracer& tracer) {
  registry_ = &registry;
  tracer_ = &tracer;
  baseline_ = registry.snapshot();
  recv_seconds_ = wall_clock_seconds();
}

TelemetryBatch WorkerTelemetrySession::end(const TraceContext& context) {
  TelemetryBatch batch;
  batch.context = context;
  batch.worker_recv_seconds = recv_seconds_;

  const MetricsSnapshot now = registry_->snapshot();
  for (const auto& [name, value] : now.counters) {
    const std::uint64_t before = baseline_.counter_or(name);
    if (value > before) batch.counters.push_back({name, value - before});
  }
  for (const auto& [name, hist] : now.histograms) {
    const auto it = baseline_.histograms.find(name);
    const std::uint64_t before_count = it != baseline_.histograms.end() ? it->second.count : 0;
    const double before_sum = it != baseline_.histograms.end() ? it->second.sum : 0.0;
    if (hist.count > before_count) {
      batch.histograms.push_back({name, hist.count - before_count, hist.sum - before_sum});
    }
  }
  batch.spans = tracer_->drain();
  batch.worker_send_seconds = wall_clock_seconds();
  return batch;
}

// ---------------------------------------------------------------------------
// Master-side merge
// ---------------------------------------------------------------------------

void merge_telemetry_batch(const TelemetryBatch& batch, const ClockOffsetEstimator& offset,
                           const std::string& track, double clamp_start, double clamp_end,
                           Registry& registry, SpanTracer& tracer) {
  const std::string prefix = "worker.pid" + std::to_string(batch.worker_pid) + ".";
  for (const auto& c : batch.counters) {
    registry.counter(prefix + c.name).add(c.delta);
  }
  for (const auto& h : batch.histograms) {
    registry.counter(prefix + h.name + ".count").add(h.count);
    registry.gauge(prefix + h.name + ".sum").add(h.sum);
  }
  if (!tracer.enabled() || !offset.valid()) return;
  for (const SpanRecord& s : batch.spans) {
    SpanRecord merged = s;
    merged.track = track;
    merged.start = std::max(offset.to_master(s.start), clamp_start);
    merged.end = std::min(offset.to_master(s.end), clamp_end);
    if (merged.end < merged.start) continue;  // offset estimate too coarse
    tracer.record(std::move(merged));
  }
}

}  // namespace mg::obs
