// Cross-process telemetry — the wire-side companion to metrics.hpp/span.hpp.
//
// A forked worker process is otherwise an observability black hole: its
// counters and spans die with the child and the master's trace shows only
// opaque round-trip blobs.  This module defines the three pieces that close
// the gap:
//
//  * TraceContext — a compact trace/span/job-id context the master prepends
//    to Work payloads (versioned, magic-tagged, CRC-covered by the enclosing
//    frame) so worker-side spans parent under the master's dispatch span.
//  * TelemetryBatch — the worker's per-trip export: counter/histogram deltas
//    against its process-global registry plus completed spans on the
//    worker's own clock, piggybacked on the Result payload.
//  * ClockOffsetEstimator — an NTP-style half-RTT offset per connection so
//    worker timestamps can be re-timed onto the master's timeline.
//
// Everything here is a pure observer: solver payload bytes are carried
// verbatim, decode failures degrade to local-only metrics, and no telemetry
// decision ever changes the result a round trip delivers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace mg::obs {

// ---------------------------------------------------------------------------
// Trace context (master -> worker, prefixed to the Work payload)
// ---------------------------------------------------------------------------

struct TraceContext {
  std::uint64_t trace_id = 0;  ///< one per master endpoint / run
  std::uint64_t span_id = 0;   ///< one per dispatch (the parent span)
  std::uint64_t job_id = 0;    ///< svc job id, 0 outside the service
  double master_send_seconds = 0.0;  ///< t0 on the master's wall clock

  static constexpr std::uint32_t kMagic = 0x4D475443u;  // "MGTC" little-endian
  static constexpr std::uint16_t kVersion = 1;
  static constexpr std::size_t kWireSize = 40;
};

/// Returns context-prefix + work (the Work payload the master sends).
std::vector<std::uint8_t> prepend_context(const TraceContext& ctx,
                                          const std::vector<std::uint8_t>& work);

/// Splits a Work payload into its optional context prefix and the work
/// bytes.  A payload that does not start with the context magic is returned
/// whole (pre-telemetry master, or telemetry disabled); a payload that
/// starts with the magic but is malformed throws support::DecodeError.
struct SplitWork {
  std::optional<TraceContext> context;
  std::vector<std::uint8_t> work;
};
SplitWork split_context(const std::vector<std::uint8_t>& payload);

// ---------------------------------------------------------------------------
// Telemetry batch (worker -> master, piggybacked on the Result payload)
// ---------------------------------------------------------------------------

struct CounterDelta {
  std::string name;
  std::uint64_t delta = 0;
};

struct HistogramDelta {
  std::string name;
  std::uint64_t count = 0;  ///< observations during the trip
  double sum = 0.0;         ///< summed observed values during the trip
};

struct TelemetryBatch {
  TraceContext context;                 ///< echoed from the Work prefix
  std::uint64_t worker_pid = 0;
  double worker_recv_seconds = 0.0;     ///< t1: worker clock at Work receipt
  double worker_send_seconds = 0.0;     ///< t2: worker clock at Result send
  std::vector<CounterDelta> counters;
  std::vector<HistogramDelta> histograms;
  std::vector<SpanRecord> spans;        ///< worker-clock times

  static constexpr std::uint32_t kMagic = 0x4D475442u;  // "MGTB" little-endian
  static constexpr std::uint16_t kVersion = 1;
};

std::vector<std::uint8_t> encode_telemetry_batch(const TelemetryBatch& batch);
/// Throws support::DecodeError on truncation, bad magic/version, or trailing
/// bytes — the caller drops the batch and keeps the result (local-only
/// degradation), it never fails the trip.
TelemetryBatch decode_telemetry_batch(const std::vector<std::uint8_t>& bytes);

// ---------------------------------------------------------------------------
// Result envelope: [u32 telemetry size][telemetry blob][result bytes]
// ---------------------------------------------------------------------------
// Only used when the Work payload carried a context — both ends agree from
// the request whether the reply is enveloped, so plain payloads stay plain.

std::vector<std::uint8_t> wrap_result(const std::vector<std::uint8_t>& telemetry,
                                      const std::vector<std::uint8_t>& result);

/// Throws support::DecodeError when the size prefix exceeds the payload —
/// that is envelope (not telemetry) corruption, and fails the trip like any
/// other malformed result.
struct ResultEnvelope {
  std::vector<std::uint8_t> telemetry;  ///< may be empty
  std::vector<std::uint8_t> result;
};
ResultEnvelope unwrap_result(const std::vector<std::uint8_t>& payload);

// ---------------------------------------------------------------------------
// Clock alignment (per connection)
// ---------------------------------------------------------------------------

/// NTP-style two-sample offset estimate.  Feed every completed round trip
/// (t0 master send, t1 worker recv, t2 worker send, t3 master recv, all on
/// each process's own wall clock); the estimate with the smallest RTT wins —
/// its bound on the true offset is tightest.
class ClockOffsetEstimator {
 public:
  void update(double t0, double t1, double t2, double t3);

  /// Seed from a one-way sample (the extended Hello): worker clock `tw`
  /// observed at master clock `tm`, RTT unknown.  Only adopted before any
  /// two-sided sample arrives.
  void seed(double tm, double tw);

  bool valid() const { return valid_; }
  /// master_time ~= worker_time + offset_seconds().
  double offset_seconds() const { return offset_; }
  double rtt_seconds() const { return rtt_; }

  /// Re-times a worker-clock timestamp onto the master's timeline.
  double to_master(double worker_seconds) const { return worker_seconds + offset_; }

 private:
  bool valid_ = false;
  bool seeded_ = false;
  double offset_ = 0.0;
  double rtt_ = 0.0;
};

// ---------------------------------------------------------------------------
// Worker-side capture
// ---------------------------------------------------------------------------

/// Captures one trip's worth of telemetry on the worker: begin() snapshots
/// the process-global registry and stamps t1; end() diffs a fresh snapshot
/// against the baseline, drains the tracer's completed spans, and stamps t2.
/// Gauges are deliberately not shipped: last-write-wins values do not merge.
class WorkerTelemetrySession {
 public:
  void begin(Registry& registry = registry_ref(), SpanTracer& tracer = tracer_ref());
  TelemetryBatch end(const TraceContext& context);

 private:
  static Registry& registry_ref();
  static SpanTracer& tracer_ref();

  Registry* registry_ = nullptr;
  SpanTracer* tracer_ = nullptr;
  MetricsSnapshot baseline_;
  double recv_seconds_ = 0.0;
};

// ---------------------------------------------------------------------------
// Master-side merge
// ---------------------------------------------------------------------------

/// Folds one worker batch into the master's process-global observability:
///  * counter deltas   -> registry counter "worker.pid<PID>.<name>"
///  * histogram deltas -> counters "...<name>.count" + gauge "...<name>.sum"
///    (bucket replay is not possible through Histogram::observe)
///  * spans            -> re-timed via `offset` onto `track`, clamped into
///    [clamp_start, clamp_end] (the master's dispatch span) so they nest
///    under it on the merged timeline even when the offset estimate is off
///    by more than the gap.
/// Spans are dropped silently when the tracer is disabled; counters merge
/// regardless, so reports carry worker-tagged metrics even without a trace.
void merge_telemetry_batch(const TelemetryBatch& batch, const ClockOffsetEstimator& offset,
                           const std::string& track, double clamp_start, double clamp_end,
                           Registry& registry, SpanTracer& tracer);

}  // namespace mg::obs
