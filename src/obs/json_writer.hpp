// A minimal streaming JSON writer — no DOM, no dependencies.  Reports and
// traces are machine-readable artifacts, so output must be strict JSON:
// strings are escaped, doubles are emitted deterministically (shortest
// round-trip via %.17g with a trailing check), NaN/Inf degrade to null.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mg::obs {

/// Escapes the characters JSON requires (quote, backslash, control chars).
std::string json_escape(std::string_view s);

/// Deterministic JSON literal for a double ("null" for NaN/Inf).
std::string json_number(double v);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by exactly one value (or container).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Embeds a prebuilt JSON document as one value (caller guarantees syntax).
  JsonWriter& raw(std::string_view json);

  /// Shorthand for key(k).value(v).
  template <typename T>
  JsonWriter& kv(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  const std::string& str() const { return out_; }

 private:
  void before_value();

  std::string out_;
  std::vector<bool> needs_comma_;  // one per open container
  bool after_key_ = false;
};

/// Writes `content` to `path`; returns false (and logs) on I/O failure.
bool write_text_file(const std::string& path, std::string_view content);

}  // namespace mg::obs
