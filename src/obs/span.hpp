// Span tracing — begin/end intervals against a pluggable clock, so the real
// threaded runtime (wall clock) and the virtual-time ClusterSim share one
// format.  Spans export as Chrome trace_event JSON (load in about:tracing /
// Perfetto) and feed the flat metrics report.
//
// The paper's Figure 1 ("ebb & flow") is a projection of exactly this data:
// the number of concurrently-open compute spans over time.
//
// Overhead contract: a *disabled* tracer costs one relaxed atomic load per
// span site and performs no allocation — ScopedSpan only captures pointers
// and only materialises strings in record() when the tracer is enabled.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace mg::obs {

struct SpanRecord {
  std::string name;      ///< what happened ("compute", "rendezvous", ...)
  std::string category;  ///< subsystem ("iwim", "mw", "sim", "linalg", ...)
  std::string track;     ///< lane in the trace viewer: a thread, host, or resource
  double start = 0.0;    ///< seconds on the tracer's clock
  double end = 0.0;
  double duration() const { return end - start; }
};

class SpanTracer {
 public:
  using ClockFn = double (*)(void* state);

  /// Enables recording.  The clock is consulted by ScopedSpan; pass the wall
  /// clock of a Runtime, the virtual clock of a simulation, or nothing for
  /// spans recorded with explicit times only.
  void enable(ClockFn clock = nullptr, void* clock_state = nullptr);
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  /// Current time on the plugged clock (0 when no clock was supplied).
  double clock_now() const;

  /// Records a finished span with explicit times (the virtual-clock path).
  /// Dropped silently when disabled.
  void record(SpanRecord span);

  std::vector<SpanRecord> snapshot() const;
  std::size_t size() const;
  void clear();

  /// Atomically removes and returns all recorded spans.  Used by workers to
  /// ship completed spans per trip without double-reporting across trips.
  std::vector<SpanRecord> drain();

  /// Serialises all spans as Chrome trace_event JSON ("X" complete events,
  /// microsecond timestamps, one tid per distinct track).
  std::string chrome_trace_json() const;

 private:
  std::atomic<bool> enabled_{false};
  ClockFn clock_ = nullptr;
  void* clock_state_ = nullptr;

  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
};

/// The process-global tracer the built-in wall-clock instrumentation uses.
/// Disabled by default: all span sites are no-ops until someone enables it.
SpanTracer& tracer();

/// Enables `t` against a process-steady wall clock (seconds since the
/// clock's first use in this process).
void enable_wall_clock(SpanTracer& t);

/// Seconds on the same process-steady clock `enable_wall_clock` plugs in.
/// Usable whether or not any tracer is enabled — this is the per-process
/// timebase the cross-process clock-offset estimator samples.
double wall_clock_seconds();

/// RAII span against a tracer's clock.  When the tracer is null or disabled
/// at construction, both constructor and destructor are no-ops (and nothing
/// is allocated).  The name/category/track pointers must outlive the scope.
class ScopedSpan {
 public:
  ScopedSpan(SpanTracer* tracer, const char* name, const char* category, const char* track)
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
        name_(name), category_(category), track_(track),
        start_(tracer_ != nullptr ? tracer_->clock_now() : 0.0) {}

  ~ScopedSpan() {
    if (tracer_ == nullptr) return;
    tracer_->record({name_, category_, track_, start_, tracer_->clock_now()});
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanTracer* tracer_;
  const char* name_;
  const char* category_;
  const char* track_;
  double start_;
};

}  // namespace mg::obs
