#include "obs/span.hpp"

#include <chrono>
#include <map>

#include "obs/json_writer.hpp"

namespace mg::obs {

namespace {
double uptime_clock(void*) {
  using clock = std::chrono::steady_clock;
  static const clock::time_point t0 = clock::now();
  return std::chrono::duration<double>(clock::now() - t0).count();
}
}  // namespace

void enable_wall_clock(SpanTracer& t) { t.enable(&uptime_clock, nullptr); }

double wall_clock_seconds() { return uptime_clock(nullptr); }

void SpanTracer::enable(ClockFn clock, void* clock_state) {
  std::lock_guard<std::mutex> lock(mutex_);
  clock_ = clock;
  clock_state_ = clock_state;
  enabled_.store(true, std::memory_order_release);
}

void SpanTracer::disable() {
  // The clock pointers are deliberately left in place: a span site that
  // observed enabled just before the flag flipped may still consult the
  // clock.  The clock state must therefore outlive the last span site, not
  // merely the enabled window.
  enabled_.store(false, std::memory_order_release);
}

double SpanTracer::clock_now() const {
  // clock_ is written before enabled_ flips (release) and span sites read
  // enabled_ with acquire before calling here, so the plain read is ordered.
  return clock_ != nullptr ? clock_(clock_state_) : 0.0;
}

void SpanTracer::record(SpanRecord span) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(std::move(span));
}

std::vector<SpanRecord> SpanTracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::size_t SpanTracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

void SpanTracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
}

std::vector<SpanRecord> SpanTracer::drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRecord> out;
  out.swap(spans_);
  return out;
}

std::string SpanTracer::chrome_trace_json() const {
  const std::vector<SpanRecord> spans = snapshot();

  // One Chrome "thread" per distinct track, in first-appearance order.
  std::map<std::string, int> tids;
  std::vector<const std::string*> track_order;
  for (const auto& s : spans) {
    if (tids.emplace(s.track, static_cast<int>(tids.size()) + 1).second) {
      track_order.push_back(&s.track);
    }
  }

  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (std::size_t i = 0; i < track_order.size(); ++i) {
    w.begin_object();
    w.kv("name", "thread_name").kv("ph", "M").kv("pid", 1);
    w.kv("tid", static_cast<std::int64_t>(i + 1));
    w.key("args").begin_object().kv("name", *track_order[i]).end_object();
    w.end_object();
  }
  for (const auto& s : spans) {
    w.begin_object();
    w.kv("name", s.name).kv("cat", s.category).kv("ph", "X");
    w.kv("ts", s.start * 1e6).kv("dur", s.duration() * 1e6);
    w.kv("pid", 1).kv("tid", static_cast<std::int64_t>(tids.at(s.track)));
    w.end_object();
  }
  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.end_object();
  return w.str();
}

SpanTracer& tracer() {
  static SpanTracer instance;
  return instance;
}

}  // namespace mg::obs
