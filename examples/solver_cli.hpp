// Command-line parsing for sparse_grid_solver, extracted so tests can parse
// argv vectors without running a solve (tests include this header directly).
//
// Parsing is strict where the old inline loop was forgiving:
//  * unknown --flags are errors (previously swallowed as positionals);
//  * numeric arguments must actually be numbers;
//  * worker mode (--connect) rejects master-side flags — a worker neither
//    forks a fleet nor binds a listener, so "--connect ... --workers=8"
//    was silently ignoring the fleet the user asked for;
//  * the tcp-only flags (--workers / --listen / --net-faults) without
//    --backend=tcp are errors instead of silently doing nothing;
//  * --workers=0 (or garbage) is an error: a tcp master with zero forked
//    workers and nobody joining just hangs at the worker barrier.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>

#include "linalg/kernels.hpp"

namespace mg::examples {

/// Splits "HOST:PORT" (host may be empty to keep the loopback default).
inline bool parse_host_port(const std::string& spec, std::string& host, std::uint16_t& port) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos) return false;
  const char* digits = spec.c_str() + colon + 1;
  char* end = nullptr;
  const long p = std::strtol(digits, &end, 10);
  if (end == digits || *end != '\0' || p <= 0 || p > 65535) return false;
  if (colon > 0) host = spec.substr(0, colon);
  port = static_cast<std::uint16_t>(p);
  return true;
}

struct SolverCli {
  // Solve parameters (the paper's argv triple).
  int root = 2;
  int level = 3;
  double le_tol = 1e-3;

  // Within-grid parallelism (DESIGN.md §14).  Both knobs are pure
  // performance: results are bit-identical for any combination.
  linalg::KernelPolicy kernel_policy = linalg::KernelPolicy::Scalar;
  std::uint32_t inner_threads = 1;

  std::string report_path;
  std::string trace_path;  ///< Chrome trace_event JSON of the run's spans
  std::string fault_spec;
  std::string net_fault_spec;
  std::string churn_spec;  ///< elastic-fleet churn schedule (fleet::parse_churn_spec)
  std::string backend = "threads";

  // TCP master side.
  std::string listen_host = "127.0.0.1";
  std::uint16_t listen_port = 0;  ///< 0 = ephemeral
  std::size_t tcp_workers = 4;
  /// Per-channel transport pipeline window (DESIGN.md §15); 0 = endpoint
  /// default.  Bit-identical at any depth — only wire latency moves.
  std::uint32_t pipeline_depth = 0;

  // TCP worker side.
  bool worker_mode = false;  ///< --connect given
  std::string connect_host = "127.0.0.1";
  std::uint16_t connect_port = 0;

  bool ok = true;
  std::string error;  ///< set when !ok; usage-style one-liner
};

namespace cli_detail {

inline bool starts_with(const char* arg, const char* prefix, std::size_t n,
                        const char*& value) {
  if (std::char_traits<char>::compare(arg, prefix, n) != 0) return false;
  value = arg + n;
  return true;
}

inline bool parse_long(const char* s, long& out) {
  char* end = nullptr;
  out = std::strtol(s, &end, 10);
  return end != s && *end == '\0';
}

inline bool parse_double(const char* s, double& out) {
  char* end = nullptr;
  out = std::strtod(s, &end);
  return end != s && *end == '\0';
}

}  // namespace cli_detail

/// Parses argv (argv[0] is skipped).  On any violation the result has
/// ok=false and `error` explains which flag and why.
inline SolverCli parse_solver_cli(int argc, const char* const* argv) {
  using namespace cli_detail;
  SolverCli cli;
  bool workers_given = false;
  bool listen_given = false;
  bool backend_given = false;
  bool kernels_given = false;
  bool inner_given = false;
  bool pipeline_given = false;

  const auto fail = [&cli](const std::string& message) -> SolverCli& {
    cli.ok = false;
    if (cli.error.empty()) cli.error = message;
    return cli;
  };

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* v = nullptr;
    if (starts_with(arg, "--report=", 9, v)) {
      cli.report_path = v;
    } else if (starts_with(arg, "--trace=", 8, v)) {
      cli.trace_path = v;
    } else if (starts_with(arg, "--faults=", 9, v)) {
      cli.fault_spec = v;
    } else if (starts_with(arg, "--net-faults=", 13, v)) {
      cli.net_fault_spec = v;
    } else if (starts_with(arg, "--churn=", 8, v)) {
      cli.churn_spec = v;
    } else if (starts_with(arg, "--kernels=", 10, v)) {
      kernels_given = true;
      if (!linalg::parse_kernel_policy(v, cli.kernel_policy)) {
        return fail(std::string("bad --kernels '") + v + "' (want scalar or tiled)");
      }
    } else if (starts_with(arg, "--inner-threads=", 16, v)) {
      inner_given = true;
      long n = 0;
      if (!parse_long(v, n) || n < 1 || n > 1024) {
        return fail(std::string("bad --inner-threads '") + v + "' (want 1..1024)");
      }
      cli.inner_threads = static_cast<std::uint32_t>(n);
    } else if (starts_with(arg, "--backend=", 10, v)) {
      cli.backend = v;
      backend_given = true;
      if (cli.backend != "threads" && cli.backend != "tcp") {
        return fail("unknown --backend '" + cli.backend + "' (want threads or tcp)");
      }
    } else if (starts_with(arg, "--pipeline=", 11, v)) {
      pipeline_given = true;
      long n = 0;
      if (!parse_long(v, n) || n < 1 || n > 64) {
        return fail(std::string("bad --pipeline '") + v + "' (want 1..64)");
      }
      cli.pipeline_depth = static_cast<std::uint32_t>(n);
    } else if (starts_with(arg, "--workers=", 10, v)) {
      workers_given = true;
      long n = 0;
      if (!parse_long(v, n) || n <= 0) {
        return fail(std::string("bad --workers '") + v +
                    "' (want a positive count; a tcp master with zero workers "
                    "would hang at the worker barrier)");
      }
      cli.tcp_workers = static_cast<std::size_t>(n);
    } else if (starts_with(arg, "--listen=", 9, v)) {
      listen_given = true;
      if (!parse_host_port(v, cli.listen_host, cli.listen_port)) {
        return fail(std::string("bad --listen spec '") + v + "' (want HOST:PORT)");
      }
    } else if (starts_with(arg, "--connect=", 10, v)) {
      cli.worker_mode = true;
      if (!parse_host_port(v, cli.connect_host, cli.connect_port)) {
        return fail(std::string("bad --connect spec '") + v + "' (want HOST:PORT)");
      }
    } else if (arg[0] == '-' && arg[1] == '-') {
      return fail(std::string("unknown flag '") + arg + "'");
    } else if (positional == 0) {
      long n = 0;
      if (!parse_long(arg, n)) return fail(std::string("bad root '") + arg + "'");
      cli.root = static_cast<int>(n);
      ++positional;
    } else if (positional == 1) {
      long n = 0;
      if (!parse_long(arg, n)) return fail(std::string("bad level '") + arg + "'");
      cli.level = static_cast<int>(n);
      ++positional;
    } else if (positional == 2) {
      if (!parse_double(arg, cli.le_tol)) return fail(std::string("bad le_tol '") + arg + "'");
      ++positional;
    } else {
      return fail(std::string("unexpected extra argument '") + arg + "'");
    }
  }

  if (cli.worker_mode) {
    // A worker serves someone else's solve: every master-side flag given
    // alongside --connect would be silently dead, so all are rejected.
    if (workers_given) return fail("--connect is worker mode; --workers is master-side");
    if (listen_given) return fail("--connect is worker mode; --listen is master-side");
    if (backend_given) return fail("--connect is worker mode; --backend is master-side");
    if (!cli.net_fault_spec.empty()) {
      return fail("--connect is worker mode; --net-faults is master-side");
    }
    if (!cli.fault_spec.empty()) {
      return fail("--connect is worker mode; --faults is master-side");
    }
    if (!cli.churn_spec.empty()) {
      // Churn is a fleet-level schedule driven by the master; a lone worker
      // has no fleet to churn.
      return fail("--connect is worker mode; --churn is master-side");
    }
    if (!cli.report_path.empty()) {
      return fail("--connect is worker mode; --report is master-side");
    }
    if (!cli.trace_path.empty()) {
      // Worker spans reach the master's trace through the telemetry channel;
      // a worker-local trace file would duplicate them on the wrong timeline.
      return fail("--connect is worker mode; --trace is master-side");
    }
    if (kernels_given || inner_given) {
      // Kernel config travels with each work unit over the wire; a
      // worker-local override would be silently dead.
      return fail("--connect is worker mode; --kernels/--inner-threads are master-side");
    }
    if (pipeline_given) {
      // The pipeline window lives on the master's endpoint; workers just
      // answer whatever arrives.
      return fail("--connect is worker mode; --pipeline is master-side");
    }
  } else if (cli.backend != "tcp") {
    if (workers_given) return fail("--workers requires --backend=tcp");
    if (listen_given) return fail("--listen requires --backend=tcp");
    if (pipeline_given) return fail("--pipeline requires --backend=tcp");
    if (!cli.net_fault_spec.empty()) return fail("--net-faults requires --backend=tcp");
  }

  return cli;
}

}  // namespace mg::examples
