// The solve service as a process: a JobServer accepting solve jobs over the
// framed TCP codec, multiplexing one shared worker fleet across tenants.
//
// Usage:
//   mg_solve_server [--listen=HOST:PORT] [--lanes=N] [--workers=N]
//                   [--pipeline=N] [--max-running=N] [--max-queued=N]
//                   [--idle-timeout-ms=N] [--run-seconds=N] [--report=PATH]
//                   [--trace=PATH] [--stats-interval=N]
//
// --lanes=N       fleet width: lane threads executing job tasks (default 4).
// --workers=N     fork N TCP subsolve worker processes and route every task
//                 over the wire to them (default 0 = compute in the lanes).
// --pipeline=N    transport pipeline window per worker channel, 1..64
//                 (default 4); requires --workers.  Operator-level knob,
//                 distinct from a job's own pipeline_depth cap.
// --run-seconds=N exit after N seconds (soak harnesses); default: run until
//                 stdin closes or SIGINT/SIGTERM.
// --report=PATH   write a fleet-wide run report (svc.* metrics) on exit.
// --trace=PATH    write a Chrome trace_event JSON of the server's spans on
//                 exit; with --workers this merges the workers' subsolve
//                 spans shipped back on the telemetry channel.
// --stats-interval=N
//                 print a live ServiceStats JSON line to stdout every N
//                 seconds (the same payload `mg_solve_client --stats` gets).
//
// The line "mg_solve_server listening on PORT" goes to stdout (flushed)
// first, so scripts can scrape the ephemeral port.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>

#include "core/remote_worker.hpp"
#include "net/remote.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "solver_cli.hpp"
#include "svc/job_server.hpp"
#include "svc/stats.hpp"

namespace {

std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

bool flag_value(const char* arg, const char* name, const char*& value) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0) return false;
  value = arg + n;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mg;

  std::string listen_host = "127.0.0.1";
  std::uint16_t listen_port = 0;
  std::size_t lanes = 4;
  std::size_t workers = 0;
  long pipeline = 0;  // 0 = endpoint default
  std::size_t max_running = 4;
  std::size_t max_queued = 16;
  long idle_timeout_ms = 0;
  long run_seconds = 0;
  long stats_interval = 0;
  std::string report_path;
  std::string trace_path;

  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (flag_value(argv[i], "--listen=", v)) {
      if (!examples::parse_host_port(v, listen_host, listen_port)) {
        std::fprintf(stderr, "bad --listen spec '%s' (want HOST:PORT)\n", v);
        return 2;
      }
    } else if (flag_value(argv[i], "--lanes=", v)) {
      lanes = static_cast<std::size_t>(std::atol(v));
    } else if (flag_value(argv[i], "--workers=", v)) {
      workers = static_cast<std::size_t>(std::atol(v));
    } else if (flag_value(argv[i], "--pipeline=", v)) {
      pipeline = std::atol(v);
      if (pipeline < 1 || pipeline > 64) {
        std::fprintf(stderr, "bad --pipeline '%s' (want 1..64)\n", v);
        return 2;
      }
    } else if (flag_value(argv[i], "--max-running=", v)) {
      max_running = static_cast<std::size_t>(std::atol(v));
    } else if (flag_value(argv[i], "--max-queued=", v)) {
      max_queued = static_cast<std::size_t>(std::atol(v));
    } else if (flag_value(argv[i], "--idle-timeout-ms=", v)) {
      idle_timeout_ms = std::atol(v);
    } else if (flag_value(argv[i], "--run-seconds=", v)) {
      run_seconds = std::atol(v);
    } else if (flag_value(argv[i], "--stats-interval=", v)) {
      stats_interval = std::atol(v);
    } else if (flag_value(argv[i], "--report=", v)) {
      report_path = v;
    } else if (flag_value(argv[i], "--trace=", v)) {
      trace_path = v;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }
  if (lanes == 0) {
    std::fprintf(stderr, "--lanes must be positive\n");
    return 2;
  }
  if (pipeline > 0 && workers == 0) {
    std::fprintf(stderr, "--pipeline requires --workers (no transport to pipeline)\n");
    return 2;
  }

  // Tracing must be on before any spans fire (and before the fork, so the
  // workers inherit nothing: they enable their own tracer lazily when the
  // first trace-context-carrying work unit arrives).
  if (!trace_path.empty()) obs::enable_wall_clock(obs::tracer());

  // TCP fleet: bind the worker listener and fork while still single-threaded
  // (same discipline as the batch solver's tcp backend), then bring up the
  // endpoint and the server, both of which spawn threads.
  net::TcpListener worker_listener;
  std::vector<int> worker_pids;
  if (workers > 0) {
    worker_listener = net::TcpListener("127.0.0.1", 0);
    std::fflush(stdout);
    const std::string host = worker_listener.host();
    const std::uint16_t port = worker_listener.port();
    worker_pids = net::fork_worker_processes(workers, [&worker_listener, host, port] {
      worker_listener.close();
      return mw::run_subsolve_worker(host, port);
    });
  }

  std::unique_ptr<net::RemoteEndpoint> endpoint;
  svc::JobServerConfig config;
  config.host = listen_host;
  config.port = listen_port;
  config.engine.lanes = lanes;
  config.engine.admission.max_running = max_running;
  config.engine.admission.max_queued = max_queued;
  config.idle_timeout = std::chrono::milliseconds(idle_timeout_ms);
  if (workers > 0) {
    net::RemoteEndpointConfig ep_config;
    if (pipeline > 0) ep_config.elastic.pipeline_depth = static_cast<std::size_t>(pipeline);
    endpoint = std::make_unique<net::RemoteEndpoint>(std::move(worker_listener), ep_config);
    if (!endpoint->wait_for_workers(workers, std::chrono::milliseconds(15'000))) {
      std::fprintf(stderr, "timed out waiting for %zu tcp worker(s)\n", workers);
      return 3;
    }
    config.engine.remote = endpoint.get();
  }

  svc::JobServer server(config);
  std::printf("mg_solve_server listening on %u\n", static_cast<unsigned>(server.port()));
  std::printf("fleet: %zu lanes%s; admission: %zu running / %zu queued; idle timeout %ld ms\n",
              lanes, workers > 0 ? (" over " + std::to_string(workers) + " tcp workers").c_str() : "",
              max_running, max_queued, idle_timeout_ms);
  std::fflush(stdout);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  const auto started = std::chrono::steady_clock::now();
  auto next_stats_at = started + std::chrono::seconds(stats_interval);
  while (!g_stop) {
    const auto now = std::chrono::steady_clock::now();
    if (run_seconds > 0 && now - started >= std::chrono::seconds(run_seconds)) break;
    if (stats_interval > 0 && now >= next_stats_at) {
      next_stats_at = now + std::chrono::seconds(stats_interval);
      std::printf("%s\n", svc::service_stats_json(server.stats()).c_str());
      std::fflush(stdout);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  server.shutdown();
  if (endpoint) {
    endpoint->shutdown();
    const int worker_rc = net::wait_worker_processes(worker_pids);
    if (worker_rc != 0) std::printf("warning: tcp worker exit status %d\n", worker_rc);
  }

  const svc::EngineCounters ec = server.engine().counters();
  const svc::JobServerCounters sc = server.counters();
  std::printf("jobs: %llu submitted, %llu accepted, %llu rejected; "
              "%llu done / %llu failed / %llu cancelled\n",
              static_cast<unsigned long long>(ec.submitted),
              static_cast<unsigned long long>(ec.accepted),
              static_cast<unsigned long long>(ec.rejected),
              static_cast<unsigned long long>(ec.completed),
              static_cast<unsigned long long>(ec.failed),
              static_cast<unsigned long long>(ec.cancelled));
  std::printf("sessions: %llu opened, %llu idle-closed, %llu protocol errors, %llu pings\n",
              static_cast<unsigned long long>(sc.sessions_opened),
              static_cast<unsigned long long>(sc.idle_closed),
              static_cast<unsigned long long>(sc.protocol_errors),
              static_cast<unsigned long long>(sc.pings));

  if (!trace_path.empty()) {
    if (!obs::write_text_file(trace_path, obs::tracer().chrome_trace_json())) {
      std::fprintf(stderr, "cannot write trace to %s\n", trace_path.c_str());
      return 1;
    }
    std::printf("trace written to %s (%zu spans)\n", trace_path.c_str(), obs::tracer().size());
  }

  if (!report_path.empty()) {
    obs::RunReport report("mg_solve_server");
    report.config().begin_object();
    report.config().kv("lanes", static_cast<std::uint64_t>(lanes));
    report.config().kv("tcp_workers", static_cast<std::uint64_t>(workers));
    report.config().kv("max_running", static_cast<std::uint64_t>(max_running));
    report.config().kv("max_queued", static_cast<std::uint64_t>(max_queued));
    report.config().end_object();
    report.derived().begin_object();
    report.derived().kv("jobs_submitted", ec.submitted).kv("jobs_accepted", ec.accepted);
    report.derived().kv("jobs_rejected", ec.rejected).kv("jobs_completed", ec.completed);
    report.derived().kv("jobs_failed", ec.failed).kv("jobs_cancelled", ec.cancelled);
    report.derived().kv("tasks_executed", ec.tasks_executed);
    report.derived().kv("task_retries", ec.task_retries);
    report.derived().kv("faults_injected", ec.faults_injected);
    report.derived().kv("sessions_opened", sc.sessions_opened);
    report.derived().kv("idle_closed", sc.idle_closed);
    report.derived().kv("protocol_errors", sc.protocol_errors);
    report.derived().end_object();
    if (!report.write(report_path)) return 1;
    std::printf("report written to %s\n", report_path.c_str());
  }
  return 0;
}
