// Client CLI for the solve service: submits jobs, polls status, fetches the
// combined result — and can verify bit-identity against a local sequential
// run of the same spec (the §6 claim carried over to multi-tenancy).
//
// Usage:
//   mg_solve_client --connect=HOST:PORT [root] [level] [le_tol]
//                   [--jobs=N] [--priority=P] [--weight=W] [--tag=S]
//                   [--pipeline=N] [--faults=SPEC] [--cancel-after-ms=N] [--verify]
//                   [--report-dir=DIR] [--ping] [--timeout-ms=N]
//                   [--stats] [--stats-format=json|prom]
//
// --jobs=N            submit N jobs of this spec (tags suffixed -1..-N) and
//                     wait for all of them.
// --pipeline=N        cap how many of the job's tasks the server may have in
//                     flight at once, 1..64 (default: unlimited).  A tenant-
//                     side footprint knob; results are bit-identical.
// --cancel-after-ms=N cancel each job N ms after submission (lifecycle demo).
// --verify            run solve_sequential locally and require the service's
//                     combined nodes to be byte-identical.
// --report-dir=DIR    write each job's self-contained report to
//                     DIR/job_<id>.json.
// --ping              round-trip one Ping first and print the latency.
// --stats             fetch the server's live service stats and print them to
//                     stdout (scheduler depth, lane utilization, per-tenant
//                     queue/running detail, latency histograms).  Without a
//                     spec this is the whole run; with one, stats print after
//                     the jobs finish (so the tenant view reflects them).
// --stats-format=F    stats rendering: json (default) or prom (Prometheus
//                     text exposition).
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/json_writer.hpp"
#include "solver_cli.hpp"
#include "svc/client.hpp"
#include "svc/stats.hpp"
#include "transport/seq_solver.hpp"

namespace {

bool flag_value(const char* arg, const char* name, const char*& value) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0) return false;
  value = arg + n;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mg;

  std::string connect_host = "127.0.0.1";
  std::uint16_t connect_port = 0;
  svc::JobSpec spec;
  long jobs = 1;
  long cancel_after_ms = -1;
  long timeout_ms = 120'000;
  bool verify = false;
  bool ping = false;
  bool stats = false;
  std::string stats_format = "json";
  std::string report_dir;
  int positional = 0;

  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (flag_value(argv[i], "--connect=", v)) {
      if (!examples::parse_host_port(v, connect_host, connect_port)) {
        std::fprintf(stderr, "bad --connect spec '%s' (want HOST:PORT)\n", v);
        return 2;
      }
    } else if (flag_value(argv[i], "--jobs=", v)) {
      jobs = std::atol(v);
    } else if (flag_value(argv[i], "--priority=", v)) {
      spec.priority = static_cast<std::int32_t>(std::atol(v));
    } else if (flag_value(argv[i], "--weight=", v)) {
      spec.weight = std::atof(v);
    } else if (flag_value(argv[i], "--tag=", v)) {
      spec.tag = v;
    } else if (flag_value(argv[i], "--faults=", v)) {
      spec.fault_spec = v;
    } else if (flag_value(argv[i], "--kernels=", v)) {
      linalg::KernelPolicy p;
      if (!linalg::parse_kernel_policy(v, p)) {
        std::fprintf(stderr, "bad --kernels '%s' (want scalar or tiled)\n", v);
        return 2;
      }
      spec.kernel_policy = static_cast<std::int32_t>(p);
    } else if (flag_value(argv[i], "--inner-threads=", v)) {
      const long n = std::atol(v);
      if (n < 1 || n > 1024) {
        std::fprintf(stderr, "bad --inner-threads '%s' (want 1..1024)\n", v);
        return 2;
      }
      spec.inner_threads = static_cast<std::uint32_t>(n);
    } else if (flag_value(argv[i], "--pipeline=", v)) {
      const long n = std::atol(v);
      if (n < 1 || n > 64) {
        std::fprintf(stderr, "bad --pipeline '%s' (want 1..64)\n", v);
        return 2;
      }
      spec.pipeline_depth = static_cast<std::uint32_t>(n);
    } else if (flag_value(argv[i], "--cancel-after-ms=", v)) {
      cancel_after_ms = std::atol(v);
    } else if (flag_value(argv[i], "--timeout-ms=", v)) {
      timeout_ms = std::atol(v);
    } else if (flag_value(argv[i], "--report-dir=", v)) {
      report_dir = v;
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      verify = true;
    } else if (std::strcmp(argv[i], "--ping") == 0) {
      ping = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      stats = true;
    } else if (flag_value(argv[i], "--stats-format=", v)) {
      stats_format = v;
      if (stats_format != "json" && stats_format != "prom") {
        std::fprintf(stderr, "bad --stats-format '%s' (want json or prom)\n", v);
        return 2;
      }
    } else if (argv[i][0] == '-' && argv[i][1] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return 2;
    } else if (positional == 0) {
      spec.root = std::atoi(argv[i]);
      ++positional;
    } else if (positional == 1) {
      spec.level = std::atoi(argv[i]);
      ++positional;
    } else if (positional == 2) {
      spec.le_tol = std::atof(argv[i]);
      ++positional;
    }
  }
  if (connect_port == 0) {
    std::fprintf(stderr, "--connect=HOST:PORT is required\n");
    return 2;
  }
  if (jobs < 1) {
    std::fprintf(stderr, "--jobs must be >= 1\n");
    return 2;
  }

  try {
    svc::JobClient client(connect_host, connect_port);

    if (ping) {
      const auto rtt = client.ping();
      std::printf("ping: %lld us\n", static_cast<long long>(rtt.count()));
      // A bare liveness probe: no spec given means nothing to submit.
      if (positional == 0 && !stats) return 0;
    }

    const auto print_stats = [&client, &stats_format] {
      const svc::ServiceStats s = client.stats();
      const std::string text = stats_format == "prom" ? svc::service_stats_prometheus(s)
                                                      : svc::service_stats_json(s);
      std::fputs(text.c_str(), stdout);
      if (text.empty() || text.back() != '\n') std::fputc('\n', stdout);
    };

    // A bare stats scrape: no spec given means nothing to submit.
    if (stats && positional == 0) {
      print_stats();
      return 0;
    }

    // Submit every job up front — the whole point of the service is that the
    // fleet multiplexes them concurrently.
    const std::string base_tag = spec.tag;
    std::vector<std::uint64_t> ids;
    for (long j = 0; j < jobs; ++j) {
      svc::JobSpec s = spec;
      if (jobs > 1) s.tag = (base_tag.empty() ? "job" : base_tag) + "-" + std::to_string(j + 1);
      const svc::JobTicket ticket = client.submit(s);
      if (!ticket.accepted) {
        std::fprintf(stderr, "job %ld rejected: %s\n", j + 1, ticket.reason.c_str());
        return 4;
      }
      std::printf("job %llu accepted (root=%d level=%d tag=%s)\n",
                  static_cast<unsigned long long>(ticket.job_id), s.root, s.level,
                  s.tag.c_str());
      ids.push_back(ticket.job_id);
    }

    if (cancel_after_ms >= 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(cancel_after_ms));
      for (const std::uint64_t id : ids) {
        const svc::JobStatusInfo info = client.cancel(id);
        std::printf("job %llu cancel requested (state now %s)\n",
                    static_cast<unsigned long long>(id), svc::to_string(info.state));
      }
    }

    // Local reference for --verify: one sequential solve serves every job of
    // the identical spec.
    std::vector<double> reference;
    if (verify) {
      transport::ProgramConfig config;
      config.root = spec.root;
      config.level = spec.level;
      config.le_tol = spec.le_tol;
      reference = transport::solve_sequential(config).combined.data();
    }

    int failures = 0;
    for (const std::uint64_t id : ids) {
      const svc::JobStatusInfo status =
          client.wait_terminal(id, std::chrono::milliseconds(timeout_ms));
      const svc::JobResultData result = client.result(id);
      std::printf("job %llu: %s, %llu/%llu terms, %.3f s queued, %.3f s running\n",
                  static_cast<unsigned long long>(id), svc::to_string(status.state),
                  static_cast<unsigned long long>(status.terms_done),
                  static_cast<unsigned long long>(status.terms_total),
                  status.queue_wait_seconds, status.run_seconds);
      if (status.state == svc::JobState::Failed) {
        std::printf("  error: %s\n", status.error.c_str());
        ++failures;
      }
      if (verify && status.state == svc::JobState::Done) {
        const bool identical = result.combined_nodes == reference;
        std::printf("  verify: %s\n",
                    identical ? "bit-identical to the sequential program" : "MISMATCH");
        if (!identical) ++failures;
      }
      if (!report_dir.empty() && !result.report_json.empty()) {
        const std::string path = report_dir + "/job_" + std::to_string(id) + ".json";
        if (obs::write_text_file(path, result.report_json)) {
          std::printf("  report: %s\n", path.c_str());
        }
      }
    }
    if (stats) print_stats();
    return failures == 0 ? 0 : 1;
  } catch (const svc::ClientError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 3;
  }
}
