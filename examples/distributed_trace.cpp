// Reproduces the chronological output of §6: the labelled Welcome/Bye
// messages of a distributed run ("with such a label in front of an actual
// message, we always know who is printing, what, where and when"), the task
// composition (mainprog.mlink) and host mapping (CONFIG) stages, and the
// ebb & flow summary.
//
// The run itself uses the real threaded runtime at a small level with the
// paper's MLINK/CONFIG parameters; the big-level ebb & flow chart comes
// from the cluster simulator.
//
// Usage: distributed_trace [level]
#include <cstdio>
#include <cstdlib>

#include "cluster/cluster_sim.hpp"
#include "cluster/cost_model.hpp"
#include "core/concurrent_solver.hpp"
#include "trace/ebb_flow.hpp"
#include "trace/trace_log.hpp"

int main(int argc, char** argv) {
  using namespace mg;
  const int level = argc > 1 ? std::atoi(argv[1]) : 2;

  // Task composition stage (mainprog.mlink) and runtime configuration stage
  // (the CONFIG input file) — §6.
  std::printf("# mainprog.mlink equivalent: {task * {perpetual} {load 1} "
              "{weight Master 1} {weight Worker 1}}\n");
  const iwim::HostMap hosts = iwim::HostMap::paper_hosts();
  std::printf("# CONFIG equivalent: startup %s + %zu worker hosts\n\n",
              hosts.startup_host.c_str(), hosts.worker_hosts.size());

  trace::TraceLog log;
  transport::ProgramConfig program;
  program.root = 2;
  program.level = level;
  program.le_tol = 1e-3;

  mw::ConcurrentOptions options;
  options.trace = &log;
  options.hosts = hosts;
  const auto result = mw::solve_concurrent(program, options);

  std::printf("%s\n", log.render().c_str());
  std::printf("run used %zu workers across %zu forked task instances; peak %zu busy machines\n\n",
              result.protocol.workers_created, result.tasks.tasks_created,
              result.tasks.peak_busy);

  // The level-15 ebb & flow (Figure 1) from the cluster simulator.
  const cluster::AthlonCostModel cost;
  const cluster::SimConfig sim_config;
  const auto run = cluster::simulate_run(2, 15, 1e-3, cost, sim_config, 7);
  std::printf("simulated level-15 distributed run: %.0f s, peak %d machines, weighted avg %.1f\n",
              run.concurrent_seconds, run.peak_machines, run.weighted_machines);
  std::printf("%s", trace::render_ascii_chart(run.ebb_flow, 72, 12).c_str());
  return 0;
}
