// The modernized application end-to-end: solves the time-dependent
// advection-diffusion problem with the sparse-grid combination technique,
// sequentially (the §3 legacy program) and concurrently (the §5
// restructured master/worker version), verifies the two agree bit-exactly
// (the §6 claim), and reports accuracy against the analytic solution.
//
// Usage mirrors the paper's command line (§3: root, level, le_tol):
//   sparse_grid_solver [root] [level] [le_tol]
#include <cstdio>
#include <cstdlib>

#include "core/concurrent_solver.hpp"
#include "transport/seq_solver.hpp"

int main(int argc, char** argv) {
  using namespace mg;

  transport::ProgramConfig config;
  config.root = argc > 1 ? std::atoi(argv[1]) : 2;    // argv[1]: root level
  config.level = argc > 2 ? std::atoi(argv[2]) : 4;   // argv[2]: additional refinement
  config.le_tol = argc > 3 ? std::atof(argv[3]) : 1e-4;  // argv[3]: integrator tolerance

  std::printf("sparse-grid transport solve: root=%d level=%d le_tol=%g\n", config.root,
              config.level, config.le_tol);
  std::printf("problem: %s\n\n", config.kernel.problem.describe().c_str());

  // --- the sequential program (§3) ---
  const transport::SolveResult seq = transport::solve_sequential(config);
  std::printf("sequential: %zu grids, %.3f s total (subsolve %.3f s, prolongation %.3f s)\n",
              seq.records.size(), seq.total_seconds, seq.subsolve_seconds,
              seq.prolongation_seconds);
  std::printf("%6s %-12s %6s %8s %9s\n", "coeff", "grid", "steps", "solves", "wall[s]");
  for (const auto& r : seq.records) {
    std::printf("%+6.0f %-12s %6zu %8zu %9.4f\n", r.coefficient, r.grid.name().c_str(),
                r.stats.accepted, r.stats.stage_solves, r.elapsed_seconds);
  }

  // --- the concurrent version (§5) ---
  const mw::ConcurrentResult conc = mw::solve_concurrent(config);
  std::printf("\nconcurrent: %zu workers in %zu pool(s), %.3f s wall\n",
              conc.protocol.workers_created, conc.protocol.pools_created,
              conc.solve.total_seconds);

  const double diff = conc.solve.combined.max_diff(seq.combined);
  std::printf("max |concurrent - sequential| = %g  (%s)\n", diff,
              diff == 0.0 ? "exactly the same, as §6 requires" : "MISMATCH");

  // --- accuracy of the combined sparse-grid solution ---
  const auto& p = config.kernel.problem;
  const double t1 = config.kernel.t1;
  const double max_err =
      seq.combined.max_error([&](double x, double y) { return p.exact(x, y, t1); });
  const double l2_err =
      seq.combined.l2_error([&](double x, double y) { return p.exact(x, y, t1); });
  std::printf("\ncombined solution vs analytic at t=%.2f: max error %.3e, L2 error %.3e\n", t1,
              max_err, l2_err);

  return diff == 0.0 ? 0 : 1;
}
