// The modernized application end-to-end: solves the time-dependent
// advection-diffusion problem with the sparse-grid combination technique,
// sequentially (the §3 legacy program) and concurrently (the §5
// restructured master/worker version), verifies the two agree bit-exactly
// (the §6 claim), and reports accuracy against the analytic solution.
//
// Usage mirrors the paper's command line (§3: root, level, le_tol):
//   sparse_grid_solver [root] [level] [le_tol] [--report=PATH] [--trace=PATH]
//                      [--faults=SPEC]
//                      [--backend=threads|tcp] [--workers=N] [--listen=HOST:PORT]
//                      [--pipeline=N] [--connect=HOST:PORT] [--net-faults=SPEC]
//
// --report=PATH additionally writes a JSON run report: both solves' wall
// times, the per-grid records, the bit-exactness diff, the accuracy numbers,
// and a snapshot of the metrics registry (src/obs/report.hpp).
//
// --trace=PATH writes a Chrome trace_event JSON of the run's spans (load in
// about:tracing / Perfetto).  With --backend=tcp this is the *merged*
// cross-process trace: worker subsolve spans ship back on the telemetry
// channel, get re-timed onto the master's clock, and nest under the per-
// channel dispatch spans.
//
// --faults=SPEC (e.g. --faults=seed=7,crash=0.3,hang=0.1,corrupt=0.05) runs
// the concurrent solve under seeded fault injection with the fault-tolerant
// protocol engaged: crashed/hung workers are respawned and their grids
// re-dispatched, and the report gains a "faults" section recording every
// injection, retry, respawn and abandonment.  The solve must still be
// bit-identical to the sequential program.
//
// --churn=SPEC (e.g. --churn=seed=7,joins=2,leaves=1,crashes=1,spread=0.5)
// replays a seeded spot-instance schedule against the worker fleet while the
// concurrent solve runs.  On the threads backend the events drive the
// fault-tolerant pool (Leave re-leases the victim's grid immediately, Crash
// routes through the normal retry path); on the tcp backend the endpoint
// runs in elastic mode — late-join worker processes are forked per Join
// event and accepted mid-run, Leave/Crash events close the busiest channel,
// idle channels steal leased work, and units past the soft deadline are
// speculatively re-issued with first-result-wins dedup.  Either way the
// solve must still be bit-identical to the sequential program, and the
// report gains a "fleet" section (joins/leaves/crashes/steals/releases/
// duplicates).
//
// --backend=tcp runs the concurrent solve over the network substrate: the
// master binds a TCP listener (--listen=HOST:PORT, default loopback
// ephemeral), forks --workers=N subsolve worker processes (default 4), and
// every work unit travels through core/marshal frames instead of in-process
// units.  --connect=HOST:PORT instead joins an already-running master as one
// worker process.  --net-faults=SPEC (net_drop / net_slow / net_truncate /
// net_delay_ms, plus seed) injects seeded frame-level faults into the
// master's send path; the fault-tolerant protocol retries through them and
// the solve must *still* be bit-identical to the sequential program.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/concurrent_solver.hpp"
#include "core/remote_worker.hpp"
#include "fault/fault_plan.hpp"
#include "fleet/churn.hpp"
#include "net/remote.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "solver_cli.hpp"
#include "transport/seq_solver.hpp"

namespace {

void append_solve_json(mg::obs::JsonWriter& w, const mg::transport::SolveResult& solve) {
  w.begin_object();
  w.kv("total_s", solve.total_seconds);
  w.kv("subsolve_s", solve.subsolve_seconds);
  w.kv("prolongation_s", solve.prolongation_seconds);
  w.key("grids").begin_array();
  for (const auto& r : solve.records) {
    w.begin_object();
    w.kv("grid", r.grid.name()).kv("coefficient", r.coefficient);
    w.kv("steps_accepted", static_cast<std::uint64_t>(r.stats.accepted));
    w.kv("steps_rejected", static_cast<std::uint64_t>(r.stats.rejected));
    w.kv("stage_solves", static_cast<std::uint64_t>(r.stats.stage_solves));
    w.kv("wall_s", r.elapsed_seconds);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mg;

  const examples::SolverCli cli = examples::parse_solver_cli(argc, argv);
  if (!cli.ok) {
    std::fprintf(stderr, "%s\n", cli.error.c_str());
    std::fprintf(stderr,
                 "usage: sparse_grid_solver [root] [level] [le_tol] [--report=PATH]\n"
                 "         [--trace=PATH] [--faults=SPEC] [--churn=SPEC]\n"
                 "         [--backend=threads|tcp]\n"
                 "         [--kernels=scalar|tiled] [--inner-threads=N]\n"
                 "         [--workers=N] [--listen=HOST:PORT] [--pipeline=N]\n"
                 "         [--net-faults=SPEC]\n"
                 "       sparse_grid_solver --connect=HOST:PORT   (worker mode)\n");
    return 2;
  }

  transport::ProgramConfig config;
  config.root = cli.root;
  config.level = cli.level;
  config.le_tol = cli.le_tol;
  config.kernel.system.kernel_policy = cli.kernel_policy;
  config.kernel.system.inner_threads = cli.inner_threads;
  const std::string& report_path = cli.report_path;
  const std::string& fault_spec = cli.fault_spec;
  const std::string& net_fault_spec = cli.net_fault_spec;

  // Worker mode: join a running master and serve subsolves until it is gone.
  if (cli.worker_mode) {
    return mw::run_subsolve_worker(cli.connect_host, cli.connect_port);
  }

  const bool tcp = cli.backend == "tcp";

  fleet::ChurnPlanConfig churn_cfg;
  if (!cli.churn_spec.empty()) {
    try {
      churn_cfg = fleet::parse_churn_spec(cli.churn_spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad --churn spec: %s\n", e.what());
      return 2;
    }
  }
  const bool churn_on = churn_cfg.any();
  const fleet::ChurnPlan churn_plan(churn_cfg);

  // Enable span recording up front so both solves (and, over tcp, the merged
  // worker telemetry) land in one trace.  Purely an observer: the solve's
  // numbers must be identical with or without it.
  if (!cli.trace_path.empty()) obs::enable_wall_clock(obs::tracer());

  // TCP master: bind first, fork the workers while this process is still
  // single-threaded, and only then (below) start the endpoint's event loop —
  // the kernel backlog holds the children's connects in the meantime.
  net::TcpListener listener;
  std::vector<int> worker_pids;
  if (tcp) {
    listener = net::TcpListener(cli.listen_host, cli.listen_port);
    std::fflush(stdout);  // forked children must not replay buffered output
    const std::string host = listener.host();
    const std::uint16_t port = listener.port();
    worker_pids = net::fork_worker_processes(cli.tcp_workers, [&listener, host, port] {
      // Children inherit the listening fd; keeping it open would hold the
      // port alive after the master closes it and strand every reconnect.
      listener.close();
      return mw::run_subsolve_worker(host, port);
    });
    // Churn joins: fork one late worker per Join event.  Each child sleeps
    // until its scheduled join time before connecting, so the elastic
    // endpoint accepts it into the lease set mid-run.
    if (churn_on) {
      for (const auto& ev : churn_plan.events()) {
        if (ev.kind != fleet::ChurnEventKind::Join) continue;
        const double at = ev.at_seconds;
        const std::vector<int> late =
            net::fork_worker_processes(1, [&listener, host, port, at] {
              listener.close();
              std::this_thread::sleep_for(std::chrono::duration<double>(at));
              return mw::run_subsolve_worker(host, port);
            });
        worker_pids.insert(worker_pids.end(), late.begin(), late.end());
      }
    }
  }

  std::printf("sparse-grid transport solve: root=%d level=%d le_tol=%g\n", config.root,
              config.level, config.le_tol);
  if (tcp) {
    std::printf("backend: tcp (%s:%u, %zu forked workers)\n", listener.host().c_str(),
                static_cast<unsigned>(listener.port()), worker_pids.size());
  }
  std::printf("problem: %s\n\n", config.kernel.problem.describe().c_str());

  // --- the sequential program (§3) ---
  const transport::SolveResult seq = transport::solve_sequential(config);
  std::printf("sequential: %zu grids, %.3f s total (subsolve %.3f s, prolongation %.3f s)\n",
              seq.records.size(), seq.total_seconds, seq.subsolve_seconds,
              seq.prolongation_seconds);
  std::printf("%6s %-12s %6s %8s %9s\n", "coeff", "grid", "steps", "solves", "wall[s]");
  for (const auto& r : seq.records) {
    std::printf("%+6.0f %-12s %6zu %8zu %9.4f\n", r.coefficient, r.grid.name().c_str(),
                r.stats.accepted, r.stats.stage_solves, r.elapsed_seconds);
  }

  // --- the concurrent version (§5), optionally under fault injection ---
  mw::ConcurrentOptions options;
  if (!fault_spec.empty()) {
    options.faults = fault::parse_fault_spec(fault_spec);
    options.retry = fault::RetryPolicy{};
    options.retry->task_deadline = std::chrono::milliseconds(2000);
    std::printf("\nfault injection on: seed=%llu crash=%.2f hang=%.2f corrupt=%.2f\n",
                static_cast<unsigned long long>(options.faults.seed), options.faults.crash,
                options.faults.hang, options.faults.corrupt);
  }

  std::unique_ptr<const fault::FaultPlan> net_plan;
  std::unique_ptr<net::RemoteEndpoint> endpoint;
  if (tcp) {
    net::RemoteEndpointConfig ep_config;
    if (cli.pipeline_depth > 0) ep_config.elastic.pipeline_depth = cli.pipeline_depth;
    if (!net_fault_spec.empty()) {
      net_plan = std::make_unique<const fault::FaultPlan>(fault::parse_fault_spec(net_fault_spec));
      ep_config.faults = net_plan.get();
      // Faulted frames must fail fast enough for the retry policy to matter.
      ep_config.round_trip_deadline = std::chrono::milliseconds(2000);
      const auto& nf = net_plan->config();
      std::printf("\nnet fault injection on: seed=%llu drop=%.2f slow=%.2f truncate=%.2f\n",
                  static_cast<unsigned long long>(nf.seed), nf.net_drop, nf.net_slow,
                  nf.net_truncate);
    }
    // Remote workers need the fault-tolerant pool: a dead TCP peer surfaces
    // as crash_worker, which the legacy rendezvous cannot digest.
    if (!options.retry) options.retry = fault::RetryPolicy{};
    if (churn_on) {
      ep_config.elastic.enabled = true;
      ep_config.elastic.lease_depth = 2;
      ep_config.elastic.soft_deadline = std::chrono::milliseconds(1500);
      std::printf("\nchurn on (tcp elastic): seed=%llu joins=%zu leaves=%zu crashes=%zu "
                  "over [%g, %g)s\n",
                  static_cast<unsigned long long>(churn_cfg.seed), churn_cfg.joins,
                  churn_cfg.leaves, churn_cfg.crashes, churn_cfg.start_seconds,
                  churn_cfg.start_seconds + churn_cfg.spread_seconds);
    }
    endpoint = std::make_unique<net::RemoteEndpoint>(std::move(listener), ep_config);
    // The barrier waits for the prompt workers only; churn joiners connect
    // later, into a running solve.
    const std::size_t expected = worker_pids.empty() ? 1 : cli.tcp_workers;
    if (!endpoint->wait_for_workers(expected, std::chrono::milliseconds(15'000))) {
      std::fprintf(stderr, "timed out waiting for %zu tcp worker(s)\n", expected);
      return 3;
    }
    options.remote = endpoint.get();
    options.pipeline_depth = cli.pipeline_depth;  // 0 = endpoint default
  } else if (churn_on) {
    options.churn = churn_cfg;
    std::printf("\nchurn on (threads pool): seed=%llu joins=%zu leaves=%zu crashes=%zu "
                "over [%g, %g)s\n",
                static_cast<unsigned long long>(churn_cfg.seed), churn_cfg.joins,
                churn_cfg.leaves, churn_cfg.crashes, churn_cfg.start_seconds,
                churn_cfg.start_seconds + churn_cfg.spread_seconds);
  }

  // The spot-instance adversary: a thread replaying the plan's Leave/Crash
  // events against the elastic endpoint while the solve runs.
  std::atomic<bool> churn_stop{false};
  std::thread churn_thread;
  if (endpoint && churn_on) {
    net::RemoteEndpoint* ep = endpoint.get();
    const fleet::ChurnPlan* plan = &churn_plan;
    churn_thread = std::thread([ep, plan, &churn_stop] {
      net::drive_churn(*ep, *plan, churn_stop);
    });
  }

  const mw::ConcurrentResult conc = mw::solve_concurrent(config, options);
  if (churn_thread.joinable()) {
    churn_stop.store(true, std::memory_order_release);
    churn_thread.join();
  }
  std::printf("\nconcurrent: %zu workers in %zu pool(s), %.3f s wall\n",
              conc.protocol.workers_created, conc.protocol.pools_created,
              conc.solve.total_seconds);
  if (conc.protocol.faults.any()) {
    const auto& f = conc.protocol.faults;
    std::printf("faults: %zu crash / %zu hang / %zu corrupt injected; "
                "%zu crash events, %zu timeouts, %zu retries, %zu respawns, %zu abandoned%s\n",
                f.crashes_injected, f.hangs_injected, f.corruptions_injected, f.crash_events,
                f.timeouts, f.retries, f.respawns, f.abandoned,
                f.degraded ? " (pool degraded)" : "");
  }

  // One fleet ledger across both substrates: the threads pool accounts in
  // the protocol stats, the tcp endpoint in its own counters.
  fleet::FleetCounters fleet = conc.protocol.fleet;
  if (endpoint) {
    const net::RemoteCounters nc = endpoint->counters();
    fleet.joins += nc.fleet_joins;
    fleet.leaves += nc.fleet_leaves;
    fleet.crashes += nc.fleet_crashes;
    fleet.steals += nc.fleet_steals;
    fleet.releases += nc.fleet_releases;
    fleet.duplicates += nc.fleet_duplicates;
  }
  if (fleet.any()) {
    std::printf("fleet: %zu joins, %zu leaves, %zu crashes, %zu steals, %zu releases, "
                "%zu duplicates discarded\n",
                fleet.joins, fleet.leaves, fleet.crashes, fleet.steals, fleet.releases,
                fleet.duplicates);
  }

  if (endpoint) {
    const net::RemoteCounters nc = endpoint->counters();
    std::printf("net: %llu frames out / %llu in, %llu bytes out / %llu in, "
                "%llu reconnects, %llu trips ok / %llu failed\n",
                static_cast<unsigned long long>(nc.frames_sent),
                static_cast<unsigned long long>(nc.frames_received),
                static_cast<unsigned long long>(nc.bytes_sent),
                static_cast<unsigned long long>(nc.bytes_received),
                static_cast<unsigned long long>(nc.reconnects),
                static_cast<unsigned long long>(nc.round_trips_ok),
                static_cast<unsigned long long>(nc.round_trips_failed));
    endpoint->shutdown();
    const int worker_rc = net::wait_worker_processes(worker_pids);
    if (worker_rc != 0) std::printf("warning: tcp worker exit status %d\n", worker_rc);
  }

  const double diff = conc.solve.combined.max_diff(seq.combined);
  std::printf("max |concurrent - sequential| = %g  (%s)\n", diff,
              diff == 0.0 ? "exactly the same, as §6 requires" : "MISMATCH");

  // --- accuracy of the combined sparse-grid solution ---
  const auto& p = config.kernel.problem;
  const double t1 = config.kernel.t1;
  const double max_err =
      seq.combined.max_error([&](double x, double y) { return p.exact(x, y, t1); });
  const double l2_err =
      seq.combined.l2_error([&](double x, double y) { return p.exact(x, y, t1); });
  std::printf("\ncombined solution vs analytic at t=%.2f: max error %.3e, L2 error %.3e\n", t1,
              max_err, l2_err);

  if (!cli.trace_path.empty()) {
    if (!obs::write_text_file(cli.trace_path, obs::tracer().chrome_trace_json())) {
      std::fprintf(stderr, "cannot write trace to %s\n", cli.trace_path.c_str());
      return 1;
    }
    std::printf("trace written to %s (%zu spans)\n", cli.trace_path.c_str(),
                obs::tracer().size());
  }

  if (!report_path.empty()) {
    obs::RunReport report("sparse_grid_solver");
    report.config().begin_object();
    report.config().kv("root", config.root).kv("level", config.level);
    report.config().kv("le_tol", config.le_tol);
    report.config().end_object();
    report.derived().begin_object();
    report.derived().key("sequential");
    append_solve_json(report.derived(), seq);
    report.derived().key("concurrent");
    append_solve_json(report.derived(), conc.solve);
    report.derived().key("protocol").begin_object();
    report.derived().kv("pools_created", static_cast<std::uint64_t>(conc.protocol.pools_created));
    report.derived().kv("workers_created",
                        static_cast<std::uint64_t>(conc.protocol.workers_created));
    report.derived().kv("rendezvous_wait_s", conc.protocol.rendezvous_wait_seconds);
    report.derived().end_object();
    if (conc.protocol.faults.any()) {
      fault::fault_counters_to_json(report.faults(), conc.protocol.faults);
    }
    if (fleet.any()) {
      report.derived().key("fleet");
      fleet::fleet_counters_to_json(report.derived(), fleet);
    }
    report.derived().kv("max_diff_concurrent_vs_sequential", diff);
    report.derived().kv("bit_exact", diff == 0.0);
    report.derived().kv("max_error_vs_analytic", max_err);
    report.derived().kv("l2_error_vs_analytic", l2_err);
    report.derived().end_object();
    if (!report.write(report_path)) return 1;
    std::printf("report written to %s\n", report_path.c_str());
  }

  return diff == 0.0 ? 0 : 1;
}
