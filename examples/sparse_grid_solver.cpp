// The modernized application end-to-end: solves the time-dependent
// advection-diffusion problem with the sparse-grid combination technique,
// sequentially (the §3 legacy program) and concurrently (the §5
// restructured master/worker version), verifies the two agree bit-exactly
// (the §6 claim), and reports accuracy against the analytic solution.
//
// Usage mirrors the paper's command line (§3: root, level, le_tol):
//   sparse_grid_solver [root] [level] [le_tol] [--report=PATH] [--faults=SPEC]
//
// --report=PATH additionally writes a JSON run report: both solves' wall
// times, the per-grid records, the bit-exactness diff, the accuracy numbers,
// and a snapshot of the metrics registry (src/obs/report.hpp).
//
// --faults=SPEC (e.g. --faults=seed=7,crash=0.3,hang=0.1,corrupt=0.05) runs
// the concurrent solve under seeded fault injection with the fault-tolerant
// protocol engaged: crashed/hung workers are respawned and their grids
// re-dispatched, and the report gains a "faults" section recording every
// injection, retry, respawn and abandonment.  The solve must still be
// bit-identical to the sequential program.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/concurrent_solver.hpp"
#include "fault/fault_plan.hpp"
#include "obs/report.hpp"
#include "transport/seq_solver.hpp"

namespace {

void append_solve_json(mg::obs::JsonWriter& w, const mg::transport::SolveResult& solve) {
  w.begin_object();
  w.kv("total_s", solve.total_seconds);
  w.kv("subsolve_s", solve.subsolve_seconds);
  w.kv("prolongation_s", solve.prolongation_seconds);
  w.key("grids").begin_array();
  for (const auto& r : solve.records) {
    w.begin_object();
    w.kv("grid", r.grid.name()).kv("coefficient", r.coefficient);
    w.kv("steps_accepted", static_cast<std::uint64_t>(r.stats.accepted));
    w.kv("steps_rejected", static_cast<std::uint64_t>(r.stats.rejected));
    w.kv("stage_solves", static_cast<std::uint64_t>(r.stats.stage_solves));
    w.kv("wall_s", r.elapsed_seconds);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mg;

  transport::ProgramConfig config;
  std::string report_path;
  std::string fault_spec;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--report=", 9) == 0) {
      report_path = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--faults=", 9) == 0) {
      fault_spec = argv[i] + 9;
    } else if (positional == 0) {
      config.root = std::atoi(argv[i]);  // root level
      ++positional;
    } else if (positional == 1) {
      config.level = std::atoi(argv[i]);  // additional refinement
      ++positional;
    } else if (positional == 2) {
      config.le_tol = std::atof(argv[i]);  // integrator tolerance
      ++positional;
    }
  }

  std::printf("sparse-grid transport solve: root=%d level=%d le_tol=%g\n", config.root,
              config.level, config.le_tol);
  std::printf("problem: %s\n\n", config.kernel.problem.describe().c_str());

  // --- the sequential program (§3) ---
  const transport::SolveResult seq = transport::solve_sequential(config);
  std::printf("sequential: %zu grids, %.3f s total (subsolve %.3f s, prolongation %.3f s)\n",
              seq.records.size(), seq.total_seconds, seq.subsolve_seconds,
              seq.prolongation_seconds);
  std::printf("%6s %-12s %6s %8s %9s\n", "coeff", "grid", "steps", "solves", "wall[s]");
  for (const auto& r : seq.records) {
    std::printf("%+6.0f %-12s %6zu %8zu %9.4f\n", r.coefficient, r.grid.name().c_str(),
                r.stats.accepted, r.stats.stage_solves, r.elapsed_seconds);
  }

  // --- the concurrent version (§5), optionally under fault injection ---
  mw::ConcurrentOptions options;
  if (!fault_spec.empty()) {
    options.faults = fault::parse_fault_spec(fault_spec);
    options.retry = fault::RetryPolicy{};
    options.retry->task_deadline = std::chrono::milliseconds(2000);
    std::printf("\nfault injection on: seed=%llu crash=%.2f hang=%.2f corrupt=%.2f\n",
                static_cast<unsigned long long>(options.faults.seed), options.faults.crash,
                options.faults.hang, options.faults.corrupt);
  }
  const mw::ConcurrentResult conc = mw::solve_concurrent(config, options);
  std::printf("\nconcurrent: %zu workers in %zu pool(s), %.3f s wall\n",
              conc.protocol.workers_created, conc.protocol.pools_created,
              conc.solve.total_seconds);
  if (conc.protocol.faults.any()) {
    const auto& f = conc.protocol.faults;
    std::printf("faults: %zu crash / %zu hang / %zu corrupt injected; "
                "%zu crash events, %zu timeouts, %zu retries, %zu respawns, %zu abandoned%s\n",
                f.crashes_injected, f.hangs_injected, f.corruptions_injected, f.crash_events,
                f.timeouts, f.retries, f.respawns, f.abandoned,
                f.degraded ? " (pool degraded)" : "");
  }

  const double diff = conc.solve.combined.max_diff(seq.combined);
  std::printf("max |concurrent - sequential| = %g  (%s)\n", diff,
              diff == 0.0 ? "exactly the same, as §6 requires" : "MISMATCH");

  // --- accuracy of the combined sparse-grid solution ---
  const auto& p = config.kernel.problem;
  const double t1 = config.kernel.t1;
  const double max_err =
      seq.combined.max_error([&](double x, double y) { return p.exact(x, y, t1); });
  const double l2_err =
      seq.combined.l2_error([&](double x, double y) { return p.exact(x, y, t1); });
  std::printf("\ncombined solution vs analytic at t=%.2f: max error %.3e, L2 error %.3e\n", t1,
              max_err, l2_err);

  if (!report_path.empty()) {
    obs::RunReport report("sparse_grid_solver");
    report.config().begin_object();
    report.config().kv("root", config.root).kv("level", config.level);
    report.config().kv("le_tol", config.le_tol);
    report.config().end_object();
    report.derived().begin_object();
    report.derived().key("sequential");
    append_solve_json(report.derived(), seq);
    report.derived().key("concurrent");
    append_solve_json(report.derived(), conc.solve);
    report.derived().key("protocol").begin_object();
    report.derived().kv("pools_created", static_cast<std::uint64_t>(conc.protocol.pools_created));
    report.derived().kv("workers_created",
                        static_cast<std::uint64_t>(conc.protocol.workers_created));
    report.derived().kv("rendezvous_wait_s", conc.protocol.rendezvous_wait_seconds);
    report.derived().end_object();
    if (conc.protocol.faults.any()) {
      fault::fault_counters_to_json(report.faults(), conc.protocol.faults);
    }
    report.derived().kv("max_diff_concurrent_vs_sequential", diff);
    report.derived().kv("bit_exact", diff == 0.0);
    report.derived().kv("max_error_vs_analytic", max_err);
    report.derived().kv("l2_error_vs_analytic", l2_err);
    report.derived().end_object();
    if (!report.write(report_path)) return 1;
    std::printf("report written to %s\n", report_path.c_str());
  }

  return diff == 0.0 ? 0 : 1;
}
