// Quickstart: a five-minute tour of the coordination runtime.
//
//  1. Atomic processes with ports, connected by a stream (IWIM basics).
//  2. Events: raise / await.
//  3. The generic master/worker protocol (ProtocolMW) on a toy job —
//     the paper's coordinator with the master and worker as parameters.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/master.hpp"
#include "core/protocol.hpp"
#include "core/worker.hpp"
#include "manifold/runtime.hpp"

using namespace mg;

// --- 1. processes, ports, streams -----------------------------------------
static void demo_streams() {
  std::printf("== 1. processes, ports, streams ==\n");
  iwim::Runtime runtime;

  // A producer writes squares to its own output port; it knows nothing about
  // who consumes them (the IWIM black-box rule).
  auto producer = runtime.create_process("Producer", "squares", [](iwim::ProcessContext& ctx) {
    for (std::int64_t i = 1; i <= 5; ++i) ctx.write(iwim::Unit::of(i * i));
  });

  // A consumer reads from its own input port.
  std::int64_t sum = 0;
  auto consumer = runtime.create_process("Consumer", "adder", [&](iwim::ProcessContext& ctx) {
    for (int i = 0; i < 5; ++i) sum += ctx.read().as<std::int64_t>();
  });

  // The third party — us — wires them together.  Exogenous coordination.
  runtime.connect(producer->port("output"), consumer->port("input"));
  producer->activate();
  consumer->activate();
  consumer->wait_terminated();
  std::printf("   sum of squares 1..5 via a stream: %lld (expected 55)\n\n",
              static_cast<long long>(sum));
}

// --- 2. events --------------------------------------------------------------
static void demo_events() {
  std::printf("== 2. events ==\n");
  iwim::Runtime runtime;
  auto waiter = runtime.create_process("Waiter", "w", [](iwim::ProcessContext& ctx) {
    const auto occurrence = ctx.await({{"go", std::nullopt}});
    std::printf("   waiter woke on '%s' raised by '%s'\n\n", occurrence.event.c_str(),
                occurrence.source_name.c_str());
  });
  auto raiser = runtime.create_process("Raiser", "r",
                                       [](iwim::ProcessContext& ctx) { ctx.raise("go"); });
  waiter->activate();
  raiser->activate();
  waiter->wait_terminated();
}

// --- 3. the master/worker protocol ------------------------------------------
static void demo_protocol() {
  std::printf("== 3. ProtocolMW on a toy job ==\n");
  iwim::Runtime runtime;
  constexpr std::int64_t kJobs = 8;

  auto master = mw::make_master(runtime, "master", [&](mw::MasterApi& api, iwim::ProcessContext&) {
    api.create_pool();  // "I need a workers-pool"
    for (std::int64_t k = 0; k < kJobs; ++k) {
      api.create_worker();                     // coordinator creates + wires one
      api.send_work(iwim::Unit::of(k));        // job flows master.output -> worker.input
    }
    std::int64_t total = 0;
    for (std::int64_t k = 0; k < kJobs; ++k) {
      total += api.collect_result().as<std::int64_t>();  // KK stream -> dataport
    }
    api.rendezvous();  // coordinator counts the death_worker events
    api.finished();
    std::printf("   sum of cubes 0..%lld computed by %lld workers: %lld\n",
                static_cast<long long>(kJobs - 1), static_cast<long long>(kJobs),
                static_cast<long long>(total));
  });

  auto factory = mw::make_worker_factory([](const iwim::Unit& u) {
    const std::int64_t x = u.as<std::int64_t>();
    return iwim::Unit::of(x * x * x);
  });

  const mw::ProtocolStats stats = mw::run_main_program(runtime, master, std::move(factory));
  std::printf("   protocol: %zu pool(s), %zu workers created\n", stats.pools_created,
              stats.workers_created);
}

int main() {
  demo_streams();
  demo_events();
  demo_protocol();
  return 0;
}
