// The protocol is generic: "for the protocol, it is irrelevant to know what
// kind of computation is performed in the master or the worker" (§4).
//
// This example reuses ProtocolMW unchanged for a completely different
// domain: adaptive numerical quadrature.  The master splits the integral of
// f over [0, 1] into panels, farms each panel to a worker, and sums the
// partial results.  Two pools are used (coarse pass, then a refined pass on
// the worst panels), exercising the repeated create_pool path of §4.2.
//
// Usage: task_farm [panels]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/master.hpp"
#include "core/protocol.hpp"
#include "core/worker.hpp"
#include "manifold/runtime.hpp"

namespace {

using namespace mg;

// The integrand: smooth but with a sharp feature, so refinement matters.
double f(double x) { return std::sin(20.0 * x) / (0.05 + x) + std::exp(-x * x); }

struct Panel {
  double a;
  double b;
  int samples;
};

struct PanelResult {
  double integral;
  double roughness;  ///< |f(a) - f(b)| as a crude refinement indicator
  double a, b;
};

// Composite Simpson on one panel — the worker's computational job.
iwim::Unit integrate_panel(const iwim::Unit& unit) {
  const Panel p = unit.as<Panel>();
  const int n = p.samples % 2 == 0 ? p.samples : p.samples + 1;
  const double h = (p.b - p.a) / n;
  double s = f(p.a) + f(p.b);
  for (int i = 1; i < n; ++i) s += f(p.a + i * h) * (i % 2 == 1 ? 4.0 : 2.0);
  return iwim::Unit::of(PanelResult{s * h / 3.0, std::abs(f(p.a) - f(p.b)), p.a, p.b});
}

}  // namespace

int main(int argc, char** argv) {
  const int panels = argc > 1 ? std::atoi(argv[1]) : 16;

  iwim::Runtime runtime;
  double total = 0.0;

  auto master = mw::make_master(runtime, "master", [&](mw::MasterApi& api, iwim::ProcessContext&) {
    // Pool 1: coarse pass over uniform panels.
    api.create_pool();
    for (int k = 0; k < panels; ++k) {
      api.create_worker();
      api.send_work(iwim::Unit::of(
          Panel{static_cast<double>(k) / panels, static_cast<double>(k + 1) / panels, 64}));
    }
    std::vector<PanelResult> results;
    for (int k = 0; k < panels; ++k) {
      results.push_back(api.collect_result().as<PanelResult>());
    }
    api.rendezvous();

    // Pool 2 (the §4.2 "more demanding master"): re-integrate the roughest
    // half of the panels with 8x the samples.
    std::sort(results.begin(), results.end(),
              [](const PanelResult& x, const PanelResult& y) { return x.roughness > y.roughness; });
    const std::size_t refine = results.size() / 2;
    api.create_pool();
    for (std::size_t k = 0; k < refine; ++k) {
      api.create_worker();
      api.send_work(iwim::Unit::of(Panel{results[k].a, results[k].b, 512}));
    }
    for (std::size_t k = 0; k < refine; ++k) {
      const auto refined = api.collect_result().as<PanelResult>();
      // Replace the coarse value of the matching panel.
      for (auto& r : results) {
        if (r.a == refined.a && r.b == refined.b) r.integral = refined.integral;
      }
    }
    api.rendezvous();
    api.finished();

    for (const auto& r : results) total += r.integral;
  });

  const auto stats = mw::run_main_program(runtime, master, mw::make_worker_factory(integrate_panel));

  // High-resolution reference on one grid.
  double reference = 0.0;
  {
    const int n = 1 << 20;
    const double h = 1.0 / n;
    reference = f(0.0) + f(1.0);
    for (int i = 1; i < n; ++i) reference += f(i * h) * (i % 2 == 1 ? 4.0 : 2.0);
    reference *= h / 3.0;
  }

  std::printf("task farm quadrature: %d panels, %zu pools, %zu workers\n", panels,
              stats.pools_created, stats.workers_created);
  std::printf("integral = %.10f, reference = %.10f, error = %.2e\n", total, reference,
              std::abs(total - reference));
  return std::abs(total - reference) < 1e-6 ? 0 : 1;
}
