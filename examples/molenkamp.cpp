// The Molenkamp–Crowley rotating-cone test, run as a master/worker farm:
// one worker per grid resolution, all revolving the cone concurrently under
// the same generic ProtocolMW coordinator the sparse-grid application uses —
// a third domain demonstrating the protocol's genericity.
//
// Usage: molenkamp [max_level] [fraction_of_revolution]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "core/master.hpp"
#include "core/protocol.hpp"
#include "core/worker.hpp"
#include "manifold/runtime.hpp"
#include "transport/rotating.hpp"

namespace {

using namespace mg;

struct ConeJob {
  int level;
  double t1;
};

struct ConeResult {
  int level;
  double max_error;
  std::size_t steps;
};

}  // namespace

int main(int argc, char** argv) {
  const int max_level = argc > 1 ? std::atoi(argv[1]) : 4;
  const double t1 = argc > 2 ? std::atof(argv[2]) : 0.25;

  iwim::Runtime runtime;
  std::map<int, ConeResult> results;

  auto master = mw::make_master(runtime, "master", [&](mw::MasterApi& api, iwim::ProcessContext&) {
    api.create_pool();
    for (int l = 1; l <= max_level; ++l) {
      api.create_worker();
      api.send_work(iwim::Unit::of(ConeJob{l, t1}));
    }
    for (int l = 1; l <= max_level; ++l) {
      const auto r = api.collect_result().as<ConeResult>();
      results[r.level] = r;
    }
    api.rendezvous();
    api.finished();
  });

  auto factory = mw::make_worker_factory([](const iwim::Unit& u) {
    const auto job = u.as<ConeJob>();
    const transport::RotatingConeProblem problem;
    const auto r =
        transport::solve_rotating_cone(grid::Grid2D(2, job.level, job.level), problem, 1e-4, job.t1);
    return iwim::Unit::of(ConeResult{job.level, r.max_error, r.stats.accepted});
  });

  mw::run_main_program(runtime, master, std::move(factory));

  std::printf("Molenkamp rotating cone after %.2f revolution(s), first-order upwind + ROS2:\n",
              t1);
  std::printf("%7s %9s %12s %7s\n", "level", "grid", "max error", "steps");
  double prev = 0.0;
  bool monotone = true;
  for (const auto& [level, r] : results) {
    const std::size_t n = (std::size_t{1} << (2 + level));
    std::printf("%7d %4zux%-4zu %12.4f %7zu\n", level, n, n, r.max_error, r.steps);
    if (level > 1 && r.max_error >= prev) monotone = false;
    prev = r.max_error;
  }
  std::printf("error decreases with refinement: %s\n", monotone ? "yes" : "NO");
  return monotone ? 0 : 1;
}
