// Determinism proofs for the within-grid parallel execution layer
// (DESIGN.md §14): the Tiled kernel policy and inner worker teams must be
// bitwise identical to the seed Scalar path — across solver kinds, odd
// (n % 4 != 0) tail sizes, and every team size — plus the wire codec for
// the new SystemOptions fields and a TSAN hammer on the chunk barrier.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "../examples/solver_cli.hpp"
#include "core/marshal.hpp"
#include "linalg/banded.hpp"
#include "linalg/bicgstab.hpp"
#include "linalg/csr.hpp"
#include "linalg/kernels.hpp"
#include "linalg/parallel.hpp"
#include "linalg/precond.hpp"
#include "linalg/vector_ops.hpp"
#include "support/bytes.hpp"
#include "support/rng.hpp"
#include "svc/job.hpp"
#include "transport/subsolve.hpp"

namespace {

using namespace mg::linalg;
using mg::support::Xoshiro256;

// Bitwise equality — EXPECT_EQ on doubles is exact, but spell the intent out
// and catch -0.0 vs 0.0 too.
bool bit_equal(const Vec& a, const Vec& b) {
  if (a.size() != b.size()) return false;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

CsrMatrix random_dominant_matrix(std::size_t n, double density, Xoshiro256& rng) {
  CsrBuilder builder(n, n);
  std::vector<double> row_abs(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && rng.uniform01() < density) {
        const double v = rng.uniform(-1.0, 1.0);
        builder.add(i, j, v);
        row_abs[i] += std::abs(v);
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) builder.add(i, i, row_abs[i] + 1.0 + rng.uniform01());
  return builder.build();
}

Vec random_vec(std::size_t n, Xoshiro256& rng) {
  Vec v(n);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

ParallelContext::Options test_team_options() {
  ParallelOptions opts;
  opts.min_items_per_worker = 1;  // force real cross-thread dispatch
  opts.oversubscribe = true;      // even on a 1-core CI box
  return opts;
}

// ---- policy parsing ---------------------------------------------------------

TEST(KernelPolicy, ParseAndPrint) {
  KernelPolicy p = KernelPolicy::Tiled;
  EXPECT_TRUE(parse_kernel_policy("scalar", p));
  EXPECT_EQ(p, KernelPolicy::Scalar);
  EXPECT_TRUE(parse_kernel_policy("tiled", p));
  EXPECT_EQ(p, KernelPolicy::Tiled);
  EXPECT_FALSE(parse_kernel_policy("simd", p));
  EXPECT_FALSE(parse_kernel_policy("", p));
  EXPECT_STREQ(to_string(KernelPolicy::Scalar), "scalar");
  EXPECT_STREQ(to_string(KernelPolicy::Tiled), "tiled");
}

// ---- SpMV / multiply_sub ----------------------------------------------------

TEST(TiledKernels, SpmvBitwiseMatchesScalarIncludingOddTails) {
  Xoshiro256 rng(17);
  // Odd sizes exercise the 4-row remainder; 16/64 the full blocks.
  for (const std::size_t n : {1u, 2u, 3u, 5u, 7u, 13u, 16u, 33u, 64u, 127u}) {
    const CsrMatrix a = random_dominant_matrix(n, 0.3, rng);
    const Vec x = random_vec(n, rng);
    const Vec b = random_vec(n, rng);

    Vec y_scalar, y_tiled, s_scalar, s_tiled;
    a.multiply(x, y_scalar);
    a.multiply(x, y_tiled, KernelContext{KernelPolicy::Tiled, nullptr});
    multiply_sub(a, b, x, s_scalar);
    multiply_sub(a, b, x, s_tiled, KernelContext{KernelPolicy::Tiled, nullptr});

    EXPECT_TRUE(bit_equal(y_scalar, y_tiled)) << "spmv n=" << n;
    EXPECT_TRUE(bit_equal(s_scalar, s_tiled)) << "multiply_sub n=" << n;

    // Row-partitioned across a real team: same bits at any team size.
    ParallelContext team(4, test_team_options());
    Vec y_team, s_team;
    a.multiply(x, y_team, KernelContext{KernelPolicy::Tiled, &team});
    multiply_sub(a, b, x, s_team, KernelContext{KernelPolicy::Tiled, &team});
    EXPECT_TRUE(bit_equal(y_scalar, y_team)) << "teamed spmv n=" << n;
    EXPECT_TRUE(bit_equal(s_scalar, s_team)) << "teamed multiply_sub n=" << n;
  }
}

// ---- fused triads -----------------------------------------------------------

TEST(TiledKernels, FusedTriadsBitwiseMatchScalar) {
  Xoshiro256 rng(23);
  for (const std::size_t n : {3u, 4u, 7u, 64u, 1001u}) {
    const Vec r = random_vec(n, rng), v = random_vec(n, rng);
    const Vec a = random_vec(n, rng), b = random_vec(n, rng);
    const double alpha = 0.37, beta = 1.21, omega = -0.83;

    Vec p_s = random_vec(n, rng);
    Vec p_t = p_s, p_team = p_s;
    fused_p_update(beta, omega, r, v, p_s, KernelContext{});
    fused_p_update(beta, omega, r, v, p_t, KernelContext{KernelPolicy::Tiled, nullptr});
    EXPECT_TRUE(bit_equal(p_s, p_t)) << "p-update n=" << n;

    Vec x_s = random_vec(n, rng);
    Vec x_t = x_s;
    fused_x_update(alpha, omega, a, b, x_s, KernelContext{});
    fused_x_update(alpha, omega, a, b, x_t, KernelContext{KernelPolicy::Tiled, nullptr});
    EXPECT_TRUE(bit_equal(x_s, x_t)) << "x-update n=" << n;

    ParallelContext team(3, test_team_options());
    fused_p_update(beta, omega, r, v, p_team, KernelContext{KernelPolicy::Tiled, &team});
    EXPECT_TRUE(bit_equal(p_s, p_team)) << "teamed p-update n=" << n;
  }
}

// ---- banded LU --------------------------------------------------------------

TEST(TiledKernels, BandedFactorizeBitwiseMatchesScalar) {
  Xoshiro256 rng(31);
  for (const std::size_t n : {3u, 9u, 17u, 40u, 101u}) {
    for (const std::size_t hb : {1u, 3u, 7u}) {
      if (hb >= n) continue;
      BandedMatrix scalar_m(n, hb);
      BandedMatrix tiled_m(n, hb);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = (i > hb ? i - hb : 0); j < std::min(n, i + hb + 1); ++j) {
          const double v = i == j ? 4.0 + rng.uniform01() : rng.uniform(-1.0, 1.0);
          scalar_m.set(i, j, v);
          tiled_m.set(i, j, v);
        }
      }
      scalar_m.factorize();
      tiled_m.factorize(KernelContext{KernelPolicy::Tiled, nullptr});
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = (i > hb ? i - hb : 0); j < std::min(n, i + hb + 1); ++j) {
          const double a = scalar_m.at(i, j);
          const double b = tiled_m.at(i, j);
          EXPECT_EQ(std::memcmp(&a, &b, sizeof a), 0)
              << "n=" << n << " hb=" << hb << " (" << i << "," << j << ")";
        }
      }
    }
  }
}

// ---- preconditioners --------------------------------------------------------

TEST(TiledKernels, PreconditionerApplyBitwiseMatchesScalar) {
  Xoshiro256 rng(47);
  for (const std::size_t n : {5u, 27u, 140u}) {
    const CsrMatrix a = random_dominant_matrix(n, 0.25, rng);
    const Vec r = random_vec(n, rng);
    ParallelContext team(4, test_team_options());

    const JacobiPreconditioner jacobi(a);
    Vec z_ref, z_tiled, z_team;
    jacobi.apply(r, z_ref);
    jacobi.apply(r, z_tiled, KernelContext{KernelPolicy::Tiled, nullptr});
    jacobi.apply(r, z_team, KernelContext{KernelPolicy::Tiled, &team});
    EXPECT_TRUE(bit_equal(z_ref, z_tiled)) << "jacobi n=" << n;
    EXPECT_TRUE(bit_equal(z_ref, z_team)) << "teamed jacobi n=" << n;

    const Ilu0Preconditioner ilu(a);
    EXPECT_GE(ilu.lower_levels(), 1u);
    EXPECT_GE(ilu.upper_levels(), 1u);
    ilu.apply(r, z_ref);
    ilu.apply(r, z_tiled, KernelContext{KernelPolicy::Tiled, nullptr});
    ilu.apply(r, z_team, KernelContext{KernelPolicy::Tiled, &team});
    EXPECT_TRUE(bit_equal(z_ref, z_tiled)) << "wavefront ilu0 n=" << n;
    EXPECT_TRUE(bit_equal(z_ref, z_team)) << "teamed wavefront ilu0 n=" << n;
  }
}

// ---- BiCGSTAB across team sizes ---------------------------------------------

TEST(TiledKernels, ParallelBicgstabBitIdenticalAtTeamSizes124) {
  Xoshiro256 rng(59);
  const std::size_t n = 211;  // prime: every chunking has ragged tails
  const CsrMatrix a = random_dominant_matrix(n, 0.15, rng);
  const Vec b = random_vec(n, rng);
  const Ilu0Preconditioner precond(a);

  Vec x_ref(n, 0.0);
  const SolveReport ref = bicgstab(a, b, x_ref, precond);
  ASSERT_TRUE(ref.converged);

  for (const std::size_t team_size : {1u, 2u, 4u}) {
    ParallelContext team(team_size, test_team_options());
    Vec x(n, 0.0);
    const SolveReport report =
        bicgstab(a, b, x, precond, SolveOptions{}, nullptr,
                 KernelContext{KernelPolicy::Tiled, &team});
    EXPECT_TRUE(report.converged);
    EXPECT_EQ(report.iterations, ref.iterations) << "team=" << team_size;
    EXPECT_TRUE(bit_equal(x_ref, x)) << "team=" << team_size;
  }
}

// ---- end-to-end: subsolve across all three solver kinds ---------------------

TEST(TiledKernels, SubsolveBitwiseIdenticalAcrossPoliciesAndTeams) {
  using mg::transport::StageSolverKind;
  const mg::grid::Grid2D g(2, 3, 3);  // 15x15 interior: odd, real tails
  for (const auto kind : {StageSolverKind::BandedLU, StageSolverKind::BiCgStabIlu0,
                          StageSolverKind::BiCgStabJacobi}) {
    mg::transport::SubsolveConfig scalar_cfg;
    scalar_cfg.system.solver = kind;
    const auto ref = mg::transport::subsolve(g, scalar_cfg);

    for (const std::uint32_t inner : {1u, 2u, 4u}) {
      mg::transport::SubsolveConfig cfg;
      cfg.system.solver = kind;
      cfg.system.kernel_policy = KernelPolicy::Tiled;
      cfg.system.inner_threads = inner;
      const auto got = mg::transport::subsolve(g, cfg);
      ASSERT_EQ(ref.solution.data().size(), got.solution.data().size());
      EXPECT_EQ(std::memcmp(ref.solution.data().data(), got.solution.data().data(),
                            ref.solution.data().size() * sizeof(double)),
                0)
          << to_string(kind) << " inner=" << inner;
      EXPECT_EQ(ref.stats.accepted, got.stats.accepted);
      EXPECT_EQ(ref.stats.rejected, got.stats.rejected);
    }
  }
}

// ---- marshal round-trip of the new SystemOptions fields ---------------------

TEST(KernelMarshal, WorkItemRoundTripsKernelPolicyAndInnerThreads) {
  mg::mw::WorkItem item{};
  item.index = 7;
  item.root = 2;
  item.lx = 3;
  item.ly = 4;
  item.config.system.kernel_policy = KernelPolicy::Tiled;
  item.config.system.inner_threads = 6;
  const auto bytes = mg::mw::encode_work_item(item);
  const mg::mw::WorkItem back = mg::mw::decode_work_item(bytes);
  EXPECT_EQ(back.config.system.kernel_policy, KernelPolicy::Tiled);
  EXPECT_EQ(back.config.system.inner_threads, 6u);

  // A corrupt inner-thread count must be rejected, not half-trusted.
  mg::mw::WorkItem bad = item;
  bad.config.system.inner_threads = 0;
  EXPECT_THROW(mg::mw::decode_work_item(mg::mw::encode_work_item(bad)),
               mg::support::DecodeError);
}

TEST(KernelMarshal, JobSpecRoundTripsKernelFields) {
  mg::svc::JobSpec spec;
  spec.root = 2;
  spec.level = 4;
  spec.kernel_policy = static_cast<std::int32_t>(KernelPolicy::Tiled);
  spec.inner_threads = 8;
  const mg::svc::JobSpec back = mg::svc::decode_job_spec(mg::svc::encode_job_spec(spec));
  EXPECT_EQ(back.kernel_policy, spec.kernel_policy);
  EXPECT_EQ(back.inner_threads, spec.inner_threads);

  mg::svc::JobSpec bad = spec;
  bad.kernel_policy = 9;
  EXPECT_THROW(mg::svc::decode_job_spec(mg::svc::encode_job_spec(bad)),
               mg::support::DecodeError);
}

// ---- CLI flags --------------------------------------------------------------

TEST(KernelCli, ParsesKernelFlags) {
  const char* argv[] = {"solver", "2", "4", "1e-3", "--kernels=tiled", "--inner-threads=4"};
  const auto cli = mg::examples::parse_solver_cli(6, argv);
  ASSERT_TRUE(cli.ok) << cli.error;
  EXPECT_EQ(cli.kernel_policy, KernelPolicy::Tiled);
  EXPECT_EQ(cli.inner_threads, 4u);
}

TEST(KernelCli, RejectsBadKernelFlags) {
  {
    const char* argv[] = {"solver", "--kernels=fast"};
    EXPECT_FALSE(mg::examples::parse_solver_cli(2, argv).ok);
  }
  {
    const char* argv[] = {"solver", "--inner-threads=0"};
    EXPECT_FALSE(mg::examples::parse_solver_cli(2, argv).ok);
  }
  {
    // Kernel config travels with the work unit; worker-side flags are dead.
    const char* argv[] = {"solver", "--connect=127.0.0.1:9000", "--kernels=tiled"};
    EXPECT_FALSE(mg::examples::parse_solver_cli(3, argv).ok);
  }
}

// ---- chunk barrier under TSAN -----------------------------------------------

// TSAN: hammers the chunk-deterministic barrier from the leader while every
// helper writes disjoint slots and reduce partials — run under
// -fsanitize=thread in CI to prove the generation/condvar protocol is
// race-free.
TEST(ChunkBarrier, HammerParallelForAndReduce) {
  ParallelContext team(4, test_team_options());
  ASSERT_GE(team.team_size(), 1u);

  std::vector<double> slots(997, 0.0);  // prime size: ragged chunks
  for (int round = 0; round < 200; ++round) {
    const double mark = static_cast<double>(round + 1);
    team.parallel_for(slots.size(), [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) slots[i] = mark + static_cast<double>(i);
    });
    for (std::size_t i = 0; i < slots.size(); ++i) {
      ASSERT_EQ(slots[i], mark + static_cast<double>(i));
    }

    const double sum = team.reduce(slots.size(), [&](std::size_t b, std::size_t e) {
      double s = 0.0;
      for (std::size_t i = b; i < e; ++i) s += slots[i];
      return s;
    });
    EXPECT_GT(sum, 0.0);
  }
}

TEST(ChunkBarrier, ReduceIsTeamSizeInvariant) {
  std::vector<double> data(1013);
  Xoshiro256 rng(71);
  for (auto& x : data) x = rng.uniform(-1.0, 1.0);

  auto reduce_with = [&](std::size_t team_size) {
    ParallelContext team(team_size, test_team_options());
    return team.reduce(data.size(), [&](std::size_t b, std::size_t e) {
      double s = 0.0;
      for (std::size_t i = b; i < e; ++i) s += data[i];
      return s;
    });
  };
  const double one = reduce_with(1);
  const double two = reduce_with(2);
  const double four = reduce_with(4);
  EXPECT_EQ(std::memcmp(&one, &two, sizeof one), 0);
  EXPECT_EQ(std::memcmp(&one, &four, sizeof one), 0);
}

TEST(ChunkBarrier, NonLeaderCallsRunInline) {
  ParallelContext team(4, test_team_options());
  std::vector<double> slots(64, 0.0);
  std::thread outsider([&] {
    team.parallel_for(slots.size(), [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) slots[i] = 1.0;
    });
  });
  outsider.join();
  for (const double v : slots) EXPECT_EQ(v, 1.0);
}

}  // namespace
