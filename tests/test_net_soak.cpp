// Tier-2 soak of the TCP substrate with real forked worker processes: a
// 4-process × 200-task frame soak under seeded frame faults, fd-leak
// accounting, and solver runs over fork+TCP that must stay bit-identical to
// the threaded backend both fault-free and under a seeded frame-fault plan.
//
// Everything here forks, so the suite is labeled tier2 and each test forks
// its workers *before* the endpoint (and hence any thread) exists.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/concurrent_solver.hpp"
#include "core/remote_worker.hpp"
#include "net/remote.hpp"
#include "net/socket.hpp"
#include "soak_util.hpp"
#include "transport/seq_solver.hpp"

namespace {

using namespace mg;
using namespace std::chrono_literals;
using mg::tests::open_fd_count;

/// The deterministic per-task transform the echo workers apply, mirrored on
/// the master side to check results: reverse the payload and add the task
/// ordinal to every byte.
std::vector<std::uint8_t> expected_reply(const std::vector<std::uint8_t>& work) {
  std::vector<std::uint8_t> reply(work.rbegin(), work.rend());
  for (auto& b : reply) b = static_cast<std::uint8_t>(b + work.size() % 251);
  return reply;
}

int run_echo_worker(const std::string& host, std::uint16_t port) {
  return net::run_worker_loop(host, port, [](const std::vector<std::uint8_t>& work) {
    return expected_reply(work);
  });
}

std::vector<std::uint8_t> task_payload(int task) {
  std::vector<std::uint8_t> work(64 + task % 191);
  for (std::size_t i = 0; i < work.size(); ++i) {
    work[i] = static_cast<std::uint8_t>((task * 131 + i * 7) & 0xFF);
  }
  return work;
}

TEST(NetSoak, FourProcessesTwoHundredTasksUnderFrameFaultsLeakNoFds) {
  const std::size_t fds_before = open_fd_count();
  {
    net::TcpListener listener("127.0.0.1", 0);
    const std::uint16_t port = listener.port();
    const auto pids = net::fork_worker_processes(4, [&listener, port] {
      listener.close();
      return run_echo_worker("127.0.0.1", port);
    });

    fault::FaultPlanConfig fault_config;
    fault_config.seed = 20040;
    fault_config.net_drop = 0.05;
    fault_config.net_truncate = 0.05;
    fault_config.net_slow = 0.10;
    fault_config.net_delay = 5ms;
    const fault::FaultPlan plan(fault_config);

    net::RemoteEndpointConfig config;
    config.round_trip_deadline = 500ms;
    config.faults = &plan;
    net::RemoteEndpoint endpoint(std::move(listener), config);
    ASSERT_TRUE(endpoint.wait_for_workers(4, 15s));

    // 4 client threads × 50 tasks; a faulted trip fails and is retried with
    // the same payload (consuming a fresh transfer ordinal), exactly like the
    // proxy workers' crash/retry path, so every task must eventually land.
    std::atomic<int> wrong{0};
    std::atomic<int> exhausted{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < 4; ++t) {
      clients.emplace_back([&endpoint, &wrong, &exhausted, t] {
        for (int i = 0; i < 50; ++i) {
          const auto work = task_payload(t * 50 + i);
          net::RemoteEndpoint::RoundTrip trip;
          bool done = false;
          for (int attempt = 0; attempt < 20 && !done; ++attempt) {
            trip = endpoint.round_trip(work);
            done = trip.ok;
          }
          if (!done) {
            exhausted.fetch_add(1);
          } else if (trip.payload != expected_reply(work)) {
            wrong.fetch_add(1);
          }
        }
      });
    }
    for (auto& c : clients) c.join();

    EXPECT_EQ(wrong.load(), 0);
    EXPECT_EQ(exhausted.load(), 0);

    const net::RemoteCounters counters = endpoint.counters();
    EXPECT_GE(counters.round_trips_ok, 200u);
    // The seed must actually have exercised all three frame-fault kinds.
    EXPECT_GT(counters.faults_dropped, 0u);
    EXPECT_GT(counters.faults_truncated, 0u);
    EXPECT_GT(counters.faults_delayed, 0u);
    // Every injected drop/truncate killed its channel and failed its trip;
    // every failed trip was retried to success above.  (Reconnects lag the
    // closes — a worker whose channel just died may not be back yet when
    // this snapshot is taken — so only a lower bound is asserted there.)
    EXPECT_GE(counters.round_trips_failed,
              counters.faults_dropped + counters.faults_truncated);
    EXPECT_GT(counters.reconnects, 0u);

    endpoint.shutdown();
    EXPECT_EQ(net::wait_worker_processes(pids), 0);
  }
  // Listener, channels, event-loop self-pipe, worker pipes: all returned.
  EXPECT_EQ(open_fd_count(), fds_before);
}

TEST(NetSoak, PipelinedFourDeepTwoHundredTasksUnderFrameFaultsLeakNoFds) {
  // The pipelined variant of the soak above: 8 client threads against 4
  // forked workers with an explicit depth-4 window, so every channel runs
  // with multiple seq-tagged frames in flight while the fault plan drops,
  // truncates and delays frames mid-window.  Same obligations: every task
  // lands (retried through faults), every reply matches, no fd leaks.
  const std::size_t fds_before = open_fd_count();
  {
    net::TcpListener listener("127.0.0.1", 0);
    const std::uint16_t port = listener.port();
    const auto pids = net::fork_worker_processes(4, [&listener, port] {
      listener.close();
      return run_echo_worker("127.0.0.1", port);
    });

    fault::FaultPlanConfig fault_config;
    fault_config.seed = 20041;
    fault_config.net_drop = 0.05;
    fault_config.net_truncate = 0.05;
    fault_config.net_slow = 0.10;
    fault_config.net_delay = 5ms;
    const fault::FaultPlan plan(fault_config);

    net::RemoteEndpointConfig config;
    config.round_trip_deadline = 500ms;
    config.faults = &plan;
    config.elastic.pipeline_depth = 4;
    net::RemoteEndpoint endpoint(std::move(listener), config);
    ASSERT_TRUE(endpoint.wait_for_workers(4, 15s));

    std::atomic<int> wrong{0};
    std::atomic<int> exhausted{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < 8; ++t) {
      clients.emplace_back([&endpoint, &wrong, &exhausted, t] {
        for (int i = 0; i < 25; ++i) {
          const auto work = task_payload(t * 25 + i);
          net::RemoteEndpoint::RoundTrip trip;
          bool done = false;
          for (int attempt = 0; attempt < 20 && !done; ++attempt) {
            trip = endpoint.round_trip(work);
            done = trip.ok;
          }
          if (!done) {
            exhausted.fetch_add(1);
          } else if (trip.payload != expected_reply(work)) {
            wrong.fetch_add(1);
          }
        }
      });
    }
    for (auto& c : clients) c.join();

    EXPECT_EQ(wrong.load(), 0);
    EXPECT_EQ(exhausted.load(), 0);

    const net::RemoteCounters counters = endpoint.counters();
    EXPECT_GE(counters.round_trips_ok, 200u);
    EXPECT_GT(counters.faults_dropped, 0u);
    EXPECT_GT(counters.faults_truncated, 0u);
    EXPECT_GT(counters.faults_delayed, 0u);
    // A dropped frame's deadline (and a truncate's close) fails not just its
    // own trip but every other lease riding the same channel — those are
    // requeued or failed and retried — so failures may exceed injections,
    // never undercut them.
    EXPECT_GE(counters.round_trips_failed,
              counters.faults_dropped + counters.faults_truncated);
    EXPECT_GT(counters.reconnects, 0u);

    endpoint.shutdown();
    EXPECT_EQ(net::wait_worker_processes(pids), 0);
  }
  EXPECT_EQ(open_fd_count(), fds_before);
}

// ---- solver bit-identity over real fork + TCP ---------------------------------------

transport::ProgramConfig soak_program() {
  transport::ProgramConfig program;
  program.root = 2;
  program.level = 2;
  return program;
}

TEST(NetSoak, SolverOverForkedTcpWorkersIsBitIdenticalToThreadedBackend) {
  const auto program = soak_program();
  const auto seq = transport::solve_sequential(program);
  const auto threaded = mw::solve_concurrent(program, {});

  net::TcpListener listener("127.0.0.1", 0);
  const std::uint16_t port = listener.port();
  const auto pids = net::fork_worker_processes(4, [&listener, port] {
    listener.close();
    return mw::run_subsolve_worker("127.0.0.1", port);
  });
  net::RemoteEndpoint endpoint(std::move(listener));
  ASSERT_TRUE(endpoint.wait_for_workers(4, 15s));

  mw::ConcurrentOptions options;
  options.remote = &endpoint;
  options.retry = fault::RetryPolicy{};  // TCP failures surface as crashes
  const auto remote = mw::solve_concurrent(program, options);

  EXPECT_EQ(remote.solve.combined.max_diff(seq.combined), 0.0);
  EXPECT_EQ(remote.solve.combined.max_diff(threaded.solve.combined), 0.0);
  EXPECT_EQ(endpoint.counters().round_trips_failed, 0u);

  endpoint.shutdown();
  EXPECT_EQ(net::wait_worker_processes(pids), 0);
}

TEST(NetSoak, SolverOverFaultyTcpRetriesAndStaysBitIdentical) {
  const auto program = soak_program();
  const auto seq = transport::solve_sequential(program);

  net::TcpListener listener("127.0.0.1", 0);
  const std::uint16_t port = listener.port();
  const auto pids = net::fork_worker_processes(4, [&listener, port] {
    listener.close();
    return mw::run_subsolve_worker("127.0.0.1", port);
  });

  fault::FaultPlanConfig fault_config;
  fault_config.seed = 7;
  fault_config.net_drop = 0.2;
  fault_config.net_truncate = 0.15;
  fault_config.net_slow = 0.2;
  fault_config.net_delay = 30ms;
  const fault::FaultPlan plan(fault_config);

  net::RemoteEndpointConfig config;
  config.round_trip_deadline = 2000ms;
  config.faults = &plan;
  net::RemoteEndpoint endpoint(std::move(listener), config);
  ASSERT_TRUE(endpoint.wait_for_workers(4, 15s));

  mw::ConcurrentOptions options;
  options.remote = &endpoint;
  options.retry = fault::RetryPolicy{};
  options.retry->max_attempts = 10;
  options.retry->backoff_initial = 2ms;
  const auto remote = mw::solve_concurrent(program, options);

  EXPECT_EQ(remote.solve.combined.max_diff(seq.combined), 0.0);
  EXPECT_EQ(remote.protocol.faults.abandoned, 0u);

  endpoint.shutdown();
  EXPECT_EQ(net::wait_worker_processes(pids), 0);
}

TEST(NetSoak, DegradedRemotePoolOverFaultyTcpFallsBackToLocalRecompute) {
  // respawn_budget 0 + every Work frame dropped: every slot is abandoned on
  // its first failure and the master recomputes all grids locally — over a
  // real forked transport, the WorkAbandoned slot→term mapping (LPT order)
  // must still come out bit-exact.
  const auto program = soak_program();
  const auto seq = transport::solve_sequential(program);

  net::TcpListener listener("127.0.0.1", 0);
  const std::uint16_t port = listener.port();
  const auto pids = net::fork_worker_processes(2, [&listener, port] {
    listener.close();
    return mw::run_subsolve_worker("127.0.0.1", port);
  });

  fault::FaultPlanConfig fault_config;
  fault_config.seed = 13;
  fault_config.net_drop = 1.0;
  const fault::FaultPlan plan(fault_config);

  net::RemoteEndpointConfig config;
  config.round_trip_deadline = 200ms;
  config.faults = &plan;
  net::RemoteEndpoint endpoint(std::move(listener), config);
  ASSERT_TRUE(endpoint.wait_for_workers(2, 15s));

  mw::ConcurrentOptions options;
  options.remote = &endpoint;
  options.lpt_schedule = true;
  options.retry = fault::RetryPolicy{};
  options.retry->max_attempts = 1;
  options.retry->respawn_budget = 0;
  const auto remote = mw::solve_concurrent(program, options);

  EXPECT_TRUE(remote.protocol.faults.degraded);
  EXPECT_GT(remote.protocol.faults.abandoned, 0u);
  EXPECT_EQ(remote.solve.combined.max_diff(seq.combined), 0.0);

  endpoint.shutdown();
  EXPECT_EQ(net::wait_worker_processes(pids), 0);
}

}  // namespace
