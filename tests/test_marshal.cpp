// Tests for the byte codec and the master/worker unit marshalling, including
// the end-to-end claim: results remain bit-identical to the sequential run
// even when every unit crosses a (simulated) wire.
#include <gtest/gtest.h>

#include "core/concurrent_solver.hpp"
#include "core/marshal.hpp"
#include "support/bytes.hpp"
#include "transport/seq_solver.hpp"
#include "transport/subsolve.hpp"

namespace {

using namespace mg;
using support::ByteReader;
using support::ByteWriter;
using support::DecodeError;

// ---- byte writer/reader -----------------------------------------------------------

TEST(Bytes, ScalarsRoundTrip) {
  ByteWriter w;
  w.write_u64(0xDEADBEEFCAFEF00DULL);
  w.write_i64(-42);
  w.write_i32(-7);
  w.write_f64(3.14159);
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_EQ(r.read_u64(), 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(r.read_i64(), -42);
  EXPECT_EQ(r.read_i32(), -7);
  EXPECT_DOUBLE_EQ(r.read_f64(), 3.14159);
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, DoublesAreBitExact) {
  // Exact bit pattern round-trip, including NaN payload and denormals.
  const double values[] = {0.0, -0.0, 1e-308, std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::quiet_NaN(), 0.1};
  ByteWriter w;
  for (double v : values) w.write_f64(v);
  const auto bytes = w.take();
  ByteReader r(bytes);
  for (double v : values) {
    std::uint64_t expected, actual;
    const double got = r.read_f64();
    std::memcpy(&expected, &v, 8);
    std::memcpy(&actual, &got, 8);
    EXPECT_EQ(actual, expected);
  }
}

TEST(Bytes, StringsAndArraysRoundTrip) {
  ByteWriter w;
  w.write_string("bumpa.sen.cwi.nl");
  w.write_string("");
  w.write_doubles({1.0, 2.0, 3.0});
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_EQ(r.read_string(), "bumpa.sen.cwi.nl");
  EXPECT_EQ(r.read_string(), "");
  EXPECT_EQ(r.read_doubles(), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(Bytes, TruncatedInputThrows) {
  ByteWriter w;
  w.write_u64(1);
  auto bytes = w.take();
  bytes.pop_back();
  ByteReader r(bytes);
  EXPECT_THROW(r.read_u64(), DecodeError);
}

TEST(Bytes, CorruptLengthPrefixThrows) {
  ByteWriter w;
  w.write_u64(1'000'000);  // claims a million entries with no data behind it
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_THROW(r.read_doubles(), DecodeError);
}

// ---- work/result items --------------------------------------------------------------

TEST(Marshal, WorkItemRoundTrips) {
  transport::SubsolveConfig kernel;
  kernel.le_tol = 1e-4;
  kernel.system.scheme = transport::AdvectionScheme::ThirdOrderKoren;
  kernel.system.solver = transport::StageSolverKind::BiCgStabIlu0;
  const mw::WorkItem item{7, 2, 3, 1, kernel};
  const mw::WorkItem back = mw::decode_work_item(mw::encode_work_item(item));
  EXPECT_EQ(back.index, 7u);
  EXPECT_EQ(back.root, 2);
  EXPECT_EQ(back.lx, 3);
  EXPECT_EQ(back.ly, 1);
  EXPECT_EQ(back.config.le_tol, 1e-4);
  EXPECT_EQ(back.config.system.scheme, transport::AdvectionScheme::ThirdOrderKoren);
  EXPECT_EQ(back.config.system.solver, transport::StageSolverKind::BiCgStabIlu0);
  EXPECT_EQ(back.config.problem.ax, item.config.problem.ax);
}

TEST(Marshal, ResultItemRoundTripsBitExactly) {
  mw::ResultItem item{3, {0.1, -2.5, 1e-300, 42.0}, {}, 1.25};
  item.stats.accepted = 17;
  item.stats.stage_solves = 34;
  const mw::ResultItem back = mw::decode_result_item(mw::encode_result_item(item));
  EXPECT_EQ(back.index, 3u);
  EXPECT_EQ(back.node_data, item.node_data);
  EXPECT_EQ(back.stats.accepted, 17u);
  EXPECT_EQ(back.stats.stage_solves, 34u);
  EXPECT_DOUBLE_EQ(back.elapsed_seconds, 1.25);
}

TEST(Marshal, WireSizeMatchesEncoding) {
  mw::ResultItem item{0, std::vector<double>(grid::Grid2D(2, 2, 1).node_count(), 1.0), {}, 0.0};
  EXPECT_EQ(mw::encode_result_item(item).size(), mw::result_wire_bytes(2, 2, 1));
}

TEST(Marshal, PayloadEstimateIsTheRightScale) {
  // The network model's payload estimate must track the true wire size
  // within a factor of two (it is dominated by the nodal array either way).
  for (int lx : {1, 3}) {
    for (int ly : {0, 4}) {
      const auto estimate = transport::subsolve_payload_bytes(grid::Grid2D(2, lx, ly));
      const auto actual = mw::result_wire_bytes(2, lx, ly);
      EXPECT_LT(estimate, 2 * actual);
      EXPECT_LT(actual, 2 * estimate);
    }
  }
}

TEST(Marshal, SolverThroughWireIsStillBitExact) {
  transport::ProgramConfig program;
  program.level = 3;
  const auto seq = transport::solve_sequential(program);
  mw::ConcurrentOptions options;
  options.marshal_through_bytes = true;
  const auto conc = mw::solve_concurrent(program, options);
  EXPECT_EQ(conc.solve.combined.max_diff(seq.combined), 0.0);
}

}  // namespace
