// Tests for the byte codec and the master/worker unit marshalling, including
// the end-to-end claim: results remain bit-identical to the sequential run
// even when every unit crosses a (simulated) wire — plus the property/fuzz
// suite the real TCP transport demands: a decoder fed hostile bytes (the
// frame layer's CRC can miss a coordinated corruption; an attacker-shaped
// length prefix can't be ruled out) must reject, never crash.
#include <gtest/gtest.h>

#include "core/concurrent_solver.hpp"
#include "core/marshal.hpp"
#include "net/frame.hpp"
#include "obs/telemetry.hpp"
#include "support/bytes.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "transport/seq_solver.hpp"
#include "transport/subsolve.hpp"

namespace {

using namespace mg;
using support::ByteReader;
using support::ByteWriter;
using support::DecodeError;

// ---- byte writer/reader -----------------------------------------------------------

TEST(Bytes, ScalarsRoundTrip) {
  ByteWriter w;
  w.write_u64(0xDEADBEEFCAFEF00DULL);
  w.write_i64(-42);
  w.write_i32(-7);
  w.write_f64(3.14159);
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_EQ(r.read_u64(), 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(r.read_i64(), -42);
  EXPECT_EQ(r.read_i32(), -7);
  EXPECT_DOUBLE_EQ(r.read_f64(), 3.14159);
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, DoublesAreBitExact) {
  // Exact bit pattern round-trip, including NaN payload and denormals.
  const double values[] = {0.0, -0.0, 1e-308, std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::quiet_NaN(), 0.1};
  ByteWriter w;
  for (double v : values) w.write_f64(v);
  const auto bytes = w.take();
  ByteReader r(bytes);
  for (double v : values) {
    std::uint64_t expected, actual;
    const double got = r.read_f64();
    std::memcpy(&expected, &v, 8);
    std::memcpy(&actual, &got, 8);
    EXPECT_EQ(actual, expected);
  }
}

TEST(Bytes, StringsAndArraysRoundTrip) {
  ByteWriter w;
  w.write_string("bumpa.sen.cwi.nl");
  w.write_string("");
  w.write_doubles({1.0, 2.0, 3.0});
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_EQ(r.read_string(), "bumpa.sen.cwi.nl");
  EXPECT_EQ(r.read_string(), "");
  EXPECT_EQ(r.read_doubles(), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(Bytes, TruncatedInputThrows) {
  ByteWriter w;
  w.write_u64(1);
  auto bytes = w.take();
  bytes.pop_back();
  ByteReader r(bytes);
  EXPECT_THROW(r.read_u64(), DecodeError);
}

TEST(Bytes, CorruptLengthPrefixThrows) {
  ByteWriter w;
  w.write_u64(1'000'000);  // claims a million entries with no data behind it
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_THROW(r.read_doubles(), DecodeError);
}

// ---- work/result items --------------------------------------------------------------

TEST(Marshal, WorkItemRoundTrips) {
  transport::SubsolveConfig kernel;
  kernel.le_tol = 1e-4;
  kernel.system.scheme = transport::AdvectionScheme::ThirdOrderKoren;
  kernel.system.solver = transport::StageSolverKind::BiCgStabIlu0;
  const mw::WorkItem item{7, 2, 3, 1, kernel};
  const mw::WorkItem back = mw::decode_work_item(mw::encode_work_item(item));
  EXPECT_EQ(back.index, 7u);
  EXPECT_EQ(back.root, 2);
  EXPECT_EQ(back.lx, 3);
  EXPECT_EQ(back.ly, 1);
  EXPECT_EQ(back.config.le_tol, 1e-4);
  EXPECT_EQ(back.config.system.scheme, transport::AdvectionScheme::ThirdOrderKoren);
  EXPECT_EQ(back.config.system.solver, transport::StageSolverKind::BiCgStabIlu0);
  EXPECT_EQ(back.config.problem.ax, item.config.problem.ax);
}

TEST(Marshal, ResultItemRoundTripsBitExactly) {
  mw::ResultItem item{3, {0.1, -2.5, 1e-300, 42.0}, {}, 1.25};
  item.stats.accepted = 17;
  item.stats.stage_solves = 34;
  const mw::ResultItem back = mw::decode_result_item(mw::encode_result_item(item));
  EXPECT_EQ(back.index, 3u);
  EXPECT_EQ(back.node_data, item.node_data);
  EXPECT_EQ(back.stats.accepted, 17u);
  EXPECT_EQ(back.stats.stage_solves, 34u);
  EXPECT_DOUBLE_EQ(back.elapsed_seconds, 1.25);
}

TEST(Marshal, WireSizeMatchesEncoding) {
  mw::ResultItem item{0, std::vector<double>(grid::Grid2D(2, 2, 1).node_count(), 1.0), {}, 0.0};
  EXPECT_EQ(mw::encode_result_item(item).size(), mw::result_wire_bytes(2, 2, 1));
}

TEST(Marshal, PayloadEstimateIsTheRightScale) {
  // The network model's payload estimate must track the true wire size
  // within a factor of two (it is dominated by the nodal array either way).
  for (int lx : {1, 3}) {
    for (int ly : {0, 4}) {
      const auto estimate = transport::subsolve_payload_bytes(grid::Grid2D(2, lx, ly));
      const auto actual = mw::result_wire_bytes(2, lx, ly);
      EXPECT_LT(estimate, 2 * actual);
      EXPECT_LT(actual, 2 * estimate);
    }
  }
}

// ---- property/fuzz suite ------------------------------------------------------------

// Random doubles with arbitrary bit patterns (including NaNs, infinities and
// denormals), not just uniform values: the codec must be a bijection on the
// raw 64-bit payloads.
double bits_to_double(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

mw::WorkItem random_work_item(support::Xoshiro256& rng) {
  mw::WorkItem item{};
  item.index = rng.below(1u << 20);
  item.root = static_cast<int>(rng.below(6)) + 1;
  item.lx = static_cast<int>(rng.below(6));
  item.ly = static_cast<int>(rng.below(6));
  auto& k = item.config;
  k.problem.ax = bits_to_double(rng.next());
  k.problem.ay = bits_to_double(rng.next());
  k.problem.eps = rng.uniform(1e-6, 1.0);
  k.problem.x0 = rng.uniform01();
  k.problem.y0 = rng.uniform01();
  k.problem.sigma = bits_to_double(rng.next());
  k.problem.amplitude = bits_to_double(rng.next());
  k.system.scheme = static_cast<transport::AdvectionScheme>(rng.below(3));
  k.system.solver = static_cast<transport::StageSolverKind>(rng.below(3));
  k.system.krylov.rel_tol = rng.uniform(1e-12, 1e-2);
  k.system.krylov.abs_tol = rng.uniform(1e-14, 1e-4);
  k.system.krylov.max_iter = rng.below(10'000);
  k.system.cache_stage = rng.below(2) == 1;
  k.system.warm_start = rng.below(2) == 1;
  k.le_tol = bits_to_double(rng.next());
  k.t0 = rng.uniform01();
  k.t1 = rng.uniform(1.0, 2.0);
  return item;
}

mw::ResultItem random_result_item(support::Xoshiro256& rng) {
  mw::ResultItem item{};
  item.index = rng.below(1u << 20);
  item.node_data.resize(rng.below(65));
  for (double& x : item.node_data) x = bits_to_double(rng.next());
  item.stats.accepted = rng.below(1'000);
  item.stats.rejected = rng.below(1'000);
  item.stats.rhs_evaluations = rng.below(100'000);
  item.stats.stage_preparations = rng.below(10'000);
  item.stats.stage_solves = rng.below(10'000);
  item.stats.final_h = bits_to_double(rng.next());
  item.elapsed_seconds = bits_to_double(rng.next());
  return item;
}

TEST(MarshalFuzz, TenThousandSeededRoundTripsAreBitExact) {
  // encode -> decode -> re-encode must reproduce the exact byte string; the
  // byte-level comparison sidesteps NaN != NaN while still proving every
  // payload bit survived both directions.
  support::Xoshiro256 rng(20040916);
  for (int trial = 0; trial < 5000; ++trial) {
    const auto work_bytes = mw::encode_work_item(random_work_item(rng));
    EXPECT_EQ(mw::encode_work_item(mw::decode_work_item(work_bytes)), work_bytes)
        << "work item trial " << trial;
    const auto result_bytes = mw::encode_result_item(random_result_item(rng));
    EXPECT_EQ(mw::encode_result_item(mw::decode_result_item(result_bytes)), result_bytes)
        << "result item trial " << trial;
  }
}

TEST(MarshalFuzz, EveryTruncationRejectsWithoutCrashing) {
  support::Xoshiro256 rng(7);
  const auto work_bytes = mw::encode_work_item(random_work_item(rng));
  const auto result_bytes = mw::encode_result_item(random_result_item(rng));
  for (std::size_t len = 0; len < work_bytes.size(); ++len) {
    const std::vector<std::uint8_t> cut(work_bytes.begin(),
                                        work_bytes.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(mw::decode_work_item(cut), std::exception) << "work prefix " << len;
  }
  for (std::size_t len = 0; len < result_bytes.size(); ++len) {
    const std::vector<std::uint8_t> cut(result_bytes.begin(),
                                        result_bytes.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(mw::decode_result_item(cut), std::exception) << "result prefix " << len;
  }
}

TEST(MarshalFuzz, BitFlippedBuffersRejectOrDecodeNeverCrash) {
  // Flip one random bit per trial.  Depending on where it lands the decode
  // may legitimately succeed (a mutated double payload) or must reject
  // (DecodeError / ContractViolation); what it may never do is crash, hang,
  // or throw an unrelated type.  Runs the work and result codecs 5k trials
  // each — together with the round-trip suite this is the 10k-trial fuzz
  // budget.
  support::Xoshiro256 rng(424242);
  for (int trial = 0; trial < 5000; ++trial) {
    auto work_bytes = mw::encode_work_item(random_work_item(rng));
    work_bytes[rng.below(work_bytes.size())] ^=
        static_cast<std::uint8_t>(1u << rng.below(8));
    try {
      (void)mw::decode_work_item(work_bytes);
    } catch (const support::DecodeError&) {
    } catch (const support::ContractViolation&) {
    }

    auto result_bytes = mw::encode_result_item(random_result_item(rng));
    result_bytes[rng.below(result_bytes.size())] ^=
        static_cast<std::uint8_t>(1u << rng.below(8));
    try {
      (void)mw::decode_result_item(result_bytes);
    } catch (const support::DecodeError&) {
    } catch (const support::ContractViolation&) {
    }
  }
}

TEST(MarshalFuzz, OverflowingLengthPrefixIsRejected) {
  // Regression: a length prefix of 2^61 used to wrap the `n * 8` bound check
  // around to zero and send a multi-exabyte resize into std::vector.  The
  // divide-based check must reject it as a DecodeError instead.
  ByteWriter w;
  w.write_u64(0x2000000000000000ULL);
  w.write_f64(1.0);
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_THROW(r.read_doubles(), DecodeError);

  // Same shape through the public result codec: index, then hostile length.
  ByteWriter rw;
  rw.write_u64(0);
  rw.write_u64(0x2000000000000001ULL);
  EXPECT_THROW(mw::decode_result_item(rw.take()), DecodeError);
}

TEST(MarshalFuzz, OutOfRangeEnumsAreRejected) {
  support::Xoshiro256 rng(99);
  const auto valid = mw::encode_work_item(random_work_item(rng));
  // scheme lives right after index(8) + root/lx/ly(12) + seven f64s(56).
  const std::size_t scheme_off = 8 + 12 + 56;
  auto bad_scheme = valid;
  bad_scheme[scheme_off] = 0x7F;
  EXPECT_THROW(mw::decode_work_item(bad_scheme), DecodeError);
  auto bad_solver = valid;
  bad_solver[scheme_off + 4] = 0xFF;  // solver = 255, far out of range
  EXPECT_THROW(mw::decode_work_item(bad_solver), DecodeError);
}

// ---- pipelined stream fuzz ----------------------------------------------------------
//
// With N-in-flight dispatch the master coalesces several frames into one
// write and the worker's decoder sees them as a single TCP stream, cut
// wherever the kernel pleases.  These cases pin the decoder's behaviour on
// exactly those streams: every split point reassembles, interleaved plain
// results and telemetry envelopes come out in order, and a stream truncated
// mid-queue yields the complete prefix and then waits — reject on
// corruption, never crash.

std::vector<std::uint8_t> pipelined_stream(const std::vector<net::Frame>& frames) {
  std::vector<std::uint8_t> stream;
  for (const auto& f : frames) {
    const auto bytes = net::encode_frame(f.header.type, f.header.seq, f.payload);
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }
  return stream;
}

std::vector<net::Frame> window_of_work_frames() {
  std::vector<net::Frame> frames;
  for (std::uint64_t seq = 1; seq <= 4; ++seq) {
    net::Frame f;
    f.header.type = net::FrameType::Work;
    f.header.seq = seq;
    f.payload.assign(seq * 37, static_cast<std::uint8_t>(0xA0 + seq));
    frames.push_back(std::move(f));
  }
  return frames;
}

TEST(PipelinedStreamFuzz, CoalescedWindowSurvivesEverySplitPoint) {
  const auto frames = window_of_work_frames();
  const auto stream = pipelined_stream(frames);
  for (std::size_t split = 0; split <= stream.size(); ++split) {
    net::FrameDecoder decoder;
    decoder.feed(stream.data(), split);
    std::vector<net::Frame> got;
    while (auto f = decoder.next()) got.push_back(std::move(*f));
    decoder.feed(stream.data() + split, stream.size() - split);
    while (auto f = decoder.next()) got.push_back(std::move(*f));
    ASSERT_EQ(got.size(), frames.size()) << "split " << split;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      EXPECT_EQ(got[i].header.seq, frames[i].header.seq) << "split " << split;
      EXPECT_EQ(got[i].payload, frames[i].payload) << "split " << split;
    }
    EXPECT_EQ(decoder.buffered(), 0u);
  }
}

TEST(PipelinedStreamFuzz, InterleavedResultAndTelemetryEnvelopesDecodeInOrder) {
  // Out-of-order completion interleaves plain Results with enveloped ones on
  // the same stream; the envelope layer must come apart per frame.
  obs::TelemetryBatch batch;
  batch.worker_pid = 4242;
  batch.counters.push_back({"net.test_counter", 3});
  const auto telemetry = obs::encode_telemetry_batch(batch);

  std::vector<net::Frame> frames;
  for (std::uint64_t seq : {7u, 3u, 9u, 5u}) {
    net::Frame f;
    f.header.type = net::FrameType::Result;
    f.header.seq = seq;
    const std::vector<std::uint8_t> result(seq, static_cast<std::uint8_t>(seq));
    // Odd seqs travel enveloped, even seqs plain — as when only some Work
    // frames carried a trace context.
    f.payload = (seq % 2 == 1) ? obs::wrap_result(telemetry, result) : result;
    frames.push_back(std::move(f));
  }
  const auto stream = pipelined_stream(frames);

  net::FrameDecoder decoder;
  decoder.feed(stream.data(), stream.size());
  for (std::uint64_t seq : {7u, 3u, 9u, 5u}) {
    const auto f = decoder.next();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->header.seq, seq);
    const std::vector<std::uint8_t> expected(seq, static_cast<std::uint8_t>(seq));
    if (seq % 2 == 1) {
      const obs::ResultEnvelope env = obs::unwrap_result(f->payload);
      EXPECT_EQ(env.result, expected);
      EXPECT_EQ(obs::decode_telemetry_batch(env.telemetry).worker_pid, 4242u);
    } else {
      EXPECT_EQ(f->payload, expected);
    }
  }
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(PipelinedStreamFuzz, TruncationMidQueueYieldsTheCompletePrefixThenWaits) {
  const auto frames = window_of_work_frames();
  const auto stream = pipelined_stream(frames);
  // Frame boundaries, to know how many complete frames each cut contains.
  std::vector<std::size_t> ends;
  std::size_t off = 0;
  for (const auto& f : frames) {
    off += net::FrameHeader::kWireSize + f.payload.size();
    ends.push_back(off);
  }
  for (std::size_t len = 0; len < stream.size(); ++len) {
    net::FrameDecoder decoder;
    decoder.feed(stream.data(), len);
    std::size_t complete = 0;
    while (ends[complete] <= len) ++complete;
    for (std::size_t i = 0; i < complete; ++i) {
      const auto f = decoder.next();
      ASSERT_TRUE(f.has_value()) << "cut " << len;
      EXPECT_EQ(f->header.seq, frames[i].header.seq);
    }
    // The tail is an incomplete frame: not an error, just not done yet.
    EXPECT_FALSE(decoder.next().has_value()) << "cut " << len;
  }
}

TEST(PipelinedStreamFuzz, CorruptedStreamsRejectOrDecodeNeverCrash) {
  // One flipped bit anywhere in a pipelined stream, delivered in seeded
  // random fragments: each trial must end in either a clean decode of some
  // frame prefix or a FrameError — nothing else, and never a crash.  5k
  // seeded trials.
  support::Xoshiro256 rng(20260809);
  const auto frames = window_of_work_frames();
  const auto pristine = pipelined_stream(frames);
  for (int trial = 0; trial < 5000; ++trial) {
    auto stream = pristine;
    stream[rng.below(stream.size())] ^= static_cast<std::uint8_t>(1u << rng.below(8));
    net::FrameDecoder decoder;
    std::size_t fed = 0;
    bool rejected = false;
    std::size_t decoded = 0;
    try {
      while (fed < stream.size()) {
        const std::size_t chunk =
            std::min<std::size_t>(1 + rng.below(48), stream.size() - fed);
        decoder.feed(stream.data() + fed, chunk);
        fed += chunk;
        while (decoder.next()) ++decoded;
      }
    } catch (const net::FrameError&) {
      rejected = true;  // the CRCs caught it
    }
    // A flip inside a payload that both CRCs happen to cover is impossible —
    // the payload CRC sees every payload byte — so either the stream decoded
    // fully before the flip's frame, or it was rejected.
    EXPECT_TRUE(rejected || decoded < frames.size())
        << "trial " << trial << " decoded a corrupt stream in full";
  }
}

TEST(PipelinedStreamFuzz, EnvelopeSizePrefixBeyondThePayloadIsRejected) {
  // Envelope corruption (as opposed to telemetry-blob corruption) must fail
  // the trip: a size prefix pointing past the payload cannot be half-read.
  // u32 size prefix claims ~2 GiB of telemetry; one byte follows it.
  const std::vector<std::uint8_t> payload{0xFF, 0xFF, 0xFF, 0x7F, 0x00};
  EXPECT_THROW(obs::unwrap_result(payload), DecodeError);
}

TEST(Marshal, SolverThroughWireIsStillBitExact) {
  transport::ProgramConfig program;
  program.level = 3;
  const auto seq = transport::solve_sequential(program);
  mw::ConcurrentOptions options;
  options.marshal_through_bytes = true;
  const auto conc = mw::solve_concurrent(program, options);
  EXPECT_EQ(conc.solve.combined.max_diff(seq.combined), 0.0);
}

}  // namespace
