// Tests for the discrete-event engine, the max-plus timelines, the §6 trace
// format, and the ebb & flow analysis behind Figure 1 / Table 1's m column.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/timeline.hpp"
#include "support/check.hpp"
#include "trace/ebb_flow.hpp"
#include "trace/trace_log.hpp"

namespace {

using namespace mg;
using mg::support::ContractViolation;

// ---- SimEngine ---------------------------------------------------------------

TEST(SimEngine, ExecutesInTimeOrder) {
  sim::SimEngine engine;
  std::vector<int> order;
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(3.0, [&] { order.push_back(3); });
  EXPECT_EQ(engine.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

TEST(SimEngine, SimultaneousEventsAreFifo) {
  sim::SimEngine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimEngine, HandlersCanScheduleMoreEvents) {
  sim::SimEngine engine;
  int fired = 0;
  engine.schedule_at(1.0, [&] {
    ++fired;
    engine.schedule_in(1.0, [&] { ++fired; });
  });
  engine.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(engine.now(), 2.0);
}

TEST(SimEngine, SchedulingInThePastIsRejected) {
  sim::SimEngine engine;
  engine.schedule_at(5.0, [] {});
  engine.run();
  EXPECT_THROW(engine.schedule_at(1.0, [] {}), ContractViolation);
}

TEST(SimEngine, RunUntilStopsAtDeadline) {
  sim::SimEngine engine;
  int fired = 0;
  engine.schedule_at(1.0, [&] { ++fired; });
  engine.schedule_at(10.0, [&] { ++fired; });
  EXPECT_EQ(engine.run_until(5.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);
  EXPECT_EQ(engine.pending(), 1u);
}

// ---- Timeline ------------------------------------------------------------------

TEST(Timeline, ReservesFromEarliestWhenFree) {
  sim::Timeline t;
  const auto i = t.reserve(3.0, 2.0);
  EXPECT_DOUBLE_EQ(i.start, 3.0);
  EXPECT_DOUBLE_EQ(i.end, 5.0);
  EXPECT_DOUBLE_EQ(i.duration(), 2.0);
}

TEST(Timeline, SerializesOverlappingRequests) {
  sim::Timeline t;
  t.reserve(0.0, 2.0);
  const auto second = t.reserve(1.0, 2.0);  // wants 1.0 but resource busy
  EXPECT_DOUBLE_EQ(second.start, 2.0);
  EXPECT_DOUBLE_EQ(second.end, 4.0);
}

TEST(Timeline, TracksBusyTimeAndHistory) {
  sim::Timeline t;
  t.reserve(0.0, 1.0);
  t.reserve(5.0, 2.5);
  EXPECT_DOUBLE_EQ(t.busy_time(), 3.5);
  EXPECT_DOUBLE_EQ(t.free_from(), 7.5);
  EXPECT_EQ(t.history().size(), 2u);
}

TEST(Timeline, ZeroDurationIsAllowed) {
  sim::Timeline t;
  const auto i = t.reserve(1.0, 0.0);
  EXPECT_DOUBLE_EQ(i.start, i.end);
}

TEST(Timeline, NegativeDurationIsRejected) {
  sim::Timeline t;
  EXPECT_THROW(t.reserve(0.0, -1.0), ContractViolation);
}

// ---- trace format -----------------------------------------------------------------

TEST(TraceFormat, MatchesPaperLayout) {
  trace::TraceMessage m;
  m.host = "bumpa.sen.cwi.nl";
  m.task_id = 262146;
  m.process_id = 140;
  m.seconds = 1048087412;
  m.microseconds = 175834;
  m.task_name = "mainprog";
  m.manifold_name = "Master(port in)";
  m.source_file = "ResSourceCode.c";
  m.source_line = 136;
  m.text = "Welcome";
  EXPECT_EQ(m.format(),
            "bumpa.sen.cwi.nl 262146 140 1048087412 175834\n"
            "    mainprog Master(port in) ResSourceCode.c 136 -> Welcome");
}

TEST(TraceLogTest, RecordsInOrderAndRenders) {
  trace::TraceLog log;
  trace::TraceMessage m;
  m.text = "first";
  log.record(m);
  m.text = "second";
  log.record(m);
  EXPECT_EQ(log.size(), 2u);
  const auto messages = log.snapshot();
  EXPECT_EQ(messages[0].text, "first");
  EXPECT_EQ(messages[1].text, "second");
  EXPECT_NE(log.render().find("second"), std::string::npos);
  log.clear();
  EXPECT_EQ(log.size(), 0u);
}

// ---- ebb & flow ---------------------------------------------------------------------

TEST(EbbFlow, BuildsStepFunction) {
  const auto series = trace::build_ebb_flow({{1.0, +1}, {3.0, +1}, {4.0, -1}}, 6.0);
  EXPECT_EQ(series.count_at(0.5), 0);
  EXPECT_EQ(series.count_at(1.5), 1);
  EXPECT_EQ(series.count_at(3.5), 2);
  EXPECT_EQ(series.count_at(5.0), 1);
  EXPECT_EQ(series.peak(), 2);
}

TEST(EbbFlow, WeightedAverageIsTimeWeighted) {
  // 1 machine on [0,2), 2 on [2,4), 0 on [4,8): avg = (2*1+2*2+4*0)/8 = 0.75.
  const auto series =
      trace::build_ebb_flow({{0.0, +1}, {2.0, +1}, {4.0, -1}, {4.0, -1}}, 8.0);
  EXPECT_DOUBLE_EQ(series.weighted_average(), 0.75);
}

TEST(EbbFlow, HandlesUnsortedEvents) {
  const auto series = trace::build_ebb_flow({{5.0, -1}, {1.0, +1}, {3.0, +1}, {6.0, -1}}, 10.0);
  EXPECT_EQ(series.peak(), 2);
  EXPECT_EQ(series.count_at(9.0), 0);
}

TEST(EbbFlow, SimultaneousEventsCollapse) {
  const auto series = trace::build_ebb_flow({{1.0, +1}, {1.0, +1}, {1.0, +1}}, 2.0);
  EXPECT_EQ(series.peak(), 3);
  // One breakpoint at t=1 with count 3, plus the initial zero segment.
  EXPECT_EQ(series.times.size(), 2u);
}

TEST(EbbFlow, NegativeCountIsAContractViolation) {
  EXPECT_THROW(trace::build_ebb_flow({{1.0, -1}}, 2.0), ContractViolation);
}

TEST(EbbFlow, EmptySeriesIsWellDefined) {
  const auto series = trace::build_ebb_flow({}, 5.0);
  EXPECT_EQ(series.peak(), 0);
  EXPECT_DOUBLE_EQ(series.weighted_average(), 0.0);
  EXPECT_EQ(series.count_at(1.0), 0);
}

TEST(EbbFlow, AsciiChartRendersWithoutCrashing) {
  const auto series = trace::build_ebb_flow({{0.0, +1}, {2.0, +1}, {5.0, -1}}, 10.0);
  const std::string chart = trace::render_ascii_chart(series, 40, 8);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find("peak 2"), std::string::npos);
}

}  // namespace
