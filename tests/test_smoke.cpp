// End-to-end smoke tests: the master/worker protocol on a toy job, and the
// paper's central correctness claim — the concurrent sparse-grid solver
// produces exactly the sequential program's output (§6: "written to a file
// and are exactly the same as in the sequential version").
#include <gtest/gtest.h>

#include "core/concurrent_solver.hpp"
#include "core/master.hpp"
#include "core/worker.hpp"
#include "transport/seq_solver.hpp"

namespace {

using namespace mg;

TEST(ProtocolSmoke, ToyPoolComputesAllResults) {
  iwim::Runtime runtime;
  constexpr int kJobs = 5;
  std::vector<std::int64_t> results;

  auto master = mw::make_master(runtime, "master", [&](mw::MasterApi& api, iwim::ProcessContext&) {
    api.create_pool();
    for (int k = 0; k < kJobs; ++k) {
      api.create_worker();
      api.send_work(iwim::Unit::of(std::int64_t{k}));
    }
    for (int k = 0; k < kJobs; ++k) {
      results.push_back(api.collect_result().as<std::int64_t>());
    }
    api.rendezvous();
    api.finished();
  });

  auto factory = mw::make_worker_factory(
      [](const iwim::Unit& u) { return iwim::Unit::of(u.as<std::int64_t>() * 10); });

  const mw::ProtocolStats stats = mw::run_main_program(runtime, master, std::move(factory));
  EXPECT_EQ(stats.pools_created, 1u);
  EXPECT_EQ(stats.workers_created, static_cast<std::size_t>(kJobs));

  std::sort(results.begin(), results.end());
  ASSERT_EQ(results.size(), static_cast<std::size_t>(kJobs));
  for (int k = 0; k < kJobs; ++k) EXPECT_EQ(results[static_cast<std::size_t>(k)], 10 * k);
}

TEST(ConcurrentSolverSmoke, MatchesSequentialBitExactly) {
  transport::ProgramConfig config;
  config.root = 2;
  config.level = 2;
  config.le_tol = 1e-3;

  const transport::SolveResult seq = transport::solve_sequential(config);
  const mw::ConcurrentResult conc = mw::solve_concurrent(config);

  ASSERT_EQ(seq.records.size(), grid::component_count(config.level));
  ASSERT_EQ(conc.solve.records.size(), seq.records.size());
  EXPECT_EQ(conc.solve.combined.max_diff(seq.combined), 0.0);
  EXPECT_EQ(conc.protocol.workers_created, grid::component_count(config.level));
}

}  // namespace
