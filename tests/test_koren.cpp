// Tests for the third-order limited advection scheme (the Koren limiter).
#include <gtest/gtest.h>

#include <cmath>

#include "transport/koren.hpp"
#include "transport/seq_solver.hpp"
#include "transport/subsolve.hpp"
#include "transport/system.hpp"

namespace {

using namespace mg;
using namespace mg::transport;

// ---- the limiter function -------------------------------------------------------

TEST(KorenLimiter, VanishesForNonSmoothRatios) {
  EXPECT_DOUBLE_EQ(koren_phi(-1.0), 0.0);  // extremum: drop to first order
  EXPECT_DOUBLE_EQ(koren_phi(0.0), 0.0);
}

TEST(KorenLimiter, IsOneAtUnitRatio) {
  // phi(1) = 1 recovers the kappa-scheme's smooth-region accuracy.
  EXPECT_DOUBLE_EQ(koren_phi(1.0), 1.0);
}

TEST(KorenLimiter, CapsAtTwo) {
  EXPECT_DOUBLE_EQ(koren_phi(100.0), 2.0);
  EXPECT_DOUBLE_EQ(koren_phi(2.6), 2.0);  // (1+2r)/3 crosses 2 at r = 2.5
}

TEST(KorenLimiter, FollowsKappaThirdBranchInBetween) {
  EXPECT_DOUBLE_EQ(koren_phi(1.5), (1.0 + 3.0) / 3.0);
  EXPECT_DOUBLE_EQ(koren_phi(0.25), 0.5);  // 2r branch for small r
}

TEST(KorenLimiter, IsTvdBounded) {
  for (double r = -3.0; r <= 5.0; r += 0.01) {
    const double phi = koren_phi(r);
    EXPECT_GE(phi, 0.0);
    EXPECT_LE(phi, 2.0);
    if (r > 0) {
      EXPECT_LE(phi, 2.0 * r + 1e-12);
    }
  }
}

// ---- the semi-discrete rhs --------------------------------------------------------

TEST(KorenRhs, ExactForLinearFields) {
  // For u = alpha + beta*x + gamma*y the limited scheme reduces to the
  // kappa-scheme with phi(1) = 1, which differentiates linears exactly;
  // diffusion of a linear field is zero.
  const grid::Grid2D g(2, 2, 2);
  TransportProblem p;
  std::vector<double> nodal(g.node_count());
  for (std::size_t j = 0; j < g.nodes_y(); ++j) {
    for (std::size_t i = 0; i < g.nodes_x(); ++i) {
      nodal[g.node_index(i, j)] = 1.0 + 2.0 * g.x(i) - 0.5 * g.y(j);
    }
  }
  std::vector<double> f;
  koren_rhs(g, p, nodal, f);
  const double expected = -p.ax * 2.0 - p.ay * (-0.5);
  // The boundary-adjacent faces fall back to first-order upwind, which is
  // not exact for linears — check the nodes whose stencils stay limited-
  // third-order (two rings in from every side).
  for (std::size_t j = 2; j + 1 < g.interior_y(); ++j) {
    for (std::size_t i = 2; i + 1 < g.interior_x(); ++i) {
      EXPECT_NEAR(f[g.interior_index(i, j)], expected, 1e-10);
    }
  }
}

TEST(KorenRhs, MatchesAnalyticTimeDerivative) {
  TransportProblem p;
  const grid::Grid2D g(2, 4, 4);
  const double t = 0.1;
  std::vector<double> nodal(g.node_count());
  for (std::size_t j = 0; j < g.nodes_y(); ++j) {
    for (std::size_t i = 0; i < g.nodes_x(); ++i) {
      nodal[g.node_index(i, j)] = p.exact(g.x(i), g.y(j), t);
    }
  }
  std::vector<double> f;
  koren_rhs(g, p, nodal, f);
  // At the pulse extremum the limiter drops to first order by design, so
  // the pointwise consistency check applies only to the smooth flanks well
  // away from the centre (the limiter follows the kappa-scheme there).
  const double cx = p.x0 + p.ax * t, cy = p.y0 + p.ay * t;
  const double d = 1e-6;
  double max_err = 0.0;
  for (std::size_t j = 3; j + 3 <= g.interior_y(); ++j) {
    for (std::size_t i = 3; i + 3 <= g.interior_x(); ++i) {
      const double x = g.x(i), y = g.y(j);
      const double r2 = (x - cx) * (x - cx) + (y - cy) * (y - cy);
      if (r2 < 9.0 * p.sigma * p.sigma) continue;  // skip the clipped peak zone
      const double ut = (p.exact(x, y, t + d) - p.exact(x, y, t - d)) / (2 * d);
      max_err = std::max(max_err, std::abs(f[g.interior_index(i, j)] - ut));
    }
  }
  EXPECT_LT(max_err, 0.03);
}

TEST(KorenRhs, HandlesNegativeVelocities) {
  TransportProblem p;
  p.ax = -0.7;
  p.ay = -0.3;
  const grid::Grid2D g(2, 2, 2);
  std::vector<double> nodal(g.node_count());
  for (std::size_t j = 0; j < g.nodes_y(); ++j) {
    for (std::size_t i = 0; i < g.nodes_x(); ++i) {
      nodal[g.node_index(i, j)] = 1.0 + 2.0 * g.x(i) - 0.5 * g.y(j);
    }
  }
  std::vector<double> f;
  koren_rhs(g, p, nodal, f);
  const double expected = -p.ax * 2.0 - p.ay * (-0.5);
  for (std::size_t j = 2; j + 1 < g.interior_y(); ++j) {
    for (std::size_t i = 2; i + 1 < g.interior_x(); ++i) {
      EXPECT_NEAR(f[g.interior_index(i, j)], expected, 1e-10);
    }
  }
}

// ---- in the integrator -------------------------------------------------------------

TEST(KorenScheme, BeatsUpwindOnTheSmoothPulse) {
  const grid::Grid2D g(2, 4, 4);
  SubsolveConfig upwind;
  upwind.le_tol = 1e-5;
  upwind.system.scheme = AdvectionScheme::Upwind1;
  SubsolveConfig koren = upwind;
  koren.system.scheme = AdvectionScheme::ThirdOrderKoren;
  const auto& p = upwind.problem;
  const double t1 = upwind.t1;
  auto exact = [&](double x, double y) { return p.exact(x, y, t1); };
  const double err_upwind = subsolve(g, upwind).solution.max_error(exact);
  const double err_koren = subsolve(g, koren).solution.max_error(exact);
  EXPECT_LT(err_koren, 0.5 * err_upwind);
}

TEST(KorenScheme, DoesNotOvershootTheInitialMaximum) {
  // TVD-like behaviour: advecting the pulse must not create values above
  // the initial maximum (central differences typically do overshoot).
  SubsolveConfig config;
  config.le_tol = 1e-4;
  config.problem.eps = 0.002;  // nearly pure advection
  config.system.scheme = AdvectionScheme::ThirdOrderKoren;
  const auto r = subsolve(grid::Grid2D(2, 3, 3), config);
  double max_value = -1e9;
  for (double v : r.solution.data()) max_value = std::max(max_value, v);
  EXPECT_LE(max_value, config.problem.amplitude * (1.0 + 1e-6));
}

TEST(KorenScheme, ErrorDecreasesWithRefinement) {
  SubsolveConfig config;
  config.le_tol = 1e-7;
  config.system.scheme = AdvectionScheme::ThirdOrderKoren;
  const auto& p = config.problem;
  auto exact = [&](double x, double y) { return p.exact(x, y, config.t1); };
  double prev = 1e9;
  for (int l = 1; l <= 3; ++l) {
    const double err = subsolve(grid::Grid2D(2, l, l), config).solution.max_error(exact);
    EXPECT_LT(err, prev);
    prev = err;
  }
}

TEST(KorenScheme, ConcurrentStillMatchesSequentialBitExactly) {
  // Determinism survives the nonlinear scheme.
  transport::ProgramConfig program;
  program.level = 2;
  program.kernel.system.scheme = AdvectionScheme::ThirdOrderKoren;
  const auto seq = transport::solve_sequential(program);
  const auto a = transport::solve_sequential(program);
  EXPECT_EQ(seq.combined.max_diff(a.combined), 0.0);
}

TEST(KorenScheme, ToStringNamesIt) {
  EXPECT_STREQ(to_string(AdvectionScheme::ThirdOrderKoren), "koren3");
}

}  // namespace
