// Unit and property tests for the linear-algebra substrate: vector kernels,
// CSR matrices, banded LU, preconditioners, and BiCGSTAB.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/banded.hpp"
#include "linalg/bicgstab.hpp"
#include "linalg/csr.hpp"
#include "linalg/precond.hpp"
#include "linalg/vector_ops.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace {

using namespace mg::linalg;
using mg::support::ContractViolation;
using mg::support::Xoshiro256;

// Dense random diagonally-dominant test matrix in CSR form.
CsrMatrix random_dominant_matrix(std::size_t n, double density, Xoshiro256& rng) {
  CsrBuilder builder(n, n);
  std::vector<double> row_abs(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && rng.uniform01() < density) {
        const double v = rng.uniform(-1.0, 1.0);
        builder.add(i, j, v);
        row_abs[i] += std::abs(v);
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) builder.add(i, i, row_abs[i] + 1.0 + rng.uniform01());
  return builder.build();
}

// ---- vector ops -------------------------------------------------------------

TEST(VectorOps, AxpyAddsScaled) {
  Vec x{1, 2, 3}, y{10, 20, 30};
  axpy(2.0, x, y);
  EXPECT_EQ(y, (Vec{12, 24, 36}));
}

TEST(VectorOps, AxpyRejectsSizeMismatch) {
  Vec x{1, 2}, y{1};
  EXPECT_THROW(axpy(1.0, x, y), ContractViolation);
}

TEST(VectorOps, AxpbyCombines) {
  Vec x{1, 1}, y{2, 4};
  axpby(3.0, x, 0.5, y);
  EXPECT_EQ(y, (Vec{4, 5}));
}

TEST(VectorOps, DotAndNorms) {
  Vec a{3, 4}, b{1, 2};
  EXPECT_DOUBLE_EQ(dot(a, b), 11.0);
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(Vec{-7, 2, 6}), 7.0);
}

TEST(VectorOps, WrmsNormOfWeightedUnitIsOne) {
  // v_i == atol and ref == 0 => each term is 1 => wrms == 1.
  Vec v{1e-3, 1e-3, 1e-3}, ref{0, 0, 0};
  EXPECT_NEAR(wrms_norm(v, ref, 1e-3, 1e-3), 1.0, 1e-12);
}

TEST(VectorOps, WrmsNormScalesWithReference) {
  Vec v{0.1}, ref{100.0};
  // weight = atol + rtol*|ref| = 1e-6 + 1e-3*100 ~ 0.1 => ratio ~ 1.
  EXPECT_NEAR(wrms_norm(v, ref, 1e-6, 1e-3), 1.0, 1e-4);
}

TEST(VectorOps, SubtractAndScaleAndFill) {
  Vec a{5, 7}, b{2, 3}, out;
  subtract(a, b, out);
  EXPECT_EQ(out, (Vec{3, 4}));
  scale(out, 2.0);
  EXPECT_EQ(out, (Vec{6, 8}));
  fill(out, 0.0);
  EXPECT_EQ(out, (Vec{0, 0}));
}

// ---- CSR ---------------------------------------------------------------------

TEST(Csr, BuilderSortsAndMergesDuplicates) {
  CsrBuilder builder(2, 3);
  builder.add(0, 2, 1.0);
  builder.add(0, 0, 2.0);
  builder.add(0, 2, 0.5);  // duplicate coordinate accumulates
  builder.add(1, 1, 3.0);
  const CsrMatrix m = builder.build();
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 1.5);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 0.0);
}

TEST(Csr, MultiplyMatchesManual) {
  CsrBuilder builder(2, 2);
  builder.add(0, 0, 1.0);
  builder.add(0, 1, 2.0);
  builder.add(1, 0, 3.0);
  const CsrMatrix m = builder.build();
  Vec y;
  m.multiply(Vec{1.0, 1.0}, y);
  EXPECT_EQ(y, (Vec{3.0, 3.0}));
}

TEST(Csr, ResidualIsBMinusAx) {
  CsrBuilder builder(2, 2);
  builder.add(0, 0, 2.0);
  builder.add(1, 1, 4.0);
  const CsrMatrix m = builder.build();
  Vec r;
  m.residual(Vec{10.0, 10.0}, Vec{1.0, 1.0}, r);
  EXPECT_EQ(r, (Vec{8.0, 6.0}));
}

TEST(Csr, DiagonalExtraction) {
  Xoshiro256 rng(3);
  const CsrMatrix m = random_dominant_matrix(10, 0.3, rng);
  const Vec d = m.diagonal();
  for (std::size_t i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(d[i], m.at(i, i));
}

TEST(Csr, SamePatternDetectsEquality) {
  Xoshiro256 rng(4);
  const CsrMatrix a = random_dominant_matrix(8, 0.3, rng);
  CsrMatrix b = a;
  EXPECT_TRUE(a.same_pattern(b));
  b.values()[0] += 1.0;  // values differ, pattern unchanged
  EXPECT_TRUE(a.same_pattern(b));
}

TEST(Csr, ValidationRejectsBadRowPtr) {
  EXPECT_THROW(CsrMatrix(2, 2, {0, 1}, {0}, {1.0}), ContractViolation);
}

TEST(Csr, ValidationRejectsUnsortedColumns) {
  EXPECT_THROW(CsrMatrix(1, 3, {0, 2}, {2, 0}, {1.0, 2.0}), ContractViolation);
}

TEST(Csr, ShiftedIdentityComputesIMinusGammaA) {
  CsrBuilder builder(3, 3);
  builder.add(0, 1, 2.0);  // row without a stored diagonal
  builder.add(1, 0, 1.0);
  builder.add(1, 1, 5.0);
  builder.add(2, 2, 4.0);
  const CsrMatrix a = builder.build();
  const CsrMatrix s = shifted_identity(a, 1.0, -0.5);  // I - 0.5 A
  EXPECT_DOUBLE_EQ(s.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(s.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(s.at(1, 0), -0.5);
  EXPECT_DOUBLE_EQ(s.at(1, 1), 1.0 - 2.5);
  EXPECT_DOUBLE_EQ(s.at(2, 2), 1.0 - 2.0);
}

TEST(Csr, ShiftedIdentityPropertyAgainstMultiply) {
  Xoshiro256 rng(5);
  const CsrMatrix a = random_dominant_matrix(12, 0.25, rng);
  const CsrMatrix s = shifted_identity(a, 1.0, -0.3);
  Vec x(12);
  for (auto& v : x) v = rng.uniform(-1, 1);
  Vec ax, sx;
  a.multiply(x, ax);
  s.multiply(x, sx);
  for (std::size_t i = 0; i < 12; ++i) EXPECT_NEAR(sx[i], x[i] - 0.3 * ax[i], 1e-12);
}

// ---- banded -------------------------------------------------------------------

TEST(Banded, AtAndSetRespectBand) {
  BandedMatrix m(5, 1);
  m.set(2, 1, 3.0);
  m.set(2, 2, 4.0);
  EXPECT_DOUBLE_EQ(m.at(2, 1), 3.0);
  EXPECT_DOUBLE_EQ(m.at(0, 4), 0.0);       // out of band reads as zero
  EXPECT_THROW(m.set(0, 4, 1.0), ContractViolation);
}

TEST(Banded, FromCsrRejectsOutOfBand) {
  CsrBuilder builder(4, 4);
  builder.add(0, 3, 1.0);
  for (std::size_t i = 0; i < 4; ++i) builder.add(i, i, 2.0);
  const CsrMatrix a = builder.build();
  EXPECT_THROW(BandedMatrix::from_csr(a, 1), ContractViolation);
  EXPECT_NO_THROW(BandedMatrix::from_csr(a, 3));
}

TEST(Banded, SolveTridiagonalKnownSolution) {
  // -u'' discretised: A = tridiag(-1, 2, -1), solve A x = b with known x.
  const std::size_t n = 50;
  BandedMatrix m(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    m.set(i, i, 2.0);
    if (i > 0) m.set(i, i - 1, -1.0);
    if (i + 1 < n) m.set(i, i + 1, -1.0);
  }
  Vec x_true(n), b(n);
  for (std::size_t i = 0; i < n; ++i) x_true[i] = std::sin(0.1 * static_cast<double>(i));
  m.multiply(x_true, b);
  m.factorize();
  Vec x;
  m.solve(b, x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);
}

TEST(Banded, SolveMatchesCsrOnRandomBandedSystem) {
  Xoshiro256 rng(7);
  const std::size_t n = 30, hb = 4;
  CsrBuilder builder(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double row_abs = 0.0;
    for (std::size_t j = (i >= hb ? i - hb : 0); j <= std::min(n - 1, i + hb); ++j) {
      if (i == j) continue;
      const double v = rng.uniform(-1, 1);
      builder.add(i, j, v);
      row_abs += std::abs(v);
    }
    builder.add(i, i, row_abs + 1.5);
  }
  const CsrMatrix a = builder.build();
  BandedMatrix band = BandedMatrix::from_csr(a, hb);
  Vec x_true(n);
  for (auto& v : x_true) v = rng.uniform(-2, 2);
  Vec b;
  a.multiply(x_true, b);
  band.factorize();
  Vec x;
  band.solve(b, x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(Banded, FactorizeRejectsZeroPivot) {
  BandedMatrix m(2, 1);
  m.set(0, 0, 0.0);
  m.set(1, 1, 1.0);
  EXPECT_THROW(m.factorize(), std::runtime_error);
}

TEST(Banded, SolveBeforeFactorizeIsRejected) {
  BandedMatrix m(3, 1);
  Vec x;
  EXPECT_THROW(m.solve(Vec{1, 2, 3}, x), ContractViolation);
}

TEST(Banded, MultiplyAfterFactorizeIsRejected) {
  BandedMatrix m(3, 1);
  for (std::size_t i = 0; i < 3; ++i) m.set(i, i, 1.0);
  m.factorize();
  Vec y;
  EXPECT_THROW(m.multiply(Vec{1, 1, 1}, y), ContractViolation);
}

// ---- preconditioners ------------------------------------------------------------

TEST(Precond, JacobiInvertsDiagonalMatrix) {
  CsrBuilder builder(3, 3);
  builder.add(0, 0, 2.0);
  builder.add(1, 1, 4.0);
  builder.add(2, 2, 8.0);
  const CsrMatrix a = builder.build();
  JacobiPreconditioner jacobi(a);
  Vec z;
  jacobi.apply(Vec{2.0, 4.0, 8.0}, z);
  EXPECT_EQ(z, (Vec{1.0, 1.0, 1.0}));
}

TEST(Precond, JacobiRejectsZeroDiagonal) {
  CsrBuilder builder(2, 2);
  builder.add(0, 0, 1.0);
  builder.add(1, 0, 1.0);  // row 1 has no diagonal -> zero
  EXPECT_THROW(JacobiPreconditioner{builder.build()}, std::runtime_error);
}

TEST(Precond, Ilu0IsExactForTriangularMatrix) {
  // For a lower-triangular matrix, ILU(0) is an exact factorisation.
  CsrBuilder builder(4, 4);
  builder.add(0, 0, 2.0);
  builder.add(1, 0, 1.0);
  builder.add(1, 1, 3.0);
  builder.add(2, 1, -1.0);
  builder.add(2, 2, 4.0);
  builder.add(3, 3, 5.0);
  const CsrMatrix a = builder.build();
  Ilu0Preconditioner ilu(a);
  Vec x_true{1.0, -2.0, 0.5, 3.0}, b, z;
  a.multiply(x_true, b);
  ilu.apply(b, z);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(z[i], x_true[i], 1e-12);
}

TEST(Precond, Ilu0RequiresStructuralDiagonal) {
  CsrBuilder builder(2, 2);
  builder.add(0, 1, 1.0);
  builder.add(1, 0, 1.0);
  EXPECT_THROW(Ilu0Preconditioner{builder.build()}, std::runtime_error);
}

TEST(Precond, FactoryProducesAllKinds) {
  CsrBuilder builder(2, 2);
  builder.add(0, 0, 1.0);
  builder.add(1, 1, 1.0);
  const CsrMatrix a = builder.build();
  EXPECT_STREQ(make_preconditioner(PrecondKind::Identity, a)->name(), "identity");
  EXPECT_STREQ(make_preconditioner(PrecondKind::Jacobi, a)->name(), "jacobi");
  EXPECT_STREQ(make_preconditioner(PrecondKind::Ilu0, a)->name(), "ilu0");
}

// ---- BiCGSTAB -------------------------------------------------------------------

TEST(Bicgstab, SolvesIdentityInstantly) {
  CsrBuilder builder(3, 3);
  for (std::size_t i = 0; i < 3; ++i) builder.add(i, i, 1.0);
  const CsrMatrix a = builder.build();
  Vec x;
  IdentityPreconditioner m;
  const auto report = bicgstab(a, Vec{1, 2, 3}, x, m);
  EXPECT_TRUE(report.converged);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], static_cast<double>(i + 1), 1e-10);
}

TEST(Bicgstab, ZeroRhsConvergesToZeroWithoutIterating) {
  CsrBuilder builder(2, 2);
  builder.add(0, 0, 2.0);
  builder.add(1, 1, 2.0);
  const CsrMatrix a = builder.build();
  Vec x;
  IdentityPreconditioner m;
  const auto report = bicgstab(a, Vec{0.0, 0.0}, x, m);
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.iterations, 0u);
}

struct BicgstabParam {
  PrecondKind kind;
  std::size_t n;
  std::uint64_t seed;
};

class BicgstabRandomSystems : public ::testing::TestWithParam<BicgstabParam> {};

TEST_P(BicgstabRandomSystems, RecoversKnownSolution) {
  const auto param = GetParam();
  Xoshiro256 rng(param.seed);
  const CsrMatrix a = random_dominant_matrix(param.n, 0.2, rng);
  Vec x_true(param.n);
  for (auto& v : x_true) v = rng.uniform(-3, 3);
  Vec b;
  a.multiply(x_true, b);
  auto precond = make_preconditioner(param.kind, a);
  Vec x;
  SolveOptions opts;
  opts.rel_tol = 1e-12;
  const auto report = bicgstab(a, b, x, *precond, opts);
  ASSERT_TRUE(report.converged) << "precond=" << precond->name();
  for (std::size_t i = 0; i < param.n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    AllPreconditioners, BicgstabRandomSystems,
    ::testing::Values(BicgstabParam{PrecondKind::Identity, 40, 11},
                      BicgstabParam{PrecondKind::Jacobi, 40, 12},
                      BicgstabParam{PrecondKind::Ilu0, 40, 13},
                      BicgstabParam{PrecondKind::Identity, 100, 14},
                      BicgstabParam{PrecondKind::Jacobi, 100, 15},
                      BicgstabParam{PrecondKind::Ilu0, 100, 16}));

TEST(Bicgstab, Ilu0NeedsFewerIterationsThanIdentity) {
  Xoshiro256 rng(21);
  const CsrMatrix a = random_dominant_matrix(120, 0.1, rng);
  Vec x_true(120);
  for (auto& v : x_true) v = rng.uniform(-1, 1);
  Vec b;
  a.multiply(x_true, b);

  Vec x1, x2;
  IdentityPreconditioner identity;
  Ilu0Preconditioner ilu(a);
  const auto r1 = bicgstab(a, b, x1, identity);
  const auto r2 = bicgstab(a, b, x2, ilu);
  ASSERT_TRUE(r1.converged && r2.converged);
  EXPECT_LT(r2.iterations, r1.iterations);
}

TEST(Bicgstab, ReportsNonConvergenceWhenIterationBudgetTooSmall) {
  Xoshiro256 rng(22);
  const CsrMatrix a = random_dominant_matrix(200, 0.05, rng);
  Vec x_true(200);
  for (auto& v : x_true) v = rng.uniform(-1, 1);
  Vec b;
  a.multiply(x_true, b);
  Vec x;
  IdentityPreconditioner m;
  SolveOptions opts;
  opts.max_iter = 1;
  opts.rel_tol = 1e-14;
  const auto report = bicgstab(a, b, x, m, opts);
  EXPECT_FALSE(report.converged);
  EXPECT_GT(report.residual_norm, 0.0);
}

TEST(Bicgstab, UsesInitialGuess) {
  CsrBuilder builder(2, 2);
  builder.add(0, 0, 3.0);
  builder.add(1, 1, 3.0);
  const CsrMatrix a = builder.build();
  Vec x{2.0, 4.0};  // exact solution of A x = (6, 12)
  IdentityPreconditioner m;
  const auto report = bicgstab(a, Vec{6.0, 12.0}, x, m);
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.iterations, 0u);  // converged on the initial guess
}

}  // namespace
