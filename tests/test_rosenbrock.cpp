// Tests for the ROS2 Rosenbrock integrator: order of accuracy, W-method
// property (order holds with an approximate Jacobian), L-stability on stiff
// problems, the adaptive controller, and failure modes.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "rosenbrock/ode_system.hpp"
#include "rosenbrock/ros2.hpp"
#include "support/check.hpp"

namespace {

using namespace mg::ros;

/// Scalar linear ODE u' = lambda u + forcing(t), exact solution supplied.
class ScalarLinear final : public OdeSystem {
 public:
  ScalarLinear(double lambda, std::function<double(double)> forcing, double jacobian_used)
      : lambda_(lambda), forcing_(std::move(forcing)), jac_(jacobian_used) {}

  std::size_t dimension() const override { return 1; }

  void rhs(double t, const Vec& u, Vec& f) override {
    f.resize(1);
    f[0] = lambda_ * u[0] + forcing_(t);
  }

  std::unique_ptr<StageSolver> prepare_stage(double, const Vec&, double gamma_h) override {
    struct Solver final : StageSolver {
      double denom;
      void solve(const Vec& rhs, Vec& x) override {
        x.resize(1);
        x[0] = rhs[0] / denom;
      }
    };
    auto s = std::make_unique<Solver>();
    s->denom = 1.0 - gamma_h * jac_;
    return s;
  }

 private:
  double lambda_;
  std::function<double(double)> forcing_;
  double jac_;
};

/// 2D linear system u' = A u with A = [[0, 1], [-1, 0]] (rotation).
class Rotation final : public OdeSystem {
 public:
  std::size_t dimension() const override { return 2; }
  void rhs(double, const Vec& u, Vec& f) override {
    f.resize(2);
    f[0] = u[1];
    f[1] = -u[0];
  }
  std::unique_ptr<StageSolver> prepare_stage(double, const Vec&, double gamma_h) override {
    // (I - gh A)^{-1} for A = rotation generator; closed form 2x2 inverse.
    struct Solver final : StageSolver {
      double g;
      void solve(const Vec& r, Vec& x) override {
        const double det = 1.0 + g * g;
        x.resize(2);
        x[0] = (r[0] + g * r[1]) / det;
        x[1] = (-g * r[0] + r[1]) / det;
      }
    };
    auto s = std::make_unique<Solver>();
    s->g = gamma_h;
    return s;
  }
};

double fixed_step_error(OdeSystem& system, Vec u0, double t1, double h, double exact0) {
  Ros2Options opts;
  opts.t0 = 0.0;
  opts.t1 = t1;
  opts.h0 = h;
  opts.fixed_step = true;
  integrate(system, u0, opts);
  return std::abs(u0[0] - exact0);
}

TEST(Ros2, GammaIsOnePlusInvSqrt2) {
  EXPECT_NEAR(ros2_gamma(), 1.0 + 1.0 / std::sqrt(2.0), 1e-15);
}

TEST(Ros2, ExactForConstantDerivative) {
  // u' = c integrates exactly regardless of step size.
  ScalarLinear system(0.0, [](double) { return 2.5; }, 0.0);
  Vec u{1.0};
  Ros2Options opts;
  opts.t1 = 1.0;
  opts.h0 = 0.3;
  opts.fixed_step = true;
  integrate(system, u, opts);
  EXPECT_NEAR(u[0], 1.0 + 2.5, 1e-12);
}

TEST(Ros2, SecondOrderConvergenceOnDecay) {
  // u' = -u, u(0)=1, exact e^{-1} at t=1.
  const double exact = std::exp(-1.0);
  ScalarLinear system(-1.0, [](double) { return 0.0; }, -1.0);
  const double e1 = fixed_step_error(system, {1.0}, 1.0, 0.1, exact);
  const double e2 = fixed_step_error(system, {1.0}, 1.0, 0.05, exact);
  const double order = std::log2(e1 / e2);
  EXPECT_NEAR(order, 2.0, 0.25);
}

TEST(Ros2, SecondOrderWithWrongJacobian) {
  // The W-method property: order 2 for ANY A.  Use A = 0 (explicit mode)
  // and A = -5 (wrong by 5x) on u' = -u.
  const double exact = std::exp(-1.0);
  for (double wrong_jacobian : {0.0, -5.0}) {
    ScalarLinear system(-1.0, [](double) { return 0.0; }, wrong_jacobian);
    const double e1 = fixed_step_error(system, {1.0}, 1.0, 0.01, exact);
    const double e2 = fixed_step_error(system, {1.0}, 1.0, 0.005, exact);
    EXPECT_NEAR(std::log2(e1 / e2), 2.0, 0.35) << "A = " << wrong_jacobian;
  }
}

TEST(Ros2, SecondOrderOnNonAutonomousForcing) {
  // u' = -u + sin(3t); exact solution via integrating factor:
  // u(t) = (u0 + 3/10) e^{-t} + (sin 3t - 3 cos 3t)/10.
  auto exact = [](double t) {
    return (1.0 + 0.3) * std::exp(-t) + (std::sin(3 * t) - 3 * std::cos(3 * t)) / 10.0;
  };
  ScalarLinear system(-1.0, [](double t) { return std::sin(3.0 * t); }, -1.0);
  // The error has a sign change near h ~ 0.07, so measure well below it; the
  // observed order approaches 2 from below on this pair.
  const double e1 = fixed_step_error(system, {1.0}, 1.0, 0.0125, exact(1.0));
  const double e2 = fixed_step_error(system, {1.0}, 1.0, 0.00625, exact(1.0));
  const double order = std::log2(e1 / e2);
  EXPECT_GE(order, 1.5);
  EXPECT_LE(order, 2.5);
}

TEST(Ros2, SecondOrderOnRotationSystem) {
  Rotation system;
  Vec u1{1.0, 0.0};
  Ros2Options opts;
  opts.t1 = 1.0;
  opts.fixed_step = true;
  opts.h0 = 0.05;
  integrate(system, u1, opts);
  const double e1 = std::abs(u1[0] - std::cos(1.0));
  Vec u2{1.0, 0.0};
  opts.h0 = 0.025;
  integrate(system, u2, opts);
  const double e2 = std::abs(u2[0] - std::cos(1.0));
  EXPECT_NEAR(std::log2(e1 / e2), 2.0, 0.4);
}

TEST(Ros2, LStableOnVeryStiffDecay) {
  // u' = -1e6 u with steps of 0.1: explicit methods explode; ROS2 must
  // damp to ~0 immediately and stay bounded.
  ScalarLinear system(-1e6, [](double) { return 0.0; }, -1e6);
  Vec u{1.0};
  Ros2Options opts;
  opts.t1 = 1.0;
  opts.h0 = 0.1;
  opts.fixed_step = true;
  integrate(system, u, opts);
  EXPECT_LT(std::abs(u[0]), 1e-6);
}

TEST(Ros2, StiffSourceReachesSteadyState) {
  // u' = -1000 (u - 1): steady state u = 1 reached quickly.
  ScalarLinear system(-1000.0, [](double) { return 1000.0; }, -1000.0);
  Vec u{0.0};
  Ros2Options opts;
  opts.t1 = 1.0;
  opts.tol = 1e-6;
  const auto stats = integrate(system, u, opts);
  EXPECT_NEAR(u[0], 1.0, 1e-5);
  EXPECT_GT(stats.accepted, 0u);
}

TEST(Ros2, AdaptiveMeetsTightVsLooseToleranceOrdering) {
  auto run = [](double tol) {
    ScalarLinear system(-1.0, [](double t) { return std::cos(10.0 * t); }, -1.0);
    Vec u{0.0};
    Ros2Options opts;
    opts.t1 = 2.0;
    opts.tol = tol;
    const auto stats = integrate(system, u, opts);
    return std::pair<double, std::size_t>(u[0], stats.accepted);
  };
  const auto [loose_u, loose_steps] = run(1e-3);
  const auto [tight_u, tight_steps] = run(1e-6);
  EXPECT_GT(tight_steps, loose_steps);  // tighter tolerance works harder
  // Exact: u(t) = (10 sin(10t) + cos(10t) - e^{-t})/101... check both close:
  const double exact = (10.0 * std::sin(20.0) + std::cos(20.0) - std::exp(-2.0)) / 101.0;
  EXPECT_NEAR(tight_u, exact, 1e-4);
  EXPECT_NEAR(loose_u, exact, 1e-1);
  EXPECT_LT(std::abs(tight_u - exact), std::abs(loose_u - exact) + 1e-12);
}

TEST(Ros2, AdaptiveErrorScalesWithTolerance) {
  auto error_at = [](double tol) {
    ScalarLinear system(-1.0, [](double) { return 0.0; }, -1.0);
    Vec u{1.0};
    Ros2Options opts;
    opts.t1 = 1.0;
    opts.tol = tol;
    integrate(system, u, opts);
    return std::abs(u[0] - std::exp(-1.0));
  };
  EXPECT_LT(error_at(1e-6), error_at(1e-3));
}

TEST(Ros2, RejectionsHappenWhenInitialStepTooBig) {
  ScalarLinear system(-1.0, [](double t) { return 100.0 * std::sin(40.0 * t); }, -1.0);
  Vec u{0.0};
  Ros2Options opts;
  opts.t1 = 1.0;
  opts.tol = 1e-8;
  opts.h0 = 0.5;  // far too big for this forcing at this tolerance
  const auto stats = integrate(system, u, opts);
  EXPECT_GT(stats.rejected, 0u);
}

TEST(Ros2, StatsCountRhsAndSolves) {
  ScalarLinear system(-1.0, [](double) { return 0.0; }, -1.0);
  Vec u{1.0};
  Ros2Options opts;
  opts.t1 = 1.0;
  opts.h0 = 0.25;
  opts.fixed_step = true;
  const auto stats = integrate(system, u, opts);
  EXPECT_EQ(stats.accepted, 4u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.rhs_evaluations, 8u);       // 2 per step
  EXPECT_EQ(stats.stage_solves, 8u);          // 2 per step
  EXPECT_EQ(stats.stage_preparations, 4u);    // 1 per step
}

TEST(Ros2, FinalTimeIsHitExactly) {
  // u' = c is integrated exactly per step, so the result is sensitive only
  // to the total time span — a clipped last step must land exactly on t1.
  ScalarLinear system(0.0, [](double) { return 2.0; }, 0.0);
  Vec u{1.0};
  Ros2Options opts;
  opts.t1 = 1.0;
  opts.h0 = 0.3;  // not a divisor of 1.0: last step must be clipped
  opts.fixed_step = true;
  integrate(system, u, opts);
  EXPECT_NEAR(u[0], 3.0, 1e-12);
}

TEST(Ros2, ThrowsOnMaxStepsExceeded) {
  ScalarLinear system(-1.0, [](double) { return 0.0; }, -1.0);
  Vec u{1.0};
  Ros2Options opts;
  opts.t1 = 1.0;
  opts.h0 = 1e-5;
  opts.fixed_step = true;
  opts.max_steps = 10;
  EXPECT_THROW(integrate(system, u, opts), std::runtime_error);
}

TEST(Ros2, RejectsInvalidOptions) {
  ScalarLinear system(-1.0, [](double) { return 0.0; }, -1.0);
  Vec u{1.0};
  Ros2Options opts;
  opts.t1 = -1.0;
  EXPECT_THROW(integrate(system, u, opts), mg::support::ContractViolation);
  opts.t1 = 1.0;
  opts.tol = 0.0;
  EXPECT_THROW(integrate(system, u, opts), mg::support::ContractViolation);
}

TEST(Ros2, RejectsDimensionMismatch) {
  ScalarLinear system(-1.0, [](double) { return 0.0; }, -1.0);
  Vec u{1.0, 2.0};
  EXPECT_THROW(integrate(system, u, Ros2Options{}), mg::support::ContractViolation);
}

}  // namespace
