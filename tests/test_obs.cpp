// Tests for the observability layer: metrics registry concurrency and
// bucket semantics, span tracing on wall and virtual clocks, the Chrome
// trace_event export (golden), and the machine-readable run report schema.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_sim.hpp"
#include "cluster/cost_model.hpp"
#include "cluster/sim_report.hpp"
#include "obs/json_writer.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "support/log.hpp"

namespace {

using namespace mg;

// --- metrics -------------------------------------------------------------

TEST(ObsMetrics, ConcurrentCounterIncrementsSumExactly) {
  obs::Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(ObsMetrics, ConcurrentRegistryAccessAndIncrement) {
  // Threads race registration (locked) against updates (lock-free) on the
  // same name; the total must still be exact.
  obs::Registry reg;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      obs::Counter& c = reg.counter("race.shared");
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.snapshot().counter_or("race.shared"), kThreads * kPerThread);
}

TEST(ObsMetrics, GaugeHighWaterMark) {
  obs::Gauge g;
  g.max_of(3.0);
  g.max_of(1.0);  // lower: no effect
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.max_of(7.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
  g.set(2.0);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

TEST(ObsMetrics, HistogramBucketBoundaries) {
  // Bucket i holds v <= bounds[i] (and > bounds[i-1]); above all bounds
  // lands in the +inf bucket.  Exercise exactly-on-boundary values.
  obs::Histogram h({1.0, 2.0, 4.0});
  for (const double v : {0.5, 1.0,   // bucket 0 (v <= 1)
                         1.5, 2.0,   // bucket 1 (1 < v <= 2)
                         4.0,        // bucket 2 (2 < v <= 4)
                         4.5, 100.0  // +inf bucket
       }) {
    h.observe(v);
  }
  const std::vector<std::uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 2u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 2u);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 4.5 + 100.0);
}

TEST(ObsMetrics, RegistryResetZeroesButKeepsReferences) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("reset.counter");
  obs::Histogram& h = reg.histogram("reset.hist", {1.0});
  c.add(5);
  h.observe(0.5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  c.add(2);  // the cached reference must still feed the same metric
  EXPECT_EQ(reg.snapshot().counter_or("reset.counter"), 2u);
}

// --- logging -------------------------------------------------------------

TEST(ObsLog, ParsesMgLogLevelValues) {
  using support::LogLevel;
  using support::parse_log_level;
  EXPECT_EQ(parse_log_level("trace", LogLevel::Warn), LogLevel::Trace);
  EXPECT_EQ(parse_log_level("DEBUG", LogLevel::Warn), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("Info", LogLevel::Warn), LogLevel::Info);
  EXPECT_EQ(parse_log_level("warning", LogLevel::Error), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("4", LogLevel::Warn), LogLevel::Error);
  EXPECT_EQ(parse_log_level("off", LogLevel::Warn), LogLevel::Off);
  EXPECT_EQ(parse_log_level("bogus", LogLevel::Info), LogLevel::Info);
}

// --- spans ---------------------------------------------------------------

TEST(ObsSpan, DisabledTracerDropsRecordsAndScopedSpans) {
  obs::SpanTracer t;
  t.record({"dropped", "cat", "track", 0.0, 1.0});
  { obs::ScopedSpan span(&t, "also-dropped", "cat", "track"); }
  { obs::ScopedSpan span(nullptr, "null-tracer", "cat", "track"); }
  EXPECT_EQ(t.size(), 0u);
}

TEST(ObsSpan, WallClockScopedSpanRecordsOrderedTimes) {
  obs::SpanTracer t;
  obs::enable_wall_clock(t);
  { obs::ScopedSpan span(&t, "work", "test", "main"); }
  t.disable();
  const auto spans = t.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "work");
  EXPECT_EQ(spans[0].category, "test");
  EXPECT_EQ(spans[0].track, "main");
  EXPECT_GE(spans[0].end, spans[0].start);
}

TEST(ObsSpan, ChromeTraceJsonGolden) {
  // The export format is a stable artifact (about:tracing / Perfetto load
  // it); pin it exactly for a two-track trace with explicit virtual times.
  obs::SpanTracer t;
  t.enable();  // no clock: explicit-time records only
  t.record({"a", "sim", "t1", 0.0, 0.001});
  t.record({"b", "sim", "t2", 0.0005, 0.002});
  const std::string expected =
      "{\"traceEvents\":["
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"t1\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":2,"
      "\"args\":{\"name\":\"t2\"}},"
      "{\"name\":\"a\",\"cat\":\"sim\",\"ph\":\"X\",\"ts\":0,\"dur\":1000,"
      "\"pid\":1,\"tid\":1},"
      "{\"name\":\"b\",\"cat\":\"sim\",\"ph\":\"X\",\"ts\":500,\"dur\":1500,"
      "\"pid\":1,\"tid\":2}"
      "],\"displayTimeUnit\":\"ms\"}";
  EXPECT_EQ(t.chrome_trace_json(), expected);
}

// --- JSON writer ---------------------------------------------------------

TEST(ObsJson, EscapesAndNumbers) {
  EXPECT_EQ(obs::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(obs::json_number(0.0), "0");
  EXPECT_EQ(obs::json_number(1000.0), "1000");
  EXPECT_EQ(obs::json_number(std::nan("")), "null");
  // Round-trip: the emitted literal parses back to the same double.
  const double v = 0.1 + 0.2;
  EXPECT_EQ(std::stod(obs::json_number(v)), v);
}

TEST(ObsJson, WriterBuildsNestedDocument) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("name", "x").kv("n", std::int64_t{3}).kv("ok", true);
  w.key("list").begin_array().value(1).value(2).end_array();
  w.key("sub").begin_object().kv("d", 0.5).end_object();
  w.end_object();
  EXPECT_EQ(w.str(), "{\"name\":\"x\",\"n\":3,\"ok\":true,\"list\":[1,2],\"sub\":{\"d\":0.5}}");
}

// --- simulator integration ----------------------------------------------

TEST(ObsSim, VirtualClockSpansMatchSimRunResult) {
  // The spans the simulator records ARE its schedule: per host, the compute
  // spans must sum to that host's busy time, every span must fit inside
  // [0, ct], and there must be exactly one compute span per worker.
  cluster::AthlonCostModel cost;
  cluster::SimConfig config;
  obs::SpanTracer tracer;
  tracer.enable();
  config.tracer = &tracer;
  const auto run = cluster::simulate_run(2, 4, 1e-3, cost, config, 7);

  const auto spans = tracer.snapshot();
  ASSERT_FALSE(spans.empty());
  std::map<std::string, double> compute_per_host;
  std::size_t compute_spans = 0;
  for (const auto& s : spans) {
    EXPECT_EQ(s.category, "sim");
    EXPECT_GE(s.start, 0.0);
    EXPECT_GE(s.end, s.start);
    EXPECT_LE(s.end, run.concurrent_seconds + 1e-9);
    if (s.name.rfind("compute:", 0) == 0) {
      compute_per_host[s.track] += s.duration();
      ++compute_spans;
    }
  }
  EXPECT_EQ(compute_spans, run.workers.size());

  for (const auto& usage : run.host_usage) {
    const auto it = compute_per_host.find(usage.host);
    const double from_spans = it == compute_per_host.end() ? 0.0 : it->second;
    EXPECT_NEAR(from_spans, usage.busy_seconds, 1e-9) << "host " << usage.host;
    EXPECT_NEAR(usage.busy_seconds + usage.idle_seconds, run.concurrent_seconds, 1e-9);
  }
}

TEST(ObsSim, RunReportMatchesSimRunResult) {
  // The --report artifact must carry the run's exact numbers: generate a
  // small simulated run, build the report, and check the serialised values
  // token-for-token (json_number is deterministic).
  cluster::AthlonCostModel cost;
  cluster::SimConfig config;
  const auto run = cluster::simulate_run(2, 3, 1e-3, cost, config, 11);

  obs::RunReport report("test");
  report.derived().begin_object();
  report.derived().key("run");
  cluster::append_run_json(report.derived(), run);
  report.derived().end_object();
  const std::string json = report.json(obs::registry().snapshot());

  EXPECT_NE(json.find("\"tool\":\"test\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":{\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"st\":" + obs::json_number(run.sequential_seconds)), std::string::npos);
  EXPECT_NE(json.find("\"ct\":" + obs::json_number(run.concurrent_seconds)), std::string::npos);
  EXPECT_NE(json.find("\"m\":" + obs::json_number(run.weighted_machines)), std::string::npos);
  ASSERT_GT(run.concurrent_seconds, 0.0);
  EXPECT_NE(json.find("\"su\":" + obs::json_number(run.sequential_seconds /
                                                   run.concurrent_seconds)),
            std::string::npos);
  EXPECT_NE(json.find("\"tasks_spawned\":" + std::to_string(run.tasks_spawned)),
            std::string::npos);
  EXPECT_NE(json.find("\"network_bytes\":" + std::to_string(run.network_bytes)),
            std::string::npos);

  // Structural sanity: braces and brackets balance outside strings.
  int depth = 0;
  bool in_string = false, escaped = false;
  for (const char c : json) {
    if (escaped) { escaped = false; continue; }
    if (c == '\\') { escaped = true; continue; }
    if (c == '"') { in_string = !in_string; continue; }
    if (in_string) continue;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(ObsSim, SimulatorPopulatesGlobalMetrics) {
  auto& reg = obs::registry();
  const std::uint64_t runs_before = reg.snapshot().counter_or("cluster.sim_runs");
  cluster::AthlonCostModel cost;
  cluster::SimConfig config;
  const auto run = cluster::simulate_run(2, 3, 1e-3, cost, config, 5);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter_or("cluster.sim_runs"), runs_before + 1);
  EXPECT_GE(snap.counter_or("cluster.sim_network_bytes"), run.network_bytes);
}

}  // namespace
