// Tests for the paper's master/worker protocol (ProtocolMW +
// Create_Worker_Pool) and the restructured concurrent solver.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>

#include "core/concurrent_solver.hpp"
#include "core/master.hpp"
#include "core/protocol.hpp"
#include "core/worker.hpp"
#include "manifold/runtime.hpp"
#include "trace/trace_log.hpp"
#include "transport/seq_solver.hpp"

namespace {

using namespace mg;
using iwim::Unit;

mw::WorkerFactory doubler_factory() {
  return mw::make_worker_factory(
      [](const Unit& u) { return Unit::of(u.as<std::int64_t>() * 2); });
}

TEST(Protocol, SingleWorkerPool) {
  iwim::Runtime runtime;
  std::int64_t result = 0;
  auto master = mw::make_master(runtime, "m", [&](mw::MasterApi& api, iwim::ProcessContext&) {
    api.create_pool();
    api.create_worker();
    api.send_work(Unit::of(std::int64_t{21}));
    result = api.collect_result().as<std::int64_t>();
    api.rendezvous();
    api.finished();
  });
  const auto stats = mw::run_main_program(runtime, master, doubler_factory());
  EXPECT_EQ(result, 42);
  EXPECT_EQ(stats.pools_created, 1u);
  EXPECT_EQ(stats.workers_created, 1u);
}

TEST(Protocol, EmptyPoolRendezvousSucceedsImmediately) {
  // A pool with zero workers: the rendezvous must acknowledge at once
  // (t == now == 0 posts `end` directly, protocolMW.m line 46).
  iwim::Runtime runtime;
  auto master = mw::make_master(runtime, "m", [](mw::MasterApi& api, iwim::ProcessContext&) {
    api.create_pool();
    api.rendezvous();
    api.finished();
  });
  const auto stats = mw::run_main_program(runtime, master, doubler_factory());
  EXPECT_EQ(stats.pools_created, 1u);
  EXPECT_EQ(stats.workers_created, 0u);
}

TEST(Protocol, MultiplePoolsReuseTheProtocol) {
  // §4.2: "a more demanding master ... could easily raise the event
  // create_pool [again], in which case we jump again to the create_pool
  // state and another pool is created."
  iwim::Runtime runtime;
  std::int64_t total = 0;
  auto master = mw::make_master(runtime, "m", [&](mw::MasterApi& api, iwim::ProcessContext&) {
    for (int pool = 0; pool < 3; ++pool) {
      api.create_pool();
      for (std::int64_t k = 0; k < 4; ++k) {
        api.create_worker();
        api.send_work(Unit::of(k));
      }
      for (int k = 0; k < 4; ++k) total += api.collect_result().as<std::int64_t>();
      api.rendezvous();
    }
    api.finished();
  });
  const auto stats = mw::run_main_program(runtime, master, doubler_factory());
  EXPECT_EQ(stats.pools_created, 3u);
  EXPECT_EQ(stats.workers_created, 12u);
  EXPECT_EQ(total, 3 * 2 * (0 + 1 + 2 + 3));
}

TEST(Protocol, ManyWorkersStress) {
  constexpr std::int64_t kWorkers = 64;
  iwim::Runtime runtime;
  std::int64_t total = 0;
  auto master = mw::make_master(runtime, "m", [&](mw::MasterApi& api, iwim::ProcessContext&) {
    api.create_pool();
    for (std::int64_t k = 0; k < kWorkers; ++k) {
      api.create_worker();
      api.send_work(Unit::of(k));
    }
    for (std::int64_t k = 0; k < kWorkers; ++k) total += api.collect_result().as<std::int64_t>();
    api.rendezvous();
    api.finished();
  });
  mw::run_main_program(runtime, master, doubler_factory());
  EXPECT_EQ(total, kWorkers * (kWorkers - 1));  // 2 * sum(0..63)
}

TEST(Protocol, EachWorkerGetsItsOwnWorkItem) {
  // The BK stream dismantling must route work item k to worker k, never to
  // a stale stream of a previous worker.
  constexpr std::int64_t kWorkers = 16;
  iwim::Runtime runtime;
  std::set<std::int64_t> results;
  auto master = mw::make_master(runtime, "m", [&](mw::MasterApi& api, iwim::ProcessContext&) {
    api.create_pool();
    for (std::int64_t k = 0; k < kWorkers; ++k) {
      api.create_worker();
      api.send_work(Unit::of(k));
    }
    for (std::int64_t k = 0; k < kWorkers; ++k) {
      results.insert(api.collect_result().as<std::int64_t>());
    }
    api.rendezvous();
    api.finished();
  });
  mw::run_main_program(runtime, master, doubler_factory());
  EXPECT_EQ(results.size(), static_cast<std::size_t>(kWorkers));  // all distinct
}

TEST(Protocol, WorkersRunConcurrentlyWithMaster) {
  // The master can create worker k+1 while worker k has not produced its
  // result yet (results all collected at the end).
  iwim::Runtime runtime;
  std::atomic<int> concurrent_peak{0}, live{0};
  auto factory = mw::make_worker_factory([&](const Unit& u) {
    const int now = ++live;
    int expected = concurrent_peak.load();
    while (now > expected && !concurrent_peak.compare_exchange_weak(expected, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    --live;
    return u;
  });
  auto master = mw::make_master(runtime, "m", [&](mw::MasterApi& api, iwim::ProcessContext&) {
    api.create_pool();
    for (std::int64_t k = 0; k < 6; ++k) {
      api.create_worker();
      api.send_work(Unit::of(k));
    }
    for (int k = 0; k < 6; ++k) api.collect_result();
    api.rendezvous();
    api.finished();
  });
  mw::run_main_program(runtime, master, std::move(factory));
  EXPECT_GT(concurrent_peak.load(), 1);
}

TEST(Protocol, TraceShowsWelcomeAndBye) {
  trace::TraceLog log;
  iwim::RuntimeConfig config;
  config.trace = &log;
  iwim::Runtime runtime(config);
  auto master = mw::make_master(runtime, "m", [](mw::MasterApi& api, iwim::ProcessContext&) {
    api.create_pool();
    api.create_worker();
    api.send_work(Unit::of(std::int64_t{1}));
    api.collect_result();
    api.rendezvous();
    api.finished();
  });
  mw::run_main_program(runtime, master, doubler_factory());
  // run_main_program waits for master and coordinator, but the worker thread
  // may still be unwinding; join everything before counting trace lines.
  runtime.shutdown();
  std::size_t welcomes = 0, byes = 0;
  for (const auto& m : log.snapshot()) {
    if (m.text == "Welcome") ++welcomes;
    if (m.text == "Bye") ++byes;
  }
  EXPECT_EQ(welcomes, 3u);  // master, Main, worker
  EXPECT_EQ(byes, 3u);
  // Formatting matches the paper's two-line label -> message layout.
  const std::string rendered = log.snapshot().front().format();
  EXPECT_NE(rendered.find(" -> "), std::string::npos);
}

TEST(Protocol, TaskPlacementFollowsMlinkSpec) {
  // With the paper's distributed spec, each worker occupies its own task
  // instance while the master (+ coordinator) stays in the startup task.
  iwim::Runtime runtime;  // default: paper_distributed + 32 generated hosts
  auto master = mw::make_master(runtime, "m", [](mw::MasterApi& api, iwim::ProcessContext&) {
    api.create_pool();
    for (std::int64_t k = 0; k < 3; ++k) {
      api.create_worker();
      api.send_work(Unit::of(k));
    }
    for (int k = 0; k < 3; ++k) api.collect_result();
    api.rendezvous();
    api.finished();
  });
  // Workers park until released so all three coexist (forcing 3 tasks).
  std::atomic<int> arrived{0};
  auto factory = mw::make_worker_factory([&](const Unit& u) {
    ++arrived;
    while (arrived.load() < 3) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return u;
  });
  mw::run_main_program(runtime, master, std::move(factory));
  EXPECT_EQ(runtime.tasks().stats().tasks_created, 4u);  // startup + 3 workers
  EXPECT_EQ(runtime.tasks().stats().peak_busy, 4u);
}

TEST(Protocol, ParallelBundlingKeepsOneMachine) {
  // §6: changing the MLINK load to bundle everything into one task turns the
  // distributed application into a parallel one.
  iwim::RuntimeConfig config;
  config.tasks = iwim::TaskCompositionSpec::paper_parallel(8);
  iwim::Runtime runtime(config);
  auto master = mw::make_master(runtime, "m", [](mw::MasterApi& api, iwim::ProcessContext&) {
    api.create_pool();
    for (std::int64_t k = 0; k < 8; ++k) {
      api.create_worker();
      api.send_work(Unit::of(k));
    }
    for (int k = 0; k < 8; ++k) api.collect_result();
    api.rendezvous();
    api.finished();
  });
  mw::run_main_program(runtime, master, doubler_factory());
  EXPECT_EQ(runtime.tasks().stats().tasks_created, 1u);
}

// ---- the concurrent solver ----------------------------------------------------------

struct SolverParam {
  int root;
  int level;
  double tol;
  bool pool_per_family;
  mw::DataPath path;
};

class ConcurrentMatchesSequential : public ::testing::TestWithParam<SolverParam> {};

TEST_P(ConcurrentMatchesSequential, BitExactAgreement) {
  const auto p = GetParam();
  transport::ProgramConfig program;
  program.root = p.root;
  program.level = p.level;
  program.le_tol = p.tol;

  const auto seq = transport::solve_sequential(program);

  mw::ConcurrentOptions options;
  options.pool_per_family = p.pool_per_family;
  options.data_path = p.path;
  const auto conc = mw::solve_concurrent(program, options);

  EXPECT_EQ(conc.solve.combined.max_diff(seq.combined), 0.0)
      << "§6: results must be exactly the same as in the sequential version";
  EXPECT_EQ(conc.protocol.workers_created, grid::component_count(p.level));
  EXPECT_EQ(conc.protocol.pools_created,
            p.pool_per_family && p.level >= 1 ? 2u : 1u);
  ASSERT_EQ(conc.solve.records.size(), seq.records.size());
  for (std::size_t k = 0; k < seq.records.size(); ++k) {
    EXPECT_EQ(conc.solve.records[k].grid, seq.records[k].grid);
    EXPECT_EQ(conc.solve.records[k].stats.accepted, seq.records[k].stats.accepted);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, ConcurrentMatchesSequential,
    ::testing::Values(
        SolverParam{2, 0, 1e-3, false, mw::DataPath::ThroughMaster},
        SolverParam{2, 1, 1e-3, false, mw::DataPath::ThroughMaster},
        SolverParam{2, 3, 1e-3, false, mw::DataPath::ThroughMaster},
        SolverParam{2, 3, 1e-4, false, mw::DataPath::ThroughMaster},
        SolverParam{2, 3, 1e-3, true, mw::DataPath::ThroughMaster},
        SolverParam{2, 3, 1e-3, false, mw::DataPath::SharedGlobal},
        SolverParam{2, 4, 1e-3, true, mw::DataPath::SharedGlobal},
        SolverParam{1, 3, 1e-3, false, mw::DataPath::ThroughMaster},
        SolverParam{3, 2, 1e-3, false, mw::DataPath::ThroughMaster}));

TEST(ConcurrentSolver, IsDeterministicAcrossRuns) {
  transport::ProgramConfig program;
  program.level = 3;
  const auto a = mw::solve_concurrent(program);
  const auto b = mw::solve_concurrent(program);
  EXPECT_EQ(a.solve.combined.max_diff(b.solve.combined), 0.0);
}

TEST(ConcurrentSolver, TaskStatsAreReported) {
  transport::ProgramConfig program;
  program.level = 2;
  const auto result = mw::solve_concurrent(program);
  EXPECT_GE(result.tasks.tasks_created, 2u);
  EXPECT_FALSE(result.tasks.machine_events.empty());
}

}  // namespace
