// Cross-module integration tests: failure injection in the protocol, the
// measured-cost-model pipeline (real kernel timings feeding the cluster
// simulator), tracing end-to-end, and protocol genericity.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "cluster/cluster_sim.hpp"
#include "cluster/cost_model.hpp"
#include "core/concurrent_solver.hpp"
#include "core/master.hpp"
#include "core/protocol.hpp"
#include "core/worker.hpp"
#include "manifold/runtime.hpp"
#include "trace/trace_log.hpp"
#include "transport/seq_solver.hpp"

namespace {

using namespace mg;
using iwim::Unit;

// ---- failure injection -----------------------------------------------------------

TEST(FailureInjection, CrashingWorkerStillDiesAndRendezvousCompletes) {
  iwim::Runtime runtime;
  int empties = 0;
  auto master = mw::make_master(runtime, "m", [&](mw::MasterApi& api, iwim::ProcessContext&) {
    api.create_pool();
    for (std::int64_t k = 0; k < 4; ++k) {
      api.create_worker();
      api.send_work(Unit::of(k));
    }
    for (int k = 0; k < 4; ++k) {
      if (api.collect_result().empty()) ++empties;
    }
    api.rendezvous();  // must not hang even though workers 1 and 3 crashed
    api.finished();
  });
  auto factory = mw::make_worker_factory([](const Unit& u) {
    if (u.as<std::int64_t>() % 2 == 1) throw std::runtime_error("injected worker crash");
    return u;
  });
  const auto stats = mw::run_main_program(runtime, master, std::move(factory));
  EXPECT_EQ(stats.workers_created, 4u);
  EXPECT_EQ(empties, 2);
}

TEST(FailureInjection, AllWorkersCrashingStillTerminates) {
  iwim::Runtime runtime;
  auto master = mw::make_master(runtime, "m", [&](mw::MasterApi& api, iwim::ProcessContext&) {
    api.create_pool();
    for (std::int64_t k = 0; k < 3; ++k) {
      api.create_worker();
      api.send_work(Unit::of(k));
    }
    for (int k = 0; k < 3; ++k) api.collect_result();
    api.rendezvous();
    api.finished();
  });
  auto factory = mw::make_worker_factory(
      [](const Unit&) -> Unit { throw std::runtime_error("boom"); });
  EXPECT_NO_FATAL_FAILURE(mw::run_main_program(runtime, master, std::move(factory)));
}

TEST(FailureInjection, CrashingMasterDoesNotHangTheProtocol) {
  // ProtocolMW's begin state also waits on terminated(master): a master that
  // dies without raising finished still releases the coordinator.
  iwim::Runtime runtime;
  auto master = mw::make_master(runtime, "m", [](mw::MasterApi& api, iwim::ProcessContext&) {
    api.create_pool();
    api.rendezvous();
    throw std::runtime_error("master crash before finished");
  });
  const auto stats =
      mw::run_main_program(runtime, master, mw::make_worker_factory([](const Unit& u) {
        return u;
      }));
  EXPECT_EQ(stats.pools_created, 1u);
}

// ---- measured cost model pipeline ---------------------------------------------------

TEST(MeasuredPipeline, RealKernelTimingsDriveTheSimulator) {
  // Measure the real subsolve on small grids, fit the cost model, and use it
  // to simulate a (small-level) table — the full calibration pipeline.
  std::vector<cluster::MeasuredCostModel::Sample> samples;
  transport::SubsolveConfig kernel;
  for (int lm = 2; lm <= 4; ++lm) {
    for (int l = 0; l <= lm; ++l) {
      for (double tol : {1e-3, 1e-4}) {
        kernel.le_tol = tol;
        const grid::Grid2D g(2, l, lm - l);
        const auto r = transport::subsolve(g, kernel);
        samples.push_back({2, l, lm - l, tol, std::max(r.elapsed_seconds, 1e-6)});
      }
    }
  }
  samples.push_back(samples.front());  // break the tie: 1e-3 becomes base
  const cluster::MeasuredCostModel model(samples, 2000.0);
  EXPECT_GT(model.cost_per_cell(), 0.0);
  EXPECT_GT(model.tol_factor(), 1.0);

  cluster::SimConfig config;
  config.runs = 2;
  const auto rows = cluster::simulate_table(2, 6, 1e-3, model, config);
  ASSERT_EQ(rows.size(), 7u);
  for (const auto& row : rows) {
    EXPECT_GT(row.st, 0.0);
    EXPECT_GT(row.ct, 0.0);
    EXPECT_LT(row.su, 1.0);  // tiny problems cannot win on a cluster
  }
}

// ---- tracing end-to-end ---------------------------------------------------------------

TEST(TraceIntegration, ConcurrentSolveEmitsPaperStyleChronology) {
  trace::TraceLog log;
  transport::ProgramConfig program;
  program.level = 2;
  mw::ConcurrentOptions options;
  options.trace = &log;
  options.hosts = iwim::HostMap::paper_hosts();
  mw::solve_concurrent(program, options);

  const auto messages = log.snapshot();
  ASSERT_FALSE(messages.empty());
  // First message is the master's Welcome on the startup machine.
  EXPECT_EQ(messages.front().text, "Welcome");
  EXPECT_EQ(messages.front().host, "bumpa.sen.cwi.nl");
  // Every worker Welcome carries a worker host from the CONFIG list and the
  // task name from the MLINK spec.
  std::size_t worker_welcomes = 0;
  for (const auto& m : messages) {
    EXPECT_EQ(m.task_name, "mainprog");
    if (m.manifold_name == "Worker" && m.text == "Welcome") {
      ++worker_welcomes;
      EXPECT_NE(m.host, "");
    }
  }
  EXPECT_EQ(worker_welcomes, grid::component_count(program.level));
}

TEST(TraceIntegration, MachineEventsYieldEbbFlow) {
  transport::ProgramConfig program;
  program.level = 3;
  const auto result = mw::solve_concurrent(program);
  const auto series = trace::build_ebb_flow(result.tasks.machine_events, 1.0);
  EXPECT_GE(series.peak(), 1);
  EXPECT_GT(series.weighted_average(), 0.0);
}

// ---- genericity (the task-farm reuse) ---------------------------------------------------

TEST(Genericity, SameProtocolRunsQuadratureFarm) {
  iwim::Runtime runtime;
  double integral = 0.0;
  const int panels = 8;
  auto master = mw::make_master(runtime, "m", [&](mw::MasterApi& api, iwim::ProcessContext&) {
    api.create_pool();
    for (int k = 0; k < panels; ++k) {
      api.create_worker();
      api.send_work(Unit::of(std::pair<double, double>{k / 8.0, (k + 1) / 8.0}));
    }
    for (int k = 0; k < panels; ++k) integral += api.collect_result().as<double>();
    api.rendezvous();
    api.finished();
  });
  // Worker integrates x^2 over its panel exactly.
  auto factory = mw::make_worker_factory([](const Unit& u) {
    const auto [a, b] = u.as<std::pair<double, double>>();
    return Unit::of((b * b * b - a * a * a) / 3.0);
  });
  mw::run_main_program(runtime, master, std::move(factory));
  EXPECT_NEAR(integral, 1.0 / 3.0, 1e-12);
}

TEST(Genericity, TwoIndependentApplicationsDoNotInterfere) {
  // Two runtimes (= two MANIFOLD applications) in one process: event
  // broadcasts must stay within their own application.
  iwim::Runtime app1, app2;
  std::atomic<int> woken1{0};
  auto waiter = app1.create_process("W", "w", [&](iwim::ProcessContext& ctx) {
    if (ctx.await_for({{"shared_name", std::nullopt}}, std::chrono::milliseconds(100))) {
      ++woken1;
    }
  });
  waiter->activate();
  auto raiser = app2.create_process("R", "r",
                                    [](iwim::ProcessContext& ctx) { ctx.raise("shared_name"); });
  raiser->activate();
  waiter->wait_terminated();
  EXPECT_EQ(woken1.load(), 0);  // app2's event never reached app1
}

// ---- sequential/concurrent agreement under solver variants -------------------------------

TEST(SolverVariants, KrylovBackendAlsoMatchesItsOwnSequentialRun) {
  transport::ProgramConfig program;
  program.level = 2;
  program.kernel.system.solver = transport::StageSolverKind::BiCgStabIlu0;
  const auto seq = transport::solve_sequential(program);
  const auto conc = mw::solve_concurrent(program);
  EXPECT_EQ(conc.solve.combined.max_diff(seq.combined), 0.0);
}

TEST(SolverVariants, UpwindSchemeAlsoMatches) {
  transport::ProgramConfig program;
  program.level = 2;
  program.kernel.system.scheme = transport::AdvectionScheme::Upwind1;
  const auto seq = transport::solve_sequential(program);
  const auto conc = mw::solve_concurrent(program);
  EXPECT_EQ(conc.solve.combined.max_diff(seq.combined), 0.0);
}

}  // namespace
