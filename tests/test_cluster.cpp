// Tests for the cluster model: host specs, the network model, the two cost
// models, and the virtual-time simulation that regenerates Table 1 and
// Figure 1 — including the qualitative properties the paper reports.
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/cluster_sim.hpp"
#include "cluster/cost_model.hpp"
#include "cluster/host.hpp"
#include "cluster/network.hpp"
#include "grid/combination.hpp"
#include "support/check.hpp"

namespace {

using namespace mg;
using namespace mg::cluster;

// ---- cluster spec -----------------------------------------------------------

TEST(Cluster, PaperSpecHas32AthlonsInTheRightMix) {
  const auto spec = ClusterSpec::paper();
  ASSERT_EQ(spec.size(), 32u);
  int n1200 = 0, n1400 = 0, n1466 = 0;
  for (const auto& h : spec.hosts) {
    if (h.mhz == 1200.0) ++n1200;
    if (h.mhz == 1400.0) ++n1400;
    if (h.mhz == 1466.0) ++n1466;
  }
  EXPECT_EQ(n1200, 24);
  EXPECT_EQ(n1400, 5);
  EXPECT_EQ(n1466, 3);
  EXPECT_EQ(spec.startup().name, "bumpa.sen.cwi.nl");
}

TEST(Cluster, HomogeneousSpec) {
  const auto spec = ClusterSpec::homogeneous(8, 1000.0);
  EXPECT_EQ(spec.size(), 8u);
  for (const auto& h : spec.hosts) EXPECT_DOUBLE_EQ(h.mhz, 1000.0);
}

// ---- network ------------------------------------------------------------------

TEST(Network, TransferTimeHasLatencyPlusBandwidthTerm) {
  NetworkModel net;
  const double t0 = net.transfer_seconds(0);
  EXPECT_DOUBLE_EQ(t0, net.latency_s);
  const double t1mb = net.transfer_seconds(1'000'000);
  EXPECT_NEAR(t1mb - t0, 8e6 / (net.bandwidth_bps * net.efficiency), 1e-12);
  EXPECT_GT(net.transfer_seconds(2'000'000), t1mb);
}

// ---- Athlon cost model -----------------------------------------------------------

TEST(AthlonModel, SequentialTimesMatchPaperColumn) {
  // The calibration target: st within ~15% of the paper at high levels.
  const AthlonCostModel cost;
  const double st15 = cost.sequential_seconds(2, 15, 1e-3, 1200.0);
  EXPECT_NEAR(st15, 2019.0, 0.15 * 2019.0);
  const double st10 = cost.sequential_seconds(2, 10, 1e-3, 1200.0);
  EXPECT_NEAR(st10, 24.14, 0.3 * 24.14);
}

TEST(AthlonModel, ToleranceFactorRoughlyDoubles) {
  const AthlonCostModel cost;
  const double r = cost.sequential_seconds(2, 12, 1e-4, 1200.0) /
                   cost.sequential_seconds(2, 12, 1e-3, 1200.0);
  EXPECT_NEAR(r, 2.04, 0.15);
}

TEST(AthlonModel, FasterHostIsProportionallyFaster) {
  const AthlonCostModel cost;
  const grid::Grid2D g(2, 3, 3);
  const double slow = cost.subsolve_seconds(g, 1e-3, 1200.0);
  const double fast = cost.subsolve_seconds(g, 1e-3, 1466.0);
  EXPECT_NEAR(slow / fast, 1466.0 / 1200.0, 1e-9);
}

TEST(AthlonModel, SquareGridsCostMoreThanThinOnes) {
  // Within one family all grids have the same cell count, but the aspect
  // weight makes the near-square grids the expensive ones — the load
  // imbalance that keeps the paper's m well below the worker count.
  const AthlonCostModel cost;
  const double thin = cost.subsolve_seconds(grid::Grid2D(2, 0, 10), 1e-3, 1200.0);
  const double square = cost.subsolve_seconds(grid::Grid2D(2, 5, 5), 1e-3, 1200.0);
  EXPECT_GT(square, thin);
}

TEST(AthlonModel, SequentialDecomposesIntoParts) {
  const AthlonCostModel cost;
  double sum = cost.init_seconds(1200.0) + cost.prolongation_seconds(2, 4, 1200.0);
  for (const auto& t : grid::combination_terms(2, 4)) {
    sum += cost.subsolve_seconds(t.grid, 1e-3, 1200.0);
  }
  EXPECT_NEAR(cost.sequential_seconds(2, 4, 1e-3, 1200.0), sum, 1e-12);
}

// ---- measured cost model ----------------------------------------------------------

TEST(MeasuredModel, RecoversSyntheticParameters) {
  // Generate samples from a known law and check the fit recovers it.
  const double c_true = 3e-7, kappa_true = 0.05;
  std::vector<MeasuredCostModel::Sample> samples;
  for (int lm = 2; lm <= 6; ++lm) {
    for (int l = 0; l <= lm; ++l) {
      const grid::Grid2D g(2, l, lm - l);
      const double cells = static_cast<double>(g.cells_x()) * static_cast<double>(g.cells_y());
      const double sec =
          c_true * cells * (1.0 + kappa_true * std::pow(2.0, std::min(l, lm - l)));
      samples.push_back({2, l, lm - l, 1e-3, sec});
      samples.push_back({2, l, lm - l, 1e-4, 2.5 * sec});
    }
  }
  // 1e-3 and 1e-4 have equal sample counts; make 1e-3 the base.
  samples.push_back({2, 1, 1, 1e-3,
                     c_true * 64.0 * (1.0 + kappa_true * 2.0)});
  const MeasuredCostModel model(samples, 2000.0);
  EXPECT_NEAR(model.cost_per_cell(), c_true, 0.05 * c_true);
  EXPECT_NEAR(model.aspect_kappa(), kappa_true, 0.05);
  EXPECT_NEAR(model.tol_factor(), 2.5, 0.1);
}

TEST(MeasuredModel, RequiresSamples) {
  EXPECT_THROW(MeasuredCostModel({}, 1000.0), mg::support::ContractViolation);
}

TEST(MeasuredModel, SingleToleranceFallsBackToFactorTwo) {
  std::vector<MeasuredCostModel::Sample> samples = {{2, 1, 1, 1e-3, 0.01},
                                                    {2, 2, 2, 1e-3, 0.16}};
  const MeasuredCostModel model(samples, 1000.0);
  EXPECT_DOUBLE_EQ(model.tol_factor(), 2.0);
}

// ---- the simulated run -------------------------------------------------------------

TEST(ClusterSim, DeterministicForFixedSeed) {
  const AthlonCostModel cost;
  const SimConfig config;
  const auto a = simulate_run(2, 8, 1e-3, cost, config, 11);
  const auto b = simulate_run(2, 8, 1e-3, cost, config, 11);
  EXPECT_DOUBLE_EQ(a.concurrent_seconds, b.concurrent_seconds);
  EXPECT_DOUBLE_EQ(a.weighted_machines, b.weighted_machines);
  const auto c = simulate_run(2, 8, 1e-3, cost, config, 12);
  EXPECT_NE(a.concurrent_seconds, c.concurrent_seconds);
}

TEST(ClusterSim, NoNoiseMakesSeedsIrrelevant) {
  const AthlonCostModel cost;
  SimConfig config;
  config.noise_amplitude = 0.0;
  const auto a = simulate_run(2, 6, 1e-3, cost, config, 1);
  const auto b = simulate_run(2, 6, 1e-3, cost, config, 999);
  EXPECT_DOUBLE_EQ(a.concurrent_seconds, b.concurrent_seconds);
}

TEST(ClusterSim, WorkerCountMatchesPaperFormula) {
  const AthlonCostModel cost;
  const SimConfig config;
  for (int level : {0, 3, 7}) {
    const auto run = simulate_run(2, level, 1e-3, cost, config, 5);
    EXPECT_EQ(run.workers.size(), static_cast<std::size_t>(2 * level + 1))
        << "w = 2l + 1 (§7)";
  }
}

TEST(ClusterSim, PeakMachinesNeverExceedsClusterPlusNothing) {
  const AthlonCostModel cost;
  const SimConfig config;
  const auto run = simulate_run(2, 15, 1e-3, cost, config, 5);
  EXPECT_LE(run.peak_machines, 32);
  EXPECT_LE(run.tasks_spawned, 32u);
}

TEST(ClusterSim, WorkerTimelinesAreCausal) {
  const AthlonCostModel cost;
  const SimConfig config;
  const auto run = simulate_run(2, 10, 1e-3, cost, config, 3);
  for (const auto& w : run.workers) {
    EXPECT_LE(w.requested, w.ready);
    EXPECT_LE(w.ready, w.input_done);
    EXPECT_LE(w.input_done, w.compute_start);
    EXPECT_LT(w.compute_start, w.compute_end);
    EXPECT_LE(w.compute_end, w.result_done);
    EXPECT_LT(w.result_done, w.death);
    EXPECT_LE(w.death, run.concurrent_seconds + 1e-9);
  }
}

TEST(ClusterSim, ComputeIntervalsOnOneHostDoNotOverlap) {
  const AthlonCostModel cost;
  const SimConfig config;
  const auto run = simulate_run(2, 12, 1e-3, cost, config, 3);
  for (std::size_t i = 0; i < run.workers.size(); ++i) {
    for (std::size_t j = i + 1; j < run.workers.size(); ++j) {
      if (run.workers[i].host != run.workers[j].host) continue;
      const auto& a = run.workers[i];
      const auto& b = run.workers[j];
      const bool disjoint = a.compute_end <= b.compute_start + 1e-9 ||
                            b.compute_end <= a.compute_start + 1e-9;
      EXPECT_TRUE(disjoint) << "overlap on " << a.host;
    }
  }
}

TEST(ClusterSim, SequentialModelIsNoisyAroundAthlonModel) {
  const AthlonCostModel cost;
  SimConfig config;
  config.noise_amplitude = 0.08;
  const auto run = simulate_run(2, 9, 1e-3, cost, config, 17);
  const double clean = cost.sequential_seconds(2, 9, 1e-3, 1200.0);
  EXPECT_GE(run.sequential_seconds, clean);            // noise only slows down
  EXPECT_LE(run.sequential_seconds, clean * 1.1);
}

// ---- the paper's qualitative findings ------------------------------------------------

TEST(ClusterSim, NoSpeedupBelowLevelTen) {
  // §7: "for the runs with l < 10 there is no gain in time".
  const AthlonCostModel cost;
  const SimConfig config;
  for (int level : {2, 5, 8}) {
    const auto row = simulate_table_row(2, level, 1e-3, cost, config);
    EXPECT_LT(row.su, 1.0) << "level " << level;
  }
}

TEST(ClusterSim, SpeedupGrowsBeyondCrossover) {
  // §7: "for the l >= 10 runs we see a gain in time" growing to ~7.8/7.9.
  const AthlonCostModel cost;
  const SimConfig config;
  double prev = 0.0;
  for (int level : {11, 13, 15}) {
    const auto row = simulate_table_row(2, level, 1e-3, cost, config);
    EXPECT_GT(row.su, prev) << "level " << level;
    prev = row.su;
  }
  EXPECT_GT(prev, 5.0);
  EXPECT_LT(prev, 10.0);
}

TEST(ClusterSim, SpeedupLagsBehindMachineCount) {
  // §7: "the average speedup in a run always lags behind the average number
  // of machines it uses".
  const AthlonCostModel cost;
  const SimConfig config;
  for (int level : {6, 10, 13, 15}) {
    const auto row = simulate_table_row(2, level, 1e-3, cost, config);
    EXPECT_LT(row.su, row.m) << "level " << level;
  }
}

TEST(ClusterSim, MachineCountGrowsWithLevel) {
  const AthlonCostModel cost;
  const SimConfig config;
  const auto low = simulate_table_row(2, 3, 1e-3, cost, config);
  const auto high = simulate_table_row(2, 15, 1e-3, cost, config);
  EXPECT_GT(high.m, low.m);
  EXPECT_GT(high.m, 6.0);
}

TEST(ClusterSim, TighterToleranceRoughlyDoublesTimes) {
  const AthlonCostModel cost;
  const SimConfig config;
  const auto r3 = simulate_table_row(2, 13, 1e-3, cost, config);
  const auto r4 = simulate_table_row(2, 13, 1e-4, cost, config);
  EXPECT_NEAR(r4.st / r3.st, 2.04, 0.2);
  EXPECT_GT(r4.ct, r3.ct);
}

TEST(ClusterSim, PerpetualReuseNeedsFewerMachinesThanWorkers) {
  // §6: "we need less than six machines to run an application with five
  // workers" — tasks are reused when workers die before new ones arrive.
  const AthlonCostModel cost;
  const SimConfig config;
  const auto run = simulate_run(2, 5, 1e-3, cost, config, 3);  // 11 workers
  EXPECT_LT(run.tasks_spawned, run.workers.size());
}

TEST(ClusterSim, BackgroundJobsSlowTheRunDown) {
  // §7's runaway-Netscape effect: hosts with background jobs stretch ct.
  const AthlonCostModel cost;
  SimConfig clean;
  clean.noise_amplitude = 0.0;
  SimConfig loaded = clean;
  loaded.background_job_probability = 1.0;  // every host afflicted
  loaded.background_slowdown = 2.0;
  const auto fast = simulate_run(2, 12, 1e-3, cost, clean, 3);
  const auto slow = simulate_run(2, 12, 1e-3, cost, loaded, 3);
  // Compute roughly doubles; the fixed spawn/marshal overheads do not, so
  // the overall stretch lands between 1.3x and 2x.
  EXPECT_GT(slow.concurrent_seconds, 1.3 * fast.concurrent_seconds);
  EXPECT_LT(slow.concurrent_seconds, 2.0 * fast.concurrent_seconds);
  // The sequential baseline is measured on the unloaded startup machine.
  EXPECT_DOUBLE_EQ(slow.sequential_seconds, fast.sequential_seconds);
}

TEST(ClusterSim, BackgroundJobsOffByDefault) {
  EXPECT_DOUBLE_EQ(SimConfig{}.background_job_probability, 0.0);
}

TEST(ClusterSim, TableAveragesOverRuns) {
  const AthlonCostModel cost;
  SimConfig config;
  config.runs = 3;
  const auto rows = simulate_table(2, 4, 1e-3, cost, config);
  ASSERT_EQ(rows.size(), 5u);
  for (int level = 0; level <= 4; ++level) {
    EXPECT_EQ(rows[static_cast<std::size_t>(level)].level, level);
    EXPECT_GT(rows[static_cast<std::size_t>(level)].ct, 0.0);
    EXPECT_NEAR(rows[static_cast<std::size_t>(level)].su,
                rows[static_cast<std::size_t>(level)].st /
                    rows[static_cast<std::size_t>(level)].ct,
                1e-12);
  }
}

TEST(ClusterSim, EbbFlowEndsAtZeroMachines) {
  const AthlonCostModel cost;
  const SimConfig config;
  const auto run = simulate_run(2, 7, 1e-3, cost, config, 9);
  EXPECT_EQ(run.ebb_flow.counts.back(), 0);  // everything released at the end
  EXPECT_GE(run.peak_machines, 2);
}

}  // namespace
