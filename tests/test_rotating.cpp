// Tests for the Molenkamp–Crowley rotating-cone system: variable-coefficient
// upwinding, exactness properties of the rotated reference solution, and the
// behaviour of the solver over partial and full revolutions.
#include <gtest/gtest.h>

#include <cmath>

#include "transport/rotating.hpp"

namespace {

using namespace mg;
using namespace mg::transport;

TEST(RotatingProblem, ExactSolutionRotatesTheCone) {
  RotatingConeProblem p;
  // At t = 0 the cone sits at (cx + r0, cy).
  EXPECT_NEAR(p.exact(p.cx + p.r0, p.cy, 0.0), p.amplitude, 1e-12);
  // After a quarter turn (t = 0.25 at one rev/unit) it sits at (cx, cy + r0).
  EXPECT_NEAR(p.exact(p.cx, p.cy + p.r0, 0.25), p.amplitude, 1e-9);
  // After a full revolution it is back.
  EXPECT_NEAR(p.exact(p.cx + p.r0, p.cy, 1.0), p.amplitude, 1e-9);
}

TEST(RotatingProblem, VelocityFieldIsSolidBodyRotation) {
  RotatingConeProblem p;
  // At the rotation centre the velocity vanishes.
  EXPECT_DOUBLE_EQ(p.velocity_x(p.cx, p.cy), 0.0);
  EXPECT_DOUBLE_EQ(p.velocity_y(p.cx, p.cy), 0.0);
  // The field is divergence-free and perpendicular to the radius.
  const double x = 0.7, y = 0.6;
  const double vx = p.velocity_x(x, y), vy = p.velocity_y(x, y);
  EXPECT_NEAR(vx * (x - p.cx) + vy * (y - p.cy), 0.0, 1e-12);
}

TEST(RotatingSystem, JacobianRowSumsVanishAwayFromBoundary) {
  // Pure advection in conservation form on interior-of-interior rows: the
  // stencil weights sum to zero (constants are in the kernel).
  const grid::Grid2D g(2, 2, 2);
  RotatingConeSystem system(g, RotatingConeProblem{});
  const auto& a = system.jacobian();
  for (std::size_t j = 2; j + 1 <= g.interior_y() - 1; ++j) {
    for (std::size_t i = 2; i + 1 <= g.interior_x() - 1; ++i) {
      const std::size_t row = g.interior_index(i, j);
      double sum = 0.0;
      for (std::size_t k = a.row_ptr()[row]; k < a.row_ptr()[row + 1]; ++k) {
        sum += a.values()[k];
      }
      EXPECT_NEAR(sum, 0.0, 1e-12);
    }
  }
}

TEST(RotatingSystem, UpwindOffDiagonalsAreNonNegative) {
  const grid::Grid2D g(2, 2, 2);
  RotatingConeSystem system(g, RotatingConeProblem{});
  const auto& a = system.jacobian();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = a.row_ptr()[i]; k < a.row_ptr()[i + 1]; ++k) {
      if (a.col_idx()[k] == i) {
        EXPECT_LE(a.values()[k], 0.0);
      } else {
        EXPECT_GE(a.values()[k], 0.0);
      }
    }
  }
}

TEST(RotatingSystem, ExpandRestrictRoundTrip) {
  const grid::Grid2D g(2, 2, 1);
  RotatingConeSystem system(g, RotatingConeProblem{});
  grid::Field f(g, 0.0);
  for (std::size_t j = 1; j <= g.interior_y(); ++j) {
    for (std::size_t i = 1; i <= g.interior_x(); ++i) f.at(i, j) = 0.1 * (i + j);
  }
  const auto u = system.restrict_interior(f);
  EXPECT_EQ(system.expand(u).max_diff(f), 0.0);
}

TEST(RotatingSolve, PeakTracksTheRotation) {
  // After a quarter revolution the numerical peak must be near
  // (cx, cy + r0), not at the initial position.
  RotatingConeProblem p;
  const grid::Grid2D g(2, 3, 3);
  const auto r = solve_rotating_cone(g, p, 1e-4, 0.25);
  double best = -1.0;
  double bx = 0, by = 0;
  for (std::size_t j = 0; j < g.nodes_y(); ++j) {
    for (std::size_t i = 0; i < g.nodes_x(); ++i) {
      if (r.solution.at(i, j) > best) {
        best = r.solution.at(i, j);
        bx = g.x(i);
        by = g.y(j);
      }
    }
  }
  EXPECT_NEAR(bx, p.cx, 0.12);
  EXPECT_NEAR(by, p.cy + p.r0, 0.12);
  EXPECT_GT(best, 0.2);  // smeared by upwind diffusion, but clearly present
}

TEST(RotatingSolve, ErrorDecreasesWithRefinement) {
  RotatingConeProblem p;
  double prev = 1e9;
  for (int l = 1; l <= 3; ++l) {
    const auto r = solve_rotating_cone(grid::Grid2D(2, l, l), p, 1e-4, 0.25);
    EXPECT_LT(r.max_error, prev);
    prev = r.max_error;
  }
}

TEST(RotatingSolve, UpwindKeepsTheSolutionInBounds) {
  // Monotone scheme: no overshoots above the initial amplitude and no
  // significant undershoots below zero.
  RotatingConeProblem p;
  const auto r = solve_rotating_cone(grid::Grid2D(2, 3, 3), p, 1e-4, 0.5);
  double lo = 1e9, hi = -1e9;
  for (double v : r.solution.data()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GE(lo, -1e-3);
  EXPECT_LE(hi, p.amplitude * 1.001);
}

TEST(RotatingSolve, IsDeterministic) {
  RotatingConeProblem p;
  const auto a = solve_rotating_cone(grid::Grid2D(2, 2, 2), p, 1e-3, 0.25);
  const auto b = solve_rotating_cone(grid::Grid2D(2, 2, 2), p, 1e-3, 0.25);
  EXPECT_EQ(a.solution.max_diff(b.solution), 0.0);
}

}  // namespace
