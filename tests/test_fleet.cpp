// Tests for the elastic worker fleet: the seeded ChurnPlan and its spec
// parser, the shared FleetCounters contract, churn applied to the threaded
// pool (protocol level and full solve), the virtual-time elastic simulator
// (determinism + exactly-once completion), the elastic TCP endpoint
// (stealing, disrupt-driven churn, speculative-duplicate discard), and the
// worker reconnect failure-budget regression.  The one invariant everything
// here asserts from a different angle: however much the fleet churns, every
// work unit is combined exactly once and results stay bit-identical to the
// fault-free sequential solve.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "cluster/cluster_sim.hpp"
#include "cluster/cost_model.hpp"
#include "core/concurrent_solver.hpp"
#include "core/master.hpp"
#include "core/protocol.hpp"
#include "core/remote_worker.hpp"
#include "core/worker.hpp"
#include "fleet/churn.hpp"
#include "manifold/runtime.hpp"
#include "net/frame.hpp"
#include "net/remote.hpp"
#include "net/socket.hpp"
#include "transport/seq_solver.hpp"

namespace {

using namespace mg;
using namespace std::chrono_literals;
using iwim::Unit;

// ---- ChurnPlan ----------------------------------------------------------------------

TEST(ChurnPlan, ScheduleIsDeterministicSortedAndBounded) {
  fleet::ChurnPlanConfig config;
  config.seed = 7;
  config.joins = 3;
  config.leaves = 2;
  config.crashes = 2;
  config.start_seconds = 0.25;
  config.spread_seconds = 1.5;
  const fleet::ChurnPlan a(config), b(config);
  ASSERT_EQ(a.events().size(), 7u);
  ASSERT_EQ(b.events().size(), 7u);

  std::size_t joins = 0, leaves = 0, crashes = 0;
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    const auto& e = a.events()[i];
    EXPECT_EQ(e.kind, b.events()[i].kind);
    EXPECT_DOUBLE_EQ(e.at_seconds, b.events()[i].at_seconds);
    EXPECT_GE(e.at_seconds, config.start_seconds);
    EXPECT_LT(e.at_seconds, config.start_seconds + config.spread_seconds);
    if (i > 0) {
      EXPECT_GE(e.at_seconds, a.events()[i - 1].at_seconds);
    }
    joins += e.kind == fleet::ChurnEventKind::Join;
    leaves += e.kind == fleet::ChurnEventKind::Leave;
    crashes += e.kind == fleet::ChurnEventKind::Crash;
  }
  EXPECT_EQ(joins, config.joins);
  EXPECT_EQ(leaves, config.leaves);
  EXPECT_EQ(crashes, config.crashes);

  config.seed = 8;
  const fleet::ChurnPlan other(config);
  bool any_differs = false;
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    any_differs = any_differs || a.events()[i].kind != other.events()[i].kind ||
                  a.events()[i].at_seconds != other.events()[i].at_seconds;
  }
  EXPECT_TRUE(any_differs) << "a different seed must produce a different schedule";
}

TEST(ChurnPlan, SpecParsingRoundTripsAndRejectsGarbage) {
  const auto config =
      fleet::parse_churn_spec("seed=7,joins=2,leaves=1,crashes=1,start=0.05,spread=0.4");
  EXPECT_EQ(config.seed, 7u);
  EXPECT_EQ(config.joins, 2u);
  EXPECT_EQ(config.leaves, 1u);
  EXPECT_EQ(config.crashes, 1u);
  EXPECT_DOUBLE_EQ(config.start_seconds, 0.05);
  EXPECT_DOUBLE_EQ(config.spread_seconds, 0.4);
  EXPECT_TRUE(config.any());
  EXPECT_FALSE(fleet::parse_churn_spec("").any());
  EXPECT_THROW(fleet::parse_churn_spec("bogus_key=1"), std::invalid_argument);
  EXPECT_THROW(fleet::parse_churn_spec("joins"), std::invalid_argument);
  EXPECT_THROW(fleet::parse_churn_spec("joins=abc"), std::invalid_argument);
}

TEST(FleetCounters, AccumulateAndReportAny) {
  fleet::FleetCounters a;
  EXPECT_FALSE(a.any());
  fleet::FleetCounters b;
  b.joins = 2;
  b.steals = 1;
  b.duplicates = 3;
  a += b;
  a += b;
  EXPECT_EQ(a.joins, 4u);
  EXPECT_EQ(a.steals, 2u);
  EXPECT_EQ(a.duplicates, 6u);
  EXPECT_TRUE(a.any());
}

// ---- the threaded pool under churn ---------------------------------------------------

/// One pool of doubler workers that each hold their unit for `hold`, so a
/// churn schedule inside the hold window always finds running victims.
struct ChurnToyRun {
  std::int64_t total = 0;
  std::size_t abandoned = 0;
  mw::ProtocolStats stats;
};

ChurnToyRun run_churned_pool(std::size_t workers, std::chrono::milliseconds hold,
                             const fleet::ChurnPlanConfig& churn) {
  iwim::Runtime runtime;
  ChurnToyRun run;
  auto master =
      mw::make_master(runtime, "m", [&](mw::MasterApi& api, iwim::ProcessContext&) {
        api.create_pool();
        for (std::size_t k = 0; k < workers; ++k) {
          api.create_worker();
          api.send_work(Unit::of(static_cast<std::int64_t>(k)));
        }
        for (std::size_t k = 0; k < workers; ++k) {
          const Unit unit = api.collect_result();
          if (unit.is<mw::WorkAbandoned>()) {
            ++run.abandoned;
          } else {
            run.total += unit.as<std::int64_t>();
          }
        }
        api.rendezvous();
        api.finished();
      });
  mw::RunOptions options;
  options.retry = fault::RetryPolicy{};
  options.retry->max_attempts = 8;
  options.retry->backoff_initial = 2ms;
  options.churn = churn;
  run.stats = mw::run_main_program(
      runtime, master, mw::make_worker_factory([hold](const Unit& u) {
        std::this_thread::sleep_for(hold);
        return Unit::of(u.as<std::int64_t>() * 2);
      }),
      options);
  runtime.shutdown();
  return run;
}

TEST(ChurnPool, LeaveAndCrashEventsReLeaseWithoutLosingAUnit) {
  fleet::ChurnPlanConfig churn;
  churn.seed = 13;
  churn.leaves = 2;
  churn.crashes = 1;
  churn.start_seconds = 0.01;
  churn.spread_seconds = 0.05;
  // Workers hold their unit well past the churn window, so every event finds
  // a running victim and its unit must be re-leased.
  const ChurnToyRun run = run_churned_pool(8, 150ms, churn);
  EXPECT_EQ(run.abandoned, 0u);
  EXPECT_EQ(run.total, 2 * (7 * 8 / 2));  // 2 * sum(0..7): every unit exactly once
  EXPECT_EQ(run.stats.fleet.leaves, 2u);
  EXPECT_EQ(run.stats.fleet.crashes, 1u);
  EXPECT_EQ(run.stats.fleet.releases, 3u) << "each killed lease re-issued exactly once";
  EXPECT_EQ(run.stats.faults.retries, run.stats.faults.respawns);
}

TEST(ChurnSolve, ThreadsChurnKeepsTheSolveBitExact) {
  transport::ProgramConfig program;
  program.root = 2;
  program.level = 5;
  const auto seq = transport::solve_sequential(program);

  mw::ConcurrentOptions options;
  options.churn = fleet::ChurnPlanConfig{};
  options.churn->seed = 7;
  options.churn->leaves = 2;
  options.churn->crashes = 1;
  options.churn->start_seconds = 0.0;
  options.churn->spread_seconds = 0.05;
  const auto conc = mw::solve_concurrent(program, options);

  // Bit-identity holds whether or not the run outlived the churn window;
  // the event counts are bounded by the plan either way.
  EXPECT_EQ(conc.solve.combined.max_diff(seq.combined), 0.0);
  EXPECT_LE(conc.protocol.fleet.leaves, 2u);
  EXPECT_LE(conc.protocol.fleet.crashes, 1u);
  EXPECT_EQ(conc.protocol.fleet.steals, 0u) << "threads substrate does not steal";
  EXPECT_FALSE(conc.protocol.timed_out);
}

// ---- the virtual-time elastic simulator ----------------------------------------------

TEST(ChurnSim, ElasticRunIsDeterministicAndCompletesEveryTermOnce) {
  const cluster::AthlonCostModel cost;
  const cluster::SimConfig config;
  fleet::ChurnPlanConfig churn;
  churn.seed = 2004;
  churn.joins = 3;
  churn.leaves = 2;
  churn.crashes = 2;
  // The level-8 event horizon (the last term's completion time, before the
  // constant collect/prolongation overheads) is well under a virtual second,
  // so the storm must land very early to fire before the run drains.
  churn.start_seconds = 0.05;
  churn.spread_seconds = 0.2;

  const auto a = cluster::simulate_churn_run(2, 8, 1e-3, cost, config, churn);
  const auto b = cluster::simulate_churn_run(2, 8, 1e-3, cost, config, churn);

  EXPECT_DOUBLE_EQ(a.concurrent_seconds, b.concurrent_seconds);
  EXPECT_EQ(a.completion_order, b.completion_order);
  EXPECT_EQ(a.fleet.joins, b.fleet.joins);
  EXPECT_EQ(a.fleet.releases, b.fleet.releases);

  // Exactly-once completion: the sim's analogue of bit-identity.
  ASSERT_EQ(a.completion_order.size(), a.terms_total);
  std::vector<std::size_t> sorted = a.completion_order;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);

  EXPECT_EQ(a.fleet.joins, churn.joins);
  EXPECT_EQ(a.fleet.leaves + a.fleet.crashes, churn.leaves + churn.crashes);
  EXPECT_GT(a.peak_machines, 0);
  EXPECT_GT(a.weighted_machines, 0.0);
  EXPECT_FALSE(a.machines.times.empty());
}

TEST(ChurnSim, NoChurnDegeneratesToAFixedFleet) {
  const cluster::AthlonCostModel cost;
  const cluster::SimConfig config;
  const auto run =
      cluster::simulate_churn_run(2, 6, 1e-3, cost, config, fleet::ChurnPlanConfig{});
  EXPECT_FALSE(run.fleet.joins || run.fleet.leaves || run.fleet.crashes);
  EXPECT_EQ(run.completion_order.size(), run.terms_total);
  // A fixed fleet's machine series is one flat step: claimed at 0, held to
  // the end.
  EXPECT_EQ(run.peak_machines, run.machines.counts.front());
}

// ---- the elastic TCP endpoint --------------------------------------------------------

/// In-process subsolve workers over loopback (tier-1 stand-in for forked
/// worker processes); they join once the endpoint shuts down.
struct SubsolveWorkers {
  std::vector<std::thread> threads;

  explicit SubsolveWorkers(std::uint16_t port, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      threads.emplace_back([port] { mw::run_subsolve_worker("127.0.0.1", port); });
    }
  }
  ~SubsolveWorkers() {
    for (auto& t : threads) t.join();
  }
};

TEST(ElasticEndpoint, DisruptDrivenChurnKeepsTheSolveBitExact) {
  transport::ProgramConfig program;
  program.root = 2;
  program.level = 3;
  const auto seq = transport::solve_sequential(program);

  net::RemoteEndpointConfig config;
  config.elastic.enabled = true;
  config.elastic.lease_depth = 2;
  net::RemoteEndpoint endpoint(net::TcpListener("127.0.0.1", 0), config);
  SubsolveWorkers workers(endpoint.port(), 3);
  ASSERT_TRUE(endpoint.wait_for_workers(3, 10s));

  fleet::ChurnPlanConfig churn_config;
  churn_config.seed = 5;
  churn_config.leaves = 1;
  churn_config.crashes = 1;
  churn_config.start_seconds = 0.02;
  churn_config.spread_seconds = 0.2;
  const fleet::ChurnPlan plan(churn_config);
  std::atomic<bool> stop{false};
  std::thread churner([&] { net::drive_churn(endpoint, plan, stop); });

  mw::ConcurrentOptions options;
  options.remote = &endpoint;
  options.retry = fault::RetryPolicy{};
  options.retry->max_attempts = 6;
  options.retry->backoff_initial = 2ms;
  const auto remote = mw::solve_concurrent(program, options);

  stop.store(true);
  churner.join();
  EXPECT_EQ(remote.solve.combined.max_diff(seq.combined), 0.0);
  const net::RemoteCounters c = endpoint.counters();
  EXPECT_EQ(c.fleet_joins, c.accepts) << "every elastic Hello joins the lease set";
  EXPECT_LE(c.fleet_leaves, 1u);
  EXPECT_LE(c.fleet_crashes, 1u);
  endpoint.shutdown();
}

/// A raw fake worker: completes the Hello handshake by hand so the test can
/// violate the protocol deliberately (double Results for one lease).
struct FakeWorker {
  net::Socket sock;
  net::FrameDecoder decoder;

  explicit FakeWorker(std::uint16_t port) {
    sock = net::connect_tcp("127.0.0.1", port, 2000ms);
    EXPECT_TRUE(sock.valid());
    std::uint8_t hello[16] = {};  // pid 0, attempt 0 (bare v1 handshake)
    const auto frame = net::encode_frame(net::FrameType::Hello, 0, hello, sizeof hello);
    EXPECT_TRUE(net::send_all(sock, frame.data(), frame.size()));
  }

  /// Blocks until one frame arrives (the socket stays blocking).
  std::optional<net::Frame> next_frame() {
    std::uint8_t buf[4096];
    for (;;) {
      if (auto f = decoder.next()) return f;
      const std::ptrdiff_t n = sock.recv_some(buf, sizeof buf);
      if (n <= 0) return std::nullopt;
      decoder.feed(buf, static_cast<std::size_t>(n));
    }
  }

  void send_result(std::uint64_t seq, const std::vector<std::uint8_t>& payload) {
    const auto bytes = net::encode_frame(net::FrameType::Result, seq, payload);
    EXPECT_TRUE(net::send_all(sock, bytes.data(), bytes.size()));
  }
};

TEST(ElasticEndpoint, DuplicateResultIsDiscardedAndTheChannelSurvives) {
  net::RemoteEndpointConfig config;
  config.telemetry = false;  // raw payloads: the fake worker speaks v1 frames
  config.elastic.enabled = true;
  net::RemoteEndpoint endpoint(net::TcpListener("127.0.0.1", 0), config);
  FakeWorker worker(endpoint.port());
  ASSERT_TRUE(endpoint.wait_for_workers(1, 5s));

  auto trip = std::async(std::launch::async, [&] { return endpoint.round_trip({1, 2, 3}); });
  const auto work = worker.next_frame();
  ASSERT_TRUE(work.has_value());
  ASSERT_EQ(work->header.type, net::FrameType::Work);

  // The speculative-loser scenario on one wire: the same lease answered
  // twice.  First Result wins; the echo must be counted and dropped, not
  // treated as a protocol violation.
  worker.send_result(work->header.seq, {9});
  worker.send_result(work->header.seq, {9});
  const auto result = trip.get();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.payload, (std::vector<std::uint8_t>{9}));

  // A second trip over the same channel proves it survived the echo.
  auto again = std::async(std::launch::async, [&] { return endpoint.round_trip({4}); });
  const auto work2 = worker.next_frame();
  ASSERT_TRUE(work2.has_value());
  worker.send_result(work2->header.seq, {8});
  EXPECT_TRUE(again.get().ok);

  const net::RemoteCounters c = endpoint.counters();
  EXPECT_EQ(c.fleet_duplicates, 1u);
  EXPECT_EQ(c.disconnects, 0u);
  EXPECT_EQ(c.round_trips_ok, 2u);
  endpoint.shutdown();
}

TEST(ElasticEndpoint, DuplicateResultIsAProtocolViolationWhenElasticIsOff) {
  net::RemoteEndpointConfig config;
  config.telemetry = false;
  // Depth 1 restores the strict PR-5 contract this test pins; any wider
  // pipeline window turns on the retired-seq dedup that drops the echo.
  config.elastic.pipeline_depth = 1;
  net::RemoteEndpoint endpoint(net::TcpListener("127.0.0.1", 0), config);
  FakeWorker worker(endpoint.port());
  ASSERT_TRUE(endpoint.wait_for_workers(1, 5s));

  auto trip = std::async(std::launch::async, [&] { return endpoint.round_trip({1}); });
  const auto work = worker.next_frame();
  ASSERT_TRUE(work.has_value());
  worker.send_result(work->header.seq, {7});
  worker.send_result(work->header.seq, {7});
  ASSERT_TRUE(trip.get().ok);

  // The fixed-fleet endpoint keeps the strict one-lease-one-result contract:
  // the echo closes the channel (the fake worker sees EOF).
  EXPECT_FALSE(worker.next_frame().has_value());
  const net::RemoteCounters c = endpoint.counters();
  EXPECT_EQ(c.fleet_duplicates, 0u);
  EXPECT_EQ(c.disconnects, 1u);
  endpoint.shutdown();
}

// ---- worker reconnect failure budget (regression) ------------------------------------

/// A TCP server that accepts and immediately RST-closes every connection —
/// the "listener is alive but nobody serves the protocol" failure mode
/// (master crashed, its port recycled by an unrelated process).
struct AcceptAndDropServer {
  net::TcpListener listener{"127.0.0.1", 0};
  std::atomic<bool> stop{false};
  std::thread thread;

  AcceptAndDropServer() {
    // Poll non-blocking: close() cannot wake a thread parked inside a
    // blocking accept(), so the loop must come up for air to see `stop`.
    listener.set_nonblocking(true);
    thread = std::thread([this] {
      while (!stop.load()) {
        net::Socket s = listener.accept();
        if (!s.valid()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          continue;
        }
        const linger lg{1, 0};  // RST on close: the handshake never lands
        ::setsockopt(s.fd(), SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
        s.close();
      }
    });
  }
  ~AcceptAndDropServer() {
    stop.store(true);
    thread.join();
    listener.close();
  }
};

TEST(WorkerLoop, AcceptThenDropBurnsTheFailureBudget) {
  // Regression: the worker loop used to reset its failure budget on any
  // successful TCP connect, so a listener that accepted and dropped every
  // connection kept the worker reconnecting forever.  The budget must only
  // reset once the Hello handshake lands; against a drop-everything server
  // the worker has to give up.
  AcceptAndDropServer server;
  const std::uint16_t port = server.listener.port();
  auto worker = std::async(std::launch::async, [port] {
    net::WorkerLoopOptions options;
    options.max_connect_failures = 4;
    options.reconnect_backoff = 2ms;
    return net::run_worker_loop(
        "127.0.0.1", port,
        [](const std::vector<std::uint8_t>& w) { return w; }, options);
  });
  // RSTs race the Hello send, so the budget burns down over several rounds;
  // the bound is generous but the pre-fix loop never returns at all.
  ASSERT_EQ(worker.wait_for(60s), std::future_status::ready)
      << "worker loop must give up against a drop-everything listener";
  EXPECT_EQ(worker.get(), 0);
}

}  // namespace
