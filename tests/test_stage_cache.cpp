// Tests for the subsolve hot-path overhaul: the stage-matrix cache
// (hit/miss/refresh semantics, bit-identity with the rebuild-every-step
// reference path), Krylov warm starts, the in-place shifted-assembly
// primitive, and the LPT dispatch order.
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "core/concurrent_solver.hpp"
#include "core/remote_worker.hpp"
#include "net/remote.hpp"
#include "grid/combination.hpp"
#include "grid/grid2d.hpp"
#include "linalg/csr.hpp"
#include "obs/metrics.hpp"
#include "rosenbrock/ros2.hpp"
#include "transport/seq_solver.hpp"
#include "transport/subsolve.hpp"
#include "transport/system.hpp"

namespace {

using namespace mg;
using transport::StageSolverKind;
using transport::SubsolveConfig;
using transport::SystemOptions;
using transport::TransportSystem;

SubsolveConfig config_for(StageSolverKind kind, bool cache, bool warm) {
  SubsolveConfig config;
  config.le_tol = 1e-4;
  config.system.solver = kind;
  config.system.cache_stage = cache;
  config.system.warm_start = warm;
  return config;
}

// ---- bit-identity with the rebuild-every-step reference path ---------------------

class StageCacheKinds : public ::testing::TestWithParam<StageSolverKind> {};

// The tentpole's acceptance bar: caching the stage matrix and its factors
// must not change a single bit of the trajectory, for any solver kind, over
// an adaptive run whose step size (and hence gamma*h) genuinely varies.
TEST_P(StageCacheKinds, CachedRunIsBitIdenticalToRebuildEveryStep) {
  const grid::Grid2D g(2, 3, 2);
  const auto cached = transport::subsolve(g, config_for(GetParam(), true, true));
  const auto rebuilt = transport::subsolve(g, config_for(GetParam(), false, true));
  EXPECT_EQ(cached.solution.max_diff(rebuilt.solution), 0.0);
  EXPECT_EQ(cached.stats.accepted, rebuilt.stats.accepted);
  EXPECT_EQ(cached.stats.rejected, rebuilt.stats.rejected);
  EXPECT_EQ(cached.stats.stage_preparations, rebuilt.stats.stage_preparations);
  EXPECT_EQ(cached.stats.stage_solves, rebuilt.stats.stage_solves);
  EXPECT_EQ(cached.stats.final_h, rebuilt.stats.final_h);
}

// Warm starting only moves Krylov iteration counts; the accept/reject
// trajectory is driven by the converged stage solutions, which stay inside
// the same tolerance, and the direct solver ignores the seed entirely.
TEST_P(StageCacheKinds, WarmAndColdStartsBothConvergeToTheBandedReference) {
  const grid::Grid2D g(2, 2, 2);
  SubsolveConfig banded = config_for(StageSolverKind::BandedLU, true, true);
  SubsolveConfig warm = config_for(GetParam(), true, true);
  SubsolveConfig cold = config_for(GetParam(), true, false);
  warm.system.krylov.rel_tol = cold.system.krylov.rel_tol = 1e-12;
  const auto reference = transport::subsolve(g, banded);
  EXPECT_LT(transport::subsolve(g, warm).solution.max_diff(reference.solution), 1e-6);
  EXPECT_LT(transport::subsolve(g, cold).solution.max_diff(reference.solution), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, StageCacheKinds,
                         ::testing::Values(StageSolverKind::BandedLU,
                                           StageSolverKind::BiCgStabIlu0,
                                           StageSolverKind::BiCgStabJacobi),
                         [](const auto& info) -> std::string {
                           switch (info.param) {
                             case StageSolverKind::BandedLU: return "BandedLU";
                             case StageSolverKind::BiCgStabIlu0: return "BiCgStabIlu0";
                             case StageSolverKind::BiCgStabJacobi: return "BiCgStabJacobi";
                           }
                           return "Unknown";
                         });

// ---- hit / miss / refresh ledger -------------------------------------------------

TEST(StageCache, CountsHitsMissesAndRefreshes) {
  const grid::Grid2D g(2, 2, 2);
  SystemOptions options;
  options.cache_stage = true;
  TransportSystem system(g, transport::TransportProblem{}, options);
  const ros::Vec u(system.dimension(), 0.0);

  auto s1 = system.prepare_stage(0.0, u, 1e-3);  // first build: miss
  auto s2 = system.prepare_stage(0.0, u, 1e-3);  // same gamma*h: hit
  auto s3 = system.prepare_stage(0.0, u, 1e-3);  // still unchanged: hit
  auto s4 = system.prepare_stage(0.0, u, 5e-4);  // step size changed: refresh
  auto s5 = system.prepare_stage(0.0, u, 5e-4);  // unchanged again: hit

  const auto& stats = system.stage_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.refreshes, 1u);
}

TEST(StageCache, DisabledCacheCountsEveryPreparationAsAMiss) {
  const grid::Grid2D g(2, 2, 2);
  SystemOptions options;
  options.cache_stage = false;
  TransportSystem system(g, transport::TransportProblem{}, options);
  const ros::Vec u(system.dimension(), 0.0);

  auto s1 = system.prepare_stage(0.0, u, 1e-3);
  auto s2 = system.prepare_stage(0.0, u, 1e-3);

  const auto& stats = system.stage_cache_stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.refreshes, 0u);
}

// A refreshed (or reused) cached solver must produce the same bits as a
// freshly rebuilt one on the same right-hand side, for every solver kind
// and across a gamma*h change.
TEST_P(StageCacheKinds, CachedSolverMatchesRebuiltSolverBitwise) {
  const grid::Grid2D g(2, 2, 2);
  SystemOptions cache_on;
  cache_on.solver = GetParam();
  cache_on.cache_stage = true;
  cache_on.warm_start = false;  // isolate the assembly path from the seed
  SystemOptions cache_off = cache_on;
  cache_off.cache_stage = false;
  TransportSystem cached(g, transport::TransportProblem{}, cache_on);
  TransportSystem rebuilt(g, transport::TransportProblem{}, cache_off);

  const ros::Vec u(cached.dimension(), 0.0);
  ros::Vec rhs(cached.dimension());
  for (std::size_t i = 0; i < rhs.size(); ++i) {
    rhs[i] = 1.0 / static_cast<double>(i + 1);
  }

  // miss, hit, then refresh on the cached side; fresh build every time on
  // the reference side.
  for (double gamma_h : {2e-3, 2e-3, 7e-4}) {
    auto a = cached.prepare_stage(0.0, u, gamma_h);
    auto b = rebuilt.prepare_stage(0.0, u, gamma_h);
    ros::Vec xa, xb;
    a->solve(rhs, xa);
    b->solve(rhs, xb);
    ASSERT_EQ(xa.size(), xb.size());
    for (std::size_t i = 0; i < xa.size(); ++i) {
      ASSERT_EQ(xa[i], xb[i]) << "component " << i << " at gamma*h = " << gamma_h;
    }
  }
  EXPECT_EQ(cached.stage_cache_stats().hits, 1u);
  EXPECT_EQ(cached.stage_cache_stats().refreshes, 1u);
}

// A free-running adaptive solve rescales h every step, so the cache lives
// on the refresh path: one first build, then in-place value updates — and
// every preparation lands in exactly one ledger bucket.
TEST(StageCache, AdaptiveRunRefreshesInPlace) {
  const grid::Grid2D g(2, 3, 3);
  const auto config = config_for(StageSolverKind::BandedLU, true, true);
  obs::registry().reset();
  const auto result = transport::subsolve(g, config);
  const auto snap = obs::registry().snapshot();
  const std::uint64_t hits = snap.counter_or("linalg.stage_cache.hits");
  const std::uint64_t misses = snap.counter_or("linalg.stage_cache.misses");
  const std::uint64_t refreshes = snap.counter_or("linalg.stage_cache.refreshes");
  EXPECT_EQ(hits + misses + refreshes, result.stats.stage_preparations);
  EXPECT_EQ(misses, 1u);     // one first build per subsolve
  EXPECT_GT(refreshes, 0u);  // the controller moved h, invalidating the factors
}

// When the step size saturates (here: a fixed-step run; an h_max-limited
// adaptive run behaves the same) gamma*h repeats and the factors are reused
// outright — the cache-hit path the prepare_stage bench measures.
TEST(StageCache, SaturatedStepSizeReusesFactorsOutright) {
  const grid::Grid2D g(2, 2, 2);
  SystemOptions options;
  options.cache_stage = true;
  TransportSystem system(g, transport::TransportProblem{}, options);

  ros::Ros2Options opts;
  opts.t0 = 0.0;
  opts.t1 = 0.1;
  opts.h0 = 0.005;
  opts.fixed_step = true;
  ros::Vec u = system.restrict_interior(grid::Field(g));
  obs::registry().reset();
  const auto stats = ros::integrate(system, u, opts);

  const auto& cache = system.stage_cache_stats();
  EXPECT_EQ(cache.misses, 1u);
  // The last step may be truncated to land exactly on t1, costing at most
  // one refresh; every other step reuses the factors outright.
  EXPECT_LE(cache.refreshes, 1u);
  EXPECT_GE(cache.hits, stats.stage_preparations - 2);
  EXPECT_EQ(cache.hits + cache.misses + cache.refreshes, stats.stage_preparations);
  const double rate = obs::registry().snapshot().counter_ratio(
      "linalg.stage_cache.hits",
      {"linalg.stage_cache.hits", "linalg.stage_cache.misses",
       "linalg.stage_cache.refreshes"});
  EXPECT_GT(rate, 0.5);
}

// ---- warm starts -----------------------------------------------------------------

TEST(WarmStart, ReducesBicgstabIterationsAtUnchangedTolerance) {
  const grid::Grid2D g(2, 3, 3);
  obs::registry().reset();
  transport::subsolve(g, config_for(StageSolverKind::BiCgStabIlu0, true, false));
  const std::uint64_t cold =
      obs::registry().snapshot().counter_or("linalg.bicgstab_iterations");
  obs::registry().reset();
  transport::subsolve(g, config_for(StageSolverKind::BiCgStabIlu0, true, true));
  const std::uint64_t warm =
      obs::registry().snapshot().counter_or("linalg.bicgstab_iterations");
  EXPECT_GT(cold, 0u);
  EXPECT_LE(warm, cold);
}

// ---- the in-place assembly primitive ---------------------------------------------

// The cache's value-refresh path writes scale_a*v into every slot and adds
// the shift at the diagonal offset; that must reproduce shifted_identity
// bit for bit (IEEE addition is commutative) on the Jacobian's own pattern.
TEST(StageCache, InPlaceShiftedValuesMatchShiftedIdentityBitwise) {
  const grid::Grid2D g(2, 2, 3);
  TransportSystem system(g, transport::TransportProblem{}, SystemOptions{});
  const linalg::CsrMatrix& jac = system.jacobian();
  const double gamma_h = 3.7e-3;

  const linalg::CsrMatrix reference = linalg::shifted_identity(jac, 1.0, -gamma_h);
  linalg::CsrMatrix in_place = jac;
  const auto diag = jac.diagonal_offsets();
  auto& values = in_place.values();
  for (std::size_t k = 0; k < values.size(); ++k) values[k] = -gamma_h * jac.values()[k];
  for (std::size_t i = 0; i < jac.rows(); ++i) {
    ASSERT_NE(diag[i], linalg::CsrMatrix::kNoDiagonal);
    values[diag[i]] += 1.0;
  }

  ASSERT_EQ(reference.values().size(), in_place.values().size());
  for (std::size_t k = 0; k < values.size(); ++k) {
    ASSERT_EQ(reference.values()[k], in_place.values()[k]) << "slot " << k;
  }
}

TEST(CsrDiagonal, SinglePassDiagonalMatchesOffsets) {
  const grid::Grid2D g(2, 2, 2);
  TransportSystem system(g, transport::TransportProblem{}, SystemOptions{});
  const linalg::CsrMatrix& jac = system.jacobian();
  const auto diag = jac.diagonal();
  const auto offsets = jac.diagonal_offsets();
  ASSERT_EQ(diag.size(), jac.rows());
  ASSERT_EQ(offsets.size(), jac.rows());
  for (std::size_t i = 0; i < jac.rows(); ++i) {
    ASSERT_NE(offsets[i], linalg::CsrMatrix::kNoDiagonal);
    EXPECT_EQ(jac.values()[offsets[i]], diag[i]);
    EXPECT_EQ(jac.col_idx()[offsets[i]], i);
  }
}

// ---- cache + warm start through the fault-tolerant concurrent path ---------------

// The recompute paths (worker respawn, master-local fallback) construct
// fresh TransportSystems, so each retry re-seeds its own cache; the result
// must stay bit-identical to the fault-free sequential program with the
// full hot-path configuration (cache + warm start + Krylov) engaged.
TEST(StageCache, FaultRecomputePathsStayBitExactWithCacheAndWarmStart) {
  transport::ProgramConfig program;
  program.root = 2;
  program.level = 2;
  program.kernel.system.solver = StageSolverKind::BiCgStabIlu0;
  program.kernel.system.cache_stage = true;
  program.kernel.system.warm_start = true;
  const auto seq = transport::solve_sequential(program);

  mw::ConcurrentOptions options;
  options.faults.seed = 404;
  options.faults.crash = 0.4;
  options.retry = fault::RetryPolicy{};
  options.retry->max_attempts = 8;
  options.retry->backoff_initial = std::chrono::milliseconds(2);
  const auto conc = mw::solve_concurrent(program, options);

  EXPECT_GT(conc.protocol.faults.crashes_injected, 0u);
  EXPECT_EQ(conc.solve.combined.max_diff(seq.combined), 0.0);
}

// Regression: the degraded-pool fallback receives the abandoned worker's
// *creation slot*, which under LPT dispatch is a position in the reordered
// dispatch sequence, not a term offset.  With every slot abandoned
// (respawn budget 0) at a level where grid weights genuinely differ, a
// slot-to-term mix-up recomputes the wrong grids and the run cannot
// complete bit-exactly.
TEST(StageCache, AbandonedSlotsMapBackToTheRightTermsUnderLpt) {
  transport::ProgramConfig program;
  program.root = 2;
  program.level = 2;
  const auto seq = transport::solve_sequential(program);

  mw::ConcurrentOptions options;
  options.lpt_schedule = true;
  options.faults.seed = 9;
  options.faults.crash = 1.0;  // every incarnation crashes
  options.retry = fault::RetryPolicy{};
  options.retry->respawn_budget = 0;
  const auto conc = mw::solve_concurrent(program, options);

  EXPECT_TRUE(conc.protocol.faults.degraded);
  EXPECT_EQ(conc.protocol.faults.abandoned, grid::component_count(program.level));
  EXPECT_EQ(conc.solve.combined.max_diff(seq.combined), 0.0);
}

// ---- LPT dispatch order ----------------------------------------------------------

TEST(LptOrder, SortsByDescendingPayloadWithStableTieBreak) {
  const auto terms = grid::combination_terms(2, 3);
  const auto order = mw::lpt_order(terms, 0, terms.size());
  ASSERT_EQ(order.size(), terms.size());

  std::vector<bool> seen(terms.size(), false);
  for (std::size_t k : order) {
    ASSERT_LT(k, terms.size());
    EXPECT_FALSE(seen[k]);  // a permutation: every term exactly once
    seen[k] = true;
  }
  for (std::size_t i = 1; i < order.size(); ++i) {
    const std::size_t prev = transport::subsolve_payload_bytes(terms[order[i - 1]].grid);
    const std::size_t cur = transport::subsolve_payload_bytes(terms[order[i]].grid);
    EXPECT_GE(prev, cur);
    if (prev == cur) {
      EXPECT_LT(order[i - 1], order[i]);  // stable tie-break
    }
  }
}

TEST(LptOrder, RespectsTheRequestedWindow) {
  const auto terms = grid::combination_terms(2, 3);
  const std::size_t first = 1, count = terms.size() - 2;
  const auto order = mw::lpt_order(terms, first, count);
  ASSERT_EQ(order.size(), count);
  for (std::size_t k : order) {
    EXPECT_GE(k, first);
    EXPECT_LT(k, first + count);
  }
}

TEST(LptOrder, ReorderingDoesNotChangeTheConcurrentResult) {
  transport::ProgramConfig program;
  program.root = 2;
  program.level = 2;
  mw::ConcurrentOptions in_order;
  in_order.lpt_schedule = false;
  mw::ConcurrentOptions heaviest_first;
  heaviest_first.lpt_schedule = true;
  const auto a = mw::solve_concurrent(program, in_order);
  const auto b = mw::solve_concurrent(program, heaviest_first);
  EXPECT_EQ(a.solve.combined.max_diff(b.solve.combined), 0.0);
}

// ---- LPT dispatch over the TCP substrate -----------------------------------------

// In-process subsolve workers: run_subsolve_worker on plain threads over
// loopback, so these stay tier-1 (the forked-process variants live in
// test_net_soak.cpp).  The threads join once the endpoint shuts down and the
// workers give up reconnecting.
struct SubsolveWorkers {
  std::vector<std::thread> threads;

  SubsolveWorkers(std::uint16_t port, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      threads.emplace_back([port] { mw::run_subsolve_worker("127.0.0.1", port); });
    }
  }
  ~SubsolveWorkers() {
    for (auto& t : threads) t.join();
  }
};

// TCP completions come back in whatever order the workers finish; a net_slow
// plan delays a seeded subset of Work frames to force an order that differs
// from the LPT dispatch order.  Results are keyed by term index, so the
// combined output must match both the sequential program and the threaded
// LPT backend bit for bit.
TEST(LptOrder, TcpCompletionReorderKeepsLptResultBitExact) {
  transport::ProgramConfig program;
  program.root = 2;
  program.level = 2;
  const auto seq = transport::solve_sequential(program);
  mw::ConcurrentOptions threaded;
  threaded.lpt_schedule = true;
  const auto reference = mw::solve_concurrent(program, threaded);

  fault::FaultPlanConfig fault_config;
  fault_config.seed = 21;
  fault_config.net_slow = 0.5;  // delay only — no failures, pure reordering
  fault_config.net_delay = std::chrono::milliseconds(25);
  const fault::FaultPlan plan(fault_config);

  net::RemoteEndpointConfig config;
  config.faults = &plan;
  net::RemoteEndpoint endpoint(net::TcpListener("127.0.0.1", 0), config);
  SubsolveWorkers workers(endpoint.port(), 3);
  ASSERT_TRUE(endpoint.wait_for_workers(3, std::chrono::seconds(10)));

  mw::ConcurrentOptions options;
  options.lpt_schedule = true;
  options.remote = &endpoint;
  options.retry = fault::RetryPolicy{};
  const auto remote = mw::solve_concurrent(program, options);

  EXPECT_GT(endpoint.counters().faults_delayed, 0u);
  EXPECT_EQ(endpoint.counters().round_trips_failed, 0u);
  EXPECT_EQ(remote.solve.combined.max_diff(seq.combined), 0.0);
  EXPECT_EQ(remote.solve.combined.max_diff(reference.solve.combined), 0.0);
  endpoint.shutdown();
}

// The degraded-pool regression of AbandonedSlotsMapBackToTheRightTermsUnderLpt,
// but with the crashes coming from the transport: every Work frame is
// dropped, every slot abandons after its first failed round trip, and the
// WorkAbandoned pool_slot must still map through lpt_order to the right term
// when the master recomputes locally.
TEST(LptOrder, TcpDegradedPoolMapsAbandonedSlotsToTheRightTerms) {
  transport::ProgramConfig program;
  program.root = 2;
  program.level = 2;
  const auto seq = transport::solve_sequential(program);

  fault::FaultPlanConfig fault_config;
  fault_config.seed = 9;
  fault_config.net_drop = 1.0;
  const fault::FaultPlan plan(fault_config);

  net::RemoteEndpointConfig config;
  config.round_trip_deadline = std::chrono::milliseconds(150);
  config.faults = &plan;
  net::RemoteEndpoint endpoint(net::TcpListener("127.0.0.1", 0), config);
  SubsolveWorkers workers(endpoint.port(), 2);
  ASSERT_TRUE(endpoint.wait_for_workers(2, std::chrono::seconds(10)));

  mw::ConcurrentOptions options;
  options.lpt_schedule = true;
  options.remote = &endpoint;
  options.retry = fault::RetryPolicy{};
  options.retry->max_attempts = 1;
  options.retry->respawn_budget = 0;
  const auto remote = mw::solve_concurrent(program, options);

  EXPECT_TRUE(remote.protocol.faults.degraded);
  EXPECT_EQ(remote.protocol.faults.abandoned, grid::component_count(program.level));
  EXPECT_EQ(remote.solve.combined.max_diff(seq.combined), 0.0);
  endpoint.shutdown();
}

}  // namespace
