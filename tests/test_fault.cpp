// Tests for the fault-tolerance layer: the seeded FaultPlan, the shared
// RetryPolicy, the fault-tolerant worker pool (crash / hang / corruption
// recovery, respawn budget, graceful degradation), the simulator mirror,
// the deadline-robust timed waits, and the run-report faults section.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>

#include "cluster/cluster_sim.hpp"
#include "cluster/cost_model.hpp"
#include "core/concurrent_solver.hpp"
#include "core/master.hpp"
#include "core/protocol.hpp"
#include "core/worker.hpp"
#include "fault/fault_plan.hpp"
#include "manifold/event.hpp"
#include "manifold/port.hpp"
#include "manifold/runtime.hpp"
#include "obs/report.hpp"
#include "transport/seq_solver.hpp"

namespace {

using namespace mg;
using iwim::Unit;

// ---- FaultPlan & RetryPolicy ---------------------------------------------------------

TEST(FaultPlan, DecisionsAreDeterministicInTheSeed) {
  fault::FaultPlanConfig config;
  config.seed = 99;
  config.crash = 0.2;
  config.hang = 0.1;
  config.corrupt = 0.1;
  config.host_crash = 0.3;
  config.net_drop = 0.2;
  const fault::FaultPlan a(config), b(config);
  config.seed = 100;
  const fault::FaultPlan other(config);
  bool any_differs = false;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    EXPECT_EQ(a.worker_fault(k), b.worker_fault(k));
    EXPECT_EQ(a.host_crashes(k), b.host_crashes(k));
    EXPECT_EQ(a.drops_transfer(k), b.drops_transfer(k));
    any_differs = any_differs || a.worker_fault(k) != other.worker_fault(k);
  }
  EXPECT_TRUE(any_differs) << "a different seed must produce a different plan";
}

TEST(FaultPlan, InjectionRateTracksProbability) {
  fault::FaultPlanConfig config;
  config.crash = 0.25;
  const fault::FaultPlan plan(config);
  int crashes = 0;
  for (std::uint64_t k = 0; k < 4000; ++k) {
    if (plan.worker_fault(k) == fault::WorkerFault::Crash) ++crashes;
  }
  EXPECT_NEAR(crashes / 4000.0, 0.25, 0.03);
}

TEST(FaultPlan, SpecParsingRoundTrips) {
  const auto config =
      fault::parse_fault_spec("seed=7,crash=0.25,hang=0.1,corrupt=0.05,net_drop=0.2");
  EXPECT_EQ(config.seed, 7u);
  EXPECT_DOUBLE_EQ(config.crash, 0.25);
  EXPECT_DOUBLE_EQ(config.hang, 0.1);
  EXPECT_DOUBLE_EQ(config.corrupt, 0.05);
  EXPECT_DOUBLE_EQ(config.net_drop, 0.2);
  EXPECT_TRUE(config.any());
  EXPECT_FALSE(fault::parse_fault_spec("").any());
  EXPECT_THROW(fault::parse_fault_spec("bogus_key=1"), std::invalid_argument);
  EXPECT_THROW(fault::parse_fault_spec("crash"), std::invalid_argument);
}

TEST(RetryPolicy, BackoffIsCappedExponential) {
  fault::RetryPolicy policy;
  policy.backoff_initial = std::chrono::milliseconds(10);
  policy.backoff_multiplier = 2.0;
  policy.backoff_cap = std::chrono::milliseconds(70);
  EXPECT_EQ(policy.backoff_for(1).count(), 10);
  EXPECT_EQ(policy.backoff_for(2).count(), 20);
  EXPECT_EQ(policy.backoff_for(3).count(), 40);
  EXPECT_EQ(policy.backoff_for(4).count(), 70);  // capped
  EXPECT_EQ(policy.backoff_for(9).count(), 70);
}

// ---- deadline-robust timed waits (Port::read_for / EventMemory::await_for) -----------

TEST(TimedWaits, ReadForWaitsTheFullDeadline) {
  iwim::Port port(nullptr, "in", iwim::Port::Direction::In);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(port.read_for(std::chrono::milliseconds(120)).has_value());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // A spurious wakeup (or a wake caused by an unrelated notify) must not cut
  // the timeout short: nullopt may only be returned after the deadline.
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 120);
}

TEST(TimedWaits, ReadForTakesAUnitDepositedBeforeTheDeadline) {
  iwim::Port port(nullptr, "in", iwim::Port::Direction::In);
  std::thread depositor([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    port.deposit(Unit::of(std::int64_t{7}));
  });
  const auto unit = port.read_for(std::chrono::milliseconds(2000));
  depositor.join();
  ASSERT_TRUE(unit.has_value());
  EXPECT_EQ(unit->as<std::int64_t>(), 7);
}

TEST(TimedWaits, AwaitForWaitsTheFullDeadline) {
  iwim::EventMemory memory;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(memory.await_for({{"never", std::nullopt}}, std::chrono::milliseconds(120))
                   .has_value());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 120);
}

TEST(TimedWaits, AwaitForTakesAnOccurrenceDepositedBeforeTheDeadline) {
  iwim::EventMemory memory;
  std::thread depositor([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    memory.deposit({"ping", 1, "p"});
  });
  const auto occurrence =
      memory.await_for({{"ping", std::nullopt}}, std::chrono::milliseconds(2000));
  depositor.join();
  ASSERT_TRUE(occurrence.has_value());
  EXPECT_EQ(occurrence->event, "ping");
}

// ---- the fault-tolerant worker pool --------------------------------------------------

struct ToyRun {
  std::int64_t total = 0;
  std::size_t abandoned = 0;
  mw::ProtocolStats stats;
};

/// Runs one pool of `workers` doubler workers under the given plan/policy.
ToyRun run_toy_pool(std::size_t workers, const fault::FaultPlanConfig& faults,
                    const fault::RetryPolicy& retry) {
  iwim::Runtime runtime;
  ToyRun run;
  auto master =
      mw::make_master(runtime, "m", [&](mw::MasterApi& api, iwim::ProcessContext&) {
        api.create_pool();
        for (std::size_t k = 0; k < workers; ++k) {
          api.create_worker();
          api.send_work(Unit::of(static_cast<std::int64_t>(k)));
        }
        for (std::size_t k = 0; k < workers; ++k) {
          const Unit unit = api.collect_result();
          if (unit.is<mw::WorkAbandoned>()) {
            ++run.abandoned;
          } else {
            run.total += unit.as<std::int64_t>();
          }
        }
        api.rendezvous();
        api.finished();
      });
  auto plan = faults.any() ? std::make_shared<const fault::FaultPlan>(faults) : nullptr;
  auto injections = std::make_shared<mw::InjectionStats>();
  auto factory = mw::make_fault_aware_worker_factory(
      [](const Unit& u) { return Unit::of(u.as<std::int64_t>() * 2); }, plan, injections);
  mw::RunOptions options;
  options.retry = retry;
  run.stats = mw::run_main_program(runtime, master, std::move(factory), options);
  injections->merge_into(run.stats.faults);
  runtime.shutdown();
  return run;
}

TEST(FaultPool, CrashedWorkersAreRespawnedAndEveryResultArrives) {
  fault::FaultPlanConfig faults;
  faults.seed = 11;
  faults.crash = 0.4;
  faults.corrupt = 0.1;
  fault::RetryPolicy retry;
  retry.max_attempts = 8;  // generous: no slot should ever be abandoned
  retry.backoff_initial = std::chrono::milliseconds(2);
  const ToyRun run = run_toy_pool(16, faults, retry);
  EXPECT_EQ(run.abandoned, 0u);
  EXPECT_EQ(run.total, 2 * (15 * 16 / 2));  // 2 * sum(0..15)
  EXPECT_EQ(run.stats.workers_created, 16u) << "respawns must not inflate workers_created";
  const auto& f = run.stats.faults;
  EXPECT_GT(f.crashes_injected + f.corruptions_injected, 0u);
  EXPECT_EQ(f.crash_events, f.crashes_injected + f.corruptions_injected);
  EXPECT_EQ(f.retries, f.respawns);
  EXPECT_EQ(f.respawns, f.crash_events) << "every crash retried, none abandoned";
  EXPECT_FALSE(f.degraded);
}

TEST(FaultPool, SeededInjectionIsDeterministic) {
  fault::FaultPlanConfig faults;
  faults.seed = 21;
  faults.crash = 0.35;
  fault::RetryPolicy retry;
  retry.max_attempts = 10;
  retry.backoff_initial = std::chrono::milliseconds(2);
  const ToyRun a = run_toy_pool(12, faults, retry);
  const ToyRun b = run_toy_pool(12, faults, retry);
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.stats.faults.crashes_injected, b.stats.faults.crashes_injected);
  EXPECT_EQ(a.stats.faults.crash_events, b.stats.faults.crash_events);
  EXPECT_EQ(a.stats.faults.respawns, b.stats.faults.respawns);
}

TEST(FaultPool, RespawnBudgetZeroDegradesInsteadOfDeadlocking) {
  fault::FaultPlanConfig faults;
  faults.seed = 5;
  faults.crash = 1.0;  // every incarnation crashes
  fault::RetryPolicy retry;
  retry.respawn_budget = 0;
  const ToyRun run = run_toy_pool(6, faults, retry);
  // The run terminates: every slot's work is abandoned, the master receives
  // six WorkAbandoned units, and the pool reports its degradation.
  EXPECT_EQ(run.abandoned, 6u);
  EXPECT_EQ(run.total, 0);
  EXPECT_EQ(run.stats.faults.abandoned, 6u);
  EXPECT_EQ(run.stats.faults.respawns, 0u);
  EXPECT_TRUE(run.stats.faults.degraded);
}

TEST(FaultPool, HungWorkersAreKilledAtTheDeadline) {
  fault::FaultPlanConfig faults;
  faults.seed = 3;
  faults.hang = 1.0;  // every incarnation hangs
  fault::RetryPolicy retry;
  retry.task_deadline = std::chrono::milliseconds(150);
  retry.max_attempts = 2;
  retry.backoff_initial = std::chrono::milliseconds(5);
  const ToyRun run = run_toy_pool(2, faults, retry);
  EXPECT_EQ(run.abandoned, 2u);  // both attempts of both slots hang
  const auto& f = run.stats.faults;
  EXPECT_EQ(f.timeouts, 4u);  // 2 slots x 2 attempts
  EXPECT_EQ(f.respawns, 2u);
  EXPECT_EQ(f.abandoned, 2u);
  EXPECT_TRUE(f.degraded);
}

TEST(FaultPool, LegacyPathIsUntouchedWithoutARetryPolicy) {
  // No RetryPolicy: run_main_program must take the exact legacy code path
  // (no tap stream, no crash handling) and behave as before.
  iwim::Runtime runtime;
  std::int64_t result = 0;
  auto master = mw::make_master(runtime, "m", [&](mw::MasterApi& api, iwim::ProcessContext&) {
    api.create_pool();
    api.create_worker();
    api.send_work(Unit::of(std::int64_t{21}));
    result = api.collect_result().as<std::int64_t>();
    api.rendezvous();
    api.finished();
  });
  const auto stats = mw::run_main_program(
      runtime, master,
      mw::make_worker_factory([](const Unit& u) { return Unit::of(u.as<std::int64_t>() * 2); }));
  EXPECT_EQ(result, 42);
  EXPECT_FALSE(stats.faults.any());
  EXPECT_FALSE(stats.timed_out);
}

TEST(RunMainProgram, OverallDeadlineReturnsErrorInsteadOfHanging) {
  iwim::Runtime runtime;
  auto master = mw::make_master(runtime, "m", [](mw::MasterApi&, iwim::ProcessContext& ctx) {
    // A buggy master that never raises finished and never terminates.
    ctx.await({{"never_raised", std::nullopt}});
  });
  mw::RunOptions options;
  options.overall_deadline = std::chrono::milliseconds(250);
  const auto start = std::chrono::steady_clock::now();
  const auto stats = mw::run_main_program(
      runtime, master,
      mw::make_worker_factory([](const Unit& u) { return u; }), options);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(stats.timed_out);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(), 30);
  runtime.shutdown();
}

// ---- the concurrent solver under injection -------------------------------------------

TEST(FaultSolver, HeavySeededKillsStayBitExactWithTheSequentialProgram) {
  transport::ProgramConfig program;
  program.root = 2;
  program.level = 3;
  const auto seq = transport::solve_sequential(program);

  mw::ConcurrentOptions options;
  options.faults.seed = 2004;
  options.faults.crash = 0.35;
  options.faults.corrupt = 0.1;
  options.retry = fault::RetryPolicy{};
  options.retry->max_attempts = 8;
  options.retry->backoff_initial = std::chrono::milliseconds(2);
  const auto conc = mw::solve_concurrent(program, options);

  const auto& f = conc.protocol.faults;
  // The acceptance bar: at least a quarter of the requested workers die, and
  // the output is still bit-identical to the fault-free sequential solve.
  EXPECT_GE(4 * (f.crashes_injected + f.corruptions_injected),
            conc.protocol.workers_created)
      << "seed must kill >= 25% of the pool for this test to mean anything";
  EXPECT_EQ(conc.solve.combined.max_diff(seq.combined), 0.0);
  EXPECT_EQ(f.crash_events, f.crashes_injected + f.corruptions_injected);
  EXPECT_EQ(f.retries, f.respawns);
  EXPECT_EQ(conc.protocol.workers_created, grid::component_count(program.level));
}

TEST(FaultSolver, ZeroRespawnBudgetStillCompletesBitExactViaLocalFallback) {
  transport::ProgramConfig program;
  program.root = 2;
  program.level = 1;
  const auto seq = transport::solve_sequential(program);

  mw::ConcurrentOptions options;
  options.faults.seed = 17;
  options.faults.crash = 1.0;  // every incarnation crashes
  options.retry = fault::RetryPolicy{};
  options.retry->respawn_budget = 0;
  const auto conc = mw::solve_concurrent(program, options);

  // Degraded pool: every grid abandoned, recomputed locally by the master —
  // the run terminates and is still bit-identical.
  EXPECT_TRUE(conc.protocol.faults.degraded);
  EXPECT_EQ(conc.protocol.faults.abandoned, grid::component_count(program.level));
  EXPECT_EQ(conc.solve.combined.max_diff(seq.combined), 0.0);
}

// ---- the simulator mirror ------------------------------------------------------------

TEST(FaultSim, ZeroFaultConfigLeavesTheScheduleUntouched) {
  const cluster::AthlonCostModel cost;
  cluster::SimConfig plain;
  cluster::SimConfig wired = plain;
  wired.retry.max_attempts = 7;  // policy present, injection off
  const auto a = cluster::simulate_run(2, 4, 1e-3, cost, plain, 42);
  const auto b = cluster::simulate_run(2, 4, 1e-3, cost, wired, 42);
  EXPECT_DOUBLE_EQ(a.concurrent_seconds, b.concurrent_seconds);
  EXPECT_EQ(a.network_bytes, b.network_bytes);
  EXPECT_FALSE(b.faults.any());
}

TEST(FaultSim, HostCrashesAreRetriedDeterministically) {
  const cluster::AthlonCostModel cost;
  cluster::SimConfig config;
  config.faults.host_crash = 0.3;
  config.faults.seed = 9;
  const auto plain = cluster::simulate_run(2, 4, 1e-3, cost, cluster::SimConfig{}, 42);
  const auto a = cluster::simulate_run(2, 4, 1e-3, cost, config, 42);
  const auto b = cluster::simulate_run(2, 4, 1e-3, cost, config, 42);
  EXPECT_GT(a.faults.host_crashes_injected, 0u);
  EXPECT_EQ(a.faults.timeouts, a.faults.host_crashes_injected);
  EXPECT_EQ(a.faults.retries, a.faults.respawns);
  EXPECT_DOUBLE_EQ(a.concurrent_seconds, b.concurrent_seconds);
  EXPECT_EQ(a.faults.host_crashes_injected, b.faults.host_crashes_injected);
  EXPECT_GT(a.concurrent_seconds, plain.concurrent_seconds)
      << "recovering lost work must cost virtual time";
}

TEST(FaultSim, DroppedTransfersAreRetransmitted) {
  const cluster::AthlonCostModel cost;
  cluster::SimConfig config;
  config.faults.net_drop = 0.3;
  config.faults.seed = 13;
  const auto plain = cluster::simulate_run(2, 4, 1e-3, cost, cluster::SimConfig{}, 42);
  const auto dropped = cluster::simulate_run(2, 4, 1e-3, cost, config, 42);
  EXPECT_GT(dropped.faults.net_drops_injected, 0u);
  EXPECT_GT(dropped.network_bytes, plain.network_bytes)
      << "every retransmission pays its bytes again";
}

TEST(FaultSim, ExhaustedBudgetDegradesAndTerminates) {
  const cluster::AthlonCostModel cost;
  cluster::SimConfig config;
  config.faults.host_crash = 1.0;  // every attempt loses its host
  config.retry.respawn_budget = 0;
  const auto run = cluster::simulate_run(2, 2, 1e-3, cost, config, 42);
  EXPECT_TRUE(run.faults.degraded);
  EXPECT_EQ(run.faults.abandoned, run.workers.size());
  EXPECT_GT(run.concurrent_seconds, 0.0);
  EXPECT_TRUE(std::isfinite(run.concurrent_seconds));
}

// ---- report plumbing -----------------------------------------------------------------

TEST(FaultReport, CountersAppearAsTheFaultsSection) {
  obs::RunReport report("test_tool");
  fault::FaultCounters counters;
  counters.crashes_injected = 3;
  counters.retries = 2;
  counters.degraded = true;
  fault::fault_counters_to_json(report.faults(), counters);
  const std::string json = report.json({});
  EXPECT_NE(json.find("\"faults\":{"), std::string::npos);
  EXPECT_NE(json.find("\"crashes_injected\":3"), std::string::npos);
  EXPECT_NE(json.find("\"retries\":2"), std::string::npos);
  EXPECT_NE(json.find("\"degraded\":true"), std::string::npos);
}

TEST(FaultReport, SectionIsOmittedWhenEmpty) {
  obs::RunReport report("test_tool");
  EXPECT_EQ(report.json({}).find("\"faults\""), std::string::npos);
}

}  // namespace
