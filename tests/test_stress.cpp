// Concurrency stress tests for the coordination runtime: many threads
// hammering the event memory and ports, large worker pools, repeated
// runtime construction/teardown, and randomized-duration protocol sweeps.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "cluster/cluster_sim.hpp"
#include "core/master.hpp"
#include "core/protocol.hpp"
#include "core/worker.hpp"
#include "manifold/event.hpp"
#include "manifold/runtime.hpp"
#include "support/rng.hpp"

namespace {

using namespace mg;
using iwim::Unit;
using namespace std::chrono_literals;

TEST(Stress, EventMemoryManyConcurrentDepositors) {
  iwim::EventMemory mem;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mem, t] {
      for (int i = 0; i < kPerThread; ++i) {
        mem.deposit({"evt", static_cast<std::uint64_t>(t), ""});
      }
    });
  }
  int taken = 0;
  for (int i = 0; i < kThreads * kPerThread; ++i) {
    mem.await({{"evt", std::nullopt}});
    ++taken;
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(taken, kThreads * kPerThread);
  EXPECT_EQ(mem.size(), 0u);
}

TEST(Stress, EventMemoryConcurrentTakersSplitTheEvents) {
  iwim::EventMemory mem;
  constexpr int kEvents = 4000;
  std::atomic<int> taken{0};
  std::vector<std::thread> takers;
  for (int t = 0; t < 4; ++t) {
    takers.emplace_back([&] {
      for (int i = 0; i < kEvents / 4; ++i) {
        mem.await({{"evt", std::nullopt}});
        ++taken;
      }
    });
  }
  for (int i = 0; i < kEvents; ++i) mem.deposit({"evt", 0, ""});
  for (auto& t : takers) t.join();
  EXPECT_EQ(taken.load(), kEvents);
}

TEST(Stress, PortManyWritersOneReader) {
  iwim::Runtime runtime;
  constexpr int kWriters = 6;
  constexpr std::int64_t kPerWriter = 1000;
  std::int64_t sum = 0;
  auto reader = runtime.create_process("Reader", "r", [&](iwim::ProcessContext& ctx) {
    for (std::int64_t i = 0; i < kWriters * kPerWriter; ++i) {
      sum += ctx.read().as<std::int64_t>();
    }
  });
  std::vector<std::shared_ptr<iwim::AtomicProcess>> writers;
  for (int w = 0; w < kWriters; ++w) {
    std::string name = "w";  // two steps: GCC 12's -Wrestrict misfires on
    name += std::to_string(w);  // `"w" + std::to_string(w)` at -O3
    writers.push_back(runtime.create_process("Writer", name, [](iwim::ProcessContext& ctx) {
      for (std::int64_t i = 1; i <= kPerWriter; ++i) ctx.write(Unit::of(i));
    }));
    runtime.connect(writers.back()->port("output"), reader->port("input"));
  }
  reader->activate();
  for (auto& w : writers) w->activate();
  reader->wait_terminated();
  EXPECT_EQ(sum, kWriters * kPerWriter * (kPerWriter + 1) / 2);
}

TEST(Stress, LargeWorkerPool) {
  constexpr std::int64_t kWorkers = 200;
  iwim::Runtime runtime;
  std::int64_t total = 0;
  auto master = mw::make_master(runtime, "m", [&](mw::MasterApi& api, iwim::ProcessContext&) {
    api.create_pool();
    for (std::int64_t k = 0; k < kWorkers; ++k) {
      api.create_worker();
      api.send_work(Unit::of(k));
    }
    for (std::int64_t k = 0; k < kWorkers; ++k) total += api.collect_result().as<std::int64_t>();
    api.rendezvous();
    api.finished();
  });
  const auto stats = mw::run_main_program(
      runtime, master, mw::make_worker_factory([](const Unit& u) { return u; }));
  EXPECT_EQ(stats.workers_created, static_cast<std::size_t>(kWorkers));
  EXPECT_EQ(total, kWorkers * (kWorkers - 1) / 2);
}

TEST(Stress, RepeatedRuntimeLifecycles) {
  // Construct, use and tear down many runtimes back to back; shutdown must
  // always join cleanly even with processes blocked on reads.
  for (int round = 0; round < 25; ++round) {
    iwim::Runtime runtime;
    auto blocked = runtime.create_process("B", "b", [](iwim::ProcessContext& ctx) {
      ctx.read("input");  // woken only by shutdown
    });
    auto quick = runtime.create_process("Q", "q", [](iwim::ProcessContext& ctx) {
      ctx.raise("done");
    });
    blocked->activate();
    quick->activate();
    quick->wait_terminated();
    runtime.shutdown();
  }
  SUCCEED();
}

class ProtocolSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProtocolSeedSweep, RandomWorkDurationsNeverBreakTheRendezvous) {
  // Workers sleep for random short durations, so deaths, results and new
  // create_worker events interleave differently on every seed; the protocol
  // must deliver exactly one result per worker and one acknowledged
  // rendezvous regardless.
  support::Xoshiro256 rng(GetParam());
  std::vector<int> delays_ms;
  for (int k = 0; k < 12; ++k) delays_ms.push_back(static_cast<int>(rng.below(12)));

  iwim::Runtime runtime;
  std::atomic<int> computed{0};
  std::int64_t collected = 0;
  auto master = mw::make_master(runtime, "m", [&](mw::MasterApi& api, iwim::ProcessContext&) {
    api.create_pool();
    for (std::size_t k = 0; k < delays_ms.size(); ++k) {
      api.create_worker();
      api.send_work(Unit::of(static_cast<std::int64_t>(k)));
    }
    for (std::size_t k = 0; k < delays_ms.size(); ++k) {
      collected += api.collect_result().as<std::int64_t>();
    }
    api.rendezvous();
    api.finished();
  });
  auto factory = mw::make_worker_factory([&](const Unit& u) {
    const auto k = u.as<std::int64_t>();
    std::this_thread::sleep_for(
        std::chrono::milliseconds(delays_ms[static_cast<std::size_t>(k)]));
    ++computed;
    return Unit::of(k + 100);
  });
  mw::run_main_program(runtime, master, std::move(factory));
  EXPECT_EQ(computed.load(), static_cast<int>(delays_ms.size()));
  EXPECT_EQ(collected,
            static_cast<std::int64_t>(delays_ms.size()) * 100 +
                static_cast<std::int64_t>(delays_ms.size() * (delays_ms.size() - 1) / 2));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolSeedSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

TEST(Stress, ProtocolEventSequenceObservedBySpy) {
  // A spy process saves every protocol event (broadcasts reach everyone);
  // after the run its memory must reflect the §4.3 choreography counts.
  iwim::Runtime runtime;
  auto spy = runtime.create_process("Spy", "spy", [](iwim::ProcessContext& ctx) {
    ctx.await({{"__never__", std::nullopt}});  // park until shutdown, saving all
  });
  spy->activate();

  constexpr std::int64_t kWorkers = 5;
  auto master = mw::make_master(runtime, "m", [&](mw::MasterApi& api, iwim::ProcessContext&) {
    api.create_pool();
    for (std::int64_t k = 0; k < kWorkers; ++k) {
      api.create_worker();
      api.send_work(Unit::of(k));
    }
    for (std::int64_t k = 0; k < kWorkers; ++k) api.collect_result();
    api.rendezvous();
    api.finished();
  });
  mw::run_main_program(runtime, master,
                       mw::make_worker_factory([](const Unit& u) { return u; }));

  auto count = [&](const char* name) {
    return spy->events().count({name, std::nullopt});
  };
  EXPECT_EQ(count(mw::ProtocolEvents::create_pool), 1u);
  EXPECT_EQ(count(mw::ProtocolEvents::create_worker), static_cast<std::size_t>(kWorkers));
  EXPECT_EQ(count(mw::ProtocolEvents::death_worker), static_cast<std::size_t>(kWorkers));
  EXPECT_EQ(count(mw::ProtocolEvents::rendezvous), 1u);
  EXPECT_EQ(count(mw::ProtocolEvents::a_rendezvous), 1u);
  EXPECT_EQ(count(mw::ProtocolEvents::finished), 1u);
  runtime.shutdown();
}

TEST(Stress, WeightedAverageCrossCheckAgainstWorkerTimelines) {
  // Independent computation of Table 1's m: sum of per-machine busy time
  // from the worker timelines (plus the master's full-run residency) must
  // agree with the ebb-flow weighted average.
  const mg::cluster::AthlonCostModel cost;
  mg::cluster::SimConfig config;
  config.noise_amplitude = 0.0;
  const auto run = mg::cluster::simulate_run(2, 11, 1e-3, cost, config, 7);

  // Busy span per task: first claim (requested) to death, summed per task
  // occupancy periods: approximate via per-worker [requested, death).
  double busy = run.concurrent_seconds;  // the master's machine
  for (const auto& w : run.workers) busy += w.death - w.requested;
  const double m_estimate = busy / run.concurrent_seconds;
  EXPECT_NEAR(run.weighted_machines, m_estimate, 0.35 * m_estimate);
}

}  // namespace
